#include "coverage/coverage.h"

#include <string>

#include "persist/io.h"

namespace lego::cov {

thread_local CoverageMap* CoverageRuntime::active_ = nullptr;

namespace {

constexpr uint32_t kGlobalTag = persist::ChunkTag("GCOV");
constexpr uint32_t kSharedTag = persist::ChunkTag("SCOV");

Status ReadBitmap(persist::StateReader* r, std::string* out) {
  *out = r->ReadString();
  if (!r->ok()) return r->status();
  if (out->size() != CoverageMap::kSize) {
    return Status::InvalidArgument(
        "coverage bitmap size mismatch: " + std::to_string(out->size()) +
        " bytes, expected " + std::to_string(CoverageMap::kSize));
  }
  return Status::OK();
}

}  // namespace

Status GlobalCoverage::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kGlobalTag);
  w->WriteString(std::string_view(
      reinterpret_cast<const char*>(virgin_.data()), virgin_.size()));
  w->EndChunk();
  return Status::OK();
}

Status GlobalCoverage::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kGlobalTag));
  std::string bytes;
  LEGO_RETURN_IF_ERROR(ReadBitmap(r, &bytes));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  covered_edges_ = 0;
  for (size_t i = 0; i < virgin_.size(); ++i) {
    virgin_[i] = static_cast<uint8_t>(bytes[i]);
    covered_edges_ += (virgin_[i] != 0);
  }
  return Status::OK();
}

Status SharedCoverage::SaveState(persist::StateWriter* w) const {
  std::string bytes(CoverageMap::kSize, '\0');
  for (size_t i = 0; i < virgin_.size(); ++i) {
    bytes[i] = static_cast<char>(virgin_[i].load(std::memory_order_relaxed));
  }
  w->BeginChunk(kSharedTag);
  w->WriteString(bytes);
  w->EndChunk();
  return Status::OK();
}

Status SharedCoverage::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSharedTag));
  std::string bytes;
  LEGO_RETURN_IF_ERROR(ReadBitmap(r, &bytes));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  size_t edges = 0;
  for (size_t i = 0; i < virgin_.size(); ++i) {
    uint8_t v = static_cast<uint8_t>(bytes[i]);
    virgin_[i].store(v, std::memory_order_relaxed);
    edges += (v != 0);
  }
  covered_edges_.store(edges, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace lego::cov
