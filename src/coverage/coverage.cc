#include "coverage/coverage.h"

namespace lego::cov {

thread_local CoverageMap* CoverageRuntime::active_ = nullptr;

}  // namespace lego::cov
