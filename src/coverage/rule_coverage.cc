#include "coverage/rule_coverage.h"

#include <string>

#include "persist/io.h"
#include "sql/parser.h"

namespace lego::cov {

namespace {

constexpr uint32_t kGlobalTag = persist::ChunkTag("GRUL");
constexpr uint32_t kSharedTag = persist::ChunkTag("SRUL");

Status ReadRuleSet(persist::StateReader* r, std::string* out) {
  *out = r->ReadString();
  if (!r->ok()) return r->status();
  if (out->size() != RuleMap::size()) {
    return Status::InvalidArgument(
        "rule bitmap size mismatch: " + std::to_string(out->size()) +
        " bytes, expected " + std::to_string(RuleMap::size()));
  }
  return Status::OK();
}

}  // namespace

bool CollectRules(std::string_view sql_text, RuleMap* map) {
  map->Reset();
  sql::GrammarCoverageScope scope(map->data());
  return sql::Parser::ParseScript(sql_text).ok();
}

Status GlobalRuleCoverage::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kGlobalTag);
  w->WriteString(std::string_view(
      reinterpret_cast<const char*>(virgin_.data()), virgin_.size()));
  w->EndChunk();
  return Status::OK();
}

Status GlobalRuleCoverage::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kGlobalTag));
  std::string bytes;
  LEGO_RETURN_IF_ERROR(ReadRuleSet(r, &bytes));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  covered_rules_ = 0;
  for (size_t i = 0; i < virgin_.size(); ++i) {
    virgin_[i] = static_cast<uint8_t>(bytes[i]);
    covered_rules_ += (virgin_[i] != 0);
  }
  return Status::OK();
}

Status SharedRuleCoverage::SaveState(persist::StateWriter* w) const {
  std::string bytes(RuleMap::size(), '\0');
  for (size_t i = 0; i < virgin_.size(); ++i) {
    bytes[i] = static_cast<char>(virgin_[i].load(std::memory_order_relaxed));
  }
  w->BeginChunk(kSharedTag);
  w->WriteString(bytes);
  w->EndChunk();
  return Status::OK();
}

Status SharedRuleCoverage::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSharedTag));
  std::string bytes;
  LEGO_RETURN_IF_ERROR(ReadRuleSet(r, &bytes));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  size_t rules = 0;
  for (size_t i = 0; i < virgin_.size(); ++i) {
    uint8_t v = static_cast<uint8_t>(bytes[i]);
    virgin_[i].store(v, std::memory_order_relaxed);
    rules += (v != 0);
  }
  covered_rules_.store(rules, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace lego::cov
