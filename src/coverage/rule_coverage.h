#ifndef LEGO_COVERAGE_RULE_COVERAGE_H_
#define LEGO_COVERAGE_RULE_COVERAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sql/grammar_coverage.h"
#include "util/status.h"

namespace lego::persist {
class StateWriter;
class StateReader;
}  // namespace lego::persist

namespace lego::cov {

/// Grammar-rule coverage map for one parse: a binary hit-set with one byte
/// per parser production (see sql/grammar_coverage.h). Unlike the edge map
/// there is no hit-count bucketing — firing a production at all is the
/// signal — so merging is a plain OR and the map is a few hundred bytes.
class RuleMap {
 public:
  RuleMap() { Reset(); }

  void Reset() { map_.fill(0); }

  /// Number of rules hit.
  size_t CountNonZero() const {
    size_t n = 0;
    for (uint8_t c : map_) n += (c != 0);
    return n;
  }

  bool Covers(sql::GrammarRule rule) const {
    return map_[static_cast<size_t>(rule)] != 0;
  }

  /// Indices of all rules hit, ascending — the corpus scheduler stores this
  /// compact form per seed.
  std::vector<uint16_t> HitRules() const {
    std::vector<uint16_t> out;
    for (size_t i = 0; i < map_.size(); ++i) {
      if (map_[i] != 0) out.push_back(static_cast<uint16_t>(i));
    }
    return out;
  }

  uint8_t* data() { return map_.data(); }
  const uint8_t* data() const { return map_.data(); }
  static constexpr size_t size() { return sql::kNumGrammarRules; }

 private:
  std::array<uint8_t, sql::kNumGrammarRules> map_;
};

/// Parses `sql_text` with rule probes routed into `map` (which is Reset
/// first). Returns false if the script does not parse; the map then holds
/// whatever rules fired before the error.
bool CollectRules(std::string_view sql_text, RuleMap* map);

/// Accumulated rule coverage across a campaign; the rule-count analogue of
/// GlobalCoverage.
class GlobalRuleCoverage {
 public:
  GlobalRuleCoverage() { Reset(); }

  void Reset() {
    virgin_.fill(0);
    covered_rules_ = 0;
  }

  /// Merges `run`; returns true if any previously-unseen rule appeared.
  bool MergeDetectNew(const RuleMap& run) {
    bool new_cov = false;
    const uint8_t* rd = run.data();
    for (size_t i = 0; i < RuleMap::size(); ++i) {
      if (rd[i] != 0 && virgin_[i] == 0) {
        virgin_[i] = 1;
        ++covered_rules_;
        new_cov = true;
      }
    }
    return new_cov;
  }

  size_t CoveredRules() const { return covered_rules_; }

  bool Covers(sql::GrammarRule rule) const {
    return virgin_[static_cast<size_t>(rule)] != 0;
  }

  /// Checkpointing: the full hit-set round-trips; the counter is recomputed
  /// on load (derived state).
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::array<uint8_t, sql::kNumGrammarRules> virgin_;
  size_t covered_rules_;
};

/// Campaign-global rule coverage shared by parallel workers; merge is an
/// atomic OR so the rule counter is exact regardless of interleaving (each
/// 0 -> 1 transition is observed by exactly one fetch_or caller).
class SharedRuleCoverage {
 public:
  SharedRuleCoverage() { Reset(); }

  /// Not thread-safe; call only while no worker is merging.
  void Reset() {
    for (auto& v : virgin_) v.store(0, std::memory_order_relaxed);
    covered_rules_.store(0, std::memory_order_relaxed);
  }

  /// Safe to call from many threads at once.
  bool MergeDetectNew(const RuleMap& run) {
    bool new_cov = false;
    const uint8_t* rd = run.data();
    for (size_t i = 0; i < RuleMap::size(); ++i) {
      if (rd[i] == 0) continue;
      uint8_t prev = virgin_[i].fetch_or(1, std::memory_order_relaxed);
      if (prev == 0) {
        covered_rules_.fetch_add(1, std::memory_order_relaxed);
        new_cov = true;
      }
    }
    return new_cov;
  }

  size_t CoveredRules() const {
    return covered_rules_.load(std::memory_order_relaxed);
  }

  /// Checkpointing; like Reset(), only at a synchronization point.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::array<std::atomic<uint8_t>, sql::kNumGrammarRules> virgin_;
  std::atomic<size_t> covered_rules_;
};

}  // namespace lego::cov

#endif  // LEGO_COVERAGE_RULE_COVERAGE_H_
