#ifndef LEGO_COVERAGE_COVERAGE_H_
#define LEGO_COVERAGE_COVERAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "util/hash.h"
#include "util/status.h"

namespace lego::persist {
class StateWriter;
class StateReader;
}  // namespace lego::persist

namespace lego::cov {

/// AFL-style edge-coverage map for one execution. Probes report a location
/// id; the map records the (prev >> 1) ^ cur edge and bumps an 8-bit
/// saturating counter. After a run, ClassifyCounts() folds raw counts into
/// AFL's hit-count buckets so "same edge, new hit-count magnitude" also
/// registers as new coverage.
class CoverageMap {
 public:
  static constexpr size_t kSize = 1 << 16;

  CoverageMap() { Reset(); }

  /// Clears all counters and the edge-chain state.
  void Reset() {
    map_.fill(0);
    prev_loc_ = 0;
  }

  /// Records a hit of probe `loc` (called via LEGO_COV()).
  void Hit(uint64_t loc) {
    size_t edge = static_cast<size_t>((prev_loc_ ^ loc) & (kSize - 1));
    if (map_[edge] != 0xff) ++map_[edge];
    prev_loc_ = loc >> 1;
  }

  /// Folds raw hit counts into AFL bucket bitmasks (1,2,3,4-7,8-15,16-31,
  /// 32-127,128+ -> single bits).
  void ClassifyCounts() {
    for (auto& c : map_) c = Bucket(c);
  }

  /// Number of edges with any hits.
  size_t CountNonZero() const {
    size_t n = 0;
    for (uint8_t c : map_) n += (c != 0);
    return n;
  }

  const uint8_t* data() const { return map_.data(); }

  static uint8_t Bucket(uint8_t count) {
    if (count == 0) return 0;
    if (count == 1) return 1;
    if (count == 2) return 2;
    if (count == 3) return 4;
    if (count <= 7) return 8;
    if (count <= 15) return 16;
    if (count <= 31) return 32;
    if (count <= 127) return 64;
    return 128;
  }

 private:
  std::array<uint8_t, kSize> map_;
  uint64_t prev_loc_;
};

/// Accumulated ("virgin") coverage across a whole campaign. Merging a
/// classified run map reports whether the run contributed any new edge or
/// new hit-count bucket.
class GlobalCoverage {
 public:
  GlobalCoverage() { Reset(); }

  void Reset() {
    virgin_.fill(0);
    covered_edges_ = 0;
  }

  /// Merges `run` (must already be classified); returns true if any new
  /// coverage bit appeared. Run maps are sparse, so zero regions are
  /// skipped a word at a time.
  bool MergeDetectNew(const CoverageMap& run) {
    bool new_cov = false;
    const uint8_t* rd = run.data();
    for (size_t i = 0; i < CoverageMap::kSize; i += sizeof(uint64_t)) {
      uint64_t word;
      std::memcpy(&word, rd + i, sizeof(word));
      if (word == 0) continue;
      for (size_t j = i; j < i + sizeof(word); ++j) {
        uint8_t bits = rd[j];
        if (bits == 0) continue;
        uint8_t& v = virgin_[j];
        if ((bits & ~v) != 0) {
          if (v == 0) ++covered_edges_;
          v |= bits;
          new_cov = true;
        }
      }
    }
    return new_cov;
  }

  /// Number of distinct edges ever covered ("branches" in the paper's
  /// terminology).
  size_t CoveredEdges() const { return covered_edges_; }

  /// Unions another accumulated bitmap into this one — the fleet
  /// coordinator folds per-worker shard coverage into a campaign-wide map
  /// this way. The edge counter is recomputed from the merged bitmap.
  void MergeFrom(const GlobalCoverage& other) {
    covered_edges_ = 0;
    for (size_t i = 0; i < virgin_.size(); ++i) {
      virgin_[i] |= other.virgin_[i];
      covered_edges_ += (virgin_[i] != 0);
    }
  }

  /// Checkpointing: the full virgin bitmap round-trips; the edge counter is
  /// recomputed on load (it is derived state).
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::array<uint8_t, CoverageMap::kSize> virgin_;
  size_t covered_edges_;
};

/// Campaign-global coverage shared by parallel workers: a GlobalCoverage
/// whose merge is an atomic OR, so any number of harnesses can publish
/// classified run maps concurrently. Each byte's 0 -> nonzero transition is
/// observed by exactly one fetch_or caller, so the edge counter is exact
/// regardless of interleaving; at any synchronization point the bitmap holds
/// precisely the union of all maps merged so far.
class SharedCoverage {
 public:
  SharedCoverage() { Reset(); }

  /// Not thread-safe; call only while no worker is merging.
  void Reset() {
    for (auto& v : virgin_) v.store(0, std::memory_order_relaxed);
    covered_edges_.store(0, std::memory_order_relaxed);
  }

  /// Merges `run` (must already be classified); returns true if any bit was
  /// new to the shared map. Safe to call from many threads at once. The
  /// input map is plain bytes, so zero regions are skipped a word at a time
  /// and atomics are only touched for bytes with coverage.
  bool MergeDetectNew(const CoverageMap& run) {
    bool new_cov = false;
    const uint8_t* rd = run.data();
    for (size_t i = 0; i < CoverageMap::kSize; i += sizeof(uint64_t)) {
      uint64_t word;
      std::memcpy(&word, rd + i, sizeof(word));
      if (word == 0) continue;
      for (size_t j = i; j < i + sizeof(word); ++j) {
        uint8_t bits = rd[j];
        if (bits == 0) continue;
        uint8_t prev = virgin_[j].fetch_or(bits, std::memory_order_relaxed);
        if ((bits & ~prev) != 0) {
          if (prev == 0) {
            covered_edges_.fetch_add(1, std::memory_order_relaxed);
          }
          new_cov = true;
        }
      }
    }
    return new_cov;
  }

  size_t CoveredEdges() const {
    return covered_edges_.load(std::memory_order_relaxed);
  }

  /// Checkpointing. Like Reset(), these are not thread-safe: call only at a
  /// synchronization point while no worker is merging (the parallel
  /// campaign's round barrier guarantees this).
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::array<std::atomic<uint8_t>, CoverageMap::kSize> virgin_;
  std::atomic<size_t> covered_edges_;
};

/// Process-wide sink the LEGO_COV() probes write into. The execution harness
/// points this at a fresh CoverageMap around each test-case execution.
class CoverageRuntime {
 public:
  static void SetActiveMap(CoverageMap* map) { active_ = map; }
  static CoverageMap* active_map() { return active_; }

  static void Hit(uint64_t id) {
    if (active_ != nullptr) active_->Hit(id);
  }

 private:
  static thread_local CoverageMap* active_;
};

/// RAII scope that routes probe hits into `map` for its lifetime.
class CoverageScope {
 public:
  explicit CoverageScope(CoverageMap* map)
      : saved_(CoverageRuntime::active_map()) {
    CoverageRuntime::SetActiveMap(map);
  }
  ~CoverageScope() { CoverageRuntime::SetActiveMap(saved_); }

  CoverageScope(const CoverageScope&) = delete;
  CoverageScope& operator=(const CoverageScope&) = delete;

 private:
  CoverageMap* saved_;
};

}  // namespace lego::cov

/// Instrumentation probe: drop one at each interesting control-flow point in
/// the target engine. The id is a compile-time hash of file:line, so probe
/// identity is stable across runs.
#define LEGO_COV()                                                       \
  do {                                                                   \
    constexpr uint64_t _lego_cov_id =                                    \
        ::lego::HashMix(::lego::Fnv1a64(__FILE__), __LINE__);            \
    ::lego::cov::CoverageRuntime::Hit(_lego_cov_id);                     \
  } while (0)

/// Probe variant keyed by a runtime value (e.g. statement type), so distinct
/// dispatch targets at one source line count as distinct branches.
#define LEGO_COV_KEYED(key)                                              \
  do {                                                                   \
    constexpr uint64_t _lego_cov_id =                                    \
        ::lego::HashMix(::lego::Fnv1a64(__FILE__), __LINE__);            \
    ::lego::cov::CoverageRuntime::Hit(                                   \
        ::lego::HashMix(_lego_cov_id, static_cast<uint64_t>(key)));      \
  } while (0)

#endif  // LEGO_COVERAGE_COVERAGE_H_
