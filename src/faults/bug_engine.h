#ifndef LEGO_FAULTS_BUG_ENGINE_H_
#define LEGO_FAULTS_BUG_ENGINE_H_

#include <set>
#include <string>
#include <vector>

#include "faults/bug_catalog.h"
#include "minidb/database.h"

namespace lego::faults {

/// The fault-injection oracle: a FaultHook that watches a Database session's
/// executed-type trace and raises a synthetic crash when an injected bug's
/// trigger condition is met. This is the reproduction's stand-in for running
/// the targets under AddressSanitizer.
class BugEngine : public minidb::FaultHook {
 public:
  /// Arms the bugs injected into `profile_name`.
  explicit BugEngine(const std::string& profile_name);

  /// Checks the (suffix of the) trace against every armed bug; first match
  /// wins. Stateless across calls except `last_checked_` which avoids
  /// re-reporting a match that existed before the latest statement.
  std::optional<minidb::CrashInfo> Check(const minidb::Database& db) override;

  /// Must be called when the harness resets the session between test cases.
  void ResetSession() { last_checked_ = 0; }

  /// All bugs armed for this engine.
  const std::vector<const BugDef*>& bugs() const { return bugs_; }

  /// The armed bug with this id, or nullptr. Triage uses it to annotate
  /// reproducer artifacts with the expected trigger sequence.
  const BugDef* FindBug(const std::string& id) const;

  /// Pure matcher: does `bug` fire against this trace? Exposed for tests
  /// and for baselines' post-hoc analysis.
  static bool Matches(const BugDef& bug,
                      const std::vector<sql::StatementType>& trace,
                      const std::vector<minidb::FeatureSet>& features,
                      size_t min_end);

 private:
  std::vector<const BugDef*> bugs_;
  /// Trace length already examined; only matches ending beyond this point
  /// are reported (each new statement is checked once).
  size_t last_checked_ = 0;
};

}  // namespace lego::faults

#endif  // LEGO_FAULTS_BUG_ENGINE_H_
