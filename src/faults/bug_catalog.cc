#include "faults/bug_catalog.h"

#include "util/hash.h"

namespace lego::faults {

namespace {

using minidb::ExecFeature;
using sql::StatementType;

constexpr StatementType CT = StatementType::kCreateTable;
constexpr StatementType CI = StatementType::kCreateIndex;
constexpr StatementType CV = StatementType::kCreateView;
constexpr StatementType CTR = StatementType::kCreateTrigger;
constexpr StatementType CSQ = StatementType::kCreateSequence;
constexpr StatementType CR = StatementType::kCreateRule;
constexpr StatementType CU = StatementType::kCreateUser;
constexpr StatementType DT = StatementType::kDropTable;
constexpr StatementType DI = StatementType::kDropIndex;
constexpr StatementType DV = StatementType::kDropView;
constexpr StatementType DTR = StatementType::kDropTrigger;
constexpr StatementType AT = StatementType::kAlterTable;
constexpr StatementType TR = StatementType::kTruncate;
constexpr StatementType INS = StatementType::kInsert;
constexpr StatementType UPD = StatementType::kUpdate;
constexpr StatementType DEL = StatementType::kDelete;
constexpr StatementType REP = StatementType::kReplace;
constexpr StatementType CPY = StatementType::kCopy;
constexpr StatementType SEL = StatementType::kSelect;
constexpr StatementType VAL = StatementType::kValues;
constexpr StatementType WTH = StatementType::kWith;
constexpr StatementType GRT = StatementType::kGrant;
constexpr StatementType REV = StatementType::kRevoke;
constexpr StatementType BEG = StatementType::kBegin;
constexpr StatementType COM = StatementType::kCommit;
constexpr StatementType ROL = StatementType::kRollback;
constexpr StatementType SVP = StatementType::kSavepoint;
constexpr StatementType REL = StatementType::kRelease;
constexpr StatementType RBT = StatementType::kRollbackTo;
constexpr StatementType SET = StatementType::kSet;
constexpr StatementType SHW = StatementType::kShow;
constexpr StatementType EXP = StatementType::kExplain;
constexpr StatementType ANA = StatementType::kAnalyze;
constexpr StatementType VAC = StatementType::kVacuum;
constexpr StatementType RIX = StatementType::kReindex;
constexpr StatementType CHK = StatementType::kCheckpoint;
constexpr StatementType NOT = StatementType::kNotify;
constexpr StatementType LSN = StatementType::kListen;
constexpr StatementType ULS = StatementType::kUnlisten;
constexpr StatementType CMT = StatementType::kComment;
constexpr StatementType ASY = StatementType::kAlterSystem;

BugDef B(const char* id, const char* profile, const char* component,
         const char* kind, std::vector<StatementType> seq,
         const char* identifier = "",
         std::optional<ExecFeature> feature = std::nullopt) {
  BugDef bug;
  bug.id = id;
  bug.profile = profile;
  bug.component = component;
  bug.kind = kind;
  bug.sequence = std::move(seq);
  bug.feature = feature;
  bug.identifier = identifier;
  return bug;
}

std::vector<BugDef> BuildCatalog() {
  std::vector<BugDef> bugs;
  bugs.reserve(102);

  // ----------------------------------------------------------------- pglite
  // 6 bugs: Optimizer BOF(1) AF(1) SEGV(2), Parser AF(1), DML AF(1).
  // PG-OPT-01 is the paper's §V-B case study: a DML rewritten to NOTIFY by
  // an INSTEAD rule inside a WITH clause leaves a NULL jointree and the
  // planner crashes in replace_empty_jointree.
  bugs.push_back(B("PG-OPT-01", "pglite", "Optimizer", "SEGV", {NOT, WTH},
                   "BUG #17097", ExecFeature::kRuleRewrite));
  bugs.push_back(B("PG-OPT-02", "pglite", "Optimizer", "SEGV",
                   {CR, CPY, SEL}, "BUG #17151"));
  bugs.push_back(B("PG-OPT-03", "pglite", "Optimizer", "BOF", {CI, ANA, SEL},
                   "BUG #110303", ExecFeature::kIndexScanUsed));
  bugs.push_back(B("PG-OPT-04", "pglite", "Optimizer", "AF", {CV, AT, SEL},
                   "BUG #17152", ExecFeature::kViewExpansion));
  bugs.push_back(B("PG-PARSE-01", "pglite", "Parser", "AF", {LSN, ULS, LSN},
                   "BUG #17094"));
  bugs.push_back(B("PG-DML-01", "pglite", "DML", "AF", {TR, INS, CPY},
                   "BUG #17067"));

  // ----------------------------------------------------------------- mylite
  // 21 bugs: Optimizer 12, DML 3, Auth 3, Storage 3.
  bugs.push_back(B("MY-OPT-01", "mylite", "Optimizer", "BOF", {CT, INS, SEL},
                   "CVE-2021-2357", ExecFeature::kWindowFunction));
  bugs.push_back(B("MY-OPT-02", "mylite", "Optimizer", "BOF", {CI, UPD, SEL},
                   "CVE-2021-2055", ExecFeature::kIndexScanUsed));
  bugs.push_back(B("MY-OPT-03", "mylite", "Optimizer", "BOF", {ANA, SEL},
                   "CVE-2021-2230", ExecFeature::kHashJoinUsed));
  bugs.push_back(B("MY-OPT-04", "mylite", "Optimizer", "SBOF", {CV, SEL},
                   "CVE-2021-2169", ExecFeature::kSetOperation));
  bugs.push_back(B("MY-OPT-05", "mylite", "Optimizer", "NPD", {AT, SEL},
                   "CVE-2021-2444", ExecFeature::kGroupBy));
  bugs.push_back(B("MY-OPT-06", "mylite", "Optimizer", "NPD", {CV, DT, SEL}));
  bugs.push_back(B("MY-OPT-07", "mylite", "Optimizer", "NPD", {SVP, SEL}, "",
                   ExecFeature::kSubquery));
  bugs.push_back(B("MY-OPT-08", "mylite", "Optimizer", "NPD", {SET, EXP}));
  bugs.push_back(B("MY-OPT-09", "mylite", "Optimizer", "HBOF", {CSQ, SEL}, "",
                   ExecFeature::kOrderBy));
  bugs.push_back(B("MY-OPT-10", "mylite", "Optimizer", "UAF", {DI, SEL}, "",
                   ExecFeature::kOrderBy));
  bugs.push_back(B("MY-OPT-11", "mylite", "Optimizer", "AF", {EXP, EXP}));
  bugs.push_back(B("MY-OPT-12", "mylite", "Optimizer", "AF", {VAL, SEL}, "",
                   ExecFeature::kDistinct));
  bugs.push_back(B("MY-DML-01", "mylite", "DML", "SBOF", {REP, REP, SEL},
                   "CVE-2021-35645"));
  bugs.push_back(B("MY-DML-02", "mylite", "DML", "SEGV", {CTR, INS}, "",
                   ExecFeature::kTriggerFired));
  bugs.push_back(B("MY-DML-03", "mylite", "DML", "SEGV", {AT, UPD, DEL}));
  bugs.push_back(B("MY-AUTH-01", "mylite", "Auth", "SBOF", {CU, GRT, SET},
                   "CVE-2021-35643"));
  // MY-AUTH-02 mirrors the paper's Fig. 3 synthetic seed: CREATE TABLE ->
  // INSERT -> CREATE TRIGGER -> SELECT.
  bugs.push_back(B("MY-AUTH-02", "mylite", "Auth", "SEGV",
                   {INS, CTR, SEL}, "CVE-2021-35643"));
  bugs.push_back(B("MY-AUTH-03", "mylite", "Auth", "SEGV", {REV, SEL}));
  bugs.push_back(B("MY-STOR-01", "mylite", "Storage", "SEGV", {VAC, UPD},
                   "CVE-2021-35641"));
  bugs.push_back(B("MY-STOR-02", "mylite", "Storage", "AF", {TR, RIX}));
  bugs.push_back(B("MY-STOR-03", "mylite", "Storage", "AF", {CHK, ASY, INS}));

  // -------------------------------------------------------------- marialite
  // 42 bugs: Optimizer 9, DML 4, Parser 4, Storage 13, Item 10, Lock 2.
  bugs.push_back(B("MA-OPT-01", "marialite", "Optimizer", "NPD",
                   {CT, INS, SEL}, "CVE-2022-27376", ExecFeature::kGroupBy));
  bugs.push_back(B("MA-OPT-02", "marialite", "Optimizer", "NPD",
                   {INS, CI, SEL}, "CVE-2022-27379",
                   ExecFeature::kIndexScanUsed));
  bugs.push_back(B("MA-OPT-03", "marialite", "Optimizer", "BOF", {SEL, SEL},
                   "CVE-2022-27380", ExecFeature::kWindowFunction));
  bugs.push_back(B("MA-OPT-04", "marialite", "Optimizer", "UAP", {UPD, SEL},
                   "MDEV-26403", ExecFeature::kHashJoinUsed));
  bugs.push_back(B("MA-OPT-05", "marialite", "Optimizer", "UAP", {ANA, EXP},
                   "MDEV-26432"));
  bugs.push_back(B("MA-OPT-06", "marialite", "Optimizer", "UAP", {CV, SEL},
                   "MDEV-26418", ExecFeature::kViewExpansion));
  bugs.push_back(B("MA-OPT-07", "marialite", "Optimizer", "SEGV", {DEL, SEL},
                   "MDEV-26416", ExecFeature::kOrderBy));
  bugs.push_back(B("MA-OPT-08", "marialite", "Optimizer", "SEGV", {SET, SEL},
                   "MDEV-26419", ExecFeature::kSetOperation));
  bugs.push_back(B("MA-OPT-09", "marialite", "Optimizer", "AF",
                   {CSQ, INS, SEL}, "MDEV-26430", ExecFeature::kAggregate));
  bugs.push_back(B("MA-DML-01", "marialite", "DML", "BOF", {INS, UPD, DEL},
                   "CVE-2022-27377"));
  bugs.push_back(B("MA-DML-02", "marialite", "DML", "UAP", {REP, UPD},
                   "CVE-2022-27378"));
  bugs.push_back(B("MA-DML-03", "marialite", "DML", "AF", {BEG, INS, ROL},
                   "MDEV-26120", ExecFeature::kInTransaction));
  bugs.push_back(B("MA-DML-04", "marialite", "DML", "SEGV", {WTH, DEL},
                   "MDEV-25994"));
  bugs.push_back(B("MA-PARSE-01", "marialite", "Parser", "BOF", {CMT, DEL},
                   "CVE-2022-27383"));
  bugs.push_back(B("MA-PARSE-02", "marialite", "Parser", "UAF",
                   {CTR, DTR, INS}, "MDEV-26355"));
  bugs.push_back(B("MA-PARSE-03", "marialite", "Parser", "UAF", {SVP, RBT},
                   "MDEV-26313", ExecFeature::kInTransaction));
  bugs.push_back(B("MA-PARSE-04", "marialite", "Parser", "SEGV", {EXP, INS},
                   "MDEV-26410"));
  bugs.push_back(B("MA-STOR-01", "marialite", "Storage", "SEGV",
                   {CI, INS, TR}, "CVE-2022-27385"));
  bugs.push_back(B("MA-STOR-02", "marialite", "Storage", "SEGV", {VAC, SEL},
                   "CVE-2022-27386"));
  bugs.push_back(B("MA-STOR-03", "marialite", "Storage", "SEGV", {TR, INS},
                   "MDEV-26404"));
  bugs.push_back(B("MA-STOR-04", "marialite", "Storage", "SEGV", {AT, INS},
                   "MDEV-26408"));
  bugs.push_back(B("MA-STOR-05", "marialite", "Storage", "SEGV", {RIX, UPD},
                   "MDEV-26412"));
  bugs.push_back(B("MA-STOR-06", "marialite", "Storage", "SEGV", {DI, INS},
                   "MDEV-26421"));
  bugs.push_back(B("MA-STOR-07", "marialite", "Storage", "SEGV", {CHK, VAC},
                   "MDEV-26434"));
  bugs.push_back(B("MA-STOR-08", "marialite", "Storage", "UAP",
                   {DEL, VAC, SEL}, "MDEV-26436"));
  bugs.push_back(B("MA-STOR-09", "marialite", "Storage", "UAP", {AT, AT},
                   "MDEV-26420"));
  bugs.push_back(B("MA-STOR-10", "marialite", "Storage", "UAF",
                   {DT, CT, INS}, "MDEV-26431"));
  bugs.push_back(B("MA-STOR-11", "marialite", "Storage", "UAF", {ROL, INS},
                   "MDEV-26433"));
  bugs.push_back(B("MA-STOR-12", "marialite", "Storage", "BOF",
                   {INS, INS, AT}, "MDEV-26408"));
  bugs.push_back(B("MA-STOR-13", "marialite", "Storage", "BOF", {CSQ, AT},
                   "MDEV-26432"));
  bugs.push_back(B("MA-ITEM-01", "marialite", "Item", "AF", {SEL, INS},
                   "MDEV-26405", ExecFeature::kSubquery));
  bugs.push_back(B("MA-ITEM-02", "marialite", "Item", "AF", {SET, UPD},
                   "MDEV-26407"));
  bugs.push_back(B("MA-ITEM-03", "marialite", "Item", "AF", {VAL, INS},
                   "MDEV-26411"));
  bugs.push_back(B("MA-ITEM-04", "marialite", "Item", "AF", {UPD, SEL},
                   "MDEV-26414", ExecFeature::kAggregate));
  bugs.push_back(B("MA-ITEM-05", "marialite", "Item", "SEGV", {INS, SEL},
                   "MDEV-26438", ExecFeature::kHaving));
  bugs.push_back(B("MA-ITEM-06", "marialite", "Item", "SEGV", {SHW, SEL},
                   "MDEV-26428"));
  bugs.push_back(B("MA-ITEM-07", "marialite", "Item", "SEGV", {CV, UPD, SEL},
                   "MDEV-26417", ExecFeature::kViewExpansion));
  bugs.push_back(B("MA-ITEM-08", "marialite", "Item", "UAP", {DEL, INS, SEL},
                   "MDEV-26434", ExecFeature::kDistinct));
  bugs.push_back(B("MA-ITEM-09", "marialite", "Item", "UAP", {GRT, SEL},
                   "MDEV-26437"));
  bugs.push_back(B("MA-ITEM-10", "marialite", "Item", "UAF", {DV, CV, SEL},
                   "MDEV-26427"));
  bugs.push_back(B("MA-LOCK-01", "marialite", "Lock", "SEGV",
                   {BEG, SVP, REL}, "MDEV-26425"));
  bugs.push_back(B("MA-LOCK-02", "marialite", "Lock", "SEGV",
                   {BEG, TR, COM}, "MDEV-26424"));

  // --------------------------------------------------------------- comdlite
  // 33 bugs: Bdb UB(6); Berkdb BOF(1) UB(7); Csc2 BOF(1); Db UB(4) UAF(1)
  // SEGV(3); Mem BOF(1) HBOF(1) SEGV(1); Sqlite UB(5) SEGV(2).
  bugs.push_back(B("CD-BDB-01", "comdlite", "Bdb", "UB", {BEG, INS, COM},
                   "CVE-2020-26746"));
  bugs.push_back(B("CD-BDB-02", "comdlite", "Bdb", "UB", {BEG, DEL, ROL},
                   "CVE-2020-26746"));
  bugs.push_back(B("CD-BDB-03", "comdlite", "Bdb", "UB", {SVP, UPD},
                   "CVE-2020-26746"));
  bugs.push_back(B("CD-BDB-04", "comdlite", "Bdb", "UB", {CI, REP, SEL},
                   "CVE-2020-26746"));
  bugs.push_back(B("CD-BDB-05", "comdlite", "Bdb", "UB", {SEL, ANA, UPD},
                   "CVE-2020-26746"));
  bugs.push_back(B("CD-BDB-06", "comdlite", "Bdb", "UB", {TR, SEL},
                   "CVE-2020-26746", ExecFeature::kEmptyInput));
  bugs.push_back(B("CD-BRK-01", "comdlite", "Berkdb", "BOF", {CI, INS, DEL},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-02", "comdlite", "Berkdb", "UB", {UPD, UPD, SEL},
                   "CVE-2020-26745", ExecFeature::kOrderBy));
  bugs.push_back(B("CD-BRK-03", "comdlite", "Berkdb", "UB", {DEL, INS, UPD},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-04", "comdlite", "Berkdb", "UB", {AT, DEL, INS},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-05", "comdlite", "Berkdb", "UB", {WTH, INS, SEL},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-06", "comdlite", "Berkdb", "UB", {VAL, UPD, INS},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-07", "comdlite", "Berkdb", "UB", {EXP, DEL, UPD},
                   "CVE-2020-26745"));
  bugs.push_back(B("CD-BRK-08", "comdlite", "Berkdb", "UB", {REP, SEL},
                   "CVE-2020-26745", ExecFeature::kJoin));
  bugs.push_back(B("CD-CSC-01", "comdlite", "Csc2", "BOF", {CT, AT, INS},
                   "CVE-2020-26744"));
  bugs.push_back(B("CD-DB-01", "comdlite", "Db", "UB", {SET, INS, DEL},
                   "CVE-2020-26743"));
  bugs.push_back(B("CD-DB-02", "comdlite", "Db", "UB", {CV, DEL, SEL},
                   "CVE-2020-26743"));
  bugs.push_back(B("CD-DB-03", "comdlite", "Db", "UB", {SEL, DEL, SEL},
                   "CVE-2020-26743"));
  bugs.push_back(B("CD-DB-04", "comdlite", "Db", "UB", {CTR, UPD},
                   "CVE-2020-26743", ExecFeature::kTriggerFired));
  bugs.push_back(B("CD-DB-05", "comdlite", "Db", "UAF", {DTR, INS, UPD}));
  bugs.push_back(B("CD-DB-06", "comdlite", "Db", "SEGV", {CTR, INS, INS}, "",
                   ExecFeature::kTriggerFired));
  bugs.push_back(B("CD-DB-07", "comdlite", "Db", "SEGV", {ROL, SEL, INS}));
  bugs.push_back(B("CD-DB-08", "comdlite", "Db", "SEGV", {WTH, UPD, SEL}));
  bugs.push_back(B("CD-MEM-01", "comdlite", "Mem", "BOF", {INS, TR, INS},
                   "CVE-2020-26741"));
  bugs.push_back(B("CD-MEM-02", "comdlite", "Mem", "HBOF", {DEL, REP, UPD},
                   "CVE-2020-26742"));
  bugs.push_back(B("CD-MEM-03", "comdlite", "Mem", "SEGV", {DI, SEL, UPD}));
  bugs.push_back(B("CD-SQL-01", "comdlite", "Sqlite", "UB", {INS, SEL}, "",
                   ExecFeature::kGroupBy));
  bugs.push_back(B("CD-SQL-02", "comdlite", "Sqlite", "UB", {SEL, SEL}, "",
                   ExecFeature::kSetOperation));
  bugs.push_back(B("CD-SQL-03", "comdlite", "Sqlite", "UB", {CV, SEL}, "",
                   ExecFeature::kViewExpansion));
  bugs.push_back(B("CD-SQL-04", "comdlite", "Sqlite", "UB", {UPD, SEL}, "",
                   ExecFeature::kSubquery));
  bugs.push_back(B("CD-SQL-05", "comdlite", "Sqlite", "UB", {BEG, SEL, COM}));
  bugs.push_back(B("CD-SQL-06", "comdlite", "Sqlite", "SEGV", {INS, WTH, SEL}));
  bugs.push_back(B("CD-SQL-07", "comdlite", "Sqlite", "SEGV", {ANA, SEL}, "",
                   ExecFeature::kIndexScanUsed));

  return bugs;
}

}  // namespace

uint64_t BugDef::StackHash() const {
  uint64_t h = Fnv1a64(id);
  h = HashMix(h, Fnv1a64(component, h));
  h = HashMix(h, Fnv1a64(kind, h));
  return h;
}

const std::vector<BugDef>& BugCatalog() {
  static const std::vector<BugDef>* kCatalog =
      new std::vector<BugDef>(BuildCatalog());
  return *kCatalog;
}

std::vector<const BugDef*> BugsForProfile(const std::string& profile) {
  std::vector<const BugDef*> out;
  for (const BugDef& bug : BugCatalog()) {
    if (bug.profile == profile) out.push_back(&bug);
  }
  return out;
}

}  // namespace lego::faults
