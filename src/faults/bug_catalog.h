#ifndef LEGO_FAULTS_BUG_CATALOG_H_
#define LEGO_FAULTS_BUG_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "minidb/database.h"
#include "sql/statement_type.h"

namespace lego::faults {

/// One injected vulnerability. A bug fires when `sequence` occurs as a
/// contiguous subsequence of the session's executed-type trace and, if
/// `feature` is set, the trace entry matching the final element carries that
/// feature. This encodes the paper's observation that its bugs are triggered
/// by unexpected SQL Type Sequences (§V-B).
struct BugDef {
  std::string id;         // stable id, e.g. "MY-OPT-03"
  std::string profile;    // pglite | mylite | marialite | comdlite
  std::string component;  // Optimizer, Parser, DML, Storage, ...
  std::string kind;       // SEGV, UAF, BOF, SBOF, HBOF, AF, NPD, UAP, UB
  std::vector<sql::StatementType> sequence;
  std::optional<minidb::ExecFeature> feature;
  std::string identifier;  // CVE / tracker id from the paper, or ""

  /// Deterministic synthetic call-stack hash (dedup key).
  uint64_t StackHash() const;
};

/// The full 102-bug inventory mirroring the paper's Table I distribution:
/// 6 pglite, 21 mylite, 42 marialite, 33 comdlite.
const std::vector<BugDef>& BugCatalog();

/// Bugs injected into `profile`.
std::vector<const BugDef*> BugsForProfile(const std::string& profile);

}  // namespace lego::faults

#endif  // LEGO_FAULTS_BUG_CATALOG_H_
