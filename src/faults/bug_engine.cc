#include "faults/bug_engine.h"

namespace lego::faults {

BugEngine::BugEngine(const std::string& profile_name)
    : bugs_(BugsForProfile(profile_name)) {}

const BugDef* BugEngine::FindBug(const std::string& id) const {
  for (const BugDef* bug : bugs_) {
    if (bug->id == id) return bug;
  }
  return nullptr;
}

bool BugEngine::Matches(const BugDef& bug,
                        const std::vector<sql::StatementType>& trace,
                        const std::vector<minidb::FeatureSet>& features,
                        size_t min_end) {
  const size_t n = bug.sequence.size();
  if (n == 0 || trace.size() < n) return false;
  // A match must END at index >= min_end so each statement is examined once.
  size_t first_end = std::max(min_end, n - 1);
  for (size_t end = first_end; end < trace.size(); ++end) {
    size_t start = end + 1 - n;
    bool match = true;
    for (size_t i = 0; i < n; ++i) {
      if (trace[start + i] != bug.sequence[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (bug.feature.has_value() &&
        !features[end].test(static_cast<size_t>(*bug.feature))) {
      continue;
    }
    return true;
  }
  return false;
}

std::optional<minidb::CrashInfo> BugEngine::Check(
    const minidb::Database& db) {
  const auto& trace = db.session().type_trace;
  const auto& features = db.session().feature_trace;
  if (trace.size() <= last_checked_) {
    // Session was reset under us; start over.
    last_checked_ = 0;
  }
  size_t min_end = last_checked_;
  last_checked_ = trace.size();
  for (const BugDef* bug : bugs_) {
    if (Matches(*bug, trace, features, min_end)) {
      minidb::CrashInfo crash;
      crash.bug_id = bug->id;
      crash.component = bug->component;
      crash.kind = bug->kind;
      crash.stack_hash = bug->StackHash();
      crash.message = "injected " + bug->kind + " (" +
                      (bug->identifier.empty() ? "unreported" : bug->identifier) +
                      ") reached via SQL type sequence";
      return crash;
    }
  }
  return std::nullopt;
}

}  // namespace lego::faults
