#include "lego/generator.h"

#include <algorithm>

namespace lego::core {

namespace {

using sql::StatementType;

sql::SqlType RandomSqlType(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0: return sql::SqlType::kInt;
    case 1: return sql::SqlType::kReal;
    case 2: return sql::SqlType::kText;
    default: return sql::SqlType::kBool;
  }
}

std::vector<SymbolicColumn> ColumnsOfSelect(const sql::SelectStmt& select) {
  std::vector<SymbolicColumn> cols;
  size_t i = 0;
  for (const auto& item : select.core.items) {
    SymbolicColumn col;
    if (!item.alias.empty()) {
      col.name = item.alias;
    } else if (item.expr->kind() == sql::ExprKind::kColumnRef) {
      col.name = static_cast<const sql::ColumnRef&>(*item.expr).column();
    } else {
      col.name = "column" + std::to_string(i + 1);
    }
    cols.push_back(std::move(col));
    ++i;
  }
  return cols;
}

}  // namespace

// ---------------------------------------------------------------------------
// SchemaContext
// ---------------------------------------------------------------------------

void SchemaContext::Apply(const sql::Statement& stmt) {
  switch (stmt.type()) {
    case StatementType::kCreateTable: {
      const auto& s = static_cast<const sql::CreateTableStmt&>(stmt);
      SymbolicTable table;
      table.name = s.name;
      for (const auto& col : s.columns) {
        table.columns.push_back({col.name, col.type});
      }
      relations_[s.name] = std::move(table);
      break;
    }
    case StatementType::kCreateView: {
      const auto& s = static_cast<const sql::CreateViewStmt&>(stmt);
      SymbolicTable view;
      view.name = s.name;
      view.is_view = true;
      view.columns = ColumnsOfSelect(*s.select);
      relations_[s.name] = std::move(view);
      views_.insert(s.name);
      break;
    }
    case StatementType::kCreateIndex:
      indexes_.insert(static_cast<const sql::CreateIndexStmt&>(stmt).name);
      break;
    case StatementType::kCreateTrigger:
      triggers_.insert(static_cast<const sql::CreateTriggerStmt&>(stmt).name);
      break;
    case StatementType::kCreateRule:
      rules_.insert(static_cast<const sql::CreateRuleStmt&>(stmt).name);
      break;
    case StatementType::kCreateSequence:
      sequences_.insert(
          static_cast<const sql::CreateSequenceStmt&>(stmt).name);
      break;
    case StatementType::kCreateUser:
      users_.insert(static_cast<const sql::CreateUserStmt&>(stmt).name);
      break;
    case StatementType::kDropTable:
      relations_.erase(static_cast<const sql::DropStmt&>(stmt).name());
      break;
    case StatementType::kDropView: {
      const std::string& name = static_cast<const sql::DropStmt&>(stmt).name();
      relations_.erase(name);
      views_.erase(name);
      break;
    }
    case StatementType::kDropIndex:
      indexes_.erase(static_cast<const sql::DropStmt&>(stmt).name());
      break;
    case StatementType::kDropTrigger:
      triggers_.erase(static_cast<const sql::DropStmt&>(stmt).name());
      break;
    case StatementType::kDropRule:
      rules_.erase(static_cast<const sql::DropStmt&>(stmt).name());
      break;
    case StatementType::kDropSequence:
      sequences_.erase(static_cast<const sql::DropStmt&>(stmt).name());
      break;
    case StatementType::kDropUser:
      users_.erase(static_cast<const sql::DropUserStmt&>(stmt).name);
      break;
    case StatementType::kAlterTable: {
      const auto& s = static_cast<const sql::AlterTableStmt&>(stmt);
      auto it = relations_.find(s.table);
      if (it == relations_.end()) break;
      SymbolicTable& table = it->second;
      switch (s.action) {
        case sql::AlterAction::kAddColumn:
          table.columns.push_back({s.new_column.name, s.new_column.type});
          break;
        case sql::AlterAction::kDropColumn:
          for (size_t i = 0; i < table.columns.size(); ++i) {
            if (table.columns[i].name == s.old_name) {
              table.columns.erase(table.columns.begin() +
                                  static_cast<long>(i));
              break;
            }
          }
          break;
        case sql::AlterAction::kRenameColumn:
          for (auto& col : table.columns) {
            if (col.name == s.old_name) col.name = s.new_name;
          }
          break;
        case sql::AlterAction::kRenameTable: {
          SymbolicTable moved = std::move(table);
          moved.name = s.new_name;
          relations_.erase(it);
          relations_[s.new_name] = std::move(moved);
          break;
        }
      }
      break;
    }
    case StatementType::kBegin:
      in_txn_ = true;
      break;
    case StatementType::kCommit:
    case StatementType::kRollback:
      in_txn_ = false;
      savepoints_.clear();
      break;
    case StatementType::kSavepoint:
      savepoints_.insert(static_cast<const sql::NamedStmt&>(stmt).name());
      break;
    case StatementType::kRelease:
      savepoints_.erase(static_cast<const sql::NamedStmt&>(stmt).name());
      break;
    default:
      break;
  }
}

const SymbolicTable* SchemaContext::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const SymbolicTable* SchemaContext::RandomTable(Rng* rng) const {
  std::vector<const SymbolicTable*> tables;
  for (const auto& [name, rel] : relations_) {
    if (!rel.is_view && !rel.columns.empty()) tables.push_back(&rel);
  }
  if (tables.empty()) return nullptr;
  return tables[rng->NextBelow(tables.size())];
}

const SymbolicTable* SchemaContext::RandomRelation(Rng* rng) const {
  std::vector<const SymbolicTable*> rels;
  for (const auto& [name, rel] : relations_) {
    if (!rel.columns.empty()) rels.push_back(&rel);
  }
  if (rels.empty()) return nullptr;
  return rels[rng->NextBelow(rels.size())];
}

bool SchemaContext::HasTables() const {
  for (const auto& [name, rel] : relations_) {
    if (!rel.is_view) return true;
  }
  return false;
}

std::string SchemaContext::FreshName(const char* prefix) {
  return std::string(prefix) + std::to_string(counter_++);
}

// ---------------------------------------------------------------------------
// StatementGenerator
// ---------------------------------------------------------------------------

const SymbolicColumn* StatementGenerator::RandomColumn(
    const SymbolicTable& table) {
  if (table.columns.empty()) return nullptr;
  return &table.columns[rng_->NextBelow(table.columns.size())];
}

std::string StatementGenerator::PickName(const std::set<std::string>& names,
                                         const char* fallback) {
  if (names.empty()) return fallback;
  size_t pick = rng_->NextBelow(names.size());
  auto it = names.begin();
  std::advance(it, static_cast<long>(pick));
  return *it;
}

sql::ExprPtr StatementGenerator::RandomLiteral(sql::SqlType type) {
  if (rng_->NextBool(0.08)) return sql::Literal::Null();
  switch (type) {
    case sql::SqlType::kInt:
      return sql::Literal::Int(rng_->NextInRange(-100, 100));
    case sql::SqlType::kReal:
      return sql::Literal::Real(
          static_cast<double>(rng_->NextInRange(-1000, 1000)) / 8.0);
    case sql::SqlType::kText:
      return sql::Literal::Text(rng_->NextIdentifier(6));
    case sql::SqlType::kBool:
      return sql::Literal::Bool(rng_->NextBool());
  }
  return sql::Literal::Null();
}

sql::ExprPtr StatementGenerator::RandomScalar(const SymbolicTable* table,
                                              int depth) {
  if (depth <= 0 || table == nullptr || table->columns.empty() ||
      rng_->NextBool(0.35)) {
    return RandomLiteral(RandomSqlType(rng_));
  }
  switch (rng_->NextBelow(5)) {
    case 0: {
      const SymbolicColumn* col = RandomColumn(*table);
      return std::make_unique<sql::ColumnRef>("", col->name);
    }
    case 1: {
      auto op = rng_->NextBool() ? sql::BinaryOp::kAdd : sql::BinaryOp::kMul;
      return std::make_unique<sql::BinaryExpr>(
          op, RandomScalar(table, depth - 1), RandomScalar(table, depth - 1));
    }
    case 2: {
      std::vector<sql::ExprPtr> args;
      args.push_back(RandomScalar(table, depth - 1));
      const char* fns[] = {"ABS", "LENGTH", "UPPER", "LOWER", "TYPEOF"};
      return std::make_unique<sql::FunctionCall>(
          fns[rng_->NextBelow(5)], std::move(args));
    }
    case 3: {
      std::vector<std::pair<sql::ExprPtr, sql::ExprPtr>> whens;
      whens.emplace_back(RandomPredicate(*table, depth - 1),
                         RandomScalar(table, depth - 1));
      return std::make_unique<sql::CaseExpr>(nullptr, std::move(whens),
                                             RandomScalar(table, depth - 1));
    }
    default:
      return std::make_unique<sql::CastExpr>(RandomScalar(table, depth - 1),
                                             RandomSqlType(rng_));
  }
}

sql::ExprPtr StatementGenerator::RandomPredicate(const SymbolicTable& table,
                                                 int depth) {
  if (table.columns.empty()) return sql::Literal::Bool(true);
  const SymbolicColumn* col = RandomColumn(table);
  auto col_ref = [&]() {
    return std::make_unique<sql::ColumnRef>("", col->name);
  };
  if (depth > 0 && rng_->NextBool(0.25)) {
    auto op = rng_->NextBool() ? sql::BinaryOp::kAnd : sql::BinaryOp::kOr;
    return std::make_unique<sql::BinaryExpr>(op,
                                             RandomPredicate(table, depth - 1),
                                             RandomPredicate(table, depth - 1));
  }
  switch (rng_->NextBelow(6)) {
    case 0: {
      static const sql::BinaryOp kOps[] = {
          sql::BinaryOp::kEq, sql::BinaryOp::kNe, sql::BinaryOp::kLt,
          sql::BinaryOp::kLe, sql::BinaryOp::kGt, sql::BinaryOp::kGe};
      return std::make_unique<sql::BinaryExpr>(kOps[rng_->NextBelow(6)],
                                               col_ref(),
                                               RandomLiteral(col->type));
    }
    case 1:
      return std::make_unique<sql::IsNullExpr>(col_ref(), rng_->NextBool());
    case 2: {
      std::vector<sql::ExprPtr> list;
      size_t n = 1 + rng_->NextBelow(3);
      for (size_t i = 0; i < n; ++i) list.push_back(RandomLiteral(col->type));
      return std::make_unique<sql::InListExpr>(col_ref(), std::move(list),
                                               rng_->NextBool(0.2));
    }
    case 3:
      return std::make_unique<sql::BetweenExpr>(col_ref(),
                                                RandomLiteral(col->type),
                                                RandomLiteral(col->type),
                                                rng_->NextBool(0.2));
    case 4:
      if (col->type == sql::SqlType::kText) {
        return std::make_unique<sql::LikeExpr>(
            col_ref(),
            sql::Literal::Text("%" + rng_->NextIdentifier(3) + "%"),
            rng_->NextBool(0.2));
      }
      [[fallthrough]];
    default:
      return std::make_unique<sql::BinaryExpr>(sql::BinaryOp::kEq, col_ref(),
                                               RandomLiteral(col->type));
  }
}

sql::ColumnDef StatementGenerator::RandomColumnDef(SchemaContext* ctx) {
  sql::ColumnDef def(ctx->FreshName("c"), RandomSqlType(rng_));
  if (rng_->NextBool(0.12)) def.unique = true;
  if (rng_->NextBool(0.12)) def.not_null = true;
  if (rng_->NextBool(0.15)) def.default_value = RandomLiteral(def.type);
  return def;
}

std::unique_ptr<sql::SelectStmt> StatementGenerator::GenerateSelect(
    SchemaContext* ctx, int depth, bool fancy) {
  auto select = std::make_unique<sql::SelectStmt>();
  const SymbolicTable* table = ctx->RandomRelation(rng_);

  if (table == nullptr) {
    sql::SelectItem item;
    item.expr = RandomLiteral(RandomSqlType(rng_));
    select->core.items.push_back(std::move(item));
    return select;
  }

  // FROM: one table, sometimes a join.
  auto from = std::make_unique<sql::BaseTableRef>(table->name);
  const SymbolicTable* right = nullptr;
  if (fancy && rng_->NextBool(0.25)) {
    right = ctx->RandomRelation(rng_);
    if (right != nullptr && !right->columns.empty() &&
        right->name != table->name) {
      sql::JoinType jt = rng_->NextBool(0.3) ? sql::JoinType::kLeft
                                             : sql::JoinType::kInner;
      auto on = std::make_unique<sql::BinaryExpr>(
          sql::BinaryOp::kEq,
          std::make_unique<sql::ColumnRef>(table->name,
                                           table->columns[0].name),
          std::make_unique<sql::ColumnRef>(right->name,
                                           right->columns[0].name));
      select->core.from = std::make_unique<sql::JoinRef>(
          jt, std::move(from),
          std::make_unique<sql::BaseTableRef>(right->name), std::move(on));
    } else {
      right = nullptr;
      select->core.from = std::move(from);
    }
  } else {
    select->core.from = std::move(from);
  }

  bool aggregated = fancy && rng_->NextBool(0.25);
  if (aggregated && !table->columns.empty()) {
    // SELECT g, AGG(x) FROM t GROUP BY g [HAVING ...].
    const SymbolicColumn* g = RandomColumn(*table);
    const SymbolicColumn* x = RandomColumn(*table);
    sql::SelectItem key;
    key.expr = std::make_unique<sql::ColumnRef>("", g->name);
    select->core.items.push_back(std::move(key));
    const char* aggs[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
    std::vector<sql::ExprPtr> args;
    args.push_back(std::make_unique<sql::ColumnRef>("", x->name));
    auto agg = std::make_unique<sql::FunctionCall>(
        aggs[rng_->NextBelow(5)], std::move(args));
    if (rng_->NextBool(0.2)) agg->set_distinct(true);
    sql::SelectItem val;
    val.expr = std::move(agg);
    select->core.items.push_back(std::move(val));
    select->core.group_by.push_back(
        std::make_unique<sql::ColumnRef>("", g->name));
    if (rng_->NextBool(0.3)) {
      std::vector<sql::ExprPtr> hargs;
      hargs.push_back(std::make_unique<sql::ColumnRef>("", x->name));
      auto inner = std::make_unique<sql::FunctionCall>("COUNT",
                                                       std::move(hargs));
      select->core.having = std::make_unique<sql::BinaryExpr>(
          sql::BinaryOp::kGt, std::move(inner), sql::Literal::Int(0));
    }
  } else {
    // Plain projection: star or 1-3 expressions.
    if (rng_->NextBool(0.3)) {
      sql::SelectItem item;
      item.expr = std::make_unique<sql::Star>();
      select->core.items.push_back(std::move(item));
    } else {
      size_t n = 1 + rng_->NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        sql::SelectItem item;
        item.expr = RandomScalar(table, 2);
        select->core.items.push_back(std::move(item));
      }
    }
    // Window function sometimes.
    if (fancy && profile_->supports_window_functions &&
        rng_->NextBool(0.12) && !table->columns.empty()) {
      const char* wins[] = {"ROW_NUMBER", "RANK", "LEAD", "LAG"};
      const char* name = wins[rng_->NextBelow(4)];
      std::vector<sql::ExprPtr> args;
      if (name[0] == 'L') {
        args.push_back(
            std::make_unique<sql::ColumnRef>("",
                                             RandomColumn(*table)->name));
      }
      auto win = std::make_unique<sql::FunctionCall>(name, std::move(args));
      auto spec = std::make_unique<sql::WindowSpec>();
      spec->order_by.emplace_back(
          std::make_unique<sql::ColumnRef>("", RandomColumn(*table)->name),
          rng_->NextBool(0.3));
      win->set_window(std::move(spec));
      sql::SelectItem item;
      item.expr = std::move(win);
      select->core.items.push_back(std::move(item));
    }
    if (fancy && rng_->NextBool(0.15)) select->core.distinct = true;
  }

  if (rng_->NextBool(0.55)) {
    select->core.where = RandomPredicate(*table, depth);
  }
  // Correlated-free scalar subquery in the WHERE, occasionally.
  if (fancy && depth > 0 && rng_->NextBool(0.1)) {
    auto sub = GenerateSelect(ctx, depth - 1, false);
    auto exists = std::make_unique<sql::ExistsExpr>(std::move(sub),
                                                    rng_->NextBool(0.2));
    if (select->core.where != nullptr) {
      select->core.where = std::make_unique<sql::BinaryExpr>(
          sql::BinaryOp::kAnd, std::move(select->core.where),
          std::move(exists));
    } else {
      select->core.where = std::move(exists);
    }
  }

  // Compound arm.
  if (fancy && profile_->supports_set_operations && rng_->NextBool(0.1)) {
    auto arm = GenerateSelect(ctx, 0, false);
    if (arm->core.items.size() == select->core.items.size() &&
        arm->compounds.empty()) {
      static const sql::SetOpKind kKinds[] = {
          sql::SetOpKind::kUnion, sql::SetOpKind::kUnionAll,
          sql::SetOpKind::kExcept, sql::SetOpKind::kIntersect};
      select->compounds.emplace_back(kKinds[rng_->NextBelow(4)],
                                     std::move(arm->core));
    }
  }

  if (rng_->NextBool(0.35) && !table->columns.empty()) {
    sql::OrderByItem item;
    item.expr = std::make_unique<sql::ColumnRef>(
        "", RandomColumn(*table)->name);
    item.desc = rng_->NextBool(0.4);
    select->order_by.push_back(std::move(item));
  }
  if (rng_->NextBool(0.2)) {
    select->limit = sql::Literal::Int(rng_->NextInRange(0, 16));
  }
  return select;
}

sql::StmtPtr StatementGenerator::Generate(StatementType type,
                                          SchemaContext* ctx) {
  const SymbolicTable* table = ctx->RandomTable(rng_);
  auto table_name = [&]() -> std::string {
    return table != nullptr ? table->name : "t0";
  };

  switch (type) {
    case StatementType::kCreateTable: {
      auto stmt = std::make_unique<sql::CreateTableStmt>();
      stmt->name = ctx->FreshName("t");
      stmt->temporary = rng_->NextBool(0.08);
      size_t n = 1 + rng_->NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        stmt->columns.push_back(RandomColumnDef(ctx));
      }
      if (rng_->NextBool(0.25)) stmt->columns[0].primary_key = true;
      return stmt;
    }
    case StatementType::kCreateIndex: {
      auto stmt = std::make_unique<sql::CreateIndexStmt>();
      stmt->name = ctx->FreshName("ix");
      stmt->table = table_name();
      stmt->unique = rng_->NextBool(0.2);
      if (table != nullptr && !table->columns.empty()) {
        stmt->columns.push_back(RandomColumn(*table)->name);
      } else {
        stmt->columns.push_back("c0");
      }
      return stmt;
    }
    case StatementType::kCreateView: {
      auto stmt = std::make_unique<sql::CreateViewStmt>();
      stmt->name = ctx->FreshName("v");
      stmt->or_replace = rng_->NextBool(0.15);
      stmt->select = GenerateSelect(ctx, 1, false);
      return stmt;
    }
    case StatementType::kCreateTrigger: {
      auto stmt = std::make_unique<sql::CreateTriggerStmt>();
      stmt->name = ctx->FreshName("tg");
      stmt->timing = rng_->NextBool(0.3) ? sql::TriggerTiming::kBefore
                                         : sql::TriggerTiming::kAfter;
      stmt->event = static_cast<sql::TriggerEvent>(rng_->NextBelow(3));
      stmt->table = table_name();
      stmt->for_each_row = rng_->NextBool(0.8);
      stmt->body = Generate(StatementType::kInsert, ctx);
      return stmt;
    }
    case StatementType::kCreateSequence: {
      auto stmt = std::make_unique<sql::CreateSequenceStmt>();
      stmt->name = ctx->FreshName("sq");
      stmt->start = rng_->NextInRange(-4, 16);
      stmt->increment = rng_->NextBool(0.2) ? -1 : 1;
      return stmt;
    }
    case StatementType::kCreateRule: {
      auto stmt = std::make_unique<sql::CreateRuleStmt>();
      stmt->name = ctx->FreshName("rl");
      stmt->or_replace = rng_->NextBool(0.3);
      stmt->event = static_cast<sql::TriggerEvent>(rng_->NextBelow(3));
      stmt->table = table_name();
      stmt->instead = true;
      switch (rng_->NextBelow(3)) {
        case 0:
          stmt->action = nullptr;  // DO INSTEAD NOTHING
          break;
        case 1: {
          if (profile_->supports_notify) {
            auto notify = std::make_unique<sql::NotifyStmt>();
            notify->channel = ctx->FreshName("ch");
            stmt->action = std::move(notify);
          } else {
            stmt->action = nullptr;
          }
          break;
        }
        default:
          stmt->action = Generate(StatementType::kDelete, ctx);
          break;
      }
      return stmt;
    }
    case StatementType::kCreateUser: {
      auto stmt = std::make_unique<sql::CreateUserStmt>();
      stmt->name = ctx->FreshName("u");
      return stmt;
    }
    case StatementType::kDropTable:
      return std::make_unique<sql::DropStmt>(type, table_name(),
                                             rng_->NextBool(0.3));
    case StatementType::kDropIndex:
      return std::make_unique<sql::DropStmt>(
          type, PickName(ctx->indexes(), "ix0"), rng_->NextBool(0.3));
    case StatementType::kDropView:
      return std::make_unique<sql::DropStmt>(
          type, PickName(ctx->views(), "v0"), rng_->NextBool(0.3));
    case StatementType::kDropTrigger:
      return std::make_unique<sql::DropStmt>(
          type, PickName(ctx->triggers(), "tg0"), rng_->NextBool(0.3));
    case StatementType::kDropSequence:
      return std::make_unique<sql::DropStmt>(
          type, PickName(ctx->sequences(), "sq0"), rng_->NextBool(0.3));
    case StatementType::kDropRule:
      return std::make_unique<sql::DropStmt>(
          type, PickName(ctx->rules(), "rl0"), rng_->NextBool(0.3));
    case StatementType::kDropUser: {
      auto stmt = std::make_unique<sql::DropUserStmt>();
      stmt->name = PickName(ctx->users(), "u0");
      stmt->if_exists = rng_->NextBool(0.3);
      return stmt;
    }
    case StatementType::kAlterTable: {
      auto stmt = std::make_unique<sql::AlterTableStmt>();
      stmt->table = table_name();
      switch (rng_->NextBelow(4)) {
        case 0:
          stmt->action = sql::AlterAction::kAddColumn;
          stmt->new_column = RandomColumnDef(ctx);
          stmt->new_column.not_null = false;  // addable to non-empty tables
          break;
        case 1:
          stmt->action = sql::AlterAction::kDropColumn;
          stmt->old_name = (table != nullptr && !table->columns.empty())
                               ? RandomColumn(*table)->name
                               : "c0";
          break;
        case 2:
          stmt->action = sql::AlterAction::kRenameColumn;
          stmt->old_name = (table != nullptr && !table->columns.empty())
                               ? RandomColumn(*table)->name
                               : "c0";
          stmt->new_name = ctx->FreshName("c");
          break;
        default:
          stmt->action = sql::AlterAction::kRenameTable;
          stmt->new_name = ctx->FreshName("t");
          break;
      }
      return stmt;
    }
    case StatementType::kTruncate: {
      auto stmt = std::make_unique<sql::TruncateStmt>();
      stmt->table = table_name();
      return stmt;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      auto stmt = std::make_unique<sql::InsertStmt>();
      stmt->replace = (type == StatementType::kReplace);
      stmt->table = table_name();
      stmt->or_ignore = !stmt->replace && rng_->NextBool(0.15);
      size_t width = (table != nullptr) ? table->columns.size() : 2;
      size_t nrows = 1 + rng_->NextBelow(5);
      for (size_t r = 0; r < nrows; ++r) {
        std::vector<sql::ExprPtr> row;
        for (size_t c = 0; c < width; ++c) {
          sql::SqlType t = (table != nullptr) ? table->columns[c].type
                                              : sql::SqlType::kInt;
          row.push_back(RandomLiteral(t));
        }
        stmt->rows.push_back(std::move(row));
      }
      return stmt;
    }
    case StatementType::kUpdate: {
      auto stmt = std::make_unique<sql::UpdateStmt>();
      stmt->table = table_name();
      if (table != nullptr && !table->columns.empty()) {
        const SymbolicColumn* col = RandomColumn(*table);
        stmt->assignments.emplace_back(col->name, RandomLiteral(col->type));
        if (rng_->NextBool(0.6)) {
          stmt->where = RandomPredicate(*table, 1);
        }
      } else {
        stmt->assignments.emplace_back("c0", sql::Literal::Int(1));
      }
      return stmt;
    }
    case StatementType::kDelete: {
      auto stmt = std::make_unique<sql::DeleteStmt>();
      stmt->table = table_name();
      if (table != nullptr && rng_->NextBool(0.7)) {
        stmt->where = RandomPredicate(*table, 1);
      }
      return stmt;
    }
    case StatementType::kCopy: {
      auto stmt = std::make_unique<sql::CopyStmt>();
      if (rng_->NextBool(0.3)) {
        stmt->query = GenerateSelect(ctx, 0, false);
      } else {
        stmt->table = table_name();
      }
      stmt->to_stdout = true;
      stmt->csv = rng_->NextBool(0.5);
      stmt->header = rng_->NextBool(0.3);
      return stmt;
    }
    case StatementType::kSelect:
      return GenerateSelect(ctx, 1, fancy_selects_);
    case StatementType::kValues: {
      auto stmt = std::make_unique<sql::ValuesStmt>();
      size_t width = 1 + rng_->NextBelow(3);
      size_t nrows = 1 + rng_->NextBelow(2);
      for (size_t r = 0; r < nrows; ++r) {
        std::vector<sql::ExprPtr> row;
        for (size_t c = 0; c < width; ++c) {
          row.push_back(RandomLiteral(RandomSqlType(rng_)));
        }
        stmt->rows.push_back(std::move(row));
      }
      return stmt;
    }
    case StatementType::kWith: {
      auto stmt = std::make_unique<sql::WithStmt>();
      sql::CommonTableExpr cte;
      cte.name = ctx->FreshName("w");
      if (rng_->NextBool(0.3) && ctx->HasTables()) {
        cte.statement = Generate(StatementType::kInsert, ctx);
      } else {
        cte.statement = GenerateSelect(ctx, 0, false);
      }
      stmt->ctes.push_back(std::move(cte));
      switch (rng_->NextBelow(3)) {
        case 0:
          stmt->body = Generate(StatementType::kDelete, ctx);
          break;
        case 1:
          stmt->body = Generate(StatementType::kUpdate, ctx);
          break;
        default:
          stmt->body = GenerateSelect(ctx, 0, false);
          break;
      }
      return stmt;
    }
    case StatementType::kGrant: {
      auto stmt = std::make_unique<sql::GrantStmt>();
      stmt->privilege = static_cast<sql::Privilege>(rng_->NextBelow(5));
      stmt->table = table_name();
      stmt->user = PickName(ctx->users(), "u0");
      return stmt;
    }
    case StatementType::kRevoke: {
      auto stmt = std::make_unique<sql::RevokeStmt>();
      stmt->privilege = static_cast<sql::Privilege>(rng_->NextBelow(5));
      stmt->table = table_name();
      stmt->user = PickName(ctx->users(), "u0");
      return stmt;
    }
    case StatementType::kBegin:
    case StatementType::kCommit:
    case StatementType::kRollback:
    case StatementType::kCheckpoint:
      return std::make_unique<sql::SimpleStmt>(type);
    case StatementType::kSavepoint:
      return std::make_unique<sql::NamedStmt>(type, ctx->FreshName("sp"));
    case StatementType::kRelease:
    case StatementType::kRollbackTo:
      return std::make_unique<sql::NamedStmt>(
          type, PickName(ctx->savepoints(), "sp0"));
    case StatementType::kListen:
    case StatementType::kUnlisten:
      return std::make_unique<sql::NamedStmt>(type,
                                              "ch" + std::to_string(
                                                  rng_->NextBelow(4)));
    case StatementType::kPragma:
    case StatementType::kSet: {
      auto stmt = std::make_unique<sql::PragmaStmt>();
      stmt->is_set = (type == StatementType::kSet);
      static const char* kNames[] = {"foreign_keys", "optimizer_trace",
                                     "sort_buffer", "explicit_defaults",
                                     "join_limit"};
      stmt->name = kNames[rng_->NextBelow(5)];
      stmt->value = sql::Literal::Int(rng_->NextInRange(0, 4));
      stmt->session_scope = stmt->is_set && rng_->NextBool(0.3);
      return stmt;
    }
    case StatementType::kShow: {
      auto stmt = std::make_unique<sql::ShowStmt>();
      static const char* kWhats[] = {"TABLES", "VIEWS", "INDEXES", "TRIGGERS"};
      stmt->what = kWhats[rng_->NextBelow(4)];
      return stmt;
    }
    case StatementType::kExplain: {
      auto stmt = std::make_unique<sql::ExplainStmt>();
      stmt->analyze = rng_->NextBool(0.25);
      stmt->target = GenerateSelect(ctx, 0, fancy_selects_);
      return stmt;
    }
    case StatementType::kAnalyze:
      return std::make_unique<sql::MaintenanceStmt>(
          type, rng_->NextBool(0.5) ? table_name() : "");
    case StatementType::kVacuum:
      return std::make_unique<sql::MaintenanceStmt>(
          type, rng_->NextBool(0.5) ? table_name() : "");
    case StatementType::kReindex:
      return std::make_unique<sql::MaintenanceStmt>(
          type, PickName(ctx->indexes(), ""));
    case StatementType::kNotify: {
      auto stmt = std::make_unique<sql::NotifyStmt>();
      stmt->channel = "ch" + std::to_string(rng_->NextBelow(4));
      if (rng_->NextBool(0.3)) stmt->payload = rng_->NextIdentifier(5);
      return stmt;
    }
    case StatementType::kComment: {
      auto stmt = std::make_unique<sql::CommentStmt>();
      stmt->table = table_name();
      stmt->text = rng_->NextIdentifier(8);
      return stmt;
    }
    case StatementType::kAlterSystem: {
      auto stmt = std::make_unique<sql::AlterSystemStmt>();
      if (rng_->NextBool(0.5)) {
        stmt->action = "SET";
        stmt->name = "checkpoint_interval";
        stmt->value = sql::Literal::Int(rng_->NextInRange(1, 64));
      } else {
        stmt->action = rng_->NextBool(0.5) ? "FLUSH" : "MAJOR FREEZE";
      }
      return stmt;
    }
    case StatementType::kDiscard: {
      auto stmt = std::make_unique<sql::DiscardStmt>();
      stmt->all = rng_->NextBool(0.5);
      return stmt;
    }
    default:
      return std::make_unique<sql::SimpleStmt>(StatementType::kCheckpoint);
  }
}

namespace {

constexpr uint32_t kSchemaTag = persist::ChunkTag("SCHM");

void WriteNameSet(const std::set<std::string>& names,
                  persist::StateWriter* w) {
  w->WriteU64(names.size());
  for (const std::string& name : names) w->WriteString(name);
}

Status ReadNameSet(persist::StateReader* r, std::set<std::string>* out) {
  out->clear();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n; ++i) out->insert(r->ReadString());
  return r->status();
}

}  // namespace

Status SchemaContext::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kSchemaTag);
  w->WriteU64(relations_.size());
  for (const auto& [name, table] : relations_) {
    w->WriteString(name);
    w->WriteString(table.name);
    w->WriteBool(table.is_view);
    w->WriteU64(table.columns.size());
    for (const SymbolicColumn& col : table.columns) {
      w->WriteString(col.name);
      w->WriteU8(static_cast<uint8_t>(col.type));
    }
  }
  WriteNameSet(views_, w);
  WriteNameSet(indexes_, w);
  WriteNameSet(triggers_, w);
  WriteNameSet(rules_, w);
  WriteNameSet(sequences_, w);
  WriteNameSet(users_, w);
  WriteNameSet(savepoints_, w);
  w->WriteBool(in_txn_);
  w->WriteI64(counter_);
  w->EndChunk();
  return Status::OK();
}

Status SchemaContext::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSchemaTag));
  std::map<std::string, SymbolicTable> relations;
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n; ++i) {
    std::string key = r->ReadString();
    SymbolicTable table;
    table.name = r->ReadString();
    table.is_view = r->ReadBool();
    uint64_t cols = r->ReadU64();
    if (!r->CheckCount(cols, 8)) return r->status();
    table.columns.reserve(cols);
    for (uint64_t j = 0; j < cols; ++j) {
      SymbolicColumn col;
      col.name = r->ReadString();
      uint8_t type = r->ReadU8();
      if (!r->ok()) return r->status();
      if (type > static_cast<uint8_t>(sql::SqlType::kBool)) {
        return Status::InvalidArgument("symbolic column with invalid type");
      }
      col.type = static_cast<sql::SqlType>(type);
      table.columns.push_back(std::move(col));
    }
    relations.emplace(std::move(key), std::move(table));
  }
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &views_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &indexes_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &triggers_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &rules_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &sequences_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &users_));
  LEGO_RETURN_IF_ERROR(ReadNameSet(r, &savepoints_));
  in_txn_ = r->ReadBool();
  counter_ = static_cast<int>(r->ReadI64());
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  relations_ = std::move(relations);
  return Status::OK();
}

}  // namespace lego::core
