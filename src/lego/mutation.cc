#include "lego/mutation.h"

namespace lego::core {

namespace {

using sql::StatementType;

}  // namespace

sql::StatementType SequenceMutator::RandomType() {
  const auto types = profile_->EnabledTypes();
  return types[rng_->NextBelow(types.size())];
}

void SequenceMutator::Refix(fuzz::TestCase* tc) {
  SchemaContext ctx;
  for (auto& stmt : *tc->mutable_statements()) {
    instantiator_->FixStatement(stmt.get(), &ctx);
    ctx.Apply(*stmt);
  }
}

std::vector<fuzz::TestCase> SequenceMutator::SequenceOrientedMutants(
    const fuzz::TestCase& seed, size_t position) {
  std::vector<fuzz::TestCase> mutants;
  if (seed.empty() || position >= seed.size()) return mutants;

  // Build the schema context up to (but excluding) the mutated statement so
  // the replacement/insertion is generated against live dependencies.
  auto context_at = [&](size_t end) {
    SchemaContext ctx;
    for (size_t i = 0; i < end; ++i) ctx.Apply(*seed.statements()[i]);
    return ctx;
  };

  StatementGenerator generator(profile_, rng_);
  generator.set_fancy_selects(fancy_selects_);

  // 1) Substitution: change the statement's type.
  {
    StatementType current = seed.statements()[position]->type();
    StatementType replacement = RandomType();
    for (int tries = 0; replacement == current && tries < 4; ++tries) {
      replacement = RandomType();
    }
    if (replacement != current) {
      fuzz::TestCase mutant = seed.Clone();
      SchemaContext ctx = context_at(position);
      (*mutant.mutable_statements())[position] =
          generator.Generate(replacement, &ctx);
      Refix(&mutant);
      mutants.push_back(std::move(mutant));
    }
  }

  // 2) Insertion: add a random statement after the current one.
  {
    fuzz::TestCase mutant = seed.Clone();
    SchemaContext ctx = context_at(position + 1);
    sql::StmtPtr inserted = generator.Generate(RandomType(), &ctx);
    auto* stmts = mutant.mutable_statements();
    stmts->insert(stmts->begin() + static_cast<long>(position) + 1,
                  std::move(inserted));
    Refix(&mutant);
    mutants.push_back(std::move(mutant));
  }

  // 3) Deletion: remove the current statement.
  if (seed.size() > 1) {
    fuzz::TestCase mutant = seed.Clone();
    auto* stmts = mutant.mutable_statements();
    stmts->erase(stmts->begin() + static_cast<long>(position));
    Refix(&mutant);
    mutants.push_back(std::move(mutant));
  }

  return mutants;
}

fuzz::TestCase SequenceMutator::ConventionalMutate(
    const fuzz::TestCase& seed) {
  fuzz::TestCase mutant = seed.Clone();
  if (mutant.empty()) return mutant;
  size_t position = rng_->NextBelow(mutant.size());
  auto* stmts = mutant.mutable_statements();
  sql::Statement* stmt = (*stmts)[position].get();

  // SELECT statements get clause-level tweaks; everything else gets a
  // same-type structural replacement (the type sequence never changes).
  if (stmt->type() == StatementType::kSelect && rng_->NextBool(0.5)) {
    auto* select = static_cast<sql::SelectStmt*>(stmt);
    switch (rng_->NextBelow(4)) {
      case 0:
        select->core.distinct = !select->core.distinct;
        break;
      case 1:
        if (select->order_by.empty()) {
          sql::OrderByItem item;
          item.expr = sql::Literal::Int(1);
          item.desc = rng_->NextBool(0.5);
          select->order_by.push_back(std::move(item));
        } else {
          select->order_by.clear();
        }
        break;
      case 2:
        if (select->limit == nullptr) {
          select->limit = sql::Literal::Int(rng_->NextInRange(0, 8));
        } else {
          select->limit = nullptr;
          select->offset = nullptr;
        }
        break;
      default:
        select->core.where = nullptr;  // drop the filter
        break;
    }
  } else {
    SchemaContext ctx;
    for (size_t i = 0; i < position; ++i) ctx.Apply(*(*stmts)[i]);
    StatementGenerator generator(profile_, rng_);
    generator.set_fancy_selects(fancy_selects_);
    (*stmts)[position] = generator.Generate(stmt->type(), &ctx);
  }
  Refix(&mutant);
  return mutant;
}

}  // namespace lego::core
