#include "lego/affinity.h"

namespace lego::core {

std::vector<TypeAffinityMap::Affinity> TypeAffinityMap::Analyze(
    const std::vector<sql::StatementType>& type_sequence) {
  std::vector<Affinity> discovered;
  // Algorithm 2: lastType starts NULL; equal adjacent types are skipped
  // (composing one type repeatedly does not add sequence abundance).
  bool have_last = false;
  sql::StatementType last = sql::StatementType::kNumTypes;
  for (sql::StatementType current : type_sequence) {
    if (have_last && last != current) {
      if (Add(last, current)) discovered.emplace_back(last, current);
    }
    last = current;
    have_last = true;
  }
  return discovered;
}

bool TypeAffinityMap::Add(sql::StatementType t1, sql::StatementType t2) {
  auto [it, inserted] = map_[t1].insert(t2);
  (void)it;
  if (inserted) ++count_;
  return inserted;
}

bool TypeAffinityMap::Contains(sql::StatementType t1,
                               sql::StatementType t2) const {
  auto it = map_.find(t1);
  return it != map_.end() && it->second.count(t2) > 0;
}

const std::set<sql::StatementType>& TypeAffinityMap::SuccessorsOf(
    sql::StatementType t1) const {
  static const std::set<sql::StatementType>* kEmpty =
      new std::set<sql::StatementType>();
  auto it = map_.find(t1);
  return it == map_.end() ? *kEmpty : it->second;
}

std::vector<TypeAffinityMap::Affinity> TypeAffinityMap::All() const {
  std::vector<Affinity> out;
  out.reserve(count_);
  for (const auto& [t1, succ] : map_) {
    for (sql::StatementType t2 : succ) out.emplace_back(t1, t2);
  }
  return out;
}

void TypeAffinityMap::Clear() {
  map_.clear();
  count_ = 0;
}

}  // namespace lego::core
