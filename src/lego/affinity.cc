#include "lego/affinity.h"

namespace lego::core {

std::vector<TypeAffinityMap::Affinity> TypeAffinityMap::Analyze(
    const std::vector<sql::StatementType>& type_sequence) {
  std::vector<Affinity> discovered;
  // Algorithm 2: lastType starts NULL; equal adjacent types are skipped
  // (composing one type repeatedly does not add sequence abundance).
  bool have_last = false;
  sql::StatementType last = sql::StatementType::kNumTypes;
  for (sql::StatementType current : type_sequence) {
    if (have_last && last != current) {
      if (Add(last, current)) discovered.emplace_back(last, current);
    }
    last = current;
    have_last = true;
  }
  return discovered;
}

bool TypeAffinityMap::Add(sql::StatementType t1, sql::StatementType t2) {
  auto [it, inserted] = map_[t1].insert(t2);
  (void)it;
  if (inserted) ++count_;
  return inserted;
}

bool TypeAffinityMap::Contains(sql::StatementType t1,
                               sql::StatementType t2) const {
  auto it = map_.find(t1);
  return it != map_.end() && it->second.count(t2) > 0;
}

const std::set<sql::StatementType>& TypeAffinityMap::SuccessorsOf(
    sql::StatementType t1) const {
  static const std::set<sql::StatementType>* kEmpty =
      new std::set<sql::StatementType>();
  auto it = map_.find(t1);
  return it == map_.end() ? *kEmpty : it->second;
}

std::vector<TypeAffinityMap::Affinity> TypeAffinityMap::All() const {
  std::vector<Affinity> out;
  out.reserve(count_);
  for (const auto& [t1, succ] : map_) {
    for (sql::StatementType t2 : succ) out.emplace_back(t1, t2);
  }
  return out;
}

void TypeAffinityMap::Clear() {
  map_.clear();
  count_ = 0;
}

namespace {
constexpr uint32_t kAffinityTag = persist::ChunkTag("AFFN");
}  // namespace

Status TypeAffinityMap::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kAffinityTag);
  w->WriteU64(count_);
  for (const auto& [t1, t2] : All()) {
    w->WriteU8(static_cast<uint8_t>(t1));
    w->WriteU8(static_cast<uint8_t>(t2));
  }
  w->EndChunk();
  return Status::OK();
}

Status TypeAffinityMap::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kAffinityTag));
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 2)) return r->status();
  std::vector<Affinity> pairs;
  pairs.reserve(n);
  constexpr uint8_t kNum = static_cast<uint8_t>(sql::StatementType::kNumTypes);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t t1 = r->ReadU8();
    uint8_t t2 = r->ReadU8();
    if (!r->ok()) return r->status();
    if (t1 >= kNum || t2 >= kNum) {
      return Status::InvalidArgument("affinity pair with invalid type tag");
    }
    pairs.emplace_back(static_cast<sql::StatementType>(t1),
                       static_cast<sql::StatementType>(t2));
  }
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  Clear();
  for (const auto& [t1, t2] : pairs) Add(t1, t2);
  if (count_ != n) {
    return Status::InvalidArgument("affinity set contains duplicate pairs");
  }
  return Status::OK();
}

}  // namespace lego::core
