#include "lego/ast_library.h"

namespace lego::core {

void AstLibrary::AddStatement(const sql::Statement& stmt) {
  size_t slot = static_cast<size_t>(stmt.type());
  if (slot >= skeletons_.size()) return;
  auto& bucket = skeletons_[slot];
  if (bucket.size() < cap_) {
    bucket.push_back(stmt.Clone());
    return;
  }
  // Ring replacement keeps the library fresh once full.
  bucket[replace_cursor_[slot] % cap_] = stmt.Clone();
  ++replace_cursor_[slot];
}

void AstLibrary::AddTestCase(const fuzz::TestCase& tc) {
  for (const auto& stmt : tc.statements()) AddStatement(*stmt);
}

sql::StmtPtr AstLibrary::Sample(sql::StatementType type, Rng* rng) const {
  size_t slot = static_cast<size_t>(type);
  if (slot >= skeletons_.size()) return nullptr;
  const auto& bucket = skeletons_[slot];
  if (bucket.empty()) return nullptr;
  return bucket[rng->NextBelow(bucket.size())]->Clone();
}

size_t AstLibrary::TotalCount() const {
  size_t n = 0;
  for (const auto& bucket : skeletons_) n += bucket.size();
  return n;
}

}  // namespace lego::core
