#include "lego/ast_library.h"

#include <string>
#include <utility>

#include "persist/ast_serde.h"

namespace lego::core {

void AstLibrary::AddStatement(const sql::Statement& stmt) {
  size_t slot = static_cast<size_t>(stmt.type());
  if (slot >= skeletons_.size()) return;
  auto& bucket = skeletons_[slot];
  if (bucket.size() < cap_) {
    bucket.push_back(stmt.Clone());
    return;
  }
  // Ring replacement keeps the library fresh once full.
  bucket[replace_cursor_[slot] % cap_] = stmt.Clone();
  ++replace_cursor_[slot];
}

void AstLibrary::AddTestCase(const fuzz::TestCase& tc) {
  for (const auto& stmt : tc.statements()) AddStatement(*stmt);
}

sql::StmtPtr AstLibrary::Sample(sql::StatementType type, Rng* rng) const {
  size_t slot = static_cast<size_t>(type);
  if (slot >= skeletons_.size()) return nullptr;
  const auto& bucket = skeletons_[slot];
  if (bucket.empty()) return nullptr;
  return bucket[rng->NextBelow(bucket.size())]->Clone();
}

size_t AstLibrary::TotalCount() const {
  size_t n = 0;
  for (const auto& bucket : skeletons_) n += bucket.size();
  return n;
}

namespace {
constexpr uint32_t kLibraryTag = persist::ChunkTag("ASTL");
}  // namespace

Status AstLibrary::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kLibraryTag);
  w->WriteU64(cap_);
  w->WriteU64(skeletons_.size());
  for (size_t slot = 0; slot < skeletons_.size(); ++slot) {
    w->WriteU64(skeletons_[slot].size());
    for (const sql::StmtPtr& stmt : skeletons_[slot]) {
      persist::SerializeStatement(*stmt, w);
    }
    w->WriteU64(replace_cursor_[slot]);
  }
  w->EndChunk();
  return Status::OK();
}

Status AstLibrary::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kLibraryTag));
  uint64_t cap = r->ReadU64();
  if (r->ok() && cap != cap_) {
    return Status::InvalidArgument(
        "AST library state saved with cap " + std::to_string(cap) +
        ", this campaign uses " + std::to_string(cap_));
  }
  uint64_t num_types = r->ReadU64();
  if (r->ok() && num_types != skeletons_.size()) {
    return Status::InvalidArgument(
        "AST library state has " + std::to_string(num_types) +
        " statement types, expected " + std::to_string(skeletons_.size()));
  }
  std::array<std::vector<sql::StmtPtr>, sql::kNumStatementTypes> skeletons;
  std::array<size_t, sql::kNumStatementTypes> cursors = {};
  for (size_t slot = 0; r->ok() && slot < skeletons.size(); ++slot) {
    uint64_t n = r->ReadU64();
    if (!r->CheckCount(n, 1)) return r->status();
    skeletons[slot].reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LEGO_ASSIGN_OR_RETURN(sql::StmtPtr stmt,
                            persist::DeserializeStatement(r));
      skeletons[slot].push_back(std::move(stmt));
    }
    cursors[slot] = r->ReadU64();
  }
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  skeletons_ = std::move(skeletons);
  replace_cursor_ = cursors;
  return Status::OK();
}

}  // namespace lego::core
