#ifndef LEGO_LEGO_GENERATOR_H_
#define LEGO_LEGO_GENERATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minidb/profile.h"
#include "persist/io.h"
#include "sql/ast.h"
#include "util/random.h"

namespace lego::core {

struct SymbolicColumn {
  std::string name;
  sql::SqlType type = sql::SqlType::kInt;
};

/// One relation (table or view) as tracked during instantiation.
struct SymbolicTable {
  std::string name;
  std::vector<SymbolicColumn> columns;
  bool is_view = false;
};

/// Symbolic schema state threaded through instantiation: which objects exist
/// after each statement of the test case so far. This is the "dependency
/// analysis" half of the paper's instantiation step — statements are fixed
/// up against this context so tables exist before use.
class SchemaContext {
 public:
  /// Applies the schema effects of `stmt` (DDL registration, ALTER edits,
  /// transaction state, savepoints). DML/DQL have no schema effect.
  void Apply(const sql::Statement& stmt);

  const SymbolicTable* Find(const std::string& name) const;
  /// A uniformly random base table; nullptr when none exist.
  const SymbolicTable* RandomTable(Rng* rng) const;
  /// A uniformly random table or view; nullptr when none exist.
  const SymbolicTable* RandomRelation(Rng* rng) const;

  bool HasTables() const;
  std::string FreshName(const char* prefix);

  const std::set<std::string>& indexes() const { return indexes_; }
  const std::set<std::string>& triggers() const { return triggers_; }
  const std::set<std::string>& rules() const { return rules_; }
  const std::set<std::string>& sequences() const { return sequences_; }
  const std::set<std::string>& users() const { return users_; }
  const std::set<std::string>& savepoints() const { return savepoints_; }
  const std::set<std::string>& views() const { return views_; }
  bool in_transaction() const { return in_txn_; }

  /// Checkpointing: the full symbolic schema (relations with columns, all
  /// object-name sets, transaction flag, fresh-name counter) round-trips so
  /// a resumed generator produces the same names and references.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::map<std::string, SymbolicTable> relations_;
  std::set<std::string> views_;
  std::set<std::string> indexes_;
  std::set<std::string> triggers_;
  std::set<std::string> rules_;
  std::set<std::string> sequences_;
  std::set<std::string> users_;
  std::set<std::string> savepoints_;
  bool in_txn_ = false;
  int counter_ = 0;
};

/// Random statement factory: produces a plausible statement of a requested
/// type against the current schema context. Used as the skeleton fallback by
/// LEGO's instantiator and as the whole generator by the rule-based
/// baselines.
class StatementGenerator {
 public:
  StatementGenerator(const minidb::DialectProfile* profile, Rng* rng)
      : profile_(profile), rng_(rng) {}

  /// When false, Generate(kSelect) produces plain selects only (projection,
  /// WHERE, ORDER BY/LIMIT) — the shape the intra-statement baselines emit.
  void set_fancy_selects(bool fancy) { fancy_selects_ = fancy; }

  /// Generates one statement of `type`. The result references objects from
  /// `ctx` where possible; the caller applies it to the context afterwards.
  sql::StmtPtr Generate(sql::StatementType type, SchemaContext* ctx);

  /// Generates a SELECT over the context's relations. `fancy` enables
  /// aggregates/windows/compounds/subqueries per the profile.
  std::unique_ptr<sql::SelectStmt> GenerateSelect(SchemaContext* ctx,
                                                  int depth, bool fancy);

  /// A literal of the given SQL type (occasionally NULL).
  sql::ExprPtr RandomLiteral(sql::SqlType type);

  /// A boolean predicate over `table`'s columns.
  sql::ExprPtr RandomPredicate(const SymbolicTable& table, int depth);

  /// A scalar expression (column refs when `table` given, else literals).
  sql::ExprPtr RandomScalar(const SymbolicTable* table, int depth);

 private:
  sql::ColumnDef RandomColumnDef(SchemaContext* ctx);
  const SymbolicColumn* RandomColumn(const SymbolicTable& table);
  std::string PickName(const std::set<std::string>& names,
                       const char* fallback);

  const minidb::DialectProfile* profile_;
  Rng* rng_;
  bool fancy_selects_ = true;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_GENERATOR_H_
