#ifndef LEGO_LEGO_SYNTHESIS_H_
#define LEGO_LEGO_SYNTHESIS_H_

#include <map>
#include <utility>
#include <vector>

#include "lego/affinity.h"
#include "persist/io.h"
#include "sql/statement_type.h"

namespace lego::core {

/// Progressive sequence synthesis (paper §III-B, Algorithm 3).
///
/// Maintains the paper's data structures:
///  - S:  every synthesized SQL Type Sequence (length <= LEN);
///  - PS: the Prefix Sequence index, mapping (ending type, length) to the
///        indexes in S of sequences with that ending type and length.
///
/// When a new affinity t1 -> t2 is discovered, only the *new* sequences that
/// contain it are enumerated: every known prefix ending in t1 is extended
/// with t2 and then expanded with all known affinities up to LEN.
class SequenceSynthesizer {
 public:
  /// Hard cap on |S|; prevents the combinatorial blow-up the paper's C1
  /// identifies from exhausting memory at dense affinity maps.
  static constexpr size_t kMaxSequences = 200000;

  explicit SequenceSynthesizer(int max_len) : max_len_(max_len) {}

  /// Registers a starting statement type: seeds S with the length-1
  /// sequence [t] so prefixes ending in t exist.
  void AddStartType(sql::StatementType t);

  /// Algorithm 3. Returns the sequences newly synthesized for affinity
  /// t1 -> t2 (each has length in [2, LEN]). `affinities` is the paper's T.
  std::vector<std::vector<sql::StatementType>> OnNewAffinity(
      sql::StatementType t1, sql::StatementType t2,
      const TypeAffinityMap& affinities);

  /// Total sequences synthesized so far (including length-1 roots).
  size_t TotalSequences() const { return sequences_.size(); }

  /// Sequences discarded at the kMaxSequences cap. A nonzero value means S
  /// is saturated and further affinities synthesize nothing — previously
  /// this happened silently; campaigns now surface it in their summary.
  size_t dropped_sequences() const { return dropped_; }

  int max_len() const { return max_len_; }

  /// Read-only view of S (tests).
  const std::vector<std::vector<sql::StatementType>>& sequences() const {
    return sequences_;
  }

  /// Checkpointing: S and the drop counter round-trip; PS is derived state,
  /// rebuilt from S in the same insertion order Record() used. max_len is
  /// configuration and only verified.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  /// Appends `seq` to S and records it in PS. Returns false at the cap.
  bool Record(const std::vector<sql::StatementType>& seq);

  /// Paper's listSeq: depth-first expansion of `seq` (ending in nodeType,
  /// length `level`) with every known affinity, recording each extension.
  void ListSeq(int level, sql::StatementType node_type,
               std::vector<sql::StatementType>* seq,
               const TypeAffinityMap& affinities,
               std::vector<std::vector<sql::StatementType>>* out);

  int max_len_;
  size_t dropped_ = 0;  // sequences refused at kMaxSequences
  std::vector<std::vector<sql::StatementType>> sequences_;  // S
  // PS: (type, length) -> indexes into S.
  std::map<std::pair<sql::StatementType, int>, std::vector<size_t>> prefix_;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_SYNTHESIS_H_
