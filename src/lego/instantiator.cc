#include "lego/instantiator.h"

#include "sql/ast_walk.h"

namespace lego::core {

namespace {

using sql::StatementType;

/// Collects all base-table names referenced by the statement's FROM clauses
/// plus its DML target, after fixing.
std::set<std::string> ScopeTables(const sql::Statement& stmt) {
  std::set<std::string> scope;
  switch (stmt.type()) {
    case StatementType::kInsert:
    case StatementType::kReplace:
      scope.insert(static_cast<const sql::InsertStmt&>(stmt).table);
      break;
    case StatementType::kUpdate:
      scope.insert(static_cast<const sql::UpdateStmt&>(stmt).table);
      break;
    case StatementType::kDelete:
      scope.insert(static_cast<const sql::DeleteStmt&>(stmt).table);
      break;
    case StatementType::kCopy:
      if (!static_cast<const sql::CopyStmt&>(stmt).table.empty()) {
        scope.insert(static_cast<const sql::CopyStmt&>(stmt).table);
      }
      break;
    default:
      break;
  }
  sql::WalkTableRefs(
      stmt,
      [&scope](const sql::TableRef& ref) {
        if (ref.kind() == sql::TableRefKind::kBaseTable) {
          const auto& base = static_cast<const sql::BaseTableRef&>(ref);
          scope.insert(base.name());
          if (!base.alias().empty()) scope.insert(base.alias());
        } else if (ref.kind() == sql::TableRefKind::kSubquery) {
          scope.insert(static_cast<const sql::SubqueryRef&>(ref).alias());
        }
      },
      /*into_subqueries=*/true);
  return scope;
}

}  // namespace

fuzz::TestCase Instantiator::Instantiate(
    const std::vector<StatementType>& sequence) {
  SchemaContext ctx;
  std::vector<sql::StmtPtr> statements;
  statements.reserve(sequence.size());
  for (StatementType type : sequence) {
    sql::StmtPtr stmt;
    // Step 1 — AST synthesis: sample a type-matched structure from the
    // global library; fall back to fresh generation.
    if (library_ != nullptr && rng_->NextBool(0.7)) {
      stmt = library_->Sample(type, rng_);
    }
    if (stmt == nullptr) {
      stmt = generator_.Generate(type, &ctx);
    }
    // Step 3 — validation: dependency analysis + refill.
    FixStatement(stmt.get(), &ctx);
    ctx.Apply(*stmt);
    statements.push_back(std::move(stmt));
  }
  return fuzz::TestCase(std::move(statements));
}

void Instantiator::FixStatement(sql::Statement* stmt, SchemaContext* ctx) {
  const SymbolicTable* table = ctx->RandomTable(rng_);
  auto pick_table = [&]() -> std::string {
    return table != nullptr ? table->name : "t0";
  };

  switch (stmt->type()) {
    case StatementType::kCreateTable: {
      auto* s = static_cast<sql::CreateTableStmt*>(stmt);
      s->name = ctx->FreshName("t");
      // Deduplicate column names sampled from foreign skeletons.
      std::set<std::string> seen;
      for (auto& col : s->columns) {
        while (!seen.insert(col.name).second) col.name += "x";
      }
      break;
    }
    case StatementType::kCreateIndex: {
      auto* s = static_cast<sql::CreateIndexStmt*>(stmt);
      s->name = ctx->FreshName("ix");
      s->table = pick_table();
      s->columns.clear();
      if (table != nullptr && !table->columns.empty()) {
        s->columns.push_back(
            table->columns[rng_->NextBelow(table->columns.size())].name);
      } else {
        s->columns.push_back("c0");
      }
      break;
    }
    case StatementType::kCreateView: {
      auto* s = static_cast<sql::CreateViewStmt*>(stmt);
      s->name = ctx->FreshName("v");
      break;
    }
    case StatementType::kCreateTrigger: {
      auto* s = static_cast<sql::CreateTriggerStmt*>(stmt);
      s->name = ctx->FreshName("tg");
      s->table = pick_table();
      FixStatement(s->body.get(), ctx);
      break;
    }
    case StatementType::kCreateSequence: {
      static_cast<sql::CreateSequenceStmt*>(stmt)->name = ctx->FreshName("sq");
      break;
    }
    case StatementType::kCreateRule: {
      auto* s = static_cast<sql::CreateRuleStmt*>(stmt);
      s->name = ctx->FreshName("rl");
      s->table = pick_table();
      if (s->action != nullptr) FixStatement(s->action.get(), ctx);
      break;
    }
    case StatementType::kCreateUser: {
      static_cast<sql::CreateUserStmt*>(stmt)->name = ctx->FreshName("u");
      break;
    }
    case StatementType::kDropTable: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (ctx->Find(s->name()) == nullptr) s->set_name(pick_table());
      break;
    }
    case StatementType::kDropIndex: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (!ctx->indexes().count(s->name()) && !ctx->indexes().empty()) {
        s->set_name(*ctx->indexes().begin());
      }
      break;
    }
    case StatementType::kDropView: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (!ctx->views().count(s->name()) && !ctx->views().empty()) {
        s->set_name(*ctx->views().begin());
      }
      break;
    }
    case StatementType::kDropTrigger: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (!ctx->triggers().count(s->name()) && !ctx->triggers().empty()) {
        s->set_name(*ctx->triggers().begin());
      }
      break;
    }
    case StatementType::kDropSequence: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (!ctx->sequences().count(s->name()) && !ctx->sequences().empty()) {
        s->set_name(*ctx->sequences().begin());
      }
      break;
    }
    case StatementType::kDropRule: {
      auto* s = static_cast<sql::DropStmt*>(stmt);
      if (!ctx->rules().count(s->name()) && !ctx->rules().empty()) {
        s->set_name(*ctx->rules().begin());
      }
      break;
    }
    case StatementType::kAlterTable: {
      auto* s = static_cast<sql::AlterTableStmt*>(stmt);
      s->table = pick_table();
      if (s->action == sql::AlterAction::kAddColumn) {
        s->new_column.name = ctx->FreshName("c");
        s->new_column.not_null = false;
      } else if (s->action == sql::AlterAction::kDropColumn ||
                 s->action == sql::AlterAction::kRenameColumn) {
        if (table != nullptr && !table->columns.empty()) {
          s->old_name =
              table->columns[rng_->NextBelow(table->columns.size())].name;
        }
        if (s->action == sql::AlterAction::kRenameColumn) {
          s->new_name = ctx->FreshName("c");
        }
      } else {
        s->new_name = ctx->FreshName("t");
      }
      break;
    }
    case StatementType::kTruncate: {
      static_cast<sql::TruncateStmt*>(stmt)->table = pick_table();
      break;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      auto* s = static_cast<sql::InsertStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr ||
          ctx->Find(s->table)->is_view) {
        s->table = pick_table();
      }
      const SymbolicTable* target = ctx->Find(s->table);
      if (target != nullptr && s->select == nullptr) {
        // Refill: make every VALUES row match the table width and types.
        s->columns.clear();
        for (auto& row : s->rows) {
          while (row.size() > target->columns.size()) row.pop_back();
          for (size_t c = 0; c < row.size(); ++c) {
            if (row[c]->kind() != sql::ExprKind::kLiteral) continue;
            // Literal retained; type coercion happens in the engine.
          }
          while (row.size() < target->columns.size()) {
            row.push_back(generator_.RandomLiteral(
                target->columns[row.size()].type));
          }
        }
        if (s->rows.empty()) {
          std::vector<sql::ExprPtr> row;
          for (const auto& col : target->columns) {
            row.push_back(generator_.RandomLiteral(col.type));
          }
          s->rows.push_back(std::move(row));
        }
      }
      break;
    }
    case StatementType::kUpdate: {
      auto* s = static_cast<sql::UpdateStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr || ctx->Find(s->table)->is_view) {
        s->table = pick_table();
      }
      const SymbolicTable* target = ctx->Find(s->table);
      if (target != nullptr && !target->columns.empty()) {
        std::set<std::string> valid;
        for (const auto& col : target->columns) valid.insert(col.name);
        std::set<std::string> used;
        for (auto& [col, expr] : s->assignments) {
          if (!valid.count(col) || used.count(col)) {
            col = target->columns[rng_->NextBelow(target->columns.size())]
                      .name;
          }
          used.insert(col);
        }
      }
      break;
    }
    case StatementType::kDelete: {
      auto* s = static_cast<sql::DeleteStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr || ctx->Find(s->table)->is_view) {
        s->table = pick_table();
      }
      break;
    }
    case StatementType::kCopy: {
      auto* s = static_cast<sql::CopyStmt*>(stmt);
      if (s->query == nullptr && ctx->Find(s->table) == nullptr) {
        s->table = pick_table();
      }
      break;
    }
    case StatementType::kGrant: {
      auto* s = static_cast<sql::GrantStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr) s->table = pick_table();
      if (!ctx->users().count(s->user) && !ctx->users().empty()) {
        s->user = *ctx->users().begin();
      }
      break;
    }
    case StatementType::kRevoke: {
      auto* s = static_cast<sql::RevokeStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr) s->table = pick_table();
      if (!ctx->users().count(s->user) && !ctx->users().empty()) {
        s->user = *ctx->users().begin();
      }
      break;
    }
    case StatementType::kComment: {
      auto* s = static_cast<sql::CommentStmt*>(stmt);
      if (ctx->Find(s->table) == nullptr) s->table = pick_table();
      break;
    }
    case StatementType::kRelease:
    case StatementType::kRollbackTo: {
      // Valid savepoint names only exist inside a transaction.
      break;
    }
    case StatementType::kWith: {
      auto* s = static_cast<sql::WithStmt*>(stmt);
      // CTE members see the outer context; the body additionally sees the
      // CTE names (registered as synthetic relations).
      SchemaContext body_ctx = *ctx;
      for (auto& cte : s->ctes) {
        FixStatement(cte.statement.get(), ctx);
        sql::CreateTableStmt synthetic;
        synthetic.name = cte.name;
        synthetic.columns.emplace_back("column1", sql::SqlType::kInt);
        body_ctx.Apply(synthetic);
      }
      FixStatement(s->body.get(), &body_ctx);
      return;  // references fixed against body_ctx already
    }
    case StatementType::kExplain: {
      auto* s = static_cast<sql::ExplainStmt*>(stmt);
      FixStatement(s->target.get(), ctx);
      return;
    }
    default:
      break;
  }

  FixReferences(stmt, ctx);
}

void Instantiator::FixReferences(sql::Statement* stmt, SchemaContext* ctx) {
  // Pass 1: retarget dangling FROM-clause base tables to existing relations.
  sql::WalkTableRefs(
      *stmt,
      [&](const sql::TableRef& ref) {
        if (ref.kind() != sql::TableRefKind::kBaseTable) return;
        auto* base = const_cast<sql::BaseTableRef*>(
            static_cast<const sql::BaseTableRef*>(&ref));
        if (ctx->Find(base->name()) == nullptr) {
          const SymbolicTable* rel = ctx->RandomRelation(rng_);
          if (rel != nullptr) base->set_name(rel->name);
        }
      },
      /*into_subqueries=*/true);

  // Pass 2: collect the statement's (coarse) column scope.
  std::set<std::string> scope_tables = ScopeTables(*stmt);
  std::vector<const SymbolicColumn*> scope_columns;
  std::set<std::string> scope_column_names;
  std::set<std::string> alias_qualifiers;
  for (const std::string& name : scope_tables) {
    const SymbolicTable* rel = ctx->Find(name);
    if (rel == nullptr) {
      alias_qualifiers.insert(name);  // subquery alias or table alias
      continue;
    }
    for (const auto& col : rel->columns) {
      scope_columns.push_back(&col);
      scope_column_names.insert(col.name);
    }
  }
  if (scope_columns.empty()) return;

  // Pass 3: re-point unresolvable column references.
  sql::WalkStatementExprs(
      *stmt,
      [&](const sql::Expr& expr) {
        if (expr.kind() != sql::ExprKind::kColumnRef) return;
        auto* ref = const_cast<sql::ColumnRef*>(
            static_cast<const sql::ColumnRef*>(&expr));
        bool qualifier_ok =
            ref->table().empty() || scope_tables.count(ref->table()) > 0;
        bool column_ok = scope_column_names.count(ref->column()) > 0 ||
                         (!ref->table().empty() &&
                          alias_qualifiers.count(ref->table()) > 0);
        if (qualifier_ok && column_ok) return;
        const SymbolicColumn* pick =
            scope_columns[rng_->NextBelow(scope_columns.size())];
        ref->set_table("");
        ref->set_column(pick->name);
      },
      /*into_subqueries=*/true);
}

}  // namespace lego::core
