#ifndef LEGO_LEGO_INSTANTIATOR_H_
#define LEGO_LEGO_INSTANTIATOR_H_

#include <set>
#include <string>
#include <vector>

#include "fuzz/testcase.h"
#include "lego/ast_library.h"
#include "lego/generator.h"
#include "minidb/profile.h"
#include "sql/statement_type.h"
#include "util/random.h"

namespace lego::core {

/// Turns a synthesized SQL Type Sequence into an executable test case
/// (paper §III-B instantiation): for each entry, sample a type-matched AST
/// skeleton from the library (or generate a fresh one), then run dependency
/// analysis against the symbolic schema context and refill names/data so the
/// test case is semantically valid — tables exist before use, column
/// references resolve, VALUES rows match table width.
class Instantiator {
 public:
  Instantiator(const minidb::DialectProfile* profile, AstLibrary* library,
               Rng* rng)
      : profile_(profile), library_(library), rng_(rng),
        generator_(profile, rng) {}

  /// Instantiates `sequence` into a test case. Randomness means repeated
  /// calls on the same sequence yield different structures (the paper
  /// instantiates each sequence multiple times).
  fuzz::TestCase Instantiate(
      const std::vector<sql::StatementType>& sequence);

  /// Dependency analysis + refill for one statement against `ctx`; exposed
  /// for the mutators, which fix mutated statements the same way.
  void FixStatement(sql::Statement* stmt, SchemaContext* ctx);

 private:
  /// Rewrites FROM-clause base tables that don't exist to context relations
  /// and re-targets dangling column references to in-scope columns.
  void FixReferences(sql::Statement* stmt, SchemaContext* ctx);

  const minidb::DialectProfile* profile_;
  AstLibrary* library_;
  Rng* rng_;
  StatementGenerator generator_;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_INSTANTIATOR_H_
