#ifndef LEGO_LEGO_MUTATION_H_
#define LEGO_LEGO_MUTATION_H_

#include <vector>

#include "fuzz/testcase.h"
#include "lego/instantiator.h"
#include "minidb/profile.h"
#include "util/random.h"

namespace lego::core {

/// Mutators over test cases.
///
/// SequenceOrientedMutants implements paper Algorithm 1: for a statement
/// position, produce a substitution (type changed), an insertion (random
/// type inserted after), and a deletion — each followed by the SQUIRREL-style
/// dependency re-analysis and data refill so the mutants stay semantically
/// plausible. These mutants are the probes whose coverage feedback drives
/// type-affinity analysis.
///
/// ConventionalMutate preserves the SQL Type Sequence and only changes the
/// structure/data inside one statement — exactly what the paper says
/// existing mutation-based fuzzers (SQUIRREL) are limited to.
class SequenceMutator {
 public:
  SequenceMutator(const minidb::DialectProfile* profile,
                  Instantiator* instantiator, Rng* rng,
                  bool fancy_selects = true)
      : profile_(profile), instantiator_(instantiator), rng_(rng),
        fancy_selects_(fancy_selects) {}

  /// Algorithm 1 applied to statement position `position` of `seed`
  /// (substitution, insertion, deletion). Empty when the seed is empty.
  std::vector<fuzz::TestCase> SequenceOrientedMutants(
      const fuzz::TestCase& seed, size_t position);

  /// One syntax-preserving mutant: same type sequence, different inner
  /// structure or data.
  fuzz::TestCase ConventionalMutate(const fuzz::TestCase& seed);

 private:
  /// Re-runs dependency analysis over all statements (fresh schema context).
  void Refix(fuzz::TestCase* tc);

  /// A random statement type enabled by the profile.
  sql::StatementType RandomType();

  const minidb::DialectProfile* profile_;
  Instantiator* instantiator_;
  Rng* rng_;
  bool fancy_selects_;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_MUTATION_H_
