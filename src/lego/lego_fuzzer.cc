#include "lego/lego_fuzzer.h"

#include <algorithm>
#include <utility>

#include "fuzz/seeds.h"
#include "fuzz/state.h"

namespace lego::core {

LegoFuzzer::LegoFuzzer(const minidb::DialectProfile& profile,
                       LegoOptions options)
    : profile_(profile),
      options_(options),
      rng_(options.rng_seed),
      library_(),
      instantiator_(&profile, &library_, &rng_),
      mutator_(&profile, &instantiator_, &rng_),
      synthesizer_(options.max_sequence_length) {
  // Every enabled type is a synthesis root: any type may start a sequence
  // (CREATE TABLE is the common case, but SET/PRAGMA/BEGIN prologues are
  // routine in real test cases).
  for (sql::StatementType t : profile_.EnabledTypes()) {
    synthesizer_.AddStartType(t);
  }
}

void LegoFuzzer::Prepare(fuzz::ExecutionHarness* harness) {
  // Scheduler follows the harness's feedback configuration: when the
  // grammar-rule signal is on, rare-rule seeds get extra energy.
  corpus_.set_rule_weighting(harness->rule_coverage());
  for (const std::string& script : fuzz::SeedScriptsFor(profile_.name)) {
    auto tc = fuzz::TestCase::FromSql(script);
    if (tc.ok()) queue_.push_back(std::move(*tc));
  }
}

fuzz::TestCase LegoFuzzer::Next() {
  // Exploit one foreign affinity per iteration, and only while the queue is
  // shallow enough that its products can plausibly still be executed —
  // otherwise imported discoveries from fast neighbors would have this
  // worker synthesizing instead of fuzzing.
  if (!pending_foreign_affinities_.empty() &&
      queue_.size() < options_.max_queue / 2) {
    auto [t1, t2] = pending_foreign_affinities_.front();
    pending_foreign_affinities_.pop_front();
    EnqueueSynthesized(t1, t2);
  }
  // Interleave exploitation (synthesized/probe queue) with exploration
  // (mutating corpus seeds): draining the queue exclusively would starve
  // the proactive affinity analysis that feeds it.
  if (!queue_.empty() && (corpus_.empty() || rng_.NextBool(0.6))) {
    fuzz::TestCase tc = std::move(queue_.front());
    queue_.pop_front();
    return tc;
  }
  fuzz::Seed* seed = corpus_.Select(&rng_);
  if (seed == nullptr) {
    // Cold start: instantiate a short random sequence.
    std::vector<sql::StatementType> seq = {
        sql::StatementType::kCreateTable, sql::StatementType::kInsert,
        sql::StatementType::kSelect};
    return instantiator_.Instantiate(seq);
  }
  current_seed_ = seed;

  if (options_.sequence_algorithms_enabled && rng_.NextBool(0.5)) {
    // Step 1 (Fig. 4): proactive sequence-oriented mutation over one
    // statement position (Algorithm 1 produces the sub/ins/del probes).
    size_t position = mutation_cursor_++ % std::max<size_t>(1, seed->test_case.size());
    auto mutants =
        mutator_.SequenceOrientedMutants(seed->test_case, position);
    for (auto& m : mutants) queue_.push_back(std::move(m));
    if (!queue_.empty()) {
      fuzz::TestCase tc = std::move(queue_.front());
      queue_.pop_front();
      return tc;
    }
  }
  // Conventional syntax-preserving mutation on top of sequences (paper §II:
  // fine mutations deepen exploration once breadth is covered).
  return mutator_.ConventionalMutate(seed->test_case);
}

void LegoFuzzer::EnqueueSynthesized(sql::StatementType t1,
                                    sql::StatementType t2) {
  auto sequences = synthesizer_.OnNewAffinity(t1, t2, affinity_map_);
  // Instantiate breadth-first: short sequences first. The depth-first
  // enumeration order of Algorithm 3 would otherwise spend the whole
  // consumption cap on deep expansions of the first few successors.
  std::stable_sort(sequences.begin(), sequences.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  int consumed = 0;
  for (const auto& seq : sequences) {
    if (consumed >= options_.max_sequences_per_affinity) break;
    ++consumed;
    for (int k = 0; k < options_.instantiations_per_sequence; ++k) {
      if (queue_.size() >= options_.max_queue) return;
      queue_.push_back(instantiator_.Instantiate(seq));
    }
  }
}

std::unique_ptr<fuzz::Fuzzer> LegoFuzzer::CloneForWorker(
    int worker_id) const {
  LegoOptions options = options_;
  options.rng_seed = options_.rng_seed + static_cast<uint64_t>(worker_id);
  return std::make_unique<LegoFuzzer>(profile_, options);
}

void LegoFuzzer::ImportSeed(const fuzz::TestCase& tc) {
  // A foreign new-coverage seed is adopted like a local discovery — it
  // joins the corpus, donates its AST structures, and its affinities feed
  // progressive synthesis — minus the scheduling attribution (there is no
  // local parent seed to credit). Synthesis itself is deferred to Next()
  // so import bursts at round barriers stay cheap.
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
  if (!options_.sequence_algorithms_enabled) return;
  auto new_affinities = affinity_map_.Analyze(tc.TypeSequence());
  for (const auto& [t1, t2] : new_affinities) {
    pending_foreign_affinities_.emplace_back(t1, t2);
  }
}

std::vector<fuzz::TestCase> LegoFuzzer::ExportCorpus() const {
  std::vector<fuzz::TestCase> out;
  out.reserve(corpus_.size());
  for (const fuzz::Seed& seed : corpus_.seeds()) {
    out.push_back(seed.test_case.Clone());
  }
  return out;
}

namespace {
constexpr uint32_t kLegoTag = persist::ChunkTag("LEGF");
}  // namespace

Status LegoFuzzer::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kLegoTag);
  // Configuration fingerprint: verified on load so state is never resumed
  // into a differently-configured fuzzer.
  w->WriteI64(options_.max_sequence_length);
  w->WriteBool(options_.sequence_algorithms_enabled);
  w->WriteU64(options_.rng_seed);

  fuzz::SaveRng(rng_, w);
  LEGO_RETURN_IF_ERROR(library_.SaveState(w));
  LEGO_RETURN_IF_ERROR(affinity_map_.SaveState(w));
  LEGO_RETURN_IF_ERROR(synthesizer_.SaveState(w));
  LEGO_RETURN_IF_ERROR(corpus_.SaveState(w));
  fuzz::SaveTestCaseQueue(queue_, w);
  w->WriteU64(pending_foreign_affinities_.size());
  for (const auto& [t1, t2] : pending_foreign_affinities_) {
    w->WriteU8(static_cast<uint8_t>(t1));
    w->WriteU8(static_cast<uint8_t>(t2));
  }
  w->WriteI64(corpus_.IndexOf(current_seed_));
  w->WriteU64(mutation_cursor_);
  w->EndChunk();
  return Status::OK();
}

Status LegoFuzzer::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kLegoTag));
  int max_len = static_cast<int>(r->ReadI64());
  bool seq_enabled = r->ReadBool();
  uint64_t rng_seed = r->ReadU64();
  if (!r->ok()) return r->status();
  if (max_len != options_.max_sequence_length ||
      seq_enabled != options_.sequence_algorithms_enabled ||
      rng_seed != options_.rng_seed) {
    return Status::InvalidArgument(
        "lego state saved under a different configuration (max_len/"
        "sequence_algorithms/rng_seed mismatch)");
  }
  LEGO_RETURN_IF_ERROR(fuzz::LoadRng(r, &rng_));
  LEGO_RETURN_IF_ERROR(library_.LoadState(r));
  LEGO_RETURN_IF_ERROR(affinity_map_.LoadState(r));
  LEGO_RETURN_IF_ERROR(synthesizer_.LoadState(r));
  LEGO_RETURN_IF_ERROR(corpus_.LoadState(r));
  LEGO_RETURN_IF_ERROR(fuzz::LoadTestCaseQueue(r, &queue_));
  uint64_t pending = r->ReadU64();
  if (!r->CheckCount(pending, 2)) return r->status();
  pending_foreign_affinities_.clear();
  constexpr uint8_t kNum = static_cast<uint8_t>(sql::StatementType::kNumTypes);
  for (uint64_t i = 0; i < pending; ++i) {
    uint8_t t1 = r->ReadU8();
    uint8_t t2 = r->ReadU8();
    if (!r->ok()) return r->status();
    if (t1 >= kNum || t2 >= kNum) {
      return Status::InvalidArgument(
          "pending affinity with invalid type tag");
    }
    pending_foreign_affinities_.emplace_back(
        static_cast<sql::StatementType>(t1),
        static_cast<sql::StatementType>(t2));
  }
  int64_t seed_index = r->ReadI64();
  uint64_t cursor = r->ReadU64();
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  if (seed_index >= static_cast<int64_t>(corpus_.size()) || seed_index < -1) {
    return Status::InvalidArgument("in-flight seed index out of range");
  }
  current_seed_ =
      seed_index < 0 ? nullptr : corpus_.at(static_cast<size_t>(seed_index));
  mutation_cursor_ = cursor;
  return Status::OK();
}

fuzz::FuzzerStats LegoFuzzer::stats() const {
  fuzz::FuzzerStats s;
  s.corpus_seeds = corpus_.size();
  s.affinity_pairs = affinity_map_.Count();
  s.sequences_total = synthesizer_.TotalSequences();
  s.sequences_dropped = synthesizer_.dropped_sequences();
  return s;
}

void LegoFuzzer::OnResult(const fuzz::TestCase& tc,
                          const fuzz::ExecResult& result) {
  // Either signal admits a seed: new engine edges, or (when the secondary
  // signal is enabled) new grammar productions — the latter keeps the corpus
  // growing after the edge map saturates. new_rules is always false when
  // rule coverage is disabled, so this path is then bit-identical to
  // edge-only feedback.
  if (!result.new_coverage && !result.new_rules) return;

  // New-coverage inputs join the corpus and donate their AST structures.
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
  if (current_seed_ != nullptr) ++current_seed_->discoveries;

  if (!options_.sequence_algorithms_enabled) return;

  // Step 2 (Fig. 4): affinities of coverage-increasing inputs are analyzed
  // (Algorithm 2) and each new one triggers progressive synthesis
  // (Algorithm 3) of the sequences that contain it.
  auto new_affinities = affinity_map_.Analyze(tc.TypeSequence());
  for (const auto& [t1, t2] : new_affinities) {
    EnqueueSynthesized(t1, t2);
  }
}

}  // namespace lego::core
