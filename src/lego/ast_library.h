#ifndef LEGO_LEGO_AST_LIBRARY_H_
#define LEGO_LEGO_AST_LIBRARY_H_

#include <array>
#include <vector>

#include "fuzz/testcase.h"
#include "persist/io.h"
#include "sql/ast.h"
#include "util/random.h"

namespace lego::core {

/// The global AST-structure library (paper §III-B instantiation, step 1):
/// when a seed covers new branches, LEGO parses its statements and stores
/// their AST skeletons per type; instantiation samples a type-matched
/// structure at random. Bounded per type with ring replacement so hot types
/// keep fresh structures without unbounded growth.
class AstLibrary {
 public:
  explicit AstLibrary(size_t cap_per_type = 64) : cap_(cap_per_type) {}

  /// Stores a deep copy of `stmt` under its type.
  void AddStatement(const sql::Statement& stmt);

  /// Stores every statement of `tc`.
  void AddTestCase(const fuzz::TestCase& tc);

  /// A deep copy of a random stored skeleton of `type`; nullptr when the
  /// library has none.
  sql::StmtPtr Sample(sql::StatementType type, Rng* rng) const;

  size_t CountFor(sql::StatementType type) const {
    return skeletons_[static_cast<size_t>(type)].size();
  }
  size_t TotalCount() const;

  /// Checkpointing: every stored skeleton (structural AST serde) plus the
  /// per-type ring-replacement cursors, so future AddStatement() calls
  /// overwrite the same slots they would have uninterrupted.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  size_t cap_;
  std::array<std::vector<sql::StmtPtr>, sql::kNumStatementTypes> skeletons_;
  std::array<size_t, sql::kNumStatementTypes> replace_cursor_ = {};
};

}  // namespace lego::core

#endif  // LEGO_LEGO_AST_LIBRARY_H_
