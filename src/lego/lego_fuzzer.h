#ifndef LEGO_LEGO_LEGO_FUZZER_H_
#define LEGO_LEGO_LEGO_FUZZER_H_

#include <deque>
#include <memory>
#include <string>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "lego/affinity.h"
#include "lego/ast_library.h"
#include "lego/instantiator.h"
#include "lego/mutation.h"
#include "lego/synthesis.h"

namespace lego::core {

/// Configuration for LEGO and its ablation.
struct LegoOptions {
  /// Maximum synthesized sequence length (the paper's LEN; §VI studies
  /// 3/5/8 and settles on 5).
  int max_sequence_length = 5;
  /// When false, proactive affinity analysis and progressive sequence
  /// synthesis are disabled together (the paper's LEGO- ablation — they are
  /// tightly coupled, §V-D).
  bool sequence_algorithms_enabled = true;
  /// Each synthesized sequence is instantiated this many times (§III-B:
  /// randomness in structure selection adds diversity).
  int instantiations_per_sequence = 2;
  /// Per-affinity cap on sequences consumed from the synthesizer.
  int max_sequences_per_affinity = 96;
  /// Pending-work queue bound.
  size_t max_queue = 16384;
  uint64_t rng_seed = 1;
};

/// The LEGO fuzzer (paper Fig. 4): each iteration proactively explores
/// type-affinities with sequence-oriented mutation, then exploits newly
/// discovered affinities by progressively synthesizing sequence-enriched
/// test cases and instantiating them against the AST-skeleton library.
class LegoFuzzer : public fuzz::Fuzzer {
 public:
  LegoFuzzer(const minidb::DialectProfile& profile, LegoOptions options);

  std::string name() const override {
    return options_.sequence_algorithms_enabled ? "lego" : "lego-";
  }
  void Prepare(fuzz::ExecutionHarness* harness) override;
  fuzz::TestCase Next() override;
  void OnResult(const fuzz::TestCase& tc,
                const fuzz::ExecResult& result) override;
  std::unique_ptr<fuzz::Fuzzer> CloneForWorker(int worker_id) const override;
  void ImportSeed(const fuzz::TestCase& tc) override;
  std::vector<fuzz::TestCase> ExportCorpus() const override;

  /// Serializes every mutable member — RNG stream, AST library, affinity
  /// map, synthesizer S (PS is rebuilt), corpus with scheduling state, the
  /// pending queue, deferred foreign affinities, the in-flight seed (as a
  /// corpus index) and the mutation cursor. Configuration (options_) is
  /// written as a fingerprint and verified on load, not restored: a resumed
  /// campaign must be constructed with the same options.
  Status SaveState(persist::StateWriter* w) const override;
  Status LoadState(persist::StateReader* r) override;
  fuzz::FuzzerStats stats() const override;

  /// Affinities discovered so far (Table II / Table IV metric).
  const TypeAffinityMap& affinities() const { return affinity_map_; }
  const SequenceSynthesizer& synthesizer() const { return synthesizer_; }
  size_t corpus_size() const { return corpus_.size(); }

 private:
  void EnqueueSynthesized(sql::StatementType t1, sql::StatementType t2);

  const minidb::DialectProfile& profile_;
  LegoOptions options_;
  Rng rng_;
  AstLibrary library_;
  Instantiator instantiator_;
  SequenceMutator mutator_;
  TypeAffinityMap affinity_map_;
  SequenceSynthesizer synthesizer_;
  fuzz::Corpus corpus_;
  std::deque<fuzz::TestCase> queue_;
  /// Affinities learned from imported (cross-worker) seeds, synthesized
  /// lazily in Next() when the queue has room: eagerly instantiating every
  /// foreign affinity would synthesize far more test cases than a worker's
  /// budget can execute. Always empty in serial campaigns.
  std::deque<std::pair<sql::StatementType, sql::StatementType>>
      pending_foreign_affinities_;
  /// Seed whose mutants are in flight (attribution for scheduling).
  fuzz::Seed* current_seed_ = nullptr;
  size_t mutation_cursor_ = 0;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_LEGO_FUZZER_H_
