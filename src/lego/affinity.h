#ifndef LEGO_LEGO_AFFINITY_H_
#define LEGO_LEGO_AFFINITY_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "persist/io.h"
#include "sql/statement_type.h"

namespace lego::core {

/// A type-affinity is a chronological relation (t1, t2): statements of type
/// t2 may meaningfully follow statements of type t1 (paper §III-A1). This
/// map is the paper's `T`: key = t1, value = set of t2.
class TypeAffinityMap {
 public:
  using Affinity = std::pair<sql::StatementType, sql::StatementType>;

  /// Paper Algorithm 2: scans the type sequence of a test case and records
  /// every adjacent pair with differing types. Returns the affinities that
  /// were new to this map, in discovery order.
  std::vector<Affinity> Analyze(
      const std::vector<sql::StatementType>& type_sequence);

  /// Adds one affinity; returns true if it was new.
  bool Add(sql::StatementType t1, sql::StatementType t2);

  /// True if (t1, t2) is known.
  bool Contains(sql::StatementType t1, sql::StatementType t2) const;

  /// Successors of `t1` (empty set if none).
  const std::set<sql::StatementType>& SuccessorsOf(
      sql::StatementType t1) const;

  /// Total number of (t1, t2) pairs — the paper's Table II metric.
  size_t Count() const { return count_; }

  /// All affinities in key order.
  std::vector<Affinity> All() const;

  void Clear();

  /// Checkpointing: the full pair set round-trips (key order); Count() is
  /// restored implicitly by re-adding.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  std::map<sql::StatementType, std::set<sql::StatementType>> map_;
  size_t count_ = 0;
};

}  // namespace lego::core

#endif  // LEGO_LEGO_AFFINITY_H_
