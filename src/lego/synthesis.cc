#include "lego/synthesis.h"

namespace lego::core {

void SequenceSynthesizer::AddStartType(sql::StatementType t) {
  auto key = std::make_pair(t, 1);
  if (prefix_.count(key)) return;  // already a root
  Record({t});
}

bool SequenceSynthesizer::Record(
    const std::vector<sql::StatementType>& seq) {
  if (sequences_.size() >= kMaxSequences) {
    ++dropped_;
    return false;
  }
  sequences_.push_back(seq);
  prefix_[{seq.back(), static_cast<int>(seq.size())}].push_back(
      sequences_.size() - 1);
  return true;
}

std::vector<std::vector<sql::StatementType>>
SequenceSynthesizer::OnNewAffinity(sql::StatementType t1,
                                   sql::StatementType t2,
                                   const TypeAffinityMap& affinities) {
  std::vector<std::vector<sql::StatementType>> out;
  size_t first_new = sequences_.size();

  for (int level = 1; level <= max_len_ - 1; ++level) {
    auto it = prefix_.find({t1, level});
    if (it == prefix_.end() || it->second.empty()) continue;
    // Copy: Record() appends to PS entries while we iterate.
    std::vector<size_t> prefix_indexes = it->second;
    for (size_t seq_index : prefix_indexes) {
      // Only extend prefixes that existed before this call — new sequences
      // already contain t1 -> t2.
      if (seq_index >= first_new) continue;
      std::vector<sql::StatementType> seq = sequences_[seq_index];
      seq.push_back(t2);
      if (!Record(seq)) return out;
      out.push_back(seq);
      ListSeq(level + 1, t2, &seq, affinities, &out);
      if (sequences_.size() >= kMaxSequences) return out;
    }
  }
  return out;
}

void SequenceSynthesizer::ListSeq(
    int level, sql::StatementType node_type,
    std::vector<sql::StatementType>* seq, const TypeAffinityMap& affinities,
    std::vector<std::vector<sql::StatementType>>* out) {
  if (level >= max_len_) return;
  for (sql::StatementType next : affinities.SuccessorsOf(node_type)) {
    if (sequences_.size() >= kMaxSequences) return;
    seq->push_back(next);
    ListSeq(level + 1, next, seq, affinities, out);
    if (Record(*seq)) out->push_back(*seq);
    seq->pop_back();
  }
}

namespace {
constexpr uint32_t kSynthTag = persist::ChunkTag("SYNT");
}  // namespace

Status SequenceSynthesizer::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kSynthTag);
  w->WriteI64(max_len_);
  w->WriteU64(dropped_);
  w->WriteU64(sequences_.size());
  for (const auto& seq : sequences_) {
    w->WriteU64(seq.size());
    for (sql::StatementType t : seq) w->WriteU8(static_cast<uint8_t>(t));
  }
  w->EndChunk();
  return Status::OK();
}

Status SequenceSynthesizer::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSynthTag));
  int max_len = static_cast<int>(r->ReadI64());
  if (r->ok() && max_len != max_len_) {
    return Status::InvalidArgument(
        "synthesizer state saved with max_len " + std::to_string(max_len) +
        ", this campaign uses " + std::to_string(max_len_));
  }
  uint64_t dropped = r->ReadU64();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  std::vector<std::vector<sql::StatementType>> sequences;
  sequences.reserve(n);
  constexpr uint8_t kNum = static_cast<uint8_t>(sql::StatementType::kNumTypes);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = r->ReadU64();
    if (!r->CheckCount(len, 1)) return r->status();
    std::vector<sql::StatementType> seq;
    seq.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint8_t t = r->ReadU8();
      if (!r->ok()) return r->status();
      if (t >= kNum) {
        return Status::InvalidArgument("sequence with invalid type tag");
      }
      seq.push_back(static_cast<sql::StatementType>(t));
    }
    if (seq.empty()) {
      return Status::InvalidArgument("empty sequence in synthesizer state");
    }
    sequences.push_back(std::move(seq));
  }
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  // Rebuild PS from S exactly as Record() built it: index i is appended to
  // prefix_[(S[i].back, |S[i]|)] in increasing i, so the rebuilt index lists
  // match the original insertion order and future synthesis walks them in
  // the same order.
  sequences_ = std::move(sequences);
  prefix_.clear();
  for (size_t i = 0; i < sequences_.size(); ++i) {
    const auto& seq = sequences_[i];
    prefix_[{seq.back(), static_cast<int>(seq.size())}].push_back(i);
  }
  dropped_ = dropped;
  return Status::OK();
}

}  // namespace lego::core
