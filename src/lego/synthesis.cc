#include "lego/synthesis.h"

namespace lego::core {

void SequenceSynthesizer::AddStartType(sql::StatementType t) {
  auto key = std::make_pair(t, 1);
  if (prefix_.count(key)) return;  // already a root
  Record({t});
}

bool SequenceSynthesizer::Record(
    const std::vector<sql::StatementType>& seq) {
  if (sequences_.size() >= kMaxSequences) return false;
  sequences_.push_back(seq);
  prefix_[{seq.back(), static_cast<int>(seq.size())}].push_back(
      sequences_.size() - 1);
  return true;
}

std::vector<std::vector<sql::StatementType>>
SequenceSynthesizer::OnNewAffinity(sql::StatementType t1,
                                   sql::StatementType t2,
                                   const TypeAffinityMap& affinities) {
  std::vector<std::vector<sql::StatementType>> out;
  size_t first_new = sequences_.size();

  for (int level = 1; level <= max_len_ - 1; ++level) {
    auto it = prefix_.find({t1, level});
    if (it == prefix_.end() || it->second.empty()) continue;
    // Copy: Record() appends to PS entries while we iterate.
    std::vector<size_t> prefix_indexes = it->second;
    for (size_t seq_index : prefix_indexes) {
      // Only extend prefixes that existed before this call — new sequences
      // already contain t1 -> t2.
      if (seq_index >= first_new) continue;
      std::vector<sql::StatementType> seq = sequences_[seq_index];
      seq.push_back(t2);
      if (!Record(seq)) return out;
      out.push_back(seq);
      ListSeq(level + 1, t2, &seq, affinities, &out);
      if (sequences_.size() >= kMaxSequences) return out;
    }
  }
  return out;
}

void SequenceSynthesizer::ListSeq(
    int level, sql::StatementType node_type,
    std::vector<sql::StatementType>* seq, const TypeAffinityMap& affinities,
    std::vector<std::vector<sql::StatementType>>* out) {
  if (level >= max_len_) return;
  for (sql::StatementType next : affinities.SuccessorsOf(node_type)) {
    if (sequences_.size() >= kMaxSequences) return;
    seq->push_back(next);
    ListSeq(level + 1, next, seq, affinities, out);
    if (Record(*seq)) out->push_back(*seq);
    seq->pop_back();
  }
}

}  // namespace lego::core
