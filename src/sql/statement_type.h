#ifndef LEGO_SQL_STATEMENT_TYPE_H_
#define LEGO_SQL_STATEMENT_TYPE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace lego::sql {

/// A statement type defines one kind of operation on one kind of object
/// (paper §II): CREATE TABLE and CREATE VIEW are distinct types. The SQL Type
/// Sequence of a test case is the sequence of these tags, and type-affinities
/// are ordered pairs over this enum.
enum class StatementType : uint8_t {
  // --- DDL ---
  kCreateTable = 0,
  kCreateIndex,
  kCreateView,
  kCreateTrigger,
  kCreateSequence,
  kCreateRule,
  kDropTable,
  kDropIndex,
  kDropView,
  kDropTrigger,
  kDropSequence,
  kDropRule,
  kAlterTable,
  kTruncate,
  // --- DML ---
  kInsert,
  kUpdate,
  kDelete,
  kReplace,
  kCopy,
  // --- DQL ---
  kSelect,
  kValues,
  kWith,
  // --- DCL ---
  kGrant,
  kRevoke,
  kCreateUser,
  kDropUser,
  // --- TCL ---
  kBegin,
  kCommit,
  kRollback,
  kSavepoint,
  kRelease,
  kRollbackTo,
  // --- Utility / session ---
  kPragma,
  kSet,
  kShow,
  kExplain,
  kAnalyze,
  kVacuum,
  kReindex,
  kCheckpoint,
  kNotify,
  kListen,
  kUnlisten,
  kComment,
  kAlterSystem,
  kDiscard,
  kNumTypes,  // sentinel
};

/// Number of concrete statement types.
inline constexpr int kNumStatementTypes =
    static_cast<int>(StatementType::kNumTypes);

/// Coarse category (paper §II divides types into DDL/DQL/DML/DCL plus
/// transaction control and utility statements).
enum class StatementCategory : uint8_t {
  kDdl,
  kDml,
  kDql,
  kDcl,
  kTcl,
  kUtility,
};

/// Canonical upper-case display name, e.g. "CREATE TABLE".
std::string_view StatementTypeName(StatementType type);

/// Category of `type`.
StatementCategory CategoryOf(StatementType type);

/// All concrete statement types, in enum order.
const std::vector<StatementType>& AllStatementTypes();

}  // namespace lego::sql

#endif  // LEGO_SQL_STATEMENT_TYPE_H_
