#ifndef LEGO_SQL_AST_H_
#define LEGO_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/statement_type.h"

namespace lego::sql {

class Expr;
class Statement;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Statement>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,
  kUnary,
  kBinary,
  kFunctionCall,
  kCase,
  kInList,
  kInSubquery,
  kBetween,
  kLike,
  kIsNull,
  kExists,
  kCast,
  kScalarSubquery,
  kSessionVar,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kConcat,
};

/// SQL column type names used in DDL and CAST.
enum class SqlType : uint8_t { kInt, kReal, kText, kBool };

/// Display name, e.g. "INT".
std::string_view SqlTypeName(SqlType t);

/// Base class for all expression AST nodes. Nodes are exclusively owned via
/// ExprPtr; Clone() produces a deep copy (skeleton-library instantiation and
/// mutation both rely on cheap structural copying).
class Expr {
 public:
  virtual ~Expr() = default;
  virtual ExprKind kind() const = 0;
  virtual ExprPtr Clone() const = 0;
  /// Appends this node's SQL rendering to `out`.
  virtual void PrintTo(std::string* out) const = 0;
  /// Appends pointers to this node's directly-owned child expression slots
  /// (never null; subquery SELECT bodies are not expression slots and are
  /// excluded). Reduction uses these to splice subtrees in place.
  virtual void CollectChildSlots(std::vector<ExprPtr*>* out) { (void)out; }
};

/// Literal constant: NULL, integer, real, text, or boolean.
class Literal : public Expr {
 public:
  enum class Tag : uint8_t { kNull, kInt, kReal, kText, kBool };

  Literal() : tag_(Tag::kNull) {}
  static ExprPtr Null() { return std::make_unique<Literal>(); }
  static ExprPtr Int(int64_t v) {
    auto e = std::make_unique<Literal>();
    e->tag_ = Tag::kInt;
    e->int_ = v;
    return e;
  }
  static ExprPtr Real(double v) {
    auto e = std::make_unique<Literal>();
    e->tag_ = Tag::kReal;
    e->real_ = v;
    return e;
  }
  static ExprPtr Text(std::string v) {
    auto e = std::make_unique<Literal>();
    e->tag_ = Tag::kText;
    e->text_ = std::move(v);
    return e;
  }
  static ExprPtr Bool(bool v) {
    auto e = std::make_unique<Literal>();
    e->tag_ = Tag::kBool;
    e->bool_ = v;
    return e;
  }

  Tag tag() const { return tag_; }
  int64_t int_value() const { return int_; }
  double real_value() const { return real_; }
  const std::string& text_value() const { return text_; }
  bool bool_value() const { return bool_; }

  ExprKind kind() const override { return ExprKind::kLiteral; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  Tag tag_;
  int64_t int_ = 0;
  double real_ = 0.0;
  std::string text_;
  bool bool_ = false;
};

/// Reference to a column, optionally table-qualified: `t1.v2` or `v2`.
class ColumnRef : public Expr {
 public:
  ColumnRef(std::string table, std::string column)
      : table_(std::move(table)), column_(std::move(column)) {}

  const std::string& table() const { return table_; }  // may be empty
  const std::string& column() const { return column_; }
  void set_column(std::string c) { column_ = std::move(c); }
  void set_table(std::string t) { table_ = std::move(t); }

  ExprKind kind() const override { return ExprKind::kColumnRef; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::string table_;
  std::string column_;
};

/// `*` or `t1.*` in a select list.
class Star : public Expr {
 public:
  explicit Star(std::string table = "") : table_(std::move(table)) {}
  const std::string& table() const { return table_; }

  ExprKind kind() const override { return ExprKind::kStar; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::string table_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }
  Expr* mutable_operand() { return operand_.get(); }

  ExprKind kind() const override { return ExprKind::kUnary; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  BinaryOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }
  Expr* mutable_lhs() { return lhs_.get(); }
  Expr* mutable_rhs() { return rhs_.get(); }

  ExprKind kind() const override { return ExprKind::kBinary; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class SelectStmt;

/// Window specification for `fn(...) OVER (PARTITION BY ... ORDER BY ...)`.
struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  std::vector<std::pair<ExprPtr, bool>> order_by;  // (expr, desc)

  WindowSpec Clone() const;
};

/// Scalar, aggregate, or window function call. Aggregates and window
/// functions are distinguished by name at binding time in the engine.
class FunctionCall : public Expr {
 public:
  FunctionCall(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>* mutable_args() { return &args_; }
  bool distinct() const { return distinct_; }
  void set_distinct(bool d) { distinct_ = d; }
  bool star_arg() const { return star_arg_; }
  void set_star_arg(bool s) { star_arg_ = s; }
  const WindowSpec* window() const { return window_.get(); }
  void set_window(std::unique_ptr<WindowSpec> w) { window_ = std::move(w); }

  ExprKind kind() const override { return ExprKind::kFunctionCall; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  std::string name_;  // canonical upper-case
  std::vector<ExprPtr> args_;
  bool distinct_ = false;
  bool star_arg_ = false;  // COUNT(*)
  std::unique_ptr<WindowSpec> window_;
};

/// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
class CaseExpr : public Expr {
 public:
  CaseExpr(ExprPtr operand,
           std::vector<std::pair<ExprPtr, ExprPtr>> whens,
           ExprPtr else_expr)
      : operand_(std::move(operand)),
        whens_(std::move(whens)),
        else_(std::move(else_expr)) {}

  const Expr* operand() const { return operand_.get(); }  // may be null
  const std::vector<std::pair<ExprPtr, ExprPtr>>& whens() const {
    return whens_;
  }
  const Expr* else_expr() const { return else_.get(); }  // may be null

  ExprKind kind() const override { return ExprKind::kCase; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr operand_;
  std::vector<std::pair<ExprPtr, ExprPtr>> whens_;
  ExprPtr else_;
};

/// `expr [NOT] IN (e1, e2, ...)`.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr needle, std::vector<ExprPtr> list, bool negated)
      : needle_(std::move(needle)), list_(std::move(list)), negated_(negated) {}

  const Expr& needle() const { return *needle_; }
  const std::vector<ExprPtr>& list() const { return list_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kInList; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr needle_;
  std::vector<ExprPtr> list_;
  bool negated_;
};

/// `expr [NOT] IN (SELECT ...)`.
class InSubqueryExpr : public Expr {
 public:
  InSubqueryExpr(ExprPtr needle, std::unique_ptr<SelectStmt> subquery,
                 bool negated);
  ~InSubqueryExpr() override;

  const Expr& needle() const { return *needle_; }
  const SelectStmt& subquery() const { return *subquery_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kInSubquery; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr needle_;
  std::unique_ptr<SelectStmt> subquery_;
  bool negated_;
};

/// `expr [NOT] BETWEEN lo AND hi`.
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr lo, ExprPtr hi, bool negated)
      : operand_(std::move(operand)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        negated_(negated) {}

  const Expr& operand() const { return *operand_; }
  const Expr& lo() const { return *lo_; }
  const Expr& hi() const { return *hi_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kBetween; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr operand_;
  ExprPtr lo_;
  ExprPtr hi_;
  bool negated_;
};

/// `expr [NOT] LIKE pattern`.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr operand, ExprPtr pattern, bool negated)
      : operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const Expr& operand() const { return *operand_; }
  const Expr& pattern() const { return *pattern_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kLike; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr operand_;
  ExprPtr pattern_;
  bool negated_;
};

/// `expr IS [NOT] NULL`.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  const Expr& operand() const { return *operand_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kIsNull; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr operand_;
  bool negated_;
};

/// `[NOT] EXISTS (SELECT ...)`.
class ExistsExpr : public Expr {
 public:
  ExistsExpr(std::unique_ptr<SelectStmt> subquery, bool negated);
  ~ExistsExpr() override;

  const SelectStmt& subquery() const { return *subquery_; }
  bool negated() const { return negated_; }

  ExprKind kind() const override { return ExprKind::kExists; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::unique_ptr<SelectStmt> subquery_;
  bool negated_;
};

/// `CAST(expr AS type)`.
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr operand, SqlType target)
      : operand_(std::move(operand)), target_(target) {}

  const Expr& operand() const { return *operand_; }
  SqlType target() const { return target_; }

  ExprKind kind() const override { return ExprKind::kCast; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;
  void CollectChildSlots(std::vector<ExprPtr*>* out) override;

 private:
  ExprPtr operand_;
  SqlType target_;
};

/// `(SELECT ...)` used as a scalar value.
class ScalarSubquery : public Expr {
 public:
  explicit ScalarSubquery(std::unique_ptr<SelectStmt> subquery);
  ~ScalarSubquery() override;

  const SelectStmt& subquery() const { return *subquery_; }

  ExprKind kind() const override { return ExprKind::kScalarSubquery; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::unique_ptr<SelectStmt> subquery_;
};

/// `@@SESSION.name` or `@@name` session variable reference.
class SessionVar : public Expr {
 public:
  explicit SessionVar(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  ExprKind kind() const override { return ExprKind::kSessionVar; }
  ExprPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::string name_;
};

// ---------------------------------------------------------------------------
// Table references (FROM clause)
// ---------------------------------------------------------------------------

enum class TableRefKind : uint8_t { kBaseTable, kSubquery, kJoin };
enum class JoinType : uint8_t { kInner, kLeft, kCross };

class TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

/// Base class for FROM-clause items.
class TableRef {
 public:
  virtual ~TableRef() = default;
  virtual TableRefKind kind() const = 0;
  virtual TableRefPtr Clone() const = 0;
  virtual void PrintTo(std::string* out) const = 0;
};

/// A named table or view, with optional alias.
class BaseTableRef : public TableRef {
 public:
  explicit BaseTableRef(std::string name, std::string alias = "")
      : name_(std::move(name)), alias_(std::move(alias)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const std::string& alias() const { return alias_; }

  TableRefKind kind() const override { return TableRefKind::kBaseTable; }
  TableRefPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::string name_;
  std::string alias_;
};

/// A parenthesized subquery in FROM, with alias.
class SubqueryRef : public TableRef {
 public:
  SubqueryRef(std::unique_ptr<SelectStmt> select, std::string alias);
  ~SubqueryRef() override;

  const SelectStmt& select() const { return *select_; }
  const std::string& alias() const { return alias_; }

  TableRefKind kind() const override { return TableRefKind::kSubquery; }
  TableRefPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  std::unique_ptr<SelectStmt> select_;
  std::string alias_;
};

/// A binary join between two table refs.
class JoinRef : public TableRef {
 public:
  JoinRef(JoinType type, TableRefPtr left, TableRefPtr right, ExprPtr on)
      : type_(type),
        left_(std::move(left)),
        right_(std::move(right)),
        on_(std::move(on)) {}

  JoinType join_type() const { return type_; }
  const TableRef& left() const { return *left_; }
  const TableRef& right() const { return *right_; }
  const Expr* on() const { return on_.get(); }  // null for CROSS JOIN
  TableRef* mutable_left() { return left_.get(); }
  TableRef* mutable_right() { return right_.get(); }
  /// Owning slot of the ON condition (holds null for CROSS JOIN).
  ExprPtr* mutable_on_slot() { return &on_; }

  TableRefKind kind() const override { return TableRefKind::kJoin; }
  TableRefPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  JoinType type_;
  TableRefPtr left_;
  TableRefPtr right_;
  ExprPtr on_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// Base class for all statement AST nodes.
class Statement {
 public:
  virtual ~Statement() = default;
  /// The statement's SQL type tag — the unit of the SQL Type Sequence.
  virtual StatementType type() const = 0;
  virtual StmtPtr Clone() const = 0;
  virtual void PrintTo(std::string* out) const = 0;
};

/// Renders any statement back to SQL text (no trailing semicolon).
std::string ToSql(const Statement& stmt);

/// Renders an expression to SQL text.
std::string ToSql(const Expr& expr);

/// One column definition in CREATE TABLE / ALTER TABLE ADD COLUMN.
struct ColumnDef {
  std::string name;
  SqlType type = SqlType::kInt;
  bool primary_key = false;
  bool unique = false;
  bool not_null = false;
  ExprPtr default_value;  // may be null

  ColumnDef() = default;
  ColumnDef(std::string n, SqlType t) : name(std::move(n)), type(t) {}
  ColumnDef Clone() const;
  void PrintTo(std::string* out) const;
};

class CreateTableStmt : public Statement {
 public:
  std::string name;
  bool if_not_exists = false;
  bool temporary = false;
  std::vector<ColumnDef> columns;

  StatementType type() const override { return StatementType::kCreateTable; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class CreateIndexStmt : public Statement {
 public:
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  bool if_not_exists = false;

  StatementType type() const override { return StatementType::kCreateIndex; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class CreateViewStmt : public Statement {
 public:
  std::string name;
  bool or_replace = false;
  std::unique_ptr<SelectStmt> select;

  StatementType type() const override { return StatementType::kCreateView; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

enum class TriggerTiming : uint8_t { kBefore, kAfter };
enum class TriggerEvent : uint8_t { kInsert, kUpdate, kDelete };

class CreateTriggerStmt : public Statement {
 public:
  std::string name;
  TriggerTiming timing = TriggerTiming::kAfter;
  TriggerEvent event = TriggerEvent::kInsert;
  std::string table;
  bool for_each_row = true;
  StmtPtr body;  // a single DML/utility statement

  StatementType type() const override { return StatementType::kCreateTrigger; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class CreateSequenceStmt : public Statement {
 public:
  std::string name;
  int64_t start = 1;
  int64_t increment = 1;
  bool if_not_exists = false;

  StatementType type() const override { return StatementType::kCreateSequence; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// PostgreSQL-style rewrite rule: ON event TO table DO INSTEAD action.
class CreateRuleStmt : public Statement {
 public:
  std::string name;
  bool or_replace = false;
  TriggerEvent event = TriggerEvent::kInsert;
  std::string table;
  bool instead = true;
  StmtPtr action;  // null means DO INSTEAD NOTHING

  StatementType type() const override { return StatementType::kCreateRule; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// Shared shape for DROP TABLE/INDEX/VIEW/TRIGGER/SEQUENCE/RULE.
class DropStmt : public Statement {
 public:
  DropStmt(StatementType drop_type, std::string name, bool if_exists)
      : drop_type_(drop_type), name_(std::move(name)), if_exists_(if_exists) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  bool if_exists() const { return if_exists_; }
  void set_if_exists(bool v) { if_exists_ = v; }

  StatementType type() const override { return drop_type_; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  StatementType drop_type_;
  std::string name_;
  bool if_exists_;
};

enum class AlterAction : uint8_t {
  kAddColumn,
  kDropColumn,
  kRenameColumn,
  kRenameTable,
};

class AlterTableStmt : public Statement {
 public:
  std::string table;
  AlterAction action = AlterAction::kAddColumn;
  ColumnDef new_column;      // kAddColumn
  std::string old_name;      // kDropColumn / kRenameColumn
  std::string new_name;      // kRenameColumn / kRenameTable

  StatementType type() const override { return StatementType::kAlterTable; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class TruncateStmt : public Statement {
 public:
  std::string table;

  StatementType type() const override { return StatementType::kTruncate; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// INSERT and REPLACE share one node; `replace` flips the type tag.
class InsertStmt : public Statement {
 public:
  std::string table;
  std::vector<std::string> columns;            // empty = all columns
  std::vector<std::vector<ExprPtr>> rows;      // VALUES rows; empty if select
  std::unique_ptr<SelectStmt> select;          // INSERT ... SELECT
  bool or_ignore = false;
  bool replace = false;

  StatementType type() const override {
    return replace ? StatementType::kReplace : StatementType::kInsert;
  }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class UpdateStmt : public Statement {
 public:
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null

  StatementType type() const override { return StatementType::kUpdate; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class DeleteStmt : public Statement {
 public:
  std::string table;
  ExprPtr where;  // may be null

  StatementType type() const override { return StatementType::kDelete; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// COPY table TO STDOUT / COPY (SELECT ...) TO STDOUT, with CSV/HEADER flags.
class CopyStmt : public Statement {
 public:
  std::string table;                     // empty if query form
  std::unique_ptr<SelectStmt> query;     // null if table form
  bool to_stdout = true;
  bool csv = false;
  bool header = false;

  StatementType type() const override { return StatementType::kCopy; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// One item in a select list: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;

  SelectItem Clone() const;
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;

  OrderByItem Clone() const;
};

enum class SetOpKind : uint8_t { kUnion, kUnionAll, kExcept, kIntersect };

/// One SELECT core (no ORDER BY/LIMIT; those attach to the whole compound).
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;   // may be null (SELECT 1)
  ExprPtr where;      // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;     // may be null

  SelectCore Clone() const;
  void PrintTo(std::string* out) const;
};

class SelectStmt : public Statement {
 public:
  SelectCore core;
  std::vector<std::pair<SetOpKind, SelectCore>> compounds;
  std::vector<OrderByItem> order_by;
  ExprPtr limit;   // may be null
  ExprPtr offset;  // may be null

  StatementType type() const override { return StatementType::kSelect; }
  StmtPtr Clone() const override;
  /// Typed deep copy (convenience over Clone()).
  std::unique_ptr<SelectStmt> CloneSelect() const;
  void PrintTo(std::string* out) const override;
};

/// Standalone `VALUES (..), (..)` statement.
class ValuesStmt : public Statement {
 public:
  std::vector<std::vector<ExprPtr>> rows;

  StatementType type() const override { return StatementType::kValues; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// One common-table expression in a WITH statement.
struct CommonTableExpr {
  std::string name;
  std::vector<std::string> columns;  // optional explicit column list
  StmtPtr statement;                 // SELECT/INSERT/UPDATE/DELETE/VALUES

  CommonTableExpr Clone() const;
};

/// `WITH cte [, ...] <body>`; the body is SELECT/INSERT/UPDATE/DELETE.
/// Treated as its own statement type (the paper's case study sequence is
/// CREATE RULE -> NOTIFY -> COPY -> WITH).
class WithStmt : public Statement {
 public:
  std::vector<CommonTableExpr> ctes;
  StmtPtr body;

  StatementType type() const override { return StatementType::kWith; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

enum class Privilege : uint8_t { kSelect, kInsert, kUpdate, kDelete, kAll };

/// Display name, e.g. "SELECT".
std::string_view PrivilegeName(Privilege p);

class GrantStmt : public Statement {
 public:
  Privilege privilege = Privilege::kSelect;
  std::string table;
  std::string user;

  StatementType type() const override { return StatementType::kGrant; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class RevokeStmt : public Statement {
 public:
  Privilege privilege = Privilege::kSelect;
  std::string table;
  std::string user;

  StatementType type() const override { return StatementType::kRevoke; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class CreateUserStmt : public Statement {
 public:
  std::string name;
  bool if_not_exists = false;

  StatementType type() const override { return StatementType::kCreateUser; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class DropUserStmt : public Statement {
 public:
  std::string name;
  bool if_exists = false;

  StatementType type() const override { return StatementType::kDropUser; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// BEGIN / COMMIT / ROLLBACK / CHECKPOINT — statements with no operands share
/// one node parameterized by type.
class SimpleStmt : public Statement {
 public:
  explicit SimpleStmt(StatementType t) : type_(t) {}

  StatementType type() const override { return type_; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  StatementType type_;
};

/// SAVEPOINT name / RELEASE name / ROLLBACK TO name / LISTEN ch / UNLISTEN ch.
class NamedStmt : public Statement {
 public:
  NamedStmt(StatementType t, std::string name)
      : type_(t), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  StatementType type() const override { return type_; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  StatementType type_;
  std::string name_;
};

/// PRAGMA name [= value] — also used for MySQL-flavored SET via kSet.
class PragmaStmt : public Statement {
 public:
  std::string name;
  ExprPtr value;        // may be null (query form)
  bool is_set = false;  // SET name = value spelling
  bool session_scope = false;  // SET @@SESSION.name = value

  StatementType type() const override {
    return is_set ? StatementType::kSet : StatementType::kPragma;
  }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class ShowStmt : public Statement {
 public:
  /// "TABLES", "INDEXES", "TRIGGERS", "VIEWS", or a variable name.
  std::string what = "TABLES";

  StatementType type() const override { return StatementType::kShow; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

class ExplainStmt : public Statement {
 public:
  StmtPtr target;
  bool analyze = false;  // EXPLAIN ANALYZE

  StatementType type() const override { return StatementType::kExplain; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// ANALYZE [table] / VACUUM [table] / REINDEX [name].
class MaintenanceStmt : public Statement {
 public:
  MaintenanceStmt(StatementType t, std::string target)
      : type_(t), target_(std::move(target)) {}

  const std::string& target() const { return target_; }  // may be empty

  StatementType type() const override { return type_; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;

 private:
  StatementType type_;
  std::string target_;
};

/// NOTIFY channel [, 'payload'].
class NotifyStmt : public Statement {
 public:
  std::string channel;
  std::string payload;  // may be empty

  StatementType type() const override { return StatementType::kNotify; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// COMMENT ON TABLE name IS 'text'.
class CommentStmt : public Statement {
 public:
  std::string table;
  std::string text;

  StatementType type() const override { return StatementType::kComment; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// ALTER SYSTEM SET name = value | ALTER SYSTEM FLUSH | ALTER SYSTEM <word>.
class AlterSystemStmt : public Statement {
 public:
  std::string action;  // e.g. "FLUSH", "MAJOR FREEZE", or "SET"
  std::string name;    // for SET form
  ExprPtr value;       // for SET form

  StatementType type() const override { return StatementType::kAlterSystem; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

/// DISCARD ALL | DISCARD TEMP.
class DiscardStmt : public Statement {
 public:
  bool all = true;

  StatementType type() const override { return StatementType::kDiscard; }
  StmtPtr Clone() const override;
  void PrintTo(std::string* out) const override;
};

}  // namespace lego::sql

#endif  // LEGO_SQL_AST_H_
