#include "sql/ast_walk.h"

namespace lego::sql {

namespace {

void WalkSelectExprs(const SelectStmt& stmt,
                     const std::function<void(const Expr&)>& fn,
                     bool into_subqueries);

void WalkTableRefExprs(const TableRef& ref,
                       const std::function<void(const Expr&)>& fn,
                       bool into_subqueries) {
  switch (ref.kind()) {
    case TableRefKind::kBaseTable:
      break;
    case TableRefKind::kSubquery:
      if (into_subqueries) {
        WalkSelectExprs(static_cast<const SubqueryRef&>(ref).select(), fn,
                        into_subqueries);
      }
      break;
    case TableRefKind::kJoin: {
      const auto& join = static_cast<const JoinRef&>(ref);
      WalkTableRefExprs(join.left(), fn, into_subqueries);
      WalkTableRefExprs(join.right(), fn, into_subqueries);
      if (join.on() != nullptr) WalkExprs(*join.on(), fn, into_subqueries);
      break;
    }
  }
}

void WalkCoreExprs(const SelectCore& core,
                   const std::function<void(const Expr&)>& fn,
                   bool into_subqueries) {
  for (const auto& item : core.items) WalkExprs(*item.expr, fn, into_subqueries);
  if (core.from != nullptr) WalkTableRefExprs(*core.from, fn, into_subqueries);
  if (core.where != nullptr) WalkExprs(*core.where, fn, into_subqueries);
  for (const auto& g : core.group_by) WalkExprs(*g, fn, into_subqueries);
  if (core.having != nullptr) WalkExprs(*core.having, fn, into_subqueries);
}

void WalkSelectExprs(const SelectStmt& stmt,
                     const std::function<void(const Expr&)>& fn,
                     bool into_subqueries) {
  WalkCoreExprs(stmt.core, fn, into_subqueries);
  for (const auto& [kind, core] : stmt.compounds) {
    WalkCoreExprs(core, fn, into_subqueries);
  }
  for (const auto& item : stmt.order_by) {
    WalkExprs(*item.expr, fn, into_subqueries);
  }
  if (stmt.limit != nullptr) WalkExprs(*stmt.limit, fn, into_subqueries);
  if (stmt.offset != nullptr) WalkExprs(*stmt.offset, fn, into_subqueries);
}

}  // namespace

void WalkExprs(const Expr& expr, const std::function<void(const Expr&)>& fn,
               bool into_subqueries) {
  fn(expr);
  switch (expr.kind()) {
    case ExprKind::kUnary:
      WalkExprs(static_cast<const UnaryExpr&>(expr).operand(), fn,
                into_subqueries);
      break;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      WalkExprs(bin.lhs(), fn, into_subqueries);
      WalkExprs(bin.rhs(), fn, into_subqueries);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCall&>(expr);
      for (const auto& a : call.args()) WalkExprs(*a, fn, into_subqueries);
      if (call.window() != nullptr) {
        for (const auto& p : call.window()->partition_by) {
          WalkExprs(*p, fn, into_subqueries);
        }
        for (const auto& [e, desc] : call.window()->order_by) {
          WalkExprs(*e, fn, into_subqueries);
        }
      }
      break;
    }
    case ExprKind::kCase: {
      const auto& ce = static_cast<const CaseExpr&>(expr);
      if (ce.operand() != nullptr) WalkExprs(*ce.operand(), fn, into_subqueries);
      for (const auto& [w, t] : ce.whens()) {
        WalkExprs(*w, fn, into_subqueries);
        WalkExprs(*t, fn, into_subqueries);
      }
      if (ce.else_expr() != nullptr) {
        WalkExprs(*ce.else_expr(), fn, into_subqueries);
      }
      break;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      WalkExprs(in.needle(), fn, into_subqueries);
      for (const auto& e : in.list()) WalkExprs(*e, fn, into_subqueries);
      break;
    }
    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const InSubqueryExpr&>(expr);
      WalkExprs(in.needle(), fn, into_subqueries);
      if (into_subqueries) WalkSelectExprs(in.subquery(), fn, into_subqueries);
      break;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(expr);
      WalkExprs(bt.operand(), fn, into_subqueries);
      WalkExprs(bt.lo(), fn, into_subqueries);
      WalkExprs(bt.hi(), fn, into_subqueries);
      break;
    }
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(expr);
      WalkExprs(lk.operand(), fn, into_subqueries);
      WalkExprs(lk.pattern(), fn, into_subqueries);
      break;
    }
    case ExprKind::kIsNull:
      WalkExprs(static_cast<const IsNullExpr&>(expr).operand(), fn,
                into_subqueries);
      break;
    case ExprKind::kExists:
      if (into_subqueries) {
        WalkSelectExprs(static_cast<const ExistsExpr&>(expr).subquery(), fn,
                        into_subqueries);
      }
      break;
    case ExprKind::kCast:
      WalkExprs(static_cast<const CastExpr&>(expr).operand(), fn,
                into_subqueries);
      break;
    case ExprKind::kScalarSubquery:
      if (into_subqueries) {
        WalkSelectExprs(static_cast<const ScalarSubquery&>(expr).subquery(),
                        fn, into_subqueries);
      }
      break;
    default:
      break;
  }
}

void WalkStatementExprs(const Statement& stmt,
                        const std::function<void(const Expr&)>& fn,
                        bool into_subqueries) {
  switch (stmt.type()) {
    case StatementType::kCreateTable: {
      const auto& s = static_cast<const CreateTableStmt&>(stmt);
      for (const auto& col : s.columns) {
        if (col.default_value != nullptr) {
          WalkExprs(*col.default_value, fn, into_subqueries);
        }
      }
      break;
    }
    case StatementType::kCreateView: {
      const auto& s = static_cast<const CreateViewStmt&>(stmt);
      WalkSelectExprs(*s.select, fn, into_subqueries);
      break;
    }
    case StatementType::kCreateTrigger: {
      const auto& s = static_cast<const CreateTriggerStmt&>(stmt);
      WalkStatementExprs(*s.body, fn, into_subqueries);
      break;
    }
    case StatementType::kCreateRule: {
      const auto& s = static_cast<const CreateRuleStmt&>(stmt);
      if (s.action != nullptr) {
        WalkStatementExprs(*s.action, fn, into_subqueries);
      }
      break;
    }
    case StatementType::kAlterTable: {
      const auto& s = static_cast<const AlterTableStmt&>(stmt);
      if (s.new_column.default_value != nullptr) {
        WalkExprs(*s.new_column.default_value, fn, into_subqueries);
      }
      break;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      for (const auto& row : s.rows) {
        for (const auto& e : row) WalkExprs(*e, fn, into_subqueries);
      }
      if (s.select != nullptr) {
        WalkSelectExprs(*s.select, fn, into_subqueries);
      }
      break;
    }
    case StatementType::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      for (const auto& [col, e] : s.assignments) {
        WalkExprs(*e, fn, into_subqueries);
      }
      if (s.where != nullptr) WalkExprs(*s.where, fn, into_subqueries);
      break;
    }
    case StatementType::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      if (s.where != nullptr) WalkExprs(*s.where, fn, into_subqueries);
      break;
    }
    case StatementType::kCopy: {
      const auto& s = static_cast<const CopyStmt&>(stmt);
      if (s.query != nullptr) WalkSelectExprs(*s.query, fn, into_subqueries);
      break;
    }
    case StatementType::kSelect:
      WalkSelectExprs(static_cast<const SelectStmt&>(stmt), fn,
                      into_subqueries);
      break;
    case StatementType::kValues: {
      const auto& s = static_cast<const ValuesStmt&>(stmt);
      for (const auto& row : s.rows) {
        for (const auto& e : row) WalkExprs(*e, fn, into_subqueries);
      }
      break;
    }
    case StatementType::kWith: {
      const auto& s = static_cast<const WithStmt&>(stmt);
      for (const auto& cte : s.ctes) {
        WalkStatementExprs(*cte.statement, fn, into_subqueries);
      }
      WalkStatementExprs(*s.body, fn, into_subqueries);
      break;
    }
    case StatementType::kPragma:
    case StatementType::kSet: {
      const auto& s = static_cast<const PragmaStmt&>(stmt);
      if (s.value != nullptr) WalkExprs(*s.value, fn, into_subqueries);
      break;
    }
    case StatementType::kExplain: {
      const auto& s = static_cast<const ExplainStmt&>(stmt);
      WalkStatementExprs(*s.target, fn, into_subqueries);
      break;
    }
    case StatementType::kAlterSystem: {
      const auto& s = static_cast<const AlterSystemStmt&>(stmt);
      if (s.value != nullptr) WalkExprs(*s.value, fn, into_subqueries);
      break;
    }
    default:
      break;
  }
}

namespace {

void WalkRefTree(const TableRef& ref,
                 const std::function<void(const TableRef&)>& fn,
                 bool into_subqueries,
                 const std::function<void(const SelectStmt&)>& select_fn) {
  fn(ref);
  switch (ref.kind()) {
    case TableRefKind::kBaseTable:
      break;
    case TableRefKind::kSubquery:
      if (into_subqueries) {
        select_fn(static_cast<const SubqueryRef&>(ref).select());
      }
      break;
    case TableRefKind::kJoin: {
      const auto& join = static_cast<const JoinRef&>(ref);
      WalkRefTree(join.left(), fn, into_subqueries, select_fn);
      WalkRefTree(join.right(), fn, into_subqueries, select_fn);
      break;
    }
  }
}

}  // namespace

void WalkTableRefs(const Statement& stmt,
                   const std::function<void(const TableRef&)>& fn,
                   bool into_subqueries) {
  WalkSelects(stmt, [&](const SelectStmt& select) {
    std::function<void(const SelectStmt&)> recurse =
        [&](const SelectStmt& inner) {
          if (inner.core.from != nullptr) {
            WalkRefTree(*inner.core.from, fn, into_subqueries, recurse);
          }
          for (const auto& [kind, core] : inner.compounds) {
            if (core.from != nullptr) {
              WalkRefTree(*core.from, fn, into_subqueries, recurse);
            }
          }
        };
    recurse(select);
  });
}

// ------------------------ Mutable slot walking ------------------------------

namespace {

void WalkSelectSlots(SelectStmt* stmt,
                     const std::function<void(ExprPtr*)>& fn);

void MaybeWalkSlot(ExprPtr* slot, const std::function<void(ExprPtr*)>& fn) {
  if (slot != nullptr && *slot != nullptr) WalkExprSlots(slot, fn);
}

void WalkRefSlots(TableRef* ref, const std::function<void(ExprPtr*)>& fn) {
  if (ref == nullptr) return;
  switch (ref->kind()) {
    case TableRefKind::kBaseTable:
    case TableRefKind::kSubquery:  // subquery scope: not entered
      break;
    case TableRefKind::kJoin: {
      auto* join = static_cast<JoinRef*>(ref);
      WalkRefSlots(join->mutable_left(), fn);
      WalkRefSlots(join->mutable_right(), fn);
      MaybeWalkSlot(join->mutable_on_slot(), fn);
      break;
    }
  }
}

void WalkCoreSlots(SelectCore* core, const std::function<void(ExprPtr*)>& fn) {
  for (SelectItem& item : core->items) MaybeWalkSlot(&item.expr, fn);
  WalkRefSlots(core->from.get(), fn);
  MaybeWalkSlot(&core->where, fn);
  for (ExprPtr& g : core->group_by) MaybeWalkSlot(&g, fn);
  MaybeWalkSlot(&core->having, fn);
}

void WalkSelectSlots(SelectStmt* stmt,
                     const std::function<void(ExprPtr*)>& fn) {
  WalkCoreSlots(&stmt->core, fn);
  for (auto& [kind, core] : stmt->compounds) WalkCoreSlots(&core, fn);
  for (OrderByItem& item : stmt->order_by) MaybeWalkSlot(&item.expr, fn);
  MaybeWalkSlot(&stmt->limit, fn);
  MaybeWalkSlot(&stmt->offset, fn);
}

}  // namespace

void WalkExprSlots(ExprPtr* slot, const std::function<void(ExprPtr*)>& fn) {
  if (slot == nullptr || *slot == nullptr) return;
  fn(slot);
  // Collect children from the node now held by the slot — `fn` may have
  // replaced it — so a spliced-in subtree is itself walked.
  std::vector<ExprPtr*> children;
  (*slot)->CollectChildSlots(&children);
  for (ExprPtr* child : children) WalkExprSlots(child, fn);
}

void WalkStatementExprSlots(Statement* stmt,
                            const std::function<void(ExprPtr*)>& fn) {
  switch (stmt->type()) {
    case StatementType::kCreateTable: {
      auto* s = static_cast<CreateTableStmt*>(stmt);
      for (ColumnDef& col : s->columns) MaybeWalkSlot(&col.default_value, fn);
      break;
    }
    case StatementType::kCreateView: {
      auto* s = static_cast<CreateViewStmt*>(stmt);
      if (s->select != nullptr) WalkSelectSlots(s->select.get(), fn);
      break;
    }
    case StatementType::kCreateTrigger: {
      auto* s = static_cast<CreateTriggerStmt*>(stmt);
      if (s->body != nullptr) WalkStatementExprSlots(s->body.get(), fn);
      break;
    }
    case StatementType::kCreateRule: {
      auto* s = static_cast<CreateRuleStmt*>(stmt);
      if (s->action != nullptr) WalkStatementExprSlots(s->action.get(), fn);
      break;
    }
    case StatementType::kAlterTable: {
      auto* s = static_cast<AlterTableStmt*>(stmt);
      MaybeWalkSlot(&s->new_column.default_value, fn);
      break;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      auto* s = static_cast<InsertStmt*>(stmt);
      for (auto& row : s->rows) {
        for (ExprPtr& e : row) MaybeWalkSlot(&e, fn);
      }
      if (s->select != nullptr) WalkSelectSlots(s->select.get(), fn);
      break;
    }
    case StatementType::kUpdate: {
      auto* s = static_cast<UpdateStmt*>(stmt);
      for (auto& [col, e] : s->assignments) MaybeWalkSlot(&e, fn);
      MaybeWalkSlot(&s->where, fn);
      break;
    }
    case StatementType::kDelete: {
      auto* s = static_cast<DeleteStmt*>(stmt);
      MaybeWalkSlot(&s->where, fn);
      break;
    }
    case StatementType::kCopy: {
      auto* s = static_cast<CopyStmt*>(stmt);
      if (s->query != nullptr) WalkSelectSlots(s->query.get(), fn);
      break;
    }
    case StatementType::kSelect:
      WalkSelectSlots(static_cast<SelectStmt*>(stmt), fn);
      break;
    case StatementType::kValues: {
      auto* s = static_cast<ValuesStmt*>(stmt);
      for (auto& row : s->rows) {
        for (ExprPtr& e : row) MaybeWalkSlot(&e, fn);
      }
      break;
    }
    case StatementType::kWith: {
      auto* s = static_cast<WithStmt*>(stmt);
      for (CommonTableExpr& cte : s->ctes) {
        if (cte.statement != nullptr) {
          WalkStatementExprSlots(cte.statement.get(), fn);
        }
      }
      if (s->body != nullptr) WalkStatementExprSlots(s->body.get(), fn);
      break;
    }
    case StatementType::kPragma:
    case StatementType::kSet: {
      auto* s = static_cast<PragmaStmt*>(stmt);
      MaybeWalkSlot(&s->value, fn);
      break;
    }
    case StatementType::kExplain: {
      auto* s = static_cast<ExplainStmt*>(stmt);
      if (s->target != nullptr) WalkStatementExprSlots(s->target.get(), fn);
      break;
    }
    case StatementType::kAlterSystem: {
      auto* s = static_cast<AlterSystemStmt*>(stmt);
      MaybeWalkSlot(&s->value, fn);
      break;
    }
    default:
      break;
  }
}

void WalkSelects(const Statement& stmt,
                 const std::function<void(const SelectStmt&)>& fn) {
  switch (stmt.type()) {
    case StatementType::kSelect:
      fn(static_cast<const SelectStmt&>(stmt));
      break;
    case StatementType::kCreateView:
      fn(*static_cast<const CreateViewStmt&>(stmt).select);
      break;
    case StatementType::kCreateTrigger:
      WalkSelects(*static_cast<const CreateTriggerStmt&>(stmt).body, fn);
      break;
    case StatementType::kCreateRule: {
      const auto& s = static_cast<const CreateRuleStmt&>(stmt);
      if (s.action != nullptr) WalkSelects(*s.action, fn);
      break;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      if (s.select != nullptr) fn(*s.select);
      break;
    }
    case StatementType::kCopy: {
      const auto& s = static_cast<const CopyStmt&>(stmt);
      if (s.query != nullptr) fn(*s.query);
      break;
    }
    case StatementType::kWith: {
      const auto& s = static_cast<const WithStmt&>(stmt);
      for (const auto& cte : s.ctes) WalkSelects(*cte.statement, fn);
      WalkSelects(*s.body, fn);
      break;
    }
    case StatementType::kExplain:
      WalkSelects(*static_cast<const ExplainStmt&>(stmt).target, fn);
      break;
    default:
      break;
  }
}

}  // namespace lego::sql
