#ifndef LEGO_SQL_LEXER_H_
#define LEGO_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace lego::sql {

/// Hand-written SQL lexer. Handles identifiers ("quoted" and bare), numeric
/// and string literals ('' escaping), operators, `--` line comments and
/// `/* */` block comments.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Lexes the whole input. On success the final token is kEof. Returns a
  /// SyntaxError for unterminated strings/comments or stray characters.
  StatusOr<std::vector<Token>> Tokenize();

 private:
  Token Next();
  void SkipWhitespaceAndComments();
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  std::string_view input_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace lego::sql

#endif  // LEGO_SQL_LEXER_H_
