#ifndef LEGO_SQL_GRAMMAR_COVERAGE_H_
#define LEGO_SQL_GRAMMAR_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lego::sql {

/// Grammar productions of the SQL parser, one probe per production (plus a
/// probe per variant arm inside multi-arm productions: join types, compound
/// kinds, IS variants, literal kinds, ...). Rule coverage is a *syntactic*
/// feedback signal: two statements can drive identical engine edges (e.g.
/// both error out at name resolution) while exercising different grammar
/// shapes, and this map is what tells them apart.
///
/// The list is an X-macro so the enum and its name table can never drift.
/// Rule identity is positional — append new rules at the end; reordering or
/// deleting entries re-keys every persisted rule map.
#define LEGO_GRAMMAR_RULE_LIST(X)                                         \
  X(Script)                                                               \
  X(CreateOrReplace)                                                      \
  X(CreateTemporary)                                                      \
  X(CreateUnique)                                                         \
  X(CreateTable)                                                          \
  X(CreateIndex)                                                          \
  X(CreateView)                                                           \
  X(CreateTrigger)                                                        \
  X(CreateSequence)                                                       \
  X(CreateSequenceStart)                                                  \
  X(CreateSequenceIncrement)                                              \
  X(CreateRule)                                                           \
  X(CreateRuleInstead)                                                    \
  X(CreateRuleNothing)                                                    \
  X(CreateUser)                                                           \
  X(IfNotExists)                                                          \
  X(TypeInt)                                                              \
  X(TypeReal)                                                             \
  X(TypeText)                                                             \
  X(TypeBool)                                                             \
  X(TypeLength)                                                           \
  X(ColumnDef)                                                            \
  X(ColumnPrimaryKey)                                                     \
  X(ColumnUnique)                                                         \
  X(ColumnNotNull)                                                        \
  X(ColumnDefault)                                                        \
  X(TriggerBefore)                                                        \
  X(TriggerAfter)                                                         \
  X(TriggerForEachRow)                                                    \
  X(TriggerEventInsert)                                                   \
  X(TriggerEventUpdate)                                                   \
  X(TriggerEventDelete)                                                   \
  X(DropTable)                                                            \
  X(DropIndex)                                                            \
  X(DropView)                                                             \
  X(DropTrigger)                                                          \
  X(DropSequence)                                                         \
  X(DropRule)                                                             \
  X(DropUser)                                                             \
  X(DropIfExists)                                                         \
  X(AlterTable)                                                           \
  X(AlterAddColumn)                                                       \
  X(AlterDropColumn)                                                      \
  X(AlterRenameColumn)                                                    \
  X(AlterRenameTable)                                                     \
  X(AlterSystemSet)                                                       \
  X(AlterSystemAction)                                                    \
  X(Truncate)                                                             \
  X(Insert)                                                               \
  X(InsertReplace)                                                        \
  X(InsertOrIgnore)                                                       \
  X(InsertColumnList)                                                     \
  X(InsertValues)                                                         \
  X(InsertSelect)                                                         \
  X(InsertDefaultValues)                                                  \
  X(Update)                                                               \
  X(UpdateWhere)                                                          \
  X(Delete)                                                               \
  X(DeleteWhere)                                                          \
  X(Copy)                                                                 \
  X(CopySubquery)                                                         \
  X(CopyToStdout)                                                         \
  X(CopyFromStdin)                                                        \
  X(CopyCsv)                                                              \
  X(CopyHeader)                                                           \
  X(Values)                                                               \
  X(With)                                                                 \
  X(WithColumnList)                                                       \
  X(Grant)                                                                \
  X(Revoke)                                                               \
  X(PrivilegeSelect)                                                      \
  X(PrivilegeInsert)                                                      \
  X(PrivilegeUpdate)                                                      \
  X(PrivilegeDelete)                                                      \
  X(PrivilegeAll)                                                         \
  X(Begin)                                                                \
  X(Commit)                                                               \
  X(Rollback)                                                             \
  X(RollbackTo)                                                           \
  X(Savepoint)                                                            \
  X(Release)                                                              \
  X(Pragma)                                                               \
  X(PragmaValue)                                                          \
  X(Set)                                                                  \
  X(SetSessionScope)                                                      \
  X(Show)                                                                 \
  X(Explain)                                                              \
  X(ExplainAnalyze)                                                       \
  X(Analyze)                                                              \
  X(Vacuum)                                                               \
  X(Reindex)                                                              \
  X(MaintenanceTarget)                                                    \
  X(Checkpoint)                                                           \
  X(Notify)                                                               \
  X(NotifyPayload)                                                        \
  X(Listen)                                                               \
  X(Unlisten)                                                             \
  X(Comment)                                                              \
  X(DiscardAll)                                                           \
  X(DiscardTemp)                                                          \
  X(Select)                                                               \
  X(SelectCore)                                                           \
  X(SelectDistinct)                                                       \
  X(SelectItemStar)                                                       \
  X(SelectItemTableStar)                                                  \
  X(SelectItemAlias)                                                      \
  X(SelectFrom)                                                           \
  X(SelectWhere)                                                          \
  X(SelectGroupBy)                                                        \
  X(SelectHaving)                                                         \
  X(SelectOrderBy)                                                        \
  X(OrderByDesc)                                                          \
  X(SelectLimit)                                                          \
  X(SelectOffset)                                                         \
  X(CompoundUnion)                                                        \
  X(CompoundUnionAll)                                                     \
  X(CompoundExcept)                                                       \
  X(CompoundIntersect)                                                    \
  X(FromCommaCross)                                                       \
  X(JoinLeft)                                                             \
  X(JoinCross)                                                            \
  X(JoinInner)                                                            \
  X(JoinOn)                                                               \
  X(FromSubquery)                                                         \
  X(FromBaseTable)                                                       \
  X(TableAlias)                                                           \
  X(ExprOr)                                                               \
  X(ExprAnd)                                                              \
  X(ExprNot)                                                              \
  X(CmpEq)                                                                \
  X(CmpNe)                                                                \
  X(CmpLt)                                                                \
  X(CmpLe)                                                                \
  X(CmpGt)                                                                \
  X(CmpGe)                                                                \
  X(IsNull)                                                               \
  X(IsNotNull)                                                            \
  X(IsTruth)                                                              \
  X(InList)                                                               \
  X(InSubquery)                                                           \
  X(Between)                                                              \
  X(Like)                                                                 \
  X(PredicateNegated)                                                     \
  X(ExprAdd)                                                              \
  X(ExprSub)                                                              \
  X(ExprConcat)                                                           \
  X(ExprMul)                                                              \
  X(ExprDiv)                                                              \
  X(ExprMod)                                                              \
  X(ExprNeg)                                                              \
  X(LiteralInt)                                                           \
  X(LiteralReal)                                                          \
  X(LiteralString)                                                        \
  X(LiteralNull)                                                          \
  X(LiteralBool)                                                          \
  X(ParenExpr)                                                            \
  X(ScalarSubquery)                                                       \
  X(SessionVariable)                                                      \
  X(ColumnReference)                                                      \
  X(QualifiedColumnReference)                                             \
  X(Cast)                                                                 \
  X(Case)                                                                 \
  X(CaseOperand)                                                          \
  X(CaseElse)                                                             \
  X(Exists)                                                               \
  X(NotExists)                                                            \
  X(FunctionCall)                                                         \
  X(FunctionStarArg)                                                      \
  X(FunctionDistinct)                                                     \
  X(WindowOver)                                                           \
  X(WindowPartitionBy)                                                    \
  X(WindowOrderBy)

enum class GrammarRule : uint16_t {
#define LEGO_GRAMMAR_RULE_ENUM(name) k##name,
  LEGO_GRAMMAR_RULE_LIST(LEGO_GRAMMAR_RULE_ENUM)
#undef LEGO_GRAMMAR_RULE_ENUM
      kNumRules  // sentinel, not a rule
};

inline constexpr size_t kNumGrammarRules =
    static_cast<size_t>(GrammarRule::kNumRules);

/// Stable human-readable name, e.g. "SelectWhere".
std::string_view GrammarRuleName(GrammarRule rule);

/// Thread-local probe sink the parser's rule probes write into: a caller-
/// provided byte array of kNumGrammarRules entries, one byte per rule,
/// set to 1 on first hit (a binary hit-set — unlike edge coverage there is
/// no hit-count bucketing; firing a production at all is the signal).
/// Detached (the default) every probe is one thread-local load + branch,
/// so un-instrumented parsing costs nearly nothing. Lives in lego_sql, not
/// lego_coverage, so the parser gains no dependency on the coverage/persist
/// layers (which themselves depend on lego_sql).
class GrammarCoverageRuntime {
 public:
  static void SetActiveMap(uint8_t* map) { active_ = map; }
  static uint8_t* active_map() { return active_; }

  static void Hit(GrammarRule rule) {
    if (active_ != nullptr) active_[static_cast<size_t>(rule)] = 1;
  }

 private:
  static thread_local uint8_t* active_;
};

/// RAII scope that routes rule probes into `map` (kNumGrammarRules bytes)
/// for its lifetime.
class GrammarCoverageScope {
 public:
  explicit GrammarCoverageScope(uint8_t* map)
      : saved_(GrammarCoverageRuntime::active_map()) {
    GrammarCoverageRuntime::SetActiveMap(map);
  }
  ~GrammarCoverageScope() { GrammarCoverageRuntime::SetActiveMap(saved_); }

  GrammarCoverageScope(const GrammarCoverageScope&) = delete;
  GrammarCoverageScope& operator=(const GrammarCoverageScope&) = delete;

 private:
  uint8_t* saved_;
};

}  // namespace lego::sql

#endif  // LEGO_SQL_GRAMMAR_COVERAGE_H_
