#include "sql/parser.h"

#include <unordered_set>
#include <utility>

#include "sql/grammar_coverage.h"
#include "sql/lexer.h"
#include "util/string_util.h"

namespace lego::sql {

namespace {

/// Grammar-rule probe: marks one production in the thread-attached rule map
/// (one thread-local load + branch when detached).
#define LEGO_RULE(name) GrammarCoverageRuntime::Hit(GrammarRule::k##name)

/// Keywords that terminate an expression/alias position; a bare identifier in
/// alias position is only an alias if it is not one of these.
const std::unordered_set<std::string>& ReservedKeywords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "FROM",  "WHERE",   "GROUP",  "HAVING", "ORDER",    "LIMIT",
      "OFFSET", "UNION",  "EXCEPT", "INTERSECT", "ON",    "JOIN",
      "LEFT",  "RIGHT",   "CROSS",  "INNER",  "OUTER",    "AS",
      "SET",   "VALUES",  "AND",    "OR",     "NOT",      "IN",
      "IS",    "BETWEEN", "LIKE",   "CASE",   "WHEN",     "THEN",
      "ELSE",  "END",     "TO",     "DESC",   "ASC",      "WITH",
      "SELECT", "INSERT", "UPDATE", "DELETE", "DO",       "FOR",
      "CSV",   "HEADER",  "STDOUT", "STDIN",  "OVER",     "PARTITION",
      "BY",    "EXISTS",  "DISTINCT",
  };
  return *kSet;
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<StmtPtr>> ParseScript() {
    LEGO_RULE(Script);
    std::vector<StmtPtr> stmts;
    while (!AtEof()) {
      if (MatchTok(TokenKind::kSemicolon)) continue;
      LEGO_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      stmts.push_back(std::move(stmt));
      if (!AtEof() && !MatchTok(TokenKind::kSemicolon)) {
        return Err("expected ';' between statements");
      }
    }
    return stmts;
  }

  StatusOr<StmtPtr> ParseSingle() {
    LEGO_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
    MatchTok(TokenKind::kSemicolon);
    if (!AtEof()) return Err("trailing tokens after statement");
    return stmt;
  }

  StatusOr<ExprPtr> ParseSingleExpr() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEof()) return Err("trailing tokens after expression");
    return e;
  }

 private:
  // ----- token helpers -----
  const Token& Cur() const { return tokens_[pos_]; }
  bool AtEof() const { return Cur().kind == TokenKind::kEof; }

  bool PeekTok(TokenKind k, size_t ahead = 0) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)].kind == k;
  }

  bool MatchTok(TokenKind k) {
    if (Cur().kind != k) return false;
    ++pos_;
    return true;
  }

  Status ExpectTok(TokenKind k, const char* what) {
    if (!MatchTok(k)) return Err(std::string("expected ") + what);
    return Status::OK();
  }

  /// Is the current token the identifier `kw` (case-insensitive)?
  bool PeekKw(std::string_view kw, size_t ahead = 0) const {
    const Token& t = tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
    return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }

  bool MatchKw(std::string_view kw) {
    if (!PeekKw(kw)) return false;
    ++pos_;
    return true;
  }

  Status ExpectKw(std::string_view kw) {
    if (!MatchKw(kw)) {
      return Err(std::string("expected keyword ") + std::string(kw));
    }
    return Status::OK();
  }

  StatusOr<std::string> ParseIdentifier(const char* what) {
    if (Cur().kind != TokenKind::kIdentifier) {
      return StatusOr<std::string>(Err(std::string("expected ") + what));
    }
    std::string name = ToLower(Cur().text);
    ++pos_;
    return name;
  }

  Status Err(std::string msg) const {
    msg += " near offset ";
    msg += std::to_string(Cur().offset);
    if (Cur().kind == TokenKind::kIdentifier) {
      msg += " ('" + Cur().text + "')";
    }
    return Status::SyntaxError(std::move(msg));
  }

  // ----- statements -----
  StatusOr<StmtPtr> ParseStatement() {
    if (PeekKw("CREATE")) return ParseCreate();
    if (PeekKw("DROP")) return ParseDrop();
    if (PeekKw("ALTER")) return ParseAlter();
    if (PeekKw("TRUNCATE")) return ParseTruncate();
    if (PeekKw("INSERT") || PeekKw("REPLACE")) return ParseInsert();
    if (PeekKw("UPDATE")) return ParseUpdate();
    if (PeekKw("DELETE")) return ParseDelete();
    if (PeekKw("COPY")) return ParseCopy();
    if (PeekKw("SELECT")) return UpCast(ParseSelect());
    if (PeekKw("VALUES")) return ParseValues();
    if (PeekKw("WITH")) return ParseWith();
    if (PeekKw("GRANT")) return ParseGrant();
    if (PeekKw("REVOKE")) return ParseRevoke();
    if (PeekKw("BEGIN") || PeekKw("START")) return ParseBegin();
    if (PeekKw("COMMIT")) {
      LEGO_RULE(Commit);
      ++pos_;
      MatchKw("TRANSACTION");
      return StmtPtr(std::make_unique<SimpleStmt>(StatementType::kCommit));
    }
    if (PeekKw("ROLLBACK")) return ParseRollback();
    if (PeekKw("SAVEPOINT")) {
      LEGO_RULE(Savepoint);
      return ParseNamed(StatementType::kSavepoint);
    }
    if (PeekKw("RELEASE")) {
      LEGO_RULE(Release);
      ++pos_;
      MatchKw("SAVEPOINT");
      LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("savepoint"));
      return StmtPtr(
          std::make_unique<NamedStmt>(StatementType::kRelease, name));
    }
    if (PeekKw("PRAGMA")) return ParsePragma();
    if (PeekKw("SET")) return ParseSet();
    if (PeekKw("SHOW")) return ParseShow();
    if (PeekKw("EXPLAIN")) return ParseExplain();
    if (PeekKw("ANALYZE")) return ParseMaintenance(StatementType::kAnalyze);
    if (PeekKw("VACUUM")) return ParseMaintenance(StatementType::kVacuum);
    if (PeekKw("REINDEX")) return ParseMaintenance(StatementType::kReindex);
    if (PeekKw("CHECKPOINT")) {
      LEGO_RULE(Checkpoint);
      ++pos_;
      return StmtPtr(std::make_unique<SimpleStmt>(StatementType::kCheckpoint));
    }
    if (PeekKw("NOTIFY")) return ParseNotify();
    if (PeekKw("LISTEN")) {
      LEGO_RULE(Listen);
      return ParseNamed(StatementType::kListen);
    }
    if (PeekKw("UNLISTEN")) {
      LEGO_RULE(Unlisten);
      return ParseNamed(StatementType::kUnlisten);
    }
    if (PeekKw("COMMENT")) return ParseComment();
    if (PeekKw("DISCARD")) return ParseDiscard();
    return StatusOr<StmtPtr>(Err("unknown statement"));
  }

  static StatusOr<StmtPtr> UpCast(StatusOr<std::unique_ptr<SelectStmt>> s) {
    if (!s.ok()) return s.status();
    return StmtPtr(std::move(*s));
  }

  StatusOr<StmtPtr> ParseCreate() {
    ++pos_;  // CREATE
    bool or_replace = false;
    if (MatchKw("OR")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("REPLACE"));
      LEGO_RULE(CreateOrReplace);
      or_replace = true;
    }
    bool temporary = MatchKw("TEMPORARY") || MatchKw("TEMP");
    if (temporary) LEGO_RULE(CreateTemporary);
    bool unique = MatchKw("UNIQUE");
    if (unique) LEGO_RULE(CreateUnique);
    if (MatchKw("TABLE")) return ParseCreateTable(temporary);
    if (MatchKw("INDEX")) return ParseCreateIndex(unique);
    if (MatchKw("VIEW")) return ParseCreateView(or_replace);
    if (MatchKw("TRIGGER")) return ParseCreateTrigger();
    if (MatchKw("SEQUENCE")) return ParseCreateSequence();
    if (MatchKw("RULE")) return ParseCreateRule(or_replace);
    if (MatchKw("USER")) return ParseCreateUser();
    return StatusOr<StmtPtr>(Err("unknown CREATE object"));
  }

  StatusOr<bool> ParseIfNotExists() {
    if (MatchKw("IF")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("NOT"));
      LEGO_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      LEGO_RULE(IfNotExists);
      return true;
    }
    return false;
  }

  StatusOr<SqlType> ParseColumnType() {
    LEGO_ASSIGN_OR_RETURN(std::string t, ParseIdentifier("type name"));
    std::string up = ToUpper(t);
    SqlType type;
    if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT" ||
        up == "YEAR") {
      LEGO_RULE(TypeInt);
      type = SqlType::kInt;
    } else if (up == "REAL" || up == "FLOAT" || up == "DOUBLE" ||
               up == "NUMERIC" || up == "DECIMAL") {
      LEGO_RULE(TypeReal);
      type = SqlType::kReal;
    } else if (up == "TEXT" || up == "VARCHAR" || up == "CHAR" ||
               up == "STRING" || up == "CLOB") {
      LEGO_RULE(TypeText);
      type = SqlType::kText;
    } else if (up == "BOOL" || up == "BOOLEAN") {
      LEGO_RULE(TypeBool);
      type = SqlType::kBool;
    } else {
      return StatusOr<SqlType>(Err("unknown column type '" + t + "'"));
    }
    // Optional length/precision: VARCHAR(100), DECIMAL(10, 2).
    if (MatchTok(TokenKind::kLParen)) {
      LEGO_RULE(TypeLength);
      while (!AtEof() && !PeekTok(TokenKind::kRParen)) ++pos_;
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    }
    return type;
  }

  StatusOr<ColumnDef> ParseColumnDef() {
    LEGO_RULE(ColumnDef);
    ColumnDef col;
    LEGO_ASSIGN_OR_RETURN(col.name, ParseIdentifier("column name"));
    LEGO_ASSIGN_OR_RETURN(col.type, ParseColumnType());
    while (true) {
      if (MatchKw("PRIMARY")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("KEY"));
        LEGO_RULE(ColumnPrimaryKey);
        col.primary_key = true;
      } else if (MatchKw("UNIQUE")) {
        LEGO_RULE(ColumnUnique);
        col.unique = true;
      } else if (MatchKw("NOT")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("NULL"));
        LEGO_RULE(ColumnNotNull);
        col.not_null = true;
      } else if (MatchKw("NULL")) {
        // explicit NULL is a no-op
      } else if (MatchKw("DEFAULT")) {
        LEGO_RULE(ColumnDefault);
        LEGO_ASSIGN_OR_RETURN(col.default_value, ParsePrimary());
      } else if (MatchKw("ZEROFILL") || MatchKw("UNSIGNED") ||
                 MatchKw("AUTO_INCREMENT")) {
        // MySQL-flavored attributes accepted and ignored.
      } else {
        break;
      }
    }
    return col;
  }

  StatusOr<StmtPtr> ParseCreateTable(bool temporary) {
    LEGO_RULE(CreateTable);
    auto stmt = std::make_unique<CreateTableStmt>();
    stmt->temporary = temporary;
    LEGO_ASSIGN_OR_RETURN(stmt->if_not_exists, ParseIfNotExists());
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
    do {
      LEGO_ASSIGN_OR_RETURN(ColumnDef col, ParseColumnDef());
      stmt->columns.push_back(std::move(col));
    } while (MatchTok(TokenKind::kComma));
    LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseCreateIndex(bool unique) {
    LEGO_RULE(CreateIndex);
    auto stmt = std::make_unique<CreateIndexStmt>();
    stmt->unique = unique;
    LEGO_ASSIGN_OR_RETURN(stmt->if_not_exists, ParseIfNotExists());
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("index name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
    do {
      LEGO_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column"));
      stmt->columns.push_back(std::move(col));
    } while (MatchTok(TokenKind::kComma));
    LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseCreateView(bool or_replace) {
    LEGO_RULE(CreateView);
    auto stmt = std::make_unique<CreateViewStmt>();
    stmt->or_replace = or_replace;
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("view name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("AS"));
    LEGO_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseCreateTrigger() {
    LEGO_RULE(CreateTrigger);
    auto stmt = std::make_unique<CreateTriggerStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("trigger name"));
    if (MatchKw("BEFORE")) {
      LEGO_RULE(TriggerBefore);
      stmt->timing = TriggerTiming::kBefore;
    } else if (MatchKw("AFTER")) {
      LEGO_RULE(TriggerAfter);
      stmt->timing = TriggerTiming::kAfter;
    } else {
      return StatusOr<StmtPtr>(Err("expected BEFORE or AFTER"));
    }
    LEGO_ASSIGN_OR_RETURN(stmt->event, ParseTriggerEvent());
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKw("FOR")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("EACH"));
      LEGO_RETURN_IF_ERROR(ExpectKw("ROW"));
      LEGO_RULE(TriggerForEachRow);
      stmt->for_each_row = true;
    } else {
      stmt->for_each_row = false;
    }
    LEGO_ASSIGN_OR_RETURN(stmt->body, ParseStatement());
    return StmtPtr(std::move(stmt));
  }

  StatusOr<TriggerEvent> ParseTriggerEvent() {
    if (MatchKw("INSERT")) {
      LEGO_RULE(TriggerEventInsert);
      return TriggerEvent::kInsert;
    }
    if (MatchKw("UPDATE")) {
      LEGO_RULE(TriggerEventUpdate);
      return TriggerEvent::kUpdate;
    }
    if (MatchKw("DELETE")) {
      LEGO_RULE(TriggerEventDelete);
      return TriggerEvent::kDelete;
    }
    return StatusOr<TriggerEvent>(Err("expected INSERT, UPDATE, or DELETE"));
  }

  StatusOr<StmtPtr> ParseCreateSequence() {
    LEGO_RULE(CreateSequence);
    auto stmt = std::make_unique<CreateSequenceStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->if_not_exists, ParseIfNotExists());
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("sequence name"));
    while (true) {
      if (MatchKw("START")) {
        LEGO_RULE(CreateSequenceStart);
        MatchKw("WITH");
        LEGO_ASSIGN_OR_RETURN(stmt->start, ParseSignedInteger());
      } else if (MatchKw("INCREMENT")) {
        LEGO_RULE(CreateSequenceIncrement);
        MatchKw("BY");
        LEGO_ASSIGN_OR_RETURN(stmt->increment, ParseSignedInteger());
      } else {
        break;
      }
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<int64_t> ParseSignedInteger() {
    bool neg = MatchTok(TokenKind::kMinus);
    if (Cur().kind != TokenKind::kIntegerLiteral) {
      return StatusOr<int64_t>(Err("expected integer"));
    }
    int64_t v = std::strtoll(Cur().text.c_str(), nullptr, 10);
    ++pos_;
    return neg ? -v : v;
  }

  StatusOr<StmtPtr> ParseCreateRule(bool or_replace) {
    LEGO_RULE(CreateRule);
    auto stmt = std::make_unique<CreateRuleStmt>();
    stmt->or_replace = or_replace;
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("rule name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("AS"));
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    LEGO_ASSIGN_OR_RETURN(stmt->event, ParseTriggerEvent());
    LEGO_RETURN_IF_ERROR(ExpectKw("TO"));
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("DO"));
    stmt->instead = MatchKw("INSTEAD");
    if (stmt->instead) LEGO_RULE(CreateRuleInstead);
    if (MatchKw("NOTHING")) {
      LEGO_RULE(CreateRuleNothing);
      stmt->action = nullptr;
    } else {
      LEGO_ASSIGN_OR_RETURN(stmt->action, ParseStatement());
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseCreateUser() {
    LEGO_RULE(CreateUser);
    auto stmt = std::make_unique<CreateUserStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->if_not_exists, ParseIfNotExists());
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("user name"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseDrop() {
    ++pos_;  // DROP
    StatementType type;
    if (MatchKw("TABLE")) {
      LEGO_RULE(DropTable);
      type = StatementType::kDropTable;
    } else if (MatchKw("INDEX")) {
      LEGO_RULE(DropIndex);
      type = StatementType::kDropIndex;
    } else if (MatchKw("VIEW")) {
      LEGO_RULE(DropView);
      type = StatementType::kDropView;
    } else if (MatchKw("TRIGGER")) {
      LEGO_RULE(DropTrigger);
      type = StatementType::kDropTrigger;
    } else if (MatchKw("SEQUENCE")) {
      LEGO_RULE(DropSequence);
      type = StatementType::kDropSequence;
    } else if (MatchKw("RULE")) {
      LEGO_RULE(DropRule);
      type = StatementType::kDropRule;
    } else if (MatchKw("USER")) {
      LEGO_RULE(DropUser);
      auto stmt = std::make_unique<DropUserStmt>();
      if (MatchKw("IF")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("EXISTS"));
        LEGO_RULE(DropIfExists);
        stmt->if_exists = true;
      }
      LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("user name"));
      return StmtPtr(std::move(stmt));
    } else {
      return StatusOr<StmtPtr>(Err("unknown DROP object"));
    }
    bool if_exists = false;
    if (MatchKw("IF")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      LEGO_RULE(DropIfExists);
      if_exists = true;
    }
    LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("object name"));
    return StmtPtr(std::make_unique<DropStmt>(type, name, if_exists));
  }

  StatusOr<StmtPtr> ParseAlter() {
    ++pos_;  // ALTER
    if (MatchKw("SYSTEM")) return ParseAlterSystem();
    LEGO_RETURN_IF_ERROR(ExpectKw("TABLE"));
    LEGO_RULE(AlterTable);
    auto stmt = std::make_unique<AlterTableStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKw("ADD")) {
      MatchKw("COLUMN");
      LEGO_RULE(AlterAddColumn);
      stmt->action = AlterAction::kAddColumn;
      LEGO_ASSIGN_OR_RETURN(stmt->new_column, ParseColumnDef());
    } else if (MatchKw("DROP")) {
      MatchKw("COLUMN");
      LEGO_RULE(AlterDropColumn);
      stmt->action = AlterAction::kDropColumn;
      LEGO_ASSIGN_OR_RETURN(stmt->old_name, ParseIdentifier("column name"));
    } else if (MatchKw("RENAME")) {
      if (MatchKw("COLUMN")) {
        LEGO_RULE(AlterRenameColumn);
        stmt->action = AlterAction::kRenameColumn;
        LEGO_ASSIGN_OR_RETURN(stmt->old_name, ParseIdentifier("column name"));
        LEGO_RETURN_IF_ERROR(ExpectKw("TO"));
        LEGO_ASSIGN_OR_RETURN(stmt->new_name, ParseIdentifier("new name"));
      } else {
        LEGO_RETURN_IF_ERROR(ExpectKw("TO"));
        LEGO_RULE(AlterRenameTable);
        stmt->action = AlterAction::kRenameTable;
        LEGO_ASSIGN_OR_RETURN(stmt->new_name, ParseIdentifier("new name"));
      }
    } else {
      return StatusOr<StmtPtr>(Err("unknown ALTER TABLE action"));
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseAlterSystem() {
    auto stmt = std::make_unique<AlterSystemStmt>();
    if (MatchKw("SET")) {
      LEGO_RULE(AlterSystemSet);
      stmt->action = "SET";
      LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("setting name"));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kEq, "'='"));
      LEGO_ASSIGN_OR_RETURN(stmt->value, ParsePrimary());
    } else {
      // Free-form action words: FLUSH, MAJOR FREEZE, ...
      LEGO_RULE(AlterSystemAction);
      std::vector<std::string> words;
      while (Cur().kind == TokenKind::kIdentifier) {
        words.push_back(ToUpper(Cur().text));
        ++pos_;
      }
      if (words.empty()) return StatusOr<StmtPtr>(Err("expected action"));
      stmt->action = Join(words, " ");
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseTruncate() {
    LEGO_RULE(Truncate);
    ++pos_;  // TRUNCATE
    MatchKw("TABLE");
    auto stmt = std::make_unique<TruncateStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseInsert() {
    LEGO_RULE(Insert);
    auto stmt = std::make_unique<InsertStmt>();
    if (MatchKw("REPLACE")) {
      LEGO_RULE(InsertReplace);
      stmt->replace = true;
    } else {
      LEGO_RETURN_IF_ERROR(ExpectKw("INSERT"));
      MatchKw("LOW_PRIORITY");
      if (MatchKw("IGNORE")) {
        LEGO_RULE(InsertOrIgnore);
        stmt->or_ignore = true;
      }
      if (MatchKw("OR")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("IGNORE"));
        LEGO_RULE(InsertOrIgnore);
        stmt->or_ignore = true;
      }
    }
    LEGO_RETURN_IF_ERROR(ExpectKw("INTO"));
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (PeekTok(TokenKind::kLParen)) {
      LEGO_RULE(InsertColumnList);
      ++pos_;
      do {
        LEGO_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column"));
        stmt->columns.push_back(std::move(col));
      } while (MatchTok(TokenKind::kComma));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    }
    if (MatchKw("VALUES")) {
      LEGO_RULE(InsertValues);
      do {
        LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
        std::vector<ExprPtr> row;
        do {
          LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (MatchTok(TokenKind::kComma));
        LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
        stmt->rows.push_back(std::move(row));
      } while (MatchTok(TokenKind::kComma));
    } else if (PeekKw("SELECT")) {
      LEGO_RULE(InsertSelect);
      LEGO_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    } else if (MatchKw("DEFAULT")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("VALUES"));
      LEGO_RULE(InsertDefaultValues);
      // INSERT INTO t DEFAULT VALUES: represented as one empty row.
      stmt->rows.emplace_back();
    } else {
      return StatusOr<StmtPtr>(Err("expected VALUES or SELECT"));
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseUpdate() {
    LEGO_RULE(Update);
    ++pos_;  // UPDATE
    auto stmt = std::make_unique<UpdateStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("SET"));
    do {
      LEGO_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column"));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kEq, "'='"));
      LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
    } while (MatchTok(TokenKind::kComma));
    if (MatchKw("WHERE")) {
      LEGO_RULE(UpdateWhere);
      LEGO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseDelete() {
    LEGO_RULE(Delete);
    ++pos_;  // DELETE
    LEGO_RETURN_IF_ERROR(ExpectKw("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKw("WHERE")) {
      LEGO_RULE(DeleteWhere);
      LEGO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseCopy() {
    LEGO_RULE(Copy);
    ++pos_;  // COPY
    auto stmt = std::make_unique<CopyStmt>();
    if (MatchTok(TokenKind::kLParen)) {
      LEGO_RULE(CopySubquery);
      LEGO_ASSIGN_OR_RETURN(stmt->query, ParseSelect());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    } else {
      LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    }
    if (MatchKw("TO")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("STDOUT"));
      LEGO_RULE(CopyToStdout);
      stmt->to_stdout = true;
    } else if (MatchKw("FROM")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("STDIN"));
      LEGO_RULE(CopyFromStdin);
      stmt->to_stdout = false;
    } else {
      return StatusOr<StmtPtr>(Err("expected TO STDOUT or FROM STDIN"));
    }
    if (MatchKw("CSV")) {
      LEGO_RULE(CopyCsv);
      stmt->csv = true;
    }
    if (MatchKw("HEADER")) {
      LEGO_RULE(CopyHeader);
      stmt->header = true;
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseValues() {
    LEGO_RULE(Values);
    ++pos_;  // VALUES
    auto stmt = std::make_unique<ValuesStmt>();
    do {
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      std::vector<ExprPtr> row;
      do {
        LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchTok(TokenKind::kComma));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      stmt->rows.push_back(std::move(row));
    } while (MatchTok(TokenKind::kComma));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseWith() {
    LEGO_RULE(With);
    ++pos_;  // WITH
    auto stmt = std::make_unique<WithStmt>();
    do {
      CommonTableExpr cte;
      LEGO_ASSIGN_OR_RETURN(cte.name, ParseIdentifier("CTE name"));
      if (MatchTok(TokenKind::kLParen)) {
        LEGO_RULE(WithColumnList);
        do {
          LEGO_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column"));
          cte.columns.push_back(std::move(col));
        } while (MatchTok(TokenKind::kComma));
        LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      }
      LEGO_RETURN_IF_ERROR(ExpectKw("AS"));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      LEGO_ASSIGN_OR_RETURN(cte.statement, ParseStatement());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      stmt->ctes.push_back(std::move(cte));
    } while (MatchTok(TokenKind::kComma));
    if (!(PeekKw("SELECT") || PeekKw("INSERT") || PeekKw("UPDATE") ||
          PeekKw("DELETE") || PeekKw("VALUES") || PeekKw("REPLACE"))) {
      return StatusOr<StmtPtr>(Err("expected WITH body statement"));
    }
    LEGO_ASSIGN_OR_RETURN(stmt->body, ParseStatement());
    return StmtPtr(std::move(stmt));
  }

  StatusOr<Privilege> ParsePrivilege() {
    if (MatchKw("SELECT")) {
      LEGO_RULE(PrivilegeSelect);
      return Privilege::kSelect;
    }
    if (MatchKw("INSERT")) {
      LEGO_RULE(PrivilegeInsert);
      return Privilege::kInsert;
    }
    if (MatchKw("UPDATE")) {
      LEGO_RULE(PrivilegeUpdate);
      return Privilege::kUpdate;
    }
    if (MatchKw("DELETE")) {
      LEGO_RULE(PrivilegeDelete);
      return Privilege::kDelete;
    }
    if (MatchKw("ALL")) {
      MatchKw("PRIVILEGES");
      LEGO_RULE(PrivilegeAll);
      return Privilege::kAll;
    }
    return StatusOr<Privilege>(Err("expected privilege"));
  }

  StatusOr<StmtPtr> ParseGrant() {
    LEGO_RULE(Grant);
    ++pos_;  // GRANT
    auto stmt = std::make_unique<GrantStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->privilege, ParsePrivilege());
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    MatchKw("TABLE");
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("TO"));
    LEGO_ASSIGN_OR_RETURN(stmt->user, ParseIdentifier("user name"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseRevoke() {
    LEGO_RULE(Revoke);
    ++pos_;  // REVOKE
    auto stmt = std::make_unique<RevokeStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->privilege, ParsePrivilege());
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    MatchKw("TABLE");
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("FROM"));
    LEGO_ASSIGN_OR_RETURN(stmt->user, ParseIdentifier("user name"));
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseBegin() {
    LEGO_RULE(Begin);
    if (MatchKw("START")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("TRANSACTION"));
    } else {
      ++pos_;  // BEGIN
      MatchKw("TRANSACTION");
    }
    return StmtPtr(std::make_unique<SimpleStmt>(StatementType::kBegin));
  }

  StatusOr<StmtPtr> ParseRollback() {
    LEGO_RULE(Rollback);
    ++pos_;  // ROLLBACK
    MatchKw("TRANSACTION");
    if (MatchKw("TO")) {
      LEGO_RULE(RollbackTo);
      MatchKw("SAVEPOINT");
      LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("savepoint"));
      return StmtPtr(
          std::make_unique<NamedStmt>(StatementType::kRollbackTo, name));
    }
    return StmtPtr(std::make_unique<SimpleStmt>(StatementType::kRollback));
  }

  StatusOr<StmtPtr> ParseNamed(StatementType type) {
    ++pos_;  // keyword
    LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("name"));
    return StmtPtr(std::make_unique<NamedStmt>(type, name));
  }

  StatusOr<StmtPtr> ParsePragma() {
    LEGO_RULE(Pragma);
    ++pos_;  // PRAGMA
    auto stmt = std::make_unique<PragmaStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("pragma name"));
    if (MatchTok(TokenKind::kEq)) {
      LEGO_RULE(PragmaValue);
      LEGO_ASSIGN_OR_RETURN(stmt->value, ParsePrimary());
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseSet() {
    LEGO_RULE(Set);
    ++pos_;  // SET
    auto stmt = std::make_unique<PragmaStmt>();
    stmt->is_set = true;
    if (MatchTok(TokenKind::kAtAt)) {
      LEGO_RULE(SetSessionScope);
      stmt->session_scope = true;
      if (PeekKw("SESSION") && PeekTok(TokenKind::kDot, 1)) {
        pos_ += 2;  // SESSION .
      }
    }
    LEGO_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("variable name"));
    LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kEq, "'='"));
    LEGO_ASSIGN_OR_RETURN(stmt->value, ParsePrimary());
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseShow() {
    LEGO_RULE(Show);
    ++pos_;  // SHOW
    auto stmt = std::make_unique<ShowStmt>();
    LEGO_ASSIGN_OR_RETURN(std::string what, ParseIdentifier("show target"));
    stmt->what = ToUpper(what);
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseExplain() {
    LEGO_RULE(Explain);
    ++pos_;  // EXPLAIN
    auto stmt = std::make_unique<ExplainStmt>();
    if (MatchKw("ANALYZE")) {
      LEGO_RULE(ExplainAnalyze);
      stmt->analyze = true;
    }
    LEGO_ASSIGN_OR_RETURN(stmt->target, ParseStatement());
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseMaintenance(StatementType type) {
    switch (type) {
      case StatementType::kAnalyze:
        LEGO_RULE(Analyze);
        break;
      case StatementType::kVacuum:
        LEGO_RULE(Vacuum);
        break;
      default:
        LEGO_RULE(Reindex);
        break;
    }
    ++pos_;  // keyword
    std::string target;
    if (Cur().kind == TokenKind::kIdentifier &&
        !ReservedKeywords().count(ToUpper(Cur().text))) {
      LEGO_RULE(MaintenanceTarget);
      target = ToLower(Cur().text);
      ++pos_;
    }
    return StmtPtr(std::make_unique<MaintenanceStmt>(type, target));
  }

  StatusOr<StmtPtr> ParseNotify() {
    LEGO_RULE(Notify);
    ++pos_;  // NOTIFY
    auto stmt = std::make_unique<NotifyStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->channel, ParseIdentifier("channel"));
    if (MatchTok(TokenKind::kComma)) {
      if (Cur().kind != TokenKind::kStringLiteral) {
        return StatusOr<StmtPtr>(Err("expected payload string"));
      }
      LEGO_RULE(NotifyPayload);
      stmt->payload = Cur().text;
      ++pos_;
    }
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseComment() {
    LEGO_RULE(Comment);
    ++pos_;  // COMMENT
    LEGO_RETURN_IF_ERROR(ExpectKw("ON"));
    LEGO_RETURN_IF_ERROR(ExpectKw("TABLE"));
    auto stmt = std::make_unique<CommentStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    LEGO_RETURN_IF_ERROR(ExpectKw("IS"));
    if (Cur().kind != TokenKind::kStringLiteral) {
      return StatusOr<StmtPtr>(Err("expected comment string"));
    }
    stmt->text = Cur().text;
    ++pos_;
    return StmtPtr(std::move(stmt));
  }

  StatusOr<StmtPtr> ParseDiscard() {
    ++pos_;  // DISCARD
    auto stmt = std::make_unique<DiscardStmt>();
    if (MatchKw("ALL")) {
      LEGO_RULE(DiscardAll);
      stmt->all = true;
    } else if (MatchKw("TEMP") || MatchKw("TEMPORARY")) {
      LEGO_RULE(DiscardTemp);
      stmt->all = false;
    } else {
      return StatusOr<StmtPtr>(Err("expected ALL or TEMP"));
    }
    return StmtPtr(std::move(stmt));
  }

  // ----- SELECT -----
  StatusOr<std::unique_ptr<SelectStmt>> ParseSelect() {
    LEGO_RULE(Select);
    auto stmt = std::make_unique<SelectStmt>();
    LEGO_ASSIGN_OR_RETURN(stmt->core, ParseSelectCore());
    while (true) {
      SetOpKind kind;
      if (MatchKw("UNION")) {
        if (MatchKw("ALL")) {
          LEGO_RULE(CompoundUnionAll);
          kind = SetOpKind::kUnionAll;
        } else {
          LEGO_RULE(CompoundUnion);
          kind = SetOpKind::kUnion;
        }
      } else if (MatchKw("EXCEPT")) {
        LEGO_RULE(CompoundExcept);
        kind = SetOpKind::kExcept;
      } else if (MatchKw("INTERSECT")) {
        LEGO_RULE(CompoundIntersect);
        kind = SetOpKind::kIntersect;
      } else {
        break;
      }
      LEGO_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
      stmt->compounds.emplace_back(kind, std::move(core));
    }
    if (MatchKw("ORDER")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("BY"));
      LEGO_RULE(SelectOrderBy);
      do {
        OrderByItem item;
        LEGO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKw("DESC")) {
          LEGO_RULE(OrderByDesc);
          item.desc = true;
        } else {
          MatchKw("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchTok(TokenKind::kComma));
    }
    if (MatchKw("LIMIT")) {
      LEGO_RULE(SelectLimit);
      LEGO_ASSIGN_OR_RETURN(stmt->limit, ParseExpr());
    }
    if (MatchKw("OFFSET")) {
      LEGO_RULE(SelectOffset);
      LEGO_ASSIGN_OR_RETURN(stmt->offset, ParseExpr());
    }
    return stmt;
  }

  StatusOr<SelectCore> ParseSelectCore() {
    LEGO_RETURN_IF_ERROR(ExpectKw("SELECT"));
    LEGO_RULE(SelectCore);
    SelectCore core;
    if (MatchKw("DISTINCT")) {
      LEGO_RULE(SelectDistinct);
      core.distinct = true;
    } else {
      MatchKw("ALL");
    }
    do {
      SelectItem item;
      LEGO_ASSIGN_OR_RETURN(item.expr, ParseSelectItemExpr());
      if (MatchKw("AS")) {
        LEGO_RULE(SelectItemAlias);
        LEGO_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
      } else if (Cur().kind == TokenKind::kIdentifier &&
                 !ReservedKeywords().count(ToUpper(Cur().text))) {
        LEGO_RULE(SelectItemAlias);
        item.alias = ToLower(Cur().text);
        ++pos_;
      }
      core.items.push_back(std::move(item));
    } while (MatchTok(TokenKind::kComma));
    if (MatchKw("FROM")) {
      LEGO_RULE(SelectFrom);
      LEGO_ASSIGN_OR_RETURN(core.from, ParseTableRefList());
    }
    if (MatchKw("WHERE")) {
      LEGO_RULE(SelectWhere);
      LEGO_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    if (MatchKw("GROUP")) {
      LEGO_RETURN_IF_ERROR(ExpectKw("BY"));
      LEGO_RULE(SelectGroupBy);
      do {
        LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        core.group_by.push_back(std::move(e));
      } while (MatchTok(TokenKind::kComma));
    }
    if (MatchKw("HAVING")) {
      LEGO_RULE(SelectHaving);
      LEGO_ASSIGN_OR_RETURN(core.having, ParseExpr());
    }
    return core;
  }

  StatusOr<ExprPtr> ParseSelectItemExpr() {
    if (PeekTok(TokenKind::kStar)) {
      LEGO_RULE(SelectItemStar);
      ++pos_;
      return ExprPtr(std::make_unique<Star>());
    }
    if (Cur().kind == TokenKind::kIdentifier && PeekTok(TokenKind::kDot, 1) &&
        PeekTok(TokenKind::kStar, 2)) {
      LEGO_RULE(SelectItemTableStar);
      std::string table = ToLower(Cur().text);
      pos_ += 3;
      return ExprPtr(std::make_unique<Star>(table));
    }
    return ParseExpr();
  }

  StatusOr<TableRefPtr> ParseTableRefList() {
    LEGO_ASSIGN_OR_RETURN(TableRefPtr left, ParseJoinChain());
    while (MatchTok(TokenKind::kComma)) {
      LEGO_RULE(FromCommaCross);
      LEGO_ASSIGN_OR_RETURN(TableRefPtr right, ParseJoinChain());
      left = std::make_unique<JoinRef>(JoinType::kCross, std::move(left),
                                       std::move(right), nullptr);
    }
    return left;
  }

  StatusOr<TableRefPtr> ParseJoinChain() {
    LEGO_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
    while (true) {
      JoinType type;
      if (MatchKw("LEFT")) {
        MatchKw("OUTER");
        LEGO_RETURN_IF_ERROR(ExpectKw("JOIN"));
        LEGO_RULE(JoinLeft);
        type = JoinType::kLeft;
      } else if (MatchKw("CROSS")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("JOIN"));
        LEGO_RULE(JoinCross);
        type = JoinType::kCross;
      } else if (MatchKw("INNER")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("JOIN"));
        LEGO_RULE(JoinInner);
        type = JoinType::kInner;
      } else if (MatchKw("JOIN")) {
        LEGO_RULE(JoinInner);
        type = JoinType::kInner;
      } else {
        break;
      }
      LEGO_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      ExprPtr on;
      if (MatchKw("ON")) {
        LEGO_RULE(JoinOn);
        LEGO_ASSIGN_OR_RETURN(on, ParseExpr());
      } else if (type != JoinType::kCross) {
        return StatusOr<TableRefPtr>(Err("expected ON clause"));
      }
      left = std::make_unique<JoinRef>(type, std::move(left), std::move(right),
                                       std::move(on));
    }
    return left;
  }

  StatusOr<TableRefPtr> ParseTablePrimary() {
    if (MatchTok(TokenKind::kLParen)) {
      LEGO_RULE(FromSubquery);
      LEGO_ASSIGN_OR_RETURN(auto select, ParseSelect());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      std::string alias;
      if (MatchKw("AS")) {
        LEGO_RULE(TableAlias);
        LEGO_ASSIGN_OR_RETURN(alias, ParseIdentifier("alias"));
      } else if (Cur().kind == TokenKind::kIdentifier &&
                 !ReservedKeywords().count(ToUpper(Cur().text))) {
        LEGO_RULE(TableAlias);
        alias = ToLower(Cur().text);
        ++pos_;
      } else {
        return StatusOr<TableRefPtr>(Err("subquery in FROM requires alias"));
      }
      return TableRefPtr(std::make_unique<SubqueryRef>(std::move(select),
                                                       std::move(alias)));
    }
    LEGO_RULE(FromBaseTable);
    LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("table name"));
    std::string alias;
    if (MatchKw("AS")) {
      LEGO_RULE(TableAlias);
      LEGO_ASSIGN_OR_RETURN(alias, ParseIdentifier("alias"));
    } else if (Cur().kind == TokenKind::kIdentifier &&
               !ReservedKeywords().count(ToUpper(Cur().text))) {
      LEGO_RULE(TableAlias);
      alias = ToLower(Cur().text);
      ++pos_;
    }
    return TableRefPtr(std::make_unique<BaseTableRef>(name, alias));
  }

  // ----- expressions -----
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKw("OR")) {
      LEGO_RULE(ExprOr);
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKw("AND")) {
      ++pos_;
      LEGO_RULE(ExprAnd);
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (MatchKw("NOT")) {
      LEGO_RULE(ExprNot);
      LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(e)));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (MatchTok(TokenKind::kEq)) {
        LEGO_RULE(CmpEq);
        op = BinaryOp::kEq;
      } else if (MatchTok(TokenKind::kNotEq)) {
        LEGO_RULE(CmpNe);
        op = BinaryOp::kNe;
      } else if (MatchTok(TokenKind::kLtEq)) {
        LEGO_RULE(CmpLe);
        op = BinaryOp::kLe;
      } else if (MatchTok(TokenKind::kLt)) {
        LEGO_RULE(CmpLt);
        op = BinaryOp::kLt;
      } else if (MatchTok(TokenKind::kGtEq)) {
        LEGO_RULE(CmpGe);
        op = BinaryOp::kGe;
      } else if (MatchTok(TokenKind::kGt)) {
        LEGO_RULE(CmpGt);
        op = BinaryOp::kGt;
      } else if (PeekKw("IS")) {
        ++pos_;
        bool negated = MatchKw("NOT");
        if (MatchKw("NULL")) {
          if (negated) {
            LEGO_RULE(IsNotNull);
          } else {
            LEGO_RULE(IsNull);
          }
          lhs = std::make_unique<IsNullExpr>(std::move(lhs), negated);
          continue;
        }
        // IS [NOT] TRUE / FALSE — desugared to (NOT) lhs = TRUE/FALSE.
        LEGO_RULE(IsTruth);
        bool truth;
        if (MatchKw("TRUE")) {
          truth = true;
        } else if (MatchKw("FALSE")) {
          truth = false;
        } else {
          return StatusOr<ExprPtr>(Err("expected NULL, TRUE, or FALSE"));
        }
        lhs = std::make_unique<BinaryExpr>(BinaryOp::kEq, std::move(lhs),
                                           Literal::Bool(truth));
        if (negated) {
          lhs = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(lhs));
        }
        continue;
      } else if (PeekKw("NOT") &&
                 (PeekKw("IN", 1) || PeekKw("BETWEEN", 1) || PeekKw("LIKE", 1))) {
        ++pos_;
        LEGO_RULE(PredicateNegated);
        LEGO_ASSIGN_OR_RETURN(lhs, ParsePostfixPredicate(std::move(lhs), true));
        continue;
      } else if (PeekKw("IN") || PeekKw("BETWEEN") || PeekKw("LIKE")) {
        LEGO_ASSIGN_OR_RETURN(lhs, ParsePostfixPredicate(std::move(lhs), false));
        continue;
      } else {
        break;
      }
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParsePostfixPredicate(ExprPtr lhs, bool negated) {
    if (MatchKw("IN")) {
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      if (PeekKw("SELECT")) {
        LEGO_RULE(InSubquery);
        LEGO_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
        return ExprPtr(std::make_unique<InSubqueryExpr>(
            std::move(lhs), std::move(sub), negated));
      }
      LEGO_RULE(InList);
      std::vector<ExprPtr> list;
      do {
        LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        list.push_back(std::move(e));
      } while (MatchTok(TokenKind::kComma));
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      return ExprPtr(std::make_unique<InListExpr>(std::move(lhs),
                                                  std::move(list), negated));
    }
    if (MatchKw("BETWEEN")) {
      LEGO_RULE(Between);
      LEGO_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      LEGO_RETURN_IF_ERROR(ExpectKw("AND"));
      LEGO_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return ExprPtr(std::make_unique<BetweenExpr>(
          std::move(lhs), std::move(lo), std::move(hi), negated));
    }
    if (MatchKw("LIKE")) {
      LEGO_RULE(Like);
      LEGO_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      return ExprPtr(std::make_unique<LikeExpr>(std::move(lhs),
                                                std::move(pattern), negated));
    }
    return StatusOr<ExprPtr>(Err("expected IN, BETWEEN, or LIKE"));
  }

  StatusOr<ExprPtr> ParseAdditive() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (MatchTok(TokenKind::kPlus)) {
        LEGO_RULE(ExprAdd);
        op = BinaryOp::kAdd;
      } else if (MatchTok(TokenKind::kMinus)) {
        LEGO_RULE(ExprSub);
        op = BinaryOp::kSub;
      } else if (MatchTok(TokenKind::kConcat)) {
        LEGO_RULE(ExprConcat);
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (MatchTok(TokenKind::kStar)) {
        LEGO_RULE(ExprMul);
        op = BinaryOp::kMul;
      } else if (MatchTok(TokenKind::kSlash)) {
        LEGO_RULE(ExprDiv);
        op = BinaryOp::kDiv;
      } else if (MatchTok(TokenKind::kPercent)) {
        LEGO_RULE(ExprMod);
        op = BinaryOp::kMod;
      } else {
        break;
      }
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (MatchTok(TokenKind::kMinus)) {
      LEGO_RULE(ExprNeg);
      LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(e)));
    }
    MatchTok(TokenKind::kPlus);  // unary + is a no-op
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kIntegerLiteral: {
        LEGO_RULE(LiteralInt);
        int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        ++pos_;
        return Literal::Int(v);
      }
      case TokenKind::kFloatLiteral: {
        LEGO_RULE(LiteralReal);
        double v = std::strtod(t.text.c_str(), nullptr);
        ++pos_;
        return Literal::Real(v);
      }
      case TokenKind::kStringLiteral: {
        LEGO_RULE(LiteralString);
        std::string s = t.text;
        ++pos_;
        return Literal::Text(std::move(s));
      }
      case TokenKind::kMinus: {
        LEGO_RULE(ExprNeg);
        ++pos_;
        LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(e)));
      }
      case TokenKind::kLParen: {
        ++pos_;
        if (PeekKw("SELECT")) {
          LEGO_RULE(ScalarSubquery);
          LEGO_ASSIGN_OR_RETURN(auto sub, ParseSelect());
          LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
          return ExprPtr(std::make_unique<ScalarSubquery>(std::move(sub)));
        }
        LEGO_RULE(ParenExpr);
        LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kAtAt: {
        LEGO_RULE(SessionVariable);
        ++pos_;
        if (PeekKw("SESSION") && PeekTok(TokenKind::kDot, 1)) pos_ += 2;
        LEGO_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("variable"));
        return ExprPtr(std::make_unique<SessionVar>(name));
      }
      case TokenKind::kIdentifier:
        return ParseIdentifierExpr();
      default:
        return StatusOr<ExprPtr>(Err("expected expression"));
    }
  }

  StatusOr<ExprPtr> ParseIdentifierExpr() {
    std::string word = ToUpper(Cur().text);
    if (word == "NULL") {
      LEGO_RULE(LiteralNull);
      ++pos_;
      return Literal::Null();
    }
    if (word == "TRUE") {
      LEGO_RULE(LiteralBool);
      ++pos_;
      return Literal::Bool(true);
    }
    if (word == "FALSE") {
      LEGO_RULE(LiteralBool);
      ++pos_;
      return Literal::Bool(false);
    }
    if (word == "CAST") {
      LEGO_RULE(Cast);
      ++pos_;
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
      LEGO_RETURN_IF_ERROR(ExpectKw("AS"));
      LEGO_ASSIGN_OR_RETURN(SqlType type, ParseColumnType());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      return ExprPtr(std::make_unique<CastExpr>(std::move(operand), type));
    }
    if (word == "CASE") {
      LEGO_RULE(Case);
      ++pos_;
      return ParseCase();
    }
    if (word == "EXISTS") {
      LEGO_RULE(Exists);
      ++pos_;
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      LEGO_ASSIGN_OR_RETURN(auto sub, ParseSelect());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub), false));
    }
    if (word == "NOT" && PeekKw("EXISTS", 1)) {
      LEGO_RULE(NotExists);
      pos_ += 2;
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      LEGO_ASSIGN_OR_RETURN(auto sub, ParseSelect());
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub), true));
    }
    // Function call?
    if (PeekTok(TokenKind::kLParen, 1)) {
      return ParseFunctionCall();
    }
    // Reserved words cannot start a plain column reference (rejects e.g.
    // "SELECT FROM t").
    if (ReservedKeywords().count(word)) {
      return StatusOr<ExprPtr>(Err("unexpected keyword " + word));
    }
    // Column reference, possibly qualified.
    std::string first = ToLower(Cur().text);
    ++pos_;
    if (MatchTok(TokenKind::kDot)) {
      LEGO_RULE(QualifiedColumnReference);
      LEGO_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column"));
      return ExprPtr(std::make_unique<ColumnRef>(first, col));
    }
    LEGO_RULE(ColumnReference);
    return ExprPtr(std::make_unique<ColumnRef>("", first));
  }

  StatusOr<ExprPtr> ParseCase() {
    ExprPtr operand;
    if (!PeekKw("WHEN")) {
      LEGO_RULE(CaseOperand);
      LEGO_ASSIGN_OR_RETURN(operand, ParseExpr());
    }
    std::vector<std::pair<ExprPtr, ExprPtr>> whens;
    while (MatchKw("WHEN")) {
      LEGO_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      LEGO_RETURN_IF_ERROR(ExpectKw("THEN"));
      LEGO_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      whens.emplace_back(std::move(when), std::move(then));
    }
    if (whens.empty()) return StatusOr<ExprPtr>(Err("CASE requires WHEN"));
    ExprPtr else_expr;
    if (MatchKw("ELSE")) {
      LEGO_RULE(CaseElse);
      LEGO_ASSIGN_OR_RETURN(else_expr, ParseExpr());
    }
    LEGO_RETURN_IF_ERROR(ExpectKw("END"));
    return ExprPtr(std::make_unique<CaseExpr>(
        std::move(operand), std::move(whens), std::move(else_expr)));
  }

  StatusOr<ExprPtr> ParseFunctionCall() {
    LEGO_RULE(FunctionCall);
    std::string name = ToUpper(Cur().text);
    ++pos_;  // name
    ++pos_;  // '('
    auto fn = std::make_unique<FunctionCall>(name, std::vector<ExprPtr>());
    if (MatchTok(TokenKind::kStar)) {
      LEGO_RULE(FunctionStarArg);
      fn->set_star_arg(true);
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    } else {
      if (MatchKw("DISTINCT")) {
        LEGO_RULE(FunctionDistinct);
        fn->set_distinct(true);
      }
      if (!PeekTok(TokenKind::kRParen)) {
        do {
          LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          fn->mutable_args()->push_back(std::move(e));
        } while (MatchTok(TokenKind::kComma));
      }
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
    }
    if (MatchKw("OVER")) {
      LEGO_RULE(WindowOver);
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kLParen, "'('"));
      auto window = std::make_unique<WindowSpec>();
      if (MatchKw("PARTITION")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("BY"));
        LEGO_RULE(WindowPartitionBy);
        do {
          LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          window->partition_by.push_back(std::move(e));
        } while (MatchTok(TokenKind::kComma));
      }
      if (MatchKw("ORDER")) {
        LEGO_RETURN_IF_ERROR(ExpectKw("BY"));
        LEGO_RULE(WindowOrderBy);
        do {
          LEGO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          bool desc = MatchKw("DESC");
          if (!desc) MatchKw("ASC");
          window->order_by.emplace_back(std::move(e), desc);
        } while (MatchTok(TokenKind::kComma));
      }
      LEGO_RETURN_IF_ERROR(ExpectTok(TokenKind::kRParen, "')'"));
      fn->set_window(std::move(window));
    }
    return ExprPtr(std::move(fn));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

#undef LEGO_RULE

}  // namespace

StatusOr<std::vector<StmtPtr>> Parser::ParseScript(std::string_view sql) {
  Lexer lexer(sql);
  LEGO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens));
  return impl.ParseScript();
}

StatusOr<StmtPtr> Parser::ParseStatement(std::string_view sql) {
  Lexer lexer(sql);
  LEGO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens));
  return impl.ParseSingle();
}

StatusOr<ExprPtr> Parser::ParseExpression(std::string_view sql) {
  Lexer lexer(sql);
  LEGO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens));
  return impl.ParseSingleExpr();
}

}  // namespace lego::sql
