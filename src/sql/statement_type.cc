#include "sql/statement_type.h"

namespace lego::sql {

std::string_view StatementTypeName(StatementType type) {
  switch (type) {
    case StatementType::kCreateTable: return "CREATE TABLE";
    case StatementType::kCreateIndex: return "CREATE INDEX";
    case StatementType::kCreateView: return "CREATE VIEW";
    case StatementType::kCreateTrigger: return "CREATE TRIGGER";
    case StatementType::kCreateSequence: return "CREATE SEQUENCE";
    case StatementType::kCreateRule: return "CREATE RULE";
    case StatementType::kDropTable: return "DROP TABLE";
    case StatementType::kDropIndex: return "DROP INDEX";
    case StatementType::kDropView: return "DROP VIEW";
    case StatementType::kDropTrigger: return "DROP TRIGGER";
    case StatementType::kDropSequence: return "DROP SEQUENCE";
    case StatementType::kDropRule: return "DROP RULE";
    case StatementType::kAlterTable: return "ALTER TABLE";
    case StatementType::kTruncate: return "TRUNCATE";
    case StatementType::kInsert: return "INSERT";
    case StatementType::kUpdate: return "UPDATE";
    case StatementType::kDelete: return "DELETE";
    case StatementType::kReplace: return "REPLACE";
    case StatementType::kCopy: return "COPY";
    case StatementType::kSelect: return "SELECT";
    case StatementType::kValues: return "VALUES";
    case StatementType::kWith: return "WITH";
    case StatementType::kGrant: return "GRANT";
    case StatementType::kRevoke: return "REVOKE";
    case StatementType::kCreateUser: return "CREATE USER";
    case StatementType::kDropUser: return "DROP USER";
    case StatementType::kBegin: return "BEGIN";
    case StatementType::kCommit: return "COMMIT";
    case StatementType::kRollback: return "ROLLBACK";
    case StatementType::kSavepoint: return "SAVEPOINT";
    case StatementType::kRelease: return "RELEASE";
    case StatementType::kRollbackTo: return "ROLLBACK TO";
    case StatementType::kPragma: return "PRAGMA";
    case StatementType::kSet: return "SET";
    case StatementType::kShow: return "SHOW";
    case StatementType::kExplain: return "EXPLAIN";
    case StatementType::kAnalyze: return "ANALYZE";
    case StatementType::kVacuum: return "VACUUM";
    case StatementType::kReindex: return "REINDEX";
    case StatementType::kCheckpoint: return "CHECKPOINT";
    case StatementType::kNotify: return "NOTIFY";
    case StatementType::kListen: return "LISTEN";
    case StatementType::kUnlisten: return "UNLISTEN";
    case StatementType::kComment: return "COMMENT";
    case StatementType::kAlterSystem: return "ALTER SYSTEM";
    case StatementType::kDiscard: return "DISCARD";
    case StatementType::kNumTypes: break;
  }
  return "UNKNOWN";
}

StatementCategory CategoryOf(StatementType type) {
  switch (type) {
    case StatementType::kCreateTable:
    case StatementType::kCreateIndex:
    case StatementType::kCreateView:
    case StatementType::kCreateTrigger:
    case StatementType::kCreateSequence:
    case StatementType::kCreateRule:
    case StatementType::kDropTable:
    case StatementType::kDropIndex:
    case StatementType::kDropView:
    case StatementType::kDropTrigger:
    case StatementType::kDropSequence:
    case StatementType::kDropRule:
    case StatementType::kAlterTable:
    case StatementType::kTruncate:
      return StatementCategory::kDdl;
    case StatementType::kInsert:
    case StatementType::kUpdate:
    case StatementType::kDelete:
    case StatementType::kReplace:
    case StatementType::kCopy:
      return StatementCategory::kDml;
    case StatementType::kSelect:
    case StatementType::kValues:
    case StatementType::kWith:
      return StatementCategory::kDql;
    case StatementType::kGrant:
    case StatementType::kRevoke:
    case StatementType::kCreateUser:
    case StatementType::kDropUser:
      return StatementCategory::kDcl;
    case StatementType::kBegin:
    case StatementType::kCommit:
    case StatementType::kRollback:
    case StatementType::kSavepoint:
    case StatementType::kRelease:
    case StatementType::kRollbackTo:
      return StatementCategory::kTcl;
    default:
      return StatementCategory::kUtility;
  }
}

const std::vector<StatementType>& AllStatementTypes() {
  static const std::vector<StatementType>* kAll = [] {
    auto* v = new std::vector<StatementType>();
    v->reserve(kNumStatementTypes);
    for (int i = 0; i < kNumStatementTypes; ++i) {
      v->push_back(static_cast<StatementType>(i));
    }
    return v;
  }();
  return *kAll;
}

}  // namespace lego::sql
