#include "sql/lexer.h"

#include <cctype>

namespace lego::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

StatusOr<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Token t = Next();
    if (t.kind == TokenKind::kError) {
      return Status::SyntaxError(error_ + " at offset " +
                                 std::to_string(t.offset));
    }
    tokens.push_back(t);
    if (t.kind == TokenKind::kEof) break;
  }
  return tokens;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
    } else if (c == '/' && Peek(1) == '*') {
      pos_ += 2;
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) ++pos_;
      if (!AtEnd()) pos_ += 2;
    } else {
      break;
    }
  }
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  Token t;
  t.offset = pos_;
  if (AtEnd()) {
    t.kind = TokenKind::kEof;
    return t;
  }
  char c = Peek();

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (!AtEnd() && IsIdentChar(Peek())) ++pos_;
    t.kind = TokenKind::kIdentifier;
    t.text = std::string(input_.substr(start, pos_ - start));
    return t;
  }

  if (c == '"') {
    ++pos_;
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      text.push_back(Peek());
      ++pos_;
    }
    if (AtEnd()) {
      error_ = "unterminated quoted identifier";
      t.kind = TokenKind::kError;
      return t;
    }
    ++pos_;  // closing quote
    t.kind = TokenKind::kIdentifier;
    t.text = std::move(text);
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t start = pos_;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (!AtEnd() && Peek() == '.') {
      is_float = true;
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t save = pos_;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
      } else {
        pos_ = save;  // 'e' starts an identifier, not an exponent
      }
    }
    t.kind = is_float ? TokenKind::kFloatLiteral : TokenKind::kIntegerLiteral;
    t.text = std::string(input_.substr(start, pos_ - start));
    return t;
  }

  if (c == '\'') {
    ++pos_;
    std::string text;
    while (!AtEnd()) {
      if (Peek() == '\'') {
        if (Peek(1) == '\'') {  // escaped quote
          text.push_back('\'');
          pos_ += 2;
          continue;
        }
        break;
      }
      text.push_back(Peek());
      ++pos_;
    }
    if (AtEnd()) {
      error_ = "unterminated string literal";
      t.kind = TokenKind::kError;
      return t;
    }
    ++pos_;  // closing quote
    t.kind = TokenKind::kStringLiteral;
    t.text = std::move(text);
    return t;
  }

  auto single = [&](TokenKind k) {
    t.kind = k;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  };

  switch (c) {
    case '(': return single(TokenKind::kLParen);
    case ')': return single(TokenKind::kRParen);
    case ',': return single(TokenKind::kComma);
    case ';': return single(TokenKind::kSemicolon);
    case '.': return single(TokenKind::kDot);
    case '*': return single(TokenKind::kStar);
    case '+': return single(TokenKind::kPlus);
    case '-': return single(TokenKind::kMinus);
    case '/': return single(TokenKind::kSlash);
    case '%': return single(TokenKind::kPercent);
    case '=': return single(TokenKind::kEq);
    case '<':
      if (Peek(1) == '>') {
        t.kind = TokenKind::kNotEq;
        t.text = "<>";
        pos_ += 2;
        return t;
      }
      if (Peek(1) == '=') {
        t.kind = TokenKind::kLtEq;
        t.text = "<=";
        pos_ += 2;
        return t;
      }
      return single(TokenKind::kLt);
    case '>':
      if (Peek(1) == '=') {
        t.kind = TokenKind::kGtEq;
        t.text = ">=";
        pos_ += 2;
        return t;
      }
      return single(TokenKind::kGt);
    case '!':
      if (Peek(1) == '=') {
        t.kind = TokenKind::kNotEq;
        t.text = "!=";
        pos_ += 2;
        return t;
      }
      error_ = "unexpected character '!'";
      t.kind = TokenKind::kError;
      return t;
    case '|':
      if (Peek(1) == '|') {
        t.kind = TokenKind::kConcat;
        t.text = "||";
        pos_ += 2;
        return t;
      }
      error_ = "unexpected character '|'";
      t.kind = TokenKind::kError;
      return t;
    case '@':
      if (Peek(1) == '@') {
        t.kind = TokenKind::kAtAt;
        t.text = "@@";
        pos_ += 2;
        return t;
      }
      error_ = "unexpected character '@'";
      t.kind = TokenKind::kError;
      return t;
    default:
      error_ = std::string("unexpected character '") + c + "'";
      t.kind = TokenKind::kError;
      return t;
  }
}

}  // namespace lego::sql
