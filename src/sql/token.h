#ifndef LEGO_SQL_TOKEN_H_
#define LEGO_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace lego::sql {

/// Lexical token classes produced by the Lexer. Keywords are recognized by
/// the parser from kIdentifier spellings (case-insensitive), which keeps the
/// token set small and lets identifiers reuse keyword spellings where SQL
/// allows it.
enum class TokenKind : uint8_t {
  kEof = 0,
  kIdentifier,      // foo, "quoted"
  kIntegerLiteral,  // 42
  kFloatLiteral,    // 3.5, 1e9
  kStringLiteral,   // 'abc'
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNotEq,     // <> or !=
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kConcat,    // ||
  kAtAt,      // @@ (session variables)
  kError,
};

/// One lexical token with its source text and location (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // original spelling (string literals are unescaped)
  size_t offset = 0;  // byte offset in the input

  bool IsEof() const { return kind == TokenKind::kEof; }
};

}  // namespace lego::sql

#endif  // LEGO_SQL_TOKEN_H_
