#include "sql/ast.h"

#include <cmath>

#include "util/string_util.h"

namespace lego::sql {

namespace {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

void PrintRealLiteral(double v, std::string* out) {
  if (std::isnan(v)) {
    *out += "0.0";
    return;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Ensure the literal re-lexes as a float, not an integer.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  *out += s;
}

const char* TriggerEventName(TriggerEvent e) {
  switch (e) {
    case TriggerEvent::kInsert: return "INSERT";
    case TriggerEvent::kUpdate: return "UPDATE";
    case TriggerEvent::kDelete: return "DELETE";
  }
  return "?";
}

}  // namespace

std::string_view SqlTypeName(SqlType t) {
  switch (t) {
    case SqlType::kInt: return "INT";
    case SqlType::kReal: return "REAL";
    case SqlType::kText: return "TEXT";
    case SqlType::kBool: return "BOOL";
  }
  return "?";
}

std::string_view PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kSelect: return "SELECT";
    case Privilege::kInsert: return "INSERT";
    case Privilege::kUpdate: return "UPDATE";
    case Privilege::kDelete: return "DELETE";
    case Privilege::kAll: return "ALL";
  }
  return "?";
}

std::string ToSql(const Statement& stmt) {
  std::string out;
  stmt.PrintTo(&out);
  return out;
}

std::string ToSql(const Expr& expr) {
  std::string out;
  expr.PrintTo(&out);
  return out;
}

// --------------------------- Expressions -----------------------------------

ExprPtr Literal::Clone() const {
  auto e = std::make_unique<Literal>();
  e->tag_ = tag_;
  e->int_ = int_;
  e->real_ = real_;
  e->text_ = text_;
  e->bool_ = bool_;
  return e;
}

void Literal::PrintTo(std::string* out) const {
  switch (tag_) {
    case Tag::kNull: *out += "NULL"; break;
    case Tag::kInt: *out += std::to_string(int_); break;
    case Tag::kReal: PrintRealLiteral(real_, out); break;
    case Tag::kText: *out += QuoteSqlString(text_); break;
    case Tag::kBool: *out += bool_ ? "TRUE" : "FALSE"; break;
  }
}

ExprPtr ColumnRef::Clone() const {
  return std::make_unique<ColumnRef>(table_, column_);
}

void ColumnRef::PrintTo(std::string* out) const {
  if (!table_.empty()) {
    *out += table_;
    *out += ".";
  }
  *out += column_;
}

ExprPtr Star::Clone() const { return std::make_unique<Star>(table_); }

void Star::PrintTo(std::string* out) const {
  if (!table_.empty()) {
    *out += table_;
    *out += ".";
  }
  *out += "*";
}

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op_, operand_->Clone());
}

void UnaryExpr::PrintTo(std::string* out) const {
  *out += (op_ == UnaryOp::kNeg) ? "-" : "NOT ";
  *out += "(";
  operand_->PrintTo(out);
  *out += ")";
}

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op_, lhs_->Clone(), rhs_->Clone());
}

void BinaryExpr::PrintTo(std::string* out) const {
  *out += "(";
  lhs_->PrintTo(out);
  *out += " ";
  *out += BinaryOpName(op_);
  *out += " ";
  rhs_->PrintTo(out);
  *out += ")";
}

WindowSpec WindowSpec::Clone() const {
  WindowSpec w;
  for (const auto& e : partition_by) w.partition_by.push_back(e->Clone());
  for (const auto& [e, desc] : order_by) {
    w.order_by.emplace_back(e->Clone(), desc);
  }
  return w;
}

ExprPtr FunctionCall::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  auto e = std::make_unique<FunctionCall>(name_, std::move(args));
  e->distinct_ = distinct_;
  e->star_arg_ = star_arg_;
  if (window_) e->window_ = std::make_unique<WindowSpec>(window_->Clone());
  return e;
}

void FunctionCall::PrintTo(std::string* out) const {
  *out += name_;
  *out += "(";
  if (star_arg_) {
    *out += "*";
  } else {
    if (distinct_) *out += "DISTINCT ";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) *out += ", ";
      args_[i]->PrintTo(out);
    }
  }
  *out += ")";
  if (window_) {
    *out += " OVER (";
    if (!window_->partition_by.empty()) {
      *out += "PARTITION BY ";
      for (size_t i = 0; i < window_->partition_by.size(); ++i) {
        if (i > 0) *out += ", ";
        window_->partition_by[i]->PrintTo(out);
      }
    }
    if (!window_->order_by.empty()) {
      if (!window_->partition_by.empty()) *out += " ";
      *out += "ORDER BY ";
      for (size_t i = 0; i < window_->order_by.size(); ++i) {
        if (i > 0) *out += ", ";
        window_->order_by[i].first->PrintTo(out);
        if (window_->order_by[i].second) *out += " DESC";
      }
    }
    *out += ")";
  }
}

ExprPtr CaseExpr::Clone() const {
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  whens.reserve(whens_.size());
  for (const auto& [w, t] : whens_) whens.emplace_back(w->Clone(), t->Clone());
  return std::make_unique<CaseExpr>(operand_ ? operand_->Clone() : nullptr,
                                    std::move(whens),
                                    else_ ? else_->Clone() : nullptr);
}

void CaseExpr::PrintTo(std::string* out) const {
  *out += "CASE";
  if (operand_) {
    *out += " ";
    operand_->PrintTo(out);
  }
  for (const auto& [w, t] : whens_) {
    *out += " WHEN ";
    w->PrintTo(out);
    *out += " THEN ";
    t->PrintTo(out);
  }
  if (else_) {
    *out += " ELSE ";
    else_->PrintTo(out);
  }
  *out += " END";
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> list;
  list.reserve(list_.size());
  for (const auto& e : list_) list.push_back(e->Clone());
  return std::make_unique<InListExpr>(needle_->Clone(), std::move(list),
                                      negated_);
}

void InListExpr::PrintTo(std::string* out) const {
  needle_->PrintTo(out);
  *out += negated_ ? " NOT IN (" : " IN (";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) *out += ", ";
    list_[i]->PrintTo(out);
  }
  *out += ")";
}

InSubqueryExpr::InSubqueryExpr(ExprPtr needle,
                               std::unique_ptr<SelectStmt> subquery,
                               bool negated)
    : needle_(std::move(needle)),
      subquery_(std::move(subquery)),
      negated_(negated) {}

InSubqueryExpr::~InSubqueryExpr() = default;

ExprPtr InSubqueryExpr::Clone() const {
  return std::make_unique<InSubqueryExpr>(needle_->Clone(),
                                          subquery_->CloneSelect(), negated_);
}

void InSubqueryExpr::PrintTo(std::string* out) const {
  needle_->PrintTo(out);
  *out += negated_ ? " NOT IN (" : " IN (";
  subquery_->PrintTo(out);
  *out += ")";
}

ExprPtr BetweenExpr::Clone() const {
  return std::make_unique<BetweenExpr>(operand_->Clone(), lo_->Clone(),
                                       hi_->Clone(), negated_);
}

void BetweenExpr::PrintTo(std::string* out) const {
  operand_->PrintTo(out);
  *out += negated_ ? " NOT BETWEEN " : " BETWEEN ";
  lo_->PrintTo(out);
  *out += " AND ";
  hi_->PrintTo(out);
}

ExprPtr LikeExpr::Clone() const {
  return std::make_unique<LikeExpr>(operand_->Clone(), pattern_->Clone(),
                                    negated_);
}

void LikeExpr::PrintTo(std::string* out) const {
  operand_->PrintTo(out);
  *out += negated_ ? " NOT LIKE " : " LIKE ";
  pattern_->PrintTo(out);
}

ExprPtr IsNullExpr::Clone() const {
  return std::make_unique<IsNullExpr>(operand_->Clone(), negated_);
}

void IsNullExpr::PrintTo(std::string* out) const {
  operand_->PrintTo(out);
  *out += negated_ ? " IS NOT NULL" : " IS NULL";
}

ExistsExpr::ExistsExpr(std::unique_ptr<SelectStmt> subquery, bool negated)
    : subquery_(std::move(subquery)), negated_(negated) {}

ExistsExpr::~ExistsExpr() = default;

ExprPtr ExistsExpr::Clone() const {
  return std::make_unique<ExistsExpr>(subquery_->CloneSelect(), negated_);
}

void ExistsExpr::PrintTo(std::string* out) const {
  if (negated_) *out += "NOT ";
  *out += "EXISTS (";
  subquery_->PrintTo(out);
  *out += ")";
}

ExprPtr CastExpr::Clone() const {
  return std::make_unique<CastExpr>(operand_->Clone(), target_);
}

void CastExpr::PrintTo(std::string* out) const {
  *out += "CAST(";
  operand_->PrintTo(out);
  *out += " AS ";
  *out += SqlTypeName(target_);
  *out += ")";
}

ScalarSubquery::ScalarSubquery(std::unique_ptr<SelectStmt> subquery)
    : subquery_(std::move(subquery)) {}

ScalarSubquery::~ScalarSubquery() = default;

ExprPtr ScalarSubquery::Clone() const {
  return std::make_unique<ScalarSubquery>(subquery_->CloneSelect());
}

void ScalarSubquery::PrintTo(std::string* out) const {
  *out += "(";
  subquery_->PrintTo(out);
  *out += ")";
}

ExprPtr SessionVar::Clone() const {
  return std::make_unique<SessionVar>(name_);
}

void SessionVar::PrintTo(std::string* out) const {
  *out += "@@SESSION.";
  *out += name_;
}

// ------------------------ Child expression slots ----------------------------

void UnaryExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&operand_);
}

void BinaryExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&lhs_);
  out->push_back(&rhs_);
}

void FunctionCall::CollectChildSlots(std::vector<ExprPtr*>* out) {
  for (ExprPtr& a : args_) out->push_back(&a);
  if (window_ != nullptr) {
    for (ExprPtr& p : window_->partition_by) out->push_back(&p);
    for (auto& [e, desc] : window_->order_by) out->push_back(&e);
  }
}

void CaseExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  if (operand_ != nullptr) out->push_back(&operand_);
  for (auto& [when, then] : whens_) {
    out->push_back(&when);
    out->push_back(&then);
  }
  if (else_ != nullptr) out->push_back(&else_);
}

void InListExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&needle_);
  for (ExprPtr& e : list_) out->push_back(&e);
}

void InSubqueryExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&needle_);
}

void BetweenExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&operand_);
  out->push_back(&lo_);
  out->push_back(&hi_);
}

void LikeExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&operand_);
  out->push_back(&pattern_);
}

void IsNullExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&operand_);
}

void CastExpr::CollectChildSlots(std::vector<ExprPtr*>* out) {
  out->push_back(&operand_);
}

// --------------------------- Table refs ------------------------------------

TableRefPtr BaseTableRef::Clone() const {
  return std::make_unique<BaseTableRef>(name_, alias_);
}

void BaseTableRef::PrintTo(std::string* out) const {
  *out += name_;
  if (!alias_.empty()) {
    *out += " AS ";
    *out += alias_;
  }
}

SubqueryRef::SubqueryRef(std::unique_ptr<SelectStmt> select, std::string alias)
    : select_(std::move(select)), alias_(std::move(alias)) {}

SubqueryRef::~SubqueryRef() = default;

TableRefPtr SubqueryRef::Clone() const {
  return std::make_unique<SubqueryRef>(select_->CloneSelect(), alias_);
}

void SubqueryRef::PrintTo(std::string* out) const {
  *out += "(";
  select_->PrintTo(out);
  *out += ") AS ";
  *out += alias_;
}

TableRefPtr JoinRef::Clone() const {
  return std::make_unique<JoinRef>(type_, left_->Clone(), right_->Clone(),
                                   on_ ? on_->Clone() : nullptr);
}

void JoinRef::PrintTo(std::string* out) const {
  left_->PrintTo(out);
  switch (type_) {
    case JoinType::kInner: *out += " JOIN "; break;
    case JoinType::kLeft: *out += " LEFT JOIN "; break;
    case JoinType::kCross: *out += " CROSS JOIN "; break;
  }
  right_->PrintTo(out);
  if (on_) {
    *out += " ON ";
    on_->PrintTo(out);
  }
}

// --------------------------- Statements ------------------------------------

ColumnDef ColumnDef::Clone() const {
  ColumnDef c(name, type);
  c.primary_key = primary_key;
  c.unique = unique;
  c.not_null = not_null;
  if (default_value) c.default_value = default_value->Clone();
  return c;
}

void ColumnDef::PrintTo(std::string* out) const {
  *out += name;
  *out += " ";
  *out += SqlTypeName(type);
  if (primary_key) *out += " PRIMARY KEY";
  if (unique) *out += " UNIQUE";
  if (not_null) *out += " NOT NULL";
  if (default_value) {
    *out += " DEFAULT ";
    default_value->PrintTo(out);
  }
}

StmtPtr CreateTableStmt::Clone() const {
  auto s = std::make_unique<CreateTableStmt>();
  s->name = name;
  s->if_not_exists = if_not_exists;
  s->temporary = temporary;
  s->columns.reserve(columns.size());
  for (const auto& c : columns) s->columns.push_back(c.Clone());
  return s;
}

void CreateTableStmt::PrintTo(std::string* out) const {
  *out += "CREATE ";
  if (temporary) *out += "TEMPORARY ";
  *out += "TABLE ";
  if (if_not_exists) *out += "IF NOT EXISTS ";
  *out += name;
  *out += " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) *out += ", ";
    columns[i].PrintTo(out);
  }
  *out += ")";
}

StmtPtr CreateIndexStmt::Clone() const {
  auto s = std::make_unique<CreateIndexStmt>();
  *s = CreateIndexStmt();
  s->name = name;
  s->table = table;
  s->columns = columns;
  s->unique = unique;
  s->if_not_exists = if_not_exists;
  return s;
}

void CreateIndexStmt::PrintTo(std::string* out) const {
  *out += "CREATE ";
  if (unique) *out += "UNIQUE ";
  *out += "INDEX ";
  if (if_not_exists) *out += "IF NOT EXISTS ";
  *out += name;
  *out += " ON ";
  *out += table;
  *out += " (";
  *out += Join(columns, ", ");
  *out += ")";
}

StmtPtr CreateViewStmt::Clone() const {
  auto s = std::make_unique<CreateViewStmt>();
  s->name = name;
  s->or_replace = or_replace;
  s->select = select->CloneSelect();
  return s;
}

void CreateViewStmt::PrintTo(std::string* out) const {
  *out += "CREATE ";
  if (or_replace) *out += "OR REPLACE ";
  *out += "VIEW ";
  *out += name;
  *out += " AS ";
  select->PrintTo(out);
}

StmtPtr CreateTriggerStmt::Clone() const {
  auto s = std::make_unique<CreateTriggerStmt>();
  s->name = name;
  s->timing = timing;
  s->event = event;
  s->table = table;
  s->for_each_row = for_each_row;
  s->body = body->Clone();
  return s;
}

void CreateTriggerStmt::PrintTo(std::string* out) const {
  *out += "CREATE TRIGGER ";
  *out += name;
  *out += (timing == TriggerTiming::kBefore) ? " BEFORE " : " AFTER ";
  *out += TriggerEventName(event);
  *out += " ON ";
  *out += table;
  if (for_each_row) *out += " FOR EACH ROW";
  *out += " ";
  body->PrintTo(out);
}

StmtPtr CreateSequenceStmt::Clone() const {
  auto s = std::make_unique<CreateSequenceStmt>();
  s->name = name;
  s->start = start;
  s->increment = increment;
  s->if_not_exists = if_not_exists;
  return s;
}

void CreateSequenceStmt::PrintTo(std::string* out) const {
  *out += "CREATE SEQUENCE ";
  if (if_not_exists) *out += "IF NOT EXISTS ";
  *out += name;
  if (start != 1) {
    *out += " START ";
    *out += std::to_string(start);
  }
  if (increment != 1) {
    *out += " INCREMENT ";
    *out += std::to_string(increment);
  }
}

StmtPtr CreateRuleStmt::Clone() const {
  auto s = std::make_unique<CreateRuleStmt>();
  s->name = name;
  s->or_replace = or_replace;
  s->event = event;
  s->table = table;
  s->instead = instead;
  s->action = action ? action->Clone() : nullptr;
  return s;
}

void CreateRuleStmt::PrintTo(std::string* out) const {
  *out += "CREATE ";
  if (or_replace) *out += "OR REPLACE ";
  *out += "RULE ";
  *out += name;
  *out += " AS ON ";
  *out += TriggerEventName(event);
  *out += " TO ";
  *out += table;
  *out += " DO";
  if (instead) *out += " INSTEAD";
  if (action) {
    *out += " ";
    action->PrintTo(out);
  } else {
    *out += " NOTHING";
  }
}

StmtPtr DropStmt::Clone() const {
  return std::make_unique<DropStmt>(drop_type_, name_, if_exists_);
}

void DropStmt::PrintTo(std::string* out) const {
  switch (drop_type_) {
    case StatementType::kDropTable: *out += "DROP TABLE "; break;
    case StatementType::kDropIndex: *out += "DROP INDEX "; break;
    case StatementType::kDropView: *out += "DROP VIEW "; break;
    case StatementType::kDropTrigger: *out += "DROP TRIGGER "; break;
    case StatementType::kDropSequence: *out += "DROP SEQUENCE "; break;
    case StatementType::kDropRule: *out += "DROP RULE "; break;
    default: *out += "DROP ??? "; break;
  }
  if (if_exists_) *out += "IF EXISTS ";
  *out += name_;
}

StmtPtr AlterTableStmt::Clone() const {
  auto s = std::make_unique<AlterTableStmt>();
  s->table = table;
  s->action = action;
  s->new_column = new_column.Clone();
  s->old_name = old_name;
  s->new_name = new_name;
  return s;
}

void AlterTableStmt::PrintTo(std::string* out) const {
  *out += "ALTER TABLE ";
  *out += table;
  switch (action) {
    case AlterAction::kAddColumn:
      *out += " ADD COLUMN ";
      new_column.PrintTo(out);
      break;
    case AlterAction::kDropColumn:
      *out += " DROP COLUMN ";
      *out += old_name;
      break;
    case AlterAction::kRenameColumn:
      *out += " RENAME COLUMN ";
      *out += old_name;
      *out += " TO ";
      *out += new_name;
      break;
    case AlterAction::kRenameTable:
      *out += " RENAME TO ";
      *out += new_name;
      break;
  }
}

StmtPtr TruncateStmt::Clone() const {
  auto s = std::make_unique<TruncateStmt>();
  s->table = table;
  return s;
}

void TruncateStmt::PrintTo(std::string* out) const {
  *out += "TRUNCATE TABLE ";
  *out += table;
}

StmtPtr InsertStmt::Clone() const {
  auto s = std::make_unique<InsertStmt>();
  s->table = table;
  s->columns = columns;
  s->rows.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    s->rows.push_back(std::move(r));
  }
  if (select) s->select = select->CloneSelect();
  s->or_ignore = or_ignore;
  s->replace = replace;
  return s;
}

void InsertStmt::PrintTo(std::string* out) const {
  if (replace) {
    *out += "REPLACE INTO ";
  } else {
    *out += "INSERT ";
    if (or_ignore) *out += "IGNORE ";
    *out += "INTO ";
  }
  *out += table;
  if (!columns.empty()) {
    *out += " (";
    *out += Join(columns, ", ");
    *out += ")";
  }
  if (select) {
    *out += " ";
    select->PrintTo(out);
  } else {
    *out += " VALUES ";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += "(";
      for (size_t j = 0; j < rows[i].size(); ++j) {
        if (j > 0) *out += ", ";
        rows[i][j]->PrintTo(out);
      }
      *out += ")";
    }
  }
}

StmtPtr UpdateStmt::Clone() const {
  auto s = std::make_unique<UpdateStmt>();
  s->table = table;
  s->assignments.reserve(assignments.size());
  for (const auto& [col, e] : assignments) {
    s->assignments.emplace_back(col, e->Clone());
  }
  if (where) s->where = where->Clone();
  return s;
}

void UpdateStmt::PrintTo(std::string* out) const {
  *out += "UPDATE ";
  *out += table;
  *out += " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += assignments[i].first;
    *out += " = ";
    assignments[i].second->PrintTo(out);
  }
  if (where) {
    *out += " WHERE ";
    where->PrintTo(out);
  }
}

StmtPtr DeleteStmt::Clone() const {
  auto s = std::make_unique<DeleteStmt>();
  s->table = table;
  if (where) s->where = where->Clone();
  return s;
}

void DeleteStmt::PrintTo(std::string* out) const {
  *out += "DELETE FROM ";
  *out += table;
  if (where) {
    *out += " WHERE ";
    where->PrintTo(out);
  }
}

StmtPtr CopyStmt::Clone() const {
  auto s = std::make_unique<CopyStmt>();
  s->table = table;
  if (query) s->query = query->CloneSelect();
  s->to_stdout = to_stdout;
  s->csv = csv;
  s->header = header;
  return s;
}

void CopyStmt::PrintTo(std::string* out) const {
  *out += "COPY ";
  if (query) {
    *out += "(";
    query->PrintTo(out);
    *out += ")";
  } else {
    *out += table;
  }
  *out += to_stdout ? " TO STDOUT" : " FROM STDIN";
  if (csv) *out += " CSV";
  if (header) *out += " HEADER";
}

SelectItem SelectItem::Clone() const {
  SelectItem it;
  it.expr = expr->Clone();
  it.alias = alias;
  return it;
}

OrderByItem OrderByItem::Clone() const {
  OrderByItem it;
  it.expr = expr->Clone();
  it.desc = desc;
  return it;
}

SelectCore SelectCore::Clone() const {
  SelectCore c;
  c.distinct = distinct;
  c.items.reserve(items.size());
  for (const auto& it : items) c.items.push_back(it.Clone());
  if (from) c.from = from->Clone();
  if (where) c.where = where->Clone();
  for (const auto& g : group_by) c.group_by.push_back(g->Clone());
  if (having) c.having = having->Clone();
  return c;
}

void SelectCore::PrintTo(std::string* out) const {
  *out += "SELECT ";
  if (distinct) *out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out += ", ";
    items[i].expr->PrintTo(out);
    if (!items[i].alias.empty()) {
      *out += " AS ";
      *out += items[i].alias;
    }
  }
  if (from) {
    *out += " FROM ";
    from->PrintTo(out);
  }
  if (where) {
    *out += " WHERE ";
    where->PrintTo(out);
  }
  if (!group_by.empty()) {
    *out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) *out += ", ";
      group_by[i]->PrintTo(out);
    }
  }
  if (having) {
    *out += " HAVING ";
    having->PrintTo(out);
  }
}

StmtPtr SelectStmt::Clone() const { return CloneSelect(); }

std::unique_ptr<SelectStmt> SelectStmt::CloneSelect() const {
  auto s = std::make_unique<SelectStmt>();
  s->core = core.Clone();
  s->compounds.reserve(compounds.size());
  for (const auto& [k, c] : compounds) s->compounds.emplace_back(k, c.Clone());
  for (const auto& o : order_by) s->order_by.push_back(o.Clone());
  if (limit) s->limit = limit->Clone();
  if (offset) s->offset = offset->Clone();
  return s;
}

void SelectStmt::PrintTo(std::string* out) const {
  core.PrintTo(out);
  for (const auto& [k, c] : compounds) {
    switch (k) {
      case SetOpKind::kUnion: *out += " UNION "; break;
      case SetOpKind::kUnionAll: *out += " UNION ALL "; break;
      case SetOpKind::kExcept: *out += " EXCEPT "; break;
      case SetOpKind::kIntersect: *out += " INTERSECT "; break;
    }
    c.PrintTo(out);
  }
  if (!order_by.empty()) {
    *out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) *out += ", ";
      order_by[i].expr->PrintTo(out);
      if (order_by[i].desc) *out += " DESC";
    }
  }
  if (limit) {
    *out += " LIMIT ";
    limit->PrintTo(out);
  }
  if (offset) {
    *out += " OFFSET ";
    offset->PrintTo(out);
  }
}

StmtPtr ValuesStmt::Clone() const {
  auto s = std::make_unique<ValuesStmt>();
  s->rows.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    s->rows.push_back(std::move(r));
  }
  return s;
}

void ValuesStmt::PrintTo(std::string* out) const {
  *out += "VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) *out += ", ";
      rows[i][j]->PrintTo(out);
    }
    *out += ")";
  }
}

CommonTableExpr CommonTableExpr::Clone() const {
  CommonTableExpr c;
  c.name = name;
  c.columns = columns;
  c.statement = statement->Clone();
  return c;
}

StmtPtr WithStmt::Clone() const {
  auto s = std::make_unique<WithStmt>();
  s->ctes.reserve(ctes.size());
  for (const auto& c : ctes) s->ctes.push_back(c.Clone());
  s->body = body->Clone();
  return s;
}

void WithStmt::PrintTo(std::string* out) const {
  *out += "WITH ";
  for (size_t i = 0; i < ctes.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += ctes[i].name;
    if (!ctes[i].columns.empty()) {
      *out += " (";
      *out += Join(ctes[i].columns, ", ");
      *out += ")";
    }
    *out += " AS (";
    ctes[i].statement->PrintTo(out);
    *out += ")";
  }
  *out += " ";
  body->PrintTo(out);
}

StmtPtr GrantStmt::Clone() const {
  auto s = std::make_unique<GrantStmt>();
  *s = GrantStmt();
  s->privilege = privilege;
  s->table = table;
  s->user = user;
  return s;
}

void GrantStmt::PrintTo(std::string* out) const {
  *out += "GRANT ";
  *out += PrivilegeName(privilege);
  *out += " ON ";
  *out += table;
  *out += " TO ";
  *out += user;
}

StmtPtr RevokeStmt::Clone() const {
  auto s = std::make_unique<RevokeStmt>();
  s->privilege = privilege;
  s->table = table;
  s->user = user;
  return s;
}

void RevokeStmt::PrintTo(std::string* out) const {
  *out += "REVOKE ";
  *out += PrivilegeName(privilege);
  *out += " ON ";
  *out += table;
  *out += " FROM ";
  *out += user;
}

StmtPtr CreateUserStmt::Clone() const {
  auto s = std::make_unique<CreateUserStmt>();
  s->name = name;
  s->if_not_exists = if_not_exists;
  return s;
}

void CreateUserStmt::PrintTo(std::string* out) const {
  *out += "CREATE USER ";
  if (if_not_exists) *out += "IF NOT EXISTS ";
  *out += name;
}

StmtPtr DropUserStmt::Clone() const {
  auto s = std::make_unique<DropUserStmt>();
  s->name = name;
  s->if_exists = if_exists;
  return s;
}

void DropUserStmt::PrintTo(std::string* out) const {
  *out += "DROP USER ";
  if (if_exists) *out += "IF EXISTS ";
  *out += name;
}

StmtPtr SimpleStmt::Clone() const {
  return std::make_unique<SimpleStmt>(type_);
}

void SimpleStmt::PrintTo(std::string* out) const {
  switch (type_) {
    case StatementType::kBegin: *out += "BEGIN"; break;
    case StatementType::kCommit: *out += "COMMIT"; break;
    case StatementType::kRollback: *out += "ROLLBACK"; break;
    case StatementType::kCheckpoint: *out += "CHECKPOINT"; break;
    default: *out += StatementTypeName(type_); break;
  }
}

StmtPtr NamedStmt::Clone() const {
  return std::make_unique<NamedStmt>(type_, name_);
}

void NamedStmt::PrintTo(std::string* out) const {
  switch (type_) {
    case StatementType::kSavepoint: *out += "SAVEPOINT "; break;
    case StatementType::kRelease: *out += "RELEASE SAVEPOINT "; break;
    case StatementType::kRollbackTo: *out += "ROLLBACK TO "; break;
    case StatementType::kListen: *out += "LISTEN "; break;
    case StatementType::kUnlisten: *out += "UNLISTEN "; break;
    default:
      *out += StatementTypeName(type_);
      *out += " ";
      break;
  }
  *out += name_;
}

StmtPtr PragmaStmt::Clone() const {
  auto s = std::make_unique<PragmaStmt>();
  s->name = name;
  if (value) s->value = value->Clone();
  s->is_set = is_set;
  s->session_scope = session_scope;
  return s;
}

void PragmaStmt::PrintTo(std::string* out) const {
  if (is_set) {
    *out += "SET ";
    if (session_scope) *out += "@@SESSION.";
    *out += name;
    *out += " = ";
    if (value) {
      value->PrintTo(out);
    } else {
      *out += "NULL";
    }
  } else {
    *out += "PRAGMA ";
    *out += name;
    if (value) {
      *out += " = ";
      value->PrintTo(out);
    }
  }
}

StmtPtr ShowStmt::Clone() const {
  auto s = std::make_unique<ShowStmt>();
  s->what = what;
  return s;
}

void ShowStmt::PrintTo(std::string* out) const {
  *out += "SHOW ";
  *out += what;
}

StmtPtr ExplainStmt::Clone() const {
  auto s = std::make_unique<ExplainStmt>();
  s->target = target->Clone();
  s->analyze = analyze;
  return s;
}

void ExplainStmt::PrintTo(std::string* out) const {
  *out += "EXPLAIN ";
  if (analyze) *out += "ANALYZE ";
  target->PrintTo(out);
}

StmtPtr MaintenanceStmt::Clone() const {
  return std::make_unique<MaintenanceStmt>(type_, target_);
}

void MaintenanceStmt::PrintTo(std::string* out) const {
  switch (type_) {
    case StatementType::kAnalyze: *out += "ANALYZE"; break;
    case StatementType::kVacuum: *out += "VACUUM"; break;
    case StatementType::kReindex: *out += "REINDEX"; break;
    default: *out += StatementTypeName(type_); break;
  }
  if (!target_.empty()) {
    *out += " ";
    *out += target_;
  }
}

StmtPtr NotifyStmt::Clone() const {
  auto s = std::make_unique<NotifyStmt>();
  s->channel = channel;
  s->payload = payload;
  return s;
}

void NotifyStmt::PrintTo(std::string* out) const {
  *out += "NOTIFY ";
  *out += channel;
  if (!payload.empty()) {
    *out += ", ";
    *out += QuoteSqlString(payload);
  }
}

StmtPtr CommentStmt::Clone() const {
  auto s = std::make_unique<CommentStmt>();
  s->table = table;
  s->text = text;
  return s;
}

void CommentStmt::PrintTo(std::string* out) const {
  *out += "COMMENT ON TABLE ";
  *out += table;
  *out += " IS ";
  *out += QuoteSqlString(text);
}

StmtPtr AlterSystemStmt::Clone() const {
  auto s = std::make_unique<AlterSystemStmt>();
  s->action = action;
  s->name = name;
  if (value) s->value = value->Clone();
  return s;
}

void AlterSystemStmt::PrintTo(std::string* out) const {
  *out += "ALTER SYSTEM ";
  if (action == "SET") {
    *out += "SET ";
    *out += name;
    *out += " = ";
    if (value) {
      value->PrintTo(out);
    } else {
      *out += "NULL";
    }
  } else {
    *out += action;
  }
}

StmtPtr DiscardStmt::Clone() const {
  auto s = std::make_unique<DiscardStmt>();
  s->all = all;
  return s;
}

void DiscardStmt::PrintTo(std::string* out) const {
  *out += all ? "DISCARD ALL" : "DISCARD TEMP";
}

}  // namespace lego::sql
