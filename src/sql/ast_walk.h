#ifndef LEGO_SQL_AST_WALK_H_
#define LEGO_SQL_AST_WALK_H_

#include <functional>

#include "sql/ast.h"

namespace lego::sql {

/// Calls `fn` on `expr` and every sub-expression. When `into_subqueries` is
/// false, subquery SELECT bodies (scalar subqueries, IN (SELECT..), EXISTS)
/// are not entered — their aggregates/columns belong to their own scope.
void WalkExprs(const Expr& expr, const std::function<void(const Expr&)>& fn,
               bool into_subqueries);

/// Calls `fn` on every expression reachable from `stmt` (select items,
/// predicates, assignments, VALUES rows, DDL defaults, nested statement
/// bodies). Descends into nested statements (trigger bodies, rule actions,
/// WITH members) and, when requested, into subqueries.
void WalkStatementExprs(const Statement& stmt,
                        const std::function<void(const Expr&)>& fn,
                        bool into_subqueries);

/// Calls `fn` on every TableRef in the statement's FROM clauses (including
/// nested selects when `into_subqueries`).
void WalkTableRefs(const Statement& stmt,
                   const std::function<void(const TableRef&)>& fn,
                   bool into_subqueries);

/// Calls `fn` on every SelectStmt contained in `stmt` (including `stmt`
/// itself if it is one, views excluded — they live in the catalog).
void WalkSelects(const Statement& stmt,
                 const std::function<void(const SelectStmt&)>& fn);

/// Mutable walk over owning expression slots. Calls `fn` on `slot` (which
/// must hold a non-null expression), then on every owning child slot of the
/// (possibly replaced) node, depth-first. `fn` may replace the slot's
/// contents; the children of the *new* node are walked. Subquery SELECT
/// bodies (scalar subqueries, IN (SELECT..), EXISTS, FROM subqueries) are
/// never entered — their expressions belong to their own scope.
void WalkExprSlots(ExprPtr* slot, const std::function<void(ExprPtr*)>& fn);

/// Calls `fn` on every non-null owning expression slot reachable from
/// `stmt`: select items, predicates, assignments, VALUES rows, DDL defaults,
/// GROUP BY / ORDER BY / LIMIT, join conditions — recursing through nested
/// statement bodies (trigger bodies, rule actions, WITH members, EXPLAIN
/// targets, view definitions) but not into subquery SELECT bodies. The
/// statement-level reduction passes use this to try splicing subtrees.
void WalkStatementExprSlots(Statement* stmt,
                            const std::function<void(ExprPtr*)>& fn);

}  // namespace lego::sql

#endif  // LEGO_SQL_AST_WALK_H_
