#ifndef LEGO_SQL_PARSER_H_
#define LEGO_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace lego::sql {

/// Recursive-descent parser over the Lexer's token stream. Stateless entry
/// points; each call parses independently.
class Parser {
 public:
  /// Parses a semicolon-separated script into a statement list. Empty
  /// statements (stray semicolons) are skipped.
  static StatusOr<std::vector<StmtPtr>> ParseScript(std::string_view sql);

  /// Parses exactly one statement (trailing semicolon optional).
  static StatusOr<StmtPtr> ParseStatement(std::string_view sql);

  /// Parses one expression (for tests and tooling).
  static StatusOr<ExprPtr> ParseExpression(std::string_view sql);
};

}  // namespace lego::sql

#endif  // LEGO_SQL_PARSER_H_
