#include "sql/grammar_coverage.h"

namespace lego::sql {

thread_local uint8_t* GrammarCoverageRuntime::active_ = nullptr;

std::string_view GrammarRuleName(GrammarRule rule) {
  static constexpr std::string_view kNames[] = {
#define LEGO_GRAMMAR_RULE_NAME(name) #name,
      LEGO_GRAMMAR_RULE_LIST(LEGO_GRAMMAR_RULE_NAME)
#undef LEGO_GRAMMAR_RULE_NAME
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumGrammarRules,
                "rule name table out of sync with GrammarRule");
  size_t i = static_cast<size_t>(rule);
  if (i >= kNumGrammarRules) return "?";
  return kNames[i];
}

}  // namespace lego::sql
