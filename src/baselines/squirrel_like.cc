#include "baselines/squirrel_like.h"

#include "fuzz/seeds.h"

namespace lego::baselines {

SquirrelLikeFuzzer::SquirrelLikeFuzzer(const minidb::DialectProfile& profile,
                                       uint64_t rng_seed)
    : profile_(profile),
      rng_seed_(rng_seed),
      rng_(rng_seed),
      instantiator_(&profile, &library_, &rng_),
      mutator_(&profile, &instantiator_, &rng_, /*fancy_selects=*/false) {}

void SquirrelLikeFuzzer::Prepare(fuzz::ExecutionHarness* harness) {
  (void)harness;
  for (const std::string& script : fuzz::SeedScriptsFor(profile_.name)) {
    auto tc = fuzz::TestCase::FromSql(script);
    if (tc.ok()) replay_queue_.push_back(std::move(*tc));
  }
}

fuzz::TestCase SquirrelLikeFuzzer::Next() {
  if (!replay_queue_.empty()) {
    fuzz::TestCase tc = std::move(replay_queue_.front());
    replay_queue_.pop_front();
    return tc;
  }
  fuzz::Seed* seed = corpus_.Select(&rng_);
  if (seed == nullptr) {
    // Degenerate cold start (no seeds parsed): a trivial probe.
    auto tc = fuzz::TestCase::FromSql("SELECT 1;");
    return tc.ok() ? std::move(*tc) : fuzz::TestCase();
  }
  current_seed_ = seed;
  return mutator_.ConventionalMutate(seed->test_case);
}

void SquirrelLikeFuzzer::OnResult(const fuzz::TestCase& tc,
                                  const fuzz::ExecResult& result) {
  if (!result.new_coverage) return;
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
  if (current_seed_ != nullptr) ++current_seed_->discoveries;
}

void SquirrelLikeFuzzer::ImportSeed(const fuzz::TestCase& tc) {
  // Foreign new-coverage seeds enter the mutation pool like local ones.
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
}

}  // namespace lego::baselines
