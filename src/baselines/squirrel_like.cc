#include "baselines/squirrel_like.h"

#include "fuzz/seeds.h"
#include "fuzz/state.h"

namespace lego::baselines {

namespace {
constexpr uint32_t kSquirrelTag = persist::ChunkTag("SQRL");
}  // namespace

SquirrelLikeFuzzer::SquirrelLikeFuzzer(const minidb::DialectProfile& profile,
                                       uint64_t rng_seed)
    : profile_(profile),
      rng_seed_(rng_seed),
      rng_(rng_seed),
      instantiator_(&profile, &library_, &rng_),
      mutator_(&profile, &instantiator_, &rng_, /*fancy_selects=*/false) {}

void SquirrelLikeFuzzer::Prepare(fuzz::ExecutionHarness* harness) {
  corpus_.set_rule_weighting(harness->rule_coverage());
  for (const std::string& script : fuzz::SeedScriptsFor(profile_.name)) {
    auto tc = fuzz::TestCase::FromSql(script);
    if (tc.ok()) replay_queue_.push_back(std::move(*tc));
  }
}

fuzz::TestCase SquirrelLikeFuzzer::Next() {
  if (!replay_queue_.empty()) {
    fuzz::TestCase tc = std::move(replay_queue_.front());
    replay_queue_.pop_front();
    return tc;
  }
  fuzz::Seed* seed = corpus_.Select(&rng_);
  if (seed == nullptr) {
    // Degenerate cold start (no seeds parsed): a trivial probe.
    auto tc = fuzz::TestCase::FromSql("SELECT 1;");
    return tc.ok() ? std::move(*tc) : fuzz::TestCase();
  }
  current_seed_ = seed;
  return mutator_.ConventionalMutate(seed->test_case);
}

void SquirrelLikeFuzzer::OnResult(const fuzz::TestCase& tc,
                                  const fuzz::ExecResult& result) {
  if (!result.new_coverage && !result.new_rules) return;
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
  if (current_seed_ != nullptr) ++current_seed_->discoveries;
}

void SquirrelLikeFuzzer::ImportSeed(const fuzz::TestCase& tc) {
  // Foreign new-coverage seeds enter the mutation pool like local ones.
  corpus_.Add(tc.Clone());
  library_.AddTestCase(tc);
}

Status SquirrelLikeFuzzer::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kSquirrelTag);
  w->WriteU64(rng_seed_);
  fuzz::SaveRng(rng_, w);
  LEGO_RETURN_IF_ERROR(library_.SaveState(w));
  LEGO_RETURN_IF_ERROR(corpus_.SaveState(w));
  fuzz::SaveTestCaseQueue(replay_queue_, w);
  w->WriteI64(corpus_.IndexOf(current_seed_));
  w->EndChunk();
  return Status::OK();
}

Status SquirrelLikeFuzzer::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSquirrelTag));
  uint64_t rng_seed = r->ReadU64();
  if (r->ok() && rng_seed != rng_seed_) {
    return Status::InvalidArgument(
        "squirrel state saved under a different rng seed");
  }
  LEGO_RETURN_IF_ERROR(fuzz::LoadRng(r, &rng_));
  LEGO_RETURN_IF_ERROR(library_.LoadState(r));
  LEGO_RETURN_IF_ERROR(corpus_.LoadState(r));
  LEGO_RETURN_IF_ERROR(fuzz::LoadTestCaseQueue(r, &replay_queue_));
  int64_t seed_index = r->ReadI64();
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  if (seed_index >= static_cast<int64_t>(corpus_.size()) || seed_index < -1) {
    return Status::InvalidArgument("in-flight seed index out of range");
  }
  current_seed_ =
      seed_index < 0 ? nullptr : corpus_.at(static_cast<size_t>(seed_index));
  return Status::OK();
}

}  // namespace lego::baselines
