#ifndef LEGO_BASELINES_SQLANCER_LIKE_H_
#define LEGO_BASELINES_SQLANCER_LIKE_H_

#include <memory>
#include <string>

#include "fuzz/fuzzer.h"
#include "lego/generator.h"

namespace lego::baselines {

/// SQLancer-style rule-based fuzzer (PQS flavor): every test case follows a
/// fixed template — create a table, optionally index it, insert rows, then
/// issue pivot-style SELECTs whose WHERE predicates target an inserted row.
/// The rules produce limited SQL Type Sequences (paper §V-C): only
/// CREATE TABLE / CREATE INDEX / INSERT / SELECT combinations.
class SqlancerLikeFuzzer : public fuzz::Fuzzer {
 public:
  explicit SqlancerLikeFuzzer(const minidb::DialectProfile& profile,
                              uint64_t rng_seed = 11);

  std::string name() const override { return "sqlancer"; }
  void Prepare(fuzz::ExecutionHarness* harness) override { (void)harness; }
  fuzz::TestCase Next() override;
  void OnResult(const fuzz::TestCase& tc,
                const fuzz::ExecResult& result) override {
    (void)tc;
    (void)result;  // rule-based: no feedback loop
  }
  std::unique_ptr<fuzz::Fuzzer> CloneForWorker(int worker_id) const override {
    return std::make_unique<SqlancerLikeFuzzer>(
        profile_, rng_seed_ + static_cast<uint64_t>(worker_id));
  }

  /// Rule-based: the RNG stream is the entire mutable state.
  Status SaveState(persist::StateWriter* w) const override;
  Status LoadState(persist::StateReader* r) override;

 private:
  const minidb::DialectProfile& profile_;
  uint64_t rng_seed_;
  Rng rng_;
  core::StatementGenerator generator_;
};

}  // namespace lego::baselines

#endif  // LEGO_BASELINES_SQLANCER_LIKE_H_
