#ifndef LEGO_BASELINES_SQLSMITH_LIKE_H_
#define LEGO_BASELINES_SQLSMITH_LIKE_H_

#include <memory>
#include <string>

#include "fuzz/fuzzer.h"
#include "lego/generator.h"

namespace lego::baselines {

/// SQLsmith-style generation-based fuzzer: emits one syntactically rich
/// SELECT per test case against a pre-populated schema, never mutating the
/// database (the original mostly generates SELECTs to keep the database
/// unchanged, paper §VII). Its test cases therefore contain a single-entry
/// SQL Type Sequence and no type-affinities.
class SqlsmithLikeFuzzer : public fuzz::Fuzzer {
 public:
  explicit SqlsmithLikeFuzzer(const minidb::DialectProfile& profile,
                              uint64_t rng_seed = 7);

  std::string name() const override { return "sqlsmith"; }
  void Prepare(fuzz::ExecutionHarness* harness) override;
  fuzz::TestCase Next() override;
  void OnResult(const fuzz::TestCase& tc,
                const fuzz::ExecResult& result) override {
    (void)tc;
    (void)result;  // generation-based: no feedback loop
  }
  std::unique_ptr<fuzz::Fuzzer> CloneForWorker(int worker_id) const override {
    return std::make_unique<SqlsmithLikeFuzzer>(
        profile_, rng_seed_ + static_cast<uint64_t>(worker_id));
  }

  /// Generation-based: RNG stream plus the symbolic schema context (whose
  /// fresh-name counter advances during generation).
  Status SaveState(persist::StateWriter* w) const override;
  Status LoadState(persist::StateReader* r) override;

 private:
  const minidb::DialectProfile& profile_;
  uint64_t rng_seed_;
  Rng rng_;
  core::StatementGenerator generator_;
  core::SchemaContext schema_;
};

}  // namespace lego::baselines

#endif  // LEGO_BASELINES_SQLSMITH_LIKE_H_
