#ifndef LEGO_BASELINES_SQUIRREL_LIKE_H_
#define LEGO_BASELINES_SQUIRREL_LIKE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "lego/ast_library.h"
#include "lego/instantiator.h"
#include "lego/mutation.h"

namespace lego::baselines {

/// SQUIRREL-style coverage-guided mutation fuzzer: selects seeds from a
/// corpus and applies syntax-preserving, semantics-guided mutation to the
/// structure/data *inside* individual statements. The SQL Type Sequence of
/// a seed never changes (paper §II/§V-C), which is precisely the limitation
/// LEGO removes.
class SquirrelLikeFuzzer : public fuzz::Fuzzer {
 public:
  explicit SquirrelLikeFuzzer(const minidb::DialectProfile& profile,
                              uint64_t rng_seed = 13);

  std::string name() const override { return "squirrel"; }
  void Prepare(fuzz::ExecutionHarness* harness) override;
  fuzz::TestCase Next() override;
  void OnResult(const fuzz::TestCase& tc,
                const fuzz::ExecResult& result) override;
  std::unique_ptr<fuzz::Fuzzer> CloneForWorker(int worker_id) const override {
    return std::make_unique<SquirrelLikeFuzzer>(
        profile_, rng_seed_ + static_cast<uint64_t>(worker_id));
  }
  void ImportSeed(const fuzz::TestCase& tc) override;
  std::vector<fuzz::TestCase> ExportCorpus() const override {
    std::vector<fuzz::TestCase> out;
    out.reserve(corpus_.size());
    for (const fuzz::Seed& seed : corpus_.seeds()) {
      out.push_back(seed.test_case.Clone());
    }
    return out;
  }

  /// Corpus-and-RNG checkpointing (this baseline learns nothing else).
  Status SaveState(persist::StateWriter* w) const override;
  Status LoadState(persist::StateReader* r) override;
  fuzz::FuzzerStats stats() const override {
    fuzz::FuzzerStats s;
    s.corpus_seeds = corpus_.size();
    return s;
  }

  size_t corpus_size() const { return corpus_.size(); }

 private:
  const minidb::DialectProfile& profile_;
  uint64_t rng_seed_;
  Rng rng_;
  core::AstLibrary library_;
  core::Instantiator instantiator_;
  core::SequenceMutator mutator_;
  fuzz::Corpus corpus_;
  std::deque<fuzz::TestCase> replay_queue_;
  fuzz::Seed* current_seed_ = nullptr;
};

}  // namespace lego::baselines

#endif  // LEGO_BASELINES_SQUIRREL_LIKE_H_
