#include "baselines/sqlsmith_like.h"

#include "fuzz/seeds.h"
#include "fuzz/state.h"
#include "sql/parser.h"

namespace lego::baselines {

namespace {
constexpr uint32_t kSqlsmithTag = persist::ChunkTag("SQSM");
}  // namespace

SqlsmithLikeFuzzer::SqlsmithLikeFuzzer(const minidb::DialectProfile& profile,
                                       uint64_t rng_seed)
    : profile_(profile),
      rng_seed_(rng_seed),
      rng_(rng_seed),
      generator_(&profile, &rng_) {}

void SqlsmithLikeFuzzer::Prepare(fuzz::ExecutionHarness* harness) {
  // SQLsmith fuzzes an existing database: install the setup schema on the
  // harness and mirror it into the generator's symbolic context.
  std::string setup = fuzz::SetupSchemaFor(profile_.name);
  harness->set_setup_script(setup);
  auto stmts = sql::Parser::ParseScript(setup);
  if (stmts.ok()) {
    for (const auto& stmt : *stmts) schema_.Apply(*stmt);
  }
}

fuzz::TestCase SqlsmithLikeFuzzer::Next() {
  std::vector<sql::StmtPtr> stmts;
  stmts.push_back(generator_.GenerateSelect(&schema_, 2, /*fancy=*/true));
  return fuzz::TestCase(std::move(stmts));
}

Status SqlsmithLikeFuzzer::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kSqlsmithTag);
  w->WriteU64(rng_seed_);
  fuzz::SaveRng(rng_, w);
  LEGO_RETURN_IF_ERROR(schema_.SaveState(w));
  w->EndChunk();
  return Status::OK();
}

Status SqlsmithLikeFuzzer::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSqlsmithTag));
  uint64_t rng_seed = r->ReadU64();
  if (r->ok() && rng_seed != rng_seed_) {
    return Status::InvalidArgument(
        "sqlsmith state saved under a different rng seed");
  }
  LEGO_RETURN_IF_ERROR(fuzz::LoadRng(r, &rng_));
  LEGO_RETURN_IF_ERROR(schema_.LoadState(r));
  return r->ExitChunk();
}

}  // namespace lego::baselines
