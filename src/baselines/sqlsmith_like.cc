#include "baselines/sqlsmith_like.h"

#include "fuzz/seeds.h"
#include "sql/parser.h"

namespace lego::baselines {

SqlsmithLikeFuzzer::SqlsmithLikeFuzzer(const minidb::DialectProfile& profile,
                                       uint64_t rng_seed)
    : profile_(profile),
      rng_seed_(rng_seed),
      rng_(rng_seed),
      generator_(&profile, &rng_) {}

void SqlsmithLikeFuzzer::Prepare(fuzz::ExecutionHarness* harness) {
  // SQLsmith fuzzes an existing database: install the setup schema on the
  // harness and mirror it into the generator's symbolic context.
  std::string setup = fuzz::SetupSchemaFor(profile_.name);
  harness->set_setup_script(setup);
  auto stmts = sql::Parser::ParseScript(setup);
  if (stmts.ok()) {
    for (const auto& stmt : *stmts) schema_.Apply(*stmt);
  }
}

fuzz::TestCase SqlsmithLikeFuzzer::Next() {
  std::vector<sql::StmtPtr> stmts;
  stmts.push_back(generator_.GenerateSelect(&schema_, 2, /*fancy=*/true));
  return fuzz::TestCase(std::move(stmts));
}

}  // namespace lego::baselines
