#include "baselines/sqlancer_like.h"

#include "fuzz/state.h"

namespace lego::baselines {

namespace {
constexpr uint32_t kSqlancerTag = persist::ChunkTag("SQLC");
}  // namespace

using sql::StatementType;

SqlancerLikeFuzzer::SqlancerLikeFuzzer(const minidb::DialectProfile& profile,
                                       uint64_t rng_seed)
    : profile_(profile),
      rng_seed_(rng_seed),
      rng_(rng_seed),
      generator_(&profile, &rng_) {
  // Pivoted query synthesis issues plain SELECTs (no aggregates/windows).
  generator_.set_fancy_selects(false);
}

fuzz::TestCase SqlancerLikeFuzzer::Next() {
  // Fixed-order rule template (each optional stage fires with its own
  // probability, but the ORDER never varies — this is what limits the SQL
  // Type Sequences rule-based generation can produce, paper §V-C):
  //
  //   [SET] CREATE TABLE [COMMENT] [CREATE INDEX] [CREATE VIEW]
  //   INSERT{1..4} [UPDATE] [INSERT] SELECT{2..4} [DELETE]
  core::SchemaContext ctx;
  std::vector<sql::StmtPtr> stmts;
  auto emit = [&](sql::StmtPtr stmt) {
    ctx.Apply(*stmt);
    stmts.push_back(std::move(stmt));
  };
  auto stage = [&](StatementType type, double p) {
    if (!profile_.Supports(type)) return;
    if (!rng_.NextBool(p)) return;
    emit(generator_.Generate(type, &ctx));
  };

  stage(StatementType::kSet, 0.3);
  emit(generator_.Generate(StatementType::kCreateTable, &ctx));
  stage(StatementType::kComment, 0.15);
  stage(StatementType::kCreateIndex, 0.5);
  stage(StatementType::kCreateView, 0.3);

  size_t inserts = 1 + rng_.NextBelow(4);
  for (size_t i = 0; i < inserts; ++i) {
    emit(generator_.Generate(StatementType::kInsert, &ctx));
  }
  stage(StatementType::kUpdate, 0.4);
  stage(StatementType::kInsert, 0.3);

  // The first SELECT of the probe block is a constant query (no FROM): it
  // always succeeds, pinning the template order in the execution trace even
  // when data statements are rejected.
  {
    auto guard = std::make_unique<sql::SelectStmt>();
    sql::SelectItem item;
    item.expr = sql::Literal::Int(static_cast<int64_t>(rng_.NextBelow(100)));
    guard->core.items.push_back(std::move(item));
    emit(std::move(guard));
  }
  size_t selects = 1 + rng_.NextBelow(3);
  for (size_t i = 0; i < selects; ++i) {
    emit(generator_.GenerateSelect(&ctx, 1, /*fancy=*/false));
  }
  stage(StatementType::kDelete, 0.3);
  return fuzz::TestCase(std::move(stmts));
}

Status SqlancerLikeFuzzer::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kSqlancerTag);
  w->WriteU64(rng_seed_);
  fuzz::SaveRng(rng_, w);
  w->EndChunk();
  return Status::OK();
}

Status SqlancerLikeFuzzer::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kSqlancerTag));
  uint64_t rng_seed = r->ReadU64();
  if (r->ok() && rng_seed != rng_seed_) {
    return Status::InvalidArgument(
        "sqlancer state saved under a different rng seed");
  }
  LEGO_RETURN_IF_ERROR(fuzz::LoadRng(r, &rng_));
  return r->ExitChunk();
}

}  // namespace lego::baselines
