#ifndef LEGO_MINIDB_EXECUTOR_H_
#define LEGO_MINIDB_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "minidb/database.h"
#include "minidb/eval.h"
#include "minidb/plan.h"
#include "util/status.h"

namespace lego::minidb {

/// Executes statements against a Database. One Executor lives for the
/// duration of one top-level statement; it carries CTE bindings, recursion
/// depth, and the feature set being collected for the fault oracle.
class Executor : public SubqueryRunner, public EvalHooks {
 public:
  /// Maximum trigger/rule/subquery/view nesting before execution aborts.
  static constexpr int kMaxDepth = 8;
  /// Per-statement cap on trigger body firings.
  static constexpr int kMaxTriggerFirings = 16;

  explicit Executor(Database* db) : db_(db) {}

  /// Runs one statement; records fired sub-statement types into the session
  /// trace and collected features into `features()`.
  StatusOr<ResultSet> Execute(const sql::Statement& stmt);

  /// Features observed while executing the last statement.
  const FeatureSet& features() const { return features_; }

  // --- SubqueryRunner ---
  StatusOr<Relation> RunSubquery(const sql::SelectStmt& stmt,
                                 const EvalContext* outer) override;

  // --- EvalHooks ---
  Value GetSessionVar(const std::string& name) override;
  StatusOr<int64_t> SequenceNextVal(const std::string& name) override;
  StatusOr<int64_t> SequenceCurrVal(const std::string& name) override;

 private:
  void SetFeature(ExecFeature f) {
    features_.set(static_cast<size_t>(f));
  }

  Status CheckDepth() {
    if (depth_ > kMaxDepth) {
      return Status::ExecutionError("statement nesting too deep");
    }
    return Status::OK();
  }

  /// Records a fired sub-statement (rule action / trigger body) type into
  /// the session trace.
  void TraceSubStatement(sql::StatementType type);

  /// Privilege check for `table` with the session's current user.
  Status CheckPrivilege(const std::string& table, PrivMask mask);

  // Statement handlers.
  StatusOr<ResultSet> ExecCreateTable(const sql::CreateTableStmt& stmt);
  StatusOr<ResultSet> ExecCreateIndex(const sql::CreateIndexStmt& stmt);
  StatusOr<ResultSet> ExecCreateView(const sql::CreateViewStmt& stmt);
  StatusOr<ResultSet> ExecCreateTrigger(const sql::CreateTriggerStmt& stmt);
  StatusOr<ResultSet> ExecCreateSequence(const sql::CreateSequenceStmt& stmt);
  StatusOr<ResultSet> ExecCreateRule(const sql::CreateRuleStmt& stmt);
  StatusOr<ResultSet> ExecDrop(const sql::DropStmt& stmt);
  StatusOr<ResultSet> ExecAlterTable(const sql::AlterTableStmt& stmt);
  StatusOr<ResultSet> ExecTruncate(const sql::TruncateStmt& stmt);
  StatusOr<ResultSet> ExecInsert(const sql::InsertStmt& stmt);
  StatusOr<ResultSet> ExecUpdate(const sql::UpdateStmt& stmt);
  StatusOr<ResultSet> ExecDelete(const sql::DeleteStmt& stmt);
  StatusOr<ResultSet> ExecCopy(const sql::CopyStmt& stmt);
  StatusOr<ResultSet> ExecSelect(const sql::SelectStmt& stmt);
  StatusOr<ResultSet> ExecValues(const sql::ValuesStmt& stmt);
  StatusOr<ResultSet> ExecWith(const sql::WithStmt& stmt);
  StatusOr<ResultSet> ExecGrant(const sql::GrantStmt& stmt);
  StatusOr<ResultSet> ExecRevoke(const sql::RevokeStmt& stmt);
  StatusOr<ResultSet> ExecCreateUser(const sql::CreateUserStmt& stmt);
  StatusOr<ResultSet> ExecDropUser(const sql::DropUserStmt& stmt);
  StatusOr<ResultSet> ExecTcl(const sql::Statement& stmt);
  StatusOr<ResultSet> ExecPragma(const sql::PragmaStmt& stmt);
  StatusOr<ResultSet> ExecShow(const sql::ShowStmt& stmt);
  StatusOr<ResultSet> ExecExplain(const sql::ExplainStmt& stmt);
  StatusOr<ResultSet> ExecMaintenance(const sql::MaintenanceStmt& stmt);
  StatusOr<ResultSet> ExecNotify(const sql::NotifyStmt& stmt);
  StatusOr<ResultSet> ExecComment(const sql::CommentStmt& stmt);
  StatusOr<ResultSet> ExecAlterSystem(const sql::AlterSystemStmt& stmt);
  StatusOr<ResultSet> ExecDiscard(const sql::DiscardStmt& stmt);
  StatusOr<ResultSet> ExecCheckpoint();

  // SELECT machinery.
  StatusOr<Relation> EvalSelect(const sql::SelectStmt& stmt,
                                const EvalContext* outer);
  StatusOr<Relation> EvalSelectCore(const sql::SelectCore& core,
                                    const sql::SelectStmt& stmt,
                                    bool is_first_core,
                                    const EvalContext* outer);
  StatusOr<Relation> MaterializePlan(const PlanNode& node,
                                     const EvalContext* outer);
  StatusOr<Relation> NestedLoopJoin(const PlanNode& node, const Relation& left,
                                    const Relation& right, Relation rel,
                                    const EvalContext* outer);
  StatusOr<Relation> ApplyAggregation(const sql::SelectCore& core,
                                      Relation input,
                                      const EvalContext* outer);
  StatusOr<Relation> ApplyProjection(const sql::SelectCore& core,
                                     const Relation& input,
                                     const EvalContext* outer);
  StatusOr<std::vector<std::map<const sql::Expr*, Value>>>
  ComputeWindowOverrides(const std::vector<const sql::FunctionCall*>& windows,
                         const Relation& input, const EvalContext* outer);
  Status ApplyOrderByLimit(const sql::SelectStmt& stmt, Relation* rel,
                           const EvalContext* outer);

  // DML helpers.
  StatusOr<Row> BuildInsertRow(const TableInfo& table,
                               const std::vector<std::string>& columns,
                               const std::vector<Value>& values);
  Status CheckConstraints(TableInfo* table, const Row& row,
                          const RowId* ignore_rid);
  Status IndexInsert(TableInfo* table, const Row& row, RowId rid);
  Status IndexErase(TableInfo* table, const Row& row, RowId rid);
  Status FireTriggers(const std::string& table, sql::TriggerEvent event,
                      sql::TriggerTiming timing, int64_t affected);
  /// Runs a rule action / trigger body statement at increased depth.
  Status RunNested(const sql::Statement& stmt);

  Database* db_;
  FeatureSet features_;
  int depth_ = 0;
  int trigger_firings_ = 0;
  /// Materialized CTEs visible to the current WITH body (name -> relation).
  std::map<std::string, Relation> cte_bindings_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_EXECUTOR_H_
