#ifndef LEGO_MINIDB_PAGE_STORE_H_
#define LEGO_MINIDB_PAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "minidb/buffer_pool.h"
#include "minidb/env.h"

namespace lego::minidb {

/// The shared physical row store of paged mode: one page file ("heap.pages")
/// under one BufferPool, plus a page allocator and the copy-on-write epoch
/// that makes snapshot transactions sound over shared pages.
///
/// Heaps store each *logical* page (64 slots) as a serialized blob chunked
/// across a *chain* of 8 KiB physical pages; the chain (a vector of physical
/// page ids) lives in the heap's resident metadata and is copied with
/// catalog snapshots, while the row payloads stay in pager frames and evict
/// to the file under pool pressure. Every blob read/write pins and unpins
/// pool frames, so `--pool-frames` genuinely bounds the resident working
/// set.
///
/// Ownership and reclamation: chains are shared freely between catalog
/// copies (snapshot transactions, savepoints), so nothing ever frees a
/// chain at destruction time. Orphaned pages — from copy-on-write, VACUUM,
/// TRUNCATE, DROP — are reclaimed by Sweep(), a mark-and-sweep the storage
/// engine runs at checkpoint when provably no catalog copy is live.
///
/// Copy-on-write protocol: the storage engine arms `cow_active` for the
/// duration of a snapshot transaction and bumps `cow_epoch` at BEGIN and at
/// every SAVEPOINT. A heap flushing a dirty logical page whose recorded
/// epoch predates the current one writes a *fresh* chain instead of
/// overwriting — the chains referenced by outstanding snapshots keep their
/// bytes, so ROLLBACK restores exact state while rows stay paged.
///
/// Failure policy: a page I/O failure (injected env.write/pager.flush, disk
/// error) either panics the process with kStorageFailExitCode (forked
/// children — the parent's durability oracle then verifies recovery) or
/// flips the store into a sticky RAM overlay where subsequent blob writes
/// live in memory (in-process — durability is lost, correctness is not, and
/// the storage engine reports itself degraded).
class PageStore {
 public:
  struct Stats {
    uint64_t blob_reads = 0;
    uint64_t blob_writes = 0;
    uint64_t cow_writes = 0;
    uint64_t pages_allocated = 0;
    uint64_t pages_swept = 0;
    uint64_t sweeps = 0;
  };

  PageStore(Env* env, std::string path, size_t frames, bool panic_on_error);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Opens (or truncates) the page file and resets the allocator. A fresh
  /// Open orphans every previously handed-out chain — callers re-attach
  /// their heaps afterwards.
  Status Open(bool truncate);
  bool is_open() const { return file_ != nullptr; }

  /// Reads the blob stored under `chain` (concatenated page chunks). An
  /// empty chain yields an empty blob.
  void ReadBlob(const std::vector<uint32_t>& chain, std::string* out);

  /// Writes `blob` under `*chain`. With `copy_on_write` the old chain is
  /// left untouched (still readable through other catalog copies) and
  /// `*chain` is replaced by freshly allocated pages; otherwise pages are
  /// reused in place, growing or shrinking the chain as needed (shrunk
  /// pages return to the free list — only legal when no copy shares them,
  /// which the cow protocol guarantees).
  void WriteBlob(std::vector<uint32_t>* chain, std::string_view blob,
                 bool copy_on_write);

  /// Flushes every dirty pool frame to the file.
  Status Flush();

  /// Mark-and-sweep reclamation: every allocated page not in `live` returns
  /// to the free list. Call only when no catalog copy besides the live one
  /// exists (the engine checkpoints outside transactions).
  void Sweep(const std::set<uint32_t>& live);

  // --- copy-on-write epoch (driven by the storage engine's txn hooks) ---
  uint64_t cow_epoch() const { return cow_epoch_; }
  void BumpCowEpoch() { ++cow_epoch_; }
  void SetCowActive(bool active) { cow_active_ = active; }
  bool cow_active() const { return cow_active_; }

  /// True once an I/O failure flipped the store into the RAM overlay.
  bool degraded() const { return ram_mode_; }

  uint64_t allocated_pages() const { return next_page_; }
  size_t free_pages() const { return free_list_.size(); }
  const Stats& stats() const { return stats_; }
  BufferPool::Stats pool_stats() const {
    return pool_ != nullptr ? pool_->stats() : BufferPool::Stats{};
  }
  size_t frame_count() const { return frames_; }

 private:
  uint32_t AllocPage();
  /// Reads one physical page's chunk; returns false on I/O failure (after
  /// applying the failure policy).
  bool ReadChunk(uint32_t page_id, std::string* out);
  bool WriteChunk(uint32_t page_id, std::string_view chunk);
  void HandleIoFailure(const Status& status);

  Env* env_;
  std::string path_;
  size_t frames_;
  bool panic_on_error_;

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferPool> pool_;

  uint32_t next_page_ = 0;
  std::vector<uint32_t> free_list_;

  uint64_t cow_epoch_ = 1;
  bool cow_active_ = false;

  /// Sticky in-memory fallback after an I/O failure in non-panic mode:
  /// page id -> chunk bytes. Reads consult this before the pool.
  bool ram_mode_ = false;
  std::map<uint32_t, std::string> ram_overlay_;

  Stats stats_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_PAGE_STORE_H_
