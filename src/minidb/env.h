#ifndef LEGO_MINIDB_ENV_H_
#define LEGO_MINIDB_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lego::minidb {

/// Fixed page size of the paged storage layer. Shared by the pager, the
/// buffer pool, the snapshot format, and the benchmarks.
inline constexpr size_t kPageSize = 8192;

/// Exit code a forked child uses when the paged storage layer cannot make a
/// commit durable (WAL append/flush/fsync failure in panic mode) or cannot
/// complete a page read/write the heap depends on. Reserved next to
/// faults::kOomExitCode (86); the parent maps it to the durability oracle
/// instead of a generic crash.
inline constexpr int kStorageFailExitCode = 87;

/// Append-only log file handle (WAL). Appends accumulate in a *user-space*
/// buffer; Sync() pushes the buffer to the file in bounded chunks (each
/// chunk passing the `env.write` failpoint) and then fsyncs (`env.sync`).
/// The user-space buffer is the point: a process killed before Sync()
/// genuinely loses the un-synced suffix — the OS page cache would survive a
/// SIGKILL and make an omitted fsync unobservable to the durability oracle.
class WritableLog {
 public:
  virtual ~WritableLog() = default;
  /// Buffers `data`; never touches the file.
  virtual Status Append(std::string_view data) = 0;
  /// Flushes the buffer (chunked writes) and fsyncs. On a mid-flush failure
  /// the file keeps the prefix that made it out — a torn tail.
  virtual Status Sync() = 0;
  /// Bytes appended but not yet pushed by Sync().
  virtual uint64_t BufferedBytes() const = 0;
  /// Durable bytes: file size as of the last successful Sync().
  virtual uint64_t SyncedBytes() const = 0;
};

/// Page-granular random-access file (snapshot/heap images). Writes pass the
/// `env.write` failpoint; Sync() passes `env.sync`.
class PagedFile {
 public:
  virtual ~PagedFile() = default;
  /// Reads page `page_id` into `buf` (kPageSize bytes). Reading a page that
  /// was never written yields zeros.
  virtual Status ReadPage(uint64_t page_id, char* buf) = 0;
  virtual Status WritePage(uint64_t page_id, const char* buf) = 0;
  virtual Status Sync() = 0;
  /// Pages the file currently spans (highest written page + 1).
  virtual uint64_t PageCount() const = 0;
};

/// Counters a storage Env accumulates over its lifetime; the benchmarks and
/// campaign stats report them (WAL bytes, fsyncs per campaign).
struct EnvStats {
  uint64_t bytes_written = 0;
  uint64_t write_calls = 0;
  uint64_t syncs = 0;
};

/// The storage environment seam: every file-system touch of the paged
/// storage engine goes through one of these, so tests can substitute an
/// in-memory Env with crash simulation and fault injection, and the chaos
/// layer's env.* failpoints cover the real one.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending (`truncate` drops existing content first).
  virtual StatusOr<std::unique_ptr<WritableLog>> NewWritableLog(
      const std::string& path, bool truncate) = 0;
  /// Opens/creates a page-granular file.
  virtual StatusOr<std::unique_ptr<PagedFile>> OpenPagedFile(
      const std::string& path, bool truncate) = 0;

  /// Whole-file reads/writes for small metadata (MANIFEST). The write is
  /// atomic: temp file + sync + rename, so a crash never leaves a torn
  /// manifest behind.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view content) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status CreateDir(const std::string& path) = 0;
  /// Files directly inside `path` (no subdirectories expected), sorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
  /// Removes every file in `path` and then the directory itself. Missing
  /// directories are OK (idempotent wipe).
  virtual Status RemoveDirRecursive(const std::string& path) = 0;

  const EnvStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EnvStats{}; }

  /// The process-wide POSIX Env (not owned).
  static Env* Posix();

 protected:
  EnvStats stats_;
};

/// In-memory Env for tests: a private filesystem map with the same
/// buffered-log semantics as the POSIX Env, plus crash simulation (drop
/// everything not synced) and direct fault injection that does not depend
/// on the global chaos registry.
class MemEnv : public Env {
 public:
  MemEnv();
  ~MemEnv() override;

  StatusOr<std::unique_ptr<WritableLog>> NewWritableLog(
      const std::string& path, bool truncate) override;
  StatusOr<std::unique_ptr<PagedFile>> OpenPagedFile(const std::string& path,
                                                     bool truncate) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view content) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;

  /// Reverts every file to its last-synced content (open handles keep
  /// working but their unsynced state is gone) — the moral equivalent of
  /// SIGKILL for in-process recovery tests.
  void SimulateCrash();

  /// Fault injection: the next `n` write/sync operations fail. 0 disarms.
  void FailNextWrites(int n) { fail_writes_ = n; }
  void FailNextSyncs(int n) { fail_syncs_ = n; }
  /// Truncates the tail of `path` by `bytes` (torn-tail construction).
  void TruncateFileTail(const std::string& path, uint64_t bytes);

 private:
  friend class MemWritableLog;
  friend class MemPagedFile;
  struct MemFile {
    std::string data;    // current (possibly unsynced) content
    std::string synced;  // content as of the last sync
  };
  bool ConsumeWriteFault() { return fail_writes_ > 0 ? (--fail_writes_, true)
                                                     : false; }
  bool ConsumeSyncFault() { return fail_syncs_ > 0 ? (--fail_syncs_, true)
                                                   : false; }

  std::map<std::string, MemFile> files_;
  std::set<std::string> dirs_;
  int fail_writes_ = 0;
  int fail_syncs_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_ENV_H_
