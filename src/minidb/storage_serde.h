#ifndef LEGO_MINIDB_STORAGE_SERDE_H_
#define LEGO_MINIDB_STORAGE_SERDE_H_

#include <cstdint>
#include <string>

#include "minidb/catalog.h"
#include "persist/io.h"

namespace lego::minidb {

/// Serialization of durable database state (the catalog and everything it
/// owns) for the paged storage engine's snapshots, plus the two digests the
/// durability oracle compares.
///
/// Two modes share one walk:
///  - *full*: every non-temporary object including heap contents (exact slot
///    layout, tombstones and partial pages preserved so WAL RowIds stay
///    valid), sequence positions, ANALYZE stats. This is the snapshot
///    payload; StateDigest() hashes it.
///  - *schema*: object definitions only — no heap rows, no sequence
///    position — but *including* temporary tables. The storage engine
///    fingerprints this before/after each statement to detect schema changes
///    that physiological redo records cannot express.

/// Scalar value serde (shared by snapshots and WAL records).
void SerializeValue(const Value& v, persist::StateWriter* w);
Value DeserializeValue(persist::StateReader* r);

void SerializeRow(const Row& row, persist::StateWriter* w);
Row DeserializeRow(persist::StateReader* r);

/// Serializes the full durable state of `catalog` (mode: full).
void SerializeCatalog(const Catalog& catalog, persist::StateWriter* w);

/// Rebuilds `*out` (must be empty) from a full-mode payload, including
/// rebuilding index trees from the loaded heaps.
Status DeserializeCatalog(persist::StateReader* r, Catalog* out);

/// Fnv1a64 of the digest-mode blob (full mode, but heaps contribute live
/// rows only — no tombstones or page structure): the durable-state digest
/// the durability oracle compares across crash/recovery. Live-rows-only
/// because the losers undo pass re-tombstones uncommitted inserts, leaving
/// structural residue the oracle's shadow rollback never produces.
uint64_t StateDigest(const Catalog& catalog);

/// Fnv1a64 of the schema-mode blob; cheap enough to take per statement.
uint64_t SchemaFingerprint(const Catalog& catalog);

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_STORAGE_SERDE_H_
