#ifndef LEGO_MINIDB_EVAL_H_
#define LEGO_MINIDB_EVAL_H_

#include <map>
#include <string>

#include "minidb/relation.h"
#include "minidb/value.h"
#include "sql/ast.h"
#include "util/status.h"

namespace lego::minidb {

class EvalContext;

/// Callback the evaluator uses to run subqueries (EXISTS, IN (SELECT..),
/// scalar subqueries). Implemented by the executor; the outer context is
/// passed through so correlated column references resolve.
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;
  virtual StatusOr<Relation> RunSubquery(const sql::SelectStmt& stmt,
                                         const EvalContext* outer) = 0;
};

/// Callbacks for session-scoped evaluation: @@vars and sequences.
class EvalHooks {
 public:
  virtual ~EvalHooks() = default;
  virtual Value GetSessionVar(const std::string& name) = 0;
  virtual StatusOr<int64_t> SequenceNextVal(const std::string& name) = 0;
  virtual StatusOr<int64_t> SequenceCurrVal(const std::string& name) = 0;
};

/// Everything needed to evaluate an expression against one row. Contexts
/// chain via `outer` for correlated subqueries.
class EvalContext {
 public:
  /// Schema that describes `row`'s columns (rows of `rel` are not used).
  const Relation* rel = nullptr;
  const Row* row = nullptr;
  /// Enclosing row context for correlated subqueries (may be null).
  const EvalContext* outer = nullptr;
  SubqueryRunner* runner = nullptr;
  EvalHooks* hooks = nullptr;
  /// Precomputed values for specific AST nodes — aggregate results and
  /// window-function outputs are injected here by the executor.
  const std::map<const sql::Expr*, Value>* node_overrides = nullptr;

  /// Resolves a column reference, walking outward through `outer`.
  StatusOr<Value> ResolveColumn(const std::string& qualifier,
                                const std::string& name) const;
};

/// SQL three-valued boolean.
enum class Tribool : uint8_t { kFalse, kTrue, kUnknown };

/// The expression evaluator. Stateless; all state flows via EvalContext.
class Evaluator {
 public:
  /// Evaluates `expr` to a value. NULL propagation follows SQL semantics.
  static StatusOr<Value> Eval(const sql::Expr& expr, const EvalContext& ctx);

  /// Evaluates `expr` as a predicate (NULL -> unknown).
  static StatusOr<Tribool> EvalPredicate(const sql::Expr& expr,
                                         const EvalContext& ctx);

  /// SQL LIKE with % and _ wildcards.
  static bool LikeMatch(const std::string& text, const std::string& pattern);

  /// True if `name` is an aggregate function (COUNT, SUM, ...).
  static bool IsAggregateFunction(const std::string& name);

  /// True if `name` is a window-capable ranking/navigation function.
  static bool IsWindowFunction(const std::string& name);

  /// Test-only wrong-result plant: when enabled, NOT of NULL evaluates to
  /// TRUE instead of NULL. Rows whose predicate is UNKNOWN then satisfy
  /// both the NOT-phi and phi-IS-NULL partitions, which the TLP oracle
  /// must detect. Never enable outside tests.
  static void SetNotNullEvalBugForTesting(bool enabled);
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_EVAL_H_
