#ifndef LEGO_MINIDB_CATALOG_H_
#define LEGO_MINIDB_CATALOG_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "minidb/btree.h"
#include "minidb/heap_table.h"
#include "minidb/value.h"
#include "sql/ast.h"
#include "util/status.h"

namespace lego::minidb {

/// One column of a stored table. AST fragments (default expressions) are
/// shared immutable, which makes catalog snapshots cheap.
struct ColumnInfo {
  std::string name;
  ValueType type = ValueType::kInt;
  bool primary_key = false;
  bool unique = false;
  bool not_null = false;
  std::shared_ptr<const sql::Expr> default_value;  // may be null
};

/// Ordered column list of a table.
struct TableSchema {
  std::vector<ColumnInfo> columns;

  /// Index of `name` or -1.
  int FindColumn(const std::string& name) const;
};

/// A secondary (or primary) index. Composite declarations are accepted but
/// keyed on the first column (documented simplification); the full column
/// list is retained for SHOW/validation.
struct IndexInfo {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  BTreeIndex tree;
};

/// A stored table: schema + heap + bookkeeping.
struct TableInfo {
  std::string name;
  TableSchema schema;
  HeapTable heap;
  std::vector<std::string> index_names;
  bool temporary = false;
  std::string comment;
  /// Row count recorded by the last ANALYZE; -1 when never analyzed. The
  /// planner consults this for join-strategy choice.
  int64_t analyzed_row_count = -1;
};

struct ViewInfo {
  std::string name;
  std::shared_ptr<const sql::SelectStmt> select;
};

struct TriggerInfo {
  std::string name;
  std::string table;
  sql::TriggerTiming timing = sql::TriggerTiming::kAfter;
  sql::TriggerEvent event = sql::TriggerEvent::kInsert;
  bool for_each_row = true;
  std::shared_ptr<const sql::Statement> body;
};

struct RuleInfo {
  std::string name;
  std::string table;
  sql::TriggerEvent event = sql::TriggerEvent::kInsert;
  bool instead = true;
  std::shared_ptr<const sql::Statement> action;  // null = DO INSTEAD NOTHING
};

struct SequenceInfo {
  std::string name;
  int64_t start = 1;
  int64_t increment = 1;
  int64_t current = 0;
  bool started = false;
};

/// Privilege bitmask per (user, table).
using PrivMask = uint8_t;
constexpr PrivMask kPrivSelect = 1 << 0;
constexpr PrivMask kPrivInsert = 1 << 1;
constexpr PrivMask kPrivUpdate = 1 << 2;
constexpr PrivMask kPrivDelete = 1 << 3;
constexpr PrivMask kPrivAll =
    kPrivSelect | kPrivInsert | kPrivUpdate | kPrivDelete;

/// Converts an AST privilege to its mask bit(s).
PrivMask MaskOf(sql::Privilege p);

/// The database catalog: all persistent objects. Copyable — snapshot-based
/// transactions deep-copy the catalog (heap/index payloads are value types,
/// AST bodies are shared immutable pointers).
class Catalog {
 public:
  // --- tables ---
  Status CreateTable(TableInfo table);
  StatusOr<TableInfo*> GetTable(const std::string& name);
  StatusOr<const TableInfo*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  /// Drops the table and cascades to its indexes, triggers, and rules.
  Status DropTable(const std::string& name);
  Status RenameTable(const std::string& old_name, const std::string& new_name);
  std::vector<std::string> TableNames() const;

  // --- indexes ---
  Status CreateIndex(IndexInfo index);
  StatusOr<IndexInfo*> GetIndex(const std::string& name);
  bool HasIndex(const std::string& name) const;
  Status DropIndex(const std::string& name);
  std::vector<std::string> IndexNames() const;
  /// All indexes attached to `table`.
  std::vector<IndexInfo*> IndexesOf(const std::string& table);

  // --- views ---
  Status CreateView(ViewInfo view, bool or_replace);
  const ViewInfo* GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  Status DropView(const std::string& name);
  std::vector<std::string> ViewNames() const;

  // --- triggers ---
  Status CreateTrigger(TriggerInfo trigger);
  bool HasTrigger(const std::string& name) const;
  Status DropTrigger(const std::string& name);
  std::vector<std::string> TriggerNames() const;
  /// Triggers on `table` for `event` with the given timing, in name order.
  std::vector<const TriggerInfo*> TriggersFor(const std::string& table,
                                              sql::TriggerEvent event,
                                              sql::TriggerTiming timing) const;

  // --- rules ---
  Status CreateRule(RuleInfo rule, bool or_replace);
  bool HasRule(const std::string& name) const;
  Status DropRule(const std::string& name);
  /// The INSTEAD rule on (table, event) if any.
  const RuleInfo* RuleFor(const std::string& table,
                          sql::TriggerEvent event) const;
  std::vector<std::string> RuleNames() const;

  // --- sequences ---
  Status CreateSequence(SequenceInfo seq);
  StatusOr<SequenceInfo*> GetSequence(const std::string& name);
  bool HasSequence(const std::string& name) const;
  Status DropSequence(const std::string& name);

  // --- users & privileges ---
  Status CreateUser(const std::string& name, bool if_not_exists);
  Status DropUser(const std::string& name, bool if_exists);
  bool HasUser(const std::string& name) const;
  void Grant(const std::string& user, const std::string& table, PrivMask mask);
  void Revoke(const std::string& user, const std::string& table,
              PrivMask mask);
  /// True if `user` holds all bits of `mask` on `table`. The superuser
  /// ("root") always passes.
  bool HasPrivilege(const std::string& user, const std::string& table,
                    PrivMask mask) const;

  // --- serde surface (const views for snapshot serialization) ---
  std::vector<std::string> SequenceNames() const;
  const IndexInfo* FindIndex(const std::string& name) const;
  const TriggerInfo* FindTrigger(const std::string& name) const;
  const RuleInfo* FindRule(const std::string& name) const;
  const SequenceInfo* FindSequence(const std::string& name) const;
  const std::set<std::string>& users() const { return users_; }
  const std::map<std::string, std::map<std::string, PrivMask>>& privileges()
      const {
    return privileges_;
  }

  /// Drops all temporary tables (DISCARD TEMP / session reset).
  void DropTemporaryTables();

  /// Routes every non-temporary heap (existing and future) through `store`
  /// (paged mode). Catalog copies share the pointer, so snapshot copies
  /// stay paged and copy-on-write keeps their chains intact. Temporary
  /// tables stay memory-resident — they are session state, not durable
  /// state, and the snapshot serde already skips them. nullptr detaches
  /// nothing (attachment is one-way for a catalog generation; a fresh
  /// generation starts from a fresh Catalog).
  void set_page_store(PageStore* store);
  PageStore* page_store() const { return page_store_; }

  /// Mark phase of the page-store sweep: every physical page id reachable
  /// from a (non-temporary) heap chain.
  void CollectChainPages(std::set<uint32_t>* live) const;

  /// While frozen, every schema change (create/drop/rename of any object
  /// kind) fails with a transaction error. The concurrent backend freezes
  /// the catalog for the multi-session phase: sessions share table/index
  /// structures by name, and row-level locking does not cover DDL. This
  /// also catches DDL nested inside trigger/rule bodies, which the
  /// backend's statement-type screen cannot see.
  void set_ddl_frozen(bool frozen) { ddl_frozen_ = frozen; }
  bool ddl_frozen() const { return ddl_frozen_; }

 private:
  /// Error returned by all mutating schema entry points while frozen.
  Status FrozenError() const;

  bool ddl_frozen_ = false;
  PageStore* page_store_ = nullptr;  // not owned; null = memory mode
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, IndexInfo> indexes_;
  std::map<std::string, ViewInfo> views_;
  std::map<std::string, TriggerInfo> triggers_;
  std::map<std::string, RuleInfo> rules_;
  std::map<std::string, SequenceInfo> sequences_;
  std::set<std::string> users_;
  std::map<std::string, std::map<std::string, PrivMask>> privileges_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_CATALOG_H_
