#include "minidb/planner.h"

#include <vector>

#include "coverage/coverage.h"

namespace lego::minidb {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

/// True when `expr` can be evaluated with no row context (literals and
/// arithmetic over them) — usable as an index probe.
bool IsConstExpr(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnary:
      return IsConstExpr(static_cast<const sql::UnaryExpr&>(expr).operand());
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      return IsConstExpr(bin.lhs()) && IsConstExpr(bin.rhs());
    }
    case ExprKind::kCast:
      return IsConstExpr(static_cast<const sql::CastExpr&>(expr).operand());
    default:
      return false;
  }
}

/// Splits an AND chain into conjuncts.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
    if (bin.op() == BinaryOp::kAnd) {
      CollectConjuncts(bin.lhs(), out);
      CollectConjuncts(bin.rhs(), out);
      return;
    }
  }
  out->push_back(&expr);
}

/// If `expr` is `<col> <cmp> <const>` (either side), fills the out params and
/// returns true. `op` is normalized so the column is on the left.
bool MatchColumnComparison(const Expr& expr, const sql::ColumnRef** col,
                           const Expr** constant, BinaryOp* op) {
  if (expr.kind() != ExprKind::kBinary) return false;
  const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
  BinaryOp o = bin.op();
  if (o != BinaryOp::kEq && o != BinaryOp::kLt && o != BinaryOp::kLe &&
      o != BinaryOp::kGt && o != BinaryOp::kGe) {
    return false;
  }
  auto mirror = [](BinaryOp x) {
    switch (x) {
      case BinaryOp::kLt: return BinaryOp::kGt;
      case BinaryOp::kLe: return BinaryOp::kGe;
      case BinaryOp::kGt: return BinaryOp::kLt;
      case BinaryOp::kGe: return BinaryOp::kLe;
      default: return x;
    }
  };
  if (bin.lhs().kind() == ExprKind::kColumnRef && IsConstExpr(bin.rhs())) {
    *col = static_cast<const sql::ColumnRef*>(&bin.lhs());
    *constant = &bin.rhs();
    *op = o;
    return true;
  }
  if (bin.rhs().kind() == ExprKind::kColumnRef && IsConstExpr(bin.lhs())) {
    *col = static_cast<const sql::ColumnRef*>(&bin.rhs());
    *constant = &bin.lhs();
    *op = mirror(o);
    return true;
  }
  return false;
}

}  // namespace

StatusOr<SelectPlan> Planner::PlanCore(const sql::SelectCore& core) const {
  SelectPlan plan;
  if (core.from != nullptr) {
    LEGO_ASSIGN_OR_RETURN(plan.from,
                          PlanTableRef(*core.from, core.where.get()));
  }
  plan.filter = core.where.get();
  plan.has_group_by = !core.group_by.empty();
  plan.has_having = core.having != nullptr;
  plan.distinct = core.distinct;
  return plan;
}

StatusOr<SelectPlan> Planner::PlanSelect(const sql::SelectStmt& stmt) const {
  LEGO_ASSIGN_OR_RETURN(SelectPlan plan, PlanCore(stmt.core));
  plan.has_order_by = !stmt.order_by.empty();
  plan.has_limit = stmt.limit != nullptr || stmt.offset != nullptr;
  plan.has_compound = !stmt.compounds.empty();
  return plan;
}

StatusOr<std::unique_ptr<PlanNode>> Planner::PlanTableRef(
    const sql::TableRef& ref, const sql::Expr* where) const {
  switch (ref.kind()) {
    case sql::TableRefKind::kBaseTable: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      auto node = std::make_unique<PlanNode>();
      node->table = base.name();
      node->alias = base.alias().empty() ? base.name() : base.alias();
      if (ctes_ != nullptr && ctes_->count(base.name())) {
        LEGO_COV();
        node->kind = PlanNode::Kind::kCte;
        node->cte_name = base.name();
        return node;
      }
      if (const ViewInfo* view = catalog_->GetView(base.name())) {
        LEGO_COV();
        node->kind = PlanNode::Kind::kView;
        node->subselect = view->select.get();
        return node;
      }
      if (!catalog_->HasTable(base.name())) {
        return StatusOr<std::unique_ptr<PlanNode>>(Status::NotFound(
            "relation '" + base.name() + "' does not exist"));
      }
      node->kind = PlanNode::Kind::kScan;
      node->method = ScanMethod::kSeqScan;
      ChooseAccessPath(node.get(), where);
      return node;
    }
    case sql::TableRefKind::kSubquery: {
      LEGO_COV();
      const auto& sub = static_cast<const sql::SubqueryRef&>(ref);
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanNode::Kind::kSubquery;
      node->alias = sub.alias();
      node->subselect = &sub.select();
      return node;
    }
    case sql::TableRefKind::kJoin: {
      const auto& join = static_cast<const sql::JoinRef&>(ref);
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanNode::Kind::kJoin;
      node->join_type = join.join_type();
      node->join_on = join.on();
      LEGO_ASSIGN_OR_RETURN(node->left, PlanTableRef(join.left(), where));
      LEGO_ASSIGN_OR_RETURN(node->right, PlanTableRef(join.right(), where));

      // Strategy: hash join for equi-joins over column refs when both
      // inputs clear the size threshold; LEFT joins hash too (null-padding
      // handled by the executor); CROSS joins always nest.
      node->strategy = JoinStrategy::kNestedLoop;
      if (join.on() != nullptr &&
          join.on()->kind() == ExprKind::kBinary) {
        const auto& on = static_cast<const sql::BinaryExpr&>(*join.on());
        if (on.op() == BinaryOp::kEq &&
            on.lhs().kind() == ExprKind::kColumnRef &&
            on.rhs().kind() == ExprKind::kColumnRef) {
          int64_t lrows = EstimateRows(*node->left);
          int64_t rrows = EstimateRows(*node->right);
          if (lrows >= kHashJoinThreshold && rrows >= kHashJoinThreshold) {
            LEGO_COV();
            node->strategy = JoinStrategy::kHashJoin;
            node->hash_left_key = &on.lhs();
            node->hash_right_key = &on.rhs();
          } else {
            LEGO_COV();
          }
        }
      }
      return node;
    }
  }
  return StatusOr<std::unique_ptr<PlanNode>>(
      Status::Internal("unknown table ref kind"));
}

void Planner::ChooseAccessPath(PlanNode* node, const sql::Expr* where) const {
  if (where == nullptr) return;
  auto table = catalog_->GetTable(node->table);
  if (!table.ok()) return;

  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*where, &conjuncts);

  auto indexes = const_cast<Catalog*>(catalog_)->IndexesOf(node->table);
  if (indexes.empty()) return;

  // Prefer equality probes; fall back to a single range bound.
  for (const Expr* conjunct : conjuncts) {
    const sql::ColumnRef* col = nullptr;
    const Expr* constant = nullptr;
    BinaryOp op;
    if (!MatchColumnComparison(*conjunct, &col, &constant, &op)) continue;
    // Qualified references must name this scan's exposure alias or table.
    if (!col->table().empty() && col->table() != node->alias &&
        col->table() != node->table) {
      continue;
    }
    for (const IndexInfo* index : indexes) {
      if (index->columns.empty() || index->columns[0] != col->column()) {
        continue;
      }
      if (op == BinaryOp::kEq) {
        LEGO_COV();
        node->method = ScanMethod::kIndexEqual;
        node->index_name = index->name;
        node->eq_probe = constant;
        return;  // equality probe wins outright
      }
      if (node->method != ScanMethod::kSeqScan) continue;
      LEGO_COV();
      node->method = ScanMethod::kIndexRange;
      node->index_name = index->name;
      if (op == BinaryOp::kGt || op == BinaryOp::kGe) {
        node->range_lo = constant;
        node->lo_inclusive = (op == BinaryOp::kGe);
      } else {
        node->range_hi = constant;
        node->hi_inclusive = (op == BinaryOp::kLe);
      }
      // Keep scanning conjuncts: a matching equality may still upgrade us,
      // or the opposite bound may tighten the range.
    }
  }
}

int64_t Planner::EstimateRows(const PlanNode& node) const {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      auto table = catalog_->GetTable(node.table);
      if (!table.ok()) return 0;
      if ((*table)->analyzed_row_count >= 0) {
        LEGO_COV();
        return (*table)->analyzed_row_count;
      }
      return static_cast<int64_t>((*table)->heap.LiveRowCount());
    }
    case PlanNode::Kind::kCte: {
      auto it = ctes_->find(node.cte_name);
      return it == ctes_->end()
                 ? 0
                 : static_cast<int64_t>(it->second.rows.size());
    }
    case PlanNode::Kind::kJoin: {
      int64_t l = EstimateRows(*node.left);
      int64_t r = EstimateRows(*node.right);
      return l > (INT64_MAX / (r > 0 ? r : 1)) ? INT64_MAX : l * std::max<int64_t>(r, 1);
    }
    default:
      // Subqueries/views: assume big enough to hash.
      return kHashJoinThreshold;
  }
}

// --------------------------- plan description ------------------------------

void PlanNode::Describe(int indent, std::string* out) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case Kind::kScan:
      *out += pad;
      switch (method) {
        case ScanMethod::kSeqScan:
          *out += "SeqScan on " + table;
          break;
        case ScanMethod::kIndexEqual:
          *out += "IndexScan (eq) on " + table + " using " + index_name;
          break;
        case ScanMethod::kIndexRange:
          *out += "IndexScan (range) on " + table + " using " + index_name;
          break;
      }
      if (alias != table) *out += " as " + alias;
      *out += "\n";
      break;
    case Kind::kJoin:
      *out += pad;
      *out += (strategy == JoinStrategy::kHashJoin) ? "HashJoin" : "NestedLoopJoin";
      switch (join_type) {
        case sql::JoinType::kInner: *out += " (inner)"; break;
        case sql::JoinType::kLeft: *out += " (left)"; break;
        case sql::JoinType::kCross: *out += " (cross)"; break;
      }
      *out += "\n";
      left->Describe(indent + 1, out);
      right->Describe(indent + 1, out);
      break;
    case Kind::kSubquery:
      *out += pad + "SubqueryScan as " + alias + "\n";
      break;
    case Kind::kView:
      *out += pad + "ViewScan " + table + "\n";
      break;
    case Kind::kCte:
      *out += pad + "CteScan " + cte_name + "\n";
      break;
  }
}

std::string SelectPlan::Describe() const {
  std::string out;
  int indent = 0;
  auto emit = [&](const std::string& line) {
    out += std::string(static_cast<size_t>(indent) * 2, ' ') + line + "\n";
    ++indent;
  };
  if (has_limit) emit("Limit");
  if (has_order_by) emit("Sort");
  if (distinct) emit("Distinct");
  if (has_compound) emit("SetOp");
  if (has_window) emit("Window");
  if (has_aggregate || has_group_by) {
    emit(has_group_by ? "HashAggregate" : "Aggregate");
  }
  if (filter != nullptr) emit("Filter");
  if (from != nullptr) {
    from->Describe(indent, &out);
  } else {
    out += std::string(static_cast<size_t>(indent) * 2, ' ') + "Result\n";
  }
  return out;
}

}  // namespace lego::minidb
