#include "minidb/storage_serde.h"

#include <map>
#include <utility>
#include <vector>

#include "persist/ast_serde.h"
#include "util/hash.h"

namespace lego::minidb {

namespace {

constexpr uint32_t kCatalogTag = persist::ChunkTag("CATL");
constexpr uint32_t kTableTag = persist::ChunkTag("TABL");
constexpr uint32_t kHeapTag = persist::ChunkTag("HEAP");
constexpr uint32_t kIndexTag = persist::ChunkTag("INDX");
constexpr uint32_t kViewTag = persist::ChunkTag("VIEW");
constexpr uint32_t kTriggerTag = persist::ChunkTag("TRIG");
constexpr uint32_t kRuleTag = persist::ChunkTag("RULE");
constexpr uint32_t kSequenceTag = persist::ChunkTag("SEQN");

void SerializeSchema(const TableSchema& schema, persist::StateWriter* w) {
  w->WriteU64(schema.columns.size());
  for (const ColumnInfo& col : schema.columns) {
    w->WriteString(col.name);
    w->WriteU8(static_cast<uint8_t>(col.type));
    w->WriteBool(col.primary_key);
    w->WriteBool(col.unique);
    w->WriteBool(col.not_null);
    persist::SerializeOptionalExpr(col.default_value.get(), w);
  }
}

Status DeserializeSchema(persist::StateReader* r, TableSchema* out) {
  const uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n; ++i) {
    ColumnInfo col;
    col.name = r->ReadString();
    col.type = static_cast<ValueType>(r->ReadU8());
    col.primary_key = r->ReadBool();
    col.unique = r->ReadBool();
    col.not_null = r->ReadBool();
    sql::ExprPtr def;
    Status s = persist::DeserializeOptionalExpr(r, &def);
    if (!s.ok()) return s;
    col.default_value = std::shared_ptr<const sql::Expr>(std::move(def));
    out->columns.push_back(std::move(col));
  }
  return r->status();
}

void SerializeHeap(const HeapTable& heap, persist::StateWriter* w) {
  w->BeginChunk(kHeapTag);
  w->WriteU64(heap.PageCount());
  // Per-page slot lists: page boundaries are preserved exactly (WAL redo can
  // leave partially-filled middle pages, so re-packing would shift RowIds).
  // Rows are copied out — a paged heap serves VisitSlots from a transient
  // one-page decode buffer, so references do not survive the walk.
  std::vector<std::vector<std::pair<bool, Row>>> pages(heap.PageCount());
  heap.VisitSlots([&](RowId id, bool live, const Row& row) {
    pages[id.page].push_back({live, row});
  });
  for (const auto& page : pages) {
    w->WriteU32(static_cast<uint32_t>(page.size()));
    for (const auto& [live, row] : page) {
      w->WriteBool(live);
      if (live) SerializeRow(row, w);
    }
  }
  w->EndChunk();
}

/// Digest-mode heap walk: live rows only, keyed by RowId. Tombstones and
/// page structure are deliberately excluded — crash recovery's losers pass
/// undoes an uncommitted insert by re-tombstoning its slot, so a recovered
/// heap can carry trailing tombstones (even whole tombstone-only pages)
/// that the oracle's shadow re-execution, which rolls back via catalog
/// snapshot, never materializes. Live rows and their slots match exactly in
/// both; structural residue does not.
void SerializeHeapLiveRows(const HeapTable& heap, persist::StateWriter* w) {
  w->BeginChunk(kHeapTag);
  w->WriteU64(heap.LiveRowCount());
  heap.VisitSlots([&](RowId id, bool live, const Row& row) {
    if (!live) return;
    w->WriteU32(id.page);
    w->WriteU32(id.slot);
    SerializeRow(row, w);
  });
  w->EndChunk();
}

Status DeserializeHeap(persist::StateReader* r, HeapTable* out) {
  Status s = r->EnterChunk(kHeapTag);
  if (!s.ok()) return s;
  const uint64_t page_count = r->ReadU64();
  if (!r->CheckCount(page_count, 4)) return r->status();
  for (uint64_t p = 0; p < page_count; ++p) {
    out->AppendRawPage();
    const uint32_t slot_count = r->ReadU32();
    if (slot_count > HeapTable::kRowsPerPage || !r->CheckCount(slot_count, 1)) {
      return r->ok() ? Status::Internal("heap page overflows slot capacity")
                     : r->status();
    }
    for (uint32_t i = 0; i < slot_count; ++i) {
      const bool live = r->ReadBool();
      Row row;
      if (live) row = DeserializeRow(r);
      if (!r->ok()) return r->status();
      out->AppendRawSlot(std::move(row), live);
    }
  }
  return r->ExitChunk();
}

/// One walk drives the snapshot payload and both digests:
///  - kFull: snapshot mode — exact heap slot layout, sequence positions,
///    temp tables excluded.
///  - kSchema: definitions only, temp tables included (the per-statement
///    schema fingerprint).
///  - kDigest: like kFull but heaps contribute live rows only (see
///    SerializeHeapLiveRows) — the durable-state digest the durability
///    oracle compares across crash/recovery.
enum class BlobMode { kSchema, kFull, kDigest };

void SerializeCatalogBlob(const Catalog& catalog, BlobMode mode,
                          persist::StateWriter* w) {
  const bool full = mode != BlobMode::kSchema;
  w->BeginChunk(kCatalogTag);

  std::vector<const TableInfo*> tables;
  for (const std::string& name : catalog.TableNames()) {
    const TableInfo* t = catalog.GetTable(name).value();
    if (full && t->temporary) continue;
    tables.push_back(t);
  }
  w->WriteU64(tables.size());
  for (const TableInfo* t : tables) {
    w->BeginChunk(kTableTag);
    w->WriteString(t->name);
    w->WriteString(t->comment);
    w->WriteBool(t->temporary);
    w->WriteI64(t->analyzed_row_count);
    SerializeSchema(t->schema, w);
    w->WriteU64(t->index_names.size());
    for (const std::string& ix : t->index_names) w->WriteString(ix);
    if (mode == BlobMode::kFull) SerializeHeap(t->heap, w);
    if (mode == BlobMode::kDigest) SerializeHeapLiveRows(t->heap, w);
    w->EndChunk();
  }

  const std::vector<std::string> index_names = catalog.IndexNames();
  w->WriteU64(index_names.size());
  for (const std::string& name : index_names) {
    const IndexInfo* ix = catalog.FindIndex(name);
    w->BeginChunk(kIndexTag);
    w->WriteString(ix->name);
    w->WriteString(ix->table);
    w->WriteU64(ix->columns.size());
    for (const std::string& col : ix->columns) w->WriteString(col);
    w->WriteBool(ix->unique);
    w->EndChunk();
  }

  const std::vector<std::string> view_names = catalog.ViewNames();
  w->WriteU64(view_names.size());
  for (const std::string& name : view_names) {
    const ViewInfo* v = catalog.GetView(name);
    w->BeginChunk(kViewTag);
    w->WriteString(v->name);
    persist::SerializeSelect(*v->select, w);
    w->EndChunk();
  }

  const std::vector<std::string> trigger_names = catalog.TriggerNames();
  w->WriteU64(trigger_names.size());
  for (const std::string& name : trigger_names) {
    const TriggerInfo* t = catalog.FindTrigger(name);
    w->BeginChunk(kTriggerTag);
    w->WriteString(t->name);
    w->WriteString(t->table);
    w->WriteU8(static_cast<uint8_t>(t->timing));
    w->WriteU8(static_cast<uint8_t>(t->event));
    w->WriteBool(t->for_each_row);
    persist::SerializeStatement(*t->body, w);
    w->EndChunk();
  }

  const std::vector<std::string> rule_names = catalog.RuleNames();
  w->WriteU64(rule_names.size());
  for (const std::string& name : rule_names) {
    const RuleInfo* rl = catalog.FindRule(name);
    w->BeginChunk(kRuleTag);
    w->WriteString(rl->name);
    w->WriteString(rl->table);
    w->WriteU8(static_cast<uint8_t>(rl->event));
    w->WriteBool(rl->instead);
    persist::SerializeOptionalStatement(rl->action.get(), w);
    w->EndChunk();
  }

  const std::vector<std::string> seq_names = catalog.SequenceNames();
  w->WriteU64(seq_names.size());
  for (const std::string& name : seq_names) {
    const SequenceInfo* sq = catalog.FindSequence(name);
    w->BeginChunk(kSequenceTag);
    w->WriteString(sq->name);
    w->WriteI64(sq->start);
    w->WriteI64(sq->increment);
    if (full) {
      w->WriteI64(sq->current);
      w->WriteBool(sq->started);
    }
    w->EndChunk();
  }

  w->WriteU64(catalog.users().size());
  for (const std::string& user : catalog.users()) w->WriteString(user);

  w->WriteU64(catalog.privileges().size());
  for (const auto& [user, grants] : catalog.privileges()) {
    w->WriteString(user);
    w->WriteU64(grants.size());
    for (const auto& [table, mask] : grants) {
      w->WriteString(table);
      w->WriteU8(mask);
    }
  }

  w->EndChunk();
}

}  // namespace

void SerializeValue(const Value& v, persist::StateWriter* w) {
  w->WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->WriteI64(v.int_value());
      break;
    case ValueType::kReal:
      w->WriteDouble(v.real_value());
      break;
    case ValueType::kText:
      w->WriteString(v.text_value());
      break;
    case ValueType::kBool:
      w->WriteBool(v.bool_value());
      break;
  }
}

Value DeserializeValue(persist::StateReader* r) {
  const auto type = static_cast<ValueType>(r->ReadU8());
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value::Int(r->ReadI64());
    case ValueType::kReal:
      return Value::Real(r->ReadDouble());
    case ValueType::kText:
      return Value::Text(r->ReadString());
    case ValueType::kBool:
      return Value::Bool(r->ReadBool());
  }
  return Value::Null();
}

void SerializeRow(const Row& row, persist::StateWriter* w) {
  w->WriteU64(row.size());
  for (const Value& v : row) SerializeValue(v, w);
}

Row DeserializeRow(persist::StateReader* r) {
  Row row;
  const uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 1)) return row;
  row.reserve(n);
  for (uint64_t i = 0; i < n; ++i) row.push_back(DeserializeValue(r));
  return row;
}

void SerializeCatalog(const Catalog& catalog, persist::StateWriter* w) {
  SerializeCatalogBlob(catalog, BlobMode::kFull, w);
}

Status DeserializeCatalog(persist::StateReader* r, Catalog* out) {
  Status s = r->EnterChunk(kCatalogTag);
  if (!s.ok()) return s;

  // index_names restores creation order, which CreateIndex below would
  // otherwise rewrite in name order; stash and re-apply at the end.
  std::map<std::string, std::vector<std::string>> index_order;

  const uint64_t table_count = r->ReadU64();
  if (!r->CheckCount(table_count, 8)) return r->status();
  for (uint64_t i = 0; i < table_count; ++i) {
    s = r->EnterChunk(kTableTag);
    if (!s.ok()) return s;
    TableInfo t;
    t.name = r->ReadString();
    t.comment = r->ReadString();
    t.temporary = r->ReadBool();
    t.analyzed_row_count = r->ReadI64();
    s = DeserializeSchema(r, &t.schema);
    if (!s.ok()) return s;
    const uint64_t ix_count = r->ReadU64();
    if (!r->CheckCount(ix_count, 1)) return r->status();
    std::vector<std::string> order;
    for (uint64_t k = 0; k < ix_count; ++k) order.push_back(r->ReadString());
    index_order[t.name] = std::move(order);
    s = DeserializeHeap(r, &t.heap);
    if (!s.ok()) return s;
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateTable(std::move(t));
    if (!s.ok()) return s;
  }

  const uint64_t index_count = r->ReadU64();
  if (!r->CheckCount(index_count, 8)) return r->status();
  for (uint64_t i = 0; i < index_count; ++i) {
    s = r->EnterChunk(kIndexTag);
    if (!s.ok()) return s;
    IndexInfo ix;
    ix.name = r->ReadString();
    ix.table = r->ReadString();
    const uint64_t col_count = r->ReadU64();
    if (!r->CheckCount(col_count, 1)) return r->status();
    for (uint64_t k = 0; k < col_count; ++k) {
      ix.columns.push_back(r->ReadString());
    }
    ix.unique = r->ReadBool();
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateIndex(std::move(ix));
    if (!s.ok()) return s;
  }

  const uint64_t view_count = r->ReadU64();
  if (!r->CheckCount(view_count, 8)) return r->status();
  for (uint64_t i = 0; i < view_count; ++i) {
    s = r->EnterChunk(kViewTag);
    if (!s.ok()) return s;
    ViewInfo v;
    v.name = r->ReadString();
    auto select = persist::DeserializeSelect(r);
    if (!select.ok()) return select.status();
    v.select = std::shared_ptr<const sql::SelectStmt>(
        std::move(select).ValueOrDie());
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateView(std::move(v), /*or_replace=*/false);
    if (!s.ok()) return s;
  }

  const uint64_t trigger_count = r->ReadU64();
  if (!r->CheckCount(trigger_count, 8)) return r->status();
  for (uint64_t i = 0; i < trigger_count; ++i) {
    s = r->EnterChunk(kTriggerTag);
    if (!s.ok()) return s;
    TriggerInfo t;
    t.name = r->ReadString();
    t.table = r->ReadString();
    t.timing = static_cast<sql::TriggerTiming>(r->ReadU8());
    t.event = static_cast<sql::TriggerEvent>(r->ReadU8());
    t.for_each_row = r->ReadBool();
    auto body = persist::DeserializeStatement(r);
    if (!body.ok()) return body.status();
    t.body =
        std::shared_ptr<const sql::Statement>(std::move(body).ValueOrDie());
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateTrigger(std::move(t));
    if (!s.ok()) return s;
  }

  const uint64_t rule_count = r->ReadU64();
  if (!r->CheckCount(rule_count, 8)) return r->status();
  for (uint64_t i = 0; i < rule_count; ++i) {
    s = r->EnterChunk(kRuleTag);
    if (!s.ok()) return s;
    RuleInfo rl;
    rl.name = r->ReadString();
    rl.table = r->ReadString();
    rl.event = static_cast<sql::TriggerEvent>(r->ReadU8());
    rl.instead = r->ReadBool();
    sql::StmtPtr action;
    s = persist::DeserializeOptionalStatement(r, &action);
    if (!s.ok()) return s;
    rl.action = std::shared_ptr<const sql::Statement>(std::move(action));
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateRule(std::move(rl), /*or_replace=*/false);
    if (!s.ok()) return s;
  }

  const uint64_t seq_count = r->ReadU64();
  if (!r->CheckCount(seq_count, 8)) return r->status();
  for (uint64_t i = 0; i < seq_count; ++i) {
    s = r->EnterChunk(kSequenceTag);
    if (!s.ok()) return s;
    SequenceInfo sq;
    sq.name = r->ReadString();
    sq.start = r->ReadI64();
    sq.increment = r->ReadI64();
    sq.current = r->ReadI64();
    sq.started = r->ReadBool();
    s = r->ExitChunk();
    if (!s.ok()) return s;
    s = out->CreateSequence(std::move(sq));
    if (!s.ok()) return s;
  }

  const uint64_t user_count = r->ReadU64();
  if (!r->CheckCount(user_count, 1)) return r->status();
  for (uint64_t i = 0; i < user_count; ++i) {
    s = out->CreateUser(r->ReadString(), /*if_not_exists=*/false);
    if (!s.ok()) return s;
  }

  const uint64_t priv_user_count = r->ReadU64();
  if (!r->CheckCount(priv_user_count, 8)) return r->status();
  for (uint64_t i = 0; i < priv_user_count; ++i) {
    const std::string user = r->ReadString();
    const uint64_t grant_count = r->ReadU64();
    if (!r->CheckCount(grant_count, 2)) return r->status();
    for (uint64_t k = 0; k < grant_count; ++k) {
      const std::string table = r->ReadString();
      const PrivMask mask = r->ReadU8();
      out->Grant(user, table, mask);
    }
  }

  s = r->ExitChunk();
  if (!s.ok()) return s;
  if (!r->ok()) return r->status();

  // Restore creation-order index lists, then rebuild the trees from the
  // loaded heaps (trees are never serialized — REINDEX-style rebuild).
  for (auto& [table_name, order] : index_order) {
    auto table_or = out->GetTable(table_name);
    if (table_or.ok()) table_or.value()->index_names = order;
  }
  for (const std::string& name : out->IndexNames()) {
    IndexInfo* ix = out->GetIndex(name).value();
    auto table_or = out->GetTable(ix->table);
    if (!table_or.ok()) continue;
    TableInfo* table = table_or.value();
    ix->tree.Clear();
    const int col = table->schema.FindColumn(ix->columns[0]);
    if (col < 0) continue;
    table->heap.Scan([&](RowId rid, const Row& row) {
      if (static_cast<size_t>(col) < row.size()) {
        ix->tree.Insert(row[col], rid);
      }
      return true;
    });
  }
  return Status::OK();
}

uint64_t StateDigest(const Catalog& catalog) {
  persist::StateWriter w;
  SerializeCatalogBlob(catalog, BlobMode::kDigest, &w);
  return Fnv1a64(w.buffer());
}

uint64_t SchemaFingerprint(const Catalog& catalog) {
  persist::StateWriter w;
  SerializeCatalogBlob(catalog, BlobMode::kSchema, &w);
  return Fnv1a64(w.buffer());
}

}  // namespace lego::minidb
