#include "minidb/page_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace lego::minidb {

namespace {
/// Each physical page stores [u32 chunk_len][chunk bytes].
constexpr size_t kChunkCap = kPageSize - sizeof(uint32_t);
}  // namespace

PageStore::PageStore(Env* env, std::string path, size_t frames,
                     bool panic_on_error)
    : env_(env),
      path_(std::move(path)),
      frames_(frames == 0 ? 1 : frames),
      panic_on_error_(panic_on_error) {}

Status PageStore::Open(bool truncate) {
  pool_.reset();
  file_.reset();
  auto file_or = env_->OpenPagedFile(path_, truncate);
  if (!file_or.ok()) return file_or.status();
  file_ = std::move(file_or).ValueOrDie();
  pool_ = std::make_unique<BufferPool>(file_.get(), frames_);
  next_page_ = 0;
  free_list_.clear();
  cow_epoch_ = 1;
  cow_active_ = false;
  ram_mode_ = false;
  ram_overlay_.clear();
  return Status::OK();
}

void PageStore::HandleIoFailure(const Status& status) {
  if (panic_on_error_) {
    std::fprintf(stderr, "storage: page store I/O failed, exiting: %s\n",
                 status.message().c_str());
    std::fflush(stderr);
    _exit(kStorageFailExitCode);
  }
  // In-process fallback: all further page traffic lives in RAM. Correctness
  // of the running session is preserved; durability of the page file is not
  // (the storage engine flags itself degraded via degraded()).
  ram_mode_ = true;
}

uint32_t PageStore::AllocPage() {
  if (!free_list_.empty()) {
    const uint32_t id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  ++stats_.pages_allocated;
  return next_page_++;
}

bool PageStore::ReadChunk(uint32_t page_id, std::string* out) {
  if (ram_mode_) {
    auto it = ram_overlay_.find(page_id);
    if (it != ram_overlay_.end()) {
      out->append(it->second);
      return true;
    }
    // Fall through: the page predates the failure and may still be
    // readable from the pool.
  }
  if (pool_ == nullptr) return false;
  auto frame = pool_->Pin(page_id);
  if (!frame.ok()) {
    HandleIoFailure(frame.status());
    auto it = ram_overlay_.find(page_id);
    if (it != ram_overlay_.end()) {
      out->append(it->second);
      return true;
    }
    return false;
  }
  const char* p = frame.value();
  uint32_t len = 0;
  std::memcpy(&len, p, sizeof(len));
  if (len > kChunkCap) len = kChunkCap;  // defensive: torn page
  out->append(p + sizeof(uint32_t), len);
  pool_->Unpin(page_id, /*dirty=*/false);
  return true;
}

bool PageStore::WriteChunk(uint32_t page_id, std::string_view chunk) {
  if (ram_mode_) {
    ram_overlay_[page_id].assign(chunk.data(), chunk.size());
    return true;
  }
  auto frame = pool_->Pin(page_id);
  if (!frame.ok()) {
    HandleIoFailure(frame.status());
    ram_overlay_[page_id].assign(chunk.data(), chunk.size());
    return true;
  }
  char* p = frame.value();
  const uint32_t len = static_cast<uint32_t>(chunk.size());
  std::memcpy(p, &len, sizeof(len));
  std::memcpy(p + sizeof(uint32_t), chunk.data(), chunk.size());
  if (sizeof(uint32_t) + chunk.size() < kPageSize) {
    std::memset(p + sizeof(uint32_t) + chunk.size(), 0,
                kPageSize - sizeof(uint32_t) - chunk.size());
  }
  pool_->Unpin(page_id, /*dirty=*/true);
  return true;
}

void PageStore::ReadBlob(const std::vector<uint32_t>& chain,
                         std::string* out) {
  out->clear();
  ++stats_.blob_reads;
  for (const uint32_t page_id : chain) {
    if (!ReadChunk(page_id, out)) return;  // failure policy already applied
  }
}

void PageStore::WriteBlob(std::vector<uint32_t>* chain, std::string_view blob,
                          bool copy_on_write) {
  ++stats_.blob_writes;
  const size_t needed =
      blob.empty() ? 1 : (blob.size() + kChunkCap - 1) / kChunkCap;
  if (copy_on_write) {
    // Old pages stay behind for the snapshots that share them; Sweep()
    // reclaims them once no copy is live.
    ++stats_.cow_writes;
    chain->clear();
  }
  while (chain->size() < needed) chain->push_back(AllocPage());
  while (chain->size() > needed) {
    free_list_.push_back(chain->back());
    chain->pop_back();
  }
  for (size_t i = 0; i < needed; ++i) {
    const size_t off = i * kChunkCap;
    const size_t len = blob.size() > off ? std::min(kChunkCap, blob.size() - off)
                                         : 0;
    if (!WriteChunk((*chain)[i], std::string_view(blob.data() + off, len))) {
      return;
    }
  }
}

Status PageStore::Flush() {
  if (pool_ == nullptr || ram_mode_) return Status::OK();
  return pool_->FlushAll();
}

void PageStore::Sweep(const std::set<uint32_t>& live) {
  ++stats_.sweeps;
  const size_t before = free_list_.size();
  free_list_.clear();
  for (uint32_t id = 0; id < next_page_; ++id) {
    if (live.count(id) == 0) free_list_.push_back(id);
  }
  if (free_list_.size() > before) {
    stats_.pages_swept += free_list_.size() - before;
  }
  // LIFO reuse: pop_back hands out the highest ids first, keeping the file
  // compact-ish after a big drop.
}

}  // namespace lego::minidb
