#include "minidb/lock_manager.h"

#include <algorithm>

namespace lego::minidb {

bool LockManager::Compatible(const LockState& state, uint64_t txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlock(uint64_t txn, const LockKey& key,
                                LockMode mode) const {
  // DFS over the wait-for graph starting from the transactions `txn` would
  // wait on. An edge u -> v exists when u's pending request conflicts with
  // a lock v holds. If the walk reaches `txn`, enqueueing would close a
  // cycle.
  std::vector<uint64_t> stack;
  std::set<uint64_t> seen;
  auto push_conflicting_holders = [&](const LockKey& k, uint64_t waiter,
                                      LockMode m) {
    auto it = locks_.find(k);
    if (it == locks_.end()) return;
    for (const auto& [holder, held_mode] : it->second.holders) {
      if (holder == waiter) continue;
      if (m == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
        if (seen.insert(holder).second) stack.push_back(holder);
      }
    }
  };
  push_conflicting_holders(key, txn, mode);
  while (!stack.empty()) {
    uint64_t u = stack.back();
    stack.pop_back();
    if (u == txn) return true;
    auto wit = waiting_.find(u);
    if (wit == waiting_.end()) continue;
    auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) continue;
    LockMode wmode = LockMode::kShared;
    for (const Waiter& w : lit->second.queue) {
      if (w.txn == u) {
        wmode = w.mode;
        break;
      }
    }
    push_conflicting_holders(wit->second, u, wmode);
  }
  return false;
}

LockManager::Acquire LockManager::Request(uint64_t txn, const LockKey& key,
                                          LockMode mode) {
  LockState& state = locks_[key];
  auto held = state.holders.find(txn);
  if (held != state.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Acquire::kGranted;  // re-entrant (X covers S)
    }
    // S -> X upgrade: immediate when sole holder, otherwise wait like any
    // conflicting request (the upgrade completes via PromoteWaiters).
    if (state.holders.size() == 1) {
      held->second = LockMode::kExclusive;
      return Acquire::kGranted;
    }
  }
  if (held == state.holders.end() && Compatible(state, txn, mode) &&
      state.queue.empty()) {
    // Fresh grant; an S request never jumps a non-empty queue (no waiter
    // starvation, keeps grant order deterministic).
    state.holders.emplace(txn, mode);
    held_[txn].insert(key);
    return Acquire::kGranted;
  }
  if (WouldDeadlock(txn, key, mode)) return Acquire::kDeadlock;
  state.queue.push_back(Waiter{txn, mode});
  waiting_[txn] = key;
  return Acquire::kWouldBlock;
}

void LockManager::PromoteWaiters(const LockKey& key,
                                 std::vector<uint64_t>* granted) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  // Grant-any-compatible scan in queue order: a head X waiter blocks
  // everything behind it; a run of S waiters is granted together.
  for (size_t i = 0; i < state.queue.size();) {
    const Waiter w = state.queue[i];
    bool is_upgrade = state.holders.count(w.txn) > 0;
    bool ok = is_upgrade ? state.holders.size() == 1
                         : Compatible(state, w.txn, w.mode);
    if (!ok) {
      if (w.mode == LockMode::kExclusive) break;
      ++i;
      continue;
    }
    state.holders[w.txn] = w.mode;
    held_[w.txn].insert(key);
    waiting_.erase(w.txn);
    granted->push_back(w.txn);
    state.queue.erase(state.queue.begin() + static_cast<ptrdiff_t>(i));
  }
  if (state.holders.empty() && state.queue.empty()) locks_.erase(it);
}

std::vector<uint64_t> LockManager::ReleaseAll(uint64_t txn) {
  std::vector<uint64_t> granted;
  // Cancel a pending wait first so this txn cannot be re-granted below.
  auto wit = waiting_.find(txn);
  if (wit != waiting_.end()) {
    auto lit = locks_.find(wit->second);
    if (lit != locks_.end()) {
      auto& q = lit->second.queue;
      q.erase(std::remove_if(q.begin(), q.end(),
                             [&](const Waiter& w) { return w.txn == txn; }),
              q.end());
    }
    waiting_.erase(wit);
  }
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    // std::set iteration gives a deterministic key order, so promotions are
    // reproducible run over run.
    std::set<LockKey> keys = std::move(hit->second);
    held_.erase(hit);
    for (const LockKey& key : keys) {
      auto lit = locks_.find(key);
      if (lit == locks_.end()) continue;
      lit->second.holders.erase(txn);
      PromoteWaiters(key, &granted);
    }
  }
  std::sort(granted.begin(), granted.end());
  granted.erase(std::unique(granted.begin(), granted.end()), granted.end());
  return granted;
}

bool LockManager::Holds(uint64_t txn, const LockKey& key,
                        LockMode mode) const {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kShared || h->second == LockMode::kExclusive;
}

size_t LockManager::HeldCount(uint64_t txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

const LockKey* LockManager::WaitingOn(uint64_t txn) const {
  auto it = waiting_.find(txn);
  return it == waiting_.end() ? nullptr : &it->second;
}

void LockManager::Clear() {
  locks_.clear();
  held_.clear();
  waiting_.clear();
}

}  // namespace lego::minidb
