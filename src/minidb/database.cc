#include "minidb/database.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "coverage/coverage.h"
#include "minidb/executor.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

std::atomic<bool> g_planted_abort{false};
std::atomic<bool> g_planted_hang{false};
std::atomic<bool> g_planted_oom{false};

}  // namespace

namespace testing {

void SetPlantedAbortForTesting(bool armed) {
  g_planted_abort.store(armed, std::memory_order_relaxed);
}

void SetPlantedHangForTesting(bool armed) {
  g_planted_hang.store(armed, std::memory_order_relaxed);
}

void SetPlantedOomForTesting(bool armed) {
  g_planted_oom.store(armed, std::memory_order_relaxed);
}

}  // namespace testing

Database::Database(const DialectProfile* profile) : profile_(profile) {}

StatusOr<ResultSet> Database::Execute(const sql::Statement& stmt) {
  // Planted real defects (test-only): checked before any validation so the
  // trigger statement reproduces and minimizes to itself regardless of
  // catalog state.
  if (g_planted_abort.load(std::memory_order_relaxed) &&
      stmt.type() == sql::StatementType::kDropTable) {
    std::abort();
  }
  if (g_planted_hang.load(std::memory_order_relaxed) &&
      stmt.type() == sql::StatementType::kVacuum) {
    // Busy-spins (rather than sleeping) so both watchdogs can catch it: the
    // wall-clock --max-stmt-ms kill and the RLIMIT_CPU governor, which
    // only counts CPU time and would never fire on a sleeping child.
    volatile uint64_t spin = 0;
    for (;;) ++spin;
  }
  if (g_planted_oom.load(std::memory_order_relaxed) &&
      stmt.type() == sql::StatementType::kReindex) {
    // Allocate and touch memory without bound. Under RLIMIT_AS the forked
    // child's new-handler converts exhaustion into the reserved OOM exit
    // code, which the parent triages as REAL-OOM.
    std::vector<std::unique_ptr<char[]>> hog;
    for (;;) {
      constexpr size_t kChunk = 1 << 20;
      hog.push_back(std::make_unique<char[]>(kChunk));
      std::memset(hog.back().get(), 0xab, kChunk);
    }
  }

  Executor executor(this);
  auto result = executor.Execute(stmt);
  if (!result.ok()) return result;

  // Record the executed statement into the session trace, then consult the
  // fault oracle (the ASAN stand-in).
  session_.type_trace.push_back(stmt.type());
  session_.feature_trace.push_back(executor.features());
  if (fault_hook_ != nullptr) {
    std::optional<CrashInfo> crash = fault_hook_->Check(*this);
    if (crash.has_value()) {
      LEGO_COV();
      last_crash_ = crash;
      return StatusOr<ResultSet>(Status::Crash(
          crash->kind + " in " + crash->component + " (" + crash->bug_id +
          "): " + crash->message));
    }
  }
  return result;
}

StatusOr<Database::ScriptResult> Database::ExecuteScript(
    std::string_view sql_text) {
  LEGO_ASSIGN_OR_RETURN(std::vector<sql::StmtPtr> stmts,
                        sql::Parser::ParseScript(sql_text));
  ScriptResult result;
  for (const sql::StmtPtr& stmt : stmts) {
    auto st = Execute(*stmt);
    if (st.ok()) {
      ++result.executed;
      continue;
    }
    if (st.status().IsCrash()) {
      result.crashed = true;
      return result;
    }
    ++result.errors;
  }
  return result;
}

void Database::ResetSession() {
  if (session_.in_transaction) {
    (void)TxnRollback();
  }
  session_ = SessionState{};
  last_crash_.reset();
  catalog_.DropTemporaryTables();
}

void Database::ResetAll() {
  catalog_ = Catalog();
  session_ = SessionState{};
  last_crash_.reset();
  txn_snapshot_.reset();
  savepoints_.clear();
}

Status Database::TxnBegin() {
  if (txn_hook_ != nullptr) return txn_hook_->Begin(*this);
  if (session_.in_transaction) {
    return Status::TransactionError("a transaction is already in progress");
  }
  txn_snapshot_ = catalog_;
  session_.in_transaction = true;
  if (storage_hook_ != nullptr) storage_hook_->OnTxnBegin(*this);
  return Status::OK();
}

Status Database::TxnCommit() {
  if (txn_hook_ != nullptr) return txn_hook_->Commit(*this);
  if (!session_.in_transaction) {
    return Status::TransactionError("no transaction in progress");
  }
  txn_snapshot_.reset();
  savepoints_.clear();
  session_.in_transaction = false;
  if (storage_hook_ != nullptr) storage_hook_->OnTxnCommit(*this);
  return Status::OK();
}

Status Database::TxnRollback() {
  if (txn_hook_ != nullptr) return txn_hook_->Rollback(*this);
  if (!session_.in_transaction) {
    return Status::TransactionError("no transaction in progress");
  }
  catalog_ = std::move(*txn_snapshot_);
  txn_snapshot_.reset();
  savepoints_.clear();
  session_.in_transaction = false;
  if (storage_hook_ != nullptr) storage_hook_->OnTxnRollback(*this);
  return Status::OK();
}

Status Database::TxnSavepoint(const std::string& name) {
  if (txn_hook_ != nullptr) return txn_hook_->Savepoint(*this, name);
  if (!session_.in_transaction) {
    return Status::TransactionError("SAVEPOINT requires a transaction");
  }
  savepoints_.emplace_back(name, catalog_);
  if (storage_hook_ != nullptr) storage_hook_->OnTxnSavepoint(*this, name);
  return Status::OK();
}

Status Database::TxnRelease(const std::string& name) {
  if (txn_hook_ != nullptr) return txn_hook_->Release(*this, name);
  for (auto it = savepoints_.rbegin(); it != savepoints_.rend(); ++it) {
    if (it->first == name) {
      // Release this savepoint and everything nested inside it.
      savepoints_.erase(it.base() - 1, savepoints_.end());
      if (storage_hook_ != nullptr) storage_hook_->OnTxnRelease(*this, name);
      return Status::OK();
    }
  }
  return Status::TransactionError("savepoint '" + name + "' does not exist");
}

Status Database::TxnRollbackTo(const std::string& name) {
  if (txn_hook_ != nullptr) return txn_hook_->RollbackTo(*this, name);
  for (auto it = savepoints_.rbegin(); it != savepoints_.rend(); ++it) {
    if (it->first == name) {
      catalog_ = it->second;  // keep the savepoint itself (SQL semantics)
      savepoints_.erase(it.base(), savepoints_.end());
      if (storage_hook_ != nullptr) storage_hook_->OnTxnRollbackTo(*this, name);
      return Status::OK();
    }
  }
  return Status::TransactionError("savepoint '" + name + "' does not exist");
}

}  // namespace lego::minidb
