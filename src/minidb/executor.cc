#include "minidb/executor.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "chaos/failpoint.h"
#include "coverage/coverage.h"
#include "minidb/planner.h"
#include "util/string_util.h"

namespace lego::minidb {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::StatementType;

/// Calls `fn` on `expr` and every sub-expression, without descending into
/// subquery SELECT bodies (their aggregates/windows belong to them).
void VisitExprs(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  switch (expr.kind()) {
    case ExprKind::kUnary:
      VisitExprs(static_cast<const sql::UnaryExpr&>(expr).operand(), fn);
      break;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      VisitExprs(bin.lhs(), fn);
      VisitExprs(bin.rhs(), fn);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const sql::FunctionCall&>(expr);
      for (const auto& a : call.args()) VisitExprs(*a, fn);
      if (call.window() != nullptr) {
        for (const auto& p : call.window()->partition_by) VisitExprs(*p, fn);
        for (const auto& [e, desc] : call.window()->order_by) {
          VisitExprs(*e, fn);
        }
      }
      break;
    }
    case ExprKind::kCase: {
      const auto& ce = static_cast<const sql::CaseExpr&>(expr);
      if (ce.operand() != nullptr) VisitExprs(*ce.operand(), fn);
      for (const auto& [w, t] : ce.whens()) {
        VisitExprs(*w, fn);
        VisitExprs(*t, fn);
      }
      if (ce.else_expr() != nullptr) VisitExprs(*ce.else_expr(), fn);
      break;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      VisitExprs(in.needle(), fn);
      for (const auto& e : in.list()) VisitExprs(*e, fn);
      break;
    }
    case ExprKind::kInSubquery:
      VisitExprs(static_cast<const sql::InSubqueryExpr&>(expr).needle(), fn);
      break;
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      VisitExprs(bt.operand(), fn);
      VisitExprs(bt.lo(), fn);
      VisitExprs(bt.hi(), fn);
      break;
    }
    case ExprKind::kLike: {
      const auto& lk = static_cast<const sql::LikeExpr&>(expr);
      VisitExprs(lk.operand(), fn);
      VisitExprs(lk.pattern(), fn);
      break;
    }
    case ExprKind::kIsNull:
      VisitExprs(static_cast<const sql::IsNullExpr&>(expr).operand(), fn);
      break;
    case ExprKind::kCast:
      VisitExprs(static_cast<const sql::CastExpr&>(expr).operand(), fn);
      break;
    default:
      break;
  }
}

/// Collects aggregate calls (no OVER clause) appearing in `expr`.
void CollectAggregates(const Expr& expr,
                       std::vector<const sql::FunctionCall*>* out) {
  VisitExprs(expr, [out](const Expr& e) {
    if (e.kind() != ExprKind::kFunctionCall) return;
    const auto& fn = static_cast<const sql::FunctionCall&>(e);
    if (fn.window() == nullptr && Evaluator::IsAggregateFunction(fn.name())) {
      out->push_back(&fn);
    }
  });
}

/// Collects window function calls (ranking functions or any call with OVER).
void CollectWindowCalls(const Expr& expr,
                        std::vector<const sql::FunctionCall*>* out) {
  VisitExprs(expr, [out](const Expr& e) {
    if (e.kind() != ExprKind::kFunctionCall) return;
    const auto& fn = static_cast<const sql::FunctionCall&>(e);
    if (fn.window() != nullptr ||
        Evaluator::IsWindowFunction(fn.name())) {
      out->push_back(&fn);
    }
  });
}

bool ContainsSubquery(const Expr& expr) {
  bool found = false;
  VisitExprs(expr, [&found](const Expr& e) {
    if (e.kind() == ExprKind::kScalarSubquery ||
        e.kind() == ExprKind::kInSubquery || e.kind() == ExprKind::kExists) {
      found = true;
    }
  });
  return found;
}

/// Derives an output column name for a select item without alias.
std::string DeriveItemName(const Expr& expr, size_t position) {
  if (expr.kind() == ExprKind::kColumnRef) {
    return static_cast<const sql::ColumnRef&>(expr).column();
  }
  if (expr.kind() == ExprKind::kFunctionCall) {
    return ToLower(static_cast<const sql::FunctionCall&>(expr).name());
  }
  return "column" + std::to_string(position + 1);
}

/// Three-way row comparison by precomputed sort keys.
struct SortKeyLess {
  const std::vector<std::vector<Value>>* keys;
  const std::vector<bool>* desc;

  bool operator()(size_t a, size_t b) const {
    const auto& ka = (*keys)[a];
    const auto& kb = (*keys)[b];
    for (size_t i = 0; i < ka.size(); ++i) {
      int c = ka[i].Compare(kb[i]);
      if ((*desc)[i]) c = -c;
      if (c != 0) return c < 0;
    }
    return a < b;  // stable tiebreak
  }
};

/// Hashable group key.
struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& o) const {
    if (values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 0x67726f7570ULL;
    for (const Value& v : k.values) h = HashMix(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

/// Whole-row equality key for DISTINCT / set operations.
std::string RowFingerprint(const Row& row) {
  std::string fp;
  for (const Value& v : row) {
    fp += v.ToString();
    fp.push_back('\x1f');
  }
  return fp;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::Execute(const sql::Statement& stmt) {
  LEGO_RETURN_IF_ERROR(CheckDepth());
  StatementType type = stmt.type();
  if (!db_->profile().Supports(type)) {
    return StatusOr<ResultSet>(Status::Unsupported(
        std::string(sql::StatementTypeName(type)) +
        " is not supported by dialect " + db_->profile().name));
  }
  LEGO_COV_KEYED(static_cast<int>(type));
  if (db_->session().in_transaction) {
    SetFeature(ExecFeature::kInTransaction);
  }
  switch (type) {
    case StatementType::kCreateTable:
      return ExecCreateTable(static_cast<const sql::CreateTableStmt&>(stmt));
    case StatementType::kCreateIndex:
      return ExecCreateIndex(static_cast<const sql::CreateIndexStmt&>(stmt));
    case StatementType::kCreateView:
      return ExecCreateView(static_cast<const sql::CreateViewStmt&>(stmt));
    case StatementType::kCreateTrigger:
      return ExecCreateTrigger(
          static_cast<const sql::CreateTriggerStmt&>(stmt));
    case StatementType::kCreateSequence:
      return ExecCreateSequence(
          static_cast<const sql::CreateSequenceStmt&>(stmt));
    case StatementType::kCreateRule:
      return ExecCreateRule(static_cast<const sql::CreateRuleStmt&>(stmt));
    case StatementType::kDropTable:
    case StatementType::kDropIndex:
    case StatementType::kDropView:
    case StatementType::kDropTrigger:
    case StatementType::kDropSequence:
    case StatementType::kDropRule:
      return ExecDrop(static_cast<const sql::DropStmt&>(stmt));
    case StatementType::kAlterTable:
      return ExecAlterTable(static_cast<const sql::AlterTableStmt&>(stmt));
    case StatementType::kTruncate:
      return ExecTruncate(static_cast<const sql::TruncateStmt&>(stmt));
    case StatementType::kInsert:
    case StatementType::kReplace:
      return ExecInsert(static_cast<const sql::InsertStmt&>(stmt));
    case StatementType::kUpdate:
      return ExecUpdate(static_cast<const sql::UpdateStmt&>(stmt));
    case StatementType::kDelete:
      return ExecDelete(static_cast<const sql::DeleteStmt&>(stmt));
    case StatementType::kCopy:
      return ExecCopy(static_cast<const sql::CopyStmt&>(stmt));
    case StatementType::kSelect:
      return ExecSelect(static_cast<const sql::SelectStmt&>(stmt));
    case StatementType::kValues:
      return ExecValues(static_cast<const sql::ValuesStmt&>(stmt));
    case StatementType::kWith:
      return ExecWith(static_cast<const sql::WithStmt&>(stmt));
    case StatementType::kGrant:
      return ExecGrant(static_cast<const sql::GrantStmt&>(stmt));
    case StatementType::kRevoke:
      return ExecRevoke(static_cast<const sql::RevokeStmt&>(stmt));
    case StatementType::kCreateUser:
      return ExecCreateUser(static_cast<const sql::CreateUserStmt&>(stmt));
    case StatementType::kDropUser:
      return ExecDropUser(static_cast<const sql::DropUserStmt&>(stmt));
    case StatementType::kBegin:
    case StatementType::kCommit:
    case StatementType::kRollback:
    case StatementType::kSavepoint:
    case StatementType::kRelease:
    case StatementType::kRollbackTo:
      return ExecTcl(stmt);
    case StatementType::kPragma:
    case StatementType::kSet:
      return ExecPragma(static_cast<const sql::PragmaStmt&>(stmt));
    case StatementType::kShow:
      return ExecShow(static_cast<const sql::ShowStmt&>(stmt));
    case StatementType::kExplain:
      return ExecExplain(static_cast<const sql::ExplainStmt&>(stmt));
    case StatementType::kAnalyze:
    case StatementType::kVacuum:
    case StatementType::kReindex:
      return ExecMaintenance(static_cast<const sql::MaintenanceStmt&>(stmt));
    case StatementType::kCheckpoint:
      return ExecCheckpoint();
    case StatementType::kNotify:
      return ExecNotify(static_cast<const sql::NotifyStmt&>(stmt));
    case StatementType::kListen: {
      LEGO_COV();
      const auto& named = static_cast<const sql::NamedStmt&>(stmt);
      db_->session().listening.insert(named.name());
      return ResultSet{};
    }
    case StatementType::kUnlisten: {
      LEGO_COV();
      const auto& named = static_cast<const sql::NamedStmt&>(stmt);
      db_->session().listening.erase(named.name());
      return ResultSet{};
    }
    case StatementType::kComment:
      return ExecComment(static_cast<const sql::CommentStmt&>(stmt));
    case StatementType::kAlterSystem:
      return ExecAlterSystem(static_cast<const sql::AlterSystemStmt&>(stmt));
    case StatementType::kDiscard:
      return ExecDiscard(static_cast<const sql::DiscardStmt&>(stmt));
    default:
      return StatusOr<ResultSet>(
          Status::Internal("unhandled statement type"));
  }
}

void Executor::TraceSubStatement(sql::StatementType type) {
  db_->session().type_trace.push_back(type);
  db_->session().feature_trace.push_back(features_);
}

Status Executor::CheckPrivilege(const std::string& table, PrivMask mask) {
  const std::string& user = db_->session().current_user;
  if (!db_->catalog().HasPrivilege(user, table, mask)) {
    LEGO_COV();
    return Status::PermissionDenied("user '" + user +
                                    "' lacks privilege on '" + table + "'");
  }
  return Status::OK();
}

Status Executor::RunNested(const sql::Statement& stmt) {
  ++depth_;
  auto result = Execute(stmt);
  --depth_;
  return result.ok() ? Status::OK() : result.status();
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecCreateTable(
    const sql::CreateTableStmt& stmt) {
  if (db_->catalog().HasTable(stmt.name) || db_->catalog().HasView(stmt.name)) {
    if (stmt.if_not_exists) {
      LEGO_COV();
      return ResultSet{};
    }
    return StatusOr<ResultSet>(Status::AlreadyExists(
        "relation '" + stmt.name + "' already exists"));
  }
  if (stmt.columns.empty()) {
    return StatusOr<ResultSet>(
        Status::SemanticError("table must have at least one column"));
  }
  TableInfo table;
  table.name = stmt.name;
  table.temporary = stmt.temporary;
  if (stmt.temporary) SetFeature(ExecFeature::kTemporaryTable);
  std::set<std::string> seen;
  int pk_count = 0;
  for (const sql::ColumnDef& def : stmt.columns) {
    if (!seen.insert(def.name).second) {
      return StatusOr<ResultSet>(Status::SemanticError(
          "duplicate column name '" + def.name + "'"));
    }
    ColumnInfo col;
    col.name = def.name;
    col.type = FromSqlType(def.type);
    col.primary_key = def.primary_key;
    col.unique = def.unique || def.primary_key;
    col.not_null = def.not_null || def.primary_key;
    if (def.default_value != nullptr) {
      col.default_value =
          std::shared_ptr<const Expr>(def.default_value->Clone().release());
    }
    pk_count += def.primary_key ? 1 : 0;
    table.schema.columns.push_back(std::move(col));
  }
  if (pk_count > 1) {
    return StatusOr<ResultSet>(
        Status::SemanticError("multiple primary keys are not supported"));
  }
  LEGO_COV();
  std::string table_name = table.name;
  LEGO_RETURN_IF_ERROR(db_->catalog().CreateTable(std::move(table)));
  // Auto-create unique indexes backing PRIMARY KEY / UNIQUE columns.
  for (const sql::ColumnDef& def : stmt.columns) {
    if (!def.primary_key && !def.unique) continue;
    IndexInfo index;
    index.name = table_name + "_" + def.name + "_key";
    index.table = table_name;
    index.columns = {def.name};
    index.unique = true;
    if (db_->catalog().HasIndex(index.name)) continue;
    LEGO_RETURN_IF_ERROR(db_->catalog().CreateIndex(std::move(index)));
  }
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateIndex(
    const sql::CreateIndexStmt& stmt) {
  if (db_->catalog().HasIndex(stmt.name)) {
    if (stmt.if_not_exists) return ResultSet{};
    return StatusOr<ResultSet>(
        Status::AlreadyExists("index '" + stmt.name + "' already exists"));
  }
  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  for (const std::string& col : stmt.columns) {
    if (table->schema.FindColumn(col) < 0) {
      return StatusOr<ResultSet>(Status::SemanticError(
          "column '" + col + "' does not exist in '" + stmt.table + "'"));
    }
  }
  if (stmt.columns.empty()) {
    return StatusOr<ResultSet>(
        Status::SemanticError("index needs at least one column"));
  }
  IndexInfo index;
  index.name = stmt.name;
  index.table = stmt.table;
  index.columns = stmt.columns;
  index.unique = stmt.unique;
  // Build the tree over existing rows (keyed on the first column).
  int key_col = table->schema.FindColumn(stmt.columns[0]);
  Status violation = Status::OK();
  table->heap.Scan([&](RowId rid, const Row& row) {
    const Value& key = row[static_cast<size_t>(key_col)];
    if (index.unique && !key.is_null() && index.tree.Contains(key)) {
      violation = Status::ConstraintViolation(
          "could not create unique index '" + stmt.name +
          "': duplicate key " + key.ToString());
      return false;
    }
    index.tree.Insert(key, rid);
    return true;
  });
  LEGO_RETURN_IF_ERROR(violation);
  LEGO_COV();
  return db_->catalog().CreateIndex(std::move(index)).ok()
             ? StatusOr<ResultSet>(ResultSet{})
             : StatusOr<ResultSet>(Status::Internal("index creation raced"));
}

StatusOr<ResultSet> Executor::ExecCreateView(const sql::CreateViewStmt& stmt) {
  // Validate the defining query by planning it against the current catalog.
  Planner planner(&db_->catalog(), &db_->profile(), &cte_bindings_);
  LEGO_ASSIGN_OR_RETURN(SelectPlan plan, planner.PlanSelect(*stmt.select));
  (void)plan;
  ViewInfo view;
  view.name = stmt.name;
  view.select = std::shared_ptr<const sql::SelectStmt>(
      stmt.select->CloneSelect().release());
  LEGO_COV();
  LEGO_RETURN_IF_ERROR(
      db_->catalog().CreateView(std::move(view), stmt.or_replace));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateTrigger(
    const sql::CreateTriggerStmt& stmt) {
  if (db_->catalog().HasTrigger(stmt.name)) {
    return StatusOr<ResultSet>(
        Status::AlreadyExists("trigger '" + stmt.name + "' already exists"));
  }
  if (!db_->catalog().HasTable(stmt.table)) {
    return StatusOr<ResultSet>(
        Status::NotFound("table '" + stmt.table + "' does not exist"));
  }
  // Trigger bodies must themselves be supported statements.
  if (!db_->profile().Supports(stmt.body->type())) {
    return StatusOr<ResultSet>(Status::Unsupported(
        "trigger body statement type not supported by dialect"));
  }
  TriggerInfo trigger;
  trigger.name = stmt.name;
  trigger.table = stmt.table;
  trigger.timing = stmt.timing;
  trigger.event = stmt.event;
  trigger.for_each_row = stmt.for_each_row;
  trigger.body =
      std::shared_ptr<const sql::Statement>(stmt.body->Clone().release());
  LEGO_COV();
  LEGO_RETURN_IF_ERROR(db_->catalog().CreateTrigger(std::move(trigger)));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateSequence(
    const sql::CreateSequenceStmt& stmt) {
  if (db_->catalog().HasSequence(stmt.name)) {
    if (stmt.if_not_exists) return ResultSet{};
    return StatusOr<ResultSet>(
        Status::AlreadyExists("sequence '" + stmt.name + "' already exists"));
  }
  if (stmt.increment == 0) {
    return StatusOr<ResultSet>(
        Status::SemanticError("sequence increment must not be zero"));
  }
  SequenceInfo seq;
  seq.name = stmt.name;
  seq.start = stmt.start;
  seq.increment = stmt.increment;
  LEGO_COV();
  LEGO_RETURN_IF_ERROR(db_->catalog().CreateSequence(std::move(seq)));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateRule(const sql::CreateRuleStmt& stmt) {
  if (!db_->profile().supports_rules) {
    return StatusOr<ResultSet>(
        Status::Unsupported("rules are not supported by this dialect"));
  }
  RuleInfo rule;
  rule.name = stmt.name;
  rule.table = stmt.table;
  rule.event = stmt.event;
  rule.instead = stmt.instead;
  if (stmt.action != nullptr) {
    if (!db_->profile().Supports(stmt.action->type())) {
      return StatusOr<ResultSet>(Status::Unsupported(
          "rule action statement type not supported by dialect"));
    }
    rule.action =
        std::shared_ptr<const sql::Statement>(stmt.action->Clone().release());
  }
  LEGO_COV();
  StatementType action_type =
      stmt.action != nullptr ? stmt.action->type() : StatementType::kNumTypes;
  LEGO_RETURN_IF_ERROR(
      db_->catalog().CreateRule(std::move(rule), stmt.or_replace));
  // Defining a rule registers its action in the execution trace — the
  // paper's case study counts the NOTIFY inside CREATE RULE as part of the
  // SQL Type Sequence.
  if (action_type != StatementType::kNumTypes) {
    TraceSubStatement(action_type);
  }
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecDrop(const sql::DropStmt& stmt) {
  Status status;
  switch (stmt.type()) {
    case StatementType::kDropTable:
      status = db_->catalog().DropTable(stmt.name());
      break;
    case StatementType::kDropIndex:
      status = db_->catalog().DropIndex(stmt.name());
      break;
    case StatementType::kDropView:
      status = db_->catalog().DropView(stmt.name());
      break;
    case StatementType::kDropTrigger:
      status = db_->catalog().DropTrigger(stmt.name());
      break;
    case StatementType::kDropSequence:
      status = db_->catalog().DropSequence(stmt.name());
      break;
    case StatementType::kDropRule:
      status = db_->catalog().DropRule(stmt.name());
      break;
    default:
      status = Status::Internal("bad drop type");
      break;
  }
  if (!status.ok() && status.code() == StatusCode::kNotFound &&
      stmt.if_exists()) {
    LEGO_COV();
    return ResultSet{};
  }
  LEGO_RETURN_IF_ERROR(status);
  LEGO_COV_KEYED(static_cast<int>(stmt.type()));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecAlterTable(const sql::AlterTableStmt& stmt) {
  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  switch (stmt.action) {
    case sql::AlterAction::kAddColumn: {
      LEGO_COV();
      if (table->schema.FindColumn(stmt.new_column.name) >= 0) {
        return StatusOr<ResultSet>(Status::AlreadyExists(
            "column '" + stmt.new_column.name + "' already exists"));
      }
      ColumnInfo col;
      col.name = stmt.new_column.name;
      col.type = FromSqlType(stmt.new_column.type);
      col.not_null = stmt.new_column.not_null;
      col.unique = stmt.new_column.unique;
      if (stmt.new_column.default_value != nullptr) {
        col.default_value = std::shared_ptr<const Expr>(
            stmt.new_column.default_value->Clone().release());
      }
      Value fill = Value::Null();
      if (col.default_value != nullptr) {
        EvalContext ctx;
        ctx.hooks = this;
        LEGO_ASSIGN_OR_RETURN(fill, Evaluator::Eval(*col.default_value, ctx));
        fill = fill.CastTo(col.type);
      }
      if (col.not_null && fill.is_null() && table->heap.LiveRowCount() > 0) {
        return StatusOr<ResultSet>(Status::SemanticError(
            "cannot add NOT NULL column without default to non-empty table"));
      }
      table->schema.columns.push_back(col);
      std::vector<std::pair<RowId, Row>> updates;
      table->heap.Scan([&](RowId rid, const Row& row) {
        Row wider = row;
        wider.push_back(fill);
        updates.emplace_back(rid, std::move(wider));
        return true;
      });
      for (auto& [rid, row] : updates) table->heap.Update(rid, std::move(row));
      return ResultSet{};
    }
    case sql::AlterAction::kDropColumn: {
      LEGO_COV();
      int idx = table->schema.FindColumn(stmt.old_name);
      if (idx < 0) {
        return StatusOr<ResultSet>(Status::NotFound(
            "column '" + stmt.old_name + "' does not exist"));
      }
      if (table->schema.columns.size() == 1) {
        return StatusOr<ResultSet>(Status::SemanticError(
            "cannot drop the only column of a table"));
      }
      // Drop indexes keyed on the column.
      std::vector<std::string> doomed;
      for (IndexInfo* index : db_->catalog().IndexesOf(stmt.table)) {
        if (!index->columns.empty() && index->columns[0] == stmt.old_name) {
          doomed.push_back(index->name);
        }
      }
      for (const std::string& name : doomed) {
        LEGO_RETURN_IF_ERROR(db_->catalog().DropIndex(name));
      }
      table->schema.columns.erase(table->schema.columns.begin() + idx);
      std::vector<std::pair<RowId, Row>> updates;
      table->heap.Scan([&](RowId rid, const Row& row) {
        Row narrower = row;
        narrower.erase(narrower.begin() + idx);
        updates.emplace_back(rid, std::move(narrower));
        return true;
      });
      for (auto& [rid, row] : updates) table->heap.Update(rid, std::move(row));
      return ResultSet{};
    }
    case sql::AlterAction::kRenameColumn: {
      LEGO_COV();
      int idx = table->schema.FindColumn(stmt.old_name);
      if (idx < 0) {
        return StatusOr<ResultSet>(Status::NotFound(
            "column '" + stmt.old_name + "' does not exist"));
      }
      if (table->schema.FindColumn(stmt.new_name) >= 0) {
        return StatusOr<ResultSet>(Status::AlreadyExists(
            "column '" + stmt.new_name + "' already exists"));
      }
      table->schema.columns[static_cast<size_t>(idx)].name = stmt.new_name;
      for (IndexInfo* index : db_->catalog().IndexesOf(stmt.table)) {
        for (std::string& c : index->columns) {
          if (c == stmt.old_name) c = stmt.new_name;
        }
      }
      return ResultSet{};
    }
    case sql::AlterAction::kRenameTable: {
      LEGO_COV();
      LEGO_RETURN_IF_ERROR(
          db_->catalog().RenameTable(stmt.table, stmt.new_name));
      return ResultSet{};
    }
  }
  return StatusOr<ResultSet>(Status::Internal("bad alter action"));
}

StatusOr<ResultSet> Executor::ExecTruncate(const sql::TruncateStmt& stmt) {
  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  LEGO_RETURN_IF_ERROR(CheckPrivilege(stmt.table, kPrivDelete));
  LEGO_COV();
  table->heap.Clear();
  for (IndexInfo* index : db_->catalog().IndexesOf(stmt.table)) {
    index->tree.Clear();
  }
  return ResultSet{};
}

// ---------------------------------------------------------------------------
// DML helpers
// ---------------------------------------------------------------------------

StatusOr<Row> Executor::BuildInsertRow(const TableInfo& table,
                                       const std::vector<std::string>& columns,
                                       const std::vector<Value>& values) {
  const size_t width = table.schema.columns.size();
  Row row(width, Value::Null());
  std::vector<bool> provided(width, false);

  if (columns.empty()) {
    if (values.size() > width) {
      return StatusOr<Row>(Status::SemanticError(
          "too many values for table '" + table.name + "'"));
    }
    for (size_t i = 0; i < values.size(); ++i) {
      row[i] = values[i];
      provided[i] = true;
    }
  } else {
    if (columns.size() != values.size()) {
      return StatusOr<Row>(Status::SemanticError(
          "column list and VALUES count mismatch"));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      int idx = table.schema.FindColumn(columns[i]);
      if (idx < 0) {
        return StatusOr<Row>(Status::SemanticError(
            "column '" + columns[i] + "' does not exist in '" + table.name +
            "'"));
      }
      if (provided[static_cast<size_t>(idx)]) {
        return StatusOr<Row>(Status::SemanticError(
            "column '" + columns[i] + "' specified twice"));
      }
      row[static_cast<size_t>(idx)] = values[i];
      provided[static_cast<size_t>(idx)] = true;
    }
  }

  // Fill defaults, coerce to declared types, enforce NOT NULL.
  for (size_t i = 0; i < width; ++i) {
    const ColumnInfo& col = table.schema.columns[i];
    if (!provided[i] && col.default_value != nullptr) {
      LEGO_COV();
      EvalContext ctx;
      ctx.hooks = this;
      LEGO_ASSIGN_OR_RETURN(row[i], Evaluator::Eval(*col.default_value, ctx));
    }
    if (!row[i].is_null()) {
      row[i] = row[i].CastTo(col.type);
    }
    if (col.not_null && row[i].is_null()) {
      return StatusOr<Row>(Status::ConstraintViolation(
          "null value in column '" + col.name + "' violates NOT NULL"));
    }
  }
  return row;
}

Status Executor::CheckConstraints(TableInfo* table, const Row& row,
                                  const RowId* ignore_rid) {
  for (IndexInfo* index : db_->catalog().IndexesOf(table->name)) {
    if (!index->unique || index->columns.empty()) continue;
    int col = table->schema.FindColumn(index->columns[0]);
    if (col < 0) continue;
    const Value& key = row[static_cast<size_t>(col)];
    if (key.is_null()) continue;  // SQL: NULLs never conflict
    for (RowId rid : index->tree.Find(key)) {
      if (ignore_rid != nullptr && rid == *ignore_rid) continue;
      LEGO_COV();
      return Status::ConstraintViolation(
          "duplicate key " + key.ToString() + " violates unique index '" +
          index->name + "'");
    }
  }
  return Status::OK();
}

Status Executor::IndexInsert(TableInfo* table, const Row& row, RowId rid) {
  for (IndexInfo* index : db_->catalog().IndexesOf(table->name)) {
    if (index->columns.empty()) continue;
    int col = table->schema.FindColumn(index->columns[0]);
    if (col < 0) continue;
    index->tree.Insert(row[static_cast<size_t>(col)], rid);
  }
  return Status::OK();
}

Status Executor::IndexErase(TableInfo* table, const Row& row, RowId rid) {
  for (IndexInfo* index : db_->catalog().IndexesOf(table->name)) {
    if (index->columns.empty()) continue;
    int col = table->schema.FindColumn(index->columns[0]);
    if (col < 0) continue;
    index->tree.Erase(row[static_cast<size_t>(col)], rid);
  }
  return Status::OK();
}

Status Executor::FireTriggers(const std::string& table,
                              sql::TriggerEvent event,
                              sql::TriggerTiming timing, int64_t affected) {
  auto triggers = db_->catalog().TriggersFor(table, event, timing);
  if (triggers.empty()) return Status::OK();
  SetFeature(ExecFeature::kTriggerFired);
  for (const TriggerInfo* trigger : triggers) {
    int64_t firings = trigger->for_each_row ? affected : (affected > 0 ? 1 : 0);
    for (int64_t i = 0; i < firings; ++i) {
      if (++trigger_firings_ > kMaxTriggerFirings) {
        LEGO_COV();
        return Status::ExecutionError("trigger firing limit exceeded");
      }
      LEGO_COV();
      TraceSubStatement(trigger->body->type());
      LEGO_RETURN_IF_ERROR(RunNested(*trigger->body));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DML statements
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecInsert(const sql::InsertStmt& stmt) {
  // Chaos site on the row-materialization path: a fired failpoint models an
  // allocation failure as a statement-level error, not a session death.
  if (LEGO_FAILPOINT("minidb.insert_alloc")) {
    return Status::ExecutionError("chaos: simulated allocation failure");
  }
  // An INSTEAD rule rewrites the whole statement (the paper's case-study
  // path: a DML inside WITH being replaced by a NOTIFY).
  const RuleInfo* rule =
      db_->catalog().RuleFor(stmt.table, sql::TriggerEvent::kInsert);
  if (rule != nullptr) {
    LEGO_COV();
    SetFeature(ExecFeature::kRuleRewrite);
    if (rule->action == nullptr) return ResultSet{};  // DO INSTEAD NOTHING
    TraceSubStatement(rule->action->type());
    LEGO_RETURN_IF_ERROR(RunNested(*rule->action));
    return ResultSet{};
  }

  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  LEGO_RETURN_IF_ERROR(CheckPrivilege(stmt.table, kPrivInsert));

  // Gather source rows: literal VALUES rows or a SELECT.
  std::vector<std::vector<Value>> source_rows;
  if (stmt.select != nullptr) {
    LEGO_COV();
    SetFeature(ExecFeature::kSubquery);
    LEGO_ASSIGN_OR_RETURN(Relation rel, EvalSelect(*stmt.select, nullptr));
    for (Row& r : rel.rows) source_rows.push_back(std::move(r));
  } else {
    EvalContext ctx;
    ctx.runner = this;
    ctx.hooks = this;
    for (const auto& exprs : stmt.rows) {
      std::vector<Value> vals;
      vals.reserve(exprs.size());
      for (const auto& e : exprs) {
        LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*e, ctx));
        vals.push_back(std::move(v));
      }
      source_rows.push_back(std::move(vals));
    }
  }

  ResultSet result;
  for (const auto& vals : source_rows) {
    auto row_or = BuildInsertRow(*table, stmt.columns, vals);
    if (!row_or.ok()) {
      if (stmt.or_ignore) {
        LEGO_COV();
        continue;
      }
      return row_or.status();
    }
    Row row = std::move(*row_or);

    Status constraint = CheckConstraints(table, row, nullptr);
    if (!constraint.ok()) {
      if (stmt.replace) {
        LEGO_COV();
        // REPLACE semantics: delete conflicting rows, then insert.
        for (IndexInfo* index : db_->catalog().IndexesOf(table->name)) {
          if (!index->unique || index->columns.empty()) continue;
          int col = table->schema.FindColumn(index->columns[0]);
          if (col < 0) continue;
          const Value& key = row[static_cast<size_t>(col)];
          if (key.is_null()) continue;
          for (RowId rid : index->tree.Find(key)) {
            const Row* victim = table->heap.Get(rid);
            if (victim == nullptr) continue;
            Row copy = *victim;
            IndexErase(table, copy, rid);
            table->heap.Delete(rid);
          }
        }
      } else if (stmt.or_ignore) {
        LEGO_COV();
        continue;
      } else {
        return StatusOr<ResultSet>(constraint);
      }
    }

    LEGO_RETURN_IF_ERROR(FireTriggers(stmt.table, sql::TriggerEvent::kInsert,
                                      sql::TriggerTiming::kBefore, 1));
    // Re-resolve: a BEFORE trigger may have mutated the table.
    LEGO_ASSIGN_OR_RETURN(table, db_->catalog().GetTable(stmt.table));
    RowId rid = table->heap.Insert(row);
    IndexInsert(table, row, rid);
    ++result.affected_rows;
    LEGO_RETURN_IF_ERROR(FireTriggers(stmt.table, sql::TriggerEvent::kInsert,
                                      sql::TriggerTiming::kAfter, 1));
    LEGO_ASSIGN_OR_RETURN(table, db_->catalog().GetTable(stmt.table));
  }
  LEGO_COV();
  return result;
}

StatusOr<ResultSet> Executor::ExecUpdate(const sql::UpdateStmt& stmt) {
  const RuleInfo* rule =
      db_->catalog().RuleFor(stmt.table, sql::TriggerEvent::kUpdate);
  if (rule != nullptr) {
    LEGO_COV();
    SetFeature(ExecFeature::kRuleRewrite);
    if (rule->action == nullptr) return ResultSet{};
    TraceSubStatement(rule->action->type());
    LEGO_RETURN_IF_ERROR(RunNested(*rule->action));
    return ResultSet{};
  }

  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  LEGO_RETURN_IF_ERROR(CheckPrivilege(stmt.table, kPrivUpdate));

  // Validate assignment targets.
  std::vector<int> target_cols;
  for (const auto& [col, expr] : stmt.assignments) {
    int idx = table->schema.FindColumn(col);
    if (idx < 0) {
      return StatusOr<ResultSet>(Status::SemanticError(
          "column '" + col + "' does not exist in '" + stmt.table + "'"));
    }
    target_cols.push_back(idx);
  }

  // Build the scan schema for WHERE/SET evaluation.
  Relation schema_rel;
  for (const ColumnInfo& col : table->schema.columns) {
    schema_rel.columns.push_back({stmt.table, col.name});
  }

  if (stmt.where != nullptr && ContainsSubquery(*stmt.where)) {
    SetFeature(ExecFeature::kSubquery);
  }

  // Phase 1: collect matching rows (avoid mutating under the scan).
  struct Pending {
    RowId rid;
    Row old_row;
    Row new_row;
  };
  std::vector<Pending> pending;
  Status scan_status = Status::OK();
  table->heap.Scan([&](RowId rid, const Row& row) {
    EvalContext ctx;
    ctx.rel = &schema_rel;
    ctx.row = &row;
    ctx.runner = this;
    ctx.hooks = this;
    if (stmt.where != nullptr) {
      auto pred = Evaluator::EvalPredicate(*stmt.where, ctx);
      if (!pred.ok()) {
        scan_status = pred.status();
        return false;
      }
      if (*pred != Tribool::kTrue) return true;
    }
    Pending p;
    p.rid = rid;
    p.old_row = row;
    p.new_row = row;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      auto v = Evaluator::Eval(*stmt.assignments[i].second, ctx);
      if (!v.ok()) {
        scan_status = v.status();
        return false;
      }
      size_t idx = static_cast<size_t>(target_cols[i]);
      Value nv = std::move(*v);
      if (!nv.is_null()) nv = nv.CastTo(table->schema.columns[idx].type);
      p.new_row[idx] = std::move(nv);
    }
    pending.push_back(std::move(p));
    return true;
  });
  LEGO_RETURN_IF_ERROR(scan_status);

  // Phase 2: constraint checks then apply.
  for (const Pending& p : pending) {
    for (size_t i = 0; i < table->schema.columns.size(); ++i) {
      const ColumnInfo& col = table->schema.columns[i];
      if (col.not_null && p.new_row[i].is_null()) {
        return StatusOr<ResultSet>(Status::ConstraintViolation(
            "null value in column '" + col.name + "' violates NOT NULL"));
      }
    }
    LEGO_RETURN_IF_ERROR(CheckConstraints(table, p.new_row, &p.rid));
  }
  for (Pending& p : pending) {
    IndexErase(table, p.old_row, p.rid);
    table->heap.Update(p.rid, p.new_row);
    IndexInsert(table, p.new_row, p.rid);
  }
  LEGO_COV();
  ResultSet result;
  result.affected_rows = static_cast<int64_t>(pending.size());
  LEGO_RETURN_IF_ERROR(FireTriggers(stmt.table, sql::TriggerEvent::kUpdate,
                                    sql::TriggerTiming::kAfter,
                                    result.affected_rows));
  return result;
}

StatusOr<ResultSet> Executor::ExecDelete(const sql::DeleteStmt& stmt) {
  const RuleInfo* rule =
      db_->catalog().RuleFor(stmt.table, sql::TriggerEvent::kDelete);
  if (rule != nullptr) {
    LEGO_COV();
    SetFeature(ExecFeature::kRuleRewrite);
    if (rule->action == nullptr) return ResultSet{};
    TraceSubStatement(rule->action->type());
    LEGO_RETURN_IF_ERROR(RunNested(*rule->action));
    return ResultSet{};
  }

  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  LEGO_RETURN_IF_ERROR(CheckPrivilege(stmt.table, kPrivDelete));

  Relation schema_rel;
  for (const ColumnInfo& col : table->schema.columns) {
    schema_rel.columns.push_back({stmt.table, col.name});
  }
  if (stmt.where != nullptr && ContainsSubquery(*stmt.where)) {
    SetFeature(ExecFeature::kSubquery);
  }

  std::vector<std::pair<RowId, Row>> victims;
  Status scan_status = Status::OK();
  table->heap.Scan([&](RowId rid, const Row& row) {
    if (stmt.where != nullptr) {
      EvalContext ctx;
      ctx.rel = &schema_rel;
      ctx.row = &row;
      ctx.runner = this;
      ctx.hooks = this;
      auto pred = Evaluator::EvalPredicate(*stmt.where, ctx);
      if (!pred.ok()) {
        scan_status = pred.status();
        return false;
      }
      if (*pred != Tribool::kTrue) return true;
    }
    victims.emplace_back(rid, row);
    return true;
  });
  LEGO_RETURN_IF_ERROR(scan_status);

  for (auto& [rid, row] : victims) {
    IndexErase(table, row, rid);
    table->heap.Delete(rid);
  }
  LEGO_COV();
  if (table->heap.LiveRowCount() == 0) SetFeature(ExecFeature::kEmptyInput);
  ResultSet result;
  result.affected_rows = static_cast<int64_t>(victims.size());
  LEGO_RETURN_IF_ERROR(FireTriggers(stmt.table, sql::TriggerEvent::kDelete,
                                    sql::TriggerTiming::kAfter,
                                    result.affected_rows));
  return result;
}

StatusOr<ResultSet> Executor::ExecCopy(const sql::CopyStmt& stmt) {
  if (!db_->profile().supports_copy) {
    return StatusOr<ResultSet>(
        Status::Unsupported("COPY is not supported by this dialect"));
  }
  if (!stmt.to_stdout) {
    return StatusOr<ResultSet>(
        Status::Unsupported("COPY FROM STDIN is not supported"));
  }
  Relation rel;
  if (stmt.query != nullptr) {
    LEGO_COV();
    SetFeature(ExecFeature::kSubquery);
    LEGO_ASSIGN_OR_RETURN(rel, EvalSelect(*stmt.query, nullptr));
  } else {
    LEGO_COV();
    LEGO_ASSIGN_OR_RETURN(const TableInfo* table,
                          db_->catalog().GetTable(stmt.table));
    LEGO_RETURN_IF_ERROR(CheckPrivilege(stmt.table, kPrivSelect));
    for (const ColumnInfo& col : table->schema.columns) {
      rel.columns.push_back({stmt.table, col.name});
    }
    table->heap.Scan([&](RowId, const Row& row) {
      rel.rows.push_back(row);
      return true;
    });
  }
  ResultSet result;
  const char* sep = stmt.csv ? "," : "\t";
  if (stmt.header) {
    LEGO_COV();
    std::vector<std::string> names;
    names.reserve(rel.columns.size());
    for (const RelColumn& c : rel.columns) names.push_back(c.name);
    result.notes.push_back(Join(names, sep));
  }
  for (const Row& row : rel.rows) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const Value& v : row) fields.push_back(v.ToText());
    result.notes.push_back(Join(fields, sep));
  }
  result.affected_rows = static_cast<int64_t>(rel.rows.size());
  return result;
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecSelect(const sql::SelectStmt& stmt) {
  // Chaos site on the result-set path (see ExecInsert).
  if (LEGO_FAILPOINT("minidb.select_alloc")) {
    return Status::ExecutionError("chaos: simulated allocation failure");
  }
  LEGO_ASSIGN_OR_RETURN(Relation rel, EvalSelect(stmt, nullptr));
  ResultSet result;
  for (const RelColumn& col : rel.columns) result.column_names.push_back(col.name);
  result.rows = std::move(rel.rows);
  return result;
}

StatusOr<Relation> Executor::RunSubquery(const sql::SelectStmt& stmt,
                                         const EvalContext* outer) {
  ++depth_;
  LEGO_RETURN_IF_ERROR(CheckDepth());
  SetFeature(ExecFeature::kSubquery);
  auto rel = EvalSelect(stmt, outer);
  --depth_;
  return rel;
}

StatusOr<Relation> Executor::EvalSelect(const sql::SelectStmt& stmt,
                                        const EvalContext* outer) {
  LEGO_ASSIGN_OR_RETURN(Relation rel,
                        EvalSelectCore(stmt.core, stmt, true, outer));

  // Compound arms (UNION/EXCEPT/INTERSECT).
  for (const auto& [kind, core] : stmt.compounds) {
    if (!db_->profile().supports_set_operations) {
      return StatusOr<Relation>(Status::Unsupported(
          "set operations are not supported by this dialect"));
    }
    SetFeature(ExecFeature::kSetOperation);
    LEGO_ASSIGN_OR_RETURN(Relation arm,
                          EvalSelectCore(core, stmt, false, outer));
    if (arm.columns.size() != rel.columns.size()) {
      return StatusOr<Relation>(Status::SemanticError(
          "set operation arms have different column counts"));
    }
    switch (kind) {
      case sql::SetOpKind::kUnionAll: {
        LEGO_COV();
        for (Row& r : arm.rows) rel.rows.push_back(std::move(r));
        break;
      }
      case sql::SetOpKind::kUnion: {
        LEGO_COV();
        std::set<std::string> seen;
        std::vector<Row> merged;
        for (auto* source : {&rel.rows, &arm.rows}) {
          for (Row& r : *source) {
            if (seen.insert(RowFingerprint(r)).second) {
              merged.push_back(std::move(r));
            }
          }
        }
        rel.rows = std::move(merged);
        break;
      }
      case sql::SetOpKind::kExcept: {
        LEGO_COV();
        std::set<std::string> removed;
        for (const Row& r : arm.rows) removed.insert(RowFingerprint(r));
        std::set<std::string> seen;
        std::vector<Row> kept;
        for (Row& r : rel.rows) {
          std::string fp = RowFingerprint(r);
          if (removed.count(fp) || !seen.insert(fp).second) continue;
          kept.push_back(std::move(r));
        }
        rel.rows = std::move(kept);
        break;
      }
      case sql::SetOpKind::kIntersect: {
        LEGO_COV();
        std::set<std::string> other;
        for (const Row& r : arm.rows) other.insert(RowFingerprint(r));
        std::set<std::string> seen;
        std::vector<Row> kept;
        for (Row& r : rel.rows) {
          std::string fp = RowFingerprint(r);
          if (!other.count(fp) || !seen.insert(fp).second) continue;
          kept.push_back(std::move(r));
        }
        rel.rows = std::move(kept);
        break;
      }
    }
  }

  LEGO_RETURN_IF_ERROR(ApplyOrderByLimit(stmt, &rel, outer));
  return rel;
}

StatusOr<Relation> Executor::EvalSelectCore(const sql::SelectCore& core,
                                            const sql::SelectStmt& stmt,
                                            bool is_first_core,
                                            const EvalContext* outer) {
  (void)stmt;
  (void)is_first_core;
  if (core.items.empty()) {
    return StatusOr<Relation>(
        Status::SemanticError("SELECT list must not be empty"));
  }

  // Plan + materialize the FROM clause.
  Relation input;
  if (core.from != nullptr) {
    Planner planner(&db_->catalog(), &db_->profile(), &cte_bindings_);
    LEGO_ASSIGN_OR_RETURN(SelectPlan plan, planner.PlanCore(core));
    LEGO_ASSIGN_OR_RETURN(input, MaterializePlan(*plan.from, outer));
  } else {
    LEGO_COV();
    input.rows.emplace_back();  // one empty row: SELECT 1
  }

  // WHERE filter.
  if (core.where != nullptr) {
    if (ContainsSubquery(*core.where)) SetFeature(ExecFeature::kSubquery);
    std::vector<Row> kept;
    for (Row& row : input.rows) {
      EvalContext ctx;
      ctx.rel = &input;
      ctx.row = &row;
      ctx.outer = outer;
      ctx.runner = this;
      ctx.hooks = this;
      LEGO_ASSIGN_OR_RETURN(Tribool pred,
                            Evaluator::EvalPredicate(*core.where, ctx));
      if (pred == Tribool::kTrue) kept.push_back(std::move(row));
    }
    input.rows = std::move(kept);
  }
  if (input.rows.empty()) SetFeature(ExecFeature::kEmptyInput);

  // Aggregation path?
  std::vector<const sql::FunctionCall*> aggregates;
  for (const auto& item : core.items) CollectAggregates(*item.expr, &aggregates);
  if (core.having != nullptr) {
    CollectAggregates(*core.having, &aggregates);
    SetFeature(ExecFeature::kHaving);
  }
  if (!core.group_by.empty()) SetFeature(ExecFeature::kGroupBy);
  if (!aggregates.empty()) SetFeature(ExecFeature::kAggregate);

  Relation output;
  if (!aggregates.empty() || !core.group_by.empty()) {
    LEGO_ASSIGN_OR_RETURN(output,
                          ApplyAggregation(core, std::move(input), outer));
  } else {
    LEGO_ASSIGN_OR_RETURN(output, ApplyProjection(core, input, outer));
  }

  // DISTINCT.
  if (core.distinct) {
    LEGO_COV();
    SetFeature(ExecFeature::kDistinct);
    std::set<std::string> seen;
    std::vector<Row> kept;
    for (Row& r : output.rows) {
      if (seen.insert(RowFingerprint(r)).second) kept.push_back(std::move(r));
    }
    output.rows = std::move(kept);
  }
  return output;
}

StatusOr<Relation> Executor::MaterializePlan(const PlanNode& node,
                                             const EvalContext* outer) {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      LEGO_ASSIGN_OR_RETURN(const TableInfo* table,
                            db_->catalog().GetTable(node.table));
      LEGO_RETURN_IF_ERROR(CheckPrivilege(node.table, kPrivSelect));
      Relation rel;
      for (const ColumnInfo& col : table->schema.columns) {
        rel.columns.push_back({node.alias, col.name});
      }
      if (node.method == ScanMethod::kSeqScan) {
        LEGO_COV();
        table->heap.Scan([&](RowId, const Row& row) {
          rel.rows.push_back(row);
          return true;
        });
        return rel;
      }
      // Index scans.
      SetFeature(ExecFeature::kIndexScanUsed);
      auto index_or = db_->catalog().GetIndex(node.index_name);
      if (!index_or.ok()) return StatusOr<Relation>(index_or.status());
      IndexInfo* index = *index_or;
      // The tree orders keys by Value::Compare, which rank-separates bools,
      // numbers, and text, while the WHERE filter compares with CompareSql,
      // which coerces across those families. A probe from a different
      // family than the declared key type could therefore skip rows the
      // filter would keep; scan the heap instead (the filter re-applies).
      const int key_col =
          index->columns.empty()
              ? -1
              : table->schema.FindColumn(index->columns[0]);
      auto probe_compatible = [&](const Value& v) {
        if (key_col < 0) return false;
        if (v.is_null()) return true;  // NULL bound: filter rejects all rows
        auto family = [](ValueType t) {
          return t == ValueType::kReal ? ValueType::kInt : t;
        };
        return family(v.type()) ==
               family(table->schema.columns[static_cast<size_t>(key_col)].type);
      };
      auto scan_heap = [&] {
        table->heap.Scan([&](RowId, const Row& row) {
          rel.rows.push_back(row);
          return true;
        });
      };
      EvalContext ctx;
      ctx.runner = this;
      ctx.hooks = this;
      ctx.outer = outer;
      std::vector<RowId> rids;
      if (node.method == ScanMethod::kIndexEqual) {
        LEGO_COV();
        LEGO_ASSIGN_OR_RETURN(Value probe,
                              Evaluator::Eval(*node.eq_probe, ctx));
        if (!probe_compatible(probe)) {
          LEGO_COV();
          scan_heap();
          return rel;
        }
        rids = index->tree.Find(probe);
      } else {
        LEGO_COV();
        Value lo;
        Value hi;
        bool has_lo = node.range_lo != nullptr;
        bool has_hi = node.range_hi != nullptr;
        if (has_lo) {
          LEGO_ASSIGN_OR_RETURN(lo, Evaluator::Eval(*node.range_lo, ctx));
        }
        if (has_hi) {
          LEGO_ASSIGN_OR_RETURN(hi, Evaluator::Eval(*node.range_hi, ctx));
        }
        if ((has_lo && !probe_compatible(lo)) ||
            (has_hi && !probe_compatible(hi))) {
          LEGO_COV();
          scan_heap();
          return rel;
        }
        rids = index->tree.Range(has_lo ? &lo : nullptr, node.lo_inclusive,
                                 has_hi ? &hi : nullptr, node.hi_inclusive);
      }
      for (RowId rid : rids) {
        const Row* row = table->heap.Get(rid);
        if (row != nullptr) rel.rows.push_back(*row);
      }
      return rel;
    }
    case PlanNode::Kind::kCte: {
      LEGO_COV();
      SetFeature(ExecFeature::kCte);
      auto it = cte_bindings_.find(node.cte_name);
      if (it == cte_bindings_.end()) {
        return StatusOr<Relation>(
            Status::Internal("missing CTE binding " + node.cte_name));
      }
      Relation rel = it->second;
      for (RelColumn& col : rel.columns) col.qualifier = node.alias;
      return rel;
    }
    case PlanNode::Kind::kView: {
      LEGO_COV();
      SetFeature(ExecFeature::kViewExpansion);
      ++depth_;
      LEGO_RETURN_IF_ERROR(CheckDepth());
      auto rel_or = EvalSelect(*node.subselect, outer);
      --depth_;
      if (!rel_or.ok()) return rel_or;
      Relation rel = std::move(*rel_or);
      for (RelColumn& col : rel.columns) col.qualifier = node.alias;
      return rel;
    }
    case PlanNode::Kind::kSubquery: {
      LEGO_COV();
      SetFeature(ExecFeature::kSubquery);
      ++depth_;
      LEGO_RETURN_IF_ERROR(CheckDepth());
      auto rel_or = EvalSelect(*node.subselect, outer);
      --depth_;
      if (!rel_or.ok()) return rel_or;
      Relation rel = std::move(*rel_or);
      for (RelColumn& col : rel.columns) col.qualifier = node.alias;
      return rel;
    }
    case PlanNode::Kind::kJoin: {
      SetFeature(ExecFeature::kJoin);
      LEGO_ASSIGN_OR_RETURN(Relation left, MaterializePlan(*node.left, outer));
      LEGO_ASSIGN_OR_RETURN(Relation right,
                            MaterializePlan(*node.right, outer));
      Relation rel;
      rel.columns = left.columns;
      rel.columns.insert(rel.columns.end(), right.columns.begin(),
                         right.columns.end());

      auto eval_on = [&](const Row& joined) -> StatusOr<Tribool> {
        if (node.join_on == nullptr) return Tribool::kTrue;
        EvalContext ctx;
        ctx.rel = &rel;
        ctx.row = &joined;
        ctx.outer = outer;
        ctx.runner = this;
        ctx.hooks = this;
        return Evaluator::EvalPredicate(*node.join_on, ctx);
      };

      if (node.strategy == JoinStrategy::kHashJoin) {
        LEGO_COV();
        SetFeature(ExecFeature::kHashJoinUsed);
        // Decide which key belongs to which side by trial resolution.
        auto key_side = [&](const sql::Expr& key,
                            const Relation& side) -> bool {
          if (key.kind() != ExprKind::kColumnRef) return false;
          const auto& ref = static_cast<const sql::ColumnRef&>(key);
          bool ambiguous = false;
          return side.FindColumn(ref.table(), ref.column(), &ambiguous) >= 0;
        };
        const sql::Expr* lkey = node.hash_left_key;
        const sql::Expr* rkey = node.hash_right_key;
        if (!key_side(*lkey, left) && key_side(*rkey, left)) {
          std::swap(lkey, rkey);
        }
        if (!key_side(*lkey, left) || !key_side(*rkey, right)) {
          // Keys don't split across sides; fall back to nested loop.
          LEGO_COV();
          return NestedLoopJoin(node, left, right, rel, outer);
        }
        // Build hash table on the right side.
        std::unordered_multimap<uint64_t, size_t> ht;
        for (size_t i = 0; i < right.rows.size(); ++i) {
          EvalContext ctx;
          ctx.rel = &right;
          ctx.row = &right.rows[i];
          ctx.outer = outer;
          ctx.runner = this;
          ctx.hooks = this;
          LEGO_ASSIGN_OR_RETURN(Value key, Evaluator::Eval(*rkey, ctx));
          if (key.is_null()) continue;
          ht.emplace(key.Hash(), i);
        }
        for (const Row& lrow : left.rows) {
          EvalContext ctx;
          ctx.rel = &left;
          ctx.row = &lrow;
          ctx.outer = outer;
          ctx.runner = this;
          ctx.hooks = this;
          LEGO_ASSIGN_OR_RETURN(Value key, Evaluator::Eval(*lkey, ctx));
          bool matched = false;
          if (!key.is_null()) {
            auto [begin, end] = ht.equal_range(key.Hash());
            for (auto it = begin; it != end; ++it) {
              Row joined = lrow;
              const Row& rrow = right.rows[it->second];
              joined.insert(joined.end(), rrow.begin(), rrow.end());
              LEGO_ASSIGN_OR_RETURN(Tribool ok, eval_on(joined));
              if (ok == Tribool::kTrue) {
                matched = true;
                rel.rows.push_back(std::move(joined));
              }
            }
          }
          if (!matched && node.join_type == sql::JoinType::kLeft) {
            LEGO_COV();
            Row joined = lrow;
            joined.resize(rel.columns.size(), Value::Null());
            rel.rows.push_back(std::move(joined));
          }
        }
        return rel;
      }
      return NestedLoopJoin(node, left, right, rel, outer);
    }
  }
  return StatusOr<Relation>(Status::Internal("bad plan node"));
}

StatusOr<Relation> Executor::NestedLoopJoin(const PlanNode& node,
                                            const Relation& left,
                                            const Relation& right,
                                            Relation rel,
                                            const EvalContext* outer) {
  LEGO_COV();
  for (const Row& lrow : left.rows) {
    bool matched = false;
    for (const Row& rrow : right.rows) {
      Row joined = lrow;
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      Tribool ok = Tribool::kTrue;
      if (node.join_on != nullptr) {
        EvalContext ctx;
        ctx.rel = &rel;
        ctx.row = &joined;
        ctx.outer = outer;
        ctx.runner = this;
        ctx.hooks = this;
        LEGO_ASSIGN_OR_RETURN(ok,
                              Evaluator::EvalPredicate(*node.join_on, ctx));
      }
      if (ok == Tribool::kTrue) {
        matched = true;
        rel.rows.push_back(std::move(joined));
      }
    }
    if (!matched && node.join_type == sql::JoinType::kLeft) {
      LEGO_COV();
      Row joined = lrow;
      joined.resize(rel.columns.size(), Value::Null());
      rel.rows.push_back(std::move(joined));
    }
  }
  return rel;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

namespace {

/// Computes one aggregate over the rows of a group.
StatusOr<Value> ComputeAggregate(const sql::FunctionCall& fn,
                                 const Relation& input,
                                 const std::vector<size_t>& group_rows,
                                 Executor* exec, const EvalContext* outer) {
  const std::string& name = fn.name();
  if (fn.star_arg()) {
    if (name != "COUNT") {
      return StatusOr<Value>(
          Status::SemanticError(name + "(*) is not valid"));
    }
    return Value::Int(static_cast<int64_t>(group_rows.size()));
  }
  if (fn.args().size() != 1) {
    return StatusOr<Value>(Status::SemanticError(
        "aggregate " + name + " expects one argument"));
  }
  const sql::Expr& arg = *fn.args()[0];

  std::vector<Value> values;
  values.reserve(group_rows.size());
  for (size_t idx : group_rows) {
    EvalContext ctx;
    ctx.rel = &input;
    ctx.row = &input.rows[idx];
    ctx.outer = outer;
    ctx.runner = exec;
    ctx.hooks = exec;
    LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(arg, ctx));
    if (v.is_null()) continue;
    values.push_back(std::move(v));
  }
  if (fn.distinct()) {
    LEGO_COV();
    std::vector<Value> unique;
    for (Value& v : values) {
      bool dup = false;
      for (const Value& u : unique) {
        if (u.Compare(v) == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(v));
    }
    values = std::move(unique);
  }

  if (name == "COUNT") {
    return Value::Int(static_cast<int64_t>(values.size()));
  }
  if (name == "SUM" || name == "TOTAL") {
    if (values.empty()) {
      return name == "TOTAL" ? Value::Real(0.0) : Value::Null();
    }
    bool all_int = true;
    for (const Value& v : values) {
      if (v.type() == ValueType::kReal || v.type() == ValueType::kText) {
        all_int = false;
      }
    }
    if (all_int && name == "SUM") {
      uint64_t acc = 0;
      for (const Value& v : values) {
        acc += static_cast<uint64_t>(v.AsInt());
      }
      return Value::Int(static_cast<int64_t>(acc));
    }
    double acc = 0.0;
    for (const Value& v : values) acc += v.AsReal();
    return Value::Real(acc);
  }
  if (name == "AVG") {
    if (values.empty()) return Value::Null();
    double acc = 0.0;
    for (const Value& v : values) acc += v.AsReal();
    return Value::Real(acc / static_cast<double>(values.size()));
  }
  if (name == "MIN" || name == "MAX") {
    if (values.empty()) return Value::Null();
    const Value* best = &values[0];
    for (const Value& v : values) {
      int c = v.Compare(*best);
      if ((name == "MIN" && c < 0) || (name == "MAX" && c > 0)) best = &v;
    }
    return *best;
  }
  if (name == "GROUP_CONCAT") {
    if (values.empty()) return Value::Null();
    std::string out;
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += values[i].ToText();
    }
    return Value::Text(std::move(out));
  }
  return StatusOr<Value>(
      Status::SemanticError("unknown aggregate " + name));
}

}  // namespace

StatusOr<Relation> Executor::ApplyAggregation(const sql::SelectCore& core,
                                              Relation input,
                                              const EvalContext* outer) {
  // Collect aggregate nodes again (cheap; keeps the call-site simple).
  std::vector<const sql::FunctionCall*> aggregates;
  for (const auto& item : core.items) CollectAggregates(*item.expr, &aggregates);
  if (core.having != nullptr) CollectAggregates(*core.having, &aggregates);

  // Window functions mixed with aggregation are not supported (documented
  // simplification; real engines layer windows over grouped output).
  std::vector<const sql::FunctionCall*> windows;
  for (const auto& item : core.items) CollectWindowCalls(*item.expr, &windows);
  if (!windows.empty()) {
    return StatusOr<Relation>(Status::SemanticError(
        "window functions cannot be combined with aggregation"));
  }

  // Group rows.
  std::unordered_map<GroupKey, std::vector<size_t>, GroupKeyHash> groups;
  std::vector<GroupKey> group_order;
  if (core.group_by.empty()) {
    LEGO_COV();
    // Single implicit group (possibly empty).
    GroupKey key;
    groups[key] = {};
    group_order.push_back(key);
    for (size_t i = 0; i < input.rows.size(); ++i) groups[key].push_back(i);
  } else {
    LEGO_COV();
    for (size_t i = 0; i < input.rows.size(); ++i) {
      EvalContext ctx;
      ctx.rel = &input;
      ctx.row = &input.rows[i];
      ctx.outer = outer;
      ctx.runner = this;
      ctx.hooks = this;
      GroupKey key;
      for (const auto& g : core.group_by) {
        // GROUP BY <integer> means ordinal position (of the select list).
        if (g->kind() == ExprKind::kLiteral) {
          const auto& lit = static_cast<const sql::Literal&>(*g);
          if (lit.tag() == sql::Literal::Tag::kInt) {
            int64_t ord = lit.int_value();
            if (ord < 1 ||
                ord > static_cast<int64_t>(core.items.size())) {
              return StatusOr<Relation>(Status::SemanticError(
                  "GROUP BY position " + std::to_string(ord) +
                  " is out of range"));
            }
            LEGO_ASSIGN_OR_RETURN(
                Value v, Evaluator::Eval(
                             *core.items[static_cast<size_t>(ord - 1)].expr,
                             ctx));
            key.values.push_back(std::move(v));
            continue;
          }
        }
        LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*g, ctx));
        key.values.push_back(std::move(v));
      }
      auto [it, inserted] = groups.emplace(key, std::vector<size_t>{});
      if (inserted) group_order.push_back(key);
      it->second.push_back(i);
    }
  }

  // Evaluate each group: aggregates first, then the select items with
  // overrides bound (non-aggregated columns take the group's first row,
  // MySQL-style permissiveness).
  Relation output;
  for (size_t i = 0; i < core.items.size(); ++i) {
    const auto& item = core.items[i];
    std::string name = !item.alias.empty()
                           ? item.alias
                           : DeriveItemName(*item.expr, i);
    output.columns.push_back({"", std::move(name)});
  }

  static const Row kEmptyRow;
  for (const GroupKey& key : group_order) {
    const std::vector<size_t>& rows = groups[key];
    if (rows.empty() && !core.group_by.empty()) continue;

    std::map<const sql::Expr*, Value> overrides;
    for (const sql::FunctionCall* agg : aggregates) {
      LEGO_ASSIGN_OR_RETURN(Value v,
                            ComputeAggregate(*agg, input, rows, this, outer));
      overrides[agg] = std::move(v);
    }

    EvalContext ctx;
    ctx.rel = &input;
    ctx.row = rows.empty() ? &kEmptyRow : &input.rows[rows[0]];
    ctx.outer = outer;
    ctx.runner = this;
    ctx.hooks = this;
    ctx.node_overrides = &overrides;

    if (core.having != nullptr) {
      LEGO_ASSIGN_OR_RETURN(Tribool keep,
                            Evaluator::EvalPredicate(*core.having, ctx));
      if (keep != Tribool::kTrue) {
        LEGO_COV();
        continue;
      }
    }

    Row out_row;
    for (const auto& item : core.items) {
      if (item.expr->kind() == ExprKind::kStar) {
        return StatusOr<Relation>(Status::SemanticError(
            "'*' is not valid in an aggregated SELECT list"));
      }
      LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*item.expr, ctx));
      out_row.push_back(std::move(v));
    }
    output.rows.push_back(std::move(out_row));
  }
  return output;
}

// ---------------------------------------------------------------------------
// Projection & window functions
// ---------------------------------------------------------------------------

StatusOr<std::vector<std::map<const sql::Expr*, Value>>>
Executor::ComputeWindowOverrides(
    const std::vector<const sql::FunctionCall*>& windows,
    const Relation& input, const EvalContext* outer) {
  using Overrides = std::map<const sql::Expr*, Value>;
  std::vector<Overrides> per_row(input.rows.size());
  if (!db_->profile().supports_window_functions) {
    return StatusOr<std::vector<Overrides>>(Status::Unsupported(
        "window functions are not supported by this dialect"));
  }
  SetFeature(ExecFeature::kWindowFunction);

  for (const sql::FunctionCall* fn : windows) {
    // Partition rows.
    std::unordered_map<GroupKey, std::vector<size_t>, GroupKeyHash> parts;
    std::vector<GroupKey> part_order;
    const sql::WindowSpec* spec = fn->window();
    for (size_t i = 0; i < input.rows.size(); ++i) {
      EvalContext ctx;
      ctx.rel = &input;
      ctx.row = &input.rows[i];
      ctx.outer = outer;
      ctx.runner = this;
      ctx.hooks = this;
      GroupKey key;
      if (spec != nullptr) {
        for (const auto& p : spec->partition_by) {
          LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*p, ctx));
          key.values.push_back(std::move(v));
        }
      }
      auto [it, inserted] = parts.emplace(key, std::vector<size_t>{});
      if (inserted) part_order.push_back(key);
      it->second.push_back(i);
    }

    for (const GroupKey& pk : part_order) {
      std::vector<size_t>& rows = parts[pk];
      // Order within the partition.
      std::vector<std::vector<Value>> keys(rows.size());
      std::vector<bool> desc;
      if (spec != nullptr && !spec->order_by.empty()) {
        for (const auto& [e, d] : spec->order_by) desc.push_back(d);
        for (size_t r = 0; r < rows.size(); ++r) {
          EvalContext ctx;
          ctx.rel = &input;
          ctx.row = &input.rows[rows[r]];
          ctx.outer = outer;
          ctx.runner = this;
          ctx.hooks = this;
          for (const auto& [e, d] : spec->order_by) {
            LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*e, ctx));
            keys[r].push_back(std::move(v));
          }
        }
        std::vector<size_t> order(rows.size());
        for (size_t r = 0; r < order.size(); ++r) order[r] = r;
        SortKeyLess less{&keys, &desc};
        std::stable_sort(order.begin(), order.end(), less);
        std::vector<size_t> sorted(rows.size());
        std::vector<std::vector<Value>> sorted_keys(rows.size());
        for (size_t r = 0; r < order.size(); ++r) {
          sorted[r] = rows[order[r]];
          sorted_keys[r] = std::move(keys[order[r]]);
        }
        rows = std::move(sorted);
        keys = std::move(sorted_keys);
      }

      const std::string& name = fn->name();
      for (size_t pos = 0; pos < rows.size(); ++pos) {
        size_t row_idx = rows[pos];
        Value v;
        if (name == "ROW_NUMBER") {
          LEGO_COV();
          v = Value::Int(static_cast<int64_t>(pos + 1));
        } else if (name == "RANK" || name == "DENSE_RANK") {
          LEGO_COV();
          auto keys_equal = [&](size_t a, size_t b) {
            if (keys[a].size() != keys[b].size()) return false;
            for (size_t k = 0; k < keys[a].size(); ++k) {
              if (keys[a][k].Compare(keys[b][k]) != 0) return false;
            }
            return true;
          };
          int64_t rank = 1;
          int64_t dense = 1;
          for (size_t q = 1; q <= pos; ++q) {
            bool tie = !keys[q].empty() && keys_equal(q, q - 1);
            if (!tie) {
              dense += 1;
              rank = static_cast<int64_t>(q) + 1;
            }
          }
          v = Value::Int(name == "RANK" ? rank : dense);
        } else if (name == "LEAD" || name == "LAG") {
          LEGO_COV();
          if (fn->args().empty()) {
            return StatusOr<std::vector<Overrides>>(Status::SemanticError(
                name + " expects at least one argument"));
          }
          int64_t offset = 1;
          if (fn->args().size() >= 2) {
            EvalContext ctx;
            ctx.rel = &input;
            ctx.row = &input.rows[row_idx];
            ctx.outer = outer;
            ctx.runner = this;
            ctx.hooks = this;
            LEGO_ASSIGN_OR_RETURN(Value off,
                                  Evaluator::Eval(*fn->args()[1], ctx));
            offset = off.AsInt();
          }
          int64_t target = name == "LEAD"
                               ? static_cast<int64_t>(pos) + offset
                               : static_cast<int64_t>(pos) - offset;
          if (target < 0 || target >= static_cast<int64_t>(rows.size())) {
            v = Value::Null();
            if (fn->args().size() >= 3) {
              EvalContext ctx;
              ctx.rel = &input;
              ctx.row = &input.rows[row_idx];
              ctx.outer = outer;
              ctx.runner = this;
              ctx.hooks = this;
              LEGO_ASSIGN_OR_RETURN(v, Evaluator::Eval(*fn->args()[2], ctx));
            }
          } else {
            EvalContext ctx;
            ctx.rel = &input;
            ctx.row = &input.rows[rows[static_cast<size_t>(target)]];
            ctx.outer = outer;
            ctx.runner = this;
            ctx.hooks = this;
            LEGO_ASSIGN_OR_RETURN(v, Evaluator::Eval(*fn->args()[0], ctx));
          }
        } else if (name == "NTILE") {
          LEGO_COV();
          if (fn->args().size() != 1) {
            return StatusOr<std::vector<Overrides>>(
                Status::SemanticError("NTILE expects one argument"));
          }
          EvalContext ctx;
          ctx.rel = &input;
          ctx.row = &input.rows[row_idx];
          ctx.outer = outer;
          ctx.runner = this;
          ctx.hooks = this;
          LEGO_ASSIGN_OR_RETURN(Value n, Evaluator::Eval(*fn->args()[0], ctx));
          int64_t buckets = std::max<int64_t>(1, n.AsInt());
          int64_t size = static_cast<int64_t>(rows.size());
          int64_t bucket =
              static_cast<int64_t>(pos) * buckets / std::max<int64_t>(1, size);
          v = Value::Int(bucket + 1);
        } else if (Evaluator::IsAggregateFunction(name)) {
          // Aggregate-over-window: evaluate over the whole partition.
          LEGO_COV();
          LEGO_ASSIGN_OR_RETURN(
              v, ComputeAggregate(*fn, input, rows, this, outer));
        } else {
          return StatusOr<std::vector<Overrides>>(Status::SemanticError(
              "function " + name + " cannot be used as a window function"));
        }
        per_row[row_idx][fn] = std::move(v);
      }
    }
  }
  return per_row;
}

StatusOr<Relation> Executor::ApplyProjection(const sql::SelectCore& core,
                                             const Relation& input,
                                             const EvalContext* outer) {
  // Window functions in the select list?
  std::vector<const sql::FunctionCall*> windows;
  for (const auto& item : core.items) CollectWindowCalls(*item.expr, &windows);
  std::vector<std::map<const sql::Expr*, Value>> window_overrides;
  if (!windows.empty()) {
    LEGO_ASSIGN_OR_RETURN(window_overrides,
                          ComputeWindowOverrides(windows, input, outer));
  }

  Relation output;
  // Expand the output schema (stars expand to input columns).
  struct OutItem {
    const sql::Expr* expr;   // null for star expansion entries
    int input_col = -1;      // star expansion: source column
  };
  std::vector<OutItem> out_items;
  for (size_t i = 0; i < core.items.size(); ++i) {
    const auto& item = core.items[i];
    if (item.expr->kind() == ExprKind::kStar) {
      const auto& star = static_cast<const sql::Star&>(*item.expr);
      bool any = false;
      for (size_t c = 0; c < input.columns.size(); ++c) {
        if (!star.table().empty() &&
            input.columns[c].qualifier != star.table()) {
          continue;
        }
        any = true;
        out_items.push_back({nullptr, static_cast<int>(c)});
        output.columns.push_back(input.columns[c]);
      }
      if (!any) {
        if (star.table().empty() && input.columns.empty()) {
          return StatusOr<Relation>(Status::SemanticError(
              "SELECT * with no FROM clause"));
        }
        if (!star.table().empty()) {
          return StatusOr<Relation>(Status::SemanticError(
              "relation '" + star.table() + "' not found in FROM"));
        }
      }
      continue;
    }
    out_items.push_back({item.expr.get(), -1});
    std::string name = !item.alias.empty() ? item.alias
                                           : DeriveItemName(*item.expr, i);
    // Plain column projections keep their source qualifier so ORDER BY can
    // still address them as t.col (and same-named columns from different
    // tables stay distinguishable).
    std::string qualifier;
    if (item.alias.empty() &&
        item.expr->kind() == ExprKind::kColumnRef) {
      qualifier = static_cast<const sql::ColumnRef&>(*item.expr).table();
    }
    output.columns.push_back({std::move(qualifier), std::move(name)});
  }

  for (size_t r = 0; r < input.rows.size(); ++r) {
    EvalContext ctx;
    ctx.rel = &input;
    ctx.row = &input.rows[r];
    ctx.outer = outer;
    ctx.runner = this;
    ctx.hooks = this;
    if (!window_overrides.empty()) {
      ctx.node_overrides = &window_overrides[r];
    }
    Row out_row;
    out_row.reserve(out_items.size());
    for (const OutItem& item : out_items) {
      if (item.expr == nullptr) {
        out_row.push_back(input.rows[r][static_cast<size_t>(item.input_col)]);
      } else {
        LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*item.expr, ctx));
        out_row.push_back(std::move(v));
      }
    }
    output.rows.push_back(std::move(out_row));
  }
  return output;
}

Status Executor::ApplyOrderByLimit(const sql::SelectStmt& stmt, Relation* rel,
                                   const EvalContext* outer) {
  if (!stmt.order_by.empty()) {
    LEGO_COV();
    SetFeature(ExecFeature::kOrderBy);
    std::vector<std::vector<Value>> keys(rel->rows.size());
    std::vector<bool> desc;
    for (const auto& item : stmt.order_by) desc.push_back(item.desc);
    for (size_t r = 0; r < rel->rows.size(); ++r) {
      EvalContext ctx;
      ctx.rel = rel;
      ctx.row = &rel->rows[r];
      ctx.outer = outer;
      ctx.runner = this;
      ctx.hooks = this;
      for (const auto& item : stmt.order_by) {
        // ORDER BY <integer literal> is an ordinal output column.
        if (item.expr->kind() == ExprKind::kLiteral) {
          const auto& lit = static_cast<const sql::Literal&>(*item.expr);
          if (lit.tag() == sql::Literal::Tag::kInt) {
            int64_t ord = lit.int_value();
            if (ord < 1 || ord > static_cast<int64_t>(rel->columns.size())) {
              return Status::SemanticError(
                  "ORDER BY position " + std::to_string(ord) +
                  " is out of range");
            }
            keys[r].push_back(rel->rows[r][static_cast<size_t>(ord - 1)]);
            continue;
          }
        }
        LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*item.expr, ctx));
        keys[r].push_back(std::move(v));
      }
    }
    std::vector<size_t> order(rel->rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    SortKeyLess less{&keys, &desc};
    std::stable_sort(order.begin(), order.end(), less);
    std::vector<Row> sorted;
    sorted.reserve(rel->rows.size());
    for (size_t i : order) sorted.push_back(std::move(rel->rows[i]));
    rel->rows = std::move(sorted);
  }

  auto eval_const_int = [&](const sql::Expr& e) -> StatusOr<int64_t> {
    EvalContext ctx;
    ctx.runner = this;
    ctx.hooks = this;
    ctx.outer = outer;
    LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(e, ctx));
    if (v.is_null()) return StatusOr<int64_t>(int64_t{-1});
    return v.AsInt();
  };

  int64_t offset = 0;
  if (stmt.offset != nullptr) {
    LEGO_COV();
    LEGO_ASSIGN_OR_RETURN(offset, eval_const_int(*stmt.offset));
    if (offset < 0) {
      return Status::ExecutionError("OFFSET must not be negative");
    }
  }
  if (offset > 0) {
    if (offset >= static_cast<int64_t>(rel->rows.size())) {
      rel->rows.clear();
    } else {
      rel->rows.erase(rel->rows.begin(), rel->rows.begin() + offset);
    }
  }
  if (stmt.limit != nullptr) {
    LEGO_COV();
    LEGO_ASSIGN_OR_RETURN(int64_t limit, eval_const_int(*stmt.limit));
    if (limit < 0) {
      return Status::ExecutionError("LIMIT must not be negative");
    }
    if (static_cast<int64_t>(rel->rows.size()) > limit) {
      rel->rows.resize(static_cast<size_t>(limit));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VALUES / WITH
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecValues(const sql::ValuesStmt& stmt) {
  LEGO_COV();
  if (stmt.rows.empty()) {
    return StatusOr<ResultSet>(
        Status::SemanticError("VALUES requires at least one row"));
  }
  size_t width = stmt.rows[0].size();
  ResultSet result;
  for (size_t i = 0; i < width; ++i) {
    result.column_names.push_back("column" + std::to_string(i + 1));
  }
  EvalContext ctx;
  ctx.runner = this;
  ctx.hooks = this;
  for (const auto& row_exprs : stmt.rows) {
    if (row_exprs.size() != width) {
      return StatusOr<ResultSet>(
          Status::SemanticError("VALUES rows have differing widths"));
    }
    Row row;
    for (const auto& e : row_exprs) {
      LEGO_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*e, ctx));
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecWith(const sql::WithStmt& stmt) {
  SetFeature(ExecFeature::kCte);
  // Materialize CTEs left-to-right; later CTEs see earlier ones. DML CTEs
  // execute for their side effects (the paper's case-study shape: a rule
  // may rewrite the inner DML into something unexpected).
  std::map<std::string, Relation> saved = cte_bindings_;
  auto restore = [&]() { cte_bindings_ = std::move(saved); };

  for (const sql::CommonTableExpr& cte : stmt.ctes) {
    Relation rel;
    switch (cte.statement->type()) {
      case StatementType::kSelect: {
        LEGO_COV();
        auto rel_or = EvalSelect(
            static_cast<const sql::SelectStmt&>(*cte.statement), nullptr);
        if (!rel_or.ok()) {
          restore();
          return StatusOr<ResultSet>(rel_or.status());
        }
        rel = std::move(*rel_or);
        break;
      }
      default: {
        LEGO_COV();
        // DML/VALUES CTE: execute, expose an empty relation (no RETURNING).
        ++depth_;
        auto st = Execute(*cte.statement);
        --depth_;
        if (!st.ok()) {
          restore();
          return StatusOr<ResultSet>(st.status());
        }
        if (cte.statement->type() == StatementType::kValues) {
          rel.rows = std::move(st->rows);
          for (const std::string& name : st->column_names) {
            rel.columns.push_back({"", name});
          }
        }
        break;
      }
    }
    // Apply the explicit column list if present.
    if (!cte.columns.empty()) {
      if (!rel.columns.empty() && cte.columns.size() != rel.columns.size()) {
        restore();
        return StatusOr<ResultSet>(Status::SemanticError(
            "CTE '" + cte.name + "' column list size mismatch"));
      }
      rel.columns.clear();
      for (const std::string& c : cte.columns) rel.columns.push_back({"", c});
    }
    cte_bindings_[cte.name] = std::move(rel);
  }

  ++depth_;
  auto result = Execute(*stmt.body);
  --depth_;
  restore();
  return result;
}

// ---------------------------------------------------------------------------
// DCL
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecGrant(const sql::GrantStmt& stmt) {
  if (db_->session().current_user != "root") {
    return StatusOr<ResultSet>(
        Status::PermissionDenied("only root may GRANT"));
  }
  if (!db_->catalog().HasTable(stmt.table) &&
      !db_->catalog().HasView(stmt.table)) {
    return StatusOr<ResultSet>(
        Status::NotFound("relation '" + stmt.table + "' does not exist"));
  }
  if (!db_->catalog().HasUser(stmt.user)) {
    return StatusOr<ResultSet>(
        Status::NotFound("user '" + stmt.user + "' does not exist"));
  }
  LEGO_COV();
  db_->catalog().Grant(stmt.user, stmt.table, MaskOf(stmt.privilege));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecRevoke(const sql::RevokeStmt& stmt) {
  if (db_->session().current_user != "root") {
    return StatusOr<ResultSet>(
        Status::PermissionDenied("only root may REVOKE"));
  }
  if (!db_->catalog().HasUser(stmt.user)) {
    return StatusOr<ResultSet>(
        Status::NotFound("user '" + stmt.user + "' does not exist"));
  }
  LEGO_COV();
  db_->catalog().Revoke(stmt.user, stmt.table, MaskOf(stmt.privilege));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCreateUser(const sql::CreateUserStmt& stmt) {
  LEGO_COV();
  LEGO_RETURN_IF_ERROR(
      db_->catalog().CreateUser(stmt.name, stmt.if_not_exists));
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecDropUser(const sql::DropUserStmt& stmt) {
  if (stmt.name == db_->session().current_user) {
    return StatusOr<ResultSet>(
        Status::SemanticError("cannot drop the current user"));
  }
  LEGO_COV();
  LEGO_RETURN_IF_ERROR(db_->catalog().DropUser(stmt.name, stmt.if_exists));
  return ResultSet{};
}

// ---------------------------------------------------------------------------
// TCL
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecTcl(const sql::Statement& stmt) {
  switch (stmt.type()) {
    case StatementType::kBegin:
      LEGO_COV();
      LEGO_RETURN_IF_ERROR(db_->TxnBegin());
      return ResultSet{};
    case StatementType::kCommit:
      LEGO_COV();
      LEGO_RETURN_IF_ERROR(db_->TxnCommit());
      return ResultSet{};
    case StatementType::kRollback:
      LEGO_COV();
      LEGO_RETURN_IF_ERROR(db_->TxnRollback());
      return ResultSet{};
    case StatementType::kSavepoint: {
      LEGO_COV();
      const auto& named = static_cast<const sql::NamedStmt&>(stmt);
      LEGO_RETURN_IF_ERROR(db_->TxnSavepoint(named.name()));
      return ResultSet{};
    }
    case StatementType::kRelease: {
      LEGO_COV();
      const auto& named = static_cast<const sql::NamedStmt&>(stmt);
      LEGO_RETURN_IF_ERROR(db_->TxnRelease(named.name()));
      return ResultSet{};
    }
    case StatementType::kRollbackTo: {
      LEGO_COV();
      const auto& named = static_cast<const sql::NamedStmt&>(stmt);
      LEGO_RETURN_IF_ERROR(db_->TxnRollbackTo(named.name()));
      return ResultSet{};
    }
    default:
      return StatusOr<ResultSet>(Status::Internal("bad TCL statement"));
  }
}

// ---------------------------------------------------------------------------
// Utility statements
// ---------------------------------------------------------------------------

StatusOr<ResultSet> Executor::ExecPragma(const sql::PragmaStmt& stmt) {
  SessionState& session = db_->session();
  Value value = Value::Bool(true);
  if (stmt.value != nullptr) {
    EvalContext ctx;
    ctx.hooks = this;
    // PRAGMA values may be bare identifiers (PRAGMA foo = on): resolve
    // failures degrade to the identifier text.
    auto v = Evaluator::Eval(*stmt.value, ctx);
    if (v.ok()) {
      value = *v;
    } else if (stmt.value->kind() == ExprKind::kColumnRef) {
      LEGO_COV();
      value = Value::Text(
          static_cast<const sql::ColumnRef&>(*stmt.value).column());
    } else {
      return StatusOr<ResultSet>(v.status());
    }
  }

  // SET role switches the effective user (a cross-statement state change
  // that privileges then observe).
  if (stmt.is_set && (stmt.name == "role" || stmt.name == "session_user")) {
    LEGO_COV();
    std::string user = value.ToText();
    if (!db_->catalog().HasUser(user)) {
      return StatusOr<ResultSet>(
          Status::NotFound("user '" + user + "' does not exist"));
    }
    session.current_user = user;
    return ResultSet{};
  }

  if (stmt.value == nullptr && !stmt.is_set) {
    // Query form: PRAGMA name.
    LEGO_COV();
    ResultSet result;
    result.column_names = {stmt.name};
    auto it = session.settings.find(stmt.name);
    Row row;
    row.push_back(it == session.settings.end() ? Value::Null() : it->second);
    result.rows.push_back(std::move(row));
    return result;
  }
  LEGO_COV();
  session.settings[stmt.name] = std::move(value);
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecShow(const sql::ShowStmt& stmt) {
  ResultSet result;
  std::vector<std::string> names;
  if (stmt.what == "TABLES") {
    LEGO_COV();
    names = db_->catalog().TableNames();
  } else if (stmt.what == "VIEWS") {
    LEGO_COV();
    names = db_->catalog().ViewNames();
  } else if (stmt.what == "INDEXES" || stmt.what == "INDEX") {
    LEGO_COV();
    names = db_->catalog().IndexNames();
  } else if (stmt.what == "TRIGGERS") {
    LEGO_COV();
    names = db_->catalog().TriggerNames();
  } else if (stmt.what == "RULES") {
    LEGO_COV();
    names = db_->catalog().RuleNames();
  } else {
    // SHOW <variable>.
    LEGO_COV();
    result.column_names = {ToLower(stmt.what)};
    Row row;
    row.push_back(GetSessionVar(ToLower(stmt.what)));
    result.rows.push_back(std::move(row));
    return result;
  }
  result.column_names = {"name"};
  for (std::string& n : names) {
    Row row;
    row.push_back(Value::Text(std::move(n)));
    result.rows.push_back(std::move(row));
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecExplain(const sql::ExplainStmt& stmt) {
  ResultSet result;
  result.column_names = {"plan"};
  if (stmt.target->type() == StatementType::kSelect) {
    LEGO_COV();
    const auto& select = static_cast<const sql::SelectStmt&>(*stmt.target);
    Planner planner(&db_->catalog(), &db_->profile(), &cte_bindings_);
    LEGO_ASSIGN_OR_RETURN(SelectPlan plan, planner.PlanSelect(select));
    // Fill shape flags the planner cannot see (aggregates/windows).
    std::vector<const sql::FunctionCall*> aggs;
    std::vector<const sql::FunctionCall*> wins;
    for (const auto& item : select.core.items) {
      CollectAggregates(*item.expr, &aggs);
      CollectWindowCalls(*item.expr, &wins);
    }
    plan.has_aggregate = !aggs.empty();
    plan.has_window = !wins.empty();
    std::string text = plan.Describe();
    for (const std::string& line : Split(text, '\n')) {
      if (!line.empty()) result.notes.push_back(line);
    }
  } else {
    LEGO_COV();
    result.notes.push_back(
        std::string(sql::StatementTypeName(stmt.target->type())));
  }
  if (stmt.analyze) {
    LEGO_COV();
    ++depth_;
    auto run = Execute(*stmt.target);
    --depth_;
    if (!run.ok()) return run;
    result.notes.push_back(
        "actual rows: " +
        std::to_string(run->rows.size() +
                       static_cast<size_t>(run->affected_rows)));
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecMaintenance(
    const sql::MaintenanceStmt& stmt) {
  ResultSet result;
  switch (stmt.type()) {
    case StatementType::kAnalyze: {
      LEGO_COV();
      std::vector<std::string> targets;
      if (stmt.target().empty()) {
        targets = db_->catalog().TableNames();
      } else {
        if (!db_->catalog().HasTable(stmt.target())) {
          return StatusOr<ResultSet>(Status::NotFound(
              "table '" + stmt.target() + "' does not exist"));
        }
        targets = {stmt.target()};
      }
      for (const std::string& name : targets) {
        LEGO_ASSIGN_OR_RETURN(TableInfo * table,
                              db_->catalog().GetTable(name));
        table->analyzed_row_count =
            static_cast<int64_t>(table->heap.LiveRowCount());
      }
      result.notes.push_back("analyzed " + std::to_string(targets.size()) +
                             " table(s)");
      return result;
    }
    case StatementType::kVacuum: {
      LEGO_COV();
      std::vector<std::string> targets;
      if (stmt.target().empty()) {
        targets = db_->catalog().TableNames();
      } else {
        if (!db_->catalog().HasTable(stmt.target())) {
          return StatusOr<ResultSet>(Status::NotFound(
              "table '" + stmt.target() + "' does not exist"));
        }
        targets = {stmt.target()};
      }
      for (const std::string& name : targets) {
        LEGO_ASSIGN_OR_RETURN(TableInfo * table,
                              db_->catalog().GetTable(name));
        table->heap.Vacuum();
        // Row ids changed: rebuild every index on the table.
        for (IndexInfo* index : db_->catalog().IndexesOf(name)) {
          index->tree.Clear();
          int col = table->schema.FindColumn(index->columns.empty()
                                                 ? ""
                                                 : index->columns[0]);
          if (col < 0) continue;
          table->heap.Scan([&](RowId rid, const Row& row) {
            index->tree.Insert(row[static_cast<size_t>(col)], rid);
            return true;
          });
        }
      }
      result.notes.push_back("vacuumed " + std::to_string(targets.size()) +
                             " table(s)");
      return result;
    }
    case StatementType::kReindex: {
      LEGO_COV();
      std::vector<std::string> targets;
      if (stmt.target().empty()) {
        targets = db_->catalog().IndexNames();
      } else if (db_->catalog().HasIndex(stmt.target())) {
        targets = {stmt.target()};
      } else {
        return StatusOr<ResultSet>(Status::NotFound(
            "index '" + stmt.target() + "' does not exist"));
      }
      for (const std::string& name : targets) {
        LEGO_ASSIGN_OR_RETURN(IndexInfo * index,
                              db_->catalog().GetIndex(name));
        LEGO_ASSIGN_OR_RETURN(TableInfo * table,
                              db_->catalog().GetTable(index->table));
        index->tree.Clear();
        int col = table->schema.FindColumn(
            index->columns.empty() ? "" : index->columns[0]);
        if (col < 0) continue;
        table->heap.Scan([&](RowId rid, const Row& row) {
          index->tree.Insert(row[static_cast<size_t>(col)], rid);
          return true;
        });
      }
      result.notes.push_back("reindexed " + std::to_string(targets.size()) +
                             " index(es)");
      return result;
    }
    default:
      return StatusOr<ResultSet>(Status::Internal("bad maintenance type"));
  }
}

StatusOr<ResultSet> Executor::ExecNotify(const sql::NotifyStmt& stmt) {
  if (!db_->profile().supports_notify) {
    return StatusOr<ResultSet>(
        Status::Unsupported("NOTIFY is not supported by this dialect"));
  }
  LEGO_COV();
  SessionState& session = db_->session();
  std::string delivery = stmt.channel + ":" + stmt.payload;
  session.notifications.push_back(delivery);
  ResultSet result;
  if (session.listening.count(stmt.channel)) {
    LEGO_COV();
    result.notes.push_back("NOTIFY delivered on " + stmt.channel);
  }
  return result;
}

StatusOr<ResultSet> Executor::ExecComment(const sql::CommentStmt& stmt) {
  LEGO_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  LEGO_COV();
  table->comment = stmt.text;
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecAlterSystem(
    const sql::AlterSystemStmt& stmt) {
  LEGO_COV();
  ResultSet result;
  if (stmt.action == "SET") {
    Value value = Value::Null();
    if (stmt.value != nullptr) {
      EvalContext ctx;
      ctx.hooks = this;
      LEGO_ASSIGN_OR_RETURN(value, Evaluator::Eval(*stmt.value, ctx));
    }
    db_->session().settings["system." + stmt.name] = std::move(value);
    return result;
  }
  result.notes.push_back("ALTER SYSTEM " + stmt.action + " acknowledged");
  return result;
}

StatusOr<ResultSet> Executor::ExecDiscard(const sql::DiscardStmt& stmt) {
  LEGO_COV();
  db_->catalog().DropTemporaryTables();
  if (stmt.all) {
    SessionState& session = db_->session();
    session.settings.clear();
    session.listening.clear();
    session.current_user = "root";
  }
  return ResultSet{};
}

StatusOr<ResultSet> Executor::ExecCheckpoint() {
  LEGO_COV();
  ResultSet result;
  result.notes.push_back("checkpoint complete");
  return result;
}

// ---------------------------------------------------------------------------
// EvalHooks
// ---------------------------------------------------------------------------

Value Executor::GetSessionVar(const std::string& name) {
  const SessionState& session = db_->session();
  auto it = session.settings.find(name);
  if (it != session.settings.end()) return it->second;
  if (name == "user" || name == "current_user") {
    return Value::Text(session.current_user);
  }
  if (name == "dialect") return Value::Text(db_->profile().name);
  return Value::Null();
}

StatusOr<int64_t> Executor::SequenceNextVal(const std::string& name) {
  LEGO_ASSIGN_OR_RETURN(SequenceInfo * seq, db_->catalog().GetSequence(name));
  if (!seq->started) {
    seq->current = seq->start;
    seq->started = true;
  } else {
    seq->current += seq->increment;
  }
  return seq->current;
}

StatusOr<int64_t> Executor::SequenceCurrVal(const std::string& name) {
  LEGO_ASSIGN_OR_RETURN(SequenceInfo * seq, db_->catalog().GetSequence(name));
  if (!seq->started) {
    return StatusOr<int64_t>(Status::ExecutionError(
        "currval of sequence '" + name + "' is not yet defined"));
  }
  return seq->current;
}

}  // namespace lego::minidb
