#ifndef LEGO_MINIDB_DATABASE_H_
#define LEGO_MINIDB_DATABASE_H_

#include <bitset>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minidb/catalog.h"
#include "minidb/profile.h"
#include "minidb/relation.h"
#include "sql/ast.h"
#include "util/status.h"

namespace lego::minidb {

/// Result of one statement: a (possibly empty) relation plus side-channel
/// notes (EXPLAIN text, COPY output, NOTIFY deliveries) and DML row counts.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  std::vector<std::string> notes;
  int64_t affected_rows = 0;
};

/// Execution-observable features of one statement; fault-injection triggers
/// may require them in addition to a type subsequence.
enum class ExecFeature : uint8_t {
  kGroupBy,
  kOrderBy,
  kWindowFunction,
  kJoin,
  kHashJoinUsed,
  kIndexScanUsed,
  kSubquery,
  kSetOperation,
  kAggregate,
  kDistinct,
  kHaving,
  kCte,
  kViewExpansion,
  kRuleRewrite,
  kTriggerFired,
  kInTransaction,
  kTemporaryTable,
  kEmptyInput,
  kNumFeatures,
};

using FeatureSet = std::bitset<static_cast<size_t>(ExecFeature::kNumFeatures)>;

/// A synthetic crash raised by the fault-injection oracle (the stand-in for
/// an ASAN-detected memory error in a real DBMS).
struct CrashInfo {
  std::string bug_id;      // stable identifier, e.g. "MY-OPT-03"
  std::string component;   // Optimizer, Parser, Storage, ...
  std::string kind;        // SEGV, UAF, HBOF, ...
  uint64_t stack_hash = 0; // synthetic call-stack hash used for dedup
  std::string message;
};

class Database;

/// Transaction-control interception seam. When installed, BEGIN / COMMIT /
/// ROLLBACK / SAVEPOINT delegate here instead of the built-in snapshot
/// transactions — the concurrency engine substitutes its undo-log + lock
/// based transactions while sharing one Database across session threads.
/// Never installed on the serial path.
class TxnHook {
 public:
  virtual ~TxnHook() = default;
  virtual Status Begin(Database& db) = 0;
  virtual Status Commit(Database& db) = 0;
  virtual Status Rollback(Database& db) = 0;
  virtual Status Savepoint(Database& db, const std::string& name) = 0;
  virtual Status Release(Database& db, const std::string& name) = 0;
  virtual Status RollbackTo(Database& db, const std::string& name) = 0;
};

/// Durability notification seam. Installed by the paged storage engine so
/// the built-in snapshot transactions report their outcomes: the engine
/// buffers redo records per statement and needs to know when a transaction
/// boundary commits them (flush + fsync), discards them, or partially
/// unwinds them (savepoints). Notifications fire only on the *success* path
/// of each transaction-control operation, after the catalog reflects it.
/// Never installed on the in-memory storage path.
class StorageHook {
 public:
  virtual ~StorageHook() = default;
  virtual void OnTxnBegin(Database& db) = 0;
  virtual void OnTxnCommit(Database& db) = 0;
  virtual void OnTxnRollback(Database& db) = 0;
  virtual void OnTxnSavepoint(Database& db, const std::string& name) = 0;
  virtual void OnTxnRelease(Database& db, const std::string& name) = 0;
  virtual void OnTxnRollbackTo(Database& db, const std::string& name) = 0;
};

/// Oracle interface consulted after each successfully executed statement.
/// Implemented by faults::BugEngine.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// Returns a crash if the session's execution trace has just met some
  /// bug's trigger condition.
  virtual std::optional<CrashInfo> Check(const Database& db) = 0;
};

/// Per-connection state: executed-type trace, per-statement features,
/// settings, notifications, transaction bookkeeping.
struct SessionState {
  /// Executed statement types (top level plus fired rule/trigger bodies),
  /// in execution order — the trace fault triggers match against.
  std::vector<sql::StatementType> type_trace;
  /// Feature sets parallel to type_trace.
  std::vector<FeatureSet> feature_trace;

  std::map<std::string, Value> settings;
  std::string current_user = "root";
  std::set<std::string> listening;
  std::vector<std::string> notifications;  // delivered "channel:payload"

  bool in_transaction = false;
};

/// The minidb engine facade: a single-connection relational database
/// configured by a dialect profile. This is the fuzzing target.
class Database {
 public:
  explicit Database(const DialectProfile* profile = &DialectProfile::PgLite());

  /// Executes one parsed statement. Crash statuses (code kCrash) indicate
  /// the fault oracle fired; `last_crash()` then holds the details.
  StatusOr<ResultSet> Execute(const sql::Statement& stmt);

  /// Parses and executes a whole script. Statement-level errors are counted
  /// and skipped (matching how a fuzzer drives a real server); a crash stops
  /// the script. A script-level syntax error is returned directly.
  struct ScriptResult {
    int executed = 0;
    int errors = 0;
    bool crashed = false;
  };
  StatusOr<ScriptResult> ExecuteScript(std::string_view sql);

  /// Clears session state (trace, settings, notifications) and aborts any
  /// open transaction; the catalog is kept.
  void ResetSession();

  /// Drops everything: fresh catalog + fresh session.
  void ResetAll();

  const DialectProfile& profile() const { return *profile_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  SessionState& session() { return session_; }
  const SessionState& session() const { return session_; }

  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }
  void set_txn_hook(TxnHook* hook) { txn_hook_ = hook; }
  TxnHook* txn_hook() const { return txn_hook_; }
  void set_storage_hook(StorageHook* hook) { storage_hook_ = hook; }
  StorageHook* storage_hook() const { return storage_hook_; }
  const std::optional<CrashInfo>& last_crash() const { return last_crash_; }

 private:
  friend class Executor;

  // Transaction control (invoked by the executor).
  Status TxnBegin();
  Status TxnCommit();
  Status TxnRollback();
  Status TxnSavepoint(const std::string& name);
  Status TxnRelease(const std::string& name);
  Status TxnRollbackTo(const std::string& name);

  const DialectProfile* profile_;
  Catalog catalog_;
  SessionState session_;
  FaultHook* fault_hook_ = nullptr;
  TxnHook* txn_hook_ = nullptr;
  StorageHook* storage_hook_ = nullptr;
  std::optional<CrashInfo> last_crash_;

  /// Snapshot-based transactions: BEGIN copies the catalog; ROLLBACK
  /// restores it. Savepoints stack additional snapshots.
  std::optional<Catalog> txn_snapshot_;
  std::vector<std::pair<std::string, Catalog>> savepoints_;
};

namespace testing {

/// Test-only plants simulating a *genuine* engine defect (as opposed to the
/// synthetic faults::BugEngine crashes, which are clean in-process returns).
/// Both are process-global and inherited by forked execution backends, so a
/// campaign against a ForkedBackend can prove it survives real child death.
///
/// When armed, executing any DROP TABLE abort()s the process — in a forked
/// backend that kills the child mid-statement; in-process it kills the test.
void SetPlantedAbortForTesting(bool armed);
/// When armed, executing any VACUUM busy-spins forever (until the forked
/// backend's per-statement watchdog or an RLIMIT_CPU cap kills the child).
void SetPlantedHangForTesting(bool armed);
/// When armed, executing any REINDEX allocates memory without bound —
/// under --max-child-mem-mb the forked child dies with the reserved OOM
/// exit code and the death is triaged as REAL-OOM.
void SetPlantedOomForTesting(bool armed);

}  // namespace testing

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_DATABASE_H_
