#ifndef LEGO_MINIDB_HEAP_TABLE_H_
#define LEGO_MINIDB_HEAP_TABLE_H_

#include <deque>
#include <functional>
#include <vector>

#include "minidb/row.h"

namespace lego::minidb {

class HeapTable;

/// Row-operation observer: the concurrency layer's seam into the storage
/// engine. Hooks fire *before* the heap mutates (so an observer can park the
/// calling thread, take row locks, and record undo/history state with the
/// pre-image still intact) and before each row read. Installed per thread
/// via RowHooks — serial sessions never install one, so the single-session
/// engine pays one thread-local load per row operation and nothing else.
class RowObserver {
 public:
  virtual ~RowObserver() = default;
  /// About to insert a row into `table`. The observer may predict the slot
  /// with HeapTable::PeekInsert(); the prediction stays valid until control
  /// returns (the heap cannot change in between on this thread).
  virtual void OnInsert(HeapTable* table) = 0;
  /// About to update/delete the slot (which may be dead; the mutation then
  /// fails after the hook returns, exactly as it would have before).
  virtual void OnUpdate(HeapTable* table, RowId id) = 0;
  virtual void OnDelete(HeapTable* table, RowId id) = 0;
  /// About to read a live row (point lookup or scan visit).
  virtual void OnRead(const HeapTable* table, RowId id) = 0;
};

/// Thread-local observer installation. Each concurrent session thread
/// installs the engine's observer for its own lifetime; everything else in
/// the process (serial backends, setup scripts, tests) sees nullptr.
struct RowHooks {
  static RowObserver* Get();
  static void Set(RowObserver* observer);
};

/// Clears the calling thread's row observer for a scope (rollback/undo
/// application and index rebuilds must not re-enter the observer).
class RowHookClearScope {
 public:
  RowHookClearScope() : saved_(RowHooks::Get()) { RowHooks::Set(nullptr); }
  ~RowHookClearScope() { RowHooks::Set(saved_); }
  RowHookClearScope(const RowHookClearScope&) = delete;
  RowHookClearScope& operator=(const RowHookClearScope&) = delete;

 private:
  RowObserver* saved_;
};

/// Storage-engine mutation observer: the paged-durability layer's seam into
/// the heap. Unlike RowObserver (which fires *before* a mutation so the
/// concurrency engine can park/lock), these hooks fire *after* a successful
/// mutation, when the post-image is in place — exactly what a physiological
/// redo record needs. Installed per thread via StorageHooks only between a
/// storage engine's BeginStatement/EndStatement bracket; every other code
/// path pays one thread-local load per mutation and nothing else.
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;
  /// A slot was written (insert or in-place update). The post-image is
  /// readable via table->RawRow(id) until control returns.
  virtual void OnPut(const HeapTable* table, RowId id) = 0;
  /// A live slot was tombstoned.
  virtual void OnErase(const HeapTable* table, RowId id) = 0;
  /// The page layout changed wholesale (Clear, Vacuum, ResurrectAt) — slot
  /// identities are no longer stable, so per-op redo is off the table and
  /// the statement must be logged logically.
  virtual void OnStructural(const HeapTable* table) = 0;
};

/// Thread-local storage-observer installation (same pattern as RowHooks).
struct StorageHooks {
  static StorageObserver* Get();
  static void Set(StorageObserver* observer);
};

/// Page-structured row store. Rows live in fixed-capacity pages with a
/// per-slot liveness bit; deletes tombstone slots and VACUUM compacts pages.
/// The structure deliberately mirrors a slotted-page heap so scans, row ids,
/// and vacuum behave like a real engine's.
///
/// Pages are kept in a deque and each page's row vector is reserved at full
/// capacity up front, so growing the heap never relocates existing rows —
/// a concurrent session parked mid-scan can hold references across other
/// sessions' inserts.
class HeapTable {
 public:
  static constexpr uint32_t kRowsPerPage = 64;

  HeapTable() = default;

  /// Deep copy (used by snapshot-based transactions).
  HeapTable(const HeapTable&) = default;
  HeapTable& operator=(const HeapTable&) = default;
  HeapTable(HeapTable&&) = default;
  HeapTable& operator=(HeapTable&&) = default;

  /// Appends `row`, reusing a tombstoned slot if one exists on the last
  /// page; returns its location.
  RowId Insert(Row row);

  /// The RowId the next Insert would choose, without mutating. Valid until
  /// the heap changes.
  RowId PeekInsert() const;

  /// Tombstones the slot. Returns false if already dead or out of range.
  bool Delete(RowId id);

  /// Replaces the row in place. Returns false if the slot is dead.
  bool Update(RowId id, Row row);

  /// Fetches a live row; returns nullptr for dead/out-of-range slots.
  const Row* Get(RowId id) const;

  /// Like Get, but without firing the row observer (undo application and
  /// observers themselves read through this).
  const Row* RawRow(RowId id) const;

  /// Restores `row` into a tombstoned slot (undo of a delete). Returns
  /// false if the slot is live or out of range.
  bool ResurrectAt(RowId id, Row row);

  /// Invokes `fn(id, row)` for every live row in physical order; stops early
  /// if fn returns false.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Number of live rows.
  size_t LiveRowCount() const { return live_rows_; }

  /// Number of allocated pages.
  size_t PageCount() const { return pages_.size(); }

  /// Fraction of allocated slots that are dead (0 when empty).
  double DeadFraction() const;

  /// Compacts pages, dropping tombstones. Invalidates all RowIds; the caller
  /// must rebuild indexes afterwards.
  void Vacuum();

  /// Drops all rows and pages.
  void Clear();

  // --- storage-engine surface (snapshot serde + WAL redo) ---

  /// Invokes `fn(id, live, row)` for every *allocated* slot (including
  /// tombstones, whose rows are empty) in physical order. Snapshot serde
  /// walks this so a deserialized heap reproduces the slot layout exactly —
  /// RowIds recorded in WAL redo records stay valid.
  void VisitSlots(
      const std::function<void(RowId, bool, const Row&)>& fn) const;

  /// Starts a fresh physical page (snapshot load). Needed because redo can
  /// leave partially-filled *middle* pages, so the loader must reproduce
  /// page boundaries explicitly rather than re-packing slots.
  void AppendRawPage();

  /// Appends one raw slot at the next physical position of the last page
  /// (snapshot load); rolls to a new page only at full capacity.
  void AppendRawSlot(Row row, bool live);

  /// Redo application of a physiological put: writes `row` at exactly `id`,
  /// creating pages/slots (as tombstones) up to it if needed. Idempotent —
  /// replaying the same record twice converges on the same state. Fires no
  /// observers (recovery runs outside any statement bracket).
  void ApplyPut(RowId id, Row row);

  /// Redo application of a physiological erase: tombstones `id` if live.
  void ApplyDelete(RowId id);

 private:
  struct Page {
    std::vector<Row> rows;        // size == live.size()
    std::vector<uint8_t> live;    // 1 = live, 0 = tombstone
  };

  static Page MakePage();

  std::deque<Page> pages_;
  size_t live_rows_ = 0;
  size_t dead_slots_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_HEAP_TABLE_H_
