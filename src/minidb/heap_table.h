#ifndef LEGO_MINIDB_HEAP_TABLE_H_
#define LEGO_MINIDB_HEAP_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "minidb/row.h"

namespace lego::minidb {

class HeapTable;
class PageStore;

/// Row-operation observer: the concurrency layer's seam into the storage
/// engine. Hooks fire *before* the heap mutates (so an observer can park the
/// calling thread, take row locks, and record undo/history state with the
/// pre-image still intact) and before each row read. Installed per thread
/// via RowHooks — serial sessions never install one, so the single-session
/// engine pays one thread-local load per row operation and nothing else.
class RowObserver {
 public:
  virtual ~RowObserver() = default;
  /// About to insert a row into `table`. The observer may predict the slot
  /// with HeapTable::PeekInsert(); the prediction stays valid until control
  /// returns (the heap cannot change in between on this thread).
  virtual void OnInsert(HeapTable* table) = 0;
  /// About to update/delete the slot (which may be dead; the mutation then
  /// fails after the hook returns, exactly as it would have before).
  virtual void OnUpdate(HeapTable* table, RowId id) = 0;
  virtual void OnDelete(HeapTable* table, RowId id) = 0;
  /// About to read a live row (point lookup or scan visit).
  virtual void OnRead(const HeapTable* table, RowId id) = 0;
};

/// Thread-local observer installation. Each concurrent session thread
/// installs the engine's observer for its own lifetime; everything else in
/// the process (serial backends, setup scripts, tests) sees nullptr.
struct RowHooks {
  static RowObserver* Get();
  static void Set(RowObserver* observer);
};

/// Clears the calling thread's row observer for a scope (rollback/undo
/// application and index rebuilds must not re-enter the observer).
class RowHookClearScope {
 public:
  RowHookClearScope() : saved_(RowHooks::Get()) { RowHooks::Set(nullptr); }
  ~RowHookClearScope() { RowHooks::Set(saved_); }
  RowHookClearScope(const RowHookClearScope&) = delete;
  RowHookClearScope& operator=(const RowHookClearScope&) = delete;

 private:
  RowObserver* saved_;
};

/// Storage-engine mutation observer: the paged-durability layer's seam into
/// the heap. Unlike RowObserver (which fires *before* a mutation so the
/// concurrency engine can park/lock), these hooks fire *after* a successful
/// mutation, when the post-image is in place — and carry the slot's
/// before-image, which is exactly what a physiological redo+undo record
/// needs under the steal policy. Installed per thread via StorageHooks only
/// between a storage engine's BeginStatement/EndStatement bracket; every
/// other code path pays one thread-local load per mutation and nothing
/// else (before-images are only materialized while a hook is armed).
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;
  /// A slot was written (insert or in-place update). The post-image is
  /// readable via table->RawRow(id) until control returns. `before` is the
  /// slot's pre-image when it was live (an update); nullptr when the put
  /// created the slot (an insert — undo re-tombstones it).
  virtual void OnPut(const HeapTable* table, RowId id, const Row* before) = 0;
  /// A live slot was tombstoned; `before` is the erased row (the undo
  /// image).
  virtual void OnErase(const HeapTable* table, RowId id,
                       const Row& before) = 0;
  /// The page layout changed wholesale (Clear, Vacuum, ResurrectAt) — slot
  /// identities are no longer stable, so per-op redo is off the table and
  /// the statement must be logged logically.
  virtual void OnStructural(const HeapTable* table) = 0;
};

/// Thread-local storage-observer installation (same pattern as RowHooks).
struct StorageHooks {
  static StorageObserver* Get();
  static void Set(StorageObserver* observer);
};

/// Clears the calling thread's storage observer for a scope (undo
/// application in the concurrency engine must not log its compensating
/// heap operations as new redo records).
class StorageHookClearScope {
 public:
  StorageHookClearScope() : saved_(StorageHooks::Get()) {
    StorageHooks::Set(nullptr);
  }
  ~StorageHookClearScope() { StorageHooks::Set(saved_); }
  StorageHookClearScope(const StorageHookClearScope&) = delete;
  StorageHookClearScope& operator=(const StorageHookClearScope&) = delete;

 private:
  StorageObserver* saved_;
};

/// Page-structured row store. Rows live in fixed-capacity pages with a
/// per-slot liveness bit; deletes tombstone slots and VACUUM compacts pages.
/// The structure deliberately mirrors a slotted-page heap so scans, row ids,
/// and vacuum behave like a real engine's.
///
/// The heap runs in one of two modes with identical slot semantics (same
/// RowIds, same scan order, same tombstone-reuse policy — digests match):
///
///  - *Memory mode* (default): pages are a deque of row vectors, each
///    reserved at full capacity up front so growing the heap never
///    relocates existing rows — a concurrent session parked mid-scan can
///    hold references across other sessions' inserts. This path is
///    bit-identical to the pre-paged engine.
///
///  - *Paged mode* (after AttachStore): row payloads live in a PageStore —
///    each logical page serialized as a blob chunked across 8 KiB physical
///    pages under the shared BufferPool — and only per-page metadata (the
///    chain of physical page ids, the slot liveness bitmap, the
///    copy-on-write epoch) stays resident. A one-page decoded cache gives
///    mutations and scans page locality; switching pages flushes the cache
///    back through the pool, applying copy-on-write when a snapshot
///    transaction shares the chain. Pointers returned by Get()/RawRow()
///    point into the cache and are valid only until the next operation on
///    this table — every executor call site copies immediately.
class HeapTable {
 public:
  static constexpr uint32_t kRowsPerPage = 64;

  HeapTable() = default;

  /// Deep copy (used by snapshot-based transactions). In paged mode this
  /// copies only resident metadata — chains are *shared* with the copy
  /// (copy-on-write keeps them consistent) and the decoded cache is copied
  /// as-is, so a dirty page's latest content travels with the snapshot.
  HeapTable(const HeapTable&) = default;
  HeapTable& operator=(const HeapTable&) = default;
  HeapTable(HeapTable&&) = default;
  HeapTable& operator=(HeapTable&&) = default;

  /// Appends `row`, reusing a tombstoned slot if one exists on the last
  /// page; returns its location.
  RowId Insert(Row row);

  /// The RowId the next Insert would choose, without mutating. Valid until
  /// the heap changes. Reads only resident metadata in paged mode.
  RowId PeekInsert() const;

  /// Tombstones the slot. Returns false if already dead or out of range.
  bool Delete(RowId id);

  /// Replaces the row in place. Returns false if the slot is dead.
  bool Update(RowId id, Row row);

  /// Fetches a live row; returns nullptr for dead/out-of-range slots.
  const Row* Get(RowId id) const;

  /// Like Get, but without firing the row observer (undo application and
  /// observers themselves read through this).
  const Row* RawRow(RowId id) const;

  /// Restores `row` into a tombstoned slot (undo of a delete). Returns
  /// false if the slot is live or out of range.
  bool ResurrectAt(RowId id, Row row);

  /// Invokes `fn(id, row)` for every live row in physical order; stops early
  /// if fn returns false.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Number of live rows.
  size_t LiveRowCount() const { return live_rows_; }

  /// Number of allocated pages.
  size_t PageCount() const {
    return store_ != nullptr ? ppages_.size() : pages_.size();
  }

  /// Fraction of allocated slots that are dead (0 when empty).
  double DeadFraction() const;

  /// Compacts pages, dropping tombstones. Invalidates all RowIds; the caller
  /// must rebuild indexes afterwards.
  void Vacuum();

  /// Drops all rows and pages.
  void Clear();

  // --- storage-engine surface (snapshot serde + WAL redo) ---

  /// Invokes `fn(id, live, row)` for every *allocated* slot (including
  /// tombstones, whose rows are empty) in physical order. Snapshot serde
  /// walks this so a deserialized heap reproduces the slot layout exactly —
  /// RowIds recorded in WAL redo records stay valid. In paged mode the
  /// row reference is valid only for the duration of the callback.
  void VisitSlots(
      const std::function<void(RowId, bool, const Row&)>& fn) const;

  /// Starts a fresh physical page (snapshot load). Needed because redo can
  /// leave partially-filled *middle* pages, so the loader must reproduce
  /// page boundaries explicitly rather than re-packing slots.
  void AppendRawPage();

  /// Appends one raw slot at the next physical position of the last page
  /// (snapshot load); rolls to a new page only at full capacity.
  void AppendRawSlot(Row row, bool live);

  /// Redo application of a physiological put: writes `row` at exactly `id`,
  /// creating pages/slots (as tombstones) up to it if needed. Idempotent —
  /// replaying the same record twice converges on the same state. Fires no
  /// observers (recovery runs outside any statement bracket).
  void ApplyPut(RowId id, Row row);

  /// Redo application of a physiological erase: tombstones `id` if live.
  void ApplyDelete(RowId id);

  // --- paged mode ---

  /// Routes this heap's row storage through `store`: existing in-memory
  /// pages are serialized into chains and released, and every subsequent
  /// operation reads/writes pager frames. Slot layout is preserved exactly.
  void AttachStore(PageStore* store);

  bool paged() const { return store_ != nullptr; }

  /// Adds every physical page id reachable from this heap's chains to
  /// `live` (the storage engine's checkpoint mark phase).
  void CollectChainPages(std::set<uint32_t>* live) const;

  /// The logical page a RowId maps to — the latch key the concurrency
  /// engine guards row operations with in paged mode.
  static uint32_t LatchPageOf(RowId id) { return id.page; }

 private:
  struct Page {
    std::vector<Row> rows;        // size == live.size()
    std::vector<uint8_t> live;    // 1 = live, 0 = tombstone
  };

  /// Paged-mode resident metadata of one logical page. Row payloads live in
  /// the PageStore under `chain`; the liveness bitmap stays resident so
  /// liveness checks and PeekInsert never touch the pager.
  struct PagedPage {
    std::vector<uint32_t> chain;
    std::vector<uint8_t> live;
    uint32_t slots = 0;
    /// PageStore::cow_epoch() as of the last chain write; a flush under an
    /// older epoch while cow is active copy-on-writes to a fresh chain.
    uint64_t cow_epoch = 0;
  };

  static Page MakePage();

  // Paged-mode internals (all no-ops / unreachable in memory mode).
  static constexpr uint32_t kNoCachedPage = UINT32_MAX;
  /// Decodes logical page `p` into the cache, flushing the previous cached
  /// page first.
  void LoadPage(uint32_t p) const;
  /// Serializes the cached page back through the store if dirty, applying
  /// copy-on-write when the chain is shared with a snapshot.
  void FlushCache() const;
  std::string EncodeCachedPage() const;

  RowId PagedInsert(Row row);
  bool PagedDelete(RowId id);
  bool PagedUpdate(RowId id, Row row);
  const Row* PagedGetSlot(RowId id) const;

  // Memory mode.
  std::deque<Page> pages_;

  // Paged mode. Mutable because cache write-back from const readers updates
  // chains (copy-on-write swaps page ids) and cow epochs — the logical row
  // content never changes from a const member.
  PageStore* store_ = nullptr;
  mutable std::vector<PagedPage> ppages_;
  /// One-page decoded cache. Mutable: reads route through it. In concurrent
  /// mode every access happens under the scheduler token, so there is no
  /// data race despite the shared Database.
  mutable uint32_t cached_page_ = kNoCachedPage;
  mutable std::vector<Row> cached_rows_;
  mutable bool cached_dirty_ = false;

  size_t live_rows_ = 0;
  size_t dead_slots_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_HEAP_TABLE_H_
