#ifndef LEGO_MINIDB_HEAP_TABLE_H_
#define LEGO_MINIDB_HEAP_TABLE_H_

#include <functional>
#include <vector>

#include "minidb/row.h"

namespace lego::minidb {

/// Page-structured row store. Rows live in fixed-capacity pages with a
/// per-slot liveness bit; deletes tombstone slots and VACUUM compacts pages.
/// The structure deliberately mirrors a slotted-page heap so scans, row ids,
/// and vacuum behave like a real engine's.
class HeapTable {
 public:
  static constexpr uint32_t kRowsPerPage = 64;

  HeapTable() = default;

  /// Deep copy (used by snapshot-based transactions).
  HeapTable(const HeapTable&) = default;
  HeapTable& operator=(const HeapTable&) = default;
  HeapTable(HeapTable&&) = default;
  HeapTable& operator=(HeapTable&&) = default;

  /// Appends `row`, reusing a tombstoned slot if one exists on the last
  /// page; returns its location.
  RowId Insert(Row row);

  /// Tombstones the slot. Returns false if already dead or out of range.
  bool Delete(RowId id);

  /// Replaces the row in place. Returns false if the slot is dead.
  bool Update(RowId id, Row row);

  /// Fetches a live row; returns nullptr for dead/out-of-range slots.
  const Row* Get(RowId id) const;

  /// Invokes `fn(id, row)` for every live row in physical order; stops early
  /// if fn returns false.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Number of live rows.
  size_t LiveRowCount() const { return live_rows_; }

  /// Number of allocated pages.
  size_t PageCount() const { return pages_.size(); }

  /// Fraction of allocated slots that are dead (0 when empty).
  double DeadFraction() const;

  /// Compacts pages, dropping tombstones. Invalidates all RowIds; the caller
  /// must rebuild indexes afterwards.
  void Vacuum();

  /// Drops all rows and pages.
  void Clear();

 private:
  struct Page {
    std::vector<Row> rows;        // size == live.size()
    std::vector<uint8_t> live;    // 1 = live, 0 = tombstone
  };

  std::vector<Page> pages_;
  size_t live_rows_ = 0;
  size_t dead_slots_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_HEAP_TABLE_H_
