#ifndef LEGO_MINIDB_BUFFER_POOL_H_
#define LEGO_MINIDB_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "minidb/env.h"

namespace lego::minidb {

/// Fixed-budget page cache over one PagedFile, clock (second-chance)
/// eviction. The snapshot writer/reader streams every page image through a
/// pool, so eviction and dirty write-back are on the hot path of normal
/// checkpoints and recoveries — not just of synthetic tests.
///
/// Contract:
///  - Pin() returns a frame holding the page, loading it on a miss (evicting
///    an unpinned victim if the pool is full; a dirty victim is written back
///    first, passing the `pager.flush` failpoint).
///  - The pointer stays valid until the matching Unpin(). Pins nest.
///  - Unpin(dirty=true) marks the frame; the page reaches the file at
///    eviction or FlushAll(), never before (no-force).
///  - Pinning more distinct pages than there are frames fails Internal.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };

  BufferPool(PagedFile* file, size_t frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins `page_id` and returns its frame buffer (kPageSize bytes).
  StatusOr<char*> Pin(uint64_t page_id);
  void Unpin(uint64_t page_id, bool dirty);

  /// Writes back every dirty frame (pinned or not) and syncs the file.
  Status FlushAll();

  size_t frame_count() const { return frames_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Frame {
    uint64_t page_id = 0;
    bool valid = false;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
    uint32_t pins = 0;
    std::vector<char> data;
  };

  /// Clock sweep for an unpinned victim; flushes it if dirty.
  StatusOr<size_t> Evict();
  Status WriteBack(Frame* frame);

  PagedFile* file_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> page_to_frame_;
  size_t clock_hand_ = 0;
  Stats stats_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_BUFFER_POOL_H_
