#include "minidb/value.h"

#include <cmath>
#include <cstdlib>

#include "util/hash.h"

namespace lego::minidb {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kReal: return "REAL";
    case ValueType::kText: return "TEXT";
    case ValueType::kBool: return "BOOL";
  }
  return "?";
}

ValueType FromSqlType(sql::SqlType t) {
  switch (t) {
    case sql::SqlType::kInt: return ValueType::kInt;
    case sql::SqlType::kReal: return ValueType::kReal;
    case sql::SqlType::kText: return ValueType::kText;
    case sql::SqlType::kBool: return ValueType::kBool;
  }
  return ValueType::kNull;
}

Value Value::FromLiteral(const sql::Literal& lit) {
  switch (lit.tag()) {
    case sql::Literal::Tag::kNull: return Null();
    case sql::Literal::Tag::kInt: return Int(lit.int_value());
    case sql::Literal::Tag::kReal: return Real(lit.real_value());
    case sql::Literal::Tag::kText: return Text(lit.text_value());
    case sql::Literal::Tag::kBool: return Bool(lit.bool_value());
  }
  return Null();
}

double Value::AsReal() const {
  switch (type_) {
    case ValueType::kNull: return 0.0;
    case ValueType::kInt: return static_cast<double>(int_);
    case ValueType::kReal: return real_;
    case ValueType::kText: return std::strtod(text_.c_str(), nullptr);
    case ValueType::kBool: return bool_ ? 1.0 : 0.0;
  }
  return 0.0;
}

int64_t Value::AsInt() const {
  if (type_ == ValueType::kInt) return int_;
  double d = AsReal();
  if (std::isnan(d)) return 0;
  if (d >= 9.2233720368547758e18) return INT64_MAX;
  if (d <= -9.2233720368547758e18) return INT64_MIN;
  return static_cast<int64_t>(d);
}

bool Value::AsBool() const {
  switch (type_) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return int_ != 0;
    case ValueType::kReal: return real_ != 0.0;
    case ValueType::kText: return !text_.empty() && text_ != "0";
    case ValueType::kBool: return bool_;
  }
  return false;
}

std::string Value::ToText() const {
  switch (type_) {
    case ValueType::kNull: return "";
    case ValueType::kInt: return std::to_string(int_);
    case ValueType::kReal: {
      char buf[64];
      snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    }
    case ValueType::kText: return text_;
    case ValueType::kBool: return bool_ ? "true" : "false";
  }
  return "";
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull: return "NULL";
    case ValueType::kText: return "'" + text_ + "'";
    default: return ToText();
  }
}

int Value::Compare(const Value& other) const {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kBool: return 1;
      case ValueType::kInt:
      case ValueType::kReal: return 2;
      case ValueType::kText: return 3;
    }
    return 4;
  };
  int ra = rank(type_);
  int rb = rank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool ob = other.bool_;
      if (bool_ == ob) return 0;
      return bool_ ? 1 : -1;
    }
    case ValueType::kInt:
    case ValueType::kReal: {
      if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
        if (int_ == other.int_) return 0;
        return int_ < other.int_ ? -1 : 1;
      }
      double a = AsReal();
      double b = other.AsReal();
      if (std::isnan(a) && std::isnan(b)) return 0;
      if (std::isnan(a)) return -1;
      if (std::isnan(b)) return 1;
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    case ValueType::kText: {
      int c = text_.compare(other.text_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kBool:
      return HashMix(0x626f6f6cULL, bool_ ? 1 : 0);
    case ValueType::kInt:
      return HashMix(0x6e756dULL, static_cast<uint64_t>(
                                      static_cast<double>(int_) == 0.0
                                          ? 0
                                          : std::llround(AsReal() * 1024.0)));
    case ValueType::kReal:
      return HashMix(0x6e756dULL,
                     static_cast<uint64_t>(
                         real_ == 0.0 ? 0 : std::llround(real_ * 1024.0)));
    case ValueType::kText:
      return Fnv1a64(text_);
  }
  return 0;
}

Value Value::CastTo(ValueType target) const {
  if (is_null()) return Null();
  switch (target) {
    case ValueType::kNull:
      return Null();
    case ValueType::kInt:
      return Int(AsInt());
    case ValueType::kReal:
      return Real(AsReal());
    case ValueType::kText:
      return Text(ToText());
    case ValueType::kBool:
      return Bool(AsBool());
  }
  return Null();
}

}  // namespace lego::minidb
