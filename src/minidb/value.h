#ifndef LEGO_MINIDB_VALUE_H_
#define LEGO_MINIDB_VALUE_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace lego::minidb {

/// Runtime value type tags.
enum class ValueType : uint8_t { kNull, kInt, kReal, kText, kBool };

/// Display name, e.g. "INT".
std::string_view ValueTypeName(ValueType t);

/// Maps a declared SQL column type to its runtime value type.
ValueType FromSqlType(sql::SqlType t);

/// A runtime SQL value: NULL, 64-bit integer, double, text, or boolean.
/// Values are cheap to copy (small strings dominate fuzzing workloads).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value x;
    x.type_ = ValueType::kInt;
    x.int_ = v;
    return x;
  }
  static Value Real(double v) {
    Value x;
    x.type_ = ValueType::kReal;
    x.real_ = v;
    return x;
  }
  static Value Text(std::string v) {
    Value x;
    x.type_ = ValueType::kText;
    x.text_ = std::move(v);
    return x;
  }
  static Value Bool(bool v) {
    Value x;
    x.type_ = ValueType::kBool;
    x.bool_ = v;
    return x;
  }

  /// Converts a parsed literal into a runtime value.
  static Value FromLiteral(const sql::Literal& lit);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  int64_t int_value() const { return int_; }
  double real_value() const { return real_; }
  const std::string& text_value() const { return text_; }
  bool bool_value() const { return bool_; }

  /// Numeric view: INT/REAL/BOOL as double; TEXT parsed leniently (leading
  /// numeric prefix, else 0); NULL is 0. Mirrors weak-typing engines.
  double AsReal() const;

  /// Integer view (AsReal truncated toward zero).
  int64_t AsInt() const;

  /// SQL three-valued truthiness: NULL is unknown (caller handles); nonzero
  /// numbers and "true"-ish text are true.
  bool AsBool() const;

  /// Text rendering used by COPY/result output ("" for NULL).
  std::string ToText() const;

  /// Diagnostic rendering (NULL prints as "NULL", text quoted).
  std::string ToString() const;

  /// Total order over all values, for index keys and ORDER BY:
  /// NULL < BOOL < numeric (INT/REAL compared numerically) < TEXT.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL equality for DISTINCT/GROUP BY key purposes (NULLs equal).
  bool KeyEquals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with KeyEquals.
  uint64_t Hash() const;

  /// Casts to `target`; lenient like SQLite (never fails, NULL stays NULL).
  Value CastTo(ValueType target) const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double real_ = 0.0;
  std::string text_;
  bool bool_ = false;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_VALUE_H_
