#ifndef LEGO_MINIDB_PLAN_H_
#define LEGO_MINIDB_PLAN_H_

#include <memory>
#include <string>

#include "sql/ast.h"

namespace lego::minidb {

/// How a base table is read.
enum class ScanMethod : uint8_t { kSeqScan, kIndexEqual, kIndexRange };

/// Join algorithm chosen by the planner.
enum class JoinStrategy : uint8_t { kNestedLoop, kHashJoin };

/// One node of the FROM-clause access plan. Raw pointers reference the
/// statement's AST and live only for the duration of statement execution.
struct PlanNode {
  enum class Kind : uint8_t { kScan, kJoin, kSubquery, kView, kCte };

  Kind kind = Kind::kScan;

  // --- kScan ---
  std::string table;
  std::string alias;  // exposure name ("" = table name)
  ScanMethod method = ScanMethod::kSeqScan;
  std::string index_name;
  const sql::Expr* eq_probe = nullptr;    // kIndexEqual probe value
  const sql::Expr* range_lo = nullptr;    // kIndexRange bounds (may be null)
  bool lo_inclusive = true;
  const sql::Expr* range_hi = nullptr;
  bool hi_inclusive = true;

  // --- kJoin ---
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  sql::JoinType join_type = sql::JoinType::kInner;
  const sql::Expr* join_on = nullptr;       // full ON predicate (may be null)
  const sql::Expr* hash_left_key = nullptr; // equi-key evaluated on left rows
  const sql::Expr* hash_right_key = nullptr;
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  // --- kSubquery / kView / kCte ---
  const sql::SelectStmt* subselect = nullptr;  // kSubquery, kView
  std::string cte_name;                        // kCte

  /// Human-readable plan line(s), two-space indented per level; used by
  /// EXPLAIN.
  void Describe(int indent, std::string* out) const;
};

/// Access + shape summary for one SELECT. Shape flags drive both execution
/// and EXPLAIN output.
struct SelectPlan {
  std::unique_ptr<PlanNode> from;  // null when the SELECT has no FROM
  const sql::Expr* filter = nullptr;
  bool has_aggregate = false;
  bool has_group_by = false;
  bool has_having = false;
  bool distinct = false;
  bool has_order_by = false;
  bool has_limit = false;
  bool has_window = false;
  bool has_compound = false;

  /// Multi-line EXPLAIN rendering.
  std::string Describe() const;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_PLAN_H_
