#ifndef LEGO_MINIDB_PLANNER_H_
#define LEGO_MINIDB_PLANNER_H_

#include <map>
#include <string>

#include "minidb/catalog.h"
#include "minidb/plan.h"
#include "minidb/profile.h"
#include "minidb/relation.h"
#include "util/status.h"

namespace lego::minidb {

/// Rule-based planner: picks an access path for each base table (index
/// equality, index range, else sequential scan) and a join strategy
/// (hash join for equi-joins over inputs past a size threshold, nested loop
/// otherwise). Statistics recorded by ANALYZE refine the size estimates.
class Planner {
 public:
  /// Both sides become hash-join candidates at or above this many rows.
  static constexpr int64_t kHashJoinThreshold = 4;

  Planner(const Catalog* catalog, const DialectProfile* profile,
          const std::map<std::string, Relation>* cte_bindings)
      : catalog_(catalog), profile_(profile), ctes_(cte_bindings) {}

  /// Plans the first core of `stmt` (compound arms are planned separately by
  /// the executor when it evaluates them).
  StatusOr<SelectPlan> PlanSelect(const sql::SelectStmt& stmt) const;

  /// Plans one SELECT core's FROM + WHERE access paths. The returned plan
  /// holds raw pointers into `core`'s AST, which must outlive it.
  StatusOr<SelectPlan> PlanCore(const sql::SelectCore& core) const;

 private:
  StatusOr<std::unique_ptr<PlanNode>> PlanTableRef(
      const sql::TableRef& ref, const sql::Expr* where) const;

  /// Attempts to upgrade a seq scan of `node` to an index scan using `where`
  /// conjuncts of the form <col> = <const> or <col> </>/<=/>= <const>.
  void ChooseAccessPath(PlanNode* node, const sql::Expr* where) const;

  /// Estimated row count of a plan input (live heap count, overridden by
  /// ANALYZE stats where available). Non-base inputs estimate high so
  /// subquery joins prefer hashing.
  int64_t EstimateRows(const PlanNode& node) const;

  const Catalog* catalog_;
  const DialectProfile* profile_;
  const std::map<std::string, Relation>* ctes_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_PLANNER_H_
