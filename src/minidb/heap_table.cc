#include "minidb/heap_table.h"

#include <algorithm>
#include <utility>

#include "minidb/page_store.h"
#include "minidb/storage_serde.h"
#include "persist/io.h"

namespace lego::minidb {

namespace {
thread_local RowObserver* tls_row_observer = nullptr;
thread_local StorageObserver* tls_storage_observer = nullptr;
}  // namespace

RowObserver* RowHooks::Get() { return tls_row_observer; }
void RowHooks::Set(RowObserver* observer) { tls_row_observer = observer; }

StorageObserver* StorageHooks::Get() { return tls_storage_observer; }
void StorageHooks::Set(StorageObserver* observer) {
  tls_storage_observer = observer;
}

HeapTable::Page HeapTable::MakePage() {
  Page page;
  // Full-capacity reservation: slot storage never relocates, so references
  // held across a concurrent park stay valid.
  page.rows.reserve(kRowsPerPage);
  page.live.reserve(kRowsPerPage);
  return page;
}

// --- paged-mode cache machinery ---

std::string HeapTable::EncodeCachedPage() const {
  persist::StateWriter w;
  w.WriteU32(static_cast<uint32_t>(cached_rows_.size()));
  for (const Row& row : cached_rows_) SerializeRow(row, &w);
  return w.buffer();
}

void HeapTable::FlushCache() const {
  if (cached_page_ == kNoCachedPage || !cached_dirty_) return;
  if (cached_page_ >= ppages_.size()) {  // page vanished (Clear/Vacuum race)
    cached_dirty_ = false;
    return;
  }
  PagedPage& pp = ppages_[cached_page_];
  // A dirty page whose last write predates the current cow epoch is shared
  // with a snapshot transaction's catalog copy — write a fresh chain so the
  // snapshot keeps its bytes.
  const bool cow = store_->cow_active() && pp.cow_epoch != store_->cow_epoch();
  const std::string blob = EncodeCachedPage();
  store_->WriteBlob(&pp.chain, blob, cow);
  pp.cow_epoch = store_->cow_epoch();
  cached_dirty_ = false;
}

void HeapTable::LoadPage(uint32_t p) const {
  if (cached_page_ == p) return;
  FlushCache();
  cached_page_ = p;
  cached_rows_.clear();
  cached_dirty_ = false;
  const PagedPage& pp = ppages_[p];
  if (!pp.chain.empty()) {
    std::string blob;
    store_->ReadBlob(pp.chain, &blob);
    persist::StateReader r = persist::StateReader::FromPayload(std::move(blob));
    const uint32_t count = r.ReadU32();
    for (uint32_t i = 0; i < count && r.ok(); ++i) {
      cached_rows_.push_back(DeserializeRow(&r));
    }
    if (!r.ok()) cached_rows_.clear();  // torn/failed read: empty rows
  }
  // The resident metadata is authoritative for the slot count: an insert
  // grows slots before the blob is rewritten, and a failed read must still
  // yield an addressable page.
  cached_rows_.resize(ppages_[p].slots);
}

// --- insert ---

RowId HeapTable::PeekInsert() const {
  if (store_ != nullptr) {
    if (ppages_.empty() || ppages_.back().slots >= kRowsPerPage) {
      return RowId{static_cast<uint32_t>(ppages_.size()), 0};
    }
    const PagedPage& pp = ppages_.back();
    if (dead_slots_ > 0) {
      for (uint32_t i = 0; i < pp.slots; ++i) {
        if (!pp.live[i]) {
          return RowId{static_cast<uint32_t>(ppages_.size() - 1), i};
        }
      }
    }
    return RowId{static_cast<uint32_t>(ppages_.size() - 1), pp.slots};
  }
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    return RowId{static_cast<uint32_t>(pages_.size()), 0};
  }
  const Page& page = pages_.back();
  if (dead_slots_ > 0) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) {
        return RowId{static_cast<uint32_t>(pages_.size() - 1),
                     static_cast<uint32_t>(i)};
      }
    }
  }
  return RowId{static_cast<uint32_t>(pages_.size() - 1),
               static_cast<uint32_t>(page.rows.size())};
}

RowId HeapTable::PagedInsert(Row row) {
  if (ppages_.empty() || ppages_.back().slots >= kRowsPerPage) {
    ppages_.emplace_back();
    ppages_.back().cow_epoch = store_->cow_epoch();
  }
  const uint32_t p = static_cast<uint32_t>(ppages_.size() - 1);
  PagedPage& pp = ppages_[p];
  // Reuse a tombstoned slot on the tail page first (same policy as memory
  // mode — RowId assignment stays digest-identical).
  uint32_t slot = pp.slots;
  if (dead_slots_ > 0) {
    for (uint32_t i = 0; i < pp.slots; ++i) {
      if (!pp.live[i]) {
        slot = i;
        break;
      }
    }
  }
  LoadPage(p);
  if (slot < pp.slots) {
    cached_rows_[slot] = std::move(row);
    pp.live[slot] = 1;
    ++live_rows_;
    --dead_slots_;
  } else {
    cached_rows_.push_back(std::move(row));
    pp.live.push_back(1);
    ++pp.slots;
    ++live_rows_;
  }
  cached_dirty_ = true;
  return RowId{p, slot};
}

RowId HeapTable::Insert(Row row) {
  if (RowObserver* o = RowHooks::Get()) o->OnInsert(this);
  if (store_ != nullptr) {
    const RowId id = PagedInsert(std::move(row));
    if (StorageObserver* s = StorageHooks::Get()) s->OnPut(this, id, nullptr);
    return id;
  }
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    pages_.push_back(MakePage());
  }
  Page& page = pages_.back();
  // Reuse a tombstoned slot on the tail page first.
  if (dead_slots_ > 0) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) {
        page.rows[i] = std::move(row);
        page.live[i] = 1;
        ++live_rows_;
        --dead_slots_;
        const RowId id{static_cast<uint32_t>(pages_.size() - 1),
                       static_cast<uint32_t>(i)};
        if (StorageObserver* s = StorageHooks::Get()) {
          s->OnPut(this, id, nullptr);
        }
        return id;
      }
    }
  }
  page.rows.push_back(std::move(row));
  page.live.push_back(1);
  ++live_rows_;
  const RowId id{static_cast<uint32_t>(pages_.size() - 1),
                 static_cast<uint32_t>(page.rows.size() - 1)};
  if (StorageObserver* s = StorageHooks::Get()) s->OnPut(this, id, nullptr);
  return id;
}

// --- delete / update ---

bool HeapTable::PagedDelete(RowId id) {
  if (id.page >= ppages_.size()) return false;
  PagedPage& pp = ppages_[id.page];
  if (id.slot >= pp.slots || !pp.live[id.slot]) return false;
  LoadPage(id.page);
  Row before = std::move(cached_rows_[id.slot]);
  cached_rows_[id.slot].clear();
  pp.live[id.slot] = 0;
  --live_rows_;
  ++dead_slots_;
  cached_dirty_ = true;
  if (StorageObserver* s = StorageHooks::Get()) s->OnErase(this, id, before);
  return true;
}

bool HeapTable::Delete(RowId id) {
  if (RowObserver* o = RowHooks::Get()) o->OnDelete(this, id);
  if (store_ != nullptr) return PagedDelete(id);
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return false;
  StorageObserver* s = StorageHooks::Get();
  Row before;
  if (s != nullptr) before = std::move(page.rows[id.slot]);
  page.live[id.slot] = 0;
  page.rows[id.slot].clear();
  --live_rows_;
  ++dead_slots_;
  if (s != nullptr) s->OnErase(this, id, before);
  return true;
}

bool HeapTable::PagedUpdate(RowId id, Row row) {
  if (id.page >= ppages_.size()) return false;
  PagedPage& pp = ppages_[id.page];
  if (id.slot >= pp.slots || !pp.live[id.slot]) return false;
  LoadPage(id.page);
  StorageObserver* s = StorageHooks::Get();
  Row before;
  if (s != nullptr) before = std::move(cached_rows_[id.slot]);
  cached_rows_[id.slot] = std::move(row);
  cached_dirty_ = true;
  if (s != nullptr) s->OnPut(this, id, &before);
  return true;
}

bool HeapTable::Update(RowId id, Row row) {
  if (RowObserver* o = RowHooks::Get()) o->OnUpdate(this, id);
  if (store_ != nullptr) return PagedUpdate(id, std::move(row));
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return false;
  StorageObserver* s = StorageHooks::Get();
  Row before;
  if (s != nullptr) before = std::move(page.rows[id.slot]);
  page.rows[id.slot] = std::move(row);
  if (s != nullptr) s->OnPut(this, id, &before);
  return true;
}

// --- reads ---

const Row* HeapTable::PagedGetSlot(RowId id) const {
  if (id.page >= ppages_.size()) return nullptr;
  const PagedPage& pp = ppages_[id.page];
  if (id.slot >= pp.slots || !pp.live[id.slot]) return nullptr;
  LoadPage(id.page);
  return &cached_rows_[id.slot];
}

const Row* HeapTable::Get(RowId id) const {
  if (store_ != nullptr) {
    // Liveness metadata is resident: dead/out-of-range lookups never touch
    // the pager.
    if (id.page >= ppages_.size()) return nullptr;
    const PagedPage& pp = ppages_[id.page];
    if (id.slot >= pp.slots || !pp.live[id.slot]) return nullptr;
    if (RowObserver* o = RowHooks::Get()) {
      o->OnRead(this, id);
      if (!pp.live[id.slot]) return nullptr;
    }
    // Load *after* the observer: parking may have let another session swap
    // the decoded cache to a different page.
    return PagedGetSlot(id);
  }
  if (id.page >= pages_.size()) return nullptr;
  const Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return nullptr;
  if (RowObserver* o = RowHooks::Get()) {
    o->OnRead(this, id);
    // Re-check: the observer may have parked this thread and (under a
    // planted isolation defect) the row may have died meanwhile.
    if (!page.live[id.slot]) return nullptr;
  }
  return &page.rows[id.slot];
}

const Row* HeapTable::RawRow(RowId id) const {
  if (store_ != nullptr) return PagedGetSlot(id);
  if (id.page >= pages_.size()) return nullptr;
  const Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return nullptr;
  return &page.rows[id.slot];
}

bool HeapTable::ResurrectAt(RowId id, Row row) {
  if (store_ != nullptr) {
    if (id.page >= ppages_.size()) return false;
    PagedPage& pp = ppages_[id.page];
    if (id.slot >= pp.slots || pp.live[id.slot]) return false;
    LoadPage(id.page);
    cached_rows_[id.slot] = std::move(row);
    pp.live[id.slot] = 1;
    ++live_rows_;
    --dead_slots_;
    cached_dirty_ = true;
    if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
    return true;
  }
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || page.live[id.slot]) return false;
  page.rows[id.slot] = std::move(row);
  page.live[id.slot] = 1;
  ++live_rows_;
  --dead_slots_;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
  return true;
}

void HeapTable::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  if (store_ != nullptr) {
    for (uint32_t p = 0; p < ppages_.size(); ++p) {
      const PagedPage& pp = ppages_[p];
      for (uint32_t s = 0; s < pp.slots; ++s) {
        if (!pp.live[s]) continue;
        if (RowObserver* o = RowHooks::Get()) {
          o->OnRead(this, RowId{p, s});
          if (!pp.live[s]) continue;  // died while parked (planted defects)
        }
        LoadPage(p);
        // Copy out: the callback may itself read this heap (subqueries,
        // index maintenance) and swap the decoded cache under us.
        const Row row = cached_rows_[s];
        if (!fn(RowId{p, s}, row)) return;
      }
    }
    return;
  }
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.rows.size(); ++s) {
      if (!page.live[s]) continue;
      if (RowObserver* o = RowHooks::Get()) {
        o->OnRead(this, RowId{p, s});
        if (!page.live[s]) continue;  // died while parked (planted defects)
      }
      if (!fn(RowId{p, s}, page.rows[s])) return;
    }
  }
}

double HeapTable::DeadFraction() const {
  size_t total = live_rows_ + dead_slots_;
  return total == 0 ? 0.0 : static_cast<double>(dead_slots_) / total;
}

void HeapTable::Vacuum() {
  if (store_ != nullptr) {
    // Collect survivors (copies — the decoded cache is being torn down),
    // then rebuild fresh fully-packed pages. Old chains become garbage for
    // the next checkpoint sweep; they may still back a snapshot copy.
    std::vector<Row> survivors;
    survivors.reserve(live_rows_);
    for (uint32_t p = 0; p < ppages_.size(); ++p) {
      const PagedPage& pp = ppages_[p];
      for (uint32_t s = 0; s < pp.slots; ++s) {
        if (!pp.live[s]) continue;
        LoadPage(p);
        survivors.push_back(cached_rows_[s]);
      }
    }
    ppages_.clear();
    cached_page_ = kNoCachedPage;
    cached_rows_.clear();
    cached_dirty_ = false;
    live_rows_ = survivors.size();
    dead_slots_ = 0;
    for (size_t off = 0; off < survivors.size(); off += kRowsPerPage) {
      const size_t n = std::min<size_t>(kRowsPerPage, survivors.size() - off);
      ppages_.emplace_back();
      PagedPage& pp = ppages_.back();
      pp.slots = static_cast<uint32_t>(n);
      pp.live.assign(n, 1);
      pp.cow_epoch = store_->cow_epoch();
      persist::StateWriter w;
      w.WriteU32(static_cast<uint32_t>(n));
      for (size_t i = 0; i < n; ++i) SerializeRow(survivors[off + i], &w);
      store_->WriteBlob(&pp.chain, w.buffer(), /*copy_on_write=*/false);
    }
    if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
    return;
  }
  std::deque<Page> compacted;
  for (Page& page : pages_) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) continue;
      if (compacted.empty() || compacted.back().rows.size() >= kRowsPerPage) {
        compacted.push_back(MakePage());
      }
      compacted.back().rows.push_back(std::move(page.rows[i]));
      compacted.back().live.push_back(1);
    }
  }
  pages_ = std::move(compacted);
  dead_slots_ = 0;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
}

void HeapTable::Clear() {
  pages_.clear();
  // Paged mode: chains are orphaned, not freed — a snapshot copy may still
  // reference them. The checkpoint sweep reclaims them.
  ppages_.clear();
  cached_page_ = kNoCachedPage;
  cached_rows_.clear();
  cached_dirty_ = false;
  live_rows_ = 0;
  dead_slots_ = 0;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
}

void HeapTable::VisitSlots(
    const std::function<void(RowId, bool, const Row&)>& fn) const {
  if (store_ != nullptr) {
    for (uint32_t p = 0; p < ppages_.size(); ++p) {
      const PagedPage& pp = ppages_[p];
      for (uint32_t s = 0; s < pp.slots; ++s) {
        LoadPage(p);  // re-assert per slot: fn may read through this heap
        fn(RowId{p, s}, pp.live[s] != 0, cached_rows_[s]);
      }
    }
    return;
  }
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.rows.size(); ++s) {
      fn(RowId{p, s}, page.live[s] != 0, page.rows[s]);
    }
  }
}

void HeapTable::AppendRawPage() {
  if (store_ != nullptr) {
    ppages_.emplace_back();
    ppages_.back().cow_epoch = store_->cow_epoch();
    return;
  }
  pages_.push_back(MakePage());
}

void HeapTable::AppendRawSlot(Row row, bool live) {
  if (store_ != nullptr) {
    if (ppages_.empty() || ppages_.back().slots >= kRowsPerPage) {
      AppendRawPage();
    }
    const uint32_t p = static_cast<uint32_t>(ppages_.size() - 1);
    PagedPage& pp = ppages_[p];
    LoadPage(p);
    cached_rows_.push_back(std::move(row));
    pp.live.push_back(live ? 1 : 0);
    ++pp.slots;
    cached_dirty_ = true;
    if (live) {
      ++live_rows_;
    } else {
      ++dead_slots_;
    }
    return;
  }
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    pages_.push_back(MakePage());
  }
  Page& page = pages_.back();
  page.rows.push_back(std::move(row));
  page.live.push_back(live ? 1 : 0);
  if (live) {
    ++live_rows_;
  } else {
    ++dead_slots_;
  }
}

void HeapTable::ApplyPut(RowId id, Row row) {
  if (store_ != nullptr) {
    while (ppages_.size() <= id.page) {
      ppages_.emplace_back();
      ppages_.back().cow_epoch = store_->cow_epoch();
    }
    PagedPage& pp = ppages_[id.page];
    LoadPage(id.page);
    while (pp.slots <= id.slot && pp.slots < kRowsPerPage) {
      cached_rows_.emplace_back();
      pp.live.push_back(0);
      ++pp.slots;
      ++dead_slots_;
      cached_dirty_ = true;
    }
    if (id.slot >= pp.slots) return;  // malformed record; skip
    if (!pp.live[id.slot]) {
      pp.live[id.slot] = 1;
      ++live_rows_;
      --dead_slots_;
    }
    cached_rows_[id.slot] = std::move(row);
    cached_dirty_ = true;
    return;
  }
  while (pages_.size() <= id.page) pages_.push_back(MakePage());
  Page& page = pages_[id.page];
  while (page.rows.size() <= id.slot && page.rows.size() < kRowsPerPage) {
    page.rows.emplace_back();
    page.live.push_back(0);
    ++dead_slots_;
  }
  if (id.slot >= page.rows.size()) return;  // malformed record; skip
  if (!page.live[id.slot]) {
    page.live[id.slot] = 1;
    ++live_rows_;
    --dead_slots_;
  }
  page.rows[id.slot] = std::move(row);
}

void HeapTable::ApplyDelete(RowId id) {
  if (store_ != nullptr) {
    if (id.page >= ppages_.size()) return;
    PagedPage& pp = ppages_[id.page];
    if (id.slot >= pp.slots || !pp.live[id.slot]) return;
    LoadPage(id.page);
    cached_rows_[id.slot].clear();
    pp.live[id.slot] = 0;
    --live_rows_;
    ++dead_slots_;
    cached_dirty_ = true;
    return;
  }
  if (id.page >= pages_.size()) return;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return;
  page.live[id.slot] = 0;
  page.rows[id.slot].clear();
  --live_rows_;
  ++dead_slots_;
}

// --- paged mode wiring ---

void HeapTable::AttachStore(PageStore* store) {
  if (store_ == store) return;
  store_ = store;
  ppages_.clear();
  cached_page_ = kNoCachedPage;
  cached_rows_.clear();
  cached_dirty_ = false;
  for (Page& page : pages_) {
    ppages_.emplace_back();
    PagedPage& pp = ppages_.back();
    pp.live = page.live;
    pp.slots = static_cast<uint32_t>(page.rows.size());
    pp.cow_epoch = store_->cow_epoch();
    persist::StateWriter w;
    w.WriteU32(pp.slots);
    for (const Row& row : page.rows) SerializeRow(row, &w);
    store_->WriteBlob(&pp.chain, w.buffer(), /*copy_on_write=*/false);
  }
  pages_.clear();
}

void HeapTable::CollectChainPages(std::set<uint32_t>* live) const {
  for (const PagedPage& pp : ppages_) {
    live->insert(pp.chain.begin(), pp.chain.end());
  }
}

}  // namespace lego::minidb
