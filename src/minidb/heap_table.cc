#include "minidb/heap_table.h"

namespace lego::minidb {

namespace {
thread_local RowObserver* tls_row_observer = nullptr;
thread_local StorageObserver* tls_storage_observer = nullptr;
}  // namespace

RowObserver* RowHooks::Get() { return tls_row_observer; }
void RowHooks::Set(RowObserver* observer) { tls_row_observer = observer; }

StorageObserver* StorageHooks::Get() { return tls_storage_observer; }
void StorageHooks::Set(StorageObserver* observer) {
  tls_storage_observer = observer;
}

HeapTable::Page HeapTable::MakePage() {
  Page page;
  // Full-capacity reservation: slot storage never relocates, so references
  // held across a concurrent park stay valid.
  page.rows.reserve(kRowsPerPage);
  page.live.reserve(kRowsPerPage);
  return page;
}

RowId HeapTable::PeekInsert() const {
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    return RowId{static_cast<uint32_t>(pages_.size()), 0};
  }
  const Page& page = pages_.back();
  if (dead_slots_ > 0) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) {
        return RowId{static_cast<uint32_t>(pages_.size() - 1),
                     static_cast<uint32_t>(i)};
      }
    }
  }
  return RowId{static_cast<uint32_t>(pages_.size() - 1),
               static_cast<uint32_t>(page.rows.size())};
}

RowId HeapTable::Insert(Row row) {
  if (RowObserver* o = RowHooks::Get()) o->OnInsert(this);
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    pages_.push_back(MakePage());
  }
  Page& page = pages_.back();
  // Reuse a tombstoned slot on the tail page first.
  if (dead_slots_ > 0) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) {
        page.rows[i] = std::move(row);
        page.live[i] = 1;
        ++live_rows_;
        --dead_slots_;
        const RowId id{static_cast<uint32_t>(pages_.size() - 1),
                       static_cast<uint32_t>(i)};
        if (StorageObserver* s = StorageHooks::Get()) s->OnPut(this, id);
        return id;
      }
    }
  }
  page.rows.push_back(std::move(row));
  page.live.push_back(1);
  ++live_rows_;
  const RowId id{static_cast<uint32_t>(pages_.size() - 1),
                 static_cast<uint32_t>(page.rows.size() - 1)};
  if (StorageObserver* s = StorageHooks::Get()) s->OnPut(this, id);
  return id;
}

bool HeapTable::Delete(RowId id) {
  if (RowObserver* o = RowHooks::Get()) o->OnDelete(this, id);
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return false;
  page.live[id.slot] = 0;
  page.rows[id.slot].clear();
  --live_rows_;
  ++dead_slots_;
  if (StorageObserver* s = StorageHooks::Get()) s->OnErase(this, id);
  return true;
}

bool HeapTable::Update(RowId id, Row row) {
  if (RowObserver* o = RowHooks::Get()) o->OnUpdate(this, id);
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return false;
  page.rows[id.slot] = std::move(row);
  if (StorageObserver* s = StorageHooks::Get()) s->OnPut(this, id);
  return true;
}

const Row* HeapTable::Get(RowId id) const {
  if (id.page >= pages_.size()) return nullptr;
  const Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return nullptr;
  if (RowObserver* o = RowHooks::Get()) {
    o->OnRead(this, id);
    // Re-check: the observer may have parked this thread and (under a
    // planted isolation defect) the row may have died meanwhile.
    if (!page.live[id.slot]) return nullptr;
  }
  return &page.rows[id.slot];
}

const Row* HeapTable::RawRow(RowId id) const {
  if (id.page >= pages_.size()) return nullptr;
  const Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return nullptr;
  return &page.rows[id.slot];
}

bool HeapTable::ResurrectAt(RowId id, Row row) {
  if (id.page >= pages_.size()) return false;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || page.live[id.slot]) return false;
  page.rows[id.slot] = std::move(row);
  page.live[id.slot] = 1;
  ++live_rows_;
  --dead_slots_;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
  return true;
}

void HeapTable::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.rows.size(); ++s) {
      if (!page.live[s]) continue;
      if (RowObserver* o = RowHooks::Get()) {
        o->OnRead(this, RowId{p, s});
        if (!page.live[s]) continue;  // died while parked (planted defects)
      }
      if (!fn(RowId{p, s}, page.rows[s])) return;
    }
  }
}

double HeapTable::DeadFraction() const {
  size_t total = live_rows_ + dead_slots_;
  return total == 0 ? 0.0 : static_cast<double>(dead_slots_) / total;
}

void HeapTable::Vacuum() {
  std::deque<Page> compacted;
  for (Page& page : pages_) {
    for (size_t i = 0; i < page.rows.size(); ++i) {
      if (!page.live[i]) continue;
      if (compacted.empty() || compacted.back().rows.size() >= kRowsPerPage) {
        compacted.push_back(MakePage());
      }
      compacted.back().rows.push_back(std::move(page.rows[i]));
      compacted.back().live.push_back(1);
    }
  }
  pages_ = std::move(compacted);
  dead_slots_ = 0;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
}

void HeapTable::Clear() {
  pages_.clear();
  live_rows_ = 0;
  dead_slots_ = 0;
  if (StorageObserver* s = StorageHooks::Get()) s->OnStructural(this);
}

void HeapTable::VisitSlots(
    const std::function<void(RowId, bool, const Row&)>& fn) const {
  for (uint32_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.rows.size(); ++s) {
      fn(RowId{p, s}, page.live[s] != 0, page.rows[s]);
    }
  }
}

void HeapTable::AppendRawPage() { pages_.push_back(MakePage()); }

void HeapTable::AppendRawSlot(Row row, bool live) {
  if (pages_.empty() || pages_.back().rows.size() >= kRowsPerPage) {
    pages_.push_back(MakePage());
  }
  Page& page = pages_.back();
  page.rows.push_back(std::move(row));
  page.live.push_back(live ? 1 : 0);
  if (live) {
    ++live_rows_;
  } else {
    ++dead_slots_;
  }
}

void HeapTable::ApplyPut(RowId id, Row row) {
  while (pages_.size() <= id.page) pages_.push_back(MakePage());
  Page& page = pages_[id.page];
  while (page.rows.size() <= id.slot && page.rows.size() < kRowsPerPage) {
    page.rows.emplace_back();
    page.live.push_back(0);
    ++dead_slots_;
  }
  if (id.slot >= page.rows.size()) return;  // malformed record; skip
  if (!page.live[id.slot]) {
    page.live[id.slot] = 1;
    ++live_rows_;
    --dead_slots_;
  }
  page.rows[id.slot] = std::move(row);
}

void HeapTable::ApplyDelete(RowId id) {
  if (id.page >= pages_.size()) return;
  Page& page = pages_[id.page];
  if (id.slot >= page.rows.size() || !page.live[id.slot]) return;
  page.live[id.slot] = 0;
  page.rows[id.slot].clear();
  --live_rows_;
  ++dead_slots_;
}

}  // namespace lego::minidb
