#include "minidb/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "chaos/failpoint.h"

namespace lego::minidb {

namespace {

/// Flush granularity for WritableLog::Sync. Each chunk is one write() and
/// one `env.write` failpoint hit, so a kill:N schedule can land *inside* a
/// multi-chunk flush and produce a genuinely torn record tail.
constexpr size_t kLogFlushChunk = 4096;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for '" + path + "': " +
                          std::strerror(errno));
}

Status InjectedError(const std::string& site, const std::string& path) {
  return Status::Internal("injected " + site + " failure for '" + path + "'");
}

// ---------------------------------------------------------------------------
// POSIX Env
// ---------------------------------------------------------------------------

class PosixWritableLog : public WritableLog {
 public:
  PosixWritableLog(int fd, std::string path, uint64_t synced)
      : fd_(fd), path_(std::move(path)), synced_bytes_(synced) {}
  ~PosixWritableLog() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    buffer_.append(data);
    return Status::OK();
  }

  Status Sync() override {
    size_t off = 0;
    while (off < buffer_.size()) {
      if (LEGO_FAILPOINT("env.write")) {
        buffer_.erase(0, off);
        return InjectedError("env.write", path_);
      }
      const size_t n = std::min(kLogFlushChunk, buffer_.size() - off);
      ssize_t w = ::write(fd_, buffer_.data() + off, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        buffer_.erase(0, off);
        return IoError("write", path_);
      }
      off += static_cast<size_t>(w);
    }
    buffer_.clear();
    if (LEGO_FAILPOINT("env.sync")) return InjectedError("env.sync", path_);
    if (::fsync(fd_) != 0) return IoError("fsync", path_);
    synced_bytes_ += off;
    return Status::OK();
  }

  uint64_t BufferedBytes() const override { return buffer_.size(); }
  uint64_t SyncedBytes() const override { return synced_bytes_; }

 private:
  int fd_;
  std::string path_;
  std::string buffer_;
  uint64_t synced_bytes_ = 0;
};

class PosixPagedFile : public PagedFile {
 public:
  PosixPagedFile(int fd, std::string path, uint64_t page_count, EnvStats* stats)
      : fd_(fd), path_(std::move(path)), page_count_(page_count),
        stats_(stats) {}
  ~PosixPagedFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadPage(uint64_t page_id, char* buf) override {
    std::memset(buf, 0, kPageSize);
    size_t got = 0;
    while (got < kPageSize) {
      ssize_t r = ::pread(fd_, buf + got, kPageSize - got,
                          static_cast<off_t>(page_id * kPageSize + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return IoError("pread", path_);
      }
      if (r == 0) break;  // short file: rest stays zero
      got += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status WritePage(uint64_t page_id, const char* buf) override {
    if (LEGO_FAILPOINT("env.write")) return InjectedError("env.write", path_);
    size_t put = 0;
    while (put < kPageSize) {
      ssize_t w = ::pwrite(fd_, buf + put, kPageSize - put,
                           static_cast<off_t>(page_id * kPageSize + put));
      if (w < 0) {
        if (errno == EINTR) continue;
        return IoError("pwrite", path_);
      }
      put += static_cast<size_t>(w);
    }
    stats_->bytes_written += kPageSize;
    ++stats_->write_calls;
    page_count_ = std::max(page_count_, page_id + 1);
    return Status::OK();
  }

  Status Sync() override {
    if (LEGO_FAILPOINT("env.sync")) return InjectedError("env.sync", path_);
    if (::fsync(fd_) != 0) return IoError("fsync", path_);
    ++stats_->syncs;
    return Status::OK();
  }

  uint64_t PageCount() const override { return page_count_; }

 private:
  int fd_;
  std::string path_;
  uint64_t page_count_;
  EnvStats* stats_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableLog>> NewWritableLog(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return IoError("open", path);
    struct stat st;
    uint64_t size = 0;
    if (::fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    return std::unique_ptr<WritableLog>(
        new StatTrackingLog(fd, path, size, &stats_));
  }

  StatusOr<std::unique_ptr<PagedFile>> OpenPagedFile(const std::string& path,
                                                     bool truncate) override {
    int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return IoError("open", path);
    struct stat st;
    uint64_t pages = 0;
    if (::fstat(fd, &st) == 0) {
      pages = (static_cast<uint64_t>(st.st_size) + kPageSize - 1) / kPageSize;
    }
    return std::unique_ptr<PagedFile>(
        new PosixPagedFile(fd, path, pages, &stats_));
  }

  StatusOr<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoError("open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return IoError("read", path);
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view content) override {
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return IoError("open", tmp);
    size_t off = 0;
    while (off < content.size()) {
      if (LEGO_FAILPOINT("env.write")) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return InjectedError("env.write", tmp);
      }
      ssize_t w = ::write(fd, content.data() + off, content.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        return IoError("write", tmp);
      }
      off += static_cast<size_t>(w);
    }
    stats_.bytes_written += off;
    ++stats_.write_calls;
    if (LEGO_FAILPOINT("env.sync") || ::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return InjectedError("env.sync", tmp);
    }
    ++stats_.syncs;
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      ::unlink(tmp.c_str());
      return IoError("rename", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return IoError("unlink", path);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return IoError("rename", from);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p over the whole path: per-worker db dirs nest under --db-dir.
    std::string prefix;
    size_t pos = 0;
    while (pos <= path.size()) {
      size_t next = path.find('/', pos);
      if (next == std::string::npos) next = path.size();
      prefix = path.substr(0, next);
      if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
          errno != EEXIST) {
        return IoError("mkdir", prefix);
      }
      pos = next + 1;
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return IoError("opendir", path);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(dir)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status RemoveDirRecursive(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return errno == ENOENT ? Status::OK() : IoError("opendir", path);
    }
    while (struct dirent* e = ::readdir(dir)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string full = path + "/" + name;
      struct stat st;
      if (::stat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        Status s = RemoveDirRecursive(full);
        if (!s.ok()) {
          ::closedir(dir);
          return s;
        }
      } else {
        ::unlink(full.c_str());
      }
    }
    ::closedir(dir);
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return IoError("rmdir", path);
    }
    return Status::OK();
  }

 private:
  /// PosixWritableLog plus Env-level stat accounting.
  class StatTrackingLog : public PosixWritableLog {
   public:
    StatTrackingLog(int fd, const std::string& path, uint64_t synced,
                    EnvStats* stats)
        : PosixWritableLog(fd, path, synced), stats_(stats) {}
    Status Append(std::string_view data) override {
      appended_ += data.size();
      return PosixWritableLog::Append(data);
    }
    Status Sync() override {
      const uint64_t pending = BufferedBytes();
      Status s = PosixWritableLog::Sync();
      if (s.ok()) {
        stats_->bytes_written += pending;
        ++stats_->write_calls;
        ++stats_->syncs;
      }
      return s;
    }

   private:
    EnvStats* stats_;
    uint64_t appended_ = 0;
  };
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// ---------------------------------------------------------------------------
// MemEnv
// ---------------------------------------------------------------------------

// Defined at namespace scope (not anonymous) so MemEnv's friend declarations
// in the header actually apply.
class MemWritableLog : public WritableLog {
 public:
  MemWritableLog(MemEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    buffer_.append(data);
    return Status::OK();
  }

  Status Sync() override;

  uint64_t BufferedBytes() const override { return buffer_.size(); }
  uint64_t SyncedBytes() const override { return synced_bytes_; }

 private:
  friend class lego::minidb::MemEnv;
  MemEnv* env_;
  std::string path_;
  std::string buffer_;
  uint64_t synced_bytes_ = 0;
};

class MemPagedFile : public PagedFile {
 public:
  MemPagedFile(MemEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status ReadPage(uint64_t page_id, char* buf) override;
  Status WritePage(uint64_t page_id, const char* buf) override;
  Status Sync() override;
  uint64_t PageCount() const override;

 private:
  MemEnv* env_;
  std::string path_;
};

MemEnv::MemEnv() = default;
MemEnv::~MemEnv() = default;

StatusOr<std::unique_ptr<WritableLog>> MemEnv::NewWritableLog(
    const std::string& path, bool truncate) {
  MemFile& f = files_[path];
  if (truncate) f = MemFile{};
  auto log = std::make_unique<MemWritableLog>(this, path);
  log->synced_bytes_ = f.synced.size();
  return std::unique_ptr<WritableLog>(std::move(log));
}

Status MemWritableLog::Sync() {
  auto it = env_->files_.find(path_);
  if (it == env_->files_.end()) {
    return Status::Internal("mem log file vanished: " + path_);
  }
  // Chunked like the POSIX log: a write fault mid-flush leaves a torn tail
  // in the *unsynced* image; the synced image advances only on full success.
  size_t off = 0;
  while (off < buffer_.size()) {
    if (env_->ConsumeWriteFault()) {
      it->second.data.append(buffer_, 0, off);
      buffer_.erase(0, off);
      return Status::Internal("injected mem write failure for " + path_);
    }
    const size_t n = std::min<size_t>(4096, buffer_.size() - off);
    it->second.data.append(buffer_, off, n);
    off += n;
  }
  buffer_.clear();
  if (env_->ConsumeSyncFault()) {
    return Status::Internal("injected mem sync failure for " + path_);
  }
  it->second.synced = it->second.data;
  synced_bytes_ = it->second.synced.size();
  env_->stats_.bytes_written += off;
  ++env_->stats_.write_calls;
  ++env_->stats_.syncs;
  return Status::OK();
}

StatusOr<std::unique_ptr<PagedFile>> MemEnv::OpenPagedFile(
    const std::string& path, bool truncate) {
  MemFile& f = files_[path];
  if (truncate) f = MemFile{};
  return std::unique_ptr<PagedFile>(new MemPagedFile(this, path));
}

Status MemPagedFile::ReadPage(uint64_t page_id, char* buf) {
  std::memset(buf, 0, kPageSize);
  auto it = env_->files_.find(path_);
  if (it == env_->files_.end()) return Status::OK();
  const std::string& data = it->second.data;
  const uint64_t off = page_id * kPageSize;
  if (off >= data.size()) return Status::OK();
  const size_t n = std::min<uint64_t>(kPageSize, data.size() - off);
  std::memcpy(buf, data.data() + off, n);
  return Status::OK();
}

Status MemPagedFile::WritePage(uint64_t page_id, const char* buf) {
  if (env_->ConsumeWriteFault()) {
    return Status::Internal("injected mem write failure for " + path_);
  }
  auto it = env_->files_.find(path_);
  if (it == env_->files_.end()) {
    return Status::Internal("mem paged file vanished: " + path_);
  }
  std::string& data = it->second.data;
  const uint64_t off = page_id * kPageSize;
  if (data.size() < off + kPageSize) data.resize(off + kPageSize, '\0');
  std::memcpy(data.data() + off, buf, kPageSize);
  env_->stats_.bytes_written += kPageSize;
  ++env_->stats_.write_calls;
  return Status::OK();
}

Status MemPagedFile::Sync() {
  if (env_->ConsumeSyncFault()) {
    return Status::Internal("injected mem sync failure for " + path_);
  }
  auto it = env_->files_.find(path_);
  if (it == env_->files_.end()) {
    return Status::Internal("mem paged file vanished: " + path_);
  }
  it->second.synced = it->second.data;
  ++env_->stats_.syncs;
  return Status::OK();
}

uint64_t MemPagedFile::PageCount() const {
  auto it = env_->files_.find(path_);
  if (it == env_->files_.end()) return 0;
  return (it->second.data.size() + kPageSize - 1) / kPageSize;
}

StatusOr<std::string> MemEnv::ReadFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::Internal("mem file not found: " + path);
  }
  return it->second.data;
}

Status MemEnv::WriteFileAtomic(const std::string& path,
                               std::string_view content) {
  if (ConsumeWriteFault()) {
    return Status::Internal("injected mem write failure for " + path);
  }
  if (ConsumeSyncFault()) {
    return Status::Internal("injected mem sync failure for " + path);
  }
  MemFile& f = files_[path];
  f.data.assign(content);
  f.synced = f.data;  // atomic write is durable by contract
  stats_.bytes_written += content.size();
  ++stats_.write_calls;
  ++stats_.syncs;
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Status MemEnv::RemoveFile(const std::string& path) {
  files_.erase(path);
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::Internal("mem rename source missing: " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& path) {
  dirs_.insert(path);
  return Status::OK();
}

StatusOr<std::vector<std::string>> MemEnv::ListDir(const std::string& path) {
  std::vector<std::string> names;
  const std::string prefix = path + "/";
  for (const auto& [name, file] : files_) {
    if (name.rfind(prefix, 0) == 0 &&
        name.find('/', prefix.size()) == std::string::npos) {
      names.push_back(name.substr(prefix.size()));
    }
  }
  return names;
}

Status MemEnv::RemoveDirRecursive(const std::string& path) {
  const std::string prefix = path + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  dirs_.erase(path);
  return Status::OK();
}

void MemEnv::SimulateCrash() {
  for (auto& [name, file] : files_) {
    file.data = file.synced;
  }
}

void MemEnv::TruncateFileTail(const std::string& path, uint64_t bytes) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  std::string& data = it->second.data;
  data.resize(bytes > data.size() ? 0 : data.size() - bytes);
  it->second.synced = data;
}

}  // namespace lego::minidb
