#include "minidb/catalog.h"

#include <algorithm>

namespace lego::minidb {

int TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

PrivMask MaskOf(sql::Privilege p) {
  switch (p) {
    case sql::Privilege::kSelect: return kPrivSelect;
    case sql::Privilege::kInsert: return kPrivInsert;
    case sql::Privilege::kUpdate: return kPrivUpdate;
    case sql::Privilege::kDelete: return kPrivDelete;
    case sql::Privilege::kAll: return kPrivAll;
  }
  return 0;
}

Status Catalog::FrozenError() const {
  return Status::TransactionError(
      "DDL is disabled during concurrent execution");
}

Status Catalog::CreateTable(TableInfo table) {
  if (ddl_frozen_) return FrozenError();
  if (tables_.count(table.name) || views_.count(table.name)) {
    return Status::AlreadyExists("relation '" + table.name +
                                 "' already exists");
  }
  if (page_store_ != nullptr && !table.temporary) {
    table.heap.AttachStore(page_store_);
  }
  tables_.emplace(table.name, std::move(table));
  return Status::OK();
}

void Catalog::set_page_store(PageStore* store) {
  page_store_ = store;
  if (store == nullptr) return;
  for (auto& [name, table] : tables_) {
    if (!table.temporary) table.heap.AttachStore(store);
  }
}

void Catalog::CollectChainPages(std::set<uint32_t>* live) const {
  for (const auto& [name, table] : tables_) {
    table.heap.CollectChainPages(live);
  }
}

StatusOr<TableInfo*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return StatusOr<TableInfo*>(
        Status::NotFound("table '" + name + "' does not exist"));
  }
  return &it->second;
}

StatusOr<const TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return StatusOr<const TableInfo*>(
        Status::NotFound("table '" + name + "' does not exist"));
  }
  return const_cast<const TableInfo*>(&it->second);
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  // Cascade: indexes, triggers, rules referencing the table.
  for (auto ix = indexes_.begin(); ix != indexes_.end();) {
    if (ix->second.table == name) {
      ix = indexes_.erase(ix);
    } else {
      ++ix;
    }
  }
  for (auto tr = triggers_.begin(); tr != triggers_.end();) {
    if (tr->second.table == name) {
      tr = triggers_.erase(tr);
    } else {
      ++tr;
    }
  }
  for (auto r = rules_.begin(); r != rules_.end();) {
    if (r->second.table == name) {
      r = rules_.erase(r);
    } else {
      ++r;
    }
  }
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::RenameTable(const std::string& old_name,
                            const std::string& new_name) {
  if (ddl_frozen_) return FrozenError();
  auto it = tables_.find(old_name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + old_name + "' does not exist");
  }
  if (tables_.count(new_name) || views_.count(new_name)) {
    return Status::AlreadyExists("relation '" + new_name +
                                 "' already exists");
  }
  TableInfo info = std::move(it->second);
  tables_.erase(it);
  info.name = new_name;
  for (auto& [iname, index] : indexes_) {
    if (index.table == old_name) index.table = new_name;
  }
  for (auto& [tname, trigger] : triggers_) {
    if (trigger.table == old_name) trigger.table = new_name;
  }
  for (auto& [rname, rule] : rules_) {
    if (rule.table == old_name) rule.table = new_name;
  }
  tables_.emplace(new_name, std::move(info));
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

Status Catalog::CreateIndex(IndexInfo index) {
  if (ddl_frozen_) return FrozenError();
  if (indexes_.count(index.name)) {
    return Status::AlreadyExists("index '" + index.name + "' already exists");
  }
  auto table_it = tables_.find(index.table);
  if (table_it == tables_.end()) {
    return Status::NotFound("table '" + index.table + "' does not exist");
  }
  table_it->second.index_names.push_back(index.name);
  indexes_.emplace(index.name, std::move(index));
  return Status::OK();
}

StatusOr<IndexInfo*> Catalog::GetIndex(const std::string& name) {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return StatusOr<IndexInfo*>(
        Status::NotFound("index '" + name + "' does not exist"));
  }
  return &it->second;
}

bool Catalog::HasIndex(const std::string& name) const {
  return indexes_.count(name) > 0;
}

Status Catalog::DropIndex(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + name + "' does not exist");
  }
  auto table_it = tables_.find(it->second.table);
  if (table_it != tables_.end()) {
    auto& names = table_it->second.index_names;
    names.erase(std::remove(names.begin(), names.end(), name), names.end());
  }
  indexes_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, info] : indexes_) names.push_back(name);
  return names;
}

std::vector<IndexInfo*> Catalog::IndexesOf(const std::string& table) {
  std::vector<IndexInfo*> out;
  for (auto& [name, index] : indexes_) {
    if (index.table == table) out.push_back(&index);
  }
  return out;
}

Status Catalog::CreateView(ViewInfo view, bool or_replace) {
  if (ddl_frozen_) return FrozenError();
  if (tables_.count(view.name)) {
    return Status::AlreadyExists("relation '" + view.name +
                                 "' already exists");
  }
  auto it = views_.find(view.name);
  if (it != views_.end()) {
    if (!or_replace) {
      return Status::AlreadyExists("view '" + view.name + "' already exists");
    }
    it->second = std::move(view);
    return Status::OK();
  }
  views_.emplace(view.name, std::move(view));
  return Status::OK();
}

const ViewInfo* Catalog::GetView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(name) > 0;
}

Status Catalog::DropView(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  if (views_.erase(name) == 0) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, info] : views_) names.push_back(name);
  return names;
}

Status Catalog::CreateTrigger(TriggerInfo trigger) {
  if (ddl_frozen_) return FrozenError();
  if (triggers_.count(trigger.name)) {
    return Status::AlreadyExists("trigger '" + trigger.name +
                                 "' already exists");
  }
  if (!tables_.count(trigger.table)) {
    return Status::NotFound("table '" + trigger.table + "' does not exist");
  }
  triggers_.emplace(trigger.name, std::move(trigger));
  return Status::OK();
}

bool Catalog::HasTrigger(const std::string& name) const {
  return triggers_.count(name) > 0;
}

Status Catalog::DropTrigger(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  if (triggers_.erase(name) == 0) {
    return Status::NotFound("trigger '" + name + "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TriggerNames() const {
  std::vector<std::string> names;
  names.reserve(triggers_.size());
  for (const auto& [name, info] : triggers_) names.push_back(name);
  return names;
}

std::vector<const TriggerInfo*> Catalog::TriggersFor(
    const std::string& table, sql::TriggerEvent event,
    sql::TriggerTiming timing) const {
  std::vector<const TriggerInfo*> out;
  for (const auto& [name, trigger] : triggers_) {
    if (trigger.table == table && trigger.event == event &&
        trigger.timing == timing) {
      out.push_back(&trigger);
    }
  }
  return out;
}

Status Catalog::CreateRule(RuleInfo rule, bool or_replace) {
  if (ddl_frozen_) return FrozenError();
  if (!tables_.count(rule.table)) {
    return Status::NotFound("table '" + rule.table + "' does not exist");
  }
  auto it = rules_.find(rule.name);
  if (it != rules_.end()) {
    if (!or_replace) {
      return Status::AlreadyExists("rule '" + rule.name + "' already exists");
    }
    it->second = std::move(rule);
    return Status::OK();
  }
  rules_.emplace(rule.name, std::move(rule));
  return Status::OK();
}

bool Catalog::HasRule(const std::string& name) const {
  return rules_.count(name) > 0;
}

Status Catalog::DropRule(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  if (rules_.erase(name) == 0) {
    return Status::NotFound("rule '" + name + "' does not exist");
  }
  return Status::OK();
}

const RuleInfo* Catalog::RuleFor(const std::string& table,
                                 sql::TriggerEvent event) const {
  for (const auto& [name, rule] : rules_) {
    if (rule.table == table && rule.event == event && rule.instead) {
      return &rule;
    }
  }
  return nullptr;
}

std::vector<std::string> Catalog::SequenceNames() const {
  std::vector<std::string> names;
  names.reserve(sequences_.size());
  for (const auto& [name, info] : sequences_) names.push_back(name);
  return names;
}

const IndexInfo* Catalog::FindIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second;
}

const TriggerInfo* Catalog::FindTrigger(const std::string& name) const {
  auto it = triggers_.find(name);
  return it == triggers_.end() ? nullptr : &it->second;
}

const RuleInfo* Catalog::FindRule(const std::string& name) const {
  auto it = rules_.find(name);
  return it == rules_.end() ? nullptr : &it->second;
}

const SequenceInfo* Catalog::FindSequence(const std::string& name) const {
  auto it = sequences_.find(name);
  return it == sequences_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::RuleNames() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& [name, info] : rules_) names.push_back(name);
  return names;
}

Status Catalog::CreateSequence(SequenceInfo seq) {
  if (ddl_frozen_) return FrozenError();
  if (sequences_.count(seq.name)) {
    return Status::AlreadyExists("sequence '" + seq.name +
                                 "' already exists");
  }
  sequences_.emplace(seq.name, std::move(seq));
  return Status::OK();
}

StatusOr<SequenceInfo*> Catalog::GetSequence(const std::string& name) {
  auto it = sequences_.find(name);
  if (it == sequences_.end()) {
    return StatusOr<SequenceInfo*>(
        Status::NotFound("sequence '" + name + "' does not exist"));
  }
  return &it->second;
}

bool Catalog::HasSequence(const std::string& name) const {
  return sequences_.count(name) > 0;
}

Status Catalog::DropSequence(const std::string& name) {
  if (ddl_frozen_) return FrozenError();
  if (sequences_.erase(name) == 0) {
    return Status::NotFound("sequence '" + name + "' does not exist");
  }
  return Status::OK();
}

Status Catalog::CreateUser(const std::string& name, bool if_not_exists) {
  if (ddl_frozen_) return FrozenError();
  if (users_.count(name)) {
    if (if_not_exists) return Status::OK();
    return Status::AlreadyExists("user '" + name + "' already exists");
  }
  users_.insert(name);
  return Status::OK();
}

Status Catalog::DropUser(const std::string& name, bool if_exists) {
  if (ddl_frozen_) return FrozenError();
  if (!users_.count(name)) {
    if (if_exists) return Status::OK();
    return Status::NotFound("user '" + name + "' does not exist");
  }
  users_.erase(name);
  privileges_.erase(name);
  return Status::OK();
}

bool Catalog::HasUser(const std::string& name) const {
  return name == "root" || users_.count(name) > 0;
}

void Catalog::Grant(const std::string& user, const std::string& table,
                    PrivMask mask) {
  privileges_[user][table] |= mask;
}

void Catalog::Revoke(const std::string& user, const std::string& table,
                     PrivMask mask) {
  auto uit = privileges_.find(user);
  if (uit == privileges_.end()) return;
  auto tit = uit->second.find(table);
  if (tit == uit->second.end()) return;
  tit->second &= static_cast<PrivMask>(~mask);
  if (tit->second == 0) uit->second.erase(tit);
}

bool Catalog::HasPrivilege(const std::string& user, const std::string& table,
                           PrivMask mask) const {
  if (user == "root") return true;
  auto uit = privileges_.find(user);
  if (uit == privileges_.end()) return false;
  auto tit = uit->second.find(table);
  if (tit == uit->second.end()) return false;
  return (tit->second & mask) == mask;
}

void Catalog::DropTemporaryTables() {
  if (ddl_frozen_) return;
  std::vector<std::string> doomed;
  for (const auto& [name, info] : tables_) {
    if (info.temporary) doomed.push_back(name);
  }
  for (const auto& name : doomed) DropTable(name);
}

}  // namespace lego::minidb
