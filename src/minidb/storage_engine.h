#ifndef LEGO_MINIDB_STORAGE_ENGINE_H_
#define LEGO_MINIDB_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "minidb/buffer_pool.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/page_store.h"
#include "minidb/wal.h"

namespace lego::minidb {

/// ARIES-lite paged storage engine. Since PR 9 it is the *source of truth*
/// for row storage: every non-temporary heap routes its rows through a
/// PageStore ("heap.pages" — slotted logical pages chunked across 8 KiB
/// physical pages under one BufferPool), so reads are served from pager
/// frames and working sets larger than `pool_frames` genuinely evict and
/// reload through Env. The in-memory execution path (`--storage=mem`) never
/// constructs an engine and is bit-identical to before.
///
/// Logging is steal/undo: physiological records carry both the post-image
/// (redo) and the before-image (undo), so records of *open* transactions
/// stream to the WAL mid-transaction — and flush once the log buffer passes
/// `steal_flush_bytes` — instead of buffering unboundedly until COMMIT.
/// Recovery is redo-then-undo: replay every record in order (deferred
/// records only when their transaction's kCommit marker is present), undo
/// aborted streams at their kAbort/kAbortTo positions, then unwind losers —
/// streamed records of transactions that never resolved — in reverse LSN
/// order via their before-images, appending compensating kAbort markers so
/// a second crash recovers identically.
///
/// Per statement, effects are classified:
///  - *physiological* — only row puts/erases on known non-temporary tables,
///    no schema change: each effect becomes a kPut/kErase (idempotent on
///    replay), plus kSeqSet for moved sequences.
///  - *logical* — schema changes, structural heap rewrites (VACUUM,
///    TRUNCATE), or mutations of tables born this statement: one kLogical
///    record re-executes the statement's SQL at recovery.
/// Logical records cannot be undone, so they are always *deferred*
/// (buffered until commit is certain); once a transaction logs one, the
/// rest of that transaction defers too — mixing streamed records after a
/// dropped logical prefix would undo against the wrong heap layout.
/// SET/PRAGMA/ALTER SYSTEM/DISCARD are logged logically outside the
/// transaction buffer, mirroring their non-transactional semantics.
///
/// Commit protocol: autocommit statements append their records plus a
/// kCommit marker and fsync before the statement is acknowledged; a
/// transaction streams physiological records as it goes, appends the
/// deferred suffix plus kCommit(txn) at COMMIT, and fsyncs then. An
/// acknowledged effect is always synced; a crash loses at most
/// unacknowledged work — the invariant the durability oracle checks.
///
/// Snapshot transactions over shared pages are kept sound by the
/// PageStore's copy-on-write epoch: the engine bumps the epoch at BEGIN,
/// SAVEPOINT, and ROLLBACK TO, and arms cow for the transaction's duration,
/// so a heap flushing a dirty page the snapshot shares writes a fresh chain
/// instead of overwriting. Orphaned chains are reclaimed by a mark-and-
/// sweep at checkpoint.
///
/// Directory layout: MANIFEST (atomic; snapshot LSN, 0 = none),
/// snap.<lsn> (paged image streamed through the BufferPool), wal.<lsn>
/// (rotated at checkpoint), heap.pages (the PageStore backing file — a
/// runtime cache of the live heaps, truncated and rebuilt at recovery;
/// durability lives in snapshot + WAL).
class StorageEngine : public StorageHook, public StorageObserver {
 public:
  struct Options {
    Env* env = nullptr;  // nullptr → Env::Posix()
    std::string dir;
    size_t pool_frames = 64;
    uint64_t checkpoint_every_commits = 128;
    /// Mid-transaction WAL push threshold (the steal policy's bound on
    /// buffered log bytes).
    size_t steal_flush_bytes = 64 * 1024;
    /// Planted defect: acknowledge commits without fsync (--planted-skip-
    /// fsync). Committed batches stay in the user-space log buffer and a
    /// SIGKILL genuinely loses them.
    bool skip_fsync = false;
    /// Forked child: a commit that cannot be made durable _exit()s with
    /// kStorageFailExitCode before acknowledging. In-process: the engine
    /// degrades (stops logging, flags degraded()) instead.
    bool panic_on_storage_error = false;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t checkpoints = 0;
    uint64_t wal_records = 0;
    uint64_t recovered_records = 0;
    uint64_t recovered_commits = 0;
    /// Uncommitted records found in the log at recovery (losers + aborted
    /// streams — undo candidates, not corruption).
    uint64_t loser_records = 0;
    /// Undo operations applied (recovery losers pass + abort positions).
    uint64_t undo_applied = 0;
    uint64_t torn_tail_bytes = 0;
    /// Mid-transaction WAL pushes forced by steal_flush_bytes.
    uint64_t steal_flushes = 0;
    /// Bytes pushed to the log (appended frames, synced or not).
    uint64_t wal_bytes = 0;
    /// Log fsyncs issued (commit syncs + steal flushes).
    uint64_t fsyncs = 0;
    /// Combined pager traffic: snapshot read/write pools plus the heap
    /// PageStore's pool (merged by stats()).
    BufferPool::Stats pool;
    /// Heap PageStore counters (blob I/O, cow writes, sweeps).
    PageStore::Stats pages;
  };

  explicit StorageEngine(Options options);

  // --- lifecycle ---

  /// Wipes the directory and starts a fresh generation (manifest LSN 0,
  /// empty WAL, empty page store); resets `*db` and routes its heaps
  /// through the page store. The cheap per-case reset.
  Status ResetFresh(Database* db);

  /// Loads the manifest/snapshot, replays the WAL into `*db` redo-then-undo
  /// (appending kAbort markers for losers, repairing a torn tail), reopens
  /// the WAL for appending, and re-paginates the recovered heaps through a
  /// fresh page store. Idempotent: recovering twice yields the same state.
  Status OpenOrRecover(Database* db);

  /// Writes snap.<lsn> through the buffer pool, rotates the WAL, flips the
  /// manifest, removes the previous generation, and sweeps orphaned page
  /// chains. Deferred while a transaction is open.
  Status Checkpoint(Database* db);

  /// Pure-read recovery into `*db` for out-of-process verification (the
  /// parent-side durability checker reads a dead child's directory without
  /// disturbing it). Installs nothing, repairs nothing, appends nothing.
  static Status RecoverInto(Env* env, const std::string& dir, Database* db,
                            WalLoadStats* wal_stats);

  // --- statement bracket (wrapped around every Database::Execute) ---

  void BeginStatement(Database* db);
  /// Classifies and logs the statement's captured effects. `executed_ok`
  /// is the statement's status; errored statements with captured partial
  /// effects are still logged (their replay is deterministic).
  Status EndStatement(Database* db, const sql::Statement& stmt,
                      bool executed_ok);

  bool degraded() const {
    return degraded_ ||
           (page_store_ != nullptr && page_store_->degraded());
  }
  uint64_t lsn() const { return lsn_; }
  /// Counter snapshot with the heap page store's pool/blob stats merged in.
  Stats stats() const;
  const Options& options() const { return options_; }
  Env* env() const { return env_; }
  PageStore* page_store() const { return page_store_.get(); }

  // --- StorageObserver (fires between Begin/EndStatement only) ---
  void OnPut(const HeapTable* table, RowId id, const Row* before) override;
  void OnErase(const HeapTable* table, RowId id, const Row& before) override;
  void OnStructural(const HeapTable* table) override;

  // --- StorageHook (transaction boundaries, success path only) ---
  void OnTxnBegin(Database& db) override;
  void OnTxnCommit(Database& db) override;
  void OnTxnRollback(Database& db) override;
  void OnTxnSavepoint(Database& db, const std::string& name) override;
  void OnTxnRelease(Database& db, const std::string& name) override;
  void OnTxnRollbackTo(Database& db, const std::string& name) override;

 private:
  struct ManifestInfo {
    uint64_t snapshot_lsn = 0;  // 0 = no snapshot yet
  };

  /// Savepoint bookmark: how much of the deferred buffer and the streamed
  /// prefix belongs to the enclosing scope.
  struct SavepointMark {
    std::string name;
    size_t buffer_size = 0;
    uint64_t last_streamed_lsn = 0;
  };

  std::string ManifestPath() const { return options_.dir + "/MANIFEST"; }
  std::string SnapPath(uint64_t lsn) const;
  std::string WalPath(uint64_t lsn) const;
  std::string HeapPagesPath() const { return options_.dir + "/heap.pages"; }

  Status WriteManifest(const ManifestInfo& info);
  static StatusOr<ManifestInfo> ReadManifest(Env* env, const std::string& dir);

  /// Serializes the catalog into snap.tmp via the buffer pool and renames
  /// it into place.
  Status WriteSnapshot(const Database& db, uint64_t lsn,
                       BufferPool::Stats* pool_stats);
  static Status LoadSnapshot(Env* env, const std::string& path,
                             size_t pool_frames, Catalog* out,
                             BufferPool::Stats* pool_stats);

  /// Redo-then-undo replay of loaded WAL records on top of the (snapshot)
  /// state in `*db`. Deferred records apply only when their transaction
  /// committed; streamed records apply unconditionally and are unwound at
  /// kAbort/kAbortTo positions or, for losers, at end of log in reverse LSN
  /// order. `loser_txns` (optional) receives the ids of transactions whose
  /// streams were unwound by the losers pass; `undo_count` (optional)
  /// counts undo operations applied.
  static Status ReplayInto(Database* db, const std::vector<WalRecord>& recs,
                           std::vector<uint64_t>* loser_txns,
                           uint64_t* undo_count);
  static void RebuildIndexes(Catalog* catalog);

  /// (Re)creates the page store over heap.pages and routes the catalog's
  /// non-temporary heaps through it.
  Status AttachPageStore(Database* db);

  /// Flushes `records` + a kCommit(txn_id) marker to the WAL and syncs
  /// (unless the skip-fsync plant is armed). On failure: panic or degrade.
  Status CommitBatch(std::vector<WalRecord> records, uint64_t txn_id);
  /// Appends one record, tracking stats; false on failure (after applying
  /// the failure policy).
  bool AppendRecord(const WalRecord& rec);
  /// Panic (_exit(kStorageFailExitCode)) or set degraded_, per options.
  void HandleStorageFailure(const Status& status);
  Status MaybeAutoCheckpoint(Database* db);

  /// Snapshot of sequence positions taken at BeginStatement.
  using SeqSnapshot = std::map<std::string, std::pair<int64_t, bool>>;

  Options options_;
  Env* env_;
  WalManager wal_;
  std::unique_ptr<PageStore> page_store_;
  uint64_t lsn_ = 1;
  bool degraded_ = false;
  Stats stats_;

  // Transaction state. Streamed records are already in the log; the buffer
  // holds the deferred suffix (sequence updates, post-logical records).
  bool in_txn_ = false;
  uint64_t txn_id_ = 0;        // current transaction, 0 = none
  uint64_t next_txn_id_ = 1;
  bool txn_streamed_ = false;  // any record streamed for this txn
  bool txn_logical_mode_ = false;  // a logical record forced full deferral
  uint64_t last_streamed_lsn_ = 0;
  std::vector<WalRecord> txn_buffer_;
  std::vector<SavepointMark> savepoint_marks_;
  uint64_t commits_since_checkpoint_ = 0;
  bool checkpoint_pending_ = false;

  // Per-statement capture state.
  bool in_statement_ = false;
  bool structural_ = false;
  bool unknown_heap_ = false;
  uint64_t schema_fp_before_ = 0;
  std::string stmt_user_;
  SeqSnapshot seq_before_;
  std::map<const HeapTable*, std::string> table_names_;
  std::set<const HeapTable*> temp_tables_;
  std::vector<WalRecord> stmt_records_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_STORAGE_ENGINE_H_
