#ifndef LEGO_MINIDB_STORAGE_ENGINE_H_
#define LEGO_MINIDB_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "minidb/buffer_pool.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/wal.h"

namespace lego::minidb {

/// Exit code a forked child uses when the paged storage layer cannot make a
/// commit durable (WAL append/flush/fsync failure in panic mode). Reserved
/// next to faults::kOomExitCode (86); the parent maps it to the durability
/// oracle instead of a generic crash.
inline constexpr int kStorageFailExitCode = 87;

/// ARIES-lite paged storage engine: redo-only WAL (no-steal, deferred
/// write), LSN-stamped page snapshots, checkpointing, and crash recovery
/// tolerating a torn log tail.
///
/// The engine lives *beside* the in-memory Database rather than under it:
/// execution always runs on the in-memory catalog (so `--storage=mem`
/// behavior is bit-identical), and the engine observes each statement
/// through the StorageObserver/StorageHook seams to derive redo records.
///
/// Per statement, effects are classified:
///  - *physiological* — only row puts/erases on known non-temporary tables,
///    no schema change: each effect becomes a kPut/kErase carrying the full
///    post-image (idempotent on replay), plus kSeqSet for moved sequences.
///  - *logical* — schema changes, structural heap rewrites (VACUUM,
///    TRUNCATE), or mutations of tables born this statement: one kLogical
///    record re-executes the statement's SQL at recovery (execution is
///    deterministic; the record carries the session user it ran as).
/// SET/PRAGMA/ALTER SYSTEM/DISCARD are also logged logically — they mutate
/// session context that later logical replays depend on — and bypass the
/// transaction buffer, mirroring their non-transactional semantics.
///
/// Commit protocol: autocommit statements append their records plus a
/// kCommit marker and fsync before the statement is acknowledged; inside
/// BEGIN the records buffer in memory and reach the WAL only at COMMIT
/// (ROLLBACK discards, savepoints truncate). So an acknowledged effect is
/// always synced, and a crash at any point loses at most unacknowledged
/// work — the invariant the durability oracle checks.
///
/// Directory layout: MANIFEST (atomic; snapshot LSN, 0 = none),
/// snap.<lsn> (paged image streamed through the BufferPool), wal.<lsn>
/// (rotated at checkpoint).
class StorageEngine : public StorageHook, public StorageObserver {
 public:
  struct Options {
    Env* env = nullptr;  // nullptr → Env::Posix()
    std::string dir;
    size_t pool_frames = 64;
    uint64_t checkpoint_every_commits = 128;
    /// Planted defect: acknowledge commits without fsync (--planted-skip-
    /// fsync). Committed batches stay in the user-space log buffer and a
    /// SIGKILL genuinely loses them.
    bool skip_fsync = false;
    /// Forked child: a commit that cannot be made durable _exit()s with
    /// kStorageFailExitCode before acknowledging. In-process: the engine
    /// degrades (stops logging, flags degraded()) instead.
    bool panic_on_storage_error = false;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t checkpoints = 0;
    uint64_t wal_records = 0;
    uint64_t recovered_records = 0;
    uint64_t recovered_commits = 0;
    uint64_t torn_records = 0;
    uint64_t torn_tail_bytes = 0;
    BufferPool::Stats pool;
  };

  explicit StorageEngine(Options options);

  // --- lifecycle ---

  /// Wipes the directory and starts a fresh generation (manifest LSN 0 +
  /// empty WAL); resets `*db`. The cheap per-case reset.
  Status ResetFresh(Database* db);

  /// Loads the manifest/snapshot, replays the WAL into `*db` (truncating a
  /// torn or uncommitted tail, counted in stats), and reopens the WAL for
  /// appending. Idempotent: recovering twice yields the same state.
  Status OpenOrRecover(Database* db);

  /// Writes snap.<lsn> through the buffer pool, rotates the WAL, flips the
  /// manifest, and removes the previous generation. Deferred while a
  /// transaction is open.
  Status Checkpoint(Database* db);

  /// Pure-read recovery into `*db` for out-of-process verification (the
  /// parent-side durability checker reads a dead child's directory without
  /// disturbing it). Installs nothing and repairs nothing.
  static Status RecoverInto(Env* env, const std::string& dir, Database* db,
                            WalLoadStats* wal_stats);

  // --- statement bracket (wrapped around every Database::Execute) ---

  void BeginStatement(Database* db);
  /// Classifies and logs the statement's captured effects. `executed_ok`
  /// is the statement's status; errored statements with captured partial
  /// effects are still logged (their replay is deterministic).
  Status EndStatement(Database* db, const sql::Statement& stmt,
                      bool executed_ok);

  bool degraded() const { return degraded_; }
  uint64_t lsn() const { return lsn_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  Env* env() const { return env_; }

  // --- StorageObserver (fires between Begin/EndStatement only) ---
  void OnPut(const HeapTable* table, RowId id) override;
  void OnErase(const HeapTable* table, RowId id) override;
  void OnStructural(const HeapTable* table) override;

  // --- StorageHook (transaction boundaries, success path only) ---
  void OnTxnBegin(Database& db) override;
  void OnTxnCommit(Database& db) override;
  void OnTxnRollback(Database& db) override;
  void OnTxnSavepoint(Database& db, const std::string& name) override;
  void OnTxnRelease(Database& db, const std::string& name) override;
  void OnTxnRollbackTo(Database& db, const std::string& name) override;

 private:
  struct ManifestInfo {
    uint64_t snapshot_lsn = 0;  // 0 = no snapshot yet
  };

  std::string ManifestPath() const { return options_.dir + "/MANIFEST"; }
  std::string SnapPath(uint64_t lsn) const;
  std::string WalPath(uint64_t lsn) const;

  Status WriteManifest(const ManifestInfo& info);
  static StatusOr<ManifestInfo> ReadManifest(Env* env, const std::string& dir);

  /// Serializes the catalog into snap.tmp via the buffer pool and renames
  /// it into place.
  Status WriteSnapshot(const Database& db, uint64_t lsn,
                       BufferPool::Stats* pool_stats);
  static Status LoadSnapshot(Env* env, const std::string& path,
                             size_t pool_frames, Catalog* out,
                             BufferPool::Stats* pool_stats);

  /// Applies loaded WAL records on top of the (snapshot) state in `*db`.
  static Status ReplayInto(Database* db, const std::vector<WalRecord>& recs);
  static void RebuildIndexes(Catalog* catalog);

  /// Flushes `records` + a kCommit marker to the WAL and syncs (unless the
  /// skip-fsync plant is armed). On failure: panic or degrade.
  Status CommitBatch(std::vector<WalRecord> records);
  /// Panic (_exit(kStorageFailExitCode)) or set degraded_, per options.
  void HandleStorageFailure(const Status& status);
  Status MaybeAutoCheckpoint(Database* db);

  /// Snapshot of sequence positions taken at BeginStatement.
  using SeqSnapshot = std::map<std::string, std::pair<int64_t, bool>>;

  Options options_;
  Env* env_;
  WalManager wal_;
  uint64_t lsn_ = 1;
  bool degraded_ = false;
  Stats stats_;

  // Transaction buffer (no-steal: records reach the WAL only at commit).
  bool in_txn_ = false;
  std::vector<WalRecord> txn_buffer_;
  std::vector<std::pair<std::string, size_t>> savepoint_marks_;
  uint64_t commits_since_checkpoint_ = 0;
  bool checkpoint_pending_ = false;

  // Per-statement capture state.
  bool in_statement_ = false;
  bool structural_ = false;
  bool unknown_heap_ = false;
  uint64_t schema_fp_before_ = 0;
  std::string stmt_user_;
  SeqSnapshot seq_before_;
  std::map<const HeapTable*, std::string> table_names_;
  std::set<const HeapTable*> temp_tables_;
  std::vector<WalRecord> stmt_records_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_STORAGE_ENGINE_H_
