#ifndef LEGO_MINIDB_PROFILE_H_
#define LEGO_MINIDB_PROFILE_H_

#include <bitset>
#include <string>
#include <vector>

#include "sql/statement_type.h"

namespace lego::minidb {

/// A dialect profile configures minidb to stand in for one of the paper's
/// four targets. Profiles differ in which statement types parse/execute and
/// in a few feature switches. The type counts track the paper's ordering
/// (PostgreSQL 188 > MariaDB 160 > MySQL 158 >> Comdb2 24, scaled to our
/// 46-type taxonomy; Comdb2's 24 is matched exactly).
struct DialectProfile {
  std::string name;
  std::bitset<sql::kNumStatementTypes> enabled;
  bool supports_window_functions = true;
  bool supports_rules = true;
  bool supports_notify = true;
  bool supports_copy = true;
  bool supports_set_operations = true;

  /// True if statements of `type` are accepted.
  bool Supports(sql::StatementType type) const {
    return enabled.test(static_cast<size_t>(type));
  }

  /// Number of enabled statement types.
  int TypeCount() const { return static_cast<int>(enabled.count()); }

  /// Enabled types in enum order.
  std::vector<sql::StatementType> EnabledTypes() const;

  /// PostgreSQL-flavored: all 46 types (rules, NOTIFY/LISTEN, COPY, ...).
  static const DialectProfile& PgLite();
  /// MySQL-flavored: 40 types (no rules, no notify/listen, no COPY).
  static const DialectProfile& MyLite();
  /// MariaDB-flavored: 41 types (MySQL set plus COPY-equivalent export).
  static const DialectProfile& MariaLite();
  /// Comdb2-flavored: exactly 24 types.
  static const DialectProfile& ComdLite();

  /// Lookup by name ("pglite", "mylite", "marialite", "comdlite");
  /// nullptr when unknown.
  static const DialectProfile* ByName(const std::string& name);

  /// All four evaluation profiles in paper order.
  static const std::vector<const DialectProfile*>& All();
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_PROFILE_H_
