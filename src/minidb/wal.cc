#include "minidb/wal.h"

#include <cstring>
#include <utility>

#include "chaos/failpoint.h"
#include "minidb/storage_serde.h"
#include "persist/io.h"
#include "util/hash.h"

namespace lego::minidb {

namespace {

constexpr size_t kFrameHeader = sizeof(uint32_t) + sizeof(uint64_t);

void EncodeRecord(const WalRecord& rec, persist::StateWriter* w) {
  w->WriteU8(static_cast<uint8_t>(rec.type));
  w->WriteU64(rec.lsn);
  w->WriteU64(rec.txn_id);
  w->WriteBool(rec.deferred);
  switch (rec.type) {
    case WalRecordType::kLogical:
      w->WriteString(rec.text);
      w->WriteString(rec.user);
      break;
    case WalRecordType::kPut:
      w->WriteString(rec.table);
      w->WriteU32(rec.rid.page);
      w->WriteU32(rec.rid.slot);
      SerializeRow(rec.row, w);
      w->WriteBool(rec.has_before);
      if (rec.has_before) SerializeRow(rec.before, w);
      break;
    case WalRecordType::kErase:
      w->WriteString(rec.table);
      w->WriteU32(rec.rid.page);
      w->WriteU32(rec.rid.slot);
      SerializeRow(rec.row, w);  // before-image for the losers pass
      break;
    case WalRecordType::kSeqSet:
      w->WriteString(rec.text);
      w->WriteI64(rec.seq_current);
      w->WriteBool(rec.seq_started);
      break;
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kAbortTo:
      w->WriteU64(rec.undo_upto);
      break;
  }
}

StatusOr<WalRecord> DecodeRecord(std::string payload) {
  persist::StateReader r = persist::StateReader::FromPayload(std::move(payload));
  WalRecord rec;
  rec.type = static_cast<WalRecordType>(r.ReadU8());
  rec.lsn = r.ReadU64();
  rec.txn_id = r.ReadU64();
  rec.deferred = r.ReadBool();
  switch (rec.type) {
    case WalRecordType::kLogical:
      rec.text = r.ReadString();
      rec.user = r.ReadString();
      break;
    case WalRecordType::kPut:
      rec.table = r.ReadString();
      rec.rid.page = r.ReadU32();
      rec.rid.slot = r.ReadU32();
      rec.row = DeserializeRow(&r);
      rec.has_before = r.ReadBool();
      if (rec.has_before) rec.before = DeserializeRow(&r);
      break;
    case WalRecordType::kErase:
      rec.table = r.ReadString();
      rec.rid.page = r.ReadU32();
      rec.rid.slot = r.ReadU32();
      rec.row = DeserializeRow(&r);
      break;
    case WalRecordType::kSeqSet:
      rec.text = r.ReadString();
      rec.seq_current = r.ReadI64();
      rec.seq_started = r.ReadBool();
      break;
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kAbortTo:
      rec.undo_upto = r.ReadU64();
      break;
    default:
      return Status::Internal("unknown WAL record type");
  }
  if (!r.ok()) return r.status();
  return rec;
}

uint32_t DecodeU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t DecodeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Status WalManager::Open(const std::string& path, bool truncate) {
  auto log = env_->NewWritableLog(path, truncate);
  if (!log.ok()) return log.status();
  log_ = std::move(log).ValueOrDie();
  path_ = path;
  appended_records_ = 0;
  return Status::OK();
}

Status WalManager::Append(const WalRecord& rec) {
  if (log_ == nullptr) return Status::Internal("WAL is not open");
  if (LEGO_FAILPOINT("wal.append")) {
    return Status::Internal("injected wal.append failure");
  }
  persist::StateWriter w;
  EncodeRecord(rec, &w);
  const std::string& payload = w.buffer();
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint64_t hash = Fnv1a64(payload);
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&hash), sizeof(hash));
  frame.append(payload);
  LEGO_RETURN_IF_ERROR(log_->Append(frame));
  ++appended_records_;
  return Status::OK();
}

Status WalManager::Commit(uint64_t lsn, uint64_t txn_id, bool skip_sync) {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.lsn = lsn;
  rec.txn_id = txn_id;
  LEGO_RETURN_IF_ERROR(Append(rec));
  // Planted defect --planted-skip-fsync: acknowledge without pushing the
  // user-space buffer to the file. The durability oracle must catch this.
  if (skip_sync) return Status::OK();
  return log_->Sync();
}

Status WalManager::Flush() {
  if (log_ == nullptr) return Status::Internal("WAL is not open");
  return log_->Sync();
}

StatusOr<std::vector<WalRecord>> WalManager::Load(Env* env,
                                                  const std::string& path,
                                                  WalLoadStats* stats) {
  WalLoadStats local;
  WalLoadStats* st = stats != nullptr ? stats : &local;
  *st = WalLoadStats{};
  if (!env->FileExists(path)) return std::vector<WalRecord>{};
  auto data_or = env->ReadFile(path);
  if (!data_or.ok()) return data_or.status();
  const std::string& data = data_or.value();

  std::vector<WalRecord> records;
  size_t last_commit_count = 0;  // records.size() as of the last kCommit
  uint64_t commits_kept = 0;
  size_t pos = 0;
  while (pos + kFrameHeader <= data.size()) {
    const uint32_t len = DecodeU32(data.data() + pos);
    const uint64_t hash = DecodeU64(data.data() + pos + sizeof(uint32_t));
    if (pos + kFrameHeader + len > data.size()) break;  // torn frame
    std::string payload = data.substr(pos + kFrameHeader, len);
    if (Fnv1a64(payload) != hash) break;  // corrupt frame: treat as tail
    if (LEGO_FAILPOINT("wal.recover")) {
      return Status::Internal("injected wal.recover failure");
    }
    auto rec = DecodeRecord(std::move(payload));
    if (!rec.ok()) break;  // undecodable but checksummed: stop, keep prefix
    pos += kFrameHeader + len;
    const bool is_commit = rec.value().type == WalRecordType::kCommit;
    records.push_back(std::move(rec).ValueOrDie());
    if (is_commit) {
      last_commit_count = records.size();
      ++commits_kept;
    }
  }
  st->torn_tail_bytes = data.size() - pos;
  // Steal: complete records past the last commit are *kept* — they belong
  // to transactions that never committed, and the caller's losers pass
  // unwinds their effects with the before-images they carry.
  st->loser_records = records.size() - last_commit_count;
  st->records = records.size();
  st->commits = commits_kept;
  return records;
}

}  // namespace lego::minidb
