#ifndef LEGO_MINIDB_ROW_H_
#define LEGO_MINIDB_ROW_H_

#include <cstdint>
#include <vector>

#include "minidb/value.h"

namespace lego::minidb {

/// One tuple.
using Row = std::vector<Value>;

/// Physical row location inside a HeapTable: (page, slot).
struct RowId {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const RowId& o) const {
    return page == o.page && slot == o.slot;
  }
  bool operator<(const RowId& o) const {
    return page != o.page ? page < o.page : slot < o.slot;
  }
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_ROW_H_
