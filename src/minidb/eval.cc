#include "minidb/eval.h"

#include <algorithm>
#include <cmath>

#include "coverage/coverage.h"
#include "util/string_util.h"

namespace lego::minidb {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

bool g_not_null_eval_bug = false;

Tribool ValueToTribool(const Value& v) {
  if (v.is_null()) return Tribool::kUnknown;
  return v.AsBool() ? Tribool::kTrue : Tribool::kFalse;
}

bool BothNumeric(const Value& a, const Value& b) {
  auto numeric = [](const Value& v) {
    return v.type() == ValueType::kInt || v.type() == ValueType::kReal ||
           v.type() == ValueType::kBool;
  };
  return numeric(a) && numeric(b);
}

/// SQL comparison with light coercion: numeric-vs-numeric compares
/// numerically; text-vs-numeric coerces the text side to a number (MySQL
/// flavor); otherwise the total order applies.
int CompareSql(const Value& a, const Value& b) {
  if (BothNumeric(a, b)) {
    double x = a.AsReal();
    double y = b.AsReal();
    if (x == y) return 0;
    return x < y ? -1 : 1;
  }
  if (a.type() == ValueType::kText && BothNumeric(b, b)) {
    double x = a.AsReal();
    double y = b.AsReal();
    if (x == y) return 0;
    return x < y ? -1 : 1;
  }
  if (b.type() == ValueType::kText && BothNumeric(a, a)) {
    double x = a.AsReal();
    double y = b.AsReal();
    if (x == y) return 0;
    return x < y ? -1 : 1;
  }
  return a.Compare(b);
}

StatusOr<Value> EvalArithmetic(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  bool integer_math = lhs.type() != ValueType::kReal &&
                      rhs.type() != ValueType::kReal &&
                      lhs.type() != ValueType::kText &&
                      rhs.type() != ValueType::kText;
  if (integer_math) {
    LEGO_COV();
    // Wrapping semantics via unsigned arithmetic (no UB on overflow).
    uint64_t a = static_cast<uint64_t>(lhs.AsInt());
    uint64_t b = static_cast<uint64_t>(rhs.AsInt());
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(static_cast<int64_t>(a + b));
      case BinaryOp::kSub: return Value::Int(static_cast<int64_t>(a - b));
      case BinaryOp::kMul: return Value::Int(static_cast<int64_t>(a * b));
      case BinaryOp::kDiv:
        if (rhs.AsInt() == 0) {
          return Status::ExecutionError("division by zero");
        }
        if (lhs.AsInt() == INT64_MIN && rhs.AsInt() == -1) {
          return Value::Int(INT64_MIN);  // avoid overflow trap
        }
        return Value::Int(lhs.AsInt() / rhs.AsInt());
      case BinaryOp::kMod:
        if (rhs.AsInt() == 0) {
          return Status::ExecutionError("modulo by zero");
        }
        if (lhs.AsInt() == INT64_MIN && rhs.AsInt() == -1) {
          return Value::Int(0);
        }
        return Value::Int(lhs.AsInt() % rhs.AsInt());
      default: break;
    }
  }
  LEGO_COV();
  double a = lhs.AsReal();
  double b = rhs.AsReal();
  switch (op) {
    case BinaryOp::kAdd: return Value::Real(a + b);
    case BinaryOp::kSub: return Value::Real(a - b);
    case BinaryOp::kMul: return Value::Real(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::ExecutionError("division by zero");
      return Value::Real(a / b);
    case BinaryOp::kMod:
      if (b == 0.0) return Status::ExecutionError("modulo by zero");
      return Value::Real(std::fmod(a, b));
    default: break;
  }
  return Status::Internal("unexpected arithmetic operator");
}

StatusOr<Value> EvalScalarFunction(const sql::FunctionCall& fn,
                                   const EvalContext& ctx,
                                   const std::vector<Value>& args) {
  const std::string& name = fn.name();
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::SemanticError("function " + name + " expects " +
                                   std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };

  if (name == "ABS") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == ValueType::kInt) {
      int64_t v = args[0].int_value();
      return Value::Int(v == INT64_MIN ? INT64_MAX : (v < 0 ? -v : v));
    }
    return Value::Real(std::fabs(args[0].AsReal()));
  }
  if (name == "LENGTH") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].ToText().size()));
  }
  if (name == "UPPER") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    return Value::Text(ToUpper(args[0].ToText()));
  }
  if (name == "LOWER") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    return Value::Text(ToLower(args[0].ToText()));
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::SemanticError("SUBSTR expects 2 or 3 arguments");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    std::string s = args[0].ToText();
    int64_t start = args[1].AsInt();
    int64_t len = args.size() == 3 ? args[2].AsInt()
                                   : static_cast<int64_t>(s.size());
    if (start > 0) --start;  // SQL is 1-based
    if (start < 0) start = std::max<int64_t>(0, static_cast<int64_t>(s.size()) + start);
    if (start >= static_cast<int64_t>(s.size()) || len <= 0) {
      return Value::Text("");
    }
    len = std::min<int64_t>(len, static_cast<int64_t>(s.size()) - start);
    return Value::Text(s.substr(static_cast<size_t>(start),
                                static_cast<size_t>(len)));
  }
  if (name == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "NULLIF") {
    LEGO_RETURN_IF_ERROR(need(2));
    if (!args[0].is_null() && !args[1].is_null() &&
        CompareSql(args[0], args[1]) == 0) {
      return Value::Null();
    }
    return args[0];
  }
  if (name == "IFNULL") {
    LEGO_RETURN_IF_ERROR(need(2));
    return args[0].is_null() ? args[1] : args[0];
  }
  if (name == "TYPEOF") {
    LEGO_RETURN_IF_ERROR(need(1));
    return Value::Text(std::string(ValueTypeName(args[0].type())));
  }
  if (name == "ROUND") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::SemanticError("ROUND expects 1 or 2 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    double v = args[0].AsReal();
    int64_t digits = args.size() == 2 ? args[1].AsInt() : 0;
    digits = std::clamp<int64_t>(digits, -15, 15);
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Real(std::round(v * scale) / scale);
  }
  if (name == "SIGN") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    double v = args[0].AsReal();
    return Value::Int(v > 0 ? 1 : (v < 0 ? -1 : 0));
  }
  if (name == "MOD") {
    LEGO_RETURN_IF_ERROR(need(2));
    return EvalArithmetic(BinaryOp::kMod, args[0], args[1]);
  }
  if (name == "TRIM") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    return Value::Text(std::string(Trim(args[0].ToText())));
  }
  if (name == "REPLACE") {
    LEGO_RETURN_IF_ERROR(need(3));
    if (args[0].is_null() || args[1].is_null() || args[2].is_null()) {
      return Value::Null();
    }
    std::string s = args[0].ToText();
    std::string from = args[1].ToText();
    std::string to = args[2].ToText();
    if (from.empty()) return Value::Text(std::move(s));
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(from, pos);
      if (hit == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, hit - pos);
      out += to;
      pos = hit + from.size();
    }
    return Value::Text(std::move(out));
  }
  if (name == "GREATEST" || name == "LEAST") {
    if (args.empty()) {
      return Status::SemanticError(name + " expects arguments");
    }
    const Value* best = nullptr;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      if (best == nullptr) {
        best = &v;
        continue;
      }
      int c = CompareSql(v, *best);
      if ((name == "GREATEST" && c > 0) || (name == "LEAST" && c < 0)) {
        best = &v;
      }
    }
    return *best;
  }
  if (name == "NEXTVAL") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (ctx.hooks == nullptr) {
      return Status::ExecutionError("sequences unavailable in this context");
    }
    LEGO_ASSIGN_OR_RETURN(int64_t v,
                          ctx.hooks->SequenceNextVal(args[0].ToText()));
    return Value::Int(v);
  }
  if (name == "CURRVAL") {
    LEGO_RETURN_IF_ERROR(need(1));
    if (ctx.hooks == nullptr) {
      return Status::ExecutionError("sequences unavailable in this context");
    }
    LEGO_ASSIGN_OR_RETURN(int64_t v,
                          ctx.hooks->SequenceCurrVal(args[0].ToText()));
    return Value::Int(v);
  }
  return Status::SemanticError("unknown function " + name);
}

}  // namespace

StatusOr<Value> EvalContext::ResolveColumn(const std::string& qualifier,
                                           const std::string& name) const {
  for (const EvalContext* c = this; c != nullptr; c = c->outer) {
    if (c->rel == nullptr || c->row == nullptr) continue;
    bool ambiguous = false;
    int idx = c->rel->FindColumn(qualifier, name, &ambiguous);
    if (ambiguous) {
      return StatusOr<Value>(
          Status::SemanticError("ambiguous column reference '" + name + "'"));
    }
    if (idx >= 0) {
      if (static_cast<size_t>(idx) >= c->row->size()) {
        return StatusOr<Value>(Status::Internal("row narrower than schema"));
      }
      return (*c->row)[static_cast<size_t>(idx)];
    }
  }
  std::string full = qualifier.empty() ? name : qualifier + "." + name;
  return StatusOr<Value>(
      Status::SemanticError("column '" + full + "' does not exist"));
}

bool Evaluator::IsAggregateFunction(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
         name == "MAX" || name == "TOTAL" || name == "GROUP_CONCAT";
}

bool Evaluator::IsWindowFunction(const std::string& name) {
  return name == "ROW_NUMBER" || name == "RANK" || name == "DENSE_RANK" ||
         name == "LEAD" || name == "LAG" || name == "NTILE";
}

void Evaluator::SetNotNullEvalBugForTesting(bool enabled) {
  g_not_null_eval_bug = enabled;
}

bool Evaluator::LikeMatch(const std::string& text,
                          const std::string& pattern) {
  // Iterative matcher with backtracking over '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

StatusOr<Tribool> Evaluator::EvalPredicate(const Expr& expr,
                                           const EvalContext& ctx) {
  LEGO_ASSIGN_OR_RETURN(Value v, Eval(expr, ctx));
  return ValueToTribool(v);
}

StatusOr<Value> Evaluator::Eval(const Expr& expr, const EvalContext& ctx) {
  // Node overrides short-circuit: aggregate/window results computed by the
  // executor are injected by node identity.
  if (ctx.node_overrides != nullptr) {
    auto it = ctx.node_overrides->find(&expr);
    if (it != ctx.node_overrides->end()) return it->second;
  }

  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      LEGO_COV();
      return Value::FromLiteral(static_cast<const sql::Literal&>(expr));
    }
    case ExprKind::kColumnRef: {
      LEGO_COV();
      const auto& ref = static_cast<const sql::ColumnRef&>(expr);
      return ctx.ResolveColumn(ref.table(), ref.column());
    }
    case ExprKind::kStar:
      return Status::SemanticError("'*' is not valid here");
    case ExprKind::kUnary: {
      const auto& un = static_cast<const sql::UnaryExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value v, Eval(un.operand(), ctx));
      if (un.op() == sql::UnaryOp::kNeg) {
        LEGO_COV();
        if (v.is_null()) return Value::Null();
        if (v.type() == ValueType::kInt) {
          int64_t x = v.int_value();
          return Value::Int(x == INT64_MIN ? INT64_MIN : -x);
        }
        return Value::Real(-v.AsReal());
      }
      LEGO_COV();
      Tribool t = ValueToTribool(v);
      if (t == Tribool::kUnknown) {
        return g_not_null_eval_bug ? Value::Bool(true) : Value::Null();
      }
      return Value::Bool(t == Tribool::kFalse);
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      BinaryOp op = bin.op();
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        LEGO_COV_KEYED(static_cast<int>(op));
        LEGO_ASSIGN_OR_RETURN(Tribool lhs, EvalPredicate(bin.lhs(), ctx));
        // Short-circuit per three-valued logic.
        if (op == BinaryOp::kAnd && lhs == Tribool::kFalse) {
          return Value::Bool(false);
        }
        if (op == BinaryOp::kOr && lhs == Tribool::kTrue) {
          return Value::Bool(true);
        }
        LEGO_ASSIGN_OR_RETURN(Tribool rhs, EvalPredicate(bin.rhs(), ctx));
        if (op == BinaryOp::kAnd) {
          if (rhs == Tribool::kFalse) return Value::Bool(false);
          if (lhs == Tribool::kUnknown || rhs == Tribool::kUnknown) {
            return Value::Null();
          }
          return Value::Bool(true);
        }
        if (rhs == Tribool::kTrue) return Value::Bool(true);
        if (lhs == Tribool::kUnknown || rhs == Tribool::kUnknown) {
          return Value::Null();
        }
        return Value::Bool(false);
      }
      LEGO_ASSIGN_OR_RETURN(Value lhs, Eval(bin.lhs(), ctx));
      LEGO_ASSIGN_OR_RETURN(Value rhs, Eval(bin.rhs(), ctx));
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          LEGO_COV_KEYED(static_cast<int>(op));
          return EvalArithmetic(op, lhs, rhs);
        case BinaryOp::kConcat:
          LEGO_COV();
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::Text(lhs.ToText() + rhs.ToText());
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          LEGO_COV_KEYED(static_cast<int>(op));
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          int c = CompareSql(lhs, rhs);
          bool r = false;
          switch (op) {
            case BinaryOp::kEq: r = (c == 0); break;
            case BinaryOp::kNe: r = (c != 0); break;
            case BinaryOp::kLt: r = (c < 0); break;
            case BinaryOp::kLe: r = (c <= 0); break;
            case BinaryOp::kGt: r = (c > 0); break;
            case BinaryOp::kGe: r = (c >= 0); break;
            default: break;
          }
          return Value::Bool(r);
        }
        default:
          return Status::Internal("unexpected binary operator");
      }
    }
    case ExprKind::kFunctionCall: {
      const auto& fn = static_cast<const sql::FunctionCall&>(expr);
      if (IsAggregateFunction(fn.name())) {
        // Reached only when no override was injected: aggregate used
        // outside an aggregating query.
        return Status::SemanticError("aggregate function " + fn.name() +
                                     " used outside aggregation");
      }
      if (IsWindowFunction(fn.name()) || fn.window() != nullptr) {
        return Status::SemanticError("window function " + fn.name() +
                                     " used outside a windowed SELECT");
      }
      LEGO_COV();
      std::vector<Value> args;
      args.reserve(fn.args().size());
      for (const auto& a : fn.args()) {
        LEGO_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(fn, ctx, args);
    }
    case ExprKind::kCase: {
      LEGO_COV();
      const auto& ce = static_cast<const sql::CaseExpr&>(expr);
      if (ce.operand() != nullptr) {
        LEGO_ASSIGN_OR_RETURN(Value base, Eval(*ce.operand(), ctx));
        for (const auto& [when, then] : ce.whens()) {
          LEGO_ASSIGN_OR_RETURN(Value w, Eval(*when, ctx));
          if (!base.is_null() && !w.is_null() && CompareSql(base, w) == 0) {
            return Eval(*then, ctx);
          }
        }
      } else {
        for (const auto& [when, then] : ce.whens()) {
          LEGO_ASSIGN_OR_RETURN(Tribool t, EvalPredicate(*when, ctx));
          if (t == Tribool::kTrue) return Eval(*then, ctx);
        }
      }
      if (ce.else_expr() != nullptr) return Eval(*ce.else_expr(), ctx);
      return Value::Null();
    }
    case ExprKind::kInList: {
      LEGO_COV();
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value needle, Eval(in.needle(), ctx));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& item : in.list()) {
        LEGO_ASSIGN_OR_RETURN(Value v, Eval(*item, ctx));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (CompareSql(needle, v) == 0) {
          return Value::Bool(!in.negated());
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(in.negated());
    }
    case ExprKind::kInSubquery: {
      LEGO_COV();
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      if (ctx.runner == nullptr) {
        return Status::ExecutionError("subqueries unavailable here");
      }
      LEGO_ASSIGN_OR_RETURN(Value needle, Eval(in.needle(), ctx));
      LEGO_ASSIGN_OR_RETURN(Relation rel,
                            ctx.runner->RunSubquery(in.subquery(), &ctx));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (const Row& row : rel.rows) {
        if (row.empty()) continue;
        if (row[0].is_null()) {
          saw_null = true;
          continue;
        }
        if (CompareSql(needle, row[0]) == 0) {
          return Value::Bool(!in.negated());
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(in.negated());
    }
    case ExprKind::kBetween: {
      LEGO_COV();
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value v, Eval(bt.operand(), ctx));
      LEGO_ASSIGN_OR_RETURN(Value lo, Eval(bt.lo(), ctx));
      LEGO_ASSIGN_OR_RETURN(Value hi, Eval(bt.hi(), ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = CompareSql(v, lo) >= 0 && CompareSql(v, hi) <= 0;
      return Value::Bool(bt.negated() ? !in_range : in_range);
    }
    case ExprKind::kLike: {
      LEGO_COV();
      const auto& lk = static_cast<const sql::LikeExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value v, Eval(lk.operand(), ctx));
      LEGO_ASSIGN_OR_RETURN(Value p, Eval(lk.pattern(), ctx));
      if (v.is_null() || p.is_null()) return Value::Null();
      bool m = LikeMatch(v.ToText(), p.ToText());
      return Value::Bool(lk.negated() ? !m : m);
    }
    case ExprKind::kIsNull: {
      LEGO_COV();
      const auto& is = static_cast<const sql::IsNullExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value v, Eval(is.operand(), ctx));
      return Value::Bool(is.negated() ? !v.is_null() : v.is_null());
    }
    case ExprKind::kExists: {
      LEGO_COV();
      const auto& ex = static_cast<const sql::ExistsExpr&>(expr);
      if (ctx.runner == nullptr) {
        return Status::ExecutionError("subqueries unavailable here");
      }
      LEGO_ASSIGN_OR_RETURN(Relation rel,
                            ctx.runner->RunSubquery(ex.subquery(), &ctx));
      bool has = !rel.rows.empty();
      return Value::Bool(ex.negated() ? !has : has);
    }
    case ExprKind::kCast: {
      LEGO_COV();
      const auto& cast = static_cast<const sql::CastExpr&>(expr);
      LEGO_ASSIGN_OR_RETURN(Value v, Eval(cast.operand(), ctx));
      return v.CastTo(FromSqlType(cast.target()));
    }
    case ExprKind::kScalarSubquery: {
      LEGO_COV();
      const auto& sub = static_cast<const sql::ScalarSubquery&>(expr);
      if (ctx.runner == nullptr) {
        return Status::ExecutionError("subqueries unavailable here");
      }
      LEGO_ASSIGN_OR_RETURN(Relation rel,
                            ctx.runner->RunSubquery(sub.subquery(), &ctx));
      if (rel.rows.empty()) return Value::Null();
      if (rel.rows.size() > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      if (rel.rows[0].empty()) return Value::Null();
      return rel.rows[0][0];
    }
    case ExprKind::kSessionVar: {
      LEGO_COV();
      const auto& sv = static_cast<const sql::SessionVar&>(expr);
      if (ctx.hooks == nullptr) return Value::Null();
      return ctx.hooks->GetSessionVar(sv.name());
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace lego::minidb
