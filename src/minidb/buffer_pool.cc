#include "minidb/buffer_pool.h"

#include "chaos/failpoint.h"

namespace lego::minidb {

BufferPool::BufferPool(PagedFile* file, size_t frames) : file_(file) {
  if (frames == 0) frames = 1;
  frames_.resize(frames);
  for (Frame& f : frames_) f.data.resize(kPageSize);
}

StatusOr<char*> BufferPool::Pin(uint64_t page_id) {
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.referenced = true;
    ++stats_.hits;
    return f.data.data();
  }
  ++stats_.misses;
  size_t slot = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].valid) {
      slot = i;
      break;
    }
  }
  if (slot == frames_.size()) {
    auto victim = Evict();
    if (!victim.ok()) return victim.status();
    slot = victim.value();
  }
  Frame& f = frames_[slot];
  Status s = file_->ReadPage(page_id, f.data.data());
  if (!s.ok()) return s;
  f.page_id = page_id;
  f.valid = true;
  f.dirty = false;
  f.referenced = true;
  f.pins = 1;
  page_to_frame_[page_id] = slot;
  return f.data.data();
}

void BufferPool::Unpin(uint64_t page_id, bool dirty) {
  auto it = page_to_frame_.find(page_id);
  if (it == page_to_frame_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pins > 0) --f.pins;
  f.dirty |= dirty;
}

StatusOr<size_t> BufferPool::Evict() {
  // Two full sweeps: the first clears reference bits, the second must find a
  // victim unless every frame is pinned.
  for (size_t step = 0; step < frames_.size() * 2; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t slot = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.pins > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      Status s = WriteBack(&f);
      if (!s.ok()) return s;
    }
    page_to_frame_.erase(f.page_id);
    f.valid = false;
    ++stats_.evictions;
    return slot;
  }
  return Status::Internal("buffer pool exhausted: all frames pinned");
}

Status BufferPool::WriteBack(Frame* frame) {
  if (LEGO_FAILPOINT("pager.flush")) {
    return Status::Internal("injected pager.flush failure");
  }
  Status s = file_->WritePage(frame->page_id, frame->data.data());
  if (!s.ok()) return s;
  frame->dirty = false;
  ++stats_.writebacks;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (!f.valid || !f.dirty) continue;
    LEGO_RETURN_IF_ERROR(WriteBack(&f));
  }
  return file_->Sync();
}

}  // namespace lego::minidb
