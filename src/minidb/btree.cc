#include "minidb/btree.h"

#include <algorithm>
#include <cassert>

namespace lego::minidb {

struct BTreeIndex::Node {
  bool leaf = true;
  std::vector<Value> keys;
  // Internal nodes: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaves: postings[i] holds the row ids for keys[i].
  std::vector<std::vector<RowId>> postings;
  Node* next = nullptr;  // leaf chain
};

BTreeIndex::BTreeIndex() : root_(std::make_unique<BTreeIndex::Node>()) {}
BTreeIndex::~BTreeIndex() = default;
BTreeIndex::BTreeIndex(BTreeIndex&&) noexcept = default;
BTreeIndex& BTreeIndex::operator=(BTreeIndex&&) noexcept = default;

BTreeIndex::BTreeIndex(const BTreeIndex& other) { CopyFrom(other); }

BTreeIndex& BTreeIndex::operator=(const BTreeIndex& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

void BTreeIndex::CopyFrom(const BTreeIndex& other) {
  root_ = CloneNode(*other.root_);
  entries_ = other.entries_;
  RelinkLeaves(root_.get());
}

std::unique_ptr<BTreeIndex::Node> BTreeIndex::CloneNode(const Node& n) {
  auto c = std::make_unique<Node>();
  c->leaf = n.leaf;
  c->keys = n.keys;
  c->postings = n.postings;
  c->children.reserve(n.children.size());
  for (const auto& ch : n.children) c->children.push_back(CloneNode(*ch));
  return c;
}

void BTreeIndex::RelinkLeaves(Node* root) {
  // Rebuild the leaf chain with an in-order walk.
  std::vector<Node*> leaves;
  // Collect via explicit DFS preserving left-to-right order.
  struct Frame {
    Node* node;
    size_t child = 0;
  };
  std::vector<Frame> frames = {{root, 0}};
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.node->leaf) {
      leaves.push_back(f.node);
      frames.pop_back();
      continue;
    }
    if (f.child >= f.node->children.size()) {
      frames.pop_back();
      continue;
    }
    Node* next = f.node->children[f.child].get();
    ++f.child;
    frames.push_back({next, 0});
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaves[i]->next = (i + 1 < leaves.size()) ? leaves[i + 1] : nullptr;
  }
}

namespace {

/// First index i with keys[i] >= key.
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index i with keys[i] > key.
size_t UpperBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void BTreeIndex::Insert(const Value& key, RowId rid) {
  // Iterative descent, remembering the path for splits.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    size_t i = UpperBound(node->keys, key);
    node = node->children[i].get();
  }

  size_t i = LowerBound(node->keys, key);
  if (i < node->keys.size() && node->keys[i].Compare(key) == 0) {
    node->postings[i].push_back(rid);
    ++entries_;
    return;
  }
  node->keys.insert(node->keys.begin() + i, key);
  node->postings.insert(node->postings.begin() + i, std::vector<RowId>{rid});
  ++entries_;

  // Split up the path while nodes overflow.
  Node* cur = node;
  while (cur->keys.size() > kMaxKeys) {
    size_t mid = cur->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = cur->leaf;
    Value separator;
    if (cur->leaf) {
      separator = cur->keys[mid];
      right->keys.assign(std::make_move_iterator(cur->keys.begin() + mid),
                         std::make_move_iterator(cur->keys.end()));
      right->postings.assign(
          std::make_move_iterator(cur->postings.begin() + mid),
          std::make_move_iterator(cur->postings.end()));
      cur->keys.resize(mid);
      cur->postings.resize(mid);
      right->next = cur->next;
      cur->next = right.get();
    } else {
      separator = cur->keys[mid];
      right->keys.assign(std::make_move_iterator(cur->keys.begin() + mid + 1),
                         std::make_move_iterator(cur->keys.end()));
      for (size_t c = mid + 1; c < cur->children.size(); ++c) {
        right->children.push_back(std::move(cur->children[c]));
      }
      cur->keys.resize(mid);
      cur->children.resize(mid + 1);
    }

    if (path.empty()) {
      // Split the root: grow the tree by one level.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->keys.push_back(std::move(separator));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
      break;
    }
    Node* parent = path.back();
    path.pop_back();
    size_t pos = UpperBound(parent->keys, separator);
    // Find the child slot of `cur` to insert right after it. Key-based
    // position is correct because separator >= all keys in cur.
    size_t child_pos = pos;
    for (size_t c = 0; c < parent->children.size(); ++c) {
      if (parent->children[c].get() == cur) {
        child_pos = c;
        break;
      }
    }
    parent->keys.insert(parent->keys.begin() + child_pos, std::move(separator));
    parent->children.insert(parent->children.begin() + child_pos + 1,
                            std::move(right));
    cur = parent;
  }
}

bool BTreeIndex::Erase(const Value& key, RowId rid) {
  Node* node = root_.get();
  while (!node->leaf) {
    size_t i = UpperBound(node->keys, key);
    node = node->children[i].get();
  }
  size_t i = LowerBound(node->keys, key);
  if (i >= node->keys.size() || node->keys[i].Compare(key) != 0) return false;
  auto& posting = node->postings[i];
  auto it = std::find(posting.begin(), posting.end(), rid);
  if (it == posting.end()) return false;
  posting.erase(it);
  --entries_;
  if (posting.empty()) {
    node->keys.erase(node->keys.begin() + i);
    node->postings.erase(node->postings.begin() + i);
    // Lazy deletion: no rebalancing. REINDEX rebuilds compactly.
  }
  return true;
}

std::vector<RowId> BTreeIndex::Find(const Value& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t i = UpperBound(node->keys, key);
    node = node->children[i].get();
  }
  size_t i = LowerBound(node->keys, key);
  if (i < node->keys.size() && node->keys[i].Compare(key) == 0) {
    return node->postings[i];
  }
  return {};
}

std::vector<RowId> BTreeIndex::Range(const Value* lo, bool lo_inclusive,
                                     const Value* hi,
                                     bool hi_inclusive) const {
  std::vector<RowId> out;
  const Node* node = root_.get();
  if (lo != nullptr) {
    while (!node->leaf) {
      size_t i = UpperBound(node->keys, *lo);
      node = node->children[i].get();
    }
  } else {
    while (!node->leaf) node = node->children.front().get();
  }
  size_t i = 0;
  if (lo != nullptr) {
    i = lo_inclusive ? LowerBound(node->keys, *lo)
                     : UpperBound(node->keys, *lo);
  }
  while (node != nullptr) {
    for (; i < node->keys.size(); ++i) {
      if (hi != nullptr) {
        int c = node->keys[i].Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.insert(out.end(), node->postings[i].begin(),
                 node->postings[i].end());
    }
    node = node->next;
    i = 0;
  }
  return out;
}

size_t BTreeIndex::KeyCount() const {
  size_t n = 0;
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next) n += node->keys.size();
  return n;
}

size_t BTreeIndex::Height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

void BTreeIndex::Clear() {
  root_ = std::make_unique<Node>();
  entries_ = 0;
}

bool BTreeIndex::CheckInvariants() const {
  // Walk the whole tree checking ordering and fanout.
  struct Walker {
    bool ok = true;
    size_t leaf_depth = 0;

    void Walk(const Node& n, const Value* lo, const Value* hi, size_t depth) {
      if (!ok) return;
      for (size_t i = 0; i + 1 < n.keys.size(); ++i) {
        if (n.keys[i].Compare(n.keys[i + 1]) >= 0) {
          ok = false;
          return;
        }
      }
      for (const Value& k : n.keys) {
        if (lo != nullptr && k.Compare(*lo) < 0) ok = false;
        if (hi != nullptr && k.Compare(*hi) > 0) ok = false;
      }
      if (!ok) return;
      if (n.leaf) {
        if (n.postings.size() != n.keys.size()) ok = false;
        for (const auto& p : n.postings) {
          if (p.empty()) ok = false;
        }
        if (leaf_depth == 0) {
          leaf_depth = depth;
        } else if (leaf_depth != depth) {
          ok = false;  // all leaves must be at the same depth
        }
        return;
      }
      if (n.children.size() != n.keys.size() + 1) {
        ok = false;
        return;
      }
      for (size_t i = 0; i < n.children.size(); ++i) {
        const Value* clo = (i == 0) ? lo : &n.keys[i - 1];
        const Value* chi = (i == n.keys.size()) ? hi : &n.keys[i];
        Walk(*n.children[i], clo, chi, depth + 1);
      }
    }
  };
  Walker w;
  w.Walk(*root_, nullptr, nullptr, 1);
  if (!w.ok) return false;

  // Leaf chain must visit keys in nondecreasing order and count entries_.
  size_t counted = 0;
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  const Value* prev = nullptr;
  for (; node != nullptr; node = node->next) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (prev != nullptr && prev->Compare(node->keys[i]) >= 0) return false;
      prev = &node->keys[i];
      counted += node->postings[i].size();
    }
  }
  return counted == entries_;
}

}  // namespace lego::minidb
