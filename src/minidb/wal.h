#ifndef LEGO_MINIDB_WAL_H_
#define LEGO_MINIDB_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minidb/env.h"
#include "minidb/row.h"

namespace lego::minidb {

/// Record kinds of the steal/undo WAL. Physiological records carry both the
/// post-image (redo) and the before-image (undo), so records of *open*
/// transactions may be streamed to the log — and flushed — before commit;
/// recovery redoes everything in order and unwinds losers with the
/// before-images (ARIES-lite with a losers pass).
enum class WalRecordType : uint8_t {
  kLogical = 1,  // re-execute `text` as SQL (schema changes, structural ops)
  kPut = 2,      // physiological: post-image of (table, rid) + before-image
  kErase = 3,    // physiological: tombstone (table, rid); `row` = before-image
  kSeqSet = 4,   // sequence position after the statement
  kCommit = 5,   // txn_id committed: its records are permanent
  kAbort = 6,    // txn_id rolled back: undo its streamed records
  kAbortTo = 7,  // partial rollback: undo txn_id's streamed records with
                 // lsn > undo_upto (ROLLBACK TO SAVEPOINT over a stolen
                 // prefix)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint64_t lsn = 0;
  /// Owning transaction. 0 = autocommit batch (records and their kCommit
  /// marker are appended as one atomic push).
  uint64_t txn_id = 0;
  /// Deferred records were buffered until commit was certain (logical
  /// records, autocommit batches, post-logical transaction suffixes) and
  /// carry no before-image: recovery applies them only when their txn's
  /// kCommit marker is present. Streamed (non-deferred) records reached the
  /// log mid-transaction under the steal policy; recovery applies them
  /// unconditionally and relies on before-images to unwind losers.
  bool deferred = true;
  std::string text;   // kLogical: SQL text; kSeqSet: sequence name
  std::string user;   // kLogical: session user the statement executed as
  std::string table;  // kPut/kErase
  RowId rid;          // kPut/kErase
  Row row;            // kPut: post-image; kErase: before-image (undo)
  /// kPut undo: the slot's pre-image when it was live (an update), absent
  /// when the put created the slot (an insert; undo re-tombstones it).
  bool has_before = false;
  Row before;
  int64_t seq_current = 0;  // kSeqSet
  bool seq_started = false;
  uint64_t undo_upto = 0;  // kAbortTo: undo streamed records with lsn > this
};

struct WalLoadStats {
  uint64_t records = 0;         // complete records returned
  uint64_t commits = 0;         // kCommit markers seen
  uint64_t loser_records = 0;   // records after the last kCommit (kept —
                                // they are undo candidates, not garbage)
  uint64_t torn_tail_bytes = 0; // unparseable suffix (counted, not fatal)
};

/// Append side of the write-ahead log. Records are framed
/// [u32 len][u64 fnv1a hash][payload] and accumulate in the Env log's
/// user-space buffer; Commit() appends the kCommit marker and pushes the
/// whole batch through Sync() — commit *is* the sync. Under the steal
/// policy, Flush() also runs mid-transaction whenever the buffer grows past
/// the caller's threshold, so large transactions never buffer unboundedly.
/// `wal.append` covers the framing path, env.write/env.sync fire inside
/// Sync.
class WalManager {
 public:
  explicit WalManager(Env* env) : env_(env) {}

  Status Open(const std::string& path, bool truncate);
  bool is_open() const { return log_ != nullptr; }
  const std::string& path() const { return path_; }
  void Close() { log_.reset(); }

  Status Append(const WalRecord& rec);

  /// Appends txn `txn_id`'s commit marker and syncs. `skip_sync` is the
  /// planted skip-fsync defect: the batch stays in the user-space buffer
  /// and a SIGKILL genuinely loses it.
  Status Commit(uint64_t lsn, uint64_t txn_id, bool skip_sync);

  /// Pushes the buffer and fsyncs without a commit marker (mid-transaction
  /// steal flush, and tail repair after recovery).
  Status Flush();

  uint64_t appended_records() const { return appended_records_; }
  /// Appended-but-unsynced bytes (the steal flush trigger).
  uint64_t buffered_bytes() const {
    return log_ ? log_->BufferedBytes() : 0;
  }
  uint64_t synced_bytes() const {
    return log_ ? log_->SyncedBytes() : 0;
  }

  /// Replays `path` into records. Stops cleanly at a torn/corrupt frame
  /// (counted in stats, not an error) and returns *every* complete record —
  /// including those past the last kCommit, which the caller's losers pass
  /// unwinds via their before-images. `wal.recover` fires per record read.
  /// A missing file is an empty log.
  static StatusOr<std::vector<WalRecord>> Load(Env* env,
                                               const std::string& path,
                                               WalLoadStats* stats);

 private:
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableLog> log_;
  uint64_t appended_records_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_WAL_H_
