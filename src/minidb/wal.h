#ifndef LEGO_MINIDB_WAL_H_
#define LEGO_MINIDB_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minidb/env.h"
#include "minidb/row.h"

namespace lego::minidb {

/// Redo-record kinds. The log is redo-only (no-steal, deferred write): only
/// effects of statements the engine decided to keep are ever appended, so
/// recovery never needs undo.
enum class WalRecordType : uint8_t {
  kLogical = 1,  // re-execute `text` as SQL (schema changes, structural ops)
  kPut = 2,      // physiological: full post-image of (table, rid)
  kErase = 3,    // physiological: tombstone (table, rid)
  kSeqSet = 4,   // sequence position after the statement
  kCommit = 5,   // batch boundary: everything since the previous kCommit is
                 // atomic; recovery discards a tail without one
};

struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  uint64_t lsn = 0;
  std::string text;   // kLogical: SQL text; kSeqSet: sequence name
  std::string user;   // kLogical: session user the statement executed as
  std::string table;  // kPut/kErase
  RowId rid;          // kPut/kErase
  Row row;            // kPut
  int64_t seq_current = 0;  // kSeqSet
  bool seq_started = false;
};

struct WalLoadStats {
  uint64_t records = 0;           // records returned (up to the last commit)
  uint64_t commits = 0;           // kCommit markers seen
  uint64_t torn_records = 0;      // parsed but past the last commit (dropped)
  uint64_t torn_tail_bytes = 0;   // unparseable suffix (counted, not fatal)
};

/// Append side of the write-ahead log. Records are framed
/// [u32 len][u64 fnv1a hash][payload] and accumulate in the Env log's
/// user-space buffer; Commit() appends the kCommit marker and pushes the
/// whole batch through Sync() — commit *is* the sync. `wal.append` covers
/// the framing path, env.write/env.sync fire inside Sync.
class WalManager {
 public:
  explicit WalManager(Env* env) : env_(env) {}

  Status Open(const std::string& path, bool truncate);
  bool is_open() const { return log_ != nullptr; }
  const std::string& path() const { return path_; }
  void Close() { log_.reset(); }

  Status Append(const WalRecord& rec);

  /// Appends the commit marker and syncs. `skip_sync` is the planted
  /// skip-fsync defect: the batch stays in the user-space buffer and a
  /// SIGKILL genuinely loses it.
  Status Commit(uint64_t lsn, bool skip_sync);

  /// Pushes the buffer and fsyncs without a commit marker (tail repair
  /// after recovery rewrites the kept records).
  Status Flush();

  uint64_t appended_records() const { return appended_records_; }
  uint64_t synced_bytes() const {
    return log_ ? log_->SyncedBytes() : 0;
  }

  /// Replays `path` into records. Stops cleanly at a torn/corrupt tail
  /// (counted in stats, not an error) and drops any parsed records after
  /// the last kCommit. `wal.recover` fires per record read. A missing file
  /// is an empty log.
  static StatusOr<std::vector<WalRecord>> Load(Env* env,
                                               const std::string& path,
                                               WalLoadStats* stats);

 private:
  Env* env_;
  std::string path_;
  std::unique_ptr<WritableLog> log_;
  uint64_t appended_records_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_WAL_H_
