#ifndef LEGO_MINIDB_RELATION_H_
#define LEGO_MINIDB_RELATION_H_

#include <string>
#include <vector>

#include "minidb/row.h"

namespace lego::minidb {

/// One output column of an intermediate or final relation.
struct RelColumn {
  std::string qualifier;  // table alias or "", e.g. "t1"
  std::string name;       // column or alias, e.g. "v2"
};

/// A materialized relation: schema plus rows. All executor operators consume
/// and produce Relations.
struct Relation {
  std::vector<RelColumn> columns;
  std::vector<Row> rows;

  /// Resolves `name` (optionally qualified). Returns the column index, or -1
  /// if absent; sets *ambiguous when more than one column matches.
  int FindColumn(const std::string& qualifier, const std::string& name,
                 bool* ambiguous) const {
    int found = -1;
    if (ambiguous != nullptr) *ambiguous = false;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name != name) continue;
      if (!qualifier.empty() && columns[i].qualifier != qualifier) continue;
      if (found >= 0) {
        if (ambiguous != nullptr) *ambiguous = true;
        return found;
      }
      found = static_cast<int>(i);
    }
    return found;
  }
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_RELATION_H_
