#ifndef LEGO_MINIDB_BTREE_H_
#define LEGO_MINIDB_BTREE_H_

#include <memory>
#include <vector>

#include "minidb/row.h"
#include "minidb/value.h"

namespace lego::minidb {

/// In-memory B+Tree mapping Value keys to row locations. Duplicate keys are
/// supported (secondary indexes). Leaves are chained for range scans.
/// Deletion is lazy (entries are removed but underfull nodes are not
/// rebalanced), which matches the access patterns of a fuzzing workload;
/// REINDEX rebuilds the tree from scratch.
class BTreeIndex {
 public:
  /// Maximum keys per node before a split.
  static constexpr size_t kMaxKeys = 32;

  BTreeIndex();
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex& other);
  BTreeIndex& operator=(const BTreeIndex& other);
  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;

  /// Adds (key, rid). Duplicates of the same key accumulate.
  void Insert(const Value& key, RowId rid);

  /// Removes one (key, rid) entry. Returns false if absent.
  bool Erase(const Value& key, RowId rid);

  /// All row ids with exactly `key`.
  std::vector<RowId> Find(const Value& key) const;

  /// True if at least one entry has `key`.
  bool Contains(const Value& key) const { return !Find(key).empty(); }

  /// Row ids with lo <= key <= hi (bounds optional; inclusive flags apply
  /// only when the bound is present). Results come back in key order.
  std::vector<RowId> Range(const Value* lo, bool lo_inclusive, const Value* hi,
                           bool hi_inclusive) const;

  /// Total number of (key, rid) entries.
  size_t EntryCount() const { return entries_; }

  /// Number of distinct keys.
  size_t KeyCount() const;

  /// Tree height (1 = single leaf).
  size_t Height() const;

  /// Drops everything.
  void Clear();

  /// Validates B+Tree invariants (key ordering, fanout, leaf chain); for
  /// tests. Returns false on corruption.
  bool CheckInvariants() const;

 private:
  struct Node;

  void CopyFrom(const BTreeIndex& other);
  static std::unique_ptr<Node> CloneNode(const Node& n);
  static void RelinkLeaves(Node* root);

  std::unique_ptr<Node> root_;
  size_t entries_ = 0;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_BTREE_H_
