#ifndef LEGO_MINIDB_LOCK_MANAGER_H_
#define LEGO_MINIDB_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "minidb/row.h"

namespace lego::minidb {

/// Identity of a lockable row. The table component is its catalog name
/// (stable and deterministic across runs, unlike a heap pointer), so lock
/// acquisition/release order — and with it the whole interleaving replay —
/// is a pure function of the schedule seed.
struct LockKey {
  std::string table;
  RowId rid;

  bool operator<(const LockKey& o) const {
    if (table != o.table) return table < o.table;
    return rid < o.rid;
  }
  bool operator==(const LockKey& o) const {
    return table == o.table && rid == o.rid;
  }
};

enum class LockMode : uint8_t { kShared, kExclusive };

/// Row-level strict two-phase lock table with S/X modes, FIFO-ish wait
/// queues, and wait-for-graph deadlock detection. Purely passive: it never
/// blocks a thread itself. A caller whose request returns kWouldBlock parks
/// in the scheduler and is woken when a later ReleaseAll names its
/// transaction in the granted list. The deterministic victim rule is
/// "the requester dies": a request that would close a wait-for cycle is
/// rejected (kDeadlock) and never enqueued, so the blocked transactions it
/// would have deadlocked with keep their locks and continue.
class LockManager {
 public:
  enum class Acquire {
    kGranted,     // lock held (fresh grant, re-entrant hold, or upgrade)
    kWouldBlock,  // request enqueued; park until ReleaseAll grants it
    kDeadlock,    // granting would deadlock; request dropped, caller aborts
  };

  /// Requests `mode` on `key` for transaction `txn`. Re-entrant: holding X
  /// satisfies an S request; holding S and requesting X upgrades in place
  /// when txn is the sole holder, otherwise waits.
  Acquire Request(uint64_t txn, const LockKey& key, LockMode mode);

  /// Releases every lock `txn` holds and cancels any wait it has pending,
  /// then promotes now-grantable waiters. Returns the transactions whose
  /// pending request became granted, in ascending txn order (the
  /// deterministic wake order).
  std::vector<uint64_t> ReleaseAll(uint64_t txn);

  /// True when `txn` holds `key` in at least `mode` strength.
  bool Holds(uint64_t txn, const LockKey& key, LockMode mode) const;

  /// Number of keys `txn` currently holds.
  size_t HeldCount(uint64_t txn) const;

  /// Key `txn` is currently waiting on, if any (tests/diagnostics).
  const LockKey* WaitingOn(uint64_t txn) const;

  void Clear();

 private:
  struct Waiter {
    uint64_t txn = 0;
    LockMode mode = LockMode::kShared;
  };
  struct LockState {
    std::map<uint64_t, LockMode> holders;
    std::vector<Waiter> queue;  // arrival order
  };

  /// True if `txn` requesting `mode` is compatible with the current holders
  /// of `state` (ignoring txn's own hold, which covers upgrades).
  static bool Compatible(const LockState& state, uint64_t txn, LockMode mode);

  /// Would blocking `txn` on `key` close a cycle in the wait-for graph?
  bool WouldDeadlock(uint64_t txn, const LockKey& key, LockMode mode) const;

  /// Promotes grantable waiters of `key` in queue order; appends granted
  /// txns to `granted`.
  void PromoteWaiters(const LockKey& key, std::vector<uint64_t>* granted);

  std::map<LockKey, LockState> locks_;
  std::map<uint64_t, std::set<LockKey>> held_;
  std::map<uint64_t, LockKey> waiting_;
};

}  // namespace lego::minidb

#endif  // LEGO_MINIDB_LOCK_MANAGER_H_
