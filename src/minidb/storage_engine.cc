#include "minidb/storage_engine.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "minidb/storage_serde.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "util/hash.h"

namespace lego::minidb {

namespace {

constexpr uint32_t kSnapMagic = 0x504e534cU;  // 'LSNP' little-endian
constexpr uint32_t kSnapVersion = 1;
/// Data pages carry [u64 lsn][u32 chunk_len][bytes].
constexpr size_t kPageDataCap = kPageSize - sizeof(uint64_t) - sizeof(uint32_t);

void EncodeU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void EncodeU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t DecodeU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t DecodeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool IsTclType(sql::StatementType t) {
  switch (t) {
    case sql::StatementType::kBegin:
    case sql::StatementType::kCommit:
    case sql::StatementType::kRollback:
    case sql::StatementType::kSavepoint:
    case sql::StatementType::kRelease:
    case sql::StatementType::kRollbackTo:
      return true;
    default:
      return false;
  }
}

/// Statements that mutate session context later logical replays depend on
/// (SET role switches the privilege-relevant user; settings feed
/// current_setting()). Logged logically outside the transaction buffer,
/// mirroring their non-transactional semantics.
bool IsSessionContextType(sql::StatementType t) {
  switch (t) {
    case sql::StatementType::kSet:
    case sql::StatementType::kPragma:
    case sql::StatementType::kAlterSystem:
    case sql::StatementType::kDiscard:
      return true;
    default:
      return false;
  }
}

}  // namespace

StorageEngine::StorageEngine(Options options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : Env::Posix()),
      wal_(env_) {
  if (options_.pool_frames == 0) options_.pool_frames = 1;
}

std::string StorageEngine::SnapPath(uint64_t lsn) const {
  return options_.dir + "/snap." + std::to_string(lsn);
}

std::string StorageEngine::WalPath(uint64_t lsn) const {
  return options_.dir + "/wal." + std::to_string(lsn);
}

Status StorageEngine::WriteManifest(const ManifestInfo& info) {
  persist::StateWriter w;
  w.WriteU64(info.snapshot_lsn);
  return env_->WriteFileAtomic(ManifestPath(), w.EnvelopedBytes());
}

StatusOr<StorageEngine::ManifestInfo> StorageEngine::ReadManifest(
    Env* env, const std::string& dir) {
  auto bytes = env->ReadFile(dir + "/MANIFEST");
  if (!bytes.ok()) return bytes.status();
  auto reader = persist::StateReader::FromEnvelope(std::move(bytes).ValueOrDie());
  if (!reader.ok()) return reader.status();
  ManifestInfo info;
  info.snapshot_lsn = reader.value().ReadU64();
  if (!reader.value().ok()) return reader.value().status();
  return info;
}

Status StorageEngine::AttachPageStore(Database* db) {
  // Fold the dying generation's counters into the engine totals first so
  // per-campaign stats survive per-case resets.
  if (page_store_ != nullptr) {
    const BufferPool::Stats ps = page_store_->pool_stats();
    stats_.pool.hits += ps.hits;
    stats_.pool.misses += ps.misses;
    stats_.pool.evictions += ps.evictions;
    stats_.pool.writebacks += ps.writebacks;
    const PageStore::Stats& pg = page_store_->stats();
    stats_.pages.blob_reads += pg.blob_reads;
    stats_.pages.blob_writes += pg.blob_writes;
    stats_.pages.cow_writes += pg.cow_writes;
    stats_.pages.pages_allocated += pg.pages_allocated;
    stats_.pages.pages_swept += pg.pages_swept;
    stats_.pages.sweeps += pg.sweeps;
    page_store_.reset();
  }
  page_store_ = std::make_unique<PageStore>(env_, HeapPagesPath(),
                                            options_.pool_frames,
                                            options_.panic_on_storage_error);
  LEGO_RETURN_IF_ERROR(page_store_->Open(/*truncate=*/true));
  db->catalog().set_page_store(page_store_.get());
  return Status::OK();
}

Status StorageEngine::ResetFresh(Database* db) {
  db->set_storage_hook(nullptr);
  LEGO_RETURN_IF_ERROR(env_->RemoveDirRecursive(options_.dir));
  LEGO_RETURN_IF_ERROR(env_->CreateDir(options_.dir));
  LEGO_RETURN_IF_ERROR(WriteManifest(ManifestInfo{0}));
  LEGO_RETURN_IF_ERROR(wal_.Open(WalPath(0), /*truncate=*/true));
  lsn_ = 1;
  degraded_ = false;
  in_txn_ = false;
  txn_id_ = 0;
  next_txn_id_ = 1;
  txn_streamed_ = false;
  txn_logical_mode_ = false;
  last_streamed_lsn_ = 0;
  txn_buffer_.clear();
  savepoint_marks_.clear();
  commits_since_checkpoint_ = 0;
  checkpoint_pending_ = false;
  in_statement_ = false;
  db->ResetAll();
  LEGO_RETURN_IF_ERROR(AttachPageStore(db));
  db->set_storage_hook(this);
  return Status::OK();
}

Status StorageEngine::OpenOrRecover(Database* db) {
  if (!env_->FileExists(ManifestPath())) return ResetFresh(db);
  db->set_storage_hook(nullptr);

  auto manifest = ReadManifest(env_, options_.dir);
  if (!manifest.ok()) return manifest.status();
  const uint64_t snap_lsn = manifest.value().snapshot_lsn;

  db->ResetAll();
  uint64_t max_lsn = snap_lsn;
  if (snap_lsn > 0) {
    Catalog loaded;
    BufferPool::Stats pool_stats;
    LEGO_RETURN_IF_ERROR(LoadSnapshot(env_, SnapPath(snap_lsn),
                                      options_.pool_frames, &loaded,
                                      &pool_stats));
    db->catalog() = std::move(loaded);
    stats_.pool.hits += pool_stats.hits;
    stats_.pool.misses += pool_stats.misses;
    stats_.pool.evictions += pool_stats.evictions;
    stats_.pool.writebacks += pool_stats.writebacks;
  }

  WalLoadStats wstats;
  auto records = WalManager::Load(env_, WalPath(snap_lsn), &wstats);
  if (!records.ok()) return records.status();
  std::vector<uint64_t> loser_txns;
  uint64_t undo_count = 0;
  LEGO_RETURN_IF_ERROR(
      ReplayInto(db, records.value(), &loser_txns, &undo_count));
  uint64_t max_txn = 0;
  for (const WalRecord& rec : records.value()) {
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
    if (rec.txn_id > max_txn) max_txn = rec.txn_id;
  }
  stats_.recovered_records += wstats.records;
  stats_.recovered_commits += wstats.commits;
  stats_.loser_records += wstats.loser_records;
  stats_.torn_tail_bytes += wstats.torn_tail_bytes;
  stats_.undo_applied += undo_count;
  lsn_ = max_lsn + 1;

  // Tail repair: only a physically unparseable suffix forces a rewrite.
  // Uncommitted records are legitimate log content under the steal policy —
  // the losers pass undid them, and the kAbort markers appended below keep
  // every future recovery unwinding them at this same position.
  if (wstats.torn_tail_bytes > 0) {
    LEGO_RETURN_IF_ERROR(wal_.Open(WalPath(snap_lsn), /*truncate=*/true));
    for (const WalRecord& rec : records.value()) {
      LEGO_RETURN_IF_ERROR(wal_.Append(rec));
    }
    LEGO_RETURN_IF_ERROR(wal_.Flush());
  } else {
    LEGO_RETURN_IF_ERROR(wal_.Open(WalPath(snap_lsn), /*truncate=*/false));
  }

  // Compensate losers at their undo position. Without these, a later
  // recovery would unwind the loser at end-of-log — where a committed
  // transaction may have reused its row ids. No sync needed: the log is
  // append-ordered, so if anything later becomes durable, these markers
  // are durable first.
  for (uint64_t txn : loser_txns) {
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.lsn = lsn_++;
    rec.txn_id = txn;
    rec.deferred = false;
    LEGO_RETURN_IF_ERROR(wal_.Append(rec));
    ++stats_.wal_records;
  }

  // Sweep strays from interrupted checkpoints (snap.tmp, orphaned
  // generations the manifest never flipped to).
  auto listing = env_->ListDir(options_.dir);
  if (listing.ok()) {
    const std::string keep_snap = "snap." + std::to_string(snap_lsn);
    const std::string keep_wal = "wal." + std::to_string(snap_lsn);
    for (const std::string& name : listing.value()) {
      if (name == "MANIFEST" || name == keep_snap || name == keep_wal ||
          name == "heap.pages") {
        continue;
      }
      (void)env_->RemoveFile(options_.dir + "/" + name);
    }
  }

  degraded_ = false;
  in_txn_ = false;
  txn_id_ = 0;
  next_txn_id_ = max_txn + 1;
  txn_streamed_ = false;
  txn_logical_mode_ = false;
  last_streamed_lsn_ = 0;
  txn_buffer_.clear();
  savepoint_marks_.clear();
  commits_since_checkpoint_ = 0;
  checkpoint_pending_ = false;
  in_statement_ = false;
  LEGO_RETURN_IF_ERROR(AttachPageStore(db));
  db->set_storage_hook(this);
  return Status::OK();
}

Status StorageEngine::RecoverInto(Env* env, const std::string& dir,
                                  Database* db, WalLoadStats* wal_stats) {
  auto manifest = ReadManifest(env, dir);
  if (!manifest.ok()) return manifest.status();
  const uint64_t snap_lsn = manifest.value().snapshot_lsn;
  db->ResetAll();
  if (snap_lsn > 0) {
    Catalog loaded;
    LEGO_RETURN_IF_ERROR(LoadSnapshot(env, dir + "/snap." +
                                               std::to_string(snap_lsn),
                                      /*pool_frames=*/64, &loaded, nullptr));
    db->catalog() = std::move(loaded);
  }
  auto records = WalManager::Load(
      env, dir + "/wal." + std::to_string(snap_lsn), wal_stats);
  if (!records.ok()) return records.status();
  return ReplayInto(db, records.value(), nullptr, nullptr);
}

Status StorageEngine::WriteSnapshot(const Database& db, uint64_t lsn,
                                    BufferPool::Stats* pool_stats) {
  persist::StateWriter w;
  SerializeCatalog(db.catalog(), &w);
  const std::string& blob = w.buffer();

  const std::string tmp = options_.dir + "/snap.tmp";
  auto file_or = env_->OpenPagedFile(tmp, /*truncate=*/true);
  if (!file_or.ok()) return file_or.status();
  std::unique_ptr<PagedFile> file = std::move(file_or).ValueOrDie();
  BufferPool pool(file.get(), options_.pool_frames);

  const uint64_t data_pages = (blob.size() + kPageDataCap - 1) / kPageDataCap;
  auto fail = [&](const Status& s) {
    (void)env_->RemoveFile(tmp);
    return s;
  };

  {
    auto frame = pool.Pin(0);
    if (!frame.ok()) return fail(frame.status());
    char* p = frame.value();
    std::memset(p, 0, kPageSize);
    EncodeU32(p, kSnapMagic);
    EncodeU32(p + 4, kSnapVersion);
    EncodeU64(p + 8, lsn);
    EncodeU64(p + 16, data_pages);
    EncodeU64(p + 24, blob.size());
    EncodeU64(p + 32, Fnv1a64(blob));
    pool.Unpin(0, /*dirty=*/true);
  }
  for (uint64_t i = 0; i < data_pages; ++i) {
    const size_t off = i * kPageDataCap;
    const size_t len = std::min(kPageDataCap, blob.size() - off);
    auto frame = pool.Pin(i + 1);
    if (!frame.ok()) return fail(frame.status());
    char* p = frame.value();
    std::memset(p, 0, kPageSize);
    EncodeU64(p, lsn);  // every page is LSN-stamped
    EncodeU32(p + 8, static_cast<uint32_t>(len));
    std::memcpy(p + 12, blob.data() + off, len);
    pool.Unpin(i + 1, /*dirty=*/true);
  }
  Status s = pool.FlushAll();
  if (pool_stats != nullptr) *pool_stats = pool.stats();
  if (!s.ok()) return fail(s);
  file.reset();
  return env_->RenameFile(tmp, SnapPath(lsn));
}

Status StorageEngine::LoadSnapshot(Env* env, const std::string& path,
                                   size_t pool_frames, Catalog* out,
                                   BufferPool::Stats* pool_stats) {
  auto file_or = env->OpenPagedFile(path, /*truncate=*/false);
  if (!file_or.ok()) return file_or.status();
  std::unique_ptr<PagedFile> file = std::move(file_or).ValueOrDie();
  BufferPool pool(file.get(), pool_frames);

  uint64_t lsn = 0;
  uint64_t data_pages = 0;
  uint64_t blob_len = 0;
  uint64_t blob_hash = 0;
  {
    auto frame = pool.Pin(0);
    if (!frame.ok()) return frame.status();
    const char* p = frame.value();
    const uint32_t magic = DecodeU32(p);
    const uint32_t version = DecodeU32(p + 4);
    lsn = DecodeU64(p + 8);
    data_pages = DecodeU64(p + 16);
    blob_len = DecodeU64(p + 24);
    blob_hash = DecodeU64(p + 32);
    pool.Unpin(0, false);
    if (magic != kSnapMagic) {
      return Status::Internal("snapshot magic mismatch in " + path);
    }
    if (version != kSnapVersion) {
      return Status::Internal("snapshot version mismatch in " + path);
    }
    if (blob_len > data_pages * kPageDataCap) {
      return Status::Internal("snapshot length overruns its pages: " + path);
    }
  }

  std::string blob;
  blob.reserve(blob_len);
  for (uint64_t i = 0; i < data_pages; ++i) {
    auto frame = pool.Pin(i + 1);
    if (!frame.ok()) return frame.status();
    const char* p = frame.value();
    const uint64_t page_lsn = DecodeU64(p);
    const uint32_t len = DecodeU32(p + 8);
    if (page_lsn != lsn || len > kPageDataCap) {
      pool.Unpin(i + 1, false);
      return Status::Internal("snapshot page " + std::to_string(i + 1) +
                              " is stamped with the wrong LSN: " + path);
    }
    blob.append(p + 12, len);
    pool.Unpin(i + 1, false);
  }
  if (pool_stats != nullptr) *pool_stats = pool.stats();
  if (blob.size() != blob_len || Fnv1a64(blob) != blob_hash) {
    return Status::Internal("snapshot payload hash mismatch: " + path);
  }
  persist::StateReader reader = persist::StateReader::FromPayload(std::move(blob));
  return DeserializeCatalog(&reader, out);
}

void StorageEngine::RebuildIndexes(Catalog* catalog) {
  for (const std::string& name : catalog->IndexNames()) {
    IndexInfo* ix = catalog->GetIndex(name).value();
    auto table_or = catalog->GetTable(ix->table);
    if (!table_or.ok()) continue;
    TableInfo* table = table_or.value();
    ix->tree.Clear();
    if (ix->columns.empty()) continue;
    const int col = table->schema.FindColumn(ix->columns[0]);
    if (col < 0) continue;
    table->heap.Scan([&](RowId rid, const Row& row) {
      if (static_cast<size_t>(col) < row.size()) ix->tree.Insert(row[col], rid);
      return true;
    });
  }
}

Status StorageEngine::ReplayInto(Database* db,
                                 const std::vector<WalRecord>& recs,
                                 std::vector<uint64_t>* loser_txns,
                                 uint64_t* undo_count) {
  // Pass 1: which transactions resolved to commit. For the autocommit
  // pseudo-transaction (txn 0), each batch is immediately followed by its
  // own marker, so "a txn-0 kCommit exists later in the log" is exactly
  // "this batch's marker survived" — the log is append-ordered and torn
  // only at the tail.
  std::set<uint64_t> committed;
  size_t last_txn0_commit = 0;
  bool has_txn0_commit = false;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].type != WalRecordType::kCommit) continue;
    if (recs[i].txn_id == 0) {
      last_txn0_commit = i;
      has_txn0_commit = true;
    } else {
      committed.insert(recs[i].txn_id);
    }
  }
  auto deferred_committed = [&](const WalRecord& rec, size_t pos) {
    if (rec.txn_id == 0) return has_txn0_commit && pos < last_txn0_commit;
    return committed.count(rec.txn_id) > 0;
  };

  // Pass 2: redo in order; undo aborted streams at their positions.
  // `pending` holds each open transaction's streamed records in log order.
  std::map<uint64_t, std::vector<const WalRecord*>> pending;
  auto undo_one = [&](const WalRecord* r) {
    auto table = db->catalog().GetTable(r->table);
    if (!table.ok()) return;
    if (r->type == WalRecordType::kPut) {
      if (r->has_before) {
        table.value()->heap.ApplyPut(r->rid, r->before);
      } else {
        table.value()->heap.ApplyDelete(r->rid);  // undo insert: re-tombstone
      }
    } else if (r->type == WalRecordType::kErase) {
      table.value()->heap.ApplyPut(r->rid, r->row);  // undo delete: restore
    }
    if (undo_count != nullptr) ++*undo_count;
  };

  for (size_t i = 0; i < recs.size(); ++i) {
    const WalRecord& rec = recs[i];
    switch (rec.type) {
      case WalRecordType::kLogical: {
        if (!deferred_committed(rec, i)) break;
        // Logical replay re-executes the statement; it may consult indexes,
        // which physio replay leaves stale — rebuild first.
        RebuildIndexes(&db->catalog());
        if (!rec.user.empty()) db->session().current_user = rec.user;
        auto stmts = sql::Parser::ParseScript(rec.text + ";");
        if (!stmts.ok()) {
          return Status::Internal("WAL logical record failed to parse: " +
                                  stmts.status().message());
        }
        for (const sql::StmtPtr& stmt : stmts.value()) {
          // Errors are part of the deterministic original behavior (a
          // statement can be logged with partial effects).
          (void)db->Execute(*stmt);
        }
        break;
      }
      case WalRecordType::kPut: {
        if (rec.deferred && !deferred_committed(rec, i)) break;
        auto table = db->catalog().GetTable(rec.table);
        if (table.ok()) table.value()->heap.ApplyPut(rec.rid, rec.row);
        if (!rec.deferred) pending[rec.txn_id].push_back(&rec);
        break;
      }
      case WalRecordType::kErase: {
        if (rec.deferred && !deferred_committed(rec, i)) break;
        auto table = db->catalog().GetTable(rec.table);
        if (table.ok()) table.value()->heap.ApplyDelete(rec.rid);
        if (!rec.deferred) pending[rec.txn_id].push_back(&rec);
        break;
      }
      case WalRecordType::kSeqSet: {
        if (!deferred_committed(rec, i)) break;
        auto seq = db->catalog().GetSequence(rec.text);
        if (seq.ok()) {
          seq.value()->current = rec.seq_current;
          seq.value()->started = rec.seq_started;
        }
        break;
      }
      case WalRecordType::kCommit:
        if (rec.txn_id != 0) pending.erase(rec.txn_id);  // winner: no undo
        break;
      case WalRecordType::kAbort: {
        auto it = pending.find(rec.txn_id);
        if (it != pending.end()) {
          for (auto r = it->second.rbegin(); r != it->second.rend(); ++r) {
            undo_one(*r);
          }
          pending.erase(it);
        }
        break;
      }
      case WalRecordType::kAbortTo: {
        auto it = pending.find(rec.txn_id);
        if (it != pending.end()) {
          std::vector<const WalRecord*>& stream = it->second;
          while (!stream.empty() && stream.back()->lsn > rec.undo_upto) {
            undo_one(stream.back());
            stream.pop_back();
          }
        }
        break;
      }
    }
  }

  // Losers pass: transactions that never resolved. Undo their streams in
  // reverse LSN order across transactions (interleaved streams must unwind
  // newest-first).
  std::vector<const WalRecord*> losers;
  for (auto& [txn, stream] : pending) {
    if (loser_txns != nullptr) loser_txns->push_back(txn);
    losers.insert(losers.end(), stream.begin(), stream.end());
  }
  std::sort(losers.begin(), losers.end(),
            [](const WalRecord* a, const WalRecord* b) {
              return a->lsn > b->lsn;
            });
  for (const WalRecord* r : losers) undo_one(r);

  RebuildIndexes(&db->catalog());
  return Status::OK();
}

Status StorageEngine::Checkpoint(Database* db) {
  if (in_txn_) {
    checkpoint_pending_ = true;
    return Status::OK();
  }
  auto old_manifest = ReadManifest(env_, options_.dir);
  const uint64_t old_lsn =
      old_manifest.ok() ? old_manifest.value().snapshot_lsn : 0;
  const uint64_t snap_lsn = lsn_++;

  BufferPool::Stats pool_stats;
  LEGO_RETURN_IF_ERROR(WriteSnapshot(*db, snap_lsn, &pool_stats));
  stats_.pool.hits += pool_stats.hits;
  stats_.pool.misses += pool_stats.misses;
  stats_.pool.evictions += pool_stats.evictions;
  stats_.pool.writebacks += pool_stats.writebacks;

  // New (empty) log first, manifest flip second: until the flip, recovery
  // still reads the old generation, which stays complete.
  WalManager fresh(env_);
  Status s = fresh.Open(WalPath(snap_lsn), /*truncate=*/true);
  if (!s.ok()) {
    (void)env_->RemoveFile(SnapPath(snap_lsn));
    return s;
  }
  s = WriteManifest(ManifestInfo{snap_lsn});
  if (!s.ok()) {
    (void)env_->RemoveFile(SnapPath(snap_lsn));
    (void)env_->RemoveFile(WalPath(snap_lsn));
    return s;
  }
  wal_ = std::move(fresh);
  if (old_lsn != snap_lsn) {
    (void)env_->RemoveFile(WalPath(old_lsn));
    if (old_lsn > 0) (void)env_->RemoveFile(SnapPath(old_lsn));
  }

  // Outside any transaction exactly one catalog copy exists, so every page
  // chain not reachable from it is garbage (copy-on-write leftovers,
  // VACUUM/TRUNCATE/DROP residue) — reclaim.
  if (page_store_ != nullptr) {
    std::set<uint32_t> live;
    db->catalog().CollectChainPages(&live);
    page_store_->Sweep(live);
  }

  ++stats_.checkpoints;
  commits_since_checkpoint_ = 0;
  checkpoint_pending_ = false;
  return Status::OK();
}

void StorageEngine::HandleStorageFailure(const Status& status) {
  if (options_.panic_on_storage_error) {
    std::fprintf(stderr, "storage: commit not durable, exiting: %s\n",
                 status.message().c_str());
    std::fflush(stderr);
    _exit(kStorageFailExitCode);
  }
  degraded_ = true;
}

bool StorageEngine::AppendRecord(const WalRecord& rec) {
  const uint64_t before = wal_.buffered_bytes() + wal_.synced_bytes();
  Status s = wal_.Append(rec);
  if (!s.ok()) {
    HandleStorageFailure(s);
    return false;
  }
  ++stats_.wal_records;
  stats_.wal_bytes += wal_.buffered_bytes() + wal_.synced_bytes() - before;
  return true;
}

Status StorageEngine::CommitBatch(std::vector<WalRecord> records,
                                  uint64_t txn_id) {
  if (records.empty() && txn_id == 0) return Status::OK();
  for (const WalRecord& rec : records) {
    if (!AppendRecord(rec)) return Status::OK();
  }
  const uint64_t before = wal_.buffered_bytes() + wal_.synced_bytes();
  Status s = wal_.Commit(lsn_++, txn_id, options_.skip_fsync);
  if (!s.ok()) {
    HandleStorageFailure(s);
    return Status::OK();
  }
  ++stats_.wal_records;  // the kCommit marker
  stats_.wal_bytes += wal_.buffered_bytes() + wal_.synced_bytes() - before;
  if (!options_.skip_fsync) ++stats_.fsyncs;
  ++stats_.commits;
  ++commits_since_checkpoint_;
  return Status::OK();
}

Status StorageEngine::MaybeAutoCheckpoint(Database* db) {
  if (in_txn_ || degraded_) return Status::OK();
  if (!checkpoint_pending_ &&
      commits_since_checkpoint_ < options_.checkpoint_every_commits) {
    return Status::OK();
  }
  // A failed checkpoint leaves the previous generation fully valid, so the
  // engine keeps running on the old WAL; it will simply retry later.
  Status s = Checkpoint(db);
  if (!s.ok()) commits_since_checkpoint_ = 0;
  return Status::OK();
}

StorageEngine::Stats StorageEngine::stats() const {
  Stats s = stats_;
  if (page_store_ != nullptr) {
    const BufferPool::Stats ps = page_store_->pool_stats();
    s.pool.hits += ps.hits;
    s.pool.misses += ps.misses;
    s.pool.evictions += ps.evictions;
    s.pool.writebacks += ps.writebacks;
    const PageStore::Stats& pg = page_store_->stats();
    s.pages.blob_reads += pg.blob_reads;
    s.pages.blob_writes += pg.blob_writes;
    s.pages.cow_writes += pg.cow_writes;
    s.pages.pages_allocated += pg.pages_allocated;
    s.pages.pages_swept += pg.pages_swept;
    s.pages.sweeps += pg.sweeps;
  }
  return s;
}

void StorageEngine::BeginStatement(Database* db) {
  if (degraded_) return;
  structural_ = false;
  unknown_heap_ = false;
  stmt_records_.clear();
  stmt_user_ = db->session().current_user;
  schema_fp_before_ = SchemaFingerprint(db->catalog());
  seq_before_.clear();
  for (const std::string& name : db->catalog().SequenceNames()) {
    const SequenceInfo* seq = db->catalog().FindSequence(name);
    seq_before_[name] = {seq->current, seq->started};
  }
  table_names_.clear();
  temp_tables_.clear();
  for (const std::string& name : db->catalog().TableNames()) {
    const TableInfo* t = db->catalog().GetTable(name).value();
    if (t->temporary) {
      temp_tables_.insert(&t->heap);
    } else {
      table_names_[&t->heap] = name;
    }
  }
  in_statement_ = true;
  StorageHooks::Set(this);
}

Status StorageEngine::EndStatement(Database* db, const sql::Statement& stmt,
                                   bool executed_ok) {
  StorageHooks::Set(nullptr);
  if (!in_statement_) return Status::OK();
  in_statement_ = false;
  if (degraded_) return Status::OK();

  const sql::StatementType type = stmt.type();
  if (IsTclType(type)) {
    // Buffer management already happened through the StorageHook
    // notifications the transaction-control path fired.
    stmt_records_.clear();
    return Status::OK();
  }

  if (IsSessionContextType(type)) {
    stmt_records_.clear();
    if (!executed_ok) return Status::OK();
    WalRecord rec;
    rec.type = WalRecordType::kLogical;
    rec.lsn = lsn_++;
    rec.text = sql::ToSql(stmt);
    rec.user = stmt_user_;
    std::vector<WalRecord> batch;
    batch.push_back(std::move(rec));
    LEGO_RETURN_IF_ERROR(CommitBatch(std::move(batch), /*txn_id=*/0));
    return MaybeAutoCheckpoint(db);
  }

  if (type == sql::StatementType::kCheckpoint) {
    // CHECKPOINT changes no durable state, so it must be handled before the
    // state_changed early-return below.
    stmt_records_.clear();
    if (!executed_ok) return Status::OK();
    return Checkpoint(db);  // defers itself (checkpoint_pending_) in a txn
  }

  const uint64_t schema_fp_after = SchemaFingerprint(db->catalog());
  const bool schema_changed = schema_fp_after != schema_fp_before_;

  std::vector<WalRecord> seq_records;
  for (const std::string& name : db->catalog().SequenceNames()) {
    const SequenceInfo* seq = db->catalog().FindSequence(name);
    auto it = seq_before_.find(name);
    if (it != seq_before_.end() &&
        it->second == std::make_pair(seq->current, seq->started)) {
      continue;
    }
    WalRecord rec;
    rec.type = WalRecordType::kSeqSet;
    rec.text = name;
    rec.seq_current = seq->current;
    rec.seq_started = seq->started;
    seq_records.push_back(std::move(rec));
  }

  const bool state_changed = !stmt_records_.empty() || structural_ ||
                             unknown_heap_ || schema_changed ||
                             !seq_records.empty();
  if (!state_changed) return Status::OK();

  const bool physio_ok = !structural_ && !unknown_heap_ && !schema_changed;

  if (in_txn_ && physio_ok && !txn_logical_mode_) {
    // Steal path: stream this statement's physiological records to the log
    // now, before commit is certain — their before-images make them
    // undoable. Sequence updates cannot be undone, so they join the
    // deferred commit-time suffix instead.
    for (WalRecord& rec : stmt_records_) {
      rec.lsn = lsn_++;
      rec.txn_id = txn_id_;
      rec.deferred = false;
      if (!AppendRecord(rec)) {
        stmt_records_.clear();
        return Status::OK();
      }
      last_streamed_lsn_ = rec.lsn;
      txn_streamed_ = true;
    }
    stmt_records_.clear();
    for (WalRecord& rec : seq_records) {
      rec.lsn = lsn_++;
      txn_buffer_.push_back(std::move(rec));
    }
    if (wal_.buffered_bytes() >= options_.steal_flush_bytes) {
      Status s = wal_.Flush();
      if (!s.ok()) {
        HandleStorageFailure(s);
        return Status::OK();
      }
      ++stats_.steal_flushes;
      ++stats_.fsyncs;
    }
    return Status::OK();
  }

  std::vector<WalRecord> records;
  if (physio_ok) {
    records = std::move(stmt_records_);
    for (WalRecord& rec : seq_records) records.push_back(std::move(rec));
  } else {
    WalRecord rec;
    rec.type = WalRecordType::kLogical;
    rec.text = sql::ToSql(stmt);
    rec.user = stmt_user_;
    records.push_back(std::move(rec));
  }
  stmt_records_.clear();
  for (WalRecord& rec : records) rec.lsn = lsn_++;

  if (in_txn_) {
    // A logical record cannot be undone: it and everything after it in this
    // transaction defer to commit time (recovery drops them as a unit if
    // the transaction loses).
    if (!physio_ok) txn_logical_mode_ = true;
    for (WalRecord& rec : records) txn_buffer_.push_back(std::move(rec));
    return Status::OK();
  }
  LEGO_RETURN_IF_ERROR(CommitBatch(std::move(records), /*txn_id=*/0));
  return MaybeAutoCheckpoint(db);
}

void StorageEngine::OnPut(const HeapTable* table, RowId id,
                          const Row* before) {
  if (!in_statement_) return;
  if (temp_tables_.count(table) > 0) return;
  auto it = table_names_.find(table);
  if (it == table_names_.end()) {
    unknown_heap_ = true;
    return;
  }
  const Row* row = table->RawRow(id);
  if (row == nullptr) {
    structural_ = true;  // cannot capture a post-image: fall back to logical
    return;
  }
  WalRecord rec;
  rec.type = WalRecordType::kPut;
  rec.table = it->second;
  rec.rid = id;
  rec.row = *row;
  if (before != nullptr) {
    rec.has_before = true;
    rec.before = *before;
  }
  stmt_records_.push_back(std::move(rec));
}

void StorageEngine::OnErase(const HeapTable* table, RowId id,
                            const Row& before) {
  if (!in_statement_) return;
  if (temp_tables_.count(table) > 0) return;
  auto it = table_names_.find(table);
  if (it == table_names_.end()) {
    unknown_heap_ = true;
    return;
  }
  WalRecord rec;
  rec.type = WalRecordType::kErase;
  rec.table = it->second;
  rec.rid = id;
  rec.row = before;  // the undo image
  stmt_records_.push_back(std::move(rec));
}

void StorageEngine::OnStructural(const HeapTable* table) {
  if (!in_statement_) return;
  if (temp_tables_.count(table) > 0) return;
  if (table_names_.count(table) == 0) {
    unknown_heap_ = true;
    return;
  }
  structural_ = true;
}

void StorageEngine::OnTxnBegin(Database& db) {
  (void)db;
  in_txn_ = true;
  txn_id_ = next_txn_id_++;
  txn_streamed_ = false;
  txn_logical_mode_ = false;
  last_streamed_lsn_ = 0;
  txn_buffer_.clear();
  savepoint_marks_.clear();
  if (page_store_ != nullptr) {
    // The transaction snapshot was copied just before this hook fired; from
    // now until resolution, flushing a page the snapshot shares must
    // copy-on-write.
    page_store_->BumpCowEpoch();
    page_store_->SetCowActive(true);
  }
}

void StorageEngine::OnTxnCommit(Database& db) {
  const uint64_t txn = txn_id_;
  const bool streamed = txn_streamed_;
  in_txn_ = false;
  txn_id_ = 0;
  txn_streamed_ = false;
  txn_logical_mode_ = false;
  last_streamed_lsn_ = 0;
  savepoint_marks_.clear();
  std::vector<WalRecord> batch = std::move(txn_buffer_);
  txn_buffer_.clear();
  if (page_store_ != nullptr) page_store_->SetCowActive(false);
  if (!batch.empty() || streamed) {
    for (WalRecord& rec : batch) {
      rec.txn_id = txn;
      rec.deferred = true;
    }
    (void)CommitBatch(std::move(batch), txn);
  }
  (void)MaybeAutoCheckpoint(&db);
}

void StorageEngine::OnTxnRollback(Database& db) {
  (void)db;
  const uint64_t txn = txn_id_;
  const bool streamed = txn_streamed_;
  in_txn_ = false;
  txn_id_ = 0;
  txn_streamed_ = false;
  txn_logical_mode_ = false;
  last_streamed_lsn_ = 0;
  txn_buffer_.clear();
  savepoint_marks_.clear();
  if (page_store_ != nullptr) page_store_->SetCowActive(false);
  if (streamed && !degraded_) {
    // Recovery must unwind the streamed prefix. No sync needed: if the
    // marker is lost, everything after it is lost too, and the losers pass
    // undoes the stream at the same position.
    WalRecord rec;
    rec.type = WalRecordType::kAbort;
    rec.lsn = lsn_++;
    rec.txn_id = txn;
    rec.deferred = false;
    (void)AppendRecord(rec);
  }
}

void StorageEngine::OnTxnSavepoint(Database& db, const std::string& name) {
  (void)db;
  savepoint_marks_.push_back(
      SavepointMark{name, txn_buffer_.size(), last_streamed_lsn_});
  // The savepoint took another catalog copy; pages flushed from here on
  // must not overwrite chains that copy shares.
  if (page_store_ != nullptr) page_store_->BumpCowEpoch();
}

void StorageEngine::OnTxnRelease(Database& db, const std::string& name) {
  (void)db;
  for (auto it = savepoint_marks_.rbegin(); it != savepoint_marks_.rend();
       ++it) {
    if (it->name == name) {
      // Drop this mark and everything nested inside it; records are kept
      // (RELEASE merges work into the enclosing scope).
      savepoint_marks_.erase(it.base() - 1, savepoint_marks_.end());
      return;
    }
  }
}

void StorageEngine::OnTxnRollbackTo(Database& db, const std::string& name) {
  (void)db;
  for (auto it = savepoint_marks_.rbegin(); it != savepoint_marks_.rend();
       ++it) {
    if (it->name != name) continue;
    txn_buffer_.resize(it->buffer_size);
    if (txn_streamed_ && last_streamed_lsn_ > it->last_streamed_lsn &&
        !degraded_) {
      // Streamed records past the savepoint are already in the log; tell
      // recovery to unwind exactly that suffix.
      WalRecord rec;
      rec.type = WalRecordType::kAbortTo;
      rec.lsn = lsn_++;
      rec.txn_id = txn_id_;
      rec.deferred = false;
      rec.undo_upto = it->last_streamed_lsn;
      (void)AppendRecord(rec);
    }
    last_streamed_lsn_ = it->last_streamed_lsn;
    // Keep the mark itself (SQL semantics: the savepoint survives).
    savepoint_marks_.erase(it.base(), savepoint_marks_.end());
    // The catalog was just restored from the savepoint copy; its pages
    // carry pre-bump epochs, so future flushes keep copy-on-writing away
    // from the chains the outer snapshot still references.
    if (page_store_ != nullptr) page_store_->BumpCowEpoch();
    return;
  }
}

}  // namespace lego::minidb
