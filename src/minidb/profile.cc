#include "minidb/profile.h"

namespace lego::minidb {

namespace {

using sql::StatementType;

std::bitset<sql::kNumStatementTypes> MakeMask(
    const std::vector<StatementType>& types) {
  std::bitset<sql::kNumStatementTypes> mask;
  for (StatementType t : types) mask.set(static_cast<size_t>(t));
  return mask;
}

std::bitset<sql::kNumStatementTypes> AllMask() {
  std::bitset<sql::kNumStatementTypes> mask;
  mask.set();
  return mask;
}

DialectProfile MakePgLite() {
  DialectProfile p;
  p.name = "pglite";
  p.enabled = AllMask();
  return p;
}

DialectProfile MakeMyLite() {
  DialectProfile p;
  p.name = "mylite";
  p.enabled = AllMask();
  // MySQL flavor: no PostgreSQL rewrite rules, no NOTIFY/LISTEN, no COPY.
  p.enabled.reset(static_cast<size_t>(StatementType::kCreateRule));
  p.enabled.reset(static_cast<size_t>(StatementType::kDropRule));
  p.enabled.reset(static_cast<size_t>(StatementType::kNotify));
  p.enabled.reset(static_cast<size_t>(StatementType::kListen));
  p.enabled.reset(static_cast<size_t>(StatementType::kUnlisten));
  p.enabled.reset(static_cast<size_t>(StatementType::kCopy));
  p.supports_rules = false;
  p.supports_notify = false;
  p.supports_copy = false;
  return p;
}

DialectProfile MakeMariaLite() {
  DialectProfile p = MakeMyLite();
  p.name = "marialite";
  // MariaDB flavor keeps a COPY-style export statement.
  p.enabled.set(static_cast<size_t>(StatementType::kCopy));
  p.supports_copy = true;
  return p;
}

DialectProfile MakeComdLite() {
  DialectProfile p;
  p.name = "comdlite";
  p.enabled = MakeMask({
      StatementType::kCreateTable, StatementType::kCreateIndex,
      StatementType::kCreateView, StatementType::kCreateTrigger,
      StatementType::kDropTable, StatementType::kDropIndex,
      StatementType::kDropView, StatementType::kDropTrigger,
      StatementType::kAlterTable, StatementType::kTruncate,
      StatementType::kInsert, StatementType::kUpdate, StatementType::kDelete,
      StatementType::kReplace, StatementType::kSelect, StatementType::kValues,
      StatementType::kWith, StatementType::kBegin, StatementType::kCommit,
      StatementType::kRollback, StatementType::kSavepoint,
      StatementType::kSet, StatementType::kExplain, StatementType::kAnalyze,
  });
  p.supports_window_functions = false;
  p.supports_rules = false;
  p.supports_notify = false;
  p.supports_copy = false;
  p.supports_set_operations = true;
  return p;
}

}  // namespace

std::vector<sql::StatementType> DialectProfile::EnabledTypes() const {
  std::vector<sql::StatementType> out;
  for (int i = 0; i < sql::kNumStatementTypes; ++i) {
    if (enabled.test(static_cast<size_t>(i))) {
      out.push_back(static_cast<sql::StatementType>(i));
    }
  }
  return out;
}

const DialectProfile& DialectProfile::PgLite() {
  static const DialectProfile* kProfile = new DialectProfile(MakePgLite());
  return *kProfile;
}

const DialectProfile& DialectProfile::MyLite() {
  static const DialectProfile* kProfile = new DialectProfile(MakeMyLite());
  return *kProfile;
}

const DialectProfile& DialectProfile::MariaLite() {
  static const DialectProfile* kProfile = new DialectProfile(MakeMariaLite());
  return *kProfile;
}

const DialectProfile& DialectProfile::ComdLite() {
  static const DialectProfile* kProfile = new DialectProfile(MakeComdLite());
  return *kProfile;
}

const DialectProfile* DialectProfile::ByName(const std::string& name) {
  if (name == "pglite") return &PgLite();
  if (name == "mylite") return &MyLite();
  if (name == "marialite") return &MariaLite();
  if (name == "comdlite") return &ComdLite();
  return nullptr;
}

const std::vector<const DialectProfile*>& DialectProfile::All() {
  static const std::vector<const DialectProfile*>* kAll =
      new std::vector<const DialectProfile*>{&PgLite(), &MyLite(),
                                             &MariaLite(), &ComdLite()};
  return *kAll;
}

}  // namespace lego::minidb
