#include "triage/oracle_suite.h"

#include <utility>

#include "triage/clause_oracle.h"
#include "triage/iso_oracle.h"
#include "triage/norec_oracle.h"
#include "triage/tlp_oracle.h"

namespace lego::triage {

std::unique_ptr<OracleSuite> OracleSuite::FromSpec(std::string_view spec,
                                                   std::string* error) {
  auto suite = std::make_unique<OracleSuite>();
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    bool duplicate = false;
    for (const auto& o : suite->oracles_) {
      if (o->name() == item) duplicate = true;
    }
    if (duplicate) continue;
    if (item == "tlp") {
      suite->oracles_.push_back(std::make_unique<TlpOracle>());
    } else if (item == "norec") {
      suite->oracles_.push_back(std::make_unique<NoRecOracle>());
    } else if (item == "clause") {
      suite->oracles_.push_back(std::make_unique<ClauseOracle>());
    } else if (item == "iso") {
      suite->oracles_.push_back(std::make_unique<IsolationOracle>());
    } else if (item == "dur") {
      // The durability oracle is not a per-statement metamorphic check: it
      // runs in the backend's death path (crash-recovery verification) and
      // surfaces DUR-* findings through crash triage. Accepting it here just
      // records the request; the harness arms the backend accordingly.
      suite->durability_ = true;
    } else {
      if (error != nullptr) {
        *error = "unknown oracle '" + std::string(item) +
                 "' (known: tlp, norec, clause, iso, dur)";
      }
      return nullptr;
    }
  }
  if (suite->oracles_.empty() && !suite->durability_) {
    if (error != nullptr) *error = "empty oracle spec";
    return nullptr;
  }
  return suite;
}

bool OracleSuite::Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
                        fuzz::LogicBugInfo* out) {
  for (const auto& oracle : oracles_) {
    if (oracle->Check(backend, stmt, out)) return true;
  }
  return false;
}

bool OracleSuite::CheckHistory(const concurrency::History& history,
                               fuzz::LogicBugInfo* out) {
  for (const auto& oracle : oracles_) {
    if (oracle->CheckHistory(history, out)) return true;
  }
  return false;
}

std::vector<std::string> OracleSuite::MemberNames() const {
  std::vector<std::string> names;
  names.reserve(oracles_.size());
  for (const auto& o : oracles_) names.emplace_back(o->name());
  return names;
}

}  // namespace lego::triage
