#include "triage/reducer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sql/ast_walk.h"

namespace lego::triage {
namespace {

/// Nodes in the expression subtree rooted at `e`.
size_t CountNodes(sql::Expr* e) {
  size_t n = 1;
  std::vector<sql::ExprPtr*> kids;
  e->CollectChildSlots(&kids);
  for (sql::ExprPtr* k : kids) n += CountNodes(k->get());
  return n;
}

/// Copy of `tc` without statements [start, start + chunk).
fuzz::TestCase WithoutChunk(const fuzz::TestCase& tc, size_t start,
                            size_t chunk) {
  std::vector<sql::StmtPtr> stmts;
  for (size_t i = 0; i < tc.size(); ++i) {
    if (i >= start && i < start + chunk) continue;
    stmts.push_back(tc.statements()[i]->Clone());
  }
  return fuzz::TestCase(std::move(stmts));
}

}  // namespace

Reducer::Reducer(const minidb::DialectProfile& profile,
                 std::string setup_script, ReductionOptions options,
                 const fuzz::BackendOptions& backend)
    : options_(options), harness_(profile, backend) {
  harness_.set_setup_script(std::move(setup_script));
}

bool Reducer::DdminPass(
    fuzz::TestCase* tc,
    const std::function<bool(const fuzz::TestCase&)>& keep) {
  bool shrunk = false;
  size_t n = 2;  // granularity: number of chunks
  while (tc->size() >= 2 && Budget()) {
    const size_t len = tc->size();
    const size_t chunk = (len + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < len && Budget(); start += chunk) {
      fuzz::TestCase cand = WithoutChunk(*tc, start, chunk);
      if (cand.empty()) continue;
      if (keep(cand)) {
        *tc = std::move(cand);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        shrunk = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= len) break;  // singleton granularity exhausted: 1-minimal
      n = std::min(len, n * 2);
    }
  }
  return shrunk;
}

bool Reducer::ExprPass(
    fuzz::TestCase* tc,
    const std::function<bool(const fuzz::TestCase&)>& keep) {
  bool shrunk = false;
  for (size_t s = 0; s < tc->size(); ++s) {
    sql::Statement* stmt = (*tc->mutable_statements())[s].get();
    // Scan slots by ordinal, re-walking after each accepted splice (slot
    // pointers go stale the moment the tree changes). Termination: every
    // accepted candidate strictly decreases the statement's node count,
    // and every rejection advances the ordinal.
    size_t ordinal = 0;
    while (Budget()) {
      std::vector<sql::ExprPtr*> slots;
      sql::WalkStatementExprSlots(
          stmt, [&](sql::ExprPtr* slot) { slots.push_back(slot); });
      if (ordinal >= slots.size()) break;
      sql::ExprPtr* slot = slots[ordinal];

      std::vector<sql::ExprPtr> candidates;
      if (CountNodes(slot->get()) > 1) {
        // Multi-node subtree: a lone literal is a strict shrink. TRUE keeps
        // predicates satisfiable; NULL exercises three-valued paths.
        candidates.push_back(sql::Literal::Null());
        candidates.push_back(sql::Literal::Bool(true));
      }
      {
        // Hoisting any direct child is also a strict shrink.
        std::vector<sql::ExprPtr*> kids;
        (*slot)->CollectChildSlots(&kids);
        for (sql::ExprPtr* k : kids) candidates.push_back((*k)->Clone());
      }

      bool accepted = false;
      for (sql::ExprPtr& cand : candidates) {
        if (!Budget()) break;
        sql::ExprPtr saved = std::move(*slot);
        *slot = std::move(cand);
        if (keep(*tc)) {
          accepted = true;
          shrunk = true;
          break;
        }
        *slot = std::move(saved);
      }
      if (!accepted) ++ordinal;  // spliced-in node rescans at same ordinal
    }
  }
  return shrunk;
}

std::optional<ReductionResult> Reducer::ReduceCrash(const fuzz::TestCase& tc) {
  const int start_replays = replays_;
  ++replays_;
  fuzz::ExecResult first = harness_.Run(tc);
  if (!first.crashed) return std::nullopt;
  const uint64_t target = first.crash.stack_hash;

  ReductionResult res;
  res.original_statements = static_cast<int>(tc.size());
  res.crash = first.crash;

  auto keep = [&](const fuzz::TestCase& cand) {
    ++replays_;
    fuzz::ExecResult r = harness_.Run(cand);
    return r.crashed && r.crash.stack_hash == target;
  };

  fuzz::TestCase work = tc.Clone();
  bool changed = true;
  while (changed && Budget()) {
    changed = DdminPass(&work, keep);
    if (options_.simplify_expressions && ExprPass(&work, keep)) changed = true;
  }

  res.reduced = std::move(work);
  res.reduced_statements = static_cast<int>(res.reduced.size());
  res.replays = replays_ - start_replays;
  return res;
}

std::optional<fuzz::TestCase> Reducer::ReduceWhile(
    const fuzz::TestCase& tc,
    const std::function<bool(const fuzz::TestCase&)>& keep) {
  auto counted = [&](const fuzz::TestCase& cand) {
    ++replays_;
    return keep(cand);
  };
  if (!counted(tc)) return std::nullopt;

  fuzz::TestCase work = tc.Clone();
  bool changed = true;
  while (changed && Budget()) {
    changed = DdminPass(&work, counted);
    if (options_.simplify_expressions && ExprPass(&work, counted)) {
      changed = true;
    }
  }
  return work;
}

}  // namespace lego::triage
