#ifndef LEGO_TRIAGE_CLAUSE_ORACLE_H_
#define LEGO_TRIAGE_CLAUSE_ORACLE_H_

#include <string_view>

#include "fuzz/harness.h"

namespace lego::triage {

/// Clause-guided metamorphic oracle (SQLaser-style): instead of synthesizing
/// a predicate, it partitions on predicates the query *already* carries,
/// slot by slot, so the checked plan paths are exactly the ones the original
/// query exercised. Three clause slots, tried in order, first mismatch wins:
///
///  WHERE  — for eligible Q with WHERE p:
///             Q-sans-WHERE == Q(p) + Q(NOT p) + Q(p IS NULL)
///           as row multisets. Because NOT p is evaluated here, this slot
///           catches negation/eval defects the synthesized-phi oracles only
///           hit by luck (it flags the planted NOT-NULL eval bug directly).
///  JOIN   — for Q whose FROM is a top-level INNER JOIN with an ON clause:
///             rows(L JOIN R ON c ...) == rows(L JOIN R ON TRUE ... WHERE c)
///           (ON hoisted into WHERE; for inner joins the two forms are
///           equivalent, but they drive different join-planning paths).
///  HAVING — for grouped Q with HAVING h (aggregates allowed):
///             Q-sans-HAVING == Q(h) + Q(NOT h) + Q(h IS NULL)
///           over the post-grouping rows.
///
/// All comparisons are order-insensitive; any leg erroring yields no
/// verdict. Stateless and deterministic: every rewrite is a pure function
/// of the query's own AST (no Rng at all), so workers/reruns/replays agree.
class ClauseOracle : public fuzz::LogicOracle {
 public:
  std::string_view name() const override { return "clause"; }

  bool Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
             fuzz::LogicBugInfo* out) override;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_CLAUSE_ORACLE_H_
