#include "triage/triage.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "fuzz/multi_case.h"
#include "persist/io.h"
#include "sql/statement_type.h"
#include "triage/oracle_suite.h"
#include "util/hash.h"

namespace lego::triage {
namespace {

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

/// Inserts `bug` unless its signature was already seen; returns whether it
/// was new.
bool Insert(std::vector<TriagedBug>* bugs, std::map<std::string, size_t>* seen,
            TriagedBug bug) {
  auto [it, inserted] = seen->emplace(bug.signature.Key(), bugs->size());
  if (inserted) bugs->push_back(std::move(bug));
  return inserted;
}

/// Replay keys identify a capture *before* reduction (signatures are only
/// known after), so a manifest lookup can skip ddmin entirely.
std::string CrashReplayKey(const minidb::CrashInfo& crash) {
  return "crash:" + crash.bug_id + ":" + Hex16(crash.stack_hash);
}

std::string LogicReplayKey(const fuzz::LogicBugInfo& logic) {
  return "logic:" + logic.check + ":" + Hex16(logic.fingerprint);
}

/// "tlp" -> "LOGIC-TLP": synthetic bug id for a logic-oracle finding.
/// Isolation anomalies keep their own namespace: "iso-lost-update" ->
/// "ISO-LOST-UPDATE" (no LOGIC- prefix — the anomaly class IS the bug id).
std::string LogicBugId(const std::string& check) {
  std::string id = check.rfind("iso-", 0) == 0 ? "" : "LOGIC-";
  for (char c : check) id += static_cast<char>(std::toupper(c));
  return id;
}

std::string TriggerOf(const TriagedBug& bug, const faults::BugEngine& engine) {
  if (bug.is_logic) return bug.logic.check;
  if (const faults::BugDef* def = engine.FindBug(bug.crash.bug_id)) {
    std::string trigger;
    for (sql::StatementType t : def->sequence) {
      if (!trigger.empty()) trigger += '>';
      trigger += sql::StatementTypeName(t);
    }
    if (!trigger.empty()) return trigger;
  }
  return bug.crash.kind;
}

/// Existing manifest lines keyed by replay key; unknown/comment lines are
/// dropped (the manifest is regenerated, not edited).
std::map<std::string, std::string> LoadManifestLines(
    const std::filesystem::path& path) {
  std::map<std::string, std::string> lines;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    lines.emplace(line.substr(0, tab), line);
  }
  return lines;
}

}  // namespace

std::string OriginString(const std::string& worker,
                         const fuzz::BackendOptions& backend) {
  char host[256] = "unknown-host";
  if (gethostname(host, sizeof(host)) != 0) {
    std::snprintf(host, sizeof(host), "unknown-host");
  }
  host[sizeof(host) - 1] = '\0';
  std::string out;
  if (!worker.empty()) {
    out += worker;
    out += '@';
  }
  out += host;
  out += ':';
  out += std::to_string(static_cast<long long>(getpid()));
  out += '/';
  out += fuzz::BackendKindName(backend.kind);
  out += '/';
  out += fuzz::StorageKindName(backend.storage);
  return out;
}

std::string RenderArtifact(const TriagedBug& bug,
                           const minidb::DialectProfile& profile,
                           const faults::BugEngine& engine) {
  std::string out = "-- lego reproducer (deterministic; do not edit)\n";
  out += "-- signature: " + bug.signature.Key() + "\n";
  out += "-- profile: " + profile.name + "\n";
  if (bug.is_logic) {
    out += "-- oracle: " + bug.logic.check + " (wrong result, no crash)\n";
    out += "-- detail: " + bug.logic.detail + "\n";
    if (bug.logic.sessions > 1) {
      out += "-- sessions: " + std::to_string(bug.logic.sessions) + "\n";
      out += "-- interleave-seed: " + std::to_string(bug.logic.interleave_seed) +
             "\n";
      out += "-- statements: " + std::to_string(bug.reduced_statements) +
             " (reduced from " + std::to_string(bug.original_statements) +
             ")\n";
      // Render the exact split the seed produces: the multi-session script
      // with "-- session N" markers is the actual reproducer.
      out += fuzz::SplitForSessions(bug.repro, bug.logic.sessions,
                                    bug.logic.interleave_seed)
                 .ToSql();
      return out;
    }
  } else {
    out += "-- crash: " + bug.crash.kind + " in " + bug.crash.component +
           " (stack hash " + Hex16(bug.crash.stack_hash) + ")\n";
    if (bug.crash.kind == "DURABILITY" && !bug.crash.message.empty()) {
      out += "-- verdict: " + bug.crash.message + "\n";
    }
    if (const faults::BugDef* def = engine.FindBug(bug.crash.bug_id)) {
      std::string trigger;
      for (sql::StatementType t : def->sequence) {
        if (!trigger.empty()) trigger += '>';
        trigger += sql::StatementTypeName(t);
      }
      out += "-- trigger sequence: " + trigger + "\n";
      if (!def->identifier.empty()) {
        out += "-- upstream report: " + def->identifier + "\n";
      }
    }
  }
  out += "-- statements: " + std::to_string(bug.reduced_statements) +
         " (reduced from " + std::to_string(bug.original_statements) + ")\n";
  out += bug.repro.ToSql();
  return out;
}

TriageReport TriageCampaign(const fuzz::CampaignResult& result,
                            const minidb::DialectProfile& profile,
                            const std::string& setup_script,
                            const TriageOptions& options) {
  TriageReport report;
  Reducer reducer(profile, setup_script, options.reduction, options.backend);
  std::map<std::string, size_t> seen;

  // Replay keys already triaged by an earlier run into the same repro_dir
  // (the resume case: the campaign re-captures every historical bug).
  std::map<std::string, std::string> manifest;
  if (!options.repro_dir.empty()) {
    manifest = LoadManifestLines(std::filesystem::path(options.repro_dir) /
                                 kTriageManifestFile);
  }
  // Replay key per signature, captured pre-reduction: a logic bug's
  // fingerprint can legitimately change while ddmin simplifies the query,
  // but the manifest must list the key a re-captured bug will present.
  std::map<std::string, std::string> replay_keys;

  // --- crash captures ---
  for (size_t i = 0; i < result.captured_cases.size(); ++i) {
    ++report.crash_captures;
    const fuzz::TestCase& tc = result.captured_cases[i];
    TriagedBug bug;
    bug.crash = result.captured_crashes[i];
    const std::string replay_key = CrashReplayKey(bug.crash);
    if (manifest.count(replay_key) != 0) {
      ++report.skipped_known;
      continue;
    }
    bug.original_statements = static_cast<int>(tc.size());
    if (options.reduce) {
      std::optional<ReductionResult> red = reducer.ReduceCrash(tc);
      if (!red.has_value()) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = std::move(red->reduced);
      bug.reduced_statements = red->reduced_statements;
    } else {
      fuzz::ExecResult r = reducer.harness().Run(tc);
      if (!r.crashed || r.crash.stack_hash != bug.crash.stack_hash) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = tc.Clone();
      bug.reduced_statements = bug.original_statements;
    }
    bug.signature = SignatureOf(bug.crash, bug.repro);
    replay_keys.emplace(bug.signature.Key(), replay_key);
    if (!Insert(&report.bugs, &seen, std::move(bug))) ++report.duplicates;
  }

  // --- logic captures ---
  // Replay under the full suite so captures from any oracle reproduce; the
  // per-capture `check` key still pins the finding to its original oracle.
  std::string suite_error;
  std::unique_ptr<OracleSuite> suite =
      OracleSuite::FromSpec("tlp,norec,clause,iso", &suite_error);
  reducer.harness().set_logic_oracle(suite.get());
  for (size_t i = 0; i < result.captured_logic_cases.size(); ++i) {
    ++report.logic_captures;
    const fuzz::TestCase& tc = result.captured_logic_cases[i];
    TriagedBug bug;
    bug.is_logic = true;
    bug.logic = result.captured_logic_bugs[i];
    const std::string replay_key = LogicReplayKey(bug.logic);
    if (manifest.count(replay_key) != 0) {
      ++report.skipped_known;
      continue;
    }
    bug.original_statements = static_cast<int>(tc.size());
    const std::string check = bug.logic.check;
    // Isolation findings are a function of (case, interleaving): pin the
    // captured seed so every replay during reduction re-runs the exact
    // interleaving that exhibited the anomaly.
    const bool is_iso = check.rfind("iso-", 0) == 0;
    if (is_iso) {
      reducer.harness().set_forced_interleave_seed(bug.logic.interleave_seed);
    }
    auto keep = [&](const fuzz::TestCase& cand) {
      fuzz::ExecResult r = reducer.harness().Run(cand);
      if (!r.logic_bug || r.logic.check != check) return false;
      bug.logic = r.logic;  // track the surviving (possibly simpler) finding
      return true;
    };
    bool reproduced;
    if (options.reduce) {
      std::optional<fuzz::TestCase> red = reducer.ReduceWhile(tc, keep);
      reproduced = red.has_value();
      if (reproduced) bug.repro = std::move(*red);
    } else {
      reproduced = keep(tc);
      if (reproduced) bug.repro = tc.Clone();
    }
    if (reproduced && is_iso) {
      // Second minimization axis: the interleaving itself. Statement-level
      // ddmin is done; now probe a few sibling seeds and keep the
      // reproducing interleaving with the fewest session switches (the
      // concurrent analogue of "fewest statements").
      const uint64_t base = bug.logic.interleave_seed;
      int best_switches = -1;
      fuzz::LogicBugInfo best = bug.logic;
      for (uint64_t k = 0; k <= 8; ++k) {
        uint64_t cand = k == 0 ? base : HashMix(base, k);
        reducer.harness().set_forced_interleave_seed(cand);
        fuzz::ExecResult r = reducer.harness().Run(bug.repro);
        if (!r.logic_bug || r.logic.check != check) continue;
        if (best_switches < 0 || r.interleave_switches < best_switches) {
          best_switches = r.interleave_switches;
          best = r.logic;
        }
      }
      bug.logic = best;
    }
    if (is_iso) reducer.harness().set_forced_interleave_seed(std::nullopt);
    if (!reproduced) {
      ++report.not_reproduced;
      continue;
    }
    bug.reduced_statements = static_cast<int>(bug.repro.size());
    bug.signature = BugSignature{LogicBugId(check), TypeFingerprint(bug.repro)};
    replay_keys.emplace(bug.signature.Key(), replay_key);
    if (!Insert(&report.bugs, &seen, std::move(bug))) ++report.duplicates;
  }
  reducer.harness().set_logic_oracle(nullptr);
  report.replays = reducer.replays();

  // Deterministic report order regardless of capture order (which varies
  // with worker count even for the same unique-bug set).
  std::sort(report.bugs.begin(), report.bugs.end(),
            [](const TriagedBug& a, const TriagedBug& b) {
              return a.signature < b.signature;
            });

  if (!options.repro_dir.empty()) {
    std::filesystem::create_directories(options.repro_dir);
    const std::string default_origin =
        options.origin.empty() ? OriginString("", options.backend)
                               : options.origin;
    for (TriagedBug& bug : report.bugs) {
      const std::string file =
          bug.signature.bug_id + "-" +
          Hex16(Fnv1a64(bug.signature.Key())).substr(8) + ".sql";
      const std::filesystem::path path =
          std::filesystem::path(options.repro_dir) / file;
      // Atomic (temp-then-rename) so a crash or kill mid-triage never
      // leaves a half-written reproducer that a later replay trusts.
      Status written = persist::WriteTextFileAtomic(
          path.string(),
          RenderArtifact(bug, profile, reducer.harness().bug_engine()));
      if (written.ok()) {
        bug.artifact_path = path.string();
      } else {
        std::fprintf(stderr, "triage: cannot write %s (%s)\n",
                     path.string().c_str(), written.ToString().c_str());
      }

      auto key_it = replay_keys.find(bug.signature.Key());
      const std::string replay_key =
          key_it != replay_keys.end()
              ? key_it->second
              : (bug.is_logic ? LogicReplayKey(bug.logic)
                              : CrashReplayKey(bug.crash));
      // Origin of the capture: the worker that found it (fleet), else the
      // campaign process itself. Appended as the final column so readers
      // keyed on earlier fields keep parsing rows from either era.
      std::string row_origin = default_origin;
      const auto& origins =
          bug.is_logic ? options.logic_origins : options.crash_origins;
      auto origin_it = origins.find(bug.is_logic ? bug.logic.fingerprint
                                                 : bug.crash.stack_hash);
      if (origin_it != origins.end()) row_origin = origin_it->second;
      manifest[replay_key] =
          replay_key + '\t' + bug.signature.Key() + '\t' +
          TriggerOf(bug, reducer.harness().bug_engine()) + '\t' + file + '\t' +
          std::to_string(options.campaign_seed) + '\t' +
          std::to_string(persist::kFormatVersion) + '\t' + row_origin;
    }
    // Rewrite rather than append: entries stay sorted by replay key and
    // duplicates cannot accumulate across reruns. Written atomically so an
    // interrupted triage leaves the previous manifest intact instead of a
    // truncated one (which would silently forget triaged bugs).
    std::string mf = "# replay-key\tsignature\ttrigger\tartifact\tcampaign-seed"
                     "\tstate-version\torigin\n";
    for (const auto& [key, line] : manifest) {
      mf += line;
      mf += '\n';
    }
    const std::filesystem::path mpath =
        std::filesystem::path(options.repro_dir) / kTriageManifestFile;
    Status written = persist::WriteTextFileAtomic(mpath.string(), mf);
    if (!written.ok()) {
      std::fprintf(stderr, "triage: cannot write %s (%s)\n",
                   mpath.string().c_str(), written.ToString().c_str());
    }
  }
  return report;
}

}  // namespace lego::triage
