#include "triage/triage.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "sql/statement_type.h"
#include "triage/tlp_oracle.h"
#include "util/hash.h"

namespace lego::triage {
namespace {

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

/// Inserts `bug` unless its signature was already seen; returns whether it
/// was new.
bool Insert(std::vector<TriagedBug>* bugs, std::map<std::string, size_t>* seen,
            TriagedBug bug) {
  auto [it, inserted] = seen->emplace(bug.signature.Key(), bugs->size());
  if (inserted) bugs->push_back(std::move(bug));
  return inserted;
}

}  // namespace

std::string RenderArtifact(const TriagedBug& bug,
                           const minidb::DialectProfile& profile,
                           const faults::BugEngine& engine) {
  std::string out = "-- lego reproducer (deterministic; do not edit)\n";
  out += "-- signature: " + bug.signature.Key() + "\n";
  out += "-- profile: " + profile.name + "\n";
  if (bug.is_logic) {
    out += "-- oracle: " + bug.logic.check + " (wrong result, no crash)\n";
    out += "-- detail: " + bug.logic.detail + "\n";
  } else {
    out += "-- crash: " + bug.crash.kind + " in " + bug.crash.component +
           " (stack hash " + Hex16(bug.crash.stack_hash) + ")\n";
    if (const faults::BugDef* def = engine.FindBug(bug.crash.bug_id)) {
      std::string trigger;
      for (sql::StatementType t : def->sequence) {
        if (!trigger.empty()) trigger += '>';
        trigger += sql::StatementTypeName(t);
      }
      out += "-- trigger sequence: " + trigger + "\n";
      if (!def->identifier.empty()) {
        out += "-- upstream report: " + def->identifier + "\n";
      }
    }
  }
  out += "-- statements: " + std::to_string(bug.reduced_statements) +
         " (reduced from " + std::to_string(bug.original_statements) + ")\n";
  out += bug.repro.ToSql();
  return out;
}

TriageReport TriageCampaign(const fuzz::CampaignResult& result,
                            const minidb::DialectProfile& profile,
                            const std::string& setup_script,
                            const TriageOptions& options) {
  TriageReport report;
  Reducer reducer(profile, setup_script, options.reduction, options.backend);
  std::map<std::string, size_t> seen;

  // --- crash captures ---
  for (size_t i = 0; i < result.captured_cases.size(); ++i) {
    ++report.crash_captures;
    const fuzz::TestCase& tc = result.captured_cases[i];
    TriagedBug bug;
    bug.crash = result.captured_crashes[i];
    bug.original_statements = static_cast<int>(tc.size());
    if (options.reduce) {
      std::optional<ReductionResult> red = reducer.ReduceCrash(tc);
      if (!red.has_value()) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = std::move(red->reduced);
      bug.reduced_statements = red->reduced_statements;
    } else {
      fuzz::ExecResult r = reducer.harness().Run(tc);
      if (!r.crashed || r.crash.stack_hash != bug.crash.stack_hash) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = tc.Clone();
      bug.reduced_statements = bug.original_statements;
    }
    bug.signature = SignatureOf(bug.crash, bug.repro);
    if (!Insert(&report.bugs, &seen, std::move(bug))) ++report.duplicates;
  }

  // --- logic captures ---
  TlpOracle tlp;
  reducer.harness().set_logic_oracle(&tlp);
  for (size_t i = 0; i < result.captured_logic_cases.size(); ++i) {
    ++report.logic_captures;
    const fuzz::TestCase& tc = result.captured_logic_cases[i];
    TriagedBug bug;
    bug.is_logic = true;
    bug.logic = result.captured_logic_bugs[i];
    bug.original_statements = static_cast<int>(tc.size());
    const std::string check = bug.logic.check;
    auto keep = [&](const fuzz::TestCase& cand) {
      fuzz::ExecResult r = reducer.harness().Run(cand);
      if (!r.logic_bug || r.logic.check != check) return false;
      bug.logic = r.logic;  // track the surviving (possibly simpler) finding
      return true;
    };
    if (options.reduce) {
      std::optional<fuzz::TestCase> red = reducer.ReduceWhile(tc, keep);
      if (!red.has_value()) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = std::move(*red);
    } else {
      if (!keep(tc)) {
        ++report.not_reproduced;
        continue;
      }
      bug.repro = tc.Clone();
    }
    bug.reduced_statements = static_cast<int>(bug.repro.size());
    bug.signature =
        BugSignature{"LOGIC-TLP", TypeFingerprint(bug.repro)};
    if (!Insert(&report.bugs, &seen, std::move(bug))) ++report.duplicates;
  }
  reducer.harness().set_logic_oracle(nullptr);
  report.replays = reducer.replays();

  // Deterministic report order regardless of capture order (which varies
  // with worker count even for the same unique-bug set).
  std::sort(report.bugs.begin(), report.bugs.end(),
            [](const TriagedBug& a, const TriagedBug& b) {
              return a.signature < b.signature;
            });

  if (!options.repro_dir.empty()) {
    std::filesystem::create_directories(options.repro_dir);
    for (TriagedBug& bug : report.bugs) {
      const std::string file =
          bug.signature.bug_id + "-" +
          Hex16(Fnv1a64(bug.signature.Key())).substr(8) + ".sql";
      const std::filesystem::path path =
          std::filesystem::path(options.repro_dir) / file;
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f << RenderArtifact(bug, profile, reducer.harness().bug_engine());
      bug.artifact_path = path.string();
    }
  }
  return report;
}

}  // namespace lego::triage
