#ifndef LEGO_TRIAGE_ISO_ORACLE_H_
#define LEGO_TRIAGE_ISO_ORACLE_H_

#include "fuzz/harness.h"

namespace lego::triage {

/// Isolation-anomaly oracle for concurrent cases: runs the Elle-style
/// history checker over one concurrent execution's begin/read/write/
/// commit/abort log and converts the first anomaly found into a logic-bug
/// finding ("iso-lost-update", "iso-dirty-read", ...). Statement-level
/// Check() is a no-op — this oracle only sees complete histories, so it
/// composes with the metamorphic members of an OracleSuite instead of
/// competing with them.
class IsolationOracle : public fuzz::LogicOracle {
 public:
  std::string_view name() const override { return "iso"; }

  bool Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
             fuzz::LogicBugInfo* out) override;

  bool CheckHistory(const concurrency::History& history,
                    fuzz::LogicBugInfo* out) override;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_ISO_ORACLE_H_
