#ifndef LEGO_TRIAGE_SIGNATURE_H_
#define LEGO_TRIAGE_SIGNATURE_H_

#include <string>

#include "fuzz/testcase.h"
#include "minidb/database.h"

namespace lego::triage {

/// Stable identity of one deduplicated bug: the injected bug id (or the
/// logic-oracle check name) plus the statement-type fingerprint of its
/// minimized reproducer. Two crashes with the same synthetic stack hash but
/// different minimized trigger sequences triage as distinct bugs; two
/// discoveries of the same bug through different noise collapse to one.
struct BugSignature {
  std::string bug_id;            // "PG-OPT-01", or "LOGIC-<CHECK>" (e.g.
                                 // "LOGIC-TLP", "LOGIC-CLAUSE") for oracles
  std::string type_fingerprint;  // e.g. "CREATE RULE>COPY>WITH"

  /// Canonical dedup/sort key ("<bug_id>|<type_fingerprint>").
  std::string Key() const { return bug_id + "|" + type_fingerprint; }

  friend bool operator==(const BugSignature& a, const BugSignature& b) {
    return a.bug_id == b.bug_id && a.type_fingerprint == b.type_fingerprint;
  }
  friend bool operator<(const BugSignature& a, const BugSignature& b) {
    return a.Key() < b.Key();
  }
};

/// The `>`-joined statement-type names of `tc`, in order.
std::string TypeFingerprint(const fuzz::TestCase& tc);

/// Signature of a fault-injected crash with minimized repro `repro`.
BugSignature SignatureOf(const minidb::CrashInfo& crash,
                         const fuzz::TestCase& repro);

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_SIGNATURE_H_
