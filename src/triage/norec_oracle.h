#ifndef LEGO_TRIAGE_NOREC_ORACLE_H_
#define LEGO_TRIAGE_NOREC_ORACLE_H_

#include <string_view>

#include "fuzz/harness.h"

namespace lego::triage {

/// Non-Optimizing Reference Engine Construction metamorphic oracle
/// (SQLancer-style): for an eligible SELECT over FROM F with predicate p,
///
///   |SELECT * FROM F WHERE p|  ==  SUM over F of CASE WHEN p THEN 1 ELSE 0
///
/// The left side is the "optimized" form — the engine may push p into scans,
/// pick indexes, reorder joins. The right side moves p into the projection
/// of a WHERE-less scan, which denies the optimizer every predicate-driven
/// rewrite; the engine must evaluate p once per candidate row and the 1-count
/// must equal the filtered cardinality. A mismatch is a wrong-result bug in
/// predicate pushdown / filter planning.
///
/// p is the query's own WHERE clause when present, else a synthesized
/// `col <op> k` seeded by Fnv1a64(query_sql, Fnv1a64("norec")) — same
/// determinism contract as TLP but salted so the two oracles probe
/// different predicates for the same query.
///
/// Known blind spot: minidb evaluates both forms through the same Evaluator
/// with no separate optimized path for WHERE, so expression-evaluation bugs
/// that corrupt p identically in both positions (e.g. the planted NOT-NULL
/// eval defect) cancel out. The conformance harness documents and asserts
/// this blindness; TLP and the clause oracle cover that class.
class NoRecOracle : public fuzz::LogicOracle {
 public:
  std::string_view name() const override { return "norec"; }

  bool Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
             fuzz::LogicBugInfo* out) override;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_NOREC_ORACLE_H_
