#include "triage/norec_oracle.h"

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/backend.h"
#include "triage/oracle_common.h"
#include "util/hash.h"

namespace lego::triage {

using oracle::SyntheticPredicate;
using sql::ExprPtr;
using sql::SelectStmt;

namespace {

/// Sums the leading integer of each rendered row ("1|" / "0|"). The CASE
/// projection only ever yields literal 0 or 1, so anything else (NULL from a
/// broken evaluator, say) counts as no contribution but still participates
/// in the mismatch via the filtered-count comparison.
int64_t SumLeadingInts(const std::vector<std::string>& rows) {
  int64_t sum = 0;
  for (const std::string& r : rows) {
    sum += std::strtoll(r.c_str(), nullptr, 10);
  }
  return sum;
}

}  // namespace

bool NoRecOracle::Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
                        fuzz::LogicBugInfo* out) {
  if (stmt.type() != sql::StatementType::kSelect) return false;
  const auto& q = static_cast<const SelectStmt&>(stmt);
  if (!oracle::IsRowPartitionEligible(q)) return false;

  fuzz::OracleSession session(backend);

  std::string query_sql;
  q.PrintTo(&query_sql);

  // Base form with the predicate factored out: optimized = base WHERE p,
  // unoptimized = base projecting CASE WHEN p THEN 1 ELSE 0 END.
  std::unique_ptr<SelectStmt> base = q.CloneSelect();
  ExprPtr p = std::move(base->core.where);
  base->core.where = nullptr;
  if (p == nullptr) {
    std::optional<SyntheticPredicate> phi = oracle::ChoosePredicate(
        q, backend, Fnv1a64(query_sql, Fnv1a64("norec")));
    if (!phi.has_value()) return false;
    p = phi->MakeExpr();
  }

  std::unique_ptr<SelectStmt> optimized =
      oracle::WithConjunct(*base, p->Clone());

  std::unique_ptr<SelectStmt> unoptimized = base->CloneSelect();
  unoptimized->order_by.clear();  // positional ORDER BY would dangle
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  whens.emplace_back(p->Clone(), sql::Literal::Int(1));
  unoptimized->core.items.clear();
  unoptimized->core.items.push_back(
      {std::make_unique<sql::CaseExpr>(nullptr, std::move(whens),
                                       sql::Literal::Int(0)),
       ""});

  std::vector<std::string> opt_rows;
  std::vector<std::string> unopt_rows;
  // Either side erroring (synthesized p tripping a dialect restriction, a
  // dead server) means no verdict, not a bug.
  if (!oracle::RunRows(backend, *optimized, &opt_rows) ||
      !oracle::RunRows(backend, *unoptimized, &unopt_rows)) {
    return false;
  }

  const int64_t opt_count = static_cast<int64_t>(opt_rows.size());
  const int64_t unopt_count = SumLeadingInts(unopt_rows);
  if (opt_count == unopt_count) return false;

  std::string p_sql;
  p->PrintTo(&p_sql);
  out->check = "norec";
  out->query = query_sql;
  out->detail = "NoREC count mismatch: optimized " +
                std::to_string(opt_count) + " row(s), unoptimized " +
                std::to_string(unopt_count) + " over " +
                std::to_string(unopt_rows.size()) + " candidate row(s); p = " +
                p_sql;
  out->fingerprint = Fnv1a64(query_sql, Fnv1a64("norec"));
  return true;
}

}  // namespace lego::triage
