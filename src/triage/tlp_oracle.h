#ifndef LEGO_TRIAGE_TLP_ORACLE_H_
#define LEGO_TRIAGE_TLP_ORACLE_H_

#include <string_view>

#include "fuzz/harness.h"

namespace lego::triage {

/// Ternary Logic Partitioning metamorphic oracle (SQLancer-style): for an
/// eligible SELECT Q and a synthesized predicate phi, SQL's three-valued
/// logic guarantees
///
///   Q  ==  Q(AND phi)  +  Q(AND NOT phi)  +  Q(AND phi IS NULL)
///
/// as multisets of rows — every row's phi evaluates to exactly one of
/// TRUE / FALSE / UNKNOWN. A mismatch is a wrong-result (logic) bug in the
/// engine, invisible to the crash oracle.
///
/// Eligibility: plain single-core SELECT with a FROM clause; no DISTINCT,
/// GROUP BY, HAVING, LIMIT/OFFSET, compounds, aggregates, or window
/// functions (each would break the row-level partition argument). phi is
/// `col <op> k` derived deterministically from an Rng seeded by the query's
/// own SQL, so the oracle is stateless and identical across workers/reruns.
///
/// Talks to the engine only through DbBackend (its own OracleSession
/// bracket; row comparison over StmtOutcome::rows), so the same check runs
/// unchanged against the in-process and forked backends.
class TlpOracle : public fuzz::LogicOracle {
 public:
  std::string_view name() const override { return "tlp"; }

  bool Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
             fuzz::LogicBugInfo* out) override;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_TLP_ORACLE_H_
