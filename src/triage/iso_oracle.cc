#include "triage/iso_oracle.h"

#include <optional>

#include "concurrency/history_checker.h"
#include "util/hash.h"

namespace lego::triage {

bool IsolationOracle::Check(fuzz::DbBackend* backend,
                            const sql::Statement& stmt,
                            fuzz::LogicBugInfo* out) {
  (void)backend;
  (void)stmt;
  (void)out;
  return false;
}

bool IsolationOracle::CheckHistory(const concurrency::History& history,
                                   fuzz::LogicBugInfo* out) {
  std::optional<concurrency::Anomaly> anomaly =
      concurrency::CheckHistory(history);
  if (!anomaly.has_value()) return false;
  out->check = anomaly->id;  // e.g. "iso-lost-update"
  out->detail = anomaly->detail;
  // Dedup on (anomaly class, row key): the same unprotected code path found
  // through different statements/interleavings is one bug.
  out->fingerprint =
      HashMix(Fnv1a64(anomaly->id), Fnv1a64(anomaly->key));
  return true;
}

}  // namespace lego::triage
