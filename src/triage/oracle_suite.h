#ifndef LEGO_TRIAGE_ORACLE_SUITE_H_
#define LEGO_TRIAGE_ORACLE_SUITE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/harness.h"

namespace lego::triage {

/// Composite LogicOracle running a fixed list of member oracles in order;
/// the first member to flag a statement wins (its name/fingerprint land in
/// the finding, so downstream dedup through the PR-2 signature path keeps
/// per-oracle identities). Members share one harness-level
/// Snapshot/RestoreForOracle bracket; each member's own OracleSession is a
/// nested no-op under it.
class OracleSuite : public fuzz::LogicOracle {
 public:
  /// Builds a suite from a comma-separated spec, e.g. "tlp,norec,clause,iso".
  /// Known names: tlp, norec, clause, iso, dur. Duplicates collapse (first
  /// position wins); empty items are ignored. "dur" adds no member — it sets
  /// durability_requested() and the harness arms the backend-level check.
  /// Returns nullptr and fills *error on an unknown name or an all-empty
  /// spec.
  static std::unique_ptr<OracleSuite> FromSpec(std::string_view spec,
                                               std::string* error);

  std::string_view name() const override { return "suite"; }

  bool Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
             fuzz::LogicBugInfo* out) override;

  bool CheckHistory(const concurrency::History& history,
                    fuzz::LogicBugInfo* out) override;

  /// Member names in check order (for CLI/stat display).
  std::vector<std::string> MemberNames() const;

  /// True when the spec asked for the backend-level durability oracle
  /// ("dur"); the caller wires BackendOptions::durability_check from it.
  bool durability_requested() const { return durability_; }

 private:
  std::vector<std::unique_ptr<fuzz::LogicOracle>> oracles_;
  bool durability_ = false;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_ORACLE_SUITE_H_
