#ifndef LEGO_TRIAGE_TRIAGE_H_
#define LEGO_TRIAGE_TRIAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "minidb/profile.h"
#include "triage/reducer.h"
#include "triage/signature.h"

namespace lego::triage {

struct TriageOptions {
  /// Run ddmin + expression simplification on every captured case. When
  /// false, captures are replayed for signature computation but kept as-is.
  bool reduce = true;
  ReductionOptions reduction;
  /// When non-empty, write one deterministic `.sql` reproducer per unique
  /// bug into this directory (created if missing).
  std::string repro_dir;
  /// Replay backend. Use the campaign's own backend options: real crashes
  /// (bug_id REAL-*) and hangs (bug_id HANG) only reproduce under a forked
  /// child with the same watchdog, and replaying them in-process would kill
  /// the triage pass itself.
  fuzz::BackendOptions backend;
  /// Recorded per-bug in the repro-dir manifest so an artifact can be tied
  /// back to the campaign that produced it.
  uint64_t campaign_seed = 0;
  /// Origin stamp for manifest rows: which process found the bug. Empty
  /// derives a default from this process (`<host>:<pid>/<backend>/<storage>`
  /// via OriginString). The fleet coordinator stamps collected repros with
  /// the finding worker instead, via the per-capture maps below.
  std::string origin;
  /// Per-capture origin overrides, keyed by crash stack hash / logic
  /// fingerprint (the identities captures carry into triage). Captures not
  /// listed fall back to `origin`.
  std::map<uint64_t, std::string> crash_origins;
  std::map<uint64_t, std::string> logic_origins;
};

/// Canonical origin stamp: `<worker>@<host>:<pid>/<backend>/<storage>` when
/// `worker` is non-empty (fleet workers), `<host>:<pid>/<backend>/<storage>`
/// otherwise. Kept to one manifest column so the tab-separated layout stays
/// backward-readable (old readers key on the first field and ignore columns
/// they don't know).
std::string OriginString(const std::string& worker,
                         const fuzz::BackendOptions& backend);

/// Name of the manifest written alongside reproducers in repro_dir. One
/// tab-separated line per triaged bug: replay key (crash identity /
/// oracle fingerprint, known *before* reduction), signature, trigger
/// sequence, artifact file, campaign seed, state-format version. Captures
/// whose replay key is already listed are skipped without re-reducing —
/// resumed campaigns re-capture every historical bug, and ddmin is the
/// expensive half of triage.
inline constexpr char kTriageManifestFile[] = "manifest.tsv";

/// One unique bug after triage.
struct TriagedBug {
  BugSignature signature;
  bool is_logic = false;        // logic-oracle finding (no crash)
  minidb::CrashInfo crash;      // valid iff !is_logic
  fuzz::LogicBugInfo logic;     // valid iff is_logic
  fuzz::TestCase repro;         // minimized (or original when !reduce)
  int original_statements = 0;
  int reduced_statements = 0;
  std::string artifact_path;    // written file, "" when repro_dir unset
};

struct TriageReport {
  /// Unique bugs, ordered by signature key (deterministic across worker
  /// counts: campaign capture order differs, the triaged set does not).
  std::vector<TriagedBug> bugs;
  int crash_captures = 0;   // captured crash cases fed in
  int logic_captures = 0;   // captured logic cases fed in
  int duplicates = 0;       // captures collapsed into an earlier signature
  int not_reproduced = 0;   // captures that no longer triggered on replay
  int replays = 0;          // total reduction/replay executions spent
  /// Captures skipped because the repro-dir manifest already lists their
  /// replay key (bugs triaged by the campaign this one resumed).
  int skipped_known = 0;
};

/// Deterministic post-pass over a finished campaign: replays every captured
/// crash/logic case through a private harness (same profile + setup script
/// the campaign ran), minimizes it, recomputes its signature from the
/// minimized repro, and dedups. Pure function of the campaign's captures —
/// parallel workers never triage concurrently, so there are no races to
/// order around.
TriageReport TriageCampaign(const fuzz::CampaignResult& result,
                            const minidb::DialectProfile& profile,
                            const std::string& setup_script,
                            const TriageOptions& options);

/// Renders a reproducer artifact (header comments + SQL). Exposed for
/// tests asserting byte-identical artifacts across reruns.
std::string RenderArtifact(const TriagedBug& bug,
                           const minidb::DialectProfile& profile,
                           const faults::BugEngine& engine);

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_TRIAGE_H_
