#include "triage/tlp_oracle.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/backend.h"
#include "triage/oracle_common.h"
#include "util/hash.h"

namespace lego::triage {

using oracle::SyntheticPredicate;
using sql::SelectStmt;

bool TlpOracle::Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
                      fuzz::LogicBugInfo* out) {
  if (stmt.type() != sql::StatementType::kSelect) return false;
  const auto& q = static_cast<const SelectStmt&>(stmt);
  if (!oracle::IsRowPartitionEligible(q)) return false;

  // Nested no-op under the harness's bracket; does the pause/disarm work
  // when the oracle is driven directly (triage replay, tests).
  fuzz::OracleSession session(backend);

  std::string query_sql;
  q.PrintTo(&query_sql);

  // phi depends only on the query text, so every worker / rerun / triage
  // replay partitions the same query the same way.
  std::optional<SyntheticPredicate> phi =
      oracle::ChoosePredicate(q, backend, Fnv1a64(query_sql));
  if (!phi.has_value()) return false;

  std::unique_ptr<SelectStmt> part_true = oracle::WithConjunct(q, phi->MakeExpr());
  std::unique_ptr<SelectStmt> part_false =
      oracle::WithConjunct(q, oracle::Negate(phi->MakeExpr()));
  std::unique_ptr<SelectStmt> part_null =
      oracle::WithConjunct(q, oracle::IsNull(phi->MakeExpr()));

  std::vector<std::string> original;
  std::vector<std::string> partitioned;
  // Any partition erroring (e.g. the synthesized predicate hits a dialect
  // restriction) means no verdict, not a bug.
  if (!oracle::RunRows(backend, q, &original) ||
      !oracle::RunRows(backend, *part_true, &partitioned) ||
      !oracle::RunRows(backend, *part_false, &partitioned) ||
      !oracle::RunRows(backend, *part_null, &partitioned)) {
    return false;
  }

  std::sort(original.begin(), original.end());
  std::sort(partitioned.begin(), partitioned.end());
  if (original == partitioned) return false;

  out->check = "tlp";
  out->query = query_sql;
  out->detail = "TLP partition mismatch: original " +
                std::to_string(original.size()) + " row(s), partitions sum " +
                std::to_string(partitioned.size()) + " row(s); phi = " +
                phi->ToSql();
  out->fingerprint = Fnv1a64(query_sql, Fnv1a64("tlp"));
  return true;
}

}  // namespace lego::triage
