#include "triage/tlp_oracle.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/backend.h"
#include "minidb/eval.h"
#include "sql/ast_walk.h"
#include "util/hash.h"
#include "util/random.h"

namespace lego::triage {
namespace {

using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStmt;

/// A (qualifier, column) pair usable as the partition predicate's subject.
struct ColumnCandidate {
  std::string table;
  std::string column;
};

bool IsEligible(const SelectStmt& q) {
  const sql::SelectCore& core = q.core;
  if (core.from == nullptr) return false;
  if (core.distinct || !core.group_by.empty() || core.having != nullptr) {
    return false;
  }
  if (!q.compounds.empty() || q.limit != nullptr || q.offset != nullptr) {
    return false;
  }
  // Aggregates / window functions change row multiplicity or depend on the
  // whole input; subquery scopes don't (WalkExprs stays out of them).
  bool blocked = false;
  auto scan = [&](const sql::Expr& e) {
    if (e.kind() != ExprKind::kFunctionCall) return;
    const auto& call = static_cast<const sql::FunctionCall&>(e);
    if (minidb::Evaluator::IsAggregateFunction(call.name()) ||
        call.window() != nullptr) {
      blocked = true;
    }
  };
  for (const sql::SelectItem& item : core.items) {
    sql::WalkExprs(*item.expr, scan, /*into_subqueries=*/false);
  }
  if (core.where != nullptr) {
    sql::WalkExprs(*core.where, scan, /*into_subqueries=*/false);
  }
  return !blocked;
}

/// Column refs mentioned by the query itself, in first-mention order; falls
/// back to the base table's schema for column-free queries (SELECT *),
/// resolved through the backend so the lookup works against forked servers.
std::vector<ColumnCandidate> CollectColumns(const SelectStmt& q,
                                            fuzz::DbBackend* backend) {
  std::vector<ColumnCandidate> out;
  auto add = [&](const std::string& table, const std::string& column) {
    for (const ColumnCandidate& c : out) {
      if (c.table == table && c.column == column) return;
    }
    out.push_back({table, column});
  };
  auto scan = [&](const sql::Expr& e) {
    if (e.kind() != ExprKind::kColumnRef) return;
    const auto& ref = static_cast<const sql::ColumnRef&>(e);
    add(ref.table(), ref.column());
  };
  for (const sql::SelectItem& item : q.core.items) {
    sql::WalkExprs(*item.expr, scan, /*into_subqueries=*/false);
  }
  if (q.core.where != nullptr) {
    sql::WalkExprs(*q.core.where, scan, /*into_subqueries=*/false);
  }
  if (out.empty() && q.core.from->kind() == sql::TableRefKind::kBaseTable) {
    const auto& base = static_cast<const sql::BaseTableRef&>(*q.core.from);
    std::optional<std::string> col = backend->FirstColumnOf(base.name());
    if (col.has_value()) add("", *col);
  }
  return out;
}

/// Q with `pred` conjoined onto its WHERE clause.
std::unique_ptr<SelectStmt> WithConjunct(const SelectStmt& q, ExprPtr pred) {
  sql::StmtPtr cloned = q.Clone();
  auto owned = std::unique_ptr<SelectStmt>(
      static_cast<SelectStmt*>(cloned.release()));
  if (owned->core.where == nullptr) {
    owned->core.where = std::move(pred);
  } else {
    owned->core.where = std::make_unique<sql::BinaryExpr>(
        sql::BinaryOp::kAnd, std::move(owned->core.where), std::move(pred));
  }
  return owned;
}

/// Rows rendered to sortable strings (the backend's canonical "v|v|...|"
/// encoding); false on error or server death — no verdict either way.
bool RunRows(fuzz::DbBackend* backend, const SelectStmt& q,
             std::vector<std::string>* out) {
  fuzz::StmtOutcome r = backend->Execute(q, /*want_rows=*/true);
  if (r.status != fuzz::StmtOutcome::Status::kOk) return false;
  for (std::string& line : r.rows) out->push_back(std::move(line));
  return true;
}

}  // namespace

bool TlpOracle::Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
                      fuzz::LogicBugInfo* out) {
  if (stmt.type() != sql::StatementType::kSelect) return false;
  const auto& q = static_cast<const SelectStmt&>(stmt);
  if (!IsEligible(q)) return false;

  // Nested no-op under the harness's bracket; does the pause/disarm work
  // when the oracle is driven directly (triage replay, tests).
  fuzz::OracleSession session(backend);

  std::vector<ColumnCandidate> columns = CollectColumns(q, backend);
  if (columns.empty()) return false;

  std::string query_sql;
  q.PrintTo(&query_sql);

  // phi depends only on the query text, so every worker / rerun / triage
  // replay partitions the same query the same way.
  Rng rng(Fnv1a64(query_sql));
  const ColumnCandidate& col = columns[rng.NextBelow(columns.size())];
  static const sql::BinaryOp kOps[] = {sql::BinaryOp::kLt, sql::BinaryOp::kEq,
                                       sql::BinaryOp::kGt};
  const sql::BinaryOp op = kOps[rng.NextBelow(3)];
  const int64_t k = rng.NextInRange(-8, 8);

  auto phi = [&]() -> ExprPtr {
    return std::make_unique<sql::BinaryExpr>(
        op, std::make_unique<sql::ColumnRef>(col.table, col.column),
        sql::Literal::Int(k));
  };

  std::unique_ptr<SelectStmt> part_true = WithConjunct(q, phi());
  std::unique_ptr<SelectStmt> part_false = WithConjunct(
      q, std::make_unique<sql::UnaryExpr>(sql::UnaryOp::kNot, phi()));
  std::unique_ptr<SelectStmt> part_null = WithConjunct(
      q, std::make_unique<sql::IsNullExpr>(phi(), /*negated=*/false));

  std::vector<std::string> original;
  std::vector<std::string> partitioned;
  // Any partition erroring (e.g. the synthesized predicate hits a dialect
  // restriction) means no verdict, not a bug.
  if (!RunRows(backend, q, &original) ||
      !RunRows(backend, *part_true, &partitioned) ||
      !RunRows(backend, *part_false, &partitioned) ||
      !RunRows(backend, *part_null, &partitioned)) {
    return false;
  }

  std::sort(original.begin(), original.end());
  std::sort(partitioned.begin(), partitioned.end());
  if (original == partitioned) return false;

  std::string phi_sql;
  phi()->PrintTo(&phi_sql);
  out->check = "tlp";
  out->query = query_sql;
  out->detail = "TLP partition mismatch: original " +
                std::to_string(original.size()) + " row(s), partitions sum " +
                std::to_string(partitioned.size()) + " row(s); phi = " +
                phi_sql;
  out->fingerprint = Fnv1a64(query_sql, Fnv1a64("tlp"));
  return true;
}

}  // namespace lego::triage
