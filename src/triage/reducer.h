#ifndef LEGO_TRIAGE_REDUCER_H_
#define LEGO_TRIAGE_REDUCER_H_

#include <functional>
#include <optional>
#include <string>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/database.h"
#include "minidb/profile.h"

namespace lego::triage {

struct ReductionOptions {
  /// Replay budget: one replay per candidate tried. When exhausted the
  /// reducer returns the best crash-preserving case found so far (every
  /// intermediate state still triggers the target bug, so a budget cut
  /// never yields an invalid repro).
  int max_replays = 4000;
  /// Run the expression-simplification pass after statement-level ddmin
  /// (replace subtrees with NULL/TRUE literals or hoist a child subtree).
  bool simplify_expressions = true;
};

/// Outcome of one reduction.
struct ReductionResult {
  fuzz::TestCase reduced;
  /// Crash raised by the reduced case (same stack hash as the original's).
  minidb::CrashInfo crash;
  int original_statements = 0;
  int reduced_statements = 0;
  int replays = 0;  // harness executions spent
};

/// Statement-level ddmin plus expression simplification, replaying against a
/// private ExecutionHarness. Fully deterministic: no randomness, candidate
/// order is fixed, and replays are as deterministic as the harness — so
/// reducing the same capture always emits the byte-identical repro, and
/// reducing a reduced case is a no-op (fixed point).
///
/// `backend` selects the replay engine; pass the campaign's backend options
/// so real crashes and hangs (which only reproduce under a forked child
/// with the same watchdog) replay the way they were found.
class Reducer {
 public:
  Reducer(const minidb::DialectProfile& profile, std::string setup_script,
          ReductionOptions options = {},
          const fuzz::BackendOptions& backend = {});

  /// Shrinks `tc` to a minimal subsequence (then simplified expressions)
  /// raising the same synthetic stack hash. Returns nullopt when `tc` does
  /// not crash on replay (stale capture / nondeterministic trigger).
  std::optional<ReductionResult> ReduceCrash(const fuzz::TestCase& tc);

  /// Generic form: shrinks `tc` while `keep(candidate)` holds. `keep` must
  /// be deterministic and must hold for `tc` itself (checked; returns
  /// nullopt otherwise). Used for logic-bug repros, where the invariant is
  /// "the oracle still flags this case" rather than a stack hash.
  std::optional<fuzz::TestCase> ReduceWhile(
      const fuzz::TestCase& tc,
      const std::function<bool(const fuzz::TestCase&)>& keep);

  /// Harness used for replays (exposed so callers can attach the same logic
  /// oracle the campaign ran with before calling ReduceWhile).
  fuzz::ExecutionHarness& harness() { return harness_; }

  /// Replays spent across all reductions so far.
  int replays() const { return replays_; }

 private:
  bool Budget() const { return replays_ < options_.max_replays; }

  /// One statement-level ddmin round over `*tc`; true if it shrank.
  bool DdminPass(fuzz::TestCase* tc,
                 const std::function<bool(const fuzz::TestCase&)>& keep);
  /// One expression-simplification sweep over `*tc`; true if it shrank.
  bool ExprPass(fuzz::TestCase* tc,
                const std::function<bool(const fuzz::TestCase&)>& keep);

  ReductionOptions options_;
  fuzz::ExecutionHarness harness_;
  int replays_ = 0;
};

}  // namespace lego::triage

#endif  // LEGO_TRIAGE_REDUCER_H_
