#include "triage/clause_oracle.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/backend.h"
#include "triage/oracle_common.h"
#include "util/hash.h"

namespace lego::triage {
namespace {

using sql::ExprPtr;
using sql::SelectStmt;

bool RowsMatch(std::vector<std::string> a, std::vector<std::string> b,
               size_t* a_count, size_t* b_count) {
  *a_count = a.size();
  *b_count = b.size();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool Report(const std::string& query_sql, const std::string& slot,
            size_t expect, size_t got, fuzz::LogicBugInfo* out) {
  out->check = "clause";
  out->query = query_sql;
  out->detail = "clause partition mismatch in " + slot + " slot: reference " +
                std::to_string(expect) + " row(s), rewritten " +
                std::to_string(got) + " row(s)";
  out->fingerprint = Fnv1a64(query_sql, Fnv1a64("clause:" + slot));
  return true;
}

/// WHERE slot: drop WHERE p from Q, then re-partition the unfiltered rows
/// by p / NOT p / p IS NULL.
bool CheckWhereSlot(fuzz::DbBackend* backend, const SelectStmt& q,
                    const std::string& query_sql, fuzz::LogicBugInfo* out) {
  if (!oracle::IsRowPartitionEligible(q)) return false;
  if (q.core.where == nullptr) return false;

  std::unique_ptr<SelectStmt> base = q.CloneSelect();
  ExprPtr p = std::move(base->core.where);
  base->core.where = nullptr;

  std::unique_ptr<SelectStmt> part_true =
      oracle::WithConjunct(*base, p->Clone());
  std::unique_ptr<SelectStmt> part_false =
      oracle::WithConjunct(*base, oracle::Negate(p->Clone()));
  std::unique_ptr<SelectStmt> part_null =
      oracle::WithConjunct(*base, oracle::IsNull(p->Clone()));

  std::vector<std::string> reference;
  std::vector<std::string> partitioned;
  if (!oracle::RunRows(backend, *base, &reference) ||
      !oracle::RunRows(backend, *part_true, &partitioned) ||
      !oracle::RunRows(backend, *part_false, &partitioned) ||
      !oracle::RunRows(backend, *part_null, &partitioned)) {
    return false;
  }
  size_t expect = 0;
  size_t got = 0;
  if (RowsMatch(std::move(reference), std::move(partitioned), &expect, &got)) {
    return false;
  }
  return Report(query_sql, "where", expect, got, out);
}

/// JOIN slot: hoist the ON clause of a top-level INNER JOIN into WHERE
/// (ON becomes TRUE). Row-for-row equivalent for inner joins.
bool CheckJoinSlot(fuzz::DbBackend* backend, const SelectStmt& q,
                   const std::string& query_sql, fuzz::LogicBugInfo* out) {
  if (!oracle::IsRowPartitionEligible(q)) return false;
  if (q.core.from->kind() != sql::TableRefKind::kJoin) return false;
  {
    const auto& join = static_cast<const sql::JoinRef&>(*q.core.from);
    if (join.join_type() != sql::JoinType::kInner || join.on() == nullptr) {
      return false;
    }
  }

  std::unique_ptr<SelectStmt> hoisted = q.CloneSelect();
  auto* join = static_cast<sql::JoinRef*>(hoisted->core.from.get());
  ExprPtr on = std::move(*join->mutable_on_slot());
  *join->mutable_on_slot() = sql::Literal::Bool(true);
  if (hoisted->core.where == nullptr) {
    hoisted->core.where = std::move(on);
  } else {
    hoisted->core.where = std::make_unique<sql::BinaryExpr>(
        sql::BinaryOp::kAnd, std::move(on), std::move(hoisted->core.where));
  }

  std::vector<std::string> reference;
  std::vector<std::string> rewritten;
  if (!oracle::RunRows(backend, q, &reference) ||
      !oracle::RunRows(backend, *hoisted, &rewritten)) {
    return false;
  }
  size_t expect = 0;
  size_t got = 0;
  if (RowsMatch(std::move(reference), std::move(rewritten), &expect, &got)) {
    return false;
  }
  return Report(query_sql, "join", expect, got, out);
}

/// HAVING slot: partition the grouped rows by h / NOT h / h IS NULL against
/// the HAVING-less grouping. Aggregates are fine here — the partition
/// argument runs over post-grouping rows, not base rows.
bool CheckHavingSlot(fuzz::DbBackend* backend, const SelectStmt& q,
                     const std::string& query_sql, fuzz::LogicBugInfo* out) {
  if (q.core.from == nullptr || q.core.having == nullptr) return false;
  if (q.core.group_by.empty() || q.core.distinct) return false;
  if (!q.compounds.empty() || q.limit != nullptr || q.offset != nullptr) {
    return false;
  }

  std::unique_ptr<SelectStmt> base = q.CloneSelect();
  ExprPtr h = std::move(base->core.having);
  base->core.having = nullptr;

  auto with_having = [&](ExprPtr pred) {
    std::unique_ptr<SelectStmt> part = base->CloneSelect();
    part->core.having = std::move(pred);
    return part;
  };
  std::unique_ptr<SelectStmt> part_true = with_having(h->Clone());
  std::unique_ptr<SelectStmt> part_false =
      with_having(oracle::Negate(h->Clone()));
  std::unique_ptr<SelectStmt> part_null =
      with_having(oracle::IsNull(h->Clone()));

  std::vector<std::string> reference;
  std::vector<std::string> partitioned;
  if (!oracle::RunRows(backend, *base, &reference) ||
      !oracle::RunRows(backend, *part_true, &partitioned) ||
      !oracle::RunRows(backend, *part_false, &partitioned) ||
      !oracle::RunRows(backend, *part_null, &partitioned)) {
    return false;
  }
  size_t expect = 0;
  size_t got = 0;
  if (RowsMatch(std::move(reference), std::move(partitioned), &expect, &got)) {
    return false;
  }
  return Report(query_sql, "having", expect, got, out);
}

}  // namespace

bool ClauseOracle::Check(fuzz::DbBackend* backend, const sql::Statement& stmt,
                         fuzz::LogicBugInfo* out) {
  if (stmt.type() != sql::StatementType::kSelect) return false;
  const auto& q = static_cast<const SelectStmt&>(stmt);

  fuzz::OracleSession session(backend);

  std::string query_sql;
  q.PrintTo(&query_sql);

  if (CheckWhereSlot(backend, q, query_sql, out)) return true;
  if (CheckJoinSlot(backend, q, query_sql, out)) return true;
  return CheckHavingSlot(backend, q, query_sql, out);
}

}  // namespace lego::triage
