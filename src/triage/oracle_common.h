#ifndef LEGO_TRIAGE_ORACLE_COMMON_H_
#define LEGO_TRIAGE_ORACLE_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/backend.h"
#include "sql/ast.h"

namespace lego::triage::oracle {

/// A (qualifier, column) pair usable as a synthesized predicate's subject.
struct ColumnCandidate {
  std::string table;
  std::string column;
};

/// A synthesized partition predicate `col <op> k`, chosen deterministically
/// from a seed (each oracle salts the seed with its own name, so different
/// oracles probe the same query with different predicates while staying
/// identical across workers/reruns). MakeExpr() builds a fresh AST each call.
struct SyntheticPredicate {
  ColumnCandidate column;
  sql::BinaryOp op;
  int64_t k;

  sql::ExprPtr MakeExpr() const;
  std::string ToSql() const;
};

/// Row-level eligibility shared by the partition-style oracles: plain
/// single-core SELECT with a FROM clause; no DISTINCT, GROUP BY, HAVING,
/// LIMIT/OFFSET, compounds, aggregates, or window functions (each would
/// break the row-level partition argument).
bool IsRowPartitionEligible(const sql::SelectStmt& q);

/// Column refs mentioned by the query itself, in first-mention order; falls
/// back to the base table's schema for column-free queries (SELECT *),
/// resolved through the backend so the lookup works against forked servers.
std::vector<ColumnCandidate> CollectColumns(const sql::SelectStmt& q,
                                            fuzz::DbBackend* backend);

/// Deterministically picks a synthesized predicate over the query's columns;
/// nullopt when the query mentions no usable column.
std::optional<SyntheticPredicate> ChoosePredicate(const sql::SelectStmt& q,
                                                  fuzz::DbBackend* backend,
                                                  uint64_t seed);

/// Q with `pred` conjoined onto its WHERE clause.
std::unique_ptr<sql::SelectStmt> WithConjunct(const sql::SelectStmt& q,
                                              sql::ExprPtr pred);

/// Rows rendered to sortable strings (the backend's canonical "v|v|...|"
/// encoding); false on error or server death — no verdict either way.
bool RunRows(fuzz::DbBackend* backend, const sql::SelectStmt& q,
             std::vector<std::string>* out);

/// NOT `e`.
sql::ExprPtr Negate(sql::ExprPtr e);

/// `e` IS NULL.
sql::ExprPtr IsNull(sql::ExprPtr e);

}  // namespace lego::triage::oracle

#endif  // LEGO_TRIAGE_ORACLE_COMMON_H_
