#include "triage/signature.h"

#include "sql/statement_type.h"

namespace lego::triage {

std::string TypeFingerprint(const fuzz::TestCase& tc) {
  std::string out;
  for (sql::StatementType t : tc.TypeSequence()) {
    if (!out.empty()) out += '>';
    out += sql::StatementTypeName(t);
  }
  return out;
}

BugSignature SignatureOf(const minidb::CrashInfo& crash,
                         const fuzz::TestCase& repro) {
  return BugSignature{crash.bug_id, TypeFingerprint(repro)};
}

}  // namespace lego::triage
