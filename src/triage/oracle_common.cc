#include "triage/oracle_common.h"

#include <utility>

#include "minidb/eval.h"
#include "sql/ast_walk.h"
#include "util/hash.h"
#include "util/random.h"

namespace lego::triage::oracle {

using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStmt;

sql::ExprPtr SyntheticPredicate::MakeExpr() const {
  return std::make_unique<sql::BinaryExpr>(
      op, std::make_unique<sql::ColumnRef>(column.table, column.column),
      sql::Literal::Int(k));
}

std::string SyntheticPredicate::ToSql() const {
  std::string out;
  MakeExpr()->PrintTo(&out);
  return out;
}

bool IsRowPartitionEligible(const SelectStmt& q) {
  const sql::SelectCore& core = q.core;
  if (core.from == nullptr) return false;
  if (core.distinct || !core.group_by.empty() || core.having != nullptr) {
    return false;
  }
  if (!q.compounds.empty() || q.limit != nullptr || q.offset != nullptr) {
    return false;
  }
  // Aggregates / window functions change row multiplicity or depend on the
  // whole input; subquery scopes don't (WalkExprs stays out of them).
  bool blocked = false;
  auto scan = [&](const sql::Expr& e) {
    if (e.kind() != ExprKind::kFunctionCall) return;
    const auto& call = static_cast<const sql::FunctionCall&>(e);
    if (minidb::Evaluator::IsAggregateFunction(call.name()) ||
        call.window() != nullptr) {
      blocked = true;
    }
  };
  for (const sql::SelectItem& item : core.items) {
    sql::WalkExprs(*item.expr, scan, /*into_subqueries=*/false);
  }
  if (core.where != nullptr) {
    sql::WalkExprs(*core.where, scan, /*into_subqueries=*/false);
  }
  return !blocked;
}

std::vector<ColumnCandidate> CollectColumns(const SelectStmt& q,
                                            fuzz::DbBackend* backend) {
  std::vector<ColumnCandidate> out;
  auto add = [&](const std::string& table, const std::string& column) {
    for (const ColumnCandidate& c : out) {
      if (c.table == table && c.column == column) return;
    }
    out.push_back({table, column});
  };
  auto scan = [&](const sql::Expr& e) {
    if (e.kind() != ExprKind::kColumnRef) return;
    const auto& ref = static_cast<const sql::ColumnRef&>(e);
    add(ref.table(), ref.column());
  };
  for (const sql::SelectItem& item : q.core.items) {
    sql::WalkExprs(*item.expr, scan, /*into_subqueries=*/false);
  }
  if (q.core.where != nullptr) {
    sql::WalkExprs(*q.core.where, scan, /*into_subqueries=*/false);
  }
  if (out.empty() && q.core.from->kind() == sql::TableRefKind::kBaseTable) {
    const auto& base = static_cast<const sql::BaseTableRef&>(*q.core.from);
    std::optional<std::string> col = backend->FirstColumnOf(base.name());
    if (col.has_value()) add("", *col);
  }
  return out;
}

std::optional<SyntheticPredicate> ChoosePredicate(const SelectStmt& q,
                                                  fuzz::DbBackend* backend,
                                                  uint64_t seed) {
  std::vector<ColumnCandidate> columns = CollectColumns(q, backend);
  if (columns.empty()) return std::nullopt;
  Rng rng(seed);
  SyntheticPredicate pred;
  pred.column = columns[rng.NextBelow(columns.size())];
  static const sql::BinaryOp kOps[] = {sql::BinaryOp::kLt, sql::BinaryOp::kEq,
                                       sql::BinaryOp::kGt};
  pred.op = kOps[rng.NextBelow(3)];
  pred.k = rng.NextInRange(-8, 8);
  return pred;
}

std::unique_ptr<SelectStmt> WithConjunct(const SelectStmt& q, ExprPtr pred) {
  std::unique_ptr<SelectStmt> owned = q.CloneSelect();
  if (owned->core.where == nullptr) {
    owned->core.where = std::move(pred);
  } else {
    owned->core.where = std::make_unique<sql::BinaryExpr>(
        sql::BinaryOp::kAnd, std::move(owned->core.where), std::move(pred));
  }
  return owned;
}

bool RunRows(fuzz::DbBackend* backend, const SelectStmt& q,
             std::vector<std::string>* out) {
  fuzz::StmtOutcome r = backend->Execute(q, /*want_rows=*/true);
  if (r.status != fuzz::StmtOutcome::Status::kOk) return false;
  for (std::string& line : r.rows) out->push_back(std::move(line));
  return true;
}

sql::ExprPtr Negate(sql::ExprPtr e) {
  return std::make_unique<sql::UnaryExpr>(sql::UnaryOp::kNot, std::move(e));
}

sql::ExprPtr IsNull(sql::ExprPtr e) {
  return std::make_unique<sql::IsNullExpr>(std::move(e), /*negated=*/false);
}

}  // namespace lego::triage::oracle
