#include "persist/io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "chaos/failpoint.h"
#include "util/hash.h"

namespace lego::persist {

namespace {

constexpr char kMagic[4] = {'L', 'G', 'S', 'T'};
// Envelope: magic(4) version(4) payload_size(8) payload checksum(8).
constexpr size_t kHeaderSize = 4 + 4 + 8;
constexpr size_t kTrailerSize = 8;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Shared temp-then-rename protocol for state files and text artifacts.
/// The persist.* failpoints model each stage an OS-level write can fail at
/// (short-circuited after the real error check, so they only fire on
/// writes that would otherwise have succeeded).
Status WriteBytesAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f || LEGO_FAILPOINT("persist.open")) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f || LEGO_FAILPOINT("persist.write")) {
      return Status::Internal("short write to " + tmp);
    }
  }
  if (LEGO_FAILPOINT("persist.rename")) {
    return Status::Internal("rename " + tmp + " -> " + path +
                            ": injected fault");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("rename " + tmp + " -> " + path + ": " +
                            ec.message());
  }
  return Status::OK();
}

}  // namespace

std::string TagName(uint32_t tag) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    out.push_back(c >= 0x20 && c < 0x7f ? c : '?');
  }
  return out;
}

void StateWriter::WriteU32(uint32_t v) { AppendU32(&buf_, v); }

void StateWriter::WriteU64(uint64_t v) { AppendU64(&buf_, v); }

void StateWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void StateWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buf_.append(s.data(), s.size());
}

void StateWriter::BeginChunk(uint32_t tag) {
  WriteU32(tag);
  open_chunks_.push_back(buf_.size());
  WriteU64(0);  // placeholder, patched by EndChunk
}

void StateWriter::EndChunk() {
  size_t at = open_chunks_.back();
  open_chunks_.pop_back();
  uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

std::string StateWriter::EnvelopedBytes() const {
  std::string out;
  out.reserve(kHeaderSize + buf_.size() + kTrailerSize);
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kFormatVersion);
  AppendU64(&out, buf_.size());
  out.append(buf_);
  AppendU64(&out, Fnv1a64(buf_));
  return out;
}

Status StateWriter::WriteFileAtomic(const std::string& path) const {
  return WriteBytesAtomic(path, EnvelopedBytes());
}

Status WriteTextFileAtomic(const std::string& path, std::string_view content) {
  return WriteBytesAtomic(path, content);
}

StatusOr<StateReader> StateReader::FromFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status::NotFound("state file not found: " + path);
  }
  if (LEGO_FAILPOINT("persist.read")) {
    return Status::Internal("read " + path + ": injected fault");
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return FromEnvelope(std::move(bytes));
}

StatusOr<StateReader> StateReader::FromFileLenient(const std::string& path,
                                                   bool* degraded) {
  if (degraded != nullptr) *degraded = false;
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return Status::NotFound("state file not found: " + path);
  }
  if (LEGO_FAILPOINT("persist.read")) {
    return Status::Internal("read " + path + ": injected fault");
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("state file truncated before header: " +
                                   std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a lego state file (bad magic)");
  }
  uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kFormatVersion) {
    return Status::Unsupported("state format version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kFormatVersion) + ")");
  }
  const uint64_t declared = LoadU64(bytes.data() + 8);
  const size_t body = bytes.size() - kHeaderSize;  // payload (+trailer if any)
  if (body >= declared && body - declared == kTrailerSize) {
    // Structurally complete — accept only if the checksum also holds.
    std::string payload = bytes.substr(kHeaderSize, declared);
    uint64_t checksum = LoadU64(bytes.data() + kHeaderSize + declared);
    if (checksum == Fnv1a64(payload)) {
      return StateReader(std::move(payload));
    }
  }
  // Damaged envelope: hand back the payload prefix actually present (a
  // truncated file may end inside the payload or inside the trailer; the
  // clamp below never exposes more than the declared payload length).
  if (degraded != nullptr) *degraded = true;
  const size_t take = static_cast<size_t>(
      declared < body ? declared : static_cast<uint64_t>(body));
  return StateReader(bytes.substr(kHeaderSize, take));
}

Status ProbeEnvelope(std::string_view bytes, uint32_t* version) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return Status::InvalidArgument("envelope truncated: " +
                                   std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a lego state envelope (bad magic)");
  }
  const uint32_t v = LoadU32(bytes.data() + 4);
  if (version != nullptr) *version = v;
  if (v != kFormatVersion) {
    return Status::Unsupported("state format version " + std::to_string(v) +
                               " (expected " +
                               std::to_string(kFormatVersion) + ")");
  }
  const uint64_t payload_size = LoadU64(bytes.data() + 8);
  if (payload_size != bytes.size() - kHeaderSize - kTrailerSize) {
    return Status::InvalidArgument(
        "envelope truncated: payload declares " +
        std::to_string(payload_size) + " bytes, frame holds " +
        std::to_string(bytes.size() - kHeaderSize - kTrailerSize));
  }
  const std::string_view payload = bytes.substr(kHeaderSize, payload_size);
  if (LoadU64(bytes.data() + kHeaderSize + payload_size) !=
      Fnv1a64(payload)) {
    return Status::InvalidArgument("envelope corrupt (checksum mismatch)");
  }
  return Status::OK();
}

StatusOr<StateReader> StateReader::FromEnvelope(std::string bytes) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return Status::InvalidArgument("state file truncated: " +
                                   std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a lego state file (bad magic)");
  }
  uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kFormatVersion) {
    return Status::Unsupported("state format version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kFormatVersion) + ")");
  }
  uint64_t payload_size = LoadU64(bytes.data() + 8);
  if (payload_size != bytes.size() - kHeaderSize - kTrailerSize) {
    return Status::InvalidArgument(
        "state file truncated: payload declares " +
        std::to_string(payload_size) + " bytes, file holds " +
        std::to_string(bytes.size() - kHeaderSize - kTrailerSize));
  }
  std::string payload = bytes.substr(kHeaderSize, payload_size);
  uint64_t checksum = LoadU64(bytes.data() + kHeaderSize + payload_size);
  if (checksum != Fnv1a64(payload)) {
    return Status::InvalidArgument("state file corrupt (checksum mismatch)");
  }
  return StateReader(std::move(payload));
}

StateReader StateReader::FromPayload(std::string payload) {
  return StateReader(std::move(payload));
}

bool StateReader::Require(size_t n) {
  if (!status_.ok()) return false;
  if (pos_ + n > Limit()) {
    Fail("state chunk overrun: need " + std::to_string(n) + " bytes, " +
         std::to_string(Limit() - pos_) + " left");
    return false;
  }
  return true;
}

void StateReader::Fail(std::string msg) {
  if (status_.ok()) status_ = Status::InvalidArgument(std::move(msg));
}

uint8_t StateReader::ReadU8() {
  if (!Require(1)) return 0;
  return static_cast<uint8_t>(payload_[pos_++]);
}

uint32_t StateReader::ReadU32() {
  if (!Require(4)) return 0;
  uint32_t v = LoadU32(payload_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t StateReader::ReadU64() {
  if (!Require(8)) return 0;
  uint64_t v = LoadU64(payload_.data() + pos_);
  pos_ += 8;
  return v;
}

double StateReader::ReadDouble() {
  uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::ReadString() {
  uint64_t len = ReadU64();
  if (!Require(len)) return {};
  std::string s = payload_.substr(pos_, len);
  pos_ += len;
  return s;
}

Status StateReader::EnterChunk(uint32_t expected_tag) {
  uint32_t tag = ReadU32();
  uint64_t len = ReadU64();
  if (!status_.ok()) return status_;
  if (tag != expected_tag) {
    Fail("expected chunk " + TagName(expected_tag) + ", found " +
         TagName(tag));
    return status_;
  }
  if (pos_ + len > Limit()) {
    Fail("chunk " + TagName(tag) + " overruns its parent");
    return status_;
  }
  limits_.push_back(pos_ + static_cast<size_t>(len));
  return Status::OK();
}

Status StateReader::EnterChunkTruncated(uint32_t expected_tag) {
  uint32_t tag = ReadU32();
  uint64_t len = ReadU64();
  if (!status_.ok()) return status_;
  if (tag != expected_tag) {
    Fail("expected chunk " + TagName(expected_tag) + ", found " +
         TagName(tag));
    return status_;
  }
  const size_t end = pos_ + static_cast<size_t>(len);
  limits_.push_back(end > Limit() ? Limit() : end);
  return Status::OK();
}

Status StateReader::ExitChunk() {
  if (limits_.empty()) {
    Fail("ExitChunk with no open chunk");
    return status_;
  }
  pos_ = limits_.back();  // skip unread remainder (forward compatibility)
  limits_.pop_back();
  return status_;
}

bool StateReader::CheckCount(uint64_t count, uint64_t min_bytes_each) {
  if (!status_.ok()) return false;
  uint64_t left = Limit() - pos_;
  if (min_bytes_each == 0) min_bytes_each = 1;
  if (count > left / min_bytes_each) {
    Fail("implausible element count " + std::to_string(count) + " with " +
         std::to_string(left) + " bytes left");
    return false;
  }
  return true;
}

}  // namespace lego::persist
