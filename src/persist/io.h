#ifndef LEGO_PERSIST_IO_H_
#define LEGO_PERSIST_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lego::persist {

/// On-disk format version. Bumped whenever the envelope or any chunk layout
/// changes incompatibly; readers reject files from other versions with a
/// clean Status instead of misparsing them.
inline constexpr uint32_t kFormatVersion = 2;

/// Four-character chunk tag packed little-endian, e.g. ChunkTag("CORP").
constexpr uint32_t ChunkTag(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<uint8_t>(s[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[3])) << 24;
}

/// Renders a tag back to "ABCD" for error messages.
std::string TagName(uint32_t tag);

/// Serializer for campaign state: an append-only little-endian byte buffer
/// organized into tagged, length-prefixed chunks (nestable). The buffer is
/// deterministic — identical logical state always yields identical bytes,
/// which is what lets tests assert save→load→save byte-identity.
class StateWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  /// Length-prefixed byte string.
  void WriteString(std::string_view s);

  /// Opens a chunk: writes the tag and a length placeholder patched by
  /// EndChunk(). Chunks nest; End matches the innermost Begin.
  void BeginChunk(uint32_t tag);
  void EndChunk();

  /// The raw payload serialized so far (no file envelope).
  const std::string& buffer() const { return buf_; }

  /// Wraps the payload in the file envelope (magic, version, size,
  /// checksum) and writes it to `path` via write-temp-then-rename, so a
  /// crash mid-write can never leave a half-written state file behind.
  Status WriteFileAtomic(const std::string& path) const;

  /// The enveloped bytes WriteFileAtomic would write (tests / in-memory).
  std::string EnvelopedBytes() const;

 private:
  std::string buf_;
  std::vector<size_t> open_chunks_;  // offsets of length placeholders
};

/// Writes plain text (no envelope) with the same write-temp-then-rename
/// protocol as StateWriter::WriteFileAtomic, so human-readable artifacts
/// (triage manifests, .sql reproducers) are also never left half-written
/// by a crash. Shares the persist.* failpoints with state writes.
Status WriteTextFileAtomic(const std::string& path, std::string_view content);

/// Cheap envelope validation without constructing a reader: checks magic,
/// format version, declared payload size (truncation), and checksum over
/// in-memory enveloped bytes. On success *version (if non-null) receives
/// the format version. The fleet coordinator probes worker result frames
/// this way, so a torn or poisoned envelope is rejected — with a precise
/// reason — before any payload byte is parsed.
Status ProbeEnvelope(std::string_view bytes, uint32_t* version = nullptr);

/// Deserializer over a validated payload. All reads are bounds-checked
/// against the innermost open chunk; any overrun, tag mismatch, or envelope
/// corruption surfaces as a non-OK status() rather than UB. After a failed
/// read the reader stays failed — callers may finish a Load routine and
/// check status() once at the end.
class StateReader {
 public:
  /// Opens an enveloped state file: validates magic, version, declared
  /// payload size (truncation), and checksum before any chunk is touched.
  static StatusOr<StateReader> FromFile(const std::string& path);
  /// Same validation over in-memory enveloped bytes.
  static StatusOr<StateReader> FromEnvelope(std::string bytes);
  /// Salvage-mode open: accepts a file whose envelope fails the truncation
  /// or checksum checks and exposes whatever payload prefix is present,
  /// setting *degraded (callers then read entry-by-entry and keep what
  /// decodes — see LoadCorpusFileTolerant). Bad magic and unknown versions
  /// still fail: those are not damage, they are the wrong file.
  static StatusOr<StateReader> FromFileLenient(const std::string& path,
                                               bool* degraded);
  /// Wraps a raw payload with no envelope (round-trip tests).
  static StateReader FromPayload(std::string payload);

  uint8_t ReadU8();
  bool ReadBool() { return ReadU8() != 0; }
  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }
  double ReadDouble();
  std::string ReadString();

  /// Enters the next chunk, which must carry `expected_tag`; subsequent
  /// reads are bounded by the chunk. Returns the tag/bounds error if any.
  Status EnterChunk(uint32_t expected_tag);
  /// Like EnterChunk, but a chunk whose declared length overruns the
  /// available bytes is clamped to what is present instead of failing —
  /// the entry point for salvaging a truncated payload.
  Status EnterChunkTruncated(uint32_t expected_tag);
  /// Leaves the innermost chunk, skipping any unread remainder (so a newer
  /// writer may append fields to a chunk without breaking old readers).
  Status ExitChunk();

  /// Guards container prefaces: fails unless `count` elements of at least
  /// `min_bytes_each` bytes could still fit in the current chunk — a cheap
  /// defense against allocating from a corrupt length field.
  bool CheckCount(uint64_t count, uint64_t min_bytes_each);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// True when the current chunk (or whole payload) is fully consumed.
  bool AtEnd() const { return pos_ >= Limit(); }

 private:
  explicit StateReader(std::string payload) : payload_(std::move(payload)) {}

  size_t Limit() const {
    return limits_.empty() ? payload_.size() : limits_.back();
  }
  bool Require(size_t n);
  void Fail(std::string msg);

  std::string payload_;
  size_t pos_ = 0;
  std::vector<size_t> limits_;
  Status status_;
};

}  // namespace lego::persist

#endif  // LEGO_PERSIST_IO_H_
