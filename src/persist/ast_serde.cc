#include "persist/ast_serde.h"

#include <utility>
#include <vector>

namespace lego::persist {
namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::Statement;
using sql::StatementType;
using sql::StmtPtr;
using sql::TableRef;
using sql::TableRefKind;
using sql::TableRefPtr;

/// Nesting bound for deserialization: generated/mutated SQL never remotely
/// approaches this, so hitting it means a corrupt or adversarial file.
constexpr int kMaxDepth = 200;

Status TooDeep() {
  return Status::InvalidArgument("AST nesting exceeds depth limit");
}

Status BadEnum(const char* what, uint64_t v) {
  return Status::InvalidArgument(std::string("invalid ") + what +
                                 " discriminator " + std::to_string(v));
}

// Forward declarations for the recursive walkers.
void WriteExpr(const Expr& e, StateWriter* w);
void WriteOptExpr(const Expr* e, StateWriter* w);
void WriteSelect(const sql::SelectStmt& s, StateWriter* w);
void WriteTableRef(const TableRef& t, StateWriter* w);
void WriteStmt(const Statement& s, StateWriter* w);
void WriteOptStmt(const Statement* s, StateWriter* w);
StatusOr<ExprPtr> ReadExpr(StateReader* r, int depth);
Status ReadOptExpr(StateReader* r, int depth, ExprPtr* out);
StatusOr<std::unique_ptr<sql::SelectStmt>> ReadSelect(StateReader* r,
                                                      int depth);
StatusOr<TableRefPtr> ReadTableRef(StateReader* r, int depth);
StatusOr<StmtPtr> ReadStmt(StateReader* r, int depth);
Status ReadOptStmt(StateReader* r, int depth, StmtPtr* out);

// ---------------------------------------------------------------------------
// Small shared pieces
// ---------------------------------------------------------------------------

void WriteExprVec(const std::vector<ExprPtr>& v, StateWriter* w) {
  w->WriteU64(v.size());
  for (const ExprPtr& e : v) WriteExpr(*e, w);
}

Status ReadExprVec(StateReader* r, int depth, std::vector<ExprPtr>* out) {
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 1)) return r->status();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LEGO_ASSIGN_OR_RETURN(ExprPtr e, ReadExpr(r, depth));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

void WriteStringVec(const std::vector<std::string>& v, StateWriter* w) {
  w->WriteU64(v.size());
  for (const std::string& s : v) w->WriteString(s);
}

Status ReadStringVec(StateReader* r, std::vector<std::string>* out) {
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) out->push_back(r->ReadString());
  return r->status();
}

void WriteColumnDef(const sql::ColumnDef& c, StateWriter* w) {
  w->WriteString(c.name);
  w->WriteU8(static_cast<uint8_t>(c.type));
  w->WriteBool(c.primary_key);
  w->WriteBool(c.unique);
  w->WriteBool(c.not_null);
  WriteOptExpr(c.default_value.get(), w);
}

Status ReadColumnDef(StateReader* r, int depth, sql::ColumnDef* out) {
  out->name = r->ReadString();
  uint8_t type = r->ReadU8();
  if (type > static_cast<uint8_t>(sql::SqlType::kBool)) {
    return BadEnum("SqlType", type);
  }
  out->type = static_cast<sql::SqlType>(type);
  out->primary_key = r->ReadBool();
  out->unique = r->ReadBool();
  out->not_null = r->ReadBool();
  return ReadOptExpr(r, depth, &out->default_value);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

void WriteExpr(const Expr& e, StateWriter* w) {
  w->WriteU8(static_cast<uint8_t>(e.kind()));
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const sql::Literal&>(e);
      w->WriteU8(static_cast<uint8_t>(lit.tag()));
      switch (lit.tag()) {
        case sql::Literal::Tag::kNull:
          break;
        case sql::Literal::Tag::kInt:
          w->WriteI64(lit.int_value());
          break;
        case sql::Literal::Tag::kReal:
          w->WriteDouble(lit.real_value());
          break;
        case sql::Literal::Tag::kText:
          w->WriteString(lit.text_value());
          break;
        case sql::Literal::Tag::kBool:
          w->WriteBool(lit.bool_value());
          break;
      }
      break;
    }
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const sql::ColumnRef&>(e);
      w->WriteString(c.table());
      w->WriteString(c.column());
      break;
    }
    case ExprKind::kStar: {
      const auto& s = static_cast<const sql::Star&>(e);
      w->WriteString(s.table());
      break;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(e);
      w->WriteU8(static_cast<uint8_t>(u.op()));
      WriteExpr(u.operand(), w);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(e);
      w->WriteU8(static_cast<uint8_t>(b.op()));
      WriteExpr(b.lhs(), w);
      WriteExpr(b.rhs(), w);
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const sql::FunctionCall&>(e);
      w->WriteString(f.name());
      WriteExprVec(f.args(), w);
      w->WriteBool(f.distinct());
      w->WriteBool(f.star_arg());
      const sql::WindowSpec* win = f.window();
      w->WriteBool(win != nullptr);
      if (win != nullptr) {
        WriteExprVec(win->partition_by, w);
        w->WriteU64(win->order_by.size());
        for (const auto& [expr, desc] : win->order_by) {
          WriteExpr(*expr, w);
          w->WriteBool(desc);
        }
      }
      break;
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(e);
      WriteOptExpr(c.operand(), w);
      w->WriteU64(c.whens().size());
      for (const auto& [when, then] : c.whens()) {
        WriteExpr(*when, w);
        WriteExpr(*then, w);
      }
      WriteOptExpr(c.else_expr(), w);
      break;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(e);
      WriteExpr(in.needle(), w);
      WriteExprVec(in.list(), w);
      w->WriteBool(in.negated());
      break;
    }
    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(e);
      WriteExpr(in.needle(), w);
      WriteSelect(in.subquery(), w);
      w->WriteBool(in.negated());
      break;
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(e);
      WriteExpr(b.operand(), w);
      WriteExpr(b.lo(), w);
      WriteExpr(b.hi(), w);
      w->WriteBool(b.negated());
      break;
    }
    case ExprKind::kLike: {
      const auto& l = static_cast<const sql::LikeExpr&>(e);
      WriteExpr(l.operand(), w);
      WriteExpr(l.pattern(), w);
      w->WriteBool(l.negated());
      break;
    }
    case ExprKind::kIsNull: {
      const auto& i = static_cast<const sql::IsNullExpr&>(e);
      WriteExpr(i.operand(), w);
      w->WriteBool(i.negated());
      break;
    }
    case ExprKind::kExists: {
      const auto& x = static_cast<const sql::ExistsExpr&>(e);
      WriteSelect(x.subquery(), w);
      w->WriteBool(x.negated());
      break;
    }
    case ExprKind::kCast: {
      const auto& c = static_cast<const sql::CastExpr&>(e);
      WriteExpr(c.operand(), w);
      w->WriteU8(static_cast<uint8_t>(c.target()));
      break;
    }
    case ExprKind::kScalarSubquery: {
      const auto& s = static_cast<const sql::ScalarSubquery&>(e);
      WriteSelect(s.subquery(), w);
      break;
    }
    case ExprKind::kSessionVar: {
      const auto& s = static_cast<const sql::SessionVar&>(e);
      w->WriteString(s.name());
      break;
    }
  }
}

void WriteOptExpr(const Expr* e, StateWriter* w) {
  w->WriteBool(e != nullptr);
  if (e != nullptr) WriteExpr(*e, w);
}

StatusOr<ExprPtr> ReadExpr(StateReader* r, int depth) {
  if (depth > kMaxDepth) return TooDeep();
  uint8_t kind_raw = r->ReadU8();
  if (!r->ok()) return r->status();
  if (kind_raw > static_cast<uint8_t>(ExprKind::kSessionVar)) {
    return BadEnum("ExprKind", kind_raw);
  }
  switch (static_cast<ExprKind>(kind_raw)) {
    case ExprKind::kLiteral: {
      uint8_t tag = r->ReadU8();
      if (tag > static_cast<uint8_t>(sql::Literal::Tag::kBool)) {
        return BadEnum("Literal::Tag", tag);
      }
      switch (static_cast<sql::Literal::Tag>(tag)) {
        case sql::Literal::Tag::kNull:
          return sql::Literal::Null();
        case sql::Literal::Tag::kInt:
          return sql::Literal::Int(r->ReadI64());
        case sql::Literal::Tag::kReal:
          return sql::Literal::Real(r->ReadDouble());
        case sql::Literal::Tag::kText:
          return sql::Literal::Text(r->ReadString());
        case sql::Literal::Tag::kBool:
          return sql::Literal::Bool(r->ReadBool());
      }
      return BadEnum("Literal::Tag", tag);
    }
    case ExprKind::kColumnRef: {
      std::string table = r->ReadString();
      std::string column = r->ReadString();
      return ExprPtr(std::make_unique<sql::ColumnRef>(std::move(table),
                                                      std::move(column)));
    }
    case ExprKind::kStar:
      return ExprPtr(std::make_unique<sql::Star>(r->ReadString()));
    case ExprKind::kUnary: {
      uint8_t op = r->ReadU8();
      if (op > static_cast<uint8_t>(sql::UnaryOp::kNot)) {
        return BadEnum("UnaryOp", op);
      }
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ReadExpr(r, depth + 1));
      return ExprPtr(std::make_unique<sql::UnaryExpr>(
          static_cast<sql::UnaryOp>(op), std::move(operand)));
    }
    case ExprKind::kBinary: {
      uint8_t op = r->ReadU8();
      if (op > static_cast<uint8_t>(sql::BinaryOp::kConcat)) {
        return BadEnum("BinaryOp", op);
      }
      LEGO_ASSIGN_OR_RETURN(ExprPtr lhs, ReadExpr(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(ExprPtr rhs, ReadExpr(r, depth + 1));
      return ExprPtr(std::make_unique<sql::BinaryExpr>(
          static_cast<sql::BinaryOp>(op), std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kFunctionCall: {
      std::string name = r->ReadString();
      std::vector<ExprPtr> args;
      LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth + 1, &args));
      auto fn = std::make_unique<sql::FunctionCall>(std::move(name),
                                                    std::move(args));
      fn->set_distinct(r->ReadBool());
      fn->set_star_arg(r->ReadBool());
      if (r->ReadBool()) {
        auto win = std::make_unique<sql::WindowSpec>();
        LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth + 1, &win->partition_by));
        uint64_t n = r->ReadU64();
        if (!r->CheckCount(n, 2)) return r->status();
        for (uint64_t i = 0; i < n; ++i) {
          LEGO_ASSIGN_OR_RETURN(ExprPtr e, ReadExpr(r, depth + 1));
          bool desc = r->ReadBool();
          win->order_by.emplace_back(std::move(e), desc);
        }
        fn->set_window(std::move(win));
      }
      return ExprPtr(std::move(fn));
    }
    case ExprKind::kCase: {
      ExprPtr operand;
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &operand));
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 2)) return r->status();
      std::vector<std::pair<ExprPtr, ExprPtr>> whens;
      whens.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        LEGO_ASSIGN_OR_RETURN(ExprPtr when, ReadExpr(r, depth + 1));
        LEGO_ASSIGN_OR_RETURN(ExprPtr then, ReadExpr(r, depth + 1));
        whens.emplace_back(std::move(when), std::move(then));
      }
      ExprPtr else_expr;
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &else_expr));
      return ExprPtr(std::make_unique<sql::CaseExpr>(
          std::move(operand), std::move(whens), std::move(else_expr)));
    }
    case ExprKind::kInList: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr needle, ReadExpr(r, depth + 1));
      std::vector<ExprPtr> list;
      LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth + 1, &list));
      bool negated = r->ReadBool();
      return ExprPtr(std::make_unique<sql::InListExpr>(
          std::move(needle), std::move(list), negated));
    }
    case ExprKind::kInSubquery: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr needle, ReadExpr(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(auto sub, ReadSelect(r, depth + 1));
      bool negated = r->ReadBool();
      return ExprPtr(std::make_unique<sql::InSubqueryExpr>(
          std::move(needle), std::move(sub), negated));
    }
    case ExprKind::kBetween: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ReadExpr(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(ExprPtr lo, ReadExpr(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(ExprPtr hi, ReadExpr(r, depth + 1));
      bool negated = r->ReadBool();
      return ExprPtr(std::make_unique<sql::BetweenExpr>(
          std::move(operand), std::move(lo), std::move(hi), negated));
    }
    case ExprKind::kLike: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ReadExpr(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(ExprPtr pattern, ReadExpr(r, depth + 1));
      bool negated = r->ReadBool();
      return ExprPtr(std::make_unique<sql::LikeExpr>(
          std::move(operand), std::move(pattern), negated));
    }
    case ExprKind::kIsNull: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ReadExpr(r, depth + 1));
      bool negated = r->ReadBool();
      return ExprPtr(
          std::make_unique<sql::IsNullExpr>(std::move(operand), negated));
    }
    case ExprKind::kExists: {
      LEGO_ASSIGN_OR_RETURN(auto sub, ReadSelect(r, depth + 1));
      bool negated = r->ReadBool();
      return ExprPtr(
          std::make_unique<sql::ExistsExpr>(std::move(sub), negated));
    }
    case ExprKind::kCast: {
      LEGO_ASSIGN_OR_RETURN(ExprPtr operand, ReadExpr(r, depth + 1));
      uint8_t target = r->ReadU8();
      if (target > static_cast<uint8_t>(sql::SqlType::kBool)) {
        return BadEnum("SqlType", target);
      }
      return ExprPtr(std::make_unique<sql::CastExpr>(
          std::move(operand), static_cast<sql::SqlType>(target)));
    }
    case ExprKind::kScalarSubquery: {
      LEGO_ASSIGN_OR_RETURN(auto sub, ReadSelect(r, depth + 1));
      return ExprPtr(std::make_unique<sql::ScalarSubquery>(std::move(sub)));
    }
    case ExprKind::kSessionVar:
      return ExprPtr(std::make_unique<sql::SessionVar>(r->ReadString()));
  }
  return BadEnum("ExprKind", kind_raw);
}

Status ReadOptExpr(StateReader* r, int depth, ExprPtr* out) {
  if (r->ReadBool()) {
    LEGO_ASSIGN_OR_RETURN(*out, ReadExpr(r, depth));
  } else {
    out->reset();
  }
  return r->status();
}

// ---------------------------------------------------------------------------
// Table references and SELECT
// ---------------------------------------------------------------------------

void WriteTableRef(const TableRef& t, StateWriter* w) {
  w->WriteU8(static_cast<uint8_t>(t.kind()));
  switch (t.kind()) {
    case TableRefKind::kBaseTable: {
      const auto& b = static_cast<const sql::BaseTableRef&>(t);
      w->WriteString(b.name());
      w->WriteString(b.alias());
      break;
    }
    case TableRefKind::kSubquery: {
      const auto& s = static_cast<const sql::SubqueryRef&>(t);
      WriteSelect(s.select(), w);
      w->WriteString(s.alias());
      break;
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const sql::JoinRef&>(t);
      w->WriteU8(static_cast<uint8_t>(j.join_type()));
      WriteTableRef(j.left(), w);
      WriteTableRef(j.right(), w);
      WriteOptExpr(j.on(), w);
      break;
    }
  }
}

StatusOr<TableRefPtr> ReadTableRef(StateReader* r, int depth) {
  if (depth > kMaxDepth) return TooDeep();
  uint8_t kind = r->ReadU8();
  if (!r->ok()) return r->status();
  if (kind > static_cast<uint8_t>(TableRefKind::kJoin)) {
    return BadEnum("TableRefKind", kind);
  }
  switch (static_cast<TableRefKind>(kind)) {
    case TableRefKind::kBaseTable: {
      std::string name = r->ReadString();
      std::string alias = r->ReadString();
      return TableRefPtr(std::make_unique<sql::BaseTableRef>(
          std::move(name), std::move(alias)));
    }
    case TableRefKind::kSubquery: {
      LEGO_ASSIGN_OR_RETURN(auto sub, ReadSelect(r, depth + 1));
      std::string alias = r->ReadString();
      return TableRefPtr(std::make_unique<sql::SubqueryRef>(
          std::move(sub), std::move(alias)));
    }
    case TableRefKind::kJoin: {
      uint8_t type = r->ReadU8();
      if (type > static_cast<uint8_t>(sql::JoinType::kCross)) {
        return BadEnum("JoinType", type);
      }
      LEGO_ASSIGN_OR_RETURN(TableRefPtr left, ReadTableRef(r, depth + 1));
      LEGO_ASSIGN_OR_RETURN(TableRefPtr right, ReadTableRef(r, depth + 1));
      ExprPtr on;
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &on));
      return TableRefPtr(std::make_unique<sql::JoinRef>(
          static_cast<sql::JoinType>(type), std::move(left), std::move(right),
          std::move(on)));
    }
  }
  return BadEnum("TableRefKind", kind);
}

void WriteSelectCore(const sql::SelectCore& c, StateWriter* w) {
  w->WriteBool(c.distinct);
  w->WriteU64(c.items.size());
  for (const sql::SelectItem& item : c.items) {
    WriteExpr(*item.expr, w);
    w->WriteString(item.alias);
  }
  w->WriteBool(c.from != nullptr);
  if (c.from != nullptr) WriteTableRef(*c.from, w);
  WriteOptExpr(c.where.get(), w);
  WriteExprVec(c.group_by, w);
  WriteOptExpr(c.having.get(), w);
}

Status ReadSelectCore(StateReader* r, int depth, sql::SelectCore* out) {
  out->distinct = r->ReadBool();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 2)) return r->status();
  out->items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    sql::SelectItem item;
    LEGO_ASSIGN_OR_RETURN(item.expr, ReadExpr(r, depth));
    item.alias = r->ReadString();
    out->items.push_back(std::move(item));
  }
  if (r->ReadBool()) {
    LEGO_ASSIGN_OR_RETURN(out->from, ReadTableRef(r, depth));
  }
  LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth, &out->where));
  LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth, &out->group_by));
  return ReadOptExpr(r, depth, &out->having);
}

void WriteSelect(const sql::SelectStmt& s, StateWriter* w) {
  WriteSelectCore(s.core, w);
  w->WriteU64(s.compounds.size());
  for (const auto& [op, core] : s.compounds) {
    w->WriteU8(static_cast<uint8_t>(op));
    WriteSelectCore(core, w);
  }
  w->WriteU64(s.order_by.size());
  for (const sql::OrderByItem& item : s.order_by) {
    WriteExpr(*item.expr, w);
    w->WriteBool(item.desc);
  }
  WriteOptExpr(s.limit.get(), w);
  WriteOptExpr(s.offset.get(), w);
}

StatusOr<std::unique_ptr<sql::SelectStmt>> ReadSelect(StateReader* r,
                                                      int depth) {
  if (depth > kMaxDepth) return TooDeep();
  auto out = std::make_unique<sql::SelectStmt>();
  LEGO_RETURN_IF_ERROR(ReadSelectCore(r, depth + 1, &out->core));
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 2)) return r->status();
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t op = r->ReadU8();
    if (op > static_cast<uint8_t>(sql::SetOpKind::kIntersect)) {
      return BadEnum("SetOpKind", op);
    }
    sql::SelectCore core;
    LEGO_RETURN_IF_ERROR(ReadSelectCore(r, depth + 1, &core));
    out->compounds.emplace_back(static_cast<sql::SetOpKind>(op),
                                std::move(core));
  }
  n = r->ReadU64();
  if (!r->CheckCount(n, 2)) return r->status();
  for (uint64_t i = 0; i < n; ++i) {
    sql::OrderByItem item;
    LEGO_ASSIGN_OR_RETURN(item.expr, ReadExpr(r, depth + 1));
    item.desc = r->ReadBool();
    out->order_by.push_back(std::move(item));
  }
  LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->limit));
  LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->offset));
  return out;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void WriteStmt(const Statement& s, StateWriter* w) {
  const StatementType type = s.type();
  w->WriteU8(static_cast<uint8_t>(type));
  switch (type) {
    case StatementType::kCreateTable: {
      const auto& c = static_cast<const sql::CreateTableStmt&>(s);
      w->WriteString(c.name);
      w->WriteBool(c.if_not_exists);
      w->WriteBool(c.temporary);
      w->WriteU64(c.columns.size());
      for (const sql::ColumnDef& col : c.columns) WriteColumnDef(col, w);
      break;
    }
    case StatementType::kCreateIndex: {
      const auto& c = static_cast<const sql::CreateIndexStmt&>(s);
      w->WriteString(c.name);
      w->WriteString(c.table);
      WriteStringVec(c.columns, w);
      w->WriteBool(c.unique);
      w->WriteBool(c.if_not_exists);
      break;
    }
    case StatementType::kCreateView: {
      const auto& c = static_cast<const sql::CreateViewStmt&>(s);
      w->WriteString(c.name);
      w->WriteBool(c.or_replace);
      w->WriteBool(c.select != nullptr);
      if (c.select != nullptr) WriteSelect(*c.select, w);
      break;
    }
    case StatementType::kCreateTrigger: {
      const auto& c = static_cast<const sql::CreateTriggerStmt&>(s);
      w->WriteString(c.name);
      w->WriteU8(static_cast<uint8_t>(c.timing));
      w->WriteU8(static_cast<uint8_t>(c.event));
      w->WriteString(c.table);
      w->WriteBool(c.for_each_row);
      WriteOptStmt(c.body.get(), w);
      break;
    }
    case StatementType::kCreateSequence: {
      const auto& c = static_cast<const sql::CreateSequenceStmt&>(s);
      w->WriteString(c.name);
      w->WriteI64(c.start);
      w->WriteI64(c.increment);
      w->WriteBool(c.if_not_exists);
      break;
    }
    case StatementType::kCreateRule: {
      const auto& c = static_cast<const sql::CreateRuleStmt&>(s);
      w->WriteString(c.name);
      w->WriteBool(c.or_replace);
      w->WriteU8(static_cast<uint8_t>(c.event));
      w->WriteString(c.table);
      w->WriteBool(c.instead);
      WriteOptStmt(c.action.get(), w);
      break;
    }
    case StatementType::kDropTable:
    case StatementType::kDropIndex:
    case StatementType::kDropView:
    case StatementType::kDropTrigger:
    case StatementType::kDropSequence:
    case StatementType::kDropRule: {
      const auto& d = static_cast<const sql::DropStmt&>(s);
      w->WriteString(d.name());
      w->WriteBool(d.if_exists());
      break;
    }
    case StatementType::kAlterTable: {
      const auto& a = static_cast<const sql::AlterTableStmt&>(s);
      w->WriteString(a.table);
      w->WriteU8(static_cast<uint8_t>(a.action));
      WriteColumnDef(a.new_column, w);
      w->WriteString(a.old_name);
      w->WriteString(a.new_name);
      break;
    }
    case StatementType::kTruncate: {
      const auto& t = static_cast<const sql::TruncateStmt&>(s);
      w->WriteString(t.table);
      break;
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      const auto& i = static_cast<const sql::InsertStmt&>(s);
      w->WriteString(i.table);
      WriteStringVec(i.columns, w);
      w->WriteU64(i.rows.size());
      for (const std::vector<ExprPtr>& row : i.rows) WriteExprVec(row, w);
      w->WriteBool(i.select != nullptr);
      if (i.select != nullptr) WriteSelect(*i.select, w);
      w->WriteBool(i.or_ignore);
      w->WriteBool(i.replace);
      break;
    }
    case StatementType::kUpdate: {
      const auto& u = static_cast<const sql::UpdateStmt&>(s);
      w->WriteString(u.table);
      w->WriteU64(u.assignments.size());
      for (const auto& [col, expr] : u.assignments) {
        w->WriteString(col);
        WriteExpr(*expr, w);
      }
      WriteOptExpr(u.where.get(), w);
      break;
    }
    case StatementType::kDelete: {
      const auto& d = static_cast<const sql::DeleteStmt&>(s);
      w->WriteString(d.table);
      WriteOptExpr(d.where.get(), w);
      break;
    }
    case StatementType::kCopy: {
      const auto& c = static_cast<const sql::CopyStmt&>(s);
      w->WriteString(c.table);
      w->WriteBool(c.query != nullptr);
      if (c.query != nullptr) WriteSelect(*c.query, w);
      w->WriteBool(c.to_stdout);
      w->WriteBool(c.csv);
      w->WriteBool(c.header);
      break;
    }
    case StatementType::kSelect:
      WriteSelect(static_cast<const sql::SelectStmt&>(s), w);
      break;
    case StatementType::kValues: {
      const auto& v = static_cast<const sql::ValuesStmt&>(s);
      w->WriteU64(v.rows.size());
      for (const std::vector<ExprPtr>& row : v.rows) WriteExprVec(row, w);
      break;
    }
    case StatementType::kWith: {
      const auto& wi = static_cast<const sql::WithStmt&>(s);
      w->WriteU64(wi.ctes.size());
      for (const sql::CommonTableExpr& cte : wi.ctes) {
        w->WriteString(cte.name);
        WriteStringVec(cte.columns, w);
        WriteOptStmt(cte.statement.get(), w);
      }
      WriteOptStmt(wi.body.get(), w);
      break;
    }
    case StatementType::kGrant: {
      const auto& g = static_cast<const sql::GrantStmt&>(s);
      w->WriteU8(static_cast<uint8_t>(g.privilege));
      w->WriteString(g.table);
      w->WriteString(g.user);
      break;
    }
    case StatementType::kRevoke: {
      const auto& g = static_cast<const sql::RevokeStmt&>(s);
      w->WriteU8(static_cast<uint8_t>(g.privilege));
      w->WriteString(g.table);
      w->WriteString(g.user);
      break;
    }
    case StatementType::kCreateUser: {
      const auto& c = static_cast<const sql::CreateUserStmt&>(s);
      w->WriteString(c.name);
      w->WriteBool(c.if_not_exists);
      break;
    }
    case StatementType::kDropUser: {
      const auto& d = static_cast<const sql::DropUserStmt&>(s);
      w->WriteString(d.name);
      w->WriteBool(d.if_exists);
      break;
    }
    case StatementType::kBegin:
    case StatementType::kCommit:
    case StatementType::kRollback:
    case StatementType::kCheckpoint:
      break;  // SimpleStmt: the type tag is the whole payload
    case StatementType::kSavepoint:
    case StatementType::kRelease:
    case StatementType::kRollbackTo:
    case StatementType::kListen:
    case StatementType::kUnlisten: {
      const auto& n = static_cast<const sql::NamedStmt&>(s);
      w->WriteString(n.name());
      break;
    }
    case StatementType::kPragma:
    case StatementType::kSet: {
      const auto& p = static_cast<const sql::PragmaStmt&>(s);
      w->WriteString(p.name);
      WriteOptExpr(p.value.get(), w);
      w->WriteBool(p.is_set);
      w->WriteBool(p.session_scope);
      break;
    }
    case StatementType::kShow: {
      const auto& sh = static_cast<const sql::ShowStmt&>(s);
      w->WriteString(sh.what);
      break;
    }
    case StatementType::kExplain: {
      const auto& e = static_cast<const sql::ExplainStmt&>(s);
      WriteOptStmt(e.target.get(), w);
      w->WriteBool(e.analyze);
      break;
    }
    case StatementType::kAnalyze:
    case StatementType::kVacuum:
    case StatementType::kReindex: {
      const auto& m = static_cast<const sql::MaintenanceStmt&>(s);
      w->WriteString(m.target());
      break;
    }
    case StatementType::kNotify: {
      const auto& n = static_cast<const sql::NotifyStmt&>(s);
      w->WriteString(n.channel);
      w->WriteString(n.payload);
      break;
    }
    case StatementType::kComment: {
      const auto& c = static_cast<const sql::CommentStmt&>(s);
      w->WriteString(c.table);
      w->WriteString(c.text);
      break;
    }
    case StatementType::kAlterSystem: {
      const auto& a = static_cast<const sql::AlterSystemStmt&>(s);
      w->WriteString(a.action);
      w->WriteString(a.name);
      WriteOptExpr(a.value.get(), w);
      break;
    }
    case StatementType::kDiscard: {
      const auto& d = static_cast<const sql::DiscardStmt&>(s);
      w->WriteBool(d.all);
      break;
    }
    case StatementType::kNumTypes:
      break;  // unreachable: no node carries the sentinel
  }
}

void WriteOptStmt(const Statement* s, StateWriter* w) {
  w->WriteBool(s != nullptr);
  if (s != nullptr) WriteStmt(*s, w);
}

StatusOr<StmtPtr> ReadStmt(StateReader* r, int depth) {
  if (depth > kMaxDepth) return TooDeep();
  uint8_t type_raw = r->ReadU8();
  if (!r->ok()) return r->status();
  if (type_raw >= static_cast<uint8_t>(StatementType::kNumTypes)) {
    return BadEnum("StatementType", type_raw);
  }
  const StatementType type = static_cast<StatementType>(type_raw);
  switch (type) {
    case StatementType::kCreateTable: {
      auto out = std::make_unique<sql::CreateTableStmt>();
      out->name = r->ReadString();
      out->if_not_exists = r->ReadBool();
      out->temporary = r->ReadBool();
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 8)) return r->status();
      out->columns.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        sql::ColumnDef col;
        LEGO_RETURN_IF_ERROR(ReadColumnDef(r, depth + 1, &col));
        out->columns.push_back(std::move(col));
      }
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateIndex: {
      auto out = std::make_unique<sql::CreateIndexStmt>();
      out->name = r->ReadString();
      out->table = r->ReadString();
      LEGO_RETURN_IF_ERROR(ReadStringVec(r, &out->columns));
      out->unique = r->ReadBool();
      out->if_not_exists = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateView: {
      auto out = std::make_unique<sql::CreateViewStmt>();
      out->name = r->ReadString();
      out->or_replace = r->ReadBool();
      if (r->ReadBool()) {
        LEGO_ASSIGN_OR_RETURN(out->select, ReadSelect(r, depth + 1));
      }
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateTrigger: {
      auto out = std::make_unique<sql::CreateTriggerStmt>();
      out->name = r->ReadString();
      uint8_t timing = r->ReadU8();
      if (timing > static_cast<uint8_t>(sql::TriggerTiming::kAfter)) {
        return BadEnum("TriggerTiming", timing);
      }
      out->timing = static_cast<sql::TriggerTiming>(timing);
      uint8_t event = r->ReadU8();
      if (event > static_cast<uint8_t>(sql::TriggerEvent::kDelete)) {
        return BadEnum("TriggerEvent", event);
      }
      out->event = static_cast<sql::TriggerEvent>(event);
      out->table = r->ReadString();
      out->for_each_row = r->ReadBool();
      LEGO_RETURN_IF_ERROR(ReadOptStmt(r, depth + 1, &out->body));
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateSequence: {
      auto out = std::make_unique<sql::CreateSequenceStmt>();
      out->name = r->ReadString();
      out->start = r->ReadI64();
      out->increment = r->ReadI64();
      out->if_not_exists = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateRule: {
      auto out = std::make_unique<sql::CreateRuleStmt>();
      out->name = r->ReadString();
      out->or_replace = r->ReadBool();
      uint8_t event = r->ReadU8();
      if (event > static_cast<uint8_t>(sql::TriggerEvent::kDelete)) {
        return BadEnum("TriggerEvent", event);
      }
      out->event = static_cast<sql::TriggerEvent>(event);
      out->table = r->ReadString();
      out->instead = r->ReadBool();
      LEGO_RETURN_IF_ERROR(ReadOptStmt(r, depth + 1, &out->action));
      return StmtPtr(std::move(out));
    }
    case StatementType::kDropTable:
    case StatementType::kDropIndex:
    case StatementType::kDropView:
    case StatementType::kDropTrigger:
    case StatementType::kDropSequence:
    case StatementType::kDropRule: {
      std::string name = r->ReadString();
      bool if_exists = r->ReadBool();
      return StmtPtr(
          std::make_unique<sql::DropStmt>(type, std::move(name), if_exists));
    }
    case StatementType::kAlterTable: {
      auto out = std::make_unique<sql::AlterTableStmt>();
      out->table = r->ReadString();
      uint8_t action = r->ReadU8();
      if (action > static_cast<uint8_t>(sql::AlterAction::kRenameTable)) {
        return BadEnum("AlterAction", action);
      }
      out->action = static_cast<sql::AlterAction>(action);
      LEGO_RETURN_IF_ERROR(ReadColumnDef(r, depth + 1, &out->new_column));
      out->old_name = r->ReadString();
      out->new_name = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kTruncate: {
      auto out = std::make_unique<sql::TruncateStmt>();
      out->table = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kInsert:
    case StatementType::kReplace: {
      auto out = std::make_unique<sql::InsertStmt>();
      out->table = r->ReadString();
      LEGO_RETURN_IF_ERROR(ReadStringVec(r, &out->columns));
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 8)) return r->status();
      out->rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        std::vector<ExprPtr> row;
        LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth + 1, &row));
        out->rows.push_back(std::move(row));
      }
      if (r->ReadBool()) {
        LEGO_ASSIGN_OR_RETURN(out->select, ReadSelect(r, depth + 1));
      }
      out->or_ignore = r->ReadBool();
      out->replace = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kUpdate: {
      auto out = std::make_unique<sql::UpdateStmt>();
      out->table = r->ReadString();
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 8)) return r->status();
      out->assignments.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        std::string col = r->ReadString();
        LEGO_ASSIGN_OR_RETURN(ExprPtr expr, ReadExpr(r, depth + 1));
        out->assignments.emplace_back(std::move(col), std::move(expr));
      }
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->where));
      return StmtPtr(std::move(out));
    }
    case StatementType::kDelete: {
      auto out = std::make_unique<sql::DeleteStmt>();
      out->table = r->ReadString();
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->where));
      return StmtPtr(std::move(out));
    }
    case StatementType::kCopy: {
      auto out = std::make_unique<sql::CopyStmt>();
      out->table = r->ReadString();
      if (r->ReadBool()) {
        LEGO_ASSIGN_OR_RETURN(out->query, ReadSelect(r, depth + 1));
      }
      out->to_stdout = r->ReadBool();
      out->csv = r->ReadBool();
      out->header = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kSelect: {
      LEGO_ASSIGN_OR_RETURN(auto out, ReadSelect(r, depth + 1));
      return StmtPtr(std::move(out));
    }
    case StatementType::kValues: {
      auto out = std::make_unique<sql::ValuesStmt>();
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 8)) return r->status();
      out->rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        std::vector<ExprPtr> row;
        LEGO_RETURN_IF_ERROR(ReadExprVec(r, depth + 1, &row));
        out->rows.push_back(std::move(row));
      }
      return StmtPtr(std::move(out));
    }
    case StatementType::kWith: {
      auto out = std::make_unique<sql::WithStmt>();
      uint64_t n = r->ReadU64();
      if (!r->CheckCount(n, 8)) return r->status();
      out->ctes.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        sql::CommonTableExpr cte;
        cte.name = r->ReadString();
        LEGO_RETURN_IF_ERROR(ReadStringVec(r, &cte.columns));
        LEGO_RETURN_IF_ERROR(ReadOptStmt(r, depth + 1, &cte.statement));
        out->ctes.push_back(std::move(cte));
      }
      LEGO_RETURN_IF_ERROR(ReadOptStmt(r, depth + 1, &out->body));
      return StmtPtr(std::move(out));
    }
    case StatementType::kGrant: {
      auto out = std::make_unique<sql::GrantStmt>();
      uint8_t priv = r->ReadU8();
      if (priv > static_cast<uint8_t>(sql::Privilege::kAll)) {
        return BadEnum("Privilege", priv);
      }
      out->privilege = static_cast<sql::Privilege>(priv);
      out->table = r->ReadString();
      out->user = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kRevoke: {
      auto out = std::make_unique<sql::RevokeStmt>();
      uint8_t priv = r->ReadU8();
      if (priv > static_cast<uint8_t>(sql::Privilege::kAll)) {
        return BadEnum("Privilege", priv);
      }
      out->privilege = static_cast<sql::Privilege>(priv);
      out->table = r->ReadString();
      out->user = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kCreateUser: {
      auto out = std::make_unique<sql::CreateUserStmt>();
      out->name = r->ReadString();
      out->if_not_exists = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kDropUser: {
      auto out = std::make_unique<sql::DropUserStmt>();
      out->name = r->ReadString();
      out->if_exists = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kBegin:
    case StatementType::kCommit:
    case StatementType::kRollback:
    case StatementType::kCheckpoint:
      return StmtPtr(std::make_unique<sql::SimpleStmt>(type));
    case StatementType::kSavepoint:
    case StatementType::kRelease:
    case StatementType::kRollbackTo:
    case StatementType::kListen:
    case StatementType::kUnlisten:
      return StmtPtr(std::make_unique<sql::NamedStmt>(type, r->ReadString()));
    case StatementType::kPragma:
    case StatementType::kSet: {
      auto out = std::make_unique<sql::PragmaStmt>();
      out->name = r->ReadString();
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->value));
      out->is_set = r->ReadBool();
      out->session_scope = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kShow: {
      auto out = std::make_unique<sql::ShowStmt>();
      out->what = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kExplain: {
      auto out = std::make_unique<sql::ExplainStmt>();
      LEGO_RETURN_IF_ERROR(ReadOptStmt(r, depth + 1, &out->target));
      out->analyze = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kAnalyze:
    case StatementType::kVacuum:
    case StatementType::kReindex:
      return StmtPtr(
          std::make_unique<sql::MaintenanceStmt>(type, r->ReadString()));
    case StatementType::kNotify: {
      auto out = std::make_unique<sql::NotifyStmt>();
      out->channel = r->ReadString();
      out->payload = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kComment: {
      auto out = std::make_unique<sql::CommentStmt>();
      out->table = r->ReadString();
      out->text = r->ReadString();
      return StmtPtr(std::move(out));
    }
    case StatementType::kAlterSystem: {
      auto out = std::make_unique<sql::AlterSystemStmt>();
      out->action = r->ReadString();
      out->name = r->ReadString();
      LEGO_RETURN_IF_ERROR(ReadOptExpr(r, depth + 1, &out->value));
      return StmtPtr(std::move(out));
    }
    case StatementType::kDiscard: {
      auto out = std::make_unique<sql::DiscardStmt>();
      out->all = r->ReadBool();
      return StmtPtr(std::move(out));
    }
    case StatementType::kNumTypes:
      break;
  }
  return BadEnum("StatementType", type_raw);
}

Status ReadOptStmt(StateReader* r, int depth, StmtPtr* out) {
  if (r->ReadBool()) {
    LEGO_ASSIGN_OR_RETURN(*out, ReadStmt(r, depth));
  } else {
    out->reset();
  }
  return r->status();
}

}  // namespace

void SerializeExpr(const sql::Expr& e, StateWriter* w) { WriteExpr(e, w); }

void SerializeOptionalExpr(const sql::Expr* e, StateWriter* w) {
  WriteOptExpr(e, w);
}

void SerializeTableRef(const sql::TableRef& t, StateWriter* w) {
  WriteTableRef(t, w);
}

void SerializeSelect(const sql::SelectStmt& s, StateWriter* w) {
  WriteSelect(s, w);
}

void SerializeStatement(const sql::Statement& s, StateWriter* w) {
  WriteStmt(s, w);
}

void SerializeOptionalStatement(const sql::Statement* s, StateWriter* w) {
  WriteOptStmt(s, w);
}

StatusOr<sql::ExprPtr> DeserializeExpr(StateReader* r) {
  return ReadExpr(r, 0);
}

Status DeserializeOptionalExpr(StateReader* r, sql::ExprPtr* out) {
  return ReadOptExpr(r, 0, out);
}

StatusOr<sql::TableRefPtr> DeserializeTableRef(StateReader* r) {
  return ReadTableRef(r, 0);
}

StatusOr<std::unique_ptr<sql::SelectStmt>> DeserializeSelect(StateReader* r) {
  return ReadSelect(r, 0);
}

StatusOr<sql::StmtPtr> DeserializeStatement(StateReader* r) {
  return ReadStmt(r, 0);
}

Status DeserializeOptionalStatement(StateReader* r, sql::StmtPtr* out) {
  return ReadOptStmt(r, 0, out);
}

}  // namespace lego::persist
