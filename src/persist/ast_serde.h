#ifndef LEGO_PERSIST_AST_SERDE_H_
#define LEGO_PERSIST_AST_SERDE_H_

#include <memory>

#include "persist/io.h"
#include "sql/ast.h"

namespace lego::persist {

/// Structural (not textual) serialization of SQL AST nodes. Campaign state
/// holds live ASTs — corpus seeds, queued test cases, skeleton-library
/// entries — and mutation decisions depend on their exact shape, so a
/// checkpoint must reproduce the nodes bit-for-bit. Printing to SQL and
/// re-parsing would only guarantee a textual fixed point (parse-normal
/// form), not structural identity, which is why this module walks the node
/// graph directly.

void SerializeExpr(const sql::Expr& e, StateWriter* w);
/// Nullable slot: presence byte + payload.
void SerializeOptionalExpr(const sql::Expr* e, StateWriter* w);
void SerializeTableRef(const sql::TableRef& t, StateWriter* w);
void SerializeSelect(const sql::SelectStmt& s, StateWriter* w);
void SerializeStatement(const sql::Statement& s, StateWriter* w);
void SerializeOptionalStatement(const sql::Statement* s, StateWriter* w);

/// Each deserializer returns a clean Status on any malformed input (bad
/// discriminator, over-deep nesting, chunk overrun) — never UB.
StatusOr<sql::ExprPtr> DeserializeExpr(StateReader* r);
Status DeserializeOptionalExpr(StateReader* r, sql::ExprPtr* out);
StatusOr<sql::TableRefPtr> DeserializeTableRef(StateReader* r);
StatusOr<std::unique_ptr<sql::SelectStmt>> DeserializeSelect(StateReader* r);
StatusOr<sql::StmtPtr> DeserializeStatement(StateReader* r);
Status DeserializeOptionalStatement(StateReader* r, sql::StmtPtr* out);

}  // namespace lego::persist

#endif  // LEGO_PERSIST_AST_SERDE_H_
