#include "fuzz/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "fuzz/state.h"
#include "util/hash.h"

namespace lego::fuzz {

namespace {

constexpr uint32_t kFingerprintTag = persist::ChunkTag("CFGF");
constexpr uint32_t kResultTag = persist::ChunkTag("RSLT");
constexpr uint32_t kPointerTag = persist::ChunkTag("LTST");

Status Mismatch(const std::string& what) {
  return Status::InvalidArgument("campaign state saved under a different " +
                                 what);
}

}  // namespace

void WriteCampaignFingerprint(const std::string& fuzzer_name,
                              const std::string& profile_name,
                              const CampaignOptions& options,
                              persist::StateWriter* w) {
  // max_executions is deliberately absent: a campaign may be resumed with a
  // raised budget (checkpoint at k executions, resume to n > k), which is
  // also how tests reproduce an interruption deterministically.
  w->BeginChunk(kFingerprintTag);
  w->WriteString(fuzzer_name);
  w->WriteString(profile_name);
  w->WriteI64(options.max_statements);
  w->WriteI64(options.snapshot_every);
  w->WriteBool(options.stop_when_all_bugs_found);
  w->WriteI64(options.num_workers);
  w->WriteI64(options.sync_every);
  w->WriteI64(options.checkpoint_every);
  w->EndChunk();
}

Status VerifyCampaignFingerprint(const std::string& fuzzer_name,
                                 const std::string& profile_name,
                                 const CampaignOptions& options,
                                 persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kFingerprintTag));
  std::string fuzzer = r->ReadString();
  std::string profile = r->ReadString();
  int64_t max_statements = r->ReadI64();
  int64_t snapshot_every = r->ReadI64();
  bool stop_all = r->ReadBool();
  int64_t num_workers = r->ReadI64();
  int64_t sync_every = r->ReadI64();
  int64_t checkpoint_every = r->ReadI64();
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  if (fuzzer != fuzzer_name) return Mismatch("fuzzer (" + fuzzer + ")");
  if (profile != profile_name) return Mismatch("profile (" + profile + ")");
  if (max_statements != options.max_statements ||
      snapshot_every != options.snapshot_every ||
      stop_all != options.stop_when_all_bugs_found) {
    return Mismatch("budget configuration");
  }
  if (num_workers != options.num_workers ||
      sync_every != options.sync_every ||
      checkpoint_every != options.checkpoint_every) {
    return Mismatch("worker configuration");
  }
  return Status::OK();
}

Status SaveCampaignResult(const CampaignResult& result,
                          persist::StateWriter* w) {
  w->BeginChunk(kResultTag);
  w->WriteString(result.fuzzer);
  w->WriteString(result.profile);
  w->WriteI64(result.executions);
  w->WriteU64(result.edges);
  w->WriteU64(result.rules);

  w->WriteU64(result.coverage_curve.size());
  for (const auto& [execs, edges] : result.coverage_curve) {
    w->WriteI64(execs);
    w->WriteU64(edges);
  }

  w->WriteU64(result.crash_hashes.size());
  for (uint64_t h : result.crash_hashes) w->WriteU64(h);

  w->WriteU64(result.bug_ids.size());
  for (const auto& id : result.bug_ids) w->WriteString(id);

  w->WriteU64(result.affinities.size());
  for (const auto& [a, b] : result.affinities) {
    w->WriteI64(a);
    w->WriteI64(b);
  }

  w->WriteI64(result.crashes_total);
  w->WriteI64(result.statement_errors);
  w->WriteI64(result.statements_executed);

  w->WriteU64(result.bugs_by_component.size());
  for (const auto& [component, count] : result.bugs_by_component) {
    w->WriteString(component);
    w->WriteI64(count);
  }

  if (result.captured_cases.size() != result.captured_crashes.size()) {
    return Status::Internal("captured_cases/captured_crashes out of sync");
  }
  w->WriteU64(result.captured_cases.size());
  for (size_t i = 0; i < result.captured_cases.size(); ++i) {
    SaveTestCase(result.captured_cases[i], w);
    const minidb::CrashInfo& crash = result.captured_crashes[i];
    w->WriteString(crash.bug_id);
    w->WriteString(crash.component);
    w->WriteString(crash.kind);
    w->WriteU64(crash.stack_hash);
    w->WriteString(crash.message);
  }

  w->WriteI64(result.logic_bugs_total);
  w->WriteU64(result.logic_fingerprints.size());
  for (uint64_t f : result.logic_fingerprints) w->WriteU64(f);

  if (result.captured_logic_cases.size() != result.captured_logic_bugs.size()) {
    return Status::Internal("captured logic cases/bugs out of sync");
  }
  w->WriteU64(result.captured_logic_cases.size());
  for (size_t i = 0; i < result.captured_logic_cases.size(); ++i) {
    SaveTestCase(result.captured_logic_cases[i], w);
    const LogicBugInfo& bug = result.captured_logic_bugs[i];
    w->WriteString(bug.check);
    w->WriteString(bug.query);
    w->WriteString(bug.detail);
    w->WriteU64(bug.fingerprint);
    w->WriteU64(bug.interleave_seed);
    w->WriteI64(bug.sessions);
  }

  w->EndChunk();
  return Status::OK();
}

Status LoadCampaignResult(persist::StateReader* r, CampaignResult* result) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kResultTag));
  CampaignResult loaded;
  loaded.fuzzer = r->ReadString();
  loaded.profile = r->ReadString();
  loaded.executions = static_cast<int>(r->ReadI64());
  loaded.edges = static_cast<size_t>(r->ReadU64());
  loaded.rules = static_cast<size_t>(r->ReadU64());

  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 16)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    int execs = static_cast<int>(r->ReadI64());
    size_t edges = static_cast<size_t>(r->ReadU64());
    loaded.coverage_curve.emplace_back(execs, edges);
  }

  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    loaded.crash_hashes.insert(r->ReadU64());
  }

  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    loaded.bug_ids.insert(r->ReadString());
  }

  n = r->ReadU64();
  if (!r->CheckCount(n, 16)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    int a = static_cast<int>(r->ReadI64());
    int b = static_cast<int>(r->ReadI64());
    loaded.affinities.insert({a, b});
  }

  loaded.crashes_total = static_cast<int>(r->ReadI64());
  loaded.statement_errors = static_cast<int>(r->ReadI64());
  loaded.statements_executed = static_cast<int>(r->ReadI64());

  n = r->ReadU64();
  if (!r->CheckCount(n, 16)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    std::string component = r->ReadString();
    loaded.bugs_by_component[component] = static_cast<int>(r->ReadI64());
  }

  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(r));
    loaded.captured_cases.push_back(std::move(tc));
    minidb::CrashInfo crash;
    crash.bug_id = r->ReadString();
    crash.component = r->ReadString();
    crash.kind = r->ReadString();
    crash.stack_hash = r->ReadU64();
    crash.message = r->ReadString();
    loaded.captured_crashes.push_back(std::move(crash));
  }

  loaded.logic_bugs_total = static_cast<int>(r->ReadI64());
  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    loaded.logic_fingerprints.insert(r->ReadU64());
  }

  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(r));
    loaded.captured_logic_cases.push_back(std::move(tc));
    LogicBugInfo bug;
    bug.check = r->ReadString();
    bug.query = r->ReadString();
    bug.detail = r->ReadString();
    bug.fingerprint = r->ReadU64();
    bug.interleave_seed = r->ReadU64();
    bug.sessions = static_cast<int>(r->ReadI64());
    loaded.captured_logic_bugs.push_back(std::move(bug));
  }

  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  *result = std::move(loaded);
  return Status::OK();
}

uint64_t ResultDigest(const CampaignResult& result) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_u64 = [&h](uint64_t v) { h = HashMix(h, v); };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    h = Fnv1a64(s, h);
  };
  mix_str(result.fuzzer);
  mix_str(result.profile);
  mix_u64(static_cast<uint64_t>(result.executions));
  mix_u64(result.edges);
  mix_u64(result.rules);
  mix_u64(static_cast<uint64_t>(result.crashes_total));
  mix_u64(static_cast<uint64_t>(result.statement_errors));
  mix_u64(static_cast<uint64_t>(result.statements_executed));
  mix_u64(static_cast<uint64_t>(result.logic_bugs_total));
  mix_u64(result.coverage_curve.size());
  for (const auto& [execs, edges] : result.coverage_curve) {
    mix_u64(static_cast<uint64_t>(execs));
    mix_u64(edges);
  }
  mix_u64(result.crash_hashes.size());
  for (uint64_t v : result.crash_hashes) mix_u64(v);
  mix_u64(result.bug_ids.size());
  for (const auto& id : result.bug_ids) mix_str(id);
  mix_u64(result.logic_fingerprints.size());
  for (uint64_t v : result.logic_fingerprints) mix_u64(v);
  mix_u64(result.affinities.size());
  for (const auto& [a, b] : result.affinities) {
    mix_u64(static_cast<uint64_t>(a));
    mix_u64(static_cast<uint64_t>(b));
  }
  for (const auto& [component, count] : result.bugs_by_component) {
    mix_str(component);
    mix_u64(static_cast<uint64_t>(count));
  }
  return h;
}

std::string SerialStatePath(const std::string& state_dir) {
  return (std::filesystem::path(state_dir) / "campaign.state").string();
}

std::string CheckpointDirName(int round) {
  return "ckpt_r" + std::to_string(round);
}

std::string WorkerStatePath(const std::string& ckpt_dir, int worker) {
  return (std::filesystem::path(ckpt_dir) /
          ("worker" + std::to_string(worker) + ".state"))
      .string();
}

std::string ManifestPath(const std::string& ckpt_dir) {
  return (std::filesystem::path(ckpt_dir) / "manifest.state").string();
}

Status WriteLatestPointer(const std::string& state_dir,
                          const std::string& ckpt_dir_name) {
  persist::StateWriter w;
  w.BeginChunk(kPointerTag);
  w.WriteString(ckpt_dir_name);
  w.EndChunk();
  return w.WriteFileAtomic(
      (std::filesystem::path(state_dir) / "LATEST").string());
}

StatusOr<std::string> ReadLatestPointer(const std::string& state_dir) {
  LEGO_ASSIGN_OR_RETURN(
      persist::StateReader r,
      persist::StateReader::FromFile(
          (std::filesystem::path(state_dir) / "LATEST").string()));
  LEGO_RETURN_IF_ERROR(r.EnterChunk(kPointerTag));
  std::string name = r.ReadString();
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return Status::InvalidArgument("LATEST names an invalid checkpoint dir");
  }
  return name;
}

namespace {

/// A checkpoint directory is usable iff every file a resume would open
/// (manifest + one state file per worker) passes full envelope validation.
/// Fingerprint/content checks still happen on the real resume path; this
/// only has to rule out torn writes and bit rot.
Status ValidateCheckpointDir(const std::string& state_dir,
                             const std::string& name, int num_workers) {
  const std::string dir =
      (std::filesystem::path(state_dir) / name).string();
  LEGO_ASSIGN_OR_RETURN(persist::StateReader manifest,
                        persist::StateReader::FromFile(ManifestPath(dir)));
  (void)manifest;
  for (int w = 0; w < num_workers; ++w) {
    LEGO_ASSIGN_OR_RETURN(
        persist::StateReader r,
        persist::StateReader::FromFile(WorkerStatePath(dir, w)));
    (void)r;
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> LocateUsableCheckpoint(
    const std::string& state_dir, int num_workers,
    std::vector<std::string>* warnings, int* rejected) {
  if (rejected != nullptr) *rejected = 0;
  std::vector<std::string> candidates;
  auto add = [&](const std::string& name) {
    if (std::find(candidates.begin(), candidates.end(), name) ==
        candidates.end()) {
      candidates.push_back(name);
    }
  };

  auto latest = ReadLatestPointer(state_dir);
  if (latest.ok()) {
    add(*latest);
  } else {
    // An unreadable pointer is itself a fallback: whatever it named is no
    // longer trusted, and recovery proceeds by directory scan.
    if (warnings != nullptr) {
      warnings->push_back("LATEST pointer unusable (" +
                          latest.status().ToString() +
                          "); scanning for checkpoints");
    }
    if (rejected != nullptr) ++(*rejected);
  }

  // Fallback candidates, best-first: the complete final checkpoint, then
  // mid-run rounds newest-first.
  bool have_final = false;
  std::vector<int> round_dirs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(state_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == "ckpt_final") {
      have_final = true;
    } else if (name.rfind("ckpt_r", 0) == 0) {
      round_dirs.push_back(std::atoi(name.c_str() + 6));
    }
  }
  std::sort(round_dirs.begin(), round_dirs.end(), std::greater<int>());
  if (have_final) add("ckpt_final");
  for (int r : round_dirs) add(CheckpointDirName(r));

  for (size_t i = 0; i < candidates.size(); ++i) {
    Status usable = ValidateCheckpointDir(state_dir, candidates[i],
                                          num_workers);
    if (usable.ok()) {
      if (i > 0 && warnings != nullptr) {
        warnings->push_back("recovered: resuming from older checkpoint " +
                            candidates[i]);
      }
      return candidates[i];
    }
    if (warnings != nullptr) {
      warnings->push_back("checkpoint " + candidates[i] + " unusable (" +
                          usable.ToString() + "); falling back");
    }
    if (rejected != nullptr) ++(*rejected);
  }
  return Status::NotFound("no usable checkpoint under " + state_dir);
}

}  // namespace lego::fuzz
