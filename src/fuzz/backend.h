#ifndef LEGO_FUZZ_BACKEND_H_
#define LEGO_FUZZ_BACKEND_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coverage/coverage.h"
#include "faults/bug_engine.h"
#include "minidb/database.h"
#include "minidb/profile.h"
#include "sql/ast.h"

namespace lego::fuzz {

/// Which execution backend a harness drives.
enum class BackendKind {
  /// minidb embedded in the fuzzer process (the historical harness). Fast,
  /// but a genuine engine defect (real segfault/abort, not a BugEngine
  /// simulation) kills the whole campaign.
  kInProcess,
  /// minidb in a forked child behind a length-prefixed pipe protocol, with
  /// a per-statement watchdog, signal/exit capture mapped into CrashInfo,
  /// shared-memory coverage export, and automatic respawn — the paper's
  /// "crash kills the server, not the fuzzer" process model.
  kForked,
  /// minidb in-process with N true concurrent session threads per test
  /// case, token-serialized by a seeded epoch scheduler (every interleaving
  /// replays bit-identically from its seed) with row-level S/X locking and
  /// an isolation-anomaly history log.
  kConcurrent,
};

/// Which storage engine the backend's server runs on.
enum class StorageKind {
  /// Purely in-memory catalog (the historical engine). Campaigns through it
  /// are bit-identical to every release before the paged engine existed.
  kMem,
  /// Paged on-disk storage: heap snapshots + redo WAL under `db_dir`, with
  /// ARIES-lite recovery. Enables the durability oracle for forked backends.
  kPaged,
};

/// Parses "mem" / "paged" (as accepted by --storage=).
std::optional<StorageKind> ParseStorageKind(std::string_view name);
std::string_view StorageKindName(StorageKind kind);

struct BackendOptions {
  BackendKind kind = BackendKind::kInProcess;
  /// Storage engine of the server. kPaged requires `db_dir`.
  StorageKind storage = StorageKind::kMem;
  /// Paged only: directory holding MANIFEST / snap.<lsn> / wal.<lsn>. The
  /// backend owns its lifecycle: created on first Reset, wiped per session,
  /// recovered after a child death when the durability oracle is armed.
  std::string db_dir;
  /// Paged only: buffer-pool frame budget for snapshot I/O.
  size_t pool_frames = 64;
  /// Forked+paged only: after every child death at a storage failpoint the
  /// parent re-runs recovery over `db_dir` and checks that every
  /// acknowledged-before-death effect is readable and nothing unacknowledged
  /// leaked in; violations surface as DUR-* findings.
  bool durability_check = false;
  /// Planted durability defect: the child's WAL acknowledges commits without
  /// fsync, so a SIGKILL genuinely loses them (--planted-skip-fsync).
  bool planted_skip_fsync = false;
  /// Free-form chaos/kill-schedule description recorded into DUR-* crash
  /// messages so reproducer artifacts carry the schedule that triggered them.
  std::string chaos_note;
  /// Forked only: per-statement wall-clock watchdog in milliseconds. When a
  /// statement exceeds it the child is killed and the statement is reported
  /// as a hang (CrashInfo kind "HANG"). 0 disables the watchdog.
  int max_stmt_ms = 0;
  /// Forked only: resource caps applied in the child via setrlimit right
  /// after fork, bounding what one fuzzed session can consume. 0 disables
  /// a cap. Address-space exhaustion (RLIMIT_AS) exits the child with a
  /// reserved code mapped to bug_id "REAL-OOM"; cumulative CPU time
  /// (RLIMIT_CPU, seconds) kills with SIGXCPU -> "REAL-CPU"; file size
  /// (RLIMIT_FSIZE) kills with SIGXFSZ -> "REAL-FSIZE".
  int max_child_mem_mb = 0;
  int max_child_cpu_s = 0;
  int max_child_fsize_mb = 0;
  /// Forked only: circuit breaker on the fork server. Each failed spawn is
  /// retried with exponential backoff; after this many consecutive
  /// failures the backend gives up and reports broken() — a parallel
  /// campaign then parks the worker and redistributes its remaining budget
  /// at the next round barrier instead of spinning or aborting.
  int spawn_failure_limit = 8;
  /// Concurrent only: number of session threads per test case (>= 2 for
  /// actual concurrency; 1 degrades to serial in-process execution).
  int sessions = 2;
  /// Concurrent only: campaign-level interleaving seed. The per-case
  /// scheduler seed is HashMix(concurrency_seed, execution index), so every
  /// case replays its interleaving bit-identically — including across a
  /// checkpoint/resume boundary, since the execution counter is persisted.
  uint64_t concurrency_seed = 1;
  /// Concurrent only, planted isolation defects for oracle validation:
  /// skip X locks on writes (lost updates) / skip S locks on reads (dirty
  /// reads).
  bool planted_lost_update = false;
  bool planted_dirty_read = false;
};

/// Parses "inproc" / "forked" / "concurrent" (as accepted by --backend=).
/// Returns nullopt for anything else.
std::optional<BackendKind> ParseBackendKind(std::string_view name);
std::string_view BackendKindName(BackendKind kind);

/// Storage-layer counters a backend reports for campaign observability
/// (all zeros on the mem path). Runtime telemetry only: never serialized
/// into checkpoints and excluded from ResultDigest, so enabling it cannot
/// perturb campaign determinism.
struct BackendStorageStats {
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t steal_flushes = 0;
  uint64_t commits = 0;
  uint64_t checkpoints = 0;

  double pool_hit_rate() const {
    const uint64_t total = pool_hits + pool_misses;
    return total == 0 ? 0.0 : static_cast<double>(pool_hits) /
                                  static_cast<double>(total);
  }

  void Add(const BackendStorageStats& o) {
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    pool_evictions += o.pool_evictions;
    pool_writebacks += o.pool_writebacks;
    wal_records += o.wal_records;
    wal_bytes += o.wal_bytes;
    fsyncs += o.fsyncs;
    steal_flushes += o.steal_flushes;
    commits += o.commits;
    checkpoints += o.checkpoints;
  }
};

/// Outcome of executing one statement through a backend session.
struct StmtOutcome {
  enum class Status {
    kOk,     // executed successfully
    kError,  // rejected (syntax/semantic/runtime error); session continues
    kCrash,  // the "server" died: synthetic fault, real signal, or bad exit
    kHang,   // watchdog expired; the child was killed (forked only)
  };
  Status status = Status::kError;
  /// Valid iff kCrash or kHang. Real child deaths map to bug_id
  /// "REAL-<kind>" (e.g. REAL-SIGABRT) and hangs to bug_id "HANG"; both get
  /// a stack hash derived from (kind, statement type) so they dedup and
  /// reduce exactly like synthetic fault-engine crashes.
  minidb::CrashInfo crash;
  /// Result rows rendered one string per row ("v|v|...|"), filled only when
  /// Execute was asked for rows (oracle queries). Rendering is identical
  /// across backends so metamorphic comparisons are backend-agnostic.
  std::vector<std::string> rows;

  bool server_died() const {
    return status == Status::kCrash || status == Status::kHang;
  }
};

/// Session-oriented execution seam between the fuzzing stack and the DBMS
/// under test. One backend == one (possibly remote/forked) server process
/// plus its coverage channel. Everything above this interface —
/// ExecutionHarness, triage replay, oracles, baselines, the CLI — is
/// engine-process-agnostic.
///
/// Session protocol, per test case:
///   Reset();                       // fresh server state + setup script
///   Execute(stmt) ... Execute(stmt)
///   FinishRun();                   // classified run-coverage map
/// Oracle queries run inside a Snapshot/RestoreForOracle bracket (use the
/// OracleSession RAII guard), which pauses coverage probes, disarms the
/// fault-injection hook, and rolls the session trace back on exit, so
/// metamorphic checks never perturb fuzzing state.
class DbBackend {
 public:
  virtual ~DbBackend() = default;

  virtual std::string_view name() const = 0;
  virtual const minidb::DialectProfile& profile() const = 0;

  /// The fault-injection catalog this backend's server arms. For forked
  /// backends this is a parent-side replica (the catalog is a pure function
  /// of the profile), used for reporting/metadata only.
  virtual const faults::BugEngine& bug_engine() const = 0;

  /// Script executed after each Reset with the fault oracle disarmed and
  /// the trace cleared (models fuzzing a pre-populated schema).
  void set_setup_script(std::string script) {
    setup_script_ = std::move(script);
  }
  const std::string& setup_script() const { return setup_script_; }

  /// Begins a fresh session: fresh server state, fault engine re-armed,
  /// run-coverage collection restarted, setup script applied. After a crash
  /// or hang this also respawns the server process where applicable.
  virtual void Reset() = 0;

  /// Executes one statement in the current session. `want_rows` requests
  /// rendered result rows (oracle queries); the fuzzing hot path passes
  /// false and skips row materialization/transfer.
  virtual StmtOutcome Execute(const sql::Statement& stmt, bool want_rows) = 0;

  /// Ends the session's run and returns its classified coverage map (valid
  /// until the next Reset). After a real crash this still holds whatever
  /// coverage the server reported before dying.
  virtual const cov::CoverageMap& FinishRun() = 0;

  /// Schema introspection for oracles: the first column of `table`, or
  /// nullopt when the table does not exist.
  virtual std::optional<std::string> FirstColumnOf(
      const std::string& table) = 0;

  /// True when the backend can no longer produce a working server (e.g. the
  /// forked spawn circuit breaker opened). Reset becomes a no-op and
  /// Execute reports errors; campaigns treat the worker as parked.
  virtual bool broken() const { return false; }

  /// Cumulative storage-layer counters for this backend's server (pool
  /// traffic, WAL volume, fsyncs). Zeros for mem-storage backends. Forked
  /// backends poll their child, so deaths may drop the tail since the last
  /// poll — this is observability, not accounting.
  virtual BackendStorageStats storage_stats() { return {}; }

  /// Oracle bracket (prefer the OracleSession guard). Nested brackets are
  /// reference-counted; only the outermost does work.
  void SnapshotForOracle() {
    if (oracle_depth_++ == 0) DoSnapshotForOracle();
  }
  void RestoreForOracle() {
    if (--oracle_depth_ == 0) DoRestoreForOracle();
  }

 protected:
  virtual void DoSnapshotForOracle() = 0;
  virtual void DoRestoreForOracle() = 0;
  bool in_oracle() const { return oracle_depth_ > 0; }

 private:
  std::string setup_script_;
  int oracle_depth_ = 0;
};

/// Exception-safe RAII form of the Snapshot/RestoreForOracle bracket: the
/// restore half (trace truncation, fault re-arm, coverage resume) runs even
/// if the oracle check throws.
class OracleSession {
 public:
  explicit OracleSession(DbBackend* backend) : backend_(backend) {
    backend_->SnapshotForOracle();
  }
  ~OracleSession() { backend_->RestoreForOracle(); }

  OracleSession(const OracleSession&) = delete;
  OracleSession& operator=(const OracleSession&) = delete;

 private:
  DbBackend* backend_;
};

/// Factory: builds the backend described by `options`.
std::unique_ptr<DbBackend> MakeBackend(const minidb::DialectProfile& profile,
                                       const BackendOptions& options);

namespace detail {
/// Canonical row rendering for StmtOutcome::rows ("v|v|...|"). One shared
/// definition so in-process execution and the forked child's wire encoding
/// can never drift apart.
std::string RenderRow(const minidb::Row& row);
}  // namespace detail

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_BACKEND_H_
