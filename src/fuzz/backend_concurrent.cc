#include "fuzz/backend_concurrent.h"

#include <utility>

#include "coverage/coverage.h"
#include "minidb/catalog.h"
#include "minidb/env.h"

namespace lego::fuzz {

ConcurrentBackend::ConcurrentBackend(const minidb::DialectProfile& profile,
                                     const BackendOptions& options)
    : InProcessBackend(profile, options), options_(options) {
  if (!options_.db_dir.empty()) {
    (void)minidb::Env::Posix()->CreateDir(options_.db_dir);
  }
}

ConcurrentBackend::~ConcurrentBackend() {
  if (!options_.db_dir.empty()) {
    (void)minidb::Env::Posix()->RemoveDirRecursive(options_.db_dir);
  }
}

void ConcurrentBackend::Reset() {
  if (!options_.db_dir.empty()) {
    minidb::Env* env = minidb::Env::Posix();
    (void)env->RemoveDirRecursive(options_.db_dir);
    (void)env->CreateDir(options_.db_dir);
  }
  InProcessBackend::Reset();
}

ConcurrentBackend::CaseResult ConcurrentBackend::RunCase(
    const MultiSessionCase& mcase, uint64_t seed) {
  CaseResult result;

  // Phase 1 — serial setup: schema/DCL/COPY statements run through the
  // ordinary in-process path (fault hook armed, coverage collecting).
  for (const sql::StmtPtr& stmt : mcase.setup.statements()) {
    StmtOutcome out = Execute(*stmt, /*want_rows=*/false);
    if (out.status == StmtOutcome::Status::kOk) {
      ++result.setup_executed;
    } else {
      ++result.setup_errors;
    }
    if (out.server_died()) {
      result.stats.crashed = true;
      result.stats.crash = out.crash;
      return result;
    }
  }

  // Phase 2 — concurrent sessions over the frozen catalog. All session
  // threads route probe hits into this thread's run map; the scheduler's
  // run token serializes them, so the map only ever has one writer.
  concurrency::ConcurrentEngine::Options opts;
  opts.sessions = static_cast<int>(mcase.sessions.size());
  opts.seed = seed;
  opts.planted_lost_update = options_.planted_lost_update;
  opts.planted_dirty_read = options_.planted_dirty_read;
  cov::CoverageMap* run_map = cov::CoverageRuntime::active_map();
  opts.on_thread_start = [run_map](int) {
    cov::CoverageRuntime::SetActiveMap(run_map);
  };

  std::vector<std::vector<const sql::Statement*>> scripts;
  scripts.reserve(mcase.sessions.size());
  for (const TestCase& session : mcase.sessions) {
    std::vector<const sql::Statement*> script;
    script.reserve(session.statements().size());
    for (const sql::StmtPtr& stmt : session.statements()) {
      script.push_back(stmt.get());
    }
    scripts.push_back(std::move(script));
  }

  minidb::Database& db = database();
  db.catalog().set_ddl_frozen(true);
  engine_ = std::make_unique<concurrency::ConcurrentEngine>(&db,
                                                            std::move(opts));
  result.stats = engine_->Run(scripts);
  db.catalog().set_ddl_frozen(false);

  // Paged mode: the session threads wrote the shared pager-backed heaps
  // outside the storage engine's per-statement WAL capture (thread-local,
  // disarmed on those threads). Re-establish durability by checkpointing
  // the final state — snapshot plus WAL rotation — once the interleaving is
  // fully resolved.
  minidb::StorageEngine* storage = storage_engine();
  if (storage != nullptr && !result.stats.crashed) {
    (void)storage->Checkpoint(&db);
  }
  return result;
}

const concurrency::History& ConcurrentBackend::history() const {
  static const concurrency::History kEmpty;
  return engine_ != nullptr ? engine_->history() : kEmpty;
}

}  // namespace lego::fuzz
