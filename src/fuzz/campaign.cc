#include "fuzz/campaign.h"

#include "faults/bug_catalog.h"

namespace lego::fuzz {

CampaignResult RunCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                           const CampaignOptions& options) {
  CampaignResult result;
  result.fuzzer = fuzzer->name();
  result.profile = harness->profile().name;

  const size_t total_bugs = harness->bug_engine().bugs().size();
  fuzzer->Prepare(harness);

  for (int i = 0; i < options.max_executions; ++i) {
    TestCase tc = fuzzer->Next();

    // Affinity accounting (Table II): adjacent distinct type pairs contained
    // in generated test cases.
    auto types = tc.TypeSequence();
    for (size_t t = 1; t < types.size(); ++t) {
      if (types[t - 1] == types[t]) continue;
      result.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
    }

    ExecResult exec = harness->Run(tc);
    ++result.executions;
    result.statement_errors += exec.errors;
    result.statements_executed += exec.executed;
    if (exec.crashed) {
      ++result.crashes_total;
      if (result.crash_hashes.insert(exec.crash.stack_hash).second) {
        result.bug_ids.insert(exec.crash.bug_id);
        ++result.bugs_by_component[exec.crash.component];
      }
    }
    fuzzer->OnResult(tc, exec);

    if (options.snapshot_every > 0 &&
        result.executions % options.snapshot_every == 0) {
      result.coverage_curve.emplace_back(result.executions,
                                         harness->CoveredEdges());
    }
    if (options.stop_when_all_bugs_found &&
        result.bug_ids.size() >= total_bugs) {
      break;
    }
    if (options.max_statements > 0 &&
        result.statements_executed + result.statement_errors >=
            options.max_statements) {
      break;
    }
  }

  result.edges = harness->CoveredEdges();
  if (result.coverage_curve.empty() ||
      result.coverage_curve.back().first != result.executions) {
    result.coverage_curve.emplace_back(result.executions, result.edges);
  }
  return result;
}

}  // namespace lego::fuzz
