#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "faults/bug_catalog.h"
#include "fuzz/checkpoint.h"
#include "fuzz/corpus.h"
#include "fuzz/state.h"

namespace lego::fuzz {
namespace {

constexpr uint32_t kWorkerTag = persist::ChunkTag("WRKR");
constexpr uint32_t kManifestTag = persist::ChunkTag("MANI");

/// End-of-campaign saves are retried this many times before giving up:
/// losing a whole campaign's final state to one transient write failure
/// (or one chaos-mode probability draw) is the wrong trade, and each
/// attempt is independent. Mid-run checkpoints are NOT retried — the next
/// cadence point writes a strictly newer one anyway.
constexpr int kFinalSaveAttempts = 8;

bool Persisting(const CampaignOptions& options) {
  return !options.state_dir.empty();
}

/// Serial persistence: one file holding fingerprint + result-so-far +
/// fuzzer + harness, replaced atomically at every checkpoint.
Status SaveSerialState(const CampaignOptions& options,
                       const CampaignResult& result, Fuzzer* fuzzer,
                       ExecutionHarness* harness) {
  std::error_code ec;
  std::filesystem::create_directories(options.state_dir, ec);
  persist::StateWriter w;
  WriteCampaignFingerprint(fuzzer->name(), harness->profile().name, options,
                           &w);
  LEGO_RETURN_IF_ERROR(SaveCampaignResult(result, &w));
  LEGO_RETURN_IF_ERROR(fuzzer->SaveState(&w));
  LEGO_RETURN_IF_ERROR(harness->SaveState(&w));
  return w.WriteFileAtomic(SerialStatePath(options.state_dir));
}

Status LoadSerialState(const CampaignOptions& options, CampaignResult* result,
                       Fuzzer* fuzzer, ExecutionHarness* harness) {
  LEGO_ASSIGN_OR_RETURN(
      persist::StateReader r,
      persist::StateReader::FromFile(SerialStatePath(options.state_dir)));
  LEGO_RETURN_IF_ERROR(VerifyCampaignFingerprint(
      fuzzer->name(), harness->profile().name, options, &r));
  LEGO_RETURN_IF_ERROR(LoadCampaignResult(&r, result));
  LEGO_RETURN_IF_ERROR(fuzzer->LoadState(&r));
  LEGO_RETURN_IF_ERROR(harness->LoadState(&r));
  return r.status();
}

/// The historical single-threaded loop. num_workers == 1 runs exactly this
/// code, so serial campaigns are bit-identical to the pre-parallel runner;
/// a resumed campaign re-enters the loop at i == restored executions with
/// every piece of fuzzer/harness state restored, so the remaining
/// iterations replay exactly what an uninterrupted run would have done.
CampaignResult RunSerialCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                                 const CampaignOptions& options) {
  CampaignResult result;
  result.fuzzer = fuzzer->name();
  result.profile = harness->profile().name;

  const size_t total_bugs = harness->bug_engine().bugs().size();
  fuzzer->Prepare(harness);

  const bool resumed = Persisting(options) && options.resume;
  if (resumed) {
    Status loaded = LoadSerialState(options, &result, fuzzer, harness);
    if (!loaded.ok()) {
      CampaignResult failed;
      failed.fuzzer = fuzzer->name();
      failed.profile = harness->profile().name;
      failed.state_status = std::move(loaded);
      return failed;
    }
    // The end-of-campaign flush appends an off-cadence curve point; if the
    // budget was raised and the campaign continues, drop it so the final
    // curve matches an uninterrupted run's exactly.
    if (result.executions < options.max_executions &&
        !result.coverage_curve.empty() &&
        result.coverage_curve.back().first == result.executions &&
        (options.snapshot_every <= 0 ||
         result.executions % options.snapshot_every != 0)) {
      result.coverage_curve.pop_back();
    }
  } else if (options.import_seeds != nullptr) {
    for (const TestCase& tc : *options.import_seeds) fuzzer->ImportSeed(tc);
  }

  // The uninterrupted run may have broken out of the loop early; a resume
  // of its state must not fuzz past that point, so re-derive the stop
  // decision from the restored tallies before executing anything.
  bool stopped =
      resumed &&
      ((options.stop_when_all_bugs_found &&
        result.bug_ids.size() >= total_bugs) ||
       (options.max_statements > 0 &&
        result.statements_executed + result.statement_errors >=
            options.max_statements));

  for (int i = result.executions; !stopped && i < options.max_executions;
       ++i) {
    if (options.stop_flag != nullptr &&
        options.stop_flag->load(std::memory_order_relaxed)) {
      result.stopped_early = true;
      break;
    }
    if (harness->backend().broken()) {
      std::fprintf(stderr,
                   "campaign: backend broken (spawn circuit open); stopping "
                   "after %d executions\n",
                   result.executions);
      break;
    }
    TestCase tc = fuzzer->Next();

    // Affinity accounting (Table II): adjacent distinct type pairs contained
    // in generated test cases.
    auto types = tc.TypeSequence();
    for (size_t t = 1; t < types.size(); ++t) {
      if (types[t - 1] == types[t]) continue;
      result.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
    }

    ExecResult exec = harness->Run(tc);
    ++result.executions;
    result.statement_errors += exec.errors;
    result.statements_executed += exec.executed;
    if (exec.crashed) {
      ++result.crashes_total;
      if (result.crash_hashes.insert(exec.crash.stack_hash).second) {
        result.bug_ids.insert(exec.crash.bug_id);
        ++result.bugs_by_component[exec.crash.component];
        result.captured_cases.push_back(tc.Clone());
        result.captured_crashes.push_back(exec.crash);
      }
    }
    if (exec.logic_bug) {
      ++result.logic_bugs_total;
      if (result.logic_fingerprints.insert(exec.logic.fingerprint).second) {
        result.captured_logic_cases.push_back(tc.Clone());
        result.captured_logic_bugs.push_back(exec.logic);
      }
    }
    fuzzer->OnResult(tc, exec);

    if (options.on_progress && options.progress_every > 0 &&
        result.executions % options.progress_every == 0) {
      options.on_progress(result.executions);
    }
    if (options.snapshot_every > 0 &&
        result.executions % options.snapshot_every == 0) {
      result.coverage_curve.emplace_back(result.executions,
                                         harness->CoveredEdges());
    }
    if (Persisting(options) && options.checkpoint_every > 0 &&
        result.executions % options.checkpoint_every == 0) {
      // Self-healing: a failed mid-run checkpoint costs only resume
      // granularity, never the campaign — warn, count, and let the next
      // cadence point write a newer state anyway.
      Status saved = SaveSerialState(options, result, fuzzer, harness);
      if (!saved.ok()) {
        ++result.checkpoints_failed;
        std::fprintf(stderr,
                     "campaign: checkpoint at %d executions failed (%s); "
                     "continuing\n",
                     result.executions, saved.ToString().c_str());
      }
    }
    if (options.stop_when_all_bugs_found &&
        result.bug_ids.size() >= total_bugs) {
      break;
    }
    if (options.max_statements > 0 &&
        result.statements_executed + result.statement_errors >=
            options.max_statements) {
      break;
    }
  }

  result.edges = harness->CoveredEdges();
  result.rules = harness->CoveredRules();
  result.storage = harness->backend().storage_stats();
  if (result.coverage_curve.empty() ||
      result.coverage_curve.back().first != result.executions) {
    result.coverage_curve.emplace_back(result.executions, result.edges);
  }
  result.fuzzer_stats = fuzzer->stats();
  result.fuzzer_stats.import_skipped = options.import_skipped;
  if (options.export_corpus) result.corpus_export = fuzzer->ExportCorpus();
  if (Persisting(options)) {
    Status saved = Status::OK();
    for (int attempt = 0; attempt < kFinalSaveAttempts; ++attempt) {
      saved = SaveSerialState(options, result, fuzzer, harness);
      if (saved.ok()) break;
    }
    if (!saved.ok() && result.state_status.ok()) {
      result.state_status = std::move(saved);
    }
  }
  return result;
}

/// Reusable round barrier: the last arriver runs `completion` while every
/// other worker is still blocked, then all are released together. This is
/// the only place parallel workers observe each other, which is what makes
/// merged results deterministic per (seed, workers, sync_every).
class RoundBarrier {
 public:
  explicit RoundBarrier(int count) : count_(count) {}

  void ArriveAndWait(const std::function<void()>& completion) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t my_phase = phase_;
    if (++waiting_ == count_) {
      completion();
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != my_phase; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int count_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
};

/// Removes per-worker scratch directories (`<db_dir>/w<N>`) under a paged
/// campaign's db_dir. Each worker wipes *inside* its own directory on every
/// Reset, but an abnormal exit (SIGKILL, test-runner timeout, crash in the
/// parent) leaves the last generation's directories behind; a follow-up
/// campaign reusing the same db_dir would inherit them. Swept before the
/// worker pool spawns — healing leftovers from any earlier run, including
/// one with a wider pool — and again at campaign teardown once every
/// backend has been destroyed.
void RemoveWorkerScratchDirs(const std::string& db_dir) {
  if (db_dir.empty()) return;
  namespace fsys = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fsys::directory_iterator(db_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 'w') continue;
    bool digits = true;
    for (size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        digits = false;
        break;
      }
    }
    if (!digits) continue;
    std::error_code rm_ec;
    fsys::remove_all(entry.path(), rm_ec);
  }
}

/// Everything one worker owns plus its tallies. Workers write only their
/// own slot during a round; barrier completions read all slots.
struct WorkerState {
  std::unique_ptr<Fuzzer> fuzzer;
  std::unique_ptr<ExecutionHarness> harness;
  int target = 0;  // this worker's share of max_executions
  int done = 0;

  int executions = 0;
  int crashes_total = 0;
  int statement_errors = 0;
  int statements_executed = 0;
  std::set<std::pair<int, int>> affinities;
  /// Locally-unique crashes by synthetic stack hash; the merge dedups
  /// across workers the same way the serial loop dedups across executions.
  std::map<uint64_t, minidb::CrashInfo> unique_crashes;
  /// First local test case per unique stack hash (triage capture).
  std::map<uint64_t, TestCase> crash_cases;

  int logic_bugs_total = 0;
  std::map<uint64_t, LogicBugInfo> unique_logic;
  std::map<uint64_t, TestCase> logic_cases;

  /// New-coverage test cases found this round, published at the barrier.
  std::vector<TestCase> pending_exports;
  uint64_t drain_cursor = 0;
};

/// Worker tallies round-trip. Only valid at the checkpoint barrier, where
/// pending_exports is empty (everything was published one barrier earlier)
/// and all drain cursors point at the end of the shared corpus — which is
/// why the shared corpus itself never needs to be serialized: a resumed
/// campaign starts it empty with cursors at zero.
Status SaveWorkerTallies(const WorkerState& s, persist::StateWriter* w) {
  if (!s.pending_exports.empty()) {
    return Status::Internal("checkpoint with unpublished exports");
  }
  w->BeginChunk(kWorkerTag);
  w->WriteI64(s.done);
  w->WriteI64(s.executions);
  w->WriteI64(s.crashes_total);
  w->WriteI64(s.statement_errors);
  w->WriteI64(s.statements_executed);
  w->WriteU64(s.affinities.size());
  for (const auto& [a, b] : s.affinities) {
    w->WriteI64(a);
    w->WriteI64(b);
  }
  w->WriteU64(s.unique_crashes.size());
  for (const auto& [hash, crash] : s.unique_crashes) {
    auto tc = s.crash_cases.find(hash);
    if (tc == s.crash_cases.end()) {
      return Status::Internal("crash without captured test case");
    }
    w->WriteU64(hash);
    w->WriteString(crash.bug_id);
    w->WriteString(crash.component);
    w->WriteString(crash.kind);
    w->WriteU64(crash.stack_hash);
    w->WriteString(crash.message);
    SaveTestCase(tc->second, w);
  }
  w->WriteI64(s.logic_bugs_total);
  w->WriteU64(s.unique_logic.size());
  for (const auto& [fp, info] : s.unique_logic) {
    auto tc = s.logic_cases.find(fp);
    if (tc == s.logic_cases.end()) {
      return Status::Internal("logic bug without captured test case");
    }
    w->WriteU64(fp);
    w->WriteString(info.check);
    w->WriteString(info.query);
    w->WriteString(info.detail);
    w->WriteU64(info.fingerprint);
    w->WriteU64(info.interleave_seed);
    w->WriteI64(info.sessions);
    SaveTestCase(tc->second, w);
  }
  w->EndChunk();
  return Status::OK();
}

Status LoadWorkerTallies(persist::StateReader* r, WorkerState* s) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kWorkerTag));
  s->done = static_cast<int>(r->ReadI64());
  s->executions = static_cast<int>(r->ReadI64());
  s->crashes_total = static_cast<int>(r->ReadI64());
  s->statement_errors = static_cast<int>(r->ReadI64());
  s->statements_executed = static_cast<int>(r->ReadI64());

  s->affinities.clear();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 16)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    int a = static_cast<int>(r->ReadI64());
    int b = static_cast<int>(r->ReadI64());
    s->affinities.insert({a, b});
  }

  s->unique_crashes.clear();
  s->crash_cases.clear();
  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    uint64_t hash = r->ReadU64();
    minidb::CrashInfo crash;
    crash.bug_id = r->ReadString();
    crash.component = r->ReadString();
    crash.kind = r->ReadString();
    crash.stack_hash = r->ReadU64();
    crash.message = r->ReadString();
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(r));
    s->unique_crashes.emplace(hash, std::move(crash));
    s->crash_cases.emplace(hash, std::move(tc));
  }

  s->logic_bugs_total = static_cast<int>(r->ReadI64());
  s->unique_logic.clear();
  s->logic_cases.clear();
  n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    uint64_t fp = r->ReadU64();
    LogicBugInfo info;
    info.check = r->ReadString();
    info.query = r->ReadString();
    info.detail = r->ReadString();
    info.fingerprint = r->ReadU64();
    info.interleave_seed = r->ReadU64();
    info.sessions = static_cast<int>(r->ReadI64());
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(r));
    s->unique_logic.emplace(fp, std::move(info));
    s->logic_cases.emplace(fp, std::move(tc));
  }

  s->pending_exports.clear();
  s->drain_cursor = 0;  // resumed campaigns restart with an empty corpus
  return r->ExitChunk();
}

CampaignResult RunParallelCampaign(Fuzzer* prototype,
                                   ExecutionHarness* harness,
                                   const CampaignOptions& options) {
  const int workers = options.num_workers;
  const int sync_every = std::max(1, options.sync_every);
  const bool persisting = Persisting(options);

  // Heal scratch dirs a previous abnormal exit left behind before any
  // worker claims its own.
  RemoveWorkerScratchDirs(harness->backend_options().db_dir);

  std::vector<WorkerState> states(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    states[w].fuzzer = prototype->CloneForWorker(w);
    if (states[w].fuzzer == nullptr) {
      // Prototype has no worker factory: degrade to the serial path.
      return RunSerialCampaign(prototype, harness, options);
    }
    // Same profile *and* backend: a forked-backend campaign gets one child
    // process per worker, all spawned here — before the worker threads
    // start, so the initial forks come from a single-threaded parent.
    // Paged storage gets a per-worker subdirectory so workers never share a
    // WAL/snapshot generation.
    BackendOptions worker_backend = harness->backend_options();
    if (!worker_backend.db_dir.empty()) {
      worker_backend.db_dir += "/w" + std::to_string(w);
    }
    states[w].harness = std::make_unique<ExecutionHarness>(
        harness->profile(), worker_backend);
    states[w].harness->set_setup_script(harness->setup_script());
    states[w].harness->set_rule_coverage(harness->rule_coverage());
    // Oracles are stateless (LogicOracle contract), so sharing the
    // prototype harness's instance across workers is safe.
    states[w].harness->set_logic_oracle(harness->logic_oracle());
  }

  cov::SharedCoverage shared_coverage;
  cov::SharedRuleCoverage shared_rules;
  SharedCorpus shared_corpus(std::max(8, workers));
  for (auto& s : states) {
    s.harness->set_shared_coverage(&shared_coverage);
    s.harness->set_shared_rule_coverage(&shared_rules);
  }

  // Deterministic budget split: worker w executes
  // max_executions / workers (+1 for the first `remainder` workers).
  const int base = options.max_executions / workers;
  const int remainder = options.max_executions % workers;
  for (int w = 0; w < workers; ++w) {
    states[w].target = base + (w < remainder ? 1 : 0);
  }

  const size_t total_bugs = harness->bug_engine().bugs().size();

  CampaignResult merged;
  merged.fuzzer = prototype->name();
  merged.profile = harness->profile().name;

  auto fail = [&](Status why) {
    CampaignResult failed;
    failed.fuzzer = merged.fuzzer;
    failed.profile = merged.profile;
    failed.state_status = std::move(why);
    return failed;
  };

  // Resume preamble (single-threaded): locate the newest complete
  // checkpoint via LATEST and restore the merged round state. Per-worker
  // files are loaded later, by each worker thread after Prepare().
  int start_round = 0;
  int next_snapshot = options.snapshot_every;
  int next_checkpoint = options.checkpoint_every;
  bool resumed = false;
  std::string resume_dir;      // directory worker files are loaded from
  std::string prev_ckpt_dir;   // last complete checkpoint (cleanup target)
  if (persisting && options.resume) {
    // Self-healing resume: skip over torn/checksum-failing checkpoints
    // (e.g. the process died mid-checkpoint and LATEST is stale) and fall
    // back to the newest one a resume can actually load.
    std::vector<std::string> ckpt_warnings;
    int rejected = 0;
    auto latest = LocateUsableCheckpoint(options.state_dir, workers,
                                         &ckpt_warnings, &rejected);
    for (const std::string& warning : ckpt_warnings) {
      std::fprintf(stderr, "campaign: %s\n", warning.c_str());
    }
    if (!latest.ok()) return fail(latest.status());
    merged.checkpoint_fallbacks = rejected;
    std::filesystem::path dir =
        std::filesystem::path(options.state_dir) / *latest;
    auto opened = persist::StateReader::FromFile(ManifestPath(dir.string()));
    if (!opened.ok()) return fail(opened.status());
    persist::StateReader r = std::move(*opened);
    Status st = VerifyCampaignFingerprint(merged.fuzzer, merged.profile,
                                          options, &r);
    if (!st.ok()) return fail(st);
    st = r.EnterChunk(kManifestTag);
    if (!st.ok()) return fail(st);
    const bool complete = r.ReadBool();
    FuzzerStats stats;
    if (complete) {
      stats.corpus_seeds = r.ReadU64();
      stats.affinity_pairs = r.ReadU64();
      stats.sequences_total = r.ReadU64();
      stats.sequences_dropped = r.ReadU64();
    }
    start_round = static_cast<int>(r.ReadI64());
    next_snapshot = static_cast<int>(r.ReadI64());
    next_checkpoint = static_cast<int>(r.ReadI64());
    uint64_t n = r.ReadU64();
    if (!r.CheckCount(n, 16)) return fail(r.status());
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      int execs = static_cast<int>(r.ReadI64());
      size_t edges = static_cast<size_t>(r.ReadU64());
      merged.coverage_curve.emplace_back(execs, edges);
    }
    st = r.ExitChunk();
    if (!st.ok()) return fail(st);
    st = shared_coverage.LoadState(&r);
    if (!st.ok()) return fail(st);
    st = shared_rules.LoadState(&r);
    if (!st.ok()) return fail(st);
    if (complete) {
      CampaignResult done;
      st = LoadCampaignResult(&r, &done);
      if (!st.ok()) return fail(st);
      if (done.executions >= options.max_executions) {
        // The campaign already finished under this (or a larger) budget:
        // hand back its recorded result without spawning workers.
        done.fuzzer_stats = stats;
        done.checkpoint_fallbacks = rejected;
        return done;
      }
      // Budget was raised past the recorded run: fall through and keep
      // fuzzing from the stored worker states.
    }
    resumed = true;
    resume_dir = dir.string();
    prev_ckpt_dir = *latest;
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> finished{false};
  std::atomic<bool> abort{false};
  std::vector<Status> worker_status(static_cast<size_t>(workers),
                                    Status::OK());
  RoundBarrier barrier(workers);

  // Runs single-threaded at every barrier, while all workers are parked:
  // publish discoveries in worker order, then take the global stop / curve
  // decisions every worker will observe identically next round.
  auto completion = [&] {
    for (int w = 0; w < workers; ++w) {
      for (TestCase& tc : states[w].pending_exports) {
        shared_corpus.Publish(w, std::move(tc));
      }
      states[w].pending_exports.clear();
    }

    // Self-healing: a worker whose backend broke permanently (spawn
    // circuit open) can never spend its remaining budget. Reclaim it and
    // hand it to the surviving workers — single-threaded here, while all
    // workers are parked at the barrier, so plain target/done writes are
    // safe and every worker observes the new split next round.
    int64_t orphaned = 0;
    int live = 0;
    for (WorkerState& s : states) {
      const bool parked = s.harness->backend().broken();
      if (parked && s.target > s.done) {
        orphaned += s.target - s.done;
        s.target = s.done;
      }
      if (!parked) ++live;
    }
    if (orphaned > 0 && live > 0) {
      std::fprintf(stderr,
                   "campaign: redistributing %lld executions from parked "
                   "worker(s) across %d live worker(s)\n",
                   static_cast<long long>(orphaned), live);
      const int64_t share = orphaned / live;
      int64_t extra = orphaned % live;
      for (WorkerState& s : states) {
        if (s.harness->backend().broken()) continue;
        s.target += static_cast<int>(share + (extra > 0 ? 1 : 0));
        if (extra > 0) --extra;
      }
    }

    int total_execs = 0;
    int64_t total_stmts = 0;
    for (const WorkerState& s : states) {
      total_execs += s.executions;
      total_stmts += s.statements_executed + s.statement_errors;
    }
    if (options.on_progress) options.on_progress(total_execs);
    if (options.stop_flag != nullptr &&
        options.stop_flag->load(std::memory_order_relaxed)) {
      merged.stopped_early = true;
      stop.store(true);
    }
    if (options.stop_when_all_bugs_found) {
      std::set<std::string> bugs;
      for (const WorkerState& s : states) {
        for (const auto& [hash, crash] : s.unique_crashes) {
          bugs.insert(crash.bug_id);
        }
      }
      if (bugs.size() >= total_bugs) stop.store(true);
    }
    if (options.max_statements > 0 && total_stmts >= options.max_statements) {
      stop.store(true);
    }
    if (options.snapshot_every > 0 && total_execs > 0 &&
        total_execs >= next_snapshot) {
      merged.coverage_curve.emplace_back(total_execs,
                                         shared_coverage.CoveredEdges());
      next_snapshot =
          (total_execs / options.snapshot_every + 1) * options.snapshot_every;
    }

    // The campaign is over when every live worker has spent its (possibly
    // redistributed) target; parked workers are excluded, so a campaign
    // with a permanently dead worker still terminates.
    bool all_done = true;
    for (const WorkerState& s : states) {
      if (s.harness->backend().broken()) continue;
      if (s.done < s.target) {
        all_done = false;
        break;
      }
    }
    if (all_done || stop.load()) finished.store(true);
  };

  // One state file per worker; only callable while the worker threads are
  // parked (checkpoint barrier) or joined (final save).
  auto save_worker_files = [&](const std::filesystem::path& dir) -> Status {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("cannot create checkpoint dir " + dir.string());
    }
    for (int w = 0; w < workers; ++w) {
      persist::StateWriter sw;
      WriteCampaignFingerprint(merged.fuzzer, merged.profile, options, &sw);
      LEGO_RETURN_IF_ERROR(SaveWorkerTallies(states[w], &sw));
      LEGO_RETURN_IF_ERROR(states[w].fuzzer->SaveState(&sw));
      LEGO_RETURN_IF_ERROR(states[w].harness->SaveState(&sw));
      LEGO_RETURN_IF_ERROR(
          sw.WriteFileAtomic(WorkerStatePath(dir.string(), w)));
    }
    return Status::OK();
  };

  // Writes one complete checkpoint directory, then flips LATEST. Runs only
  // inside the second (post-drain) barrier, where no worker holds
  // unpublished exports and every drain cursor is at the corpus end.
  auto write_checkpoint = [&](int round, int advanced_checkpoint) -> Status {
    namespace fsys = std::filesystem;
    const std::string name = CheckpointDirName(round);
    const fsys::path dir = fsys::path(options.state_dir) / name;
    LEGO_RETURN_IF_ERROR(save_worker_files(dir));
    persist::StateWriter mw;
    WriteCampaignFingerprint(merged.fuzzer, merged.profile, options, &mw);
    mw.BeginChunk(kManifestTag);
    mw.WriteBool(false);  // mid-run
    mw.WriteI64(round + 1);
    mw.WriteI64(next_snapshot);
    mw.WriteI64(advanced_checkpoint);
    mw.WriteU64(merged.coverage_curve.size());
    for (const auto& [execs, edges] : merged.coverage_curve) {
      mw.WriteI64(execs);
      mw.WriteU64(edges);
    }
    mw.EndChunk();
    LEGO_RETURN_IF_ERROR(shared_coverage.SaveState(&mw));
    LEGO_RETURN_IF_ERROR(shared_rules.SaveState(&mw));
    LEGO_RETURN_IF_ERROR(mw.WriteFileAtomic(ManifestPath(dir.string())));
    LEGO_RETURN_IF_ERROR(WriteLatestPointer(options.state_dir, name));
    if (!prev_ckpt_dir.empty() && prev_ckpt_dir != name) {
      std::error_code ec;
      fsys::remove_all(fsys::path(options.state_dir) / prev_ckpt_dir, ec);
    }
    prev_ckpt_dir = name;
    return Status::OK();
  };

  int ckpt_round = start_round;  // advanced once per round, single-threaded
  auto ckpt_completion = [&] {
    const int round = ckpt_round++;
    if (abort.load() || options.checkpoint_every <= 0) return;
    int total_execs = 0;
    for (const WorkerState& s : states) total_execs += s.executions;
    if (total_execs < next_checkpoint) return;
    const int advanced =
        (total_execs / options.checkpoint_every + 1) *
        options.checkpoint_every;
    Status saved = write_checkpoint(round, advanced);
    if (saved.ok()) {
      next_checkpoint = advanced;
    } else {
      // Self-healing: keep fuzzing and retry at the next barrier (the
      // cadence point is deliberately not advanced), instead of poisoning
      // state_status over one failed mid-run write.
      ++merged.checkpoints_failed;
      std::fprintf(stderr,
                   "campaign: checkpoint at round %d failed (%s); will retry "
                   "at the next barrier\n",
                   round, saved.ToString().c_str());
    }
  };

  auto worker_fn = [&](int w) {
    WorkerState& st = states[w];
    st.fuzzer->Prepare(st.harness.get());
    if (resumed) {
      Status loaded = [&]() -> Status {
        LEGO_ASSIGN_OR_RETURN(
            persist::StateReader r,
            persist::StateReader::FromFile(WorkerStatePath(resume_dir, w)));
        LEGO_RETURN_IF_ERROR(VerifyCampaignFingerprint(
            merged.fuzzer, merged.profile, options, &r));
        LEGO_RETURN_IF_ERROR(LoadWorkerTallies(&r, &st));
        LEGO_RETURN_IF_ERROR(st.fuzzer->LoadState(&r));
        return st.harness->LoadState(&r);
      }();
      if (!loaded.ok()) {
        worker_status[static_cast<size_t>(w)] = std::move(loaded);
        abort.store(true);
        stop.store(true);
      }
      // Re-derive the sticky stop flag from restored tallies before the
      // first batch (the flag is derived state, never serialized). Runs on
      // every resume so all workers attend the same barrier sequence.
      barrier.ArriveAndWait(completion);
    } else if (options.import_seeds != nullptr) {
      for (const TestCase& tc : *options.import_seeds) {
        st.fuzzer->ImportSeed(tc);
      }
    }
    while (!finished.load()) {
      // A parked worker (backend's spawn circuit open) keeps attending
      // barriers — the barrier counts all workers — but runs no batches;
      // its remaining budget is redistributed by the completion handler.
      const bool parked = st.harness->backend().broken();
      const int batch =
          (stop.load() || parked)
              ? 0
              : std::max(0, std::min(sync_every, st.target - st.done));
      for (int i = 0; i < batch; ++i) {
        TestCase tc = st.fuzzer->Next();

        auto types = tc.TypeSequence();
        for (size_t t = 1; t < types.size(); ++t) {
          if (types[t - 1] == types[t]) continue;
          st.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
        }

        ExecResult exec = st.harness->Run(tc);
        ++st.executions;
        st.statement_errors += exec.errors;
        st.statements_executed += exec.executed;
        if (exec.crashed) {
          ++st.crashes_total;
          if (st.unique_crashes.emplace(exec.crash.stack_hash, exec.crash)
                  .second) {
            st.crash_cases.emplace(exec.crash.stack_hash, tc.Clone());
          }
        }
        if (exec.logic_bug) {
          ++st.logic_bugs_total;
          if (st.unique_logic.emplace(exec.logic.fingerprint, exec.logic)
                  .second) {
            st.logic_cases.emplace(exec.logic.fingerprint, tc.Clone());
          }
        }
        st.fuzzer->OnResult(tc, exec);
        // Export on *local* new coverage (either signal): the decision
        // depends only on this worker's own history, never on cross-worker
        // timing.
        if (exec.new_coverage || exec.new_rules) {
          st.pending_exports.push_back(tc.Clone());
        }
      }
      st.done += batch;

      barrier.ArriveAndWait(completion);

      // Adopt everything other workers published up to this barrier. Every
      // worker drains the same prefix in the same order, and nothing new is
      // published until all drains finish (publishing happens only inside
      // the next completion, which waits for all arrivals).
      std::vector<TestCase> imported;
      shared_corpus.DrainNew(w, &st.drain_cursor, &imported);
      for (const TestCase& tc : imported) st.fuzzer->ImportSeed(tc);

      // Second barrier: checkpoints must observe fully drained cursors and
      // empty export buffers, which is only true after every worker's drain.
      if (persisting) barrier.ArriveAndWait(ckpt_completion);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  if (abort.load()) {
    for (const Status& s : worker_status) {
      if (!s.ok()) return fail(s);
    }
    return fail(Status::Internal("campaign aborted"));
  }

  // Worker files for the final checkpoint must be written before the merge
  // below moves captured test cases out of the worker states; the curve is
  // snapshotted here too, before the end-of-campaign flush point, so a
  // budget-raising resume continues with an uninterrupted-identical curve.
  Status final_workers_saved = Status::OK();
  std::vector<std::pair<int, size_t>> curve_at_join;
  const std::string final_name = "ckpt_final";
  if (persisting) {
    for (int attempt = 0; attempt < kFinalSaveAttempts; ++attempt) {
      final_workers_saved = save_worker_files(
          std::filesystem::path(options.state_dir) / final_name);
      if (final_workers_saved.ok()) break;
    }
    curve_at_join = merged.coverage_curve;
  }

  // Final merge in worker order (worker order only affects which duplicate
  // crash "wins" attribution, and duplicates carry identical payloads; the
  // captured repro for a hash is the first worker's, deterministically).
  for (int w = 0; w < workers; ++w) {
    WorkerState& s = states[w];
    merged.executions += s.executions;
    merged.crashes_total += s.crashes_total;
    merged.statement_errors += s.statement_errors;
    merged.statements_executed += s.statements_executed;
    merged.affinities.insert(s.affinities.begin(), s.affinities.end());
    for (const auto& [hash, crash] : s.unique_crashes) {
      if (merged.crash_hashes.insert(hash).second) {
        merged.bug_ids.insert(crash.bug_id);
        ++merged.bugs_by_component[crash.component];
        merged.captured_cases.push_back(std::move(s.crash_cases.at(hash)));
        merged.captured_crashes.push_back(crash);
      }
    }
    merged.logic_bugs_total += s.logic_bugs_total;
    for (const auto& [fp, info] : s.unique_logic) {
      if (merged.logic_fingerprints.insert(fp).second) {
        merged.captured_logic_cases.push_back(std::move(s.logic_cases.at(fp)));
        merged.captured_logic_bugs.push_back(info);
      }
    }
    if (s.harness->backend().broken()) ++merged.workers_parked;
    merged.storage.Add(s.harness->backend().storage_stats());
    FuzzerStats fs = s.fuzzer->stats();
    merged.fuzzer_stats.corpus_seeds += fs.corpus_seeds;
    merged.fuzzer_stats.affinity_pairs += fs.affinity_pairs;
    merged.fuzzer_stats.sequences_total += fs.sequences_total;
    merged.fuzzer_stats.sequences_dropped += fs.sequences_dropped;
    if (options.export_corpus) {
      std::vector<TestCase> exported = s.fuzzer->ExportCorpus();
      for (TestCase& tc : exported) {
        merged.corpus_export.push_back(std::move(tc));
      }
    }
  }
  merged.fuzzer_stats.import_skipped = options.import_skipped;
  merged.edges = shared_coverage.CoveredEdges();
  merged.rules = shared_rules.CoveredRules();
  if (merged.coverage_curve.empty() ||
      merged.coverage_curve.back().first != merged.executions) {
    merged.coverage_curve.emplace_back(merged.executions, merged.edges);
  }

  if (persisting) {
    // The complete checkpoint is both the recorded result (read back by a
    // same-budget resume and by corpus_cli) and a full mid-run-style state
    // (worker files + round cursor), so a later budget-raising resume can
    // keep fuzzing from it.
    auto save_final_manifest = [&]() -> Status {
      LEGO_RETURN_IF_ERROR(final_workers_saved);
      namespace fsys = std::filesystem;
      const fsys::path dir = fsys::path(options.state_dir) / final_name;
      persist::StateWriter mw;
      WriteCampaignFingerprint(merged.fuzzer, merged.profile, options, &mw);
      mw.BeginChunk(kManifestTag);
      mw.WriteBool(true);  // complete
      mw.WriteU64(merged.fuzzer_stats.corpus_seeds);
      mw.WriteU64(merged.fuzzer_stats.affinity_pairs);
      mw.WriteU64(merged.fuzzer_stats.sequences_total);
      mw.WriteU64(merged.fuzzer_stats.sequences_dropped);
      mw.WriteI64(ckpt_round);  // round_next for a future budget extension
      mw.WriteI64(next_snapshot);
      mw.WriteI64(next_checkpoint);
      mw.WriteU64(curve_at_join.size());
      for (const auto& [execs, edges] : curve_at_join) {
        mw.WriteI64(execs);
        mw.WriteU64(edges);
      }
      mw.EndChunk();
      LEGO_RETURN_IF_ERROR(shared_coverage.SaveState(&mw));
      LEGO_RETURN_IF_ERROR(shared_rules.SaveState(&mw));
      LEGO_RETURN_IF_ERROR(SaveCampaignResult(merged, &mw));
      LEGO_RETURN_IF_ERROR(mw.WriteFileAtomic(ManifestPath(dir.string())));
      LEGO_RETURN_IF_ERROR(WriteLatestPointer(options.state_dir, final_name));
      if (!prev_ckpt_dir.empty() && prev_ckpt_dir != final_name) {
        std::error_code ec;
        fsys::remove_all(fsys::path(options.state_dir) / prev_ckpt_dir, ec);
      }
      return Status::OK();
    };
    Status saved = Status::OK();
    for (int attempt = 0; attempt < kFinalSaveAttempts; ++attempt) {
      saved = save_final_manifest();
      if (saved.ok()) break;
    }
    if (!saved.ok() && merged.state_status.ok()) {
      merged.state_status = std::move(saved);
    }
  }

  // Teardown: release every worker backend (child processes, open WAL
  // handles), then sweep the scratch directories they ran in.
  const std::string scratch_root = harness->backend_options().db_dir;
  states.clear();
  RemoveWorkerScratchDirs(scratch_root);
  return merged;
}

}  // namespace

CampaignResult RunCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                           const CampaignOptions& options) {
  if (options.num_workers <= 1) {
    return RunSerialCampaign(fuzzer, harness, options);
  }
  return RunParallelCampaign(fuzzer, harness, options);
}

}  // namespace lego::fuzz
