#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "faults/bug_catalog.h"
#include "fuzz/corpus.h"

namespace lego::fuzz {
namespace {

/// The historical single-threaded loop. num_workers == 1 runs exactly this
/// code, so serial campaigns are bit-identical to the pre-parallel runner.
CampaignResult RunSerialCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                                 const CampaignOptions& options) {
  CampaignResult result;
  result.fuzzer = fuzzer->name();
  result.profile = harness->profile().name;

  const size_t total_bugs = harness->bug_engine().bugs().size();
  fuzzer->Prepare(harness);

  for (int i = 0; i < options.max_executions; ++i) {
    TestCase tc = fuzzer->Next();

    // Affinity accounting (Table II): adjacent distinct type pairs contained
    // in generated test cases.
    auto types = tc.TypeSequence();
    for (size_t t = 1; t < types.size(); ++t) {
      if (types[t - 1] == types[t]) continue;
      result.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
    }

    ExecResult exec = harness->Run(tc);
    ++result.executions;
    result.statement_errors += exec.errors;
    result.statements_executed += exec.executed;
    if (exec.crashed) {
      ++result.crashes_total;
      if (result.crash_hashes.insert(exec.crash.stack_hash).second) {
        result.bug_ids.insert(exec.crash.bug_id);
        ++result.bugs_by_component[exec.crash.component];
        result.captured_cases.push_back(tc.Clone());
        result.captured_crashes.push_back(exec.crash);
      }
    }
    if (exec.logic_bug) {
      ++result.logic_bugs_total;
      if (result.logic_fingerprints.insert(exec.logic.fingerprint).second) {
        result.captured_logic_cases.push_back(tc.Clone());
        result.captured_logic_bugs.push_back(exec.logic);
      }
    }
    fuzzer->OnResult(tc, exec);

    if (options.snapshot_every > 0 &&
        result.executions % options.snapshot_every == 0) {
      result.coverage_curve.emplace_back(result.executions,
                                         harness->CoveredEdges());
    }
    if (options.stop_when_all_bugs_found &&
        result.bug_ids.size() >= total_bugs) {
      break;
    }
    if (options.max_statements > 0 &&
        result.statements_executed + result.statement_errors >=
            options.max_statements) {
      break;
    }
  }

  result.edges = harness->CoveredEdges();
  if (result.coverage_curve.empty() ||
      result.coverage_curve.back().first != result.executions) {
    result.coverage_curve.emplace_back(result.executions, result.edges);
  }
  return result;
}

/// Reusable round barrier: the last arriver runs `completion` while every
/// other worker is still blocked, then all are released together. This is
/// the only place parallel workers observe each other, which is what makes
/// merged results deterministic per (seed, workers, sync_every).
class RoundBarrier {
 public:
  explicit RoundBarrier(int count) : count_(count) {}

  void ArriveAndWait(const std::function<void()>& completion) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t my_phase = phase_;
    if (++waiting_ == count_) {
      completion();
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != my_phase; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int count_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
};

/// Everything one worker owns plus its tallies. Workers write only their
/// own slot during a round; barrier completions read all slots.
struct WorkerState {
  std::unique_ptr<Fuzzer> fuzzer;
  std::unique_ptr<ExecutionHarness> harness;
  int target = 0;  // this worker's share of max_executions
  int done = 0;

  int executions = 0;
  int crashes_total = 0;
  int statement_errors = 0;
  int statements_executed = 0;
  std::set<std::pair<int, int>> affinities;
  /// Locally-unique crashes by synthetic stack hash; the merge dedups
  /// across workers the same way the serial loop dedups across executions.
  std::map<uint64_t, minidb::CrashInfo> unique_crashes;
  /// First local test case per unique stack hash (triage capture).
  std::map<uint64_t, TestCase> crash_cases;

  int logic_bugs_total = 0;
  std::map<uint64_t, LogicBugInfo> unique_logic;
  std::map<uint64_t, TestCase> logic_cases;

  /// New-coverage test cases found this round, published at the barrier.
  std::vector<TestCase> pending_exports;
  uint64_t drain_cursor = 0;
};

CampaignResult RunParallelCampaign(Fuzzer* prototype,
                                   ExecutionHarness* harness,
                                   const CampaignOptions& options) {
  const int workers = options.num_workers;
  const int sync_every = std::max(1, options.sync_every);

  std::vector<WorkerState> states(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    states[w].fuzzer = prototype->CloneForWorker(w);
    if (states[w].fuzzer == nullptr) {
      // Prototype has no worker factory: degrade to the serial path.
      return RunSerialCampaign(prototype, harness, options);
    }
    // Same profile *and* backend: a forked-backend campaign gets one child
    // process per worker, all spawned here — before the worker threads
    // start, so the initial forks come from a single-threaded parent.
    states[w].harness = std::make_unique<ExecutionHarness>(
        harness->profile(), harness->backend_options());
    states[w].harness->set_setup_script(harness->setup_script());
    // Oracles are stateless (LogicOracle contract), so sharing the
    // prototype harness's instance across workers is safe.
    states[w].harness->set_logic_oracle(harness->logic_oracle());
  }

  cov::SharedCoverage shared_coverage;
  SharedCorpus shared_corpus(std::max(8, workers));
  for (auto& s : states) s.harness->set_shared_coverage(&shared_coverage);

  // Deterministic budget split: worker w executes
  // max_executions / workers (+1 for the first `remainder` workers).
  const int base = options.max_executions / workers;
  const int remainder = options.max_executions % workers;
  int max_target = 0;
  for (int w = 0; w < workers; ++w) {
    states[w].target = base + (w < remainder ? 1 : 0);
    max_target = std::max(max_target, states[w].target);
  }
  const int rounds = (max_target + sync_every - 1) / sync_every;

  const size_t total_bugs = harness->bug_engine().bugs().size();

  CampaignResult merged;
  merged.fuzzer = prototype->name();
  merged.profile = harness->profile().name;

  std::atomic<bool> stop{false};
  int next_snapshot = options.snapshot_every;
  RoundBarrier barrier(workers);

  // Runs single-threaded at every barrier, while all workers are parked:
  // publish discoveries in worker order, then take the global stop / curve
  // decisions every worker will observe identically next round.
  auto completion = [&] {
    for (int w = 0; w < workers; ++w) {
      for (TestCase& tc : states[w].pending_exports) {
        shared_corpus.Publish(w, std::move(tc));
      }
      states[w].pending_exports.clear();
    }

    int total_execs = 0;
    int64_t total_stmts = 0;
    for (const WorkerState& s : states) {
      total_execs += s.executions;
      total_stmts += s.statements_executed + s.statement_errors;
    }
    if (options.stop_when_all_bugs_found) {
      std::set<std::string> bugs;
      for (const WorkerState& s : states) {
        for (const auto& [hash, crash] : s.unique_crashes) {
          bugs.insert(crash.bug_id);
        }
      }
      if (bugs.size() >= total_bugs) stop.store(true);
    }
    if (options.max_statements > 0 && total_stmts >= options.max_statements) {
      stop.store(true);
    }
    if (options.snapshot_every > 0 && total_execs > 0 &&
        total_execs >= next_snapshot) {
      merged.coverage_curve.emplace_back(total_execs,
                                         shared_coverage.CoveredEdges());
      next_snapshot =
          (total_execs / options.snapshot_every + 1) * options.snapshot_every;
    }
  };

  auto worker_fn = [&](int w) {
    WorkerState& st = states[w];
    st.fuzzer->Prepare(st.harness.get());
    for (int r = 0; r < rounds; ++r) {
      const int batch =
          stop.load() ? 0 : std::min(sync_every, st.target - st.done);
      for (int i = 0; i < batch; ++i) {
        TestCase tc = st.fuzzer->Next();

        auto types = tc.TypeSequence();
        for (size_t t = 1; t < types.size(); ++t) {
          if (types[t - 1] == types[t]) continue;
          st.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
        }

        ExecResult exec = st.harness->Run(tc);
        ++st.executions;
        st.statement_errors += exec.errors;
        st.statements_executed += exec.executed;
        if (exec.crashed) {
          ++st.crashes_total;
          if (st.unique_crashes.emplace(exec.crash.stack_hash, exec.crash)
                  .second) {
            st.crash_cases.emplace(exec.crash.stack_hash, tc.Clone());
          }
        }
        if (exec.logic_bug) {
          ++st.logic_bugs_total;
          if (st.unique_logic.emplace(exec.logic.fingerprint, exec.logic)
                  .second) {
            st.logic_cases.emplace(exec.logic.fingerprint, tc.Clone());
          }
        }
        st.fuzzer->OnResult(tc, exec);
        // Export on *local* new coverage: the decision depends only on this
        // worker's own history, never on cross-worker timing.
        if (exec.new_coverage) st.pending_exports.push_back(tc.Clone());
      }
      st.done += batch;

      barrier.ArriveAndWait(completion);

      // Adopt everything other workers published up to this barrier. Every
      // worker drains the same prefix in the same order, and nothing new is
      // published until all drains finish (publishing happens only inside
      // the next completion, which waits for all arrivals).
      std::vector<TestCase> imported;
      shared_corpus.DrainNew(w, &st.drain_cursor, &imported);
      for (const TestCase& tc : imported) st.fuzzer->ImportSeed(tc);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();

  // Final merge in worker order (worker order only affects which duplicate
  // crash "wins" attribution, and duplicates carry identical payloads; the
  // captured repro for a hash is the first worker's, deterministically).
  for (int w = 0; w < workers; ++w) {
    WorkerState& s = states[w];
    merged.executions += s.executions;
    merged.crashes_total += s.crashes_total;
    merged.statement_errors += s.statement_errors;
    merged.statements_executed += s.statements_executed;
    merged.affinities.insert(s.affinities.begin(), s.affinities.end());
    for (const auto& [hash, crash] : s.unique_crashes) {
      if (merged.crash_hashes.insert(hash).second) {
        merged.bug_ids.insert(crash.bug_id);
        ++merged.bugs_by_component[crash.component];
        merged.captured_cases.push_back(std::move(s.crash_cases.at(hash)));
        merged.captured_crashes.push_back(crash);
      }
    }
    merged.logic_bugs_total += s.logic_bugs_total;
    for (const auto& [fp, info] : s.unique_logic) {
      if (merged.logic_fingerprints.insert(fp).second) {
        merged.captured_logic_cases.push_back(std::move(s.logic_cases.at(fp)));
        merged.captured_logic_bugs.push_back(info);
      }
    }
  }
  merged.edges = shared_coverage.CoveredEdges();
  if (merged.coverage_curve.empty() ||
      merged.coverage_curve.back().first != merged.executions) {
    merged.coverage_curve.emplace_back(merged.executions, merged.edges);
  }
  return merged;
}

}  // namespace

CampaignResult RunCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                           const CampaignOptions& options) {
  if (options.num_workers <= 1) {
    return RunSerialCampaign(fuzzer, harness, options);
  }
  return RunParallelCampaign(fuzzer, harness, options);
}

}  // namespace lego::fuzz
