#ifndef LEGO_FUZZ_BACKEND_CONCURRENT_H_
#define LEGO_FUZZ_BACKEND_CONCURRENT_H_

#include <memory>

#include "concurrency/engine.h"
#include "concurrency/history.h"
#include "fuzz/backend_inproc.h"
#include "fuzz/multi_case.h"

namespace lego::fuzz {

/// In-process backend that executes N-session cases concurrently: the setup
/// script of a MultiSessionCase runs serially (DDL allowed), then the
/// catalog is frozen and one thread per session drives the shared engine
/// under the seeded epoch scheduler with strict-2PL row locking. Everything
/// a serial harness needs (Reset / Execute / oracle bracket / coverage
/// scope) is inherited from InProcessBackend, so single-session execution
/// through this backend is the ordinary serial path.
///
/// Storage note (PR 9): with StorageKind::kPaged the session threads share
/// the same pager-backed heaps as the serial phases — page latches inside
/// the ConcurrentEngine serialize their page-cache traffic beneath row 2PL.
/// The storage engine's per-statement WAL capture is thread-local and stays
/// disarmed on session threads, and its transaction hooks are shadowed by
/// the engine's TxnHook, so the concurrent phase is made durable by a
/// checkpoint (snapshot + WAL rotation) when the case finishes instead of
/// per-statement logging. The backend owns its per-worker on-disk directory
/// lifecycle when `db_dir` is configured: created up front, wiped on every
/// Reset, removed on destruction.
class ConcurrentBackend : public InProcessBackend {
 public:
  ConcurrentBackend(const minidb::DialectProfile& profile,
                    const BackendOptions& options);
  ~ConcurrentBackend() override;

  std::string_view name() const override { return "concurrent"; }

  void Reset() override;

  struct CaseResult {
    concurrency::ConcurrentEngine::RunStats stats;
    int setup_executed = 0;
    int setup_errors = 0;
  };

  /// Runs one split case under interleaving seed `seed`. Caller must have
  /// called Reset() first (fresh engine state + backend setup script); the
  /// case's own setup statements then run serially before the session
  /// threads start. The history stays valid until the next RunCase/Reset.
  CaseResult RunCase(const MultiSessionCase& mcase, uint64_t seed);

  const concurrency::History& history() const;

 private:
  BackendOptions options_;
  /// Engine of the most recent RunCase (holds the history the isolation
  /// oracle reads).
  std::unique_ptr<concurrency::ConcurrentEngine> engine_;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_BACKEND_CONCURRENT_H_
