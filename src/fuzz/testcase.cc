#include "fuzz/testcase.h"

#include "sql/parser.h"

namespace lego::fuzz {

StatusOr<TestCase> TestCase::FromSql(std::string_view script) {
  LEGO_ASSIGN_OR_RETURN(std::vector<sql::StmtPtr> stmts,
                        sql::Parser::ParseScript(script));
  return TestCase(std::move(stmts));
}

TestCase TestCase::Clone() const {
  std::vector<sql::StmtPtr> stmts;
  stmts.reserve(statements_.size());
  for (const auto& s : statements_) stmts.push_back(s->Clone());
  return TestCase(std::move(stmts));
}

std::vector<sql::StatementType> TestCase::TypeSequence() const {
  std::vector<sql::StatementType> types;
  types.reserve(statements_.size());
  for (const auto& s : statements_) types.push_back(s->type());
  return types;
}

std::string TestCase::ToSql() const {
  std::string out;
  for (const auto& s : statements_) {
    s->PrintTo(&out);
    out += ";\n";
  }
  return out;
}

}  // namespace lego::fuzz
