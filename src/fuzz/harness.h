#ifndef LEGO_FUZZ_HARNESS_H_
#define LEGO_FUZZ_HARNESS_H_

#include <memory>
#include <optional>
#include <string>

#include "concurrency/history.h"
#include "coverage/coverage.h"
#include "coverage/rule_coverage.h"
#include "faults/bug_engine.h"
#include "fuzz/backend.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"

namespace lego::fuzz {

/// One logic-bug finding from a metamorphic oracle: the DBMS returned a
/// wrong result without crashing, so there is no CrashInfo to dedup on.
struct LogicBugInfo {
  std::string check;   // oracle name, e.g. "tlp"
  std::string query;   // the original query whose result was wrong
  std::string detail;  // human-readable mismatch description
  /// Dedup key (oracle-computed, deterministic for a given query shape).
  uint64_t fingerprint = 0;
  /// Concurrent findings only: the interleaving seed and session count that
  /// reproduce the anomaly (0/0 for serial metamorphic findings). Together
  /// with `query` (the split multi-session script) they pin the execution
  /// bit-for-bit.
  uint64_t interleave_seed = 0;
  int sessions = 0;
};

/// Metamorphic test oracle consulted after each successfully executed
/// statement. Implementations must be stateless across calls (parallel
/// campaigns share one oracle between worker harnesses) and must leave the
/// database logically unchanged — the harness wraps the check in the
/// backend's Snapshot/RestoreForOracle bracket (coverage paused, fault hook
/// disarmed, trace rolled back), but schema/data side effects are the
/// oracle's responsibility to avoid. Oracles talk to the engine exclusively
/// through DbBackend, so they work unchanged against in-process and forked
/// targets. Defined here (rather than in triage/) so lego_triage can depend
/// on lego_fuzz without a cycle.
class LogicOracle {
 public:
  virtual ~LogicOracle() = default;
  virtual std::string_view name() const = 0;
  /// Checks `stmt`, which just executed successfully against `backend`.
  /// Returns true and fills `out` when a metamorphic inconsistency is
  /// detected.
  virtual bool Check(DbBackend* backend, const sql::Statement& stmt,
                     LogicBugInfo* out) = 0;
  /// Checks the begin/read/write/commit/abort history of one concurrent
  /// case. Returns true and fills `out` when the history exhibits an
  /// isolation anomaly. Default: no history checking (serial metamorphic
  /// oracles ignore interleavings).
  virtual bool CheckHistory(const concurrency::History& history,
                            LogicBugInfo* out) {
    (void)history;
    (void)out;
    return false;
  }
};

/// Outcome of executing one test case.
struct ExecResult {
  bool new_coverage = false;
  bool new_rules = false;  // grammar-rule signal (always false when disabled)
  bool crashed = false;
  minidb::CrashInfo crash;
  bool hang = false;       // the crash is a watchdog kill (crash.kind HANG)
  bool logic_bug = false;  // a logic oracle flagged a wrong result
  LogicBugInfo logic;      // valid iff logic_bug
  int executed = 0;   // statements that ran successfully
  int errors = 0;     // statements rejected (syntax/semantic/runtime)
  size_t total_edges = 0;  // campaign-global edge count after this run
  size_t total_rules = 0;  // campaign-global rule count after this run
  /// Concurrent backend only: the seed that drove session splitting and the
  /// interleaving scheduler, plus the digests that make "same (seed, case)
  /// => same execution" a testable equality.
  uint64_t interleave_seed = 0;
  uint64_t trace_digest = 0;
  uint64_t history_digest = 0;
  int interleave_switches = 0;
  int deadlocks = 0;
};

/// Execution harness (the AFL++ persistent-mode stand-in): runs each test
/// case through a DbBackend session — a fresh engine instance of one
/// dialect profile with edge-coverage feedback and the fault-injection
/// oracle armed. The backend decides the process model: in-process minidb
/// (default, bit-identical to the historical harness) or a crash-isolated
/// forked child.
class ExecutionHarness {
 public:
  explicit ExecutionHarness(const minidb::DialectProfile& profile,
                            const BackendOptions& backend = {});

  /// Optional script executed after each reset, before the test case, with
  /// the oracle disarmed and the trace cleared (models fuzzing against a
  /// pre-populated schema, as SQLsmith does).
  void set_setup_script(std::string script) {
    backend_->set_setup_script(std::move(script));
  }
  const std::string& setup_script() const { return backend_->setup_script(); }

  /// Parallel campaigns: in addition to the harness-local campaign map,
  /// publish every classified run map into `shared` (atomic OR). The local
  /// map still decides `new_coverage`, so a worker's feedback loop depends
  /// only on its own executions and stays deterministic.
  void set_shared_coverage(cov::SharedCoverage* shared) {
    shared_coverage_ = shared;
  }

  /// Secondary feedback: grammar-rule coverage. When enabled, each test
  /// case's SQL rendering is re-parsed with rule probes attached and the hit
  /// rules merged into a campaign-global rule map; `ExecResult::new_rules`
  /// reports previously-unseen productions. Off by default — the disabled
  /// path is bit-identical to a build without the signal.
  void set_rule_coverage(bool enabled) { rule_coverage_enabled_ = enabled; }
  bool rule_coverage() const { return rule_coverage_enabled_; }

  /// Parallel campaigns: also publish each run's rule map into `shared`.
  void set_shared_rule_coverage(cov::SharedRuleCoverage* shared) {
    shared_rule_coverage_ = shared;
  }

  /// Optional logic oracle, consulted after each successfully executed
  /// SELECT inside the backend's oracle bracket — oracle queries never
  /// perturb the fault-injection or feedback state. Not owned; must outlive
  /// the harness.
  void set_logic_oracle(LogicOracle* oracle) { logic_oracle_ = oracle; }
  LogicOracle* logic_oracle() const { return logic_oracle_; }

  /// Executes `tc` in a fresh backend session. Coverage accumulates into
  /// the campaign-global map; `new_coverage` reflects it. Concurrent
  /// backends route through the multi-session path: the case is split by
  /// the per-case interleaving seed and run as N scheduler-serialized
  /// session threads.
  ExecResult Run(const TestCase& tc);

  /// Triage replay: pin the interleaving seed for subsequent Run() calls on
  /// a concurrent backend instead of deriving it from the execution counter
  /// (nullopt restores derived seeds). No effect on serial backends.
  void set_forced_interleave_seed(std::optional<uint64_t> seed) {
    forced_interleave_seed_ = seed;
  }

  /// Total distinct edges ("branches") covered so far.
  size_t CoveredEdges() const { return global_coverage_.CoveredEdges(); }

  /// The accumulated campaign bitmap itself (read-only). Fleet workers ship
  /// this home in their result envelope so the coordinator can merge exact
  /// fleet-wide edge coverage instead of guessing from per-shard counts.
  const cov::GlobalCoverage& global_coverage() const {
    return global_coverage_;
  }

  /// Total distinct grammar rules covered so far (0 unless enabled).
  size_t CoveredRules() const { return global_rules_.CoveredRules(); }

  /// Resets accumulated coverage (fresh campaign).
  void ResetCoverage() {
    global_coverage_.Reset();
    global_rules_.Reset();
  }

  const minidb::DialectProfile& profile() const {
    return backend_->profile();
  }
  /// Fault catalog of the engine under test (parent-side replica for forked
  /// backends) — reporting/metadata only.
  const faults::BugEngine& bug_engine() const {
    return backend_->bug_engine();
  }

  DbBackend& backend() { return *backend_; }
  const BackendOptions& backend_options() const { return backend_options_; }

  /// Number of Run() calls so far.
  int executions() const { return executions_; }

  /// Checkpointing: the execution counter and the campaign-global coverage
  /// map (the feedback loop's entire memory). The backend itself is not
  /// serialized — every Run() starts from a fresh session, so an engine
  /// rebuilt by Prepare()/construction is equivalent.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  /// Multi-session execution path (backend kind kConcurrent, sessions > 1).
  ExecResult RunConcurrent(const TestCase& tc);
  /// Shared tail of both paths: classify/merge the run coverage map and the
  /// optional grammar-rule signal into `result`.
  void MergeRunFeedback(const TestCase& tc, ExecResult* result);

  BackendOptions backend_options_;
  std::unique_ptr<DbBackend> backend_;
  cov::GlobalCoverage global_coverage_;
  cov::SharedCoverage* shared_coverage_ = nullptr;
  cov::GlobalRuleCoverage global_rules_;
  cov::SharedRuleCoverage* shared_rule_coverage_ = nullptr;
  bool rule_coverage_enabled_ = false;
  LogicOracle* logic_oracle_ = nullptr;
  std::optional<uint64_t> forced_interleave_seed_;
  int executions_ = 0;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_HARNESS_H_
