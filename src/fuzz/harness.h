#ifndef LEGO_FUZZ_HARNESS_H_
#define LEGO_FUZZ_HARNESS_H_

#include <memory>
#include <string>

#include "coverage/coverage.h"
#include "coverage/rule_coverage.h"
#include "faults/bug_engine.h"
#include "fuzz/backend.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"

namespace lego::fuzz {

/// One logic-bug finding from a metamorphic oracle: the DBMS returned a
/// wrong result without crashing, so there is no CrashInfo to dedup on.
struct LogicBugInfo {
  std::string check;   // oracle name, e.g. "tlp"
  std::string query;   // the original query whose result was wrong
  std::string detail;  // human-readable mismatch description
  /// Dedup key (oracle-computed, deterministic for a given query shape).
  uint64_t fingerprint = 0;
};

/// Metamorphic test oracle consulted after each successfully executed
/// statement. Implementations must be stateless across calls (parallel
/// campaigns share one oracle between worker harnesses) and must leave the
/// database logically unchanged — the harness wraps the check in the
/// backend's Snapshot/RestoreForOracle bracket (coverage paused, fault hook
/// disarmed, trace rolled back), but schema/data side effects are the
/// oracle's responsibility to avoid. Oracles talk to the engine exclusively
/// through DbBackend, so they work unchanged against in-process and forked
/// targets. Defined here (rather than in triage/) so lego_triage can depend
/// on lego_fuzz without a cycle.
class LogicOracle {
 public:
  virtual ~LogicOracle() = default;
  virtual std::string_view name() const = 0;
  /// Checks `stmt`, which just executed successfully against `backend`.
  /// Returns true and fills `out` when a metamorphic inconsistency is
  /// detected.
  virtual bool Check(DbBackend* backend, const sql::Statement& stmt,
                     LogicBugInfo* out) = 0;
};

/// Outcome of executing one test case.
struct ExecResult {
  bool new_coverage = false;
  bool new_rules = false;  // grammar-rule signal (always false when disabled)
  bool crashed = false;
  minidb::CrashInfo crash;
  bool hang = false;       // the crash is a watchdog kill (crash.kind HANG)
  bool logic_bug = false;  // a logic oracle flagged a wrong result
  LogicBugInfo logic;      // valid iff logic_bug
  int executed = 0;   // statements that ran successfully
  int errors = 0;     // statements rejected (syntax/semantic/runtime)
  size_t total_edges = 0;  // campaign-global edge count after this run
  size_t total_rules = 0;  // campaign-global rule count after this run
};

/// Execution harness (the AFL++ persistent-mode stand-in): runs each test
/// case through a DbBackend session — a fresh engine instance of one
/// dialect profile with edge-coverage feedback and the fault-injection
/// oracle armed. The backend decides the process model: in-process minidb
/// (default, bit-identical to the historical harness) or a crash-isolated
/// forked child.
class ExecutionHarness {
 public:
  explicit ExecutionHarness(const minidb::DialectProfile& profile,
                            const BackendOptions& backend = {});

  /// Optional script executed after each reset, before the test case, with
  /// the oracle disarmed and the trace cleared (models fuzzing against a
  /// pre-populated schema, as SQLsmith does).
  void set_setup_script(std::string script) {
    backend_->set_setup_script(std::move(script));
  }
  const std::string& setup_script() const { return backend_->setup_script(); }

  /// Parallel campaigns: in addition to the harness-local campaign map,
  /// publish every classified run map into `shared` (atomic OR). The local
  /// map still decides `new_coverage`, so a worker's feedback loop depends
  /// only on its own executions and stays deterministic.
  void set_shared_coverage(cov::SharedCoverage* shared) {
    shared_coverage_ = shared;
  }

  /// Secondary feedback: grammar-rule coverage. When enabled, each test
  /// case's SQL rendering is re-parsed with rule probes attached and the hit
  /// rules merged into a campaign-global rule map; `ExecResult::new_rules`
  /// reports previously-unseen productions. Off by default — the disabled
  /// path is bit-identical to a build without the signal.
  void set_rule_coverage(bool enabled) { rule_coverage_enabled_ = enabled; }
  bool rule_coverage() const { return rule_coverage_enabled_; }

  /// Parallel campaigns: also publish each run's rule map into `shared`.
  void set_shared_rule_coverage(cov::SharedRuleCoverage* shared) {
    shared_rule_coverage_ = shared;
  }

  /// Optional logic oracle, consulted after each successfully executed
  /// SELECT inside the backend's oracle bracket — oracle queries never
  /// perturb the fault-injection or feedback state. Not owned; must outlive
  /// the harness.
  void set_logic_oracle(LogicOracle* oracle) { logic_oracle_ = oracle; }
  LogicOracle* logic_oracle() const { return logic_oracle_; }

  /// Executes `tc` in a fresh backend session. Coverage accumulates into
  /// the campaign-global map; `new_coverage` reflects it.
  ExecResult Run(const TestCase& tc);

  /// Total distinct edges ("branches") covered so far.
  size_t CoveredEdges() const { return global_coverage_.CoveredEdges(); }

  /// Total distinct grammar rules covered so far (0 unless enabled).
  size_t CoveredRules() const { return global_rules_.CoveredRules(); }

  /// Resets accumulated coverage (fresh campaign).
  void ResetCoverage() {
    global_coverage_.Reset();
    global_rules_.Reset();
  }

  const minidb::DialectProfile& profile() const {
    return backend_->profile();
  }
  /// Fault catalog of the engine under test (parent-side replica for forked
  /// backends) — reporting/metadata only.
  const faults::BugEngine& bug_engine() const {
    return backend_->bug_engine();
  }

  DbBackend& backend() { return *backend_; }
  const BackendOptions& backend_options() const { return backend_options_; }

  /// Number of Run() calls so far.
  int executions() const { return executions_; }

  /// Checkpointing: the execution counter and the campaign-global coverage
  /// map (the feedback loop's entire memory). The backend itself is not
  /// serialized — every Run() starts from a fresh session, so an engine
  /// rebuilt by Prepare()/construction is equivalent.
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  BackendOptions backend_options_;
  std::unique_ptr<DbBackend> backend_;
  cov::GlobalCoverage global_coverage_;
  cov::SharedCoverage* shared_coverage_ = nullptr;
  cov::GlobalRuleCoverage global_rules_;
  cov::SharedRuleCoverage* shared_rule_coverage_ = nullptr;
  bool rule_coverage_enabled_ = false;
  LogicOracle* logic_oracle_ = nullptr;
  int executions_ = 0;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_HARNESS_H_
