#ifndef LEGO_FUZZ_CORPUS_H_
#define LEGO_FUZZ_CORPUS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fuzz/testcase.h"
#include "persist/io.h"
#include "util/random.h"

namespace lego::fuzz {

/// One corpus entry with scheduling bookkeeping.
struct Seed {
  TestCase test_case;
  int id = 0;
  int times_selected = 0;
  int discoveries = 0;   // mutants of this seed that found new coverage
  bool favored = false;  // newly added seeds are favored until first pick
  /// Grammar rules this seed's SQL exercises (ascending rule indices).
  /// Populated only under rule weighting; derived state, not serialized.
  std::vector<uint16_t> rules;
};

/// The seed pool. Selection is energy-based: favored (fresh) seeds first,
/// then a weighted pick that prefers productive and under-fuzzed seeds —
/// the scheduling half of an AFL-style mutation loop.
///
/// Pointer-stability contract: every `Seed*` returned by Add()/Select()
/// stays valid for the lifetime of the Corpus, across any number of later
/// Add() calls — seeds live in a deque, whose push_back never relocates
/// existing elements. Debug builds verify this on every Add().
///
/// Threading contract: a Corpus belongs to exactly ONE worker thread; none
/// of its methods are thread-safe, and handed-out `Seed*` must not be
/// touched from other threads. Debug builds assert single-thread use.
/// Cross-worker seed exchange in parallel campaigns goes through
/// SharedCorpus instead.
class Corpus {
 public:
  /// Adds a seed (typically one whose execution covered new branches).
  Seed* Add(TestCase tc);

  /// Picks the next seed to mutate. Returns nullptr when empty.
  Seed* Select(Rng* rng);

  /// Rarity-weighted scheduling on the grammar-rule signal: when enabled,
  /// Select() multiplies each seed's energy by (1 + sum over its rules of
  /// 1/holders(rule)), so seeds exercising productions few other seeds reach
  /// get picked more often. Deterministic — rule sets are derived from seed
  /// SQL, never from RNG — and fully inert when disabled (Select() is then
  /// byte-identical to the unweighted scheduler). Enabling recomputes rule
  /// sets for seeds already in the pool, so the weighting is independent of
  /// when the flag was flipped.
  void set_rule_weighting(bool enabled);
  bool rule_weighting() const { return rule_weighting_; }

  size_t size() const { return seeds_.size(); }
  bool empty() const { return seeds_.empty(); }
  const std::deque<Seed>& seeds() const { return seeds_; }
  /// Mutation through this pointer inherits the contracts above: the deque
  /// may grow but elements never move, and access is single-thread only.
  std::deque<Seed>* mutable_seeds() { return &seeds_; }

  /// Position of a handed-out seed pointer, -1 for nullptr. Lets owners
  /// checkpoint "which seed is in flight" as an index and rehydrate the
  /// pointer after LoadState.
  int IndexOf(const Seed* seed) const;
  Seed* at(size_t index) { return &seeds_[index]; }

  /// Checkpointing: test cases plus all scheduling bookkeeping (ids,
  /// selection counts, discoveries, favored flags) and the id allocator —
  /// everything Select() consults, so a resumed schedule is identical.
  /// LoadState replaces the whole pool; previously handed-out Seed*
  /// pointers are invalidated (debug tracking is reset accordingly).
  Status SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  /// Debug-only enforcement of the two contracts (no-op in NDEBUG builds).
  void DebugCheckContract();

  /// Fills `seed->rules` from its SQL and bumps the per-rule holder counts.
  void ComputeRules(Seed* seed);

  std::deque<Seed> seeds_;
  int next_id_ = 0;
  bool rule_weighting_ = false;
  /// holders[r] = number of seeds whose rule set contains rule r.
  std::vector<uint32_t> rule_holders_;
#ifndef NDEBUG
  /// Every pointer ever handed out by Add(), with the id it pointed at.
  std::vector<std::pair<const Seed*, int>> handed_out_;
  std::thread::id owner_{};
#endif
};

/// Cross-worker seed exchange for parallel campaigns. Workers publish
/// new-coverage test cases and periodically drain everything published by
/// other workers since their last drain. Entries are totally ordered by an
/// atomic publish sequence and stored in mutex-sharded maps (shard =
/// seq % num_shards), so publishers on different shards never contend.
///
/// DrainNew() walks the sequence from the caller's cursor and stops at the
/// first gap — a sequence number that was claimed but whose entry is not
/// inserted yet — so readers never observe partially published seeds; the
/// gap is picked up by the next drain. All methods are thread-safe.
class SharedCorpus {
 public:
  explicit SharedCorpus(int num_shards = 8);

  SharedCorpus(const SharedCorpus&) = delete;
  SharedCorpus& operator=(const SharedCorpus&) = delete;

  /// Publishes a new-coverage test case discovered by `origin_worker`.
  void Publish(int origin_worker, TestCase tc);

  /// Appends clones of every seed published at sequence >= *cursor by a
  /// worker other than `worker_id`, in publish order, and advances *cursor
  /// past them. Returns the number of seeds appended.
  size_t DrainNew(int worker_id, uint64_t* cursor,
                  std::vector<TestCase>* out) const;

  /// Sequence numbers claimed so far (upper bound on published entries).
  uint64_t published() const {
    return next_seq_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    int origin;
    TestCase tc;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<uint64_t, Entry> entries;
  };

  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_seq_{0};
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CORPUS_H_
