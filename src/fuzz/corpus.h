#ifndef LEGO_FUZZ_CORPUS_H_
#define LEGO_FUZZ_CORPUS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "fuzz/testcase.h"
#include "util/random.h"

namespace lego::fuzz {

/// One corpus entry with scheduling bookkeeping.
struct Seed {
  TestCase test_case;
  int id = 0;
  int times_selected = 0;
  int discoveries = 0;   // mutants of this seed that found new coverage
  bool favored = false;  // newly added seeds are favored until first pick
};

/// The seed pool. Seeds live in a deque so Seed pointers handed out by
/// Select()/Add() stay valid as the corpus grows. Selection is energy-based: favored (fresh) seeds first,
/// then a weighted pick that prefers productive and under-fuzzed seeds —
/// the scheduling half of an AFL-style mutation loop.
class Corpus {
 public:
  /// Adds a seed (typically one whose execution covered new branches).
  Seed* Add(TestCase tc);

  /// Picks the next seed to mutate. Returns nullptr when empty.
  Seed* Select(Rng* rng);

  size_t size() const { return seeds_.size(); }
  bool empty() const { return seeds_.empty(); }
  const std::deque<Seed>& seeds() const { return seeds_; }
  std::deque<Seed>* mutable_seeds() { return &seeds_; }

 private:
  std::deque<Seed> seeds_;
  int next_id_ = 0;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CORPUS_H_
