#include "fuzz/seeds.h"

namespace lego::fuzz {

namespace {

// Generic seeds shared by every profile (only universally supported types).
const std::vector<std::string> kCommonSeeds = {
    // The paper's Fig. 1 running example.
    "CREATE TABLE t1 (v1 INT, v2 INT);\n"
    "INSERT INTO t1 VALUES (1, 1);\n"
    "INSERT INTO t1 VALUES (2, 1);\n"
    "SELECT * FROM t1 ORDER BY v1;\n"
    "SELECT v2 FROM t1 WHERE v1 = 1;",

    "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT NOT NULL);\n"
    "INSERT INTO kv VALUES (1, 'one');\n"
    "INSERT INTO kv VALUES (2, 'two');\n"
    "UPDATE kv SET v = 'uno' WHERE k = 1;\n"
    "SELECT k, v FROM kv WHERE k < 10;",

    "CREATE TABLE lhs (k INT, a INT);\n"
    "CREATE TABLE rhs (k INT, b INT);\n"
    "INSERT INTO lhs VALUES (1, 10);\n"
    "INSERT INTO rhs VALUES (1, 20);\n"
    "SELECT lhs.a, rhs.b FROM lhs JOIN rhs ON lhs.k = rhs.k;\n"
    "SELECT lhs.k, a FROM lhs LEFT JOIN rhs ON lhs.k = rhs.k WHERE a BETWEEN 1 AND 100;",
};

const std::vector<std::string>& PgSeeds() {
  static const auto* kSeeds = new std::vector<std::string>([] {
    std::vector<std::string> seeds = kCommonSeeds;
    seeds.push_back(
        "CREATE TABLE t4 (x INT, y TEXT DEFAULT 'd');\n"
        "INSERT INTO t4 (x) VALUES (3);\n"
        "CREATE VIEW w4 AS SELECT x FROM t4;\n"
        "SELECT * FROM w4;");
    seeds.push_back(
        "CREATE TABLE agg (g INT, v INT);\n"
        "INSERT INTO agg VALUES (1, 10);\n"
        "INSERT INTO agg VALUES (1, 20);\n"
        "INSERT INTO agg VALUES (2, 5);\n"
        "SELECT g, SUM(v) FROM agg GROUP BY g HAVING SUM(v) > 6;");
    seeds.push_back(
        "CREATE TABLE tx (x INT UNIQUE);\n"
        "BEGIN;\n"
        "INSERT INTO tx VALUES (1);\n"
        "COMMIT;\n"
        "SELECT x FROM tx;");
    return seeds;
  }());
  return *kSeeds;
}

const std::vector<std::string>& MySeeds() {
  static const auto* kSeeds = new std::vector<std::string>([] {
    std::vector<std::string> seeds = kCommonSeeds;
    // The paper's Fig. 3 synthetic seed shape:
    // CREATE TABLE -> INSERT -> CREATE TRIGGER -> SELECT.
    seeds.push_back(
        "CREATE TABLE v0 (v1 INT, v2 TEXT);\n"
        "INSERT INTO v0 VALUES (1, 'name1');\n"
        "CREATE TRIGGER tg0 AFTER UPDATE ON v0 FOR EACH ROW "
        "INSERT INTO v0 VALUES (2, 'x');\n"
        "SELECT * FROM v0;");
    seeds.push_back(
        "CREATE TABLE m2 (a INT, b INT);\n"
        "INSERT INTO m2 VALUES (1, 2);\n"
        "ALTER TABLE m2 ADD COLUMN c INT;\n"
        "SELECT a, COUNT(*) FROM m2 GROUP BY a;");
    seeds.push_back(
        "CREATE TABLE m3 (k INT PRIMARY KEY, v TEXT);\n"
        "REPLACE INTO m3 VALUES (1, 'a');\n"
        "REPLACE INTO m3 VALUES (1, 'b');\n"
        "SELECT v FROM m3;");
    return seeds;
  }());
  return *kSeeds;
}

const std::vector<std::string>& MariaSeeds() {
  static const auto* kSeeds = new std::vector<std::string>([] {
    std::vector<std::string> seeds = kCommonSeeds;
    seeds.push_back(
        "CREATE TABLE r1 (g INT, v INT);\n"
        "INSERT INTO r1 VALUES (1, 10);\n"
        "SELECT g, COUNT(*) FROM r1 GROUP BY g;");
    seeds.push_back(
        "CREATE TABLE r2 (a INT, b INT);\n"
        "INSERT INTO r2 VALUES (1, 2);\n"
        "CREATE INDEX ix2 ON r2 (a);\n"
        "SELECT b FROM r2 WHERE a = 1;");
    seeds.push_back(
        "CREATE TABLE r3 (x INT);\n"
        "INSERT INTO r3 VALUES (5);\n"
        "CREATE VIEW w3 AS SELECT x FROM r3;\n"
        "SELECT * FROM w3;");
    seeds.push_back(
        "CREATE TABLE r4 (x INT);\n"
        "INSERT INTO r4 VALUES (1);\n"
        "INSERT INTO r4 VALUES (2);\n"
        "DELETE FROM r4 WHERE x = 1;\n"
        "SELECT x FROM r4 ORDER BY x;");
    seeds.push_back(
        "CREATE TABLE r5 (x INT, y INT);\n"
        "INSERT INTO r5 VALUES (1, 1);\n"
        "UPDATE r5 SET y = 2 WHERE x = 1;\n"
        "DELETE FROM r5 WHERE y = 2;");
    seeds.push_back(
        "CREATE TABLE r6 (x INT);\n"
        "BEGIN;\n"
        "INSERT INTO r6 VALUES (9);\n"
        "ROLLBACK;");
    seeds.push_back(
        "CREATE TABLE r7 (x INT);\n"
        "INSERT INTO r7 VALUES (1);\n"
        "TRUNCATE TABLE r7;\n"
        "INSERT INTO r7 VALUES (2);");
    seeds.push_back(
        "CREATE TABLE r8 (x INT);\n"
        "ALTER TABLE r8 ADD COLUMN y INT;\n"
        "INSERT INTO r8 VALUES (1, 2);\n"
        "SELECT y FROM r8;");
    return seeds;
  }());
  return *kSeeds;
}

const std::vector<std::string>& ComdSeeds() {
  static const auto* kSeeds = new std::vector<std::string>{
      "CREATE TABLE c1 (a INT, b INT);\n"
      "INSERT INTO c1 VALUES (1, 2);\n"
      "INSERT INTO c1 VALUES (3, 4);\n"
      "SELECT a, b FROM c1 WHERE a > 1;",

      "CREATE TABLE c2 (k INT PRIMARY KEY, v INT);\n"
      "INSERT INTO c2 VALUES (1, 10);\n"
      "UPDATE c2 SET v = 20 WHERE k = 1;\n"
      "SELECT v FROM c2 WHERE k = 1;",

      "CREATE TABLE c3 (x INT);\n"
      "CREATE INDEX ic3 ON c3 (x);\n"
      "INSERT INTO c3 VALUES (7);\n"
      "SELECT x FROM c3 WHERE x = 7;",

      "CREATE TABLE c4 (x INT, y INT);\n"
      "INSERT INTO c4 VALUES (1, 1);\n"
      "DELETE FROM c4 WHERE y = 1;\n"
      "INSERT INTO c4 VALUES (2, 2);",
  };
  return *kSeeds;
}

}  // namespace

const std::vector<std::string>& SeedScriptsFor(const std::string& profile) {
  if (profile == "pglite") return PgSeeds();
  if (profile == "mylite") return MySeeds();
  if (profile == "marialite") return MariaSeeds();
  if (profile == "comdlite") return ComdSeeds();
  static const std::vector<std::string>* kEmpty =
      new std::vector<std::string>();
  return *kEmpty;
}

std::string SetupSchemaFor(const std::string& profile) {
  (void)profile;
  // A small universal schema: two plain tables, one indexed column, data.
  return
      "CREATE TABLE s1 (a INT, b INT, c TEXT);\n"
      "CREATE TABLE s2 (k INT PRIMARY KEY, v TEXT);\n"
      "CREATE INDEX s1_a ON s1 (a);\n"
      "INSERT INTO s1 VALUES (1, 10, 'x');\n"
      "INSERT INTO s1 VALUES (2, 20, 'y');\n"
      "INSERT INTO s1 VALUES (3, 30, 'z');\n"
      "INSERT INTO s2 VALUES (1, 'one');\n"
      "INSERT INTO s2 VALUES (2, 'two');";
}

}  // namespace lego::fuzz
