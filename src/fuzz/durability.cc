#include "fuzz/durability.h"

#include <algorithm>
#include <utility>

#include "chaos/failpoint.h"
#include "minidb/storage_engine.h"
#include "minidb/storage_serde.h"
#include "sql/parser.h"
#include "util/hash.h"

namespace lego::fuzz {
namespace {

/// True while any failpoint that can corrupt or fail recovery reads is
/// armed — an unreadable directory is then the chaos schedule at work, not
/// a durability bug.
bool RecoveryFaultsArmed() {
  for (const char* site : {"wal.recover", "env.write", "env.sync"}) {
    if (chaos::ModeOf(site) != chaos::FailpointMode::kOff) return true;
  }
  return false;
}

void ExecuteShadowSql(minidb::Database* db, const std::string& sql) {
  auto stmts = sql::Parser::ParseScript(sql + ";");
  if (!stmts.ok()) return;
  for (const sql::StmtPtr& stmt : stmts.value()) {
    (void)db->Execute(*stmt);
  }
}

minidb::CrashInfo MakeDurCrash(const std::string& bug_id, std::string message,
                               const std::string& chaos_note) {
  minidb::CrashInfo crash;
  crash.bug_id = bug_id;
  crash.component = "storage";
  crash.kind = "DURABILITY";
  crash.stack_hash = Fnv1a64(bug_id);
  if (!chaos_note.empty()) message += " [schedule: " + chaos_note + "]";
  crash.message = std::move(message);
  return crash;
}

}  // namespace

void DurabilityTracker::BeginSession(std::string setup_script) {
  in_session_ = true;
  setup_ = std::move(setup_script);
  acked_.clear();
  inflight_.reset();
}

void DurabilityTracker::RecordAcked(std::string sql) {
  if (!in_session_) return;
  acked_.push_back(std::move(sql));
  inflight_.reset();
}

uint64_t DurabilityTracker::ShadowDigest(const minidb::DialectProfile& profile,
                                         size_t acked_prefix,
                                         bool with_inflight) const {
  minidb::Database db(&profile);
  if (!setup_.empty()) ExecuteShadowSql(&db, setup_);
  for (size_t i = 0; i < acked_prefix && i < acked_.size(); ++i) {
    ExecuteShadowSql(&db, acked_[i]);
  }
  if (with_inflight && inflight_.has_value()) {
    ExecuteShadowSql(&db, *inflight_);
  }
  // Uncommitted work must be invisible after recovery: the no-steal WAL
  // never held it, so the durable state is the shadow with the open
  // transaction rolled back.
  if (db.session().in_transaction) ExecuteShadowSql(&db, "ROLLBACK");
  return minidb::StateDigest(db.catalog());
}

DurabilityVerdict DurabilityTracker::CheckAfterDeath(
    const minidb::DialectProfile& profile, minidb::Env* env,
    const std::string& dir, const std::string& chaos_note) const {
  DurabilityVerdict verdict;
  if (!in_session_ || dir.empty() || !env->FileExists(dir + "/MANIFEST")) {
    return verdict;  // not checkable: reset-phase death or no engine yet
  }
  verdict.checked = true;

  minidb::Database recovered(&profile);
  minidb::WalLoadStats wal_stats;
  Status status =
      minidb::StorageEngine::RecoverInto(env, dir, &recovered, &wal_stats);
  if (!status.ok()) {
    if (RecoveryFaultsArmed()) {
      // The injected fault fired during the verification read itself;
      // nothing can be concluded this death.
      verdict.checked = false;
      return verdict;
    }
    verdict.ok = false;
    verdict.crash = MakeDurCrash(
        "DUR-RECOVERY-FAIL",
        "recovery failed on engine-written directory: " + status.message(),
        chaos_note);
    return verdict;
  }

  const uint64_t recovered_digest = minidb::StateDigest(recovered.catalog());
  const uint64_t acked_digest = ShadowDigest(profile, acked_.size(), false);
  if (recovered_digest == acked_digest) return verdict;
  if (inflight_.has_value() &&
      recovered_digest == ShadowDigest(profile, acked_.size(), true)) {
    return verdict;
  }

  // Mismatch: scan shadow prefixes backwards to tell a lost commit (state
  // rolled back to an earlier acknowledged point) from a phantom. Bounded —
  // each probe re-executes the prefix, and deep losses are conclusive after
  // a few steps anyway.
  constexpr size_t kMaxPrefixProbes = 32;
  const size_t lo =
      acked_.size() > kMaxPrefixProbes ? acked_.size() - kMaxPrefixProbes : 0;
  for (size_t k = acked_.size(); k-- > lo;) {
    if (recovered_digest == ShadowDigest(profile, k, false)) {
      verdict.ok = false;
      verdict.crash = MakeDurCrash(
          "DUR-LOST-COMMIT",
          "recovered state matches only the first " + std::to_string(k) +
              " of " + std::to_string(acked_.size()) +
              " acknowledged statements; acknowledged effects were lost",
          chaos_note);
      return verdict;
    }
  }

  verdict.ok = false;
  verdict.crash = MakeDurCrash(
      "DUR-PHANTOM",
      "recovered state matches no acknowledged shadow (acked=" +
          std::to_string(acked_.size()) +
          (inflight_.has_value() ? ", one statement in flight)" : ")"),
      chaos_note);
  return verdict;
}

}  // namespace lego::fuzz
