#include "fuzz/backend.h"

#include "fuzz/backend_concurrent.h"
#include "fuzz/backend_forked.h"
#include "fuzz/backend_inproc.h"

namespace lego::fuzz {

std::optional<BackendKind> ParseBackendKind(std::string_view name) {
  if (name == "inproc") return BackendKind::kInProcess;
  if (name == "forked") return BackendKind::kForked;
  if (name == "concurrent") return BackendKind::kConcurrent;
  return std::nullopt;
}

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kInProcess: return "inproc";
    case BackendKind::kForked: return "forked";
    case BackendKind::kConcurrent: return "concurrent";
  }
  return "?";
}

std::optional<StorageKind> ParseStorageKind(std::string_view name) {
  if (name == "mem") return StorageKind::kMem;
  if (name == "paged") return StorageKind::kPaged;
  return std::nullopt;
}

std::string_view StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kMem: return "mem";
    case StorageKind::kPaged: return "paged";
  }
  return "?";
}

std::unique_ptr<DbBackend> MakeBackend(const minidb::DialectProfile& profile,
                                       const BackendOptions& options) {
  switch (options.kind) {
    case BackendKind::kInProcess:
      return std::make_unique<InProcessBackend>(profile, options);
    case BackendKind::kForked:
      return std::make_unique<ForkedBackend>(profile, options);
    case BackendKind::kConcurrent:
      return std::make_unique<ConcurrentBackend>(profile, options);
  }
  return nullptr;
}

namespace detail {

std::string RenderRow(const minidb::Row& row) {
  std::string line;
  for (const minidb::Value& v : row) {
    line += v.ToString();
    line += '|';
  }
  return line;
}

}  // namespace detail

}  // namespace lego::fuzz
