#include "fuzz/backend.h"

#include "fuzz/backend_forked.h"
#include "fuzz/backend_inproc.h"

namespace lego::fuzz {

std::optional<BackendKind> ParseBackendKind(std::string_view name) {
  if (name == "inproc") return BackendKind::kInProcess;
  if (name == "forked") return BackendKind::kForked;
  return std::nullopt;
}

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kInProcess: return "inproc";
    case BackendKind::kForked: return "forked";
  }
  return "?";
}

std::unique_ptr<DbBackend> MakeBackend(const minidb::DialectProfile& profile,
                                       const BackendOptions& options) {
  switch (options.kind) {
    case BackendKind::kInProcess:
      return std::make_unique<InProcessBackend>(profile);
    case BackendKind::kForked:
      return std::make_unique<ForkedBackend>(profile, options);
  }
  return nullptr;
}

namespace detail {

std::string RenderRow(const minidb::Row& row) {
  std::string line;
  for (const minidb::Value& v : row) {
    line += v.ToString();
    line += '|';
  }
  return line;
}

}  // namespace detail

}  // namespace lego::fuzz
