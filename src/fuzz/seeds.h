#ifndef LEGO_FUZZ_SEEDS_H_
#define LEGO_FUZZ_SEEDS_H_

#include <string>
#include <vector>

namespace lego::fuzz {

/// Built-in initial seed scripts for one dialect profile. The mutation-based
/// fuzzers (SQUIRREL-like, LEGO, LEGO-) start from these — the equivalent of
/// the seed corpora shipped with the original tools. Each script uses only
/// statement types the profile supports.
const std::vector<std::string>& SeedScriptsFor(const std::string& profile);

/// A small pre-populated schema, used as the harness setup script for
/// fuzzers that assume an existing database (SQLsmith).
std::string SetupSchemaFor(const std::string& profile);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_SEEDS_H_
