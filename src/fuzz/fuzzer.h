#ifndef LEGO_FUZZ_FUZZER_H_
#define LEGO_FUZZ_FUZZER_H_

#include <string>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"

namespace lego::fuzz {

/// Common interface for all fuzzers (LEGO, LEGO-, and the baselines). The
/// campaign driver alternates Next() / OnResult() so every fuzzer pays the
/// same per-execution accounting.
class Fuzzer {
 public:
  virtual ~Fuzzer() = default;

  /// Display name ("lego", "squirrel", ...).
  virtual std::string name() const = 0;

  /// Called once before the campaign; load seeds, set up generators.
  virtual void Prepare(ExecutionHarness* harness) = 0;

  /// Produces the next test case to execute.
  virtual TestCase Next() = 0;

  /// Feedback for the test case most recently returned by Next().
  virtual void OnResult(const TestCase& tc, const ExecResult& result) = 0;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_FUZZER_H_
