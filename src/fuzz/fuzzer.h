#ifndef LEGO_FUZZ_FUZZER_H_
#define LEGO_FUZZ_FUZZER_H_

#include <memory>
#include <string>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "persist/io.h"

namespace lego::fuzz {

/// Introspection counters a fuzzer can expose for campaign summaries.
/// Fuzzers without a given notion report zero.
struct FuzzerStats {
  size_t corpus_seeds = 0;
  /// Type-affinity pairs discovered (LEGO's Table II metric).
  size_t affinity_pairs = 0;
  /// SQL type sequences synthesized so far (LEGO's |S|).
  size_t sequences_total = 0;
  /// Sequences silently discarded at the synthesizer's kMaxSequences cap.
  size_t sequences_dropped = 0;
  /// Corrupt entries a tolerant --import-corpus skipped (filled in by the
  /// campaign runner from CampaignOptions, not by the fuzzer itself).
  size_t import_skipped = 0;
};

/// Common interface for all fuzzers (LEGO, LEGO-, and the baselines). The
/// campaign driver alternates Next() / OnResult() so every fuzzer pays the
/// same per-execution accounting.
class Fuzzer {
 public:
  virtual ~Fuzzer() = default;

  /// Display name ("lego", "squirrel", ...).
  virtual std::string name() const = 0;

  /// Called once before the campaign; load seeds, set up generators.
  virtual void Prepare(ExecutionHarness* harness) = 0;

  /// Produces the next test case to execute.
  virtual TestCase Next() = 0;

  /// Feedback for the test case most recently returned by Next().
  virtual void OnResult(const TestCase& tc, const ExecResult& result) = 0;

  /// Factory seam for parallel campaigns: an independent copy of this
  /// fuzzer (same configuration, fresh state) whose Rng is seeded
  /// `base_seed + worker_id`, where base_seed is this fuzzer's configured
  /// seed. Returning nullptr (the default) means the fuzzer cannot run in
  /// worker-pool mode and RunCampaign falls back to the serial path.
  virtual std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const {
    (void)worker_id;
    return nullptr;
  }

  /// A new-coverage test case discovered by another worker. Feedback-driven
  /// fuzzers adopt it into their corpus exactly like a local discovery
  /// (minus scheduling attribution); generation-based fuzzers ignore it.
  virtual void ImportSeed(const TestCase& tc) { (void)tc; }

  /// Clones of every corpus seed, in corpus order — the raw material for
  /// cross-campaign reuse (corpus export files, `corpus_cli distill`).
  /// Generation-based fuzzers keep no corpus and return the default empty
  /// vector.
  virtual std::vector<TestCase> ExportCorpus() const { return {}; }

  /// Checkpointing seam: serializes every piece of mutable fuzzer state —
  /// corpus, learned structures, RNG streams, scheduling cursors, pending
  /// queues — such that LoadState on a freshly constructed+Prepared fuzzer
  /// of the same configuration continues the campaign bit-identically to
  /// one that never stopped. The default refuses, which makes fuzzers
  /// without serialization fail --state-dir campaigns loudly instead of
  /// resuming with silently reset state.
  virtual Status SaveState(persist::StateWriter* w) const {
    (void)w;
    return Status::Unsupported(name() + ": state serialization not supported");
  }
  virtual Status LoadState(persist::StateReader* r) {
    (void)r;
    return Status::Unsupported(name() + ": state serialization not supported");
  }

  /// Snapshot of the fuzzer's introspection counters.
  virtual FuzzerStats stats() const { return {}; }
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_FUZZER_H_
