#ifndef LEGO_FUZZ_FUZZER_H_
#define LEGO_FUZZ_FUZZER_H_

#include <memory>
#include <string>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"

namespace lego::fuzz {

/// Common interface for all fuzzers (LEGO, LEGO-, and the baselines). The
/// campaign driver alternates Next() / OnResult() so every fuzzer pays the
/// same per-execution accounting.
class Fuzzer {
 public:
  virtual ~Fuzzer() = default;

  /// Display name ("lego", "squirrel", ...).
  virtual std::string name() const = 0;

  /// Called once before the campaign; load seeds, set up generators.
  virtual void Prepare(ExecutionHarness* harness) = 0;

  /// Produces the next test case to execute.
  virtual TestCase Next() = 0;

  /// Feedback for the test case most recently returned by Next().
  virtual void OnResult(const TestCase& tc, const ExecResult& result) = 0;

  /// Factory seam for parallel campaigns: an independent copy of this
  /// fuzzer (same configuration, fresh state) whose Rng is seeded
  /// `base_seed + worker_id`, where base_seed is this fuzzer's configured
  /// seed. Returning nullptr (the default) means the fuzzer cannot run in
  /// worker-pool mode and RunCampaign falls back to the serial path.
  virtual std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const {
    (void)worker_id;
    return nullptr;
  }

  /// A new-coverage test case discovered by another worker. Feedback-driven
  /// fuzzers adopt it into their corpus exactly like a local discovery
  /// (minus scheduling attribution); generation-based fuzzers ignore it.
  virtual void ImportSeed(const TestCase& tc) { (void)tc; }
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_FUZZER_H_
