#ifndef LEGO_FUZZ_BACKEND_INPROC_H_
#define LEGO_FUZZ_BACKEND_INPROC_H_

#include <memory>
#include <optional>
#include <string>

#include "fuzz/backend.h"
#include "minidb/storage_engine.h"

namespace lego::fuzz {

/// The historical harness engine: minidb embedded in this process. Serial
/// campaigns through this backend are bit-identical to the pre-seam harness
/// (same operation order around reset, setup script, coverage scope, and
/// oracle bracket).
///
/// With StorageKind::kPaged the same execution path additionally runs behind
/// a StorageEngine (fresh on-disk generation per Reset, statement bracket
/// around every Execute). The mem path constructs no engine and stays
/// bit-identical. An in-process storage failure degrades the engine (it
/// stops logging) instead of killing the fuzzer.
class InProcessBackend : public DbBackend {
 public:
  explicit InProcessBackend(const minidb::DialectProfile& profile,
                            const BackendOptions& options = {});
  ~InProcessBackend() override;

  std::string_view name() const override { return "inproc"; }
  const minidb::DialectProfile& profile() const override { return profile_; }
  const faults::BugEngine& bug_engine() const override { return bug_engine_; }

  void Reset() override;
  StmtOutcome Execute(const sql::Statement& stmt, bool want_rows) override;
  const cov::CoverageMap& FinishRun() override;
  std::optional<std::string> FirstColumnOf(const std::string& table) override;
  BackendStorageStats storage_stats() override;

  /// Direct engine access for tests and embedded tooling (populating a
  /// schema before driving an oracle by hand, planting evaluator bugs, ...).
  minidb::Database& database() { return db_; }

  /// Paged mode only; nullptr on the mem path.
  minidb::StorageEngine* storage_engine() { return storage_.get(); }

 protected:
  void DoSnapshotForOracle() override;
  void DoRestoreForOracle() override;

 private:
  const minidb::DialectProfile& profile_;
  minidb::Database db_;
  faults::BugEngine bug_engine_;
  std::unique_ptr<minidb::StorageEngine> storage_;
  cov::CoverageMap run_map_;
  bool collecting_ = false;

  // Oracle bracket state.
  cov::CoverageMap* saved_map_ = nullptr;
  minidb::FaultHook* saved_hook_ = nullptr;
  size_t saved_types_ = 0;
  size_t saved_features_ = 0;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_BACKEND_INPROC_H_
