#ifndef LEGO_FUZZ_CORPUS_FILE_H_
#define LEGO_FUZZ_CORPUS_FILE_H_

#include <string>
#include <vector>

#include "fuzz/testcase.h"
#include "util/status.h"

namespace lego::fuzz {

/// Flat corpus interchange file: an enveloped, checksummed list of test
/// cases. This is how seeds move between campaigns — corpus_cli exports a
/// (distilled) corpus, and `fuzz_campaign_cli --import-corpus` feeds it to
/// a fresh campaign's fuzzer before the first execution.
Status SaveCorpusFile(const std::vector<TestCase>& cases,
                      const std::string& path);
StatusOr<std::vector<TestCase>> LoadCorpusFile(const std::string& path);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CORPUS_FILE_H_
