#ifndef LEGO_FUZZ_CORPUS_FILE_H_
#define LEGO_FUZZ_CORPUS_FILE_H_

#include <string>
#include <vector>

#include "fuzz/testcase.h"
#include "util/status.h"

namespace lego::fuzz {

/// Flat corpus interchange file: an enveloped, checksummed list of test
/// cases. This is how seeds move between campaigns — corpus_cli exports a
/// (distilled) corpus, and `fuzz_campaign_cli --import-corpus` feeds it to
/// a fresh campaign's fuzzer before the first execution.
Status SaveCorpusFile(const std::vector<TestCase>& cases,
                      const std::string& path);
StatusOr<std::vector<TestCase>> LoadCorpusFile(const std::string& path);

/// Bookkeeping from a tolerant corpus load.
struct CorpusLoadStats {
  size_t loaded = 0;   // entries successfully decoded
  size_t skipped = 0;  // declared entries dropped as truncated/undecodable
  bool degraded = false;  // envelope failed strict validation
};

/// Damage-tolerant variant of LoadCorpusFile: a truncated or
/// checksum-failing corpus yields the longest decodable prefix of entries
/// plus a skip count, instead of an error — a long campaign should not die
/// because its imported seed file lost a tail to a crash. Files that are
/// not corpus files at all (missing, bad magic, wrong chunk) still fail.
StatusOr<std::vector<TestCase>> LoadCorpusFileTolerant(const std::string& path,
                                                       CorpusLoadStats* stats);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CORPUS_FILE_H_
