#include "fuzz/distill.h"

#include <algorithm>
#include <numeric>

namespace lego::fuzz {

std::vector<TestCase> DistillCorpus(const std::vector<TestCase>& cases,
                                    ExecutionHarness* harness,
                                    DistillStats* stats) {
  DistillStats local;
  local.original_cases = cases.size();

  // Pass 1: each case's solo footprint, measured against an empty map.
  std::vector<size_t> solo_edges(cases.size(), 0);
  for (size_t i = 0; i < cases.size(); ++i) {
    harness->ResetCoverage();
    harness->Run(cases[i]);
    ++local.replays;
    solo_edges[i] = harness->CoveredEdges();
  }

  // Largest-footprint-first is the classic cmin greedy: big cases swallow
  // the common edges early, so small cases only survive on genuinely rare
  // coverage. Stable tie-break on input order keeps the result
  // deterministic.
  std::vector<size_t> order(cases.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return solo_edges[a] > solo_edges[b];
  });

  // Pass 2: greedy set cover — replay in that order, keep a case iff it
  // still reaches an edge nothing kept before it did. Every case runs, so
  // the map afterwards holds the full corpus union.
  std::vector<bool> keep(cases.size(), false);
  harness->ResetCoverage();
  for (size_t i : order) {
    ExecResult exec = harness->Run(cases[i]);
    ++local.replays;
    keep[i] = exec.new_coverage;
  }
  local.original_edges = harness->CoveredEdges();

  // Pass 3: the kept subset alone, verifying nothing was lost (and
  // producing the number a caller can compare against a donor campaign).
  std::vector<TestCase> kept;
  harness->ResetCoverage();
  for (size_t i = 0; i < cases.size(); ++i) {
    if (!keep[i]) continue;
    harness->Run(cases[i]);
    ++local.replays;
    kept.push_back(cases[i].Clone());
  }
  local.kept_edges = harness->CoveredEdges();
  local.kept_cases = kept.size();
  harness->ResetCoverage();

  if (stats != nullptr) *stats = local;
  return kept;
}

}  // namespace lego::fuzz
