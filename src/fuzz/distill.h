#ifndef LEGO_FUZZ_DISTILL_H_
#define LEGO_FUZZ_DISTILL_H_

#include <cstddef>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"

namespace lego::fuzz {

/// Bookkeeping from one DistillCorpus run.
struct DistillStats {
  size_t original_cases = 0;
  size_t kept_cases = 0;
  /// Distinct edges covered by the full input corpus (replay union).
  size_t original_edges = 0;
  /// Distinct edges covered by the kept subset alone. Equal to
  /// original_edges by construction (verified with a final replay pass).
  size_t kept_edges = 0;
  /// Total Run() calls spent (2 * original + kept).
  size_t replays = 0;
};

/// Greedy corpus minimization (afl-cmin style): replays every case through
/// `harness` and keeps a subset that covers exactly the same edge set.
///
/// Algorithm: a first pass measures each case's solo edge count; cases are
/// then replayed largest-first (ties broken by input order) against a fresh
/// coverage map, keeping only those that still contribute new edges; a
/// final pass replays the kept subset alone to verify the edge union is
/// preserved. Replaying through the real backend rather than trusting
/// recorded bitmaps means distillation holds for the engine as built today,
/// not the one that produced the corpus.
///
/// The kept cases are returned in their original input order. The
/// harness's accumulated coverage is clobbered (reset before/after use) —
/// pass a dedicated harness, not one mid-campaign. Requires a
/// deterministic backend (both built-in backends are).
std::vector<TestCase> DistillCorpus(const std::vector<TestCase>& cases,
                                    ExecutionHarness* harness,
                                    DistillStats* stats);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_DISTILL_H_
