#ifndef LEGO_FUZZ_BACKEND_FORKED_H_
#define LEGO_FUZZ_BACKEND_FORKED_H_

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>

#include "fuzz/backend.h"
#include "fuzz/durability.h"

namespace lego::fuzz {

/// Fork-server backend: minidb runs in a forked child; the parent speaks a
/// length-prefixed pipe protocol (Reset / Execute / oracle bracket / schema
/// probe) and reads run coverage out of an anonymous shared-memory map the
/// child's probes write into.
///
/// Crash isolation: a genuine engine defect (segfault, failed assert, bad
/// exit) kills only the child. The parent detects the death (pipe hangup or
/// waitpid), maps the wait status into a CrashInfo (bug_id "REAL-SIGABRT",
/// "REAL-SIGSEGV", "REAL-EXIT-3", ...) whose stack hash is derived from
/// (kind, statement type) — stable across replays, so the reducer can
/// minimize real crashes exactly like synthetic ones — and respawns a fresh
/// child at the next Reset. With max_stmt_ms > 0, a statement exceeding the
/// watchdog is killed and reported as a hang (bug_id "HANG") the same way.
///
/// With StorageKind::kPaged the child runs its engine on paged storage under
/// `db_dir` (fresh generation per Reset; panic mode — a commit that cannot
/// be made durable exits with kStorageFailExitCode instead of acking). When
/// `durability_check` is armed the parent shadows every acknowledged
/// statement and, after a SIGKILL / storage-panic death, recovers the dead
/// child's directory out-of-process: a chaos-injected death whose recovered
/// state matches the shadow is suppressed (the schedule worked, no bug); a
/// mismatch becomes a DUR-* finding that rides the normal triage pipeline.
///
/// Spawn the initial child before starting worker threads (constructing the
/// backend does this) — respawns later may fork from a threaded process,
/// which glibc's atfork handlers make safe for the child's single thread.
class ForkedBackend : public DbBackend {
 public:
  ForkedBackend(const minidb::DialectProfile& profile,
                const BackendOptions& options);
  ~ForkedBackend() override;

  std::string_view name() const override { return "forked"; }
  const minidb::DialectProfile& profile() const override { return profile_; }
  const faults::BugEngine& bug_engine() const override { return bug_engine_; }

  void Reset() override;
  StmtOutcome Execute(const sql::Statement& stmt, bool want_rows) override;
  const cov::CoverageMap& FinishRun() override;
  std::optional<std::string> FirstColumnOf(const std::string& table) override;
  /// Polls the live child's cumulative storage counters and folds the delta
  /// since the previous poll into the backend total. FinishRun also polls,
  /// so a child death loses at most its final case's tail.
  BackendStorageStats storage_stats() override;

  /// Children spawned over this backend's lifetime (1 + respawns).
  int spawn_count() const { return spawn_count_; }
  /// Failed spawn attempts over this backend's lifetime.
  int spawn_failures() const { return spawn_failures_total_; }
  /// True once the spawn circuit breaker opened (spawn_failure_limit
  /// consecutive failures): no further respawns are attempted, Reset is a
  /// no-op and Execute reports errors.
  bool broken() const override { return broken_; }

 protected:
  void DoSnapshotForOracle() override;
  void DoRestoreForOracle() override;

 private:
  enum class Wait { kData, kDead, kTimeout };

  /// One spawn attempt: pipes + fork + child setup. False on failure (or
  /// when the backend.spawn failpoint fires) with no state changed.
  bool TrySpawn();
  /// TrySpawn with exponential backoff, up to the circuit-breaker limit;
  /// opens the breaker (broken_) when the limit is exhausted.
  void Spawn();
  /// Child-side: installs the OOM new-handler and applies the configured
  /// rlimit caps before entering the serve loop.
  void ApplyChildLimits();
  void KillChild();
  /// Reaps the child and synthesizes the CrashInfo for its death while
  /// executing a statement of type `type` ("" context for non-Execute ops).
  minidb::CrashInfo ReapAsCrash(sql::StatementType type);

  /// Paged + durability oracle armed (and a db dir to recover).
  bool DurabilityArmed() const;
  /// Post-mortem durability check for an eligible death (SIGKILL or the
  /// storage panic exit). Returns the CrashInfo the caller should surface:
  /// nullopt = verdict passed, suppress the chaos-injected death entirely;
  /// otherwise either the DUR-* finding or the original crash (ineligible
  /// or uncheckable deaths pass through).
  std::optional<minidb::CrashInfo> ApplyDurabilityVerdict(
      minidb::CrashInfo crash);

  bool SendMsg(uint8_t type, const std::string& payload);
  /// Waits for a full response frame. deadline_ms < 0 blocks (still
  /// noticing child death); on kTimeout the child is left running.
  Wait RecvMsg(int deadline_ms, uint8_t* code, std::string* payload);
  /// One request/response round trip with death detection.
  Wait RoundTrip(uint8_t type, const std::string& payload, int deadline_ms,
                 uint8_t* code, std::string* resp);

  [[noreturn]] void ChildLoop();

  const minidb::DialectProfile& profile_;
  const BackendOptions options_;
  /// Parent-side catalog replica for reporting; the armed engine lives in
  /// the child.
  faults::BugEngine bug_engine_;

  cov::CoverageMap* shm_ = nullptr;  // child-written, parent-read
  cov::CoverageMap run_map_;         // parent-side classified copy

  pid_t child_pid_ = -1;
  int cmd_fd_ = -1;   // parent writes requests
  int resp_fd_ = -1;  // parent reads responses
  bool alive_ = false;
  int spawn_count_ = 0;
  bool broken_ = false;
  int consecutive_spawn_failures_ = 0;
  int spawn_failures_total_ = 0;
  /// Wait status captured when RecvMsg reaps the child before ReapAsCrash
  /// runs (waitpid can only succeed once per death).
  std::optional<int> early_wait_status_;

  /// Set when the child died while servicing an oracle query; surfaced by
  /// the next non-oracle Execute so real crashes under the oracle bracket
  /// still become findings instead of silent no-verdicts.
  std::optional<minidb::CrashInfo> pending_death_;
  /// Set when Reset could not produce a live child (e.g. the setup script
  /// itself kills the engine); Execute then reports this crash.
  std::optional<minidb::CrashInfo> reset_failure_;

  /// Parent-side shadow of the child's acked statements (durability oracle).
  DurabilityTracker dur_;

  /// Storage telemetry: child counters are cumulative per child lifetime;
  /// the parent folds per-poll deltas into the total and rebases on spawn.
  void PollStorageStats();
  BackendStorageStats storage_total_;
  BackendStorageStats storage_last_poll_;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_BACKEND_FORKED_H_
