#include "fuzz/backend_inproc.h"

#include <utility>

#include "sql/parser.h"

namespace lego::fuzz {

InProcessBackend::InProcessBackend(const minidb::DialectProfile& profile,
                                   const BackendOptions& options)
    : profile_(profile), db_(&profile), bug_engine_(profile.name) {
  db_.set_fault_hook(&bug_engine_);
  if (options.storage == StorageKind::kPaged && !options.db_dir.empty()) {
    minidb::StorageEngine::Options so;
    so.dir = options.db_dir;
    so.pool_frames = options.pool_frames;
    so.skip_fsync = options.planted_skip_fsync;
    // In-process: a storage failure must not kill the fuzzer. The engine
    // degrades (stops logging) and the campaign keeps fuzzing in memory.
    so.panic_on_storage_error = false;
    storage_ = std::make_unique<minidb::StorageEngine>(so);
  }
}

InProcessBackend::~InProcessBackend() {
  // Never leave a probe sink pointing at a dead map.
  if (collecting_) cov::CoverageRuntime::SetActiveMap(nullptr);
  if (storage_ != nullptr) db_.set_storage_hook(nullptr);
}

void InProcessBackend::Reset() {
  // Exact pre-seam order: fresh instance and fault session *outside* the
  // coverage scope, then the setup script *inside* it with the oracle
  // disarmed and the trace cleared afterwards.
  db_.ResetAll();
  if (storage_ != nullptr) (void)storage_->ResetFresh(&db_);
  bug_engine_.ResetSession();

  run_map_.Reset();
  cov::CoverageRuntime::SetActiveMap(&run_map_);
  collecting_ = true;

  if (!setup_script().empty()) {
    db_.set_fault_hook(nullptr);
    if (storage_ == nullptr) {
      (void)db_.ExecuteScript(setup_script());
    } else {
      // Per-statement bracket so the setup state is logged and recoverable.
      auto stmts = sql::Parser::ParseScript(setup_script());
      if (stmts.ok()) {
        for (const sql::StmtPtr& stmt : stmts.value()) {
          storage_->BeginStatement(&db_);
          auto st = db_.Execute(*stmt);
          (void)storage_->EndStatement(&db_, *stmt, st.ok());
          if (!st.ok() && st.status().IsCrash()) break;
        }
      }
    }
    db_.session().type_trace.clear();
    db_.session().feature_trace.clear();
    db_.set_fault_hook(&bug_engine_);
    bug_engine_.ResetSession();
  }
}

StmtOutcome InProcessBackend::Execute(const sql::Statement& stmt,
                                      bool want_rows) {
  StmtOutcome out;
  if (storage_ != nullptr) storage_->BeginStatement(&db_);
  auto st = db_.Execute(stmt);
  if (storage_ != nullptr) (void)storage_->EndStatement(&db_, stmt, st.ok());
  if (st.ok()) {
    out.status = StmtOutcome::Status::kOk;
    if (want_rows) {
      out.rows.reserve(st->rows.size());
      for (const minidb::Row& row : st->rows) {
        out.rows.push_back(detail::RenderRow(row));
      }
    }
    return out;
  }
  if (st.status().IsCrash()) {
    out.status = StmtOutcome::Status::kCrash;
    out.crash = *db_.last_crash();
    return out;
  }
  out.status = StmtOutcome::Status::kError;
  return out;
}

const cov::CoverageMap& InProcessBackend::FinishRun() {
  if (collecting_) {
    cov::CoverageRuntime::SetActiveMap(nullptr);
    collecting_ = false;
    run_map_.ClassifyCounts();
  }
  return run_map_;
}

BackendStorageStats InProcessBackend::storage_stats() {
  BackendStorageStats out;
  if (storage_ == nullptr) return out;
  const minidb::StorageEngine::Stats s = storage_->stats();
  out.pool_hits = s.pool.hits;
  out.pool_misses = s.pool.misses;
  out.pool_evictions = s.pool.evictions;
  out.pool_writebacks = s.pool.writebacks;
  out.wal_records = s.wal_records;
  out.wal_bytes = s.wal_bytes;
  out.fsyncs = s.fsyncs;
  out.steal_flushes = s.steal_flushes;
  out.commits = s.commits;
  out.checkpoints = s.checkpoints;
  return out;
}

std::optional<std::string> InProcessBackend::FirstColumnOf(
    const std::string& table) {
  auto t = db_.catalog().GetTable(table);
  if (!t.ok() || (*t)->schema.columns.empty()) return std::nullopt;
  return (*t)->schema.columns.front().name;
}

void InProcessBackend::DoSnapshotForOracle() {
  // Oracle queries must be invisible to fuzzing state: pause coverage
  // probes, disarm the fault hook, and remember the session trace length so
  // the partition queries can't trigger or mask injected bugs.
  saved_map_ = cov::CoverageRuntime::active_map();
  cov::CoverageRuntime::SetActiveMap(nullptr);
  saved_hook_ = db_.fault_hook();
  db_.set_fault_hook(nullptr);
  saved_types_ = db_.session().type_trace.size();
  saved_features_ = db_.session().feature_trace.size();
}

void InProcessBackend::DoRestoreForOracle() {
  db_.session().type_trace.resize(saved_types_);
  db_.session().feature_trace.resize(saved_features_);
  db_.set_fault_hook(saved_hook_);
  cov::CoverageRuntime::SetActiveMap(saved_map_);
  saved_map_ = nullptr;
  saved_hook_ = nullptr;
}

}  // namespace lego::fuzz
