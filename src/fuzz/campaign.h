#ifndef LEGO_FUZZ_CAMPAIGN_H_
#define LEGO_FUZZ_CAMPAIGN_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"

namespace lego::fuzz {

/// Campaign configuration. Budgets are execution counts — the scaled-down
/// equivalent of the paper's wall-clock budgets.
struct CampaignOptions {
  int max_executions = 20000;
  /// When > 0, the campaign additionally stops once this many statements
  /// have been processed (executed or rejected). This models a wall-clock
  /// budget: longer test cases consume it faster, reproducing the paper's
  /// observation that large LEN degrades fuzzing throughput (§VI).
  int64_t max_statements = 0;
  /// Record a (executions, edges) point every this many executions.
  int snapshot_every = 1000;
  /// Stop early once every injected bug has been found (off by default).
  bool stop_when_all_bugs_found = false;
};

/// Aggregated campaign outcome: everything the paper's tables/figures need.
struct CampaignResult {
  std::string fuzzer;
  std::string profile;
  int executions = 0;
  size_t edges = 0;  // final branch coverage
  std::vector<std::pair<int, size_t>> coverage_curve;
  /// Deduplicated crashes, keyed the way the paper dedups: by call-stack
  /// hash (ours are synthetic).
  std::set<uint64_t> crash_hashes;
  std::set<std::string> bug_ids;
  /// Distinct adjacent type pairs (t1 != t2) over all generated test cases —
  /// the paper's Table II "type-affinities generated" metric.
  std::set<std::pair<int, int>> affinities;
  int crashes_total = 0;
  int statement_errors = 0;
  int statements_executed = 0;

  /// Bugs found per component, for Table I style reporting.
  std::map<std::string, int> bugs_by_component;
};

/// Runs `fuzzer` against `harness` for the configured budget.
CampaignResult RunCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                           const CampaignOptions& options);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CAMPAIGN_H_
